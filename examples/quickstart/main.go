// Quickstart: generate a small corpus, train Pythagoras, and predict the
// semantic types of an unseen table — the minimal end-to-end flow.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/lm"
)

func main() {
	// 1. A small sports data lake (3 domains to keep the demo fast).
	corpus := data.GenerateSportsTables(data.SportsConfig{
		NumTables: 90, Seed: 42, MinRows: 8, MaxRows: 14, WeakNameProb: 0.1, Domains: 3,
	})
	fmt.Printf("corpus: %s\n", corpus.ComputeStats())

	// 2. The frozen text encoder ("pre-trained LM" of the paper).
	enc := lm.NewEncoder(lm.Config{
		Dim: 64, Layers: 2, Heads: 4, FFNDim: 128, MaxLen: 512, Buckets: 1 << 14, Seed: 7,
	})

	// 3. Train on a 60/20/20 split.
	rng := rand.New(rand.NewSource(1))
	train, val, test := eval.TrainValTestSplit(len(corpus.Tables), rng)
	cfg := core.DefaultConfig(enc)
	cfg.Epochs = 60
	cfg.Logf = log.Printf
	model, err := core.Train(corpus, train, val, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Score on held-out tables.
	split, _ := model.Evaluate(corpus, test)
	fmt.Printf("\ntest weighted F1: numeric=%.3f  non-numeric=%.3f  overall=%.3f\n\n",
		split.Numeric.WeightedF1, split.NonNumeric.WeightedF1, split.Overall.WeightedF1)

	// 5. Predict a single unseen table column by column.
	unseen := corpus.Tables[test[0]]
	fmt.Printf("predictions for table %q:\n", unseen.Name)
	for _, p := range model.PredictTable(unseen) {
		gold := unseen.Columns[p.ColIndex].SemanticType
		marker := " "
		if p.Type == gold {
			marker = "✓"
		}
		fmt.Printf("  %s %-22s [%s] → %-40s (conf %.2f, gold %s)\n",
			marker, p.Header, p.Kind, p.Type, p.Confidence, gold)
	}
}
