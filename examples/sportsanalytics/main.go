// Sportsanalytics reenacts the paper's Figure 1 scenario: a numerical
// column ('AssPG'-style assists per game) whose values alone are ambiguous
// across sports, disambiguated by the textual context the graph edges
// inject. The example trains one model, then probes it with the same
// numeric column wrapped in basketball context vs football context, and
// finally with all context stripped — showing the prediction flip live.
//
//	go run ./examples/sportsanalytics
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/lm"
	"github.com/sematype/pythagoras/internal/table"
)

func main() {
	corpus := data.GenerateSportsTables(data.SportsConfig{
		NumTables: 160, Seed: 3, MinRows: 8, MaxRows: 14, WeakNameProb: 0.1,
	})
	enc := lm.NewEncoder(lm.Config{
		Dim: 64, Layers: 2, Heads: 4, FFNDim: 128, MaxLen: 512, Buckets: 1 << 14, Seed: 7,
	})
	rng := rand.New(rand.NewSource(1))
	train, val, _ := eval.TrainValTestSplit(len(corpus.Tables), rng)
	cfg := core.DefaultConfig(enc)
	cfg.Epochs = 100
	cfg.Logf = log.Printf
	model, err := core.Train(corpus, train, val, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The ambiguous numeric column from Figure 1: per-game values around
	// 2–8 could be basketball assists, hockey stats, …
	assists := []float64{7.5, 2.1, 5.3, 3.8, 6.1, 1.9, 4.4, 2.8}

	basketball := &table.Table{
		Name: "NBA Ply Stats", ID: "fig1",
		Columns: []*table.Column{
			{Header: "Ply", Kind: table.KindText,
				TextValues: []string{"Lebron James", "Myles Turner", "Kai Novak", "Leo Rossi", "Omar Keita", "Tom Olsen", "Nico Weber", "Hugo Silva"}},
			{Header: "FPos", Kind: table.KindText,
				TextValues: []string{"SF/PF", "PF/C", "PG", "SG", "C", "SF", "PG/SG", "PF"}},
			{Header: "AssPG", Kind: table.KindNumeric, NumValues: assists},
		},
	}
	probe(model, basketball, "same values, basketball context")

	soccer := &table.Table{
		Name: "EPL Player Statistics", ID: "fig1b",
		Columns: []*table.Column{
			{Header: "Player", Kind: table.KindText,
				TextValues: []string{"Marco Santos", "Diego Costa", "Jonas Moreau", "Felix Dubois", "Andre Olsen", "Liam Brown", "Noah Martin", "Ethan Kim"}},
			{Header: "Pos", Kind: table.KindText,
				TextValues: []string{"GK", "CB", "CM", "ST", "LW", "RW", "CDM", "CAM"}},
			{Header: "AssPG", Kind: table.KindNumeric, NumValues: assists},
		},
	}
	probe(model, soccer, "identical values, soccer context")

	bare := &table.Table{
		Name: "Stats", ID: "fig1c",
		Columns: []*table.Column{
			{Header: "AssPG", Kind: table.KindNumeric, NumValues: assists},
		},
	}
	probe(model, bare, "identical values, no context at all")
}

func probe(model *core.Model, t *table.Table, caption string) {
	fmt.Printf("\n%s — table %q\n", caption, t.Name)
	for _, p := range model.PredictTable(t) {
		if p.Kind != table.KindNumeric {
			continue
		}
		fmt.Printf("  numeric column %-8s → %-45s (conf %.2f)\n", p.Header, p.Type, p.Confidence)
	}
}
