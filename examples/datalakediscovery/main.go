// Datalakediscovery shows the downstream task the paper motivates: dataset
// discovery over an enterprise-style lake. It types every column of a
// GitTables-style lake with a trained Pythagoras model, builds an inverted
// semantic-type index, and answers discovery queries ("which tables contain
// prices and ratings?") against it.
//
//	go run ./examples/datalakediscovery
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/lm"
)

func main() {
	// The "enterprise lake": heavy on numeric columns, long-tailed types,
	// filename-ish table names.
	lake := data.GenerateGitTables(data.GitConfig{
		NumTables: 200, Seed: 9, MinRows: 8, MaxRows: 16, NameHintProb: 0.55, MinSupport: 3,
	})
	fmt.Printf("lake: %s\n", lake.ComputeStats())

	enc := lm.NewEncoder(lm.Config{
		Dim: 64, Layers: 2, Heads: 4, FFNDim: 128, MaxLen: 512, Buckets: 1 << 14, Seed: 7,
	})
	rng := rand.New(rand.NewSource(1))
	train, val, rest := eval.TrainValTestSplit(len(lake.Tables), rng)
	cfg := core.DefaultConfig(enc)
	cfg.Epochs = 80
	cfg.Logf = log.Printf
	model, err := core.Train(lake, train, val, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Type the untyped part of the lake and build the discovery index:
	// semantic type → tables containing a column of that type.
	index := map[string][]string{}
	for _, ti := range rest {
		t := lake.Tables[ti]
		for _, p := range model.PredictTable(t) {
			if p.Confidence < 0.3 {
				continue // low-confidence labels pollute discovery indexes
			}
			index[p.Type] = append(index[p.Type], t.ID)
		}
	}
	fmt.Printf("\nindexed %d tables under %d distinct semantic types\n", len(rest), len(index))

	// Discovery queries: find tables that contain ALL requested types.
	queries := [][]string{
		{"dbpedia/price", "dbpedia/rating"},
		{"dbpedia/latitude", "dbpedia/longitude"},
		{"dbpedia/year", "dbpedia/count"},
	}
	for _, q := range queries {
		hits := intersect(index, q)
		fmt.Printf("\nquery: tables with {%s}\n", strings.Join(q, ", "))
		if len(hits) == 0 {
			fmt.Println("  no matches")
			continue
		}
		if len(hits) > 5 {
			hits = hits[:5]
		}
		for _, id := range hits {
			fmt.Printf("  %s\n", id)
		}
	}
}

// intersect returns table ids present under every queried type, sorted.
func intersect(index map[string][]string, types []string) []string {
	if len(types) == 0 {
		return nil
	}
	count := map[string]int{}
	for _, st := range types {
		seen := map[string]bool{}
		for _, id := range index[st] {
			if !seen[id] {
				seen[id] = true
				count[id]++
			}
		}
	}
	var out []string
	for id, c := range count {
		if c == len(types) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
