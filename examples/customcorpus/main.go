// Customcorpus shows how to adopt Pythagoras for your own data: write your
// labeled tables as CSV + labels.json (or produce them from any source),
// load them with table.LoadDir, train, persist the model, and reload it in
// another process.
//
//	go run ./examples/customcorpus
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/lm"
	"github.com/sematype/pythagoras/internal/table"
)

func main() {
	dir, err := os.MkdirTemp("", "pythagoras-custom")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Author a tiny custom corpus: IoT sensor tables with your own type
	// vocabulary. In practice these CSVs come from your lake.
	writeSensorCorpus(dir, 24)

	// 2. Load it back the way any user would.
	tables, err := table.LoadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	corpus := &data.Corpus{Name: "iot-lake", Tables: tables}
	corpus.BuildVocabulary()
	if err := corpus.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom corpus: %s\n", corpus.ComputeStats())
	fmt.Printf("type vocabulary: %v\n\n", corpus.Types)

	// 3. Train (small budget — the corpus is tiny).
	enc := lm.NewEncoder(lm.Config{
		Dim: 48, Layers: 1, Heads: 4, FFNDim: 96, MaxLen: 256, Buckets: 1 << 13, Seed: 7,
	})
	cfg := core.DefaultConfig(enc)
	cfg.Epochs = 60
	train := make([]int, 0, len(corpus.Tables)-4)
	val := []int{len(corpus.Tables) - 4, len(corpus.Tables) - 3}
	test := []int{len(corpus.Tables) - 2, len(corpus.Tables) - 1}
	for i := 0; i < len(corpus.Tables)-4; i++ {
		train = append(train, i)
	}
	model, err := core.Train(corpus, train, val, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Persist and reload — the deployment path.
	modelPath := filepath.Join(dir, "iot-model.bin")
	if err := model.SaveFile(modelPath); err != nil {
		log.Fatal(err)
	}
	reloaded, err := core.LoadFile(modelPath, core.Config{Encoder: enc})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model round-tripped through %s (%d parameters)\n\n",
		modelPath, reloaded.Params().Count())

	// 5. Type an incoming table.
	for _, ti := range test {
		t := corpus.Tables[ti]
		fmt.Printf("predictions for %q:\n", t.Name)
		for _, p := range reloaded.PredictTable(t) {
			fmt.Printf("  %-14s → %-22s (conf %.2f, gold %s)\n",
				p.Header, p.Type, p.Confidence, t.Columns[p.ColIndex].SemanticType)
		}
	}
}

// writeSensorCorpus fabricates labeled IoT tables on disk in the on-disk
// corpus format (CSV + labels sidecar).
func writeSensorCorpus(dir string, n int) {
	sites := []string{"plant-a", "plant-b", "warehouse", "rooftop", "lab"}
	for i := 0; i < n; i++ {
		site := sites[i%len(sites)]
		rows := 12
		t := &table.Table{
			Name: fmt.Sprintf("%s sensor log %d", site, 2020+i%4),
			ID:   fmt.Sprintf("sensor_%03d", i),
			Columns: []*table.Column{
				{Header: "sensor", SemanticType: "iot.sensor_id", Kind: table.KindText},
				{Header: "temp", SemanticType: "iot.temperature_c", Kind: table.KindNumeric},
				{Header: "hum", SemanticType: "iot.humidity_pct", Kind: table.KindNumeric},
				{Header: "volt", SemanticType: "iot.battery_voltage", Kind: table.KindNumeric},
				{Header: "rssi", SemanticType: "iot.signal_rssi", Kind: table.KindNumeric},
			},
		}
		for r := 0; r < rows; r++ {
			t.Columns[0].TextValues = append(t.Columns[0].TextValues,
				fmt.Sprintf("%s-node-%02d", site, (i*7+r)%40))
			t.Columns[1].NumValues = append(t.Columns[1].NumValues, 15+float64((i*13+r*3)%200)/10)
			t.Columns[2].NumValues = append(t.Columns[2].NumValues, 30+float64((i*5+r*11)%550)/10)
			t.Columns[3].NumValues = append(t.Columns[3].NumValues, 3.1+float64((i+r)%12)/10)
			t.Columns[4].NumValues = append(t.Columns[4].NumValues, -90+float64((i*3+r*7)%45))
		}
		if err := table.SaveDir(dir, []*table.Table{t}); err != nil {
			log.Fatal(err)
		}
	}
}
