package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/sematype/pythagoras/internal/obs"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 100} {
			hits := make([]atomic.Int32, max(n, 1))
			err := For(context.Background(), workers, n, func(i int) error {
				hits[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i := 0; i < n; i++ {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := For(context.Background(), 4, 100, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Drain semantics: after the failure no new work starts; with 4 workers
	// at most a handful of in-flight items complete.
	if ran.Load() == 100 {
		t.Fatal("error did not stop the loop early")
	}
}

func TestForSerialErrorStops(t *testing.T) {
	boom := errors.New("boom")
	var ran int
	err := For(context.Background(), 1, 10, func(i int) error {
		ran++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || ran != 3 {
		t.Fatalf("err=%v ran=%d, want boom after 3", err, ran)
	}
}

func TestForCancellationDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started, finished atomic.Int32
	err := For(ctx, 4, 100, func(i int) error {
		started.Add(1)
		if i == 0 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		finished.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Every started item drained to completion — For returns only after all
	// workers park, never abandoning an in-flight fn.
	if s, f := started.Load(), finished.Load(); s != f {
		t.Fatalf("started %d but finished %d", s, f)
	}
	if started.Load() == 100 {
		t.Fatal("cancellation did not stop the loop early")
	}
}

func TestForPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := For(ctx, 4, 10, func(i int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d items ran under a pre-cancelled context", ran.Load())
	}
}

func TestBoundsProperties(t *testing.T) {
	for _, tc := range []struct{ n, workers, maxChunk int }{
		{0, 4, 16}, {1, 4, 16}, {5, 4, 16}, {100, 4, 16},
		{100, 4, 3}, {16, 16, 1}, {7, 1, 0}, {10, 0, -1},
	} {
		bounds := Bounds(tc.n, tc.workers, tc.maxChunk)
		at := 0
		for _, b := range bounds {
			if b[0] != at || b[1] <= b[0] {
				t.Fatalf("Bounds(%v): bad chunk %v at %d", tc, b, at)
			}
			if tc.maxChunk >= 1 && b[1]-b[0] > tc.maxChunk {
				t.Fatalf("Bounds(%v): chunk %v exceeds maxChunk", tc, b)
			}
			at = b[1]
		}
		if at != tc.n {
			t.Fatalf("Bounds(%v): covered %d of %d", tc, at, tc.n)
		}
	}
}

func TestBoundsDeterministic(t *testing.T) {
	a := Bounds(97, 8, 16)
	b := Bounds(97, 8, 16)
	if len(a) != len(b) {
		t.Fatal("length differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("bounds differ across calls")
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestBusyWorkerTracking: the process-wide busy counter rises inside For
// bodies and drains to zero after, on both the serial and parallel paths.
func TestBusyWorkerTracking(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var peak atomic.Int64
		err := For(context.Background(), workers, 16, func(i int) error {
			b := int64(Busy())
			for {
				p := peak.Load()
				if b <= p || peak.CompareAndSwap(p, b) {
					break
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if peak.Load() < 1 {
			t.Fatalf("workers=%d: busy never observed ≥ 1", workers)
		}
		if Busy() != 0 {
			t.Fatalf("workers=%d: busy = %d after drain, want 0", workers, Busy())
		}
	}
}

func TestRegisterMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterMetrics(reg)
	s := reg.Snapshot()
	if _, ok := s.Gauges["par.workers.busy"]; !ok {
		t.Fatal("par.workers.busy not registered")
	}
	if u, ok := s.Gauges["par.workers.utilization"]; !ok || u < 0 {
		t.Fatalf("par.workers.utilization = %v, registered %v", u, ok)
	}
	RegisterMetrics(nil) // nil-safe
}
