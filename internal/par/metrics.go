package par

import (
	"runtime"

	"github.com/sematype/pythagoras/internal/obs"
)

// RegisterMetrics exports the process-wide pool state into reg, evaluated
// lazily at snapshot/scrape time:
//
//	par.workers.busy         For bodies executing right now
//	par.workers.utilization  busy / GOMAXPROCS, the fraction of the
//	                         machine the pools are keeping occupied
//
// Nil-safe; re-registering replaces the callbacks (same values).
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("par.workers.busy", func() float64 { return float64(Busy()) })
	reg.GaugeFunc("par.workers.utilization", func() float64 {
		return float64(Busy()) / float64(runtime.GOMAXPROCS(0))
	})
}
