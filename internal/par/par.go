// Package par holds the deterministic worker-pool primitives shared by the
// staged inference engine (internal/infer) and the data-parallel trainer
// (internal/core): a bounded parallel loop with drain-on-cancel semantics
// and the bounds-chunking helper that splits a batch across a pool.
//
// Both primitives are deliberately free of any scheduling nondeterminism
// that could leak into results: For hands out indices from an atomic
// counter but callers write only to their own output slot, and Bounds is a
// pure function of its arguments — so the code using them can make
// bit-identity guarantees across worker counts (the inference engine's
// union-forward identity, the trainer's fixed-order gradient merge).
package par

import (
	"context"
	"sync"
	"sync/atomic"
)

// For runs fn(0..n-1) over at most workers goroutines, stopping early when
// the context is cancelled or any fn returns an error.
//
// Abort semantics are a partial-work drain: the context and the shared stop
// flag are re-checked before each index a worker claims, so after a
// cancellation no new work starts, every worker finishes the item it is
// inside, and For returns only when all workers have parked. The first
// error wins; output slots written before the abort are simply discarded by
// the caller.
//
// workers <= 1 (or n <= 1) degrades to a serial loop on the calling
// goroutine with the same per-index context check.
func For(ctx context.Context, workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			busyWorkers.Add(1)
			err := fn(i)
			busyWorkers.Add(-1)
			if err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				busyWorkers.Add(1)
				err := fn(i)
				busyWorkers.Add(-1)
				if err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// busyWorkers counts goroutines (or the calling goroutine, on the serial
// path) currently inside a For body, process-wide. One atomic add per item
// on either side of fn — negligible against any fn that does real work, and
// it gives the pool a live utilization signal (see RegisterMetrics).
var busyWorkers atomic.Int64

// Busy reports how many For workers are executing a loop body right now,
// across every concurrent For in the process.
func Busy() int {
	return int(busyWorkers.Load())
}

// Bounds splits n items into contiguous [lo, hi) chunks — as even as
// possible across workers, never larger than maxChunk (and never smaller
// than 1). It is a pure function: the same (n, workers, maxChunk) always
// yields the same bounds, and every index in [0, n) appears in exactly one
// chunk, in order.
func Bounds(n, workers, maxChunk int) [][2]int {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	size := (n + workers - 1) / workers
	if maxChunk >= 1 && size > maxChunk {
		size = maxChunk
	}
	if size < 1 {
		size = 1
	}
	bounds := make([][2]int, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		bounds = append(bounds, [2]int{lo, hi})
	}
	return bounds
}
