package table

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randTable builds a random valid table for property tests.
func randTable(rng *rand.Rand) *Table {
	rows := 1 + rng.Intn(8)
	cols := 1 + rng.Intn(6)
	t := &Table{Name: "prop", ID: "prop"}
	for c := 0; c < cols; c++ {
		col := &Column{
			Header:       string(rune('a' + c)),
			SemanticType: "t",
		}
		if rng.Intn(2) == 0 {
			col.Kind = KindNumeric
			for r := 0; r < rows; r++ {
				// values that survive the CSV formatter round trip
				v := math.Round(rng.NormFloat64()*1000) / 10
				col.NumValues = append(col.NumValues, v)
			}
		} else {
			col.Kind = KindText
			words := []string{"alpha", "beta", "gamma", "x y", "z"}
			for r := 0; r < rows; r++ {
				col.TextValues = append(col.TextValues, words[rng.Intn(len(words))])
			}
		}
		t.Columns = append(t.Columns, col)
	}
	return t
}

func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randTable(rng)
		var buf bytes.Buffer
		if err := WriteCSV(orig, &buf); err != nil {
			return false
		}
		got, err := ReadCSV(orig.Name, orig.ID, &buf)
		if err != nil {
			return false
		}
		if len(got.Columns) != len(orig.Columns) || got.NumRows() != orig.NumRows() {
			return false
		}
		for ci, oc := range orig.Columns {
			gc := got.Columns[ci]
			if gc.Kind != oc.Kind {
				return false
			}
			if oc.Kind == KindNumeric {
				for r := range oc.NumValues {
					if math.Abs(gc.NumValues[r]-oc.NumValues[r]) > 1e-9 {
						return false
					}
				}
			} else {
				for r := range oc.TextValues {
					if gc.TextValues[r] != oc.TextValues[r] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeColumnNeverEmptyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randTable(rng)
		for _, c := range tb.Columns {
			s := SerializeColumn(c, SerializeOptions{})
			if len(s) < len("[CLS] [SEP]") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateAcceptsGeneratedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		return randTable(rng).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
