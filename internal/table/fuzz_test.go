package table

import (
	"strings"
	"testing"
)

// FuzzReadCSV asserts ReadCSV never panics and that any table it accepts
// passes structural validation after labels are filled.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,x\n2,y\n")
	f.Add("h\n\n")
	f.Add("x,y,z\n1,2,3\n")
	f.Add("a\n1e9\n-3.5\n")
	f.Add("q,w\n\"a,b\",2\n")
	f.Fuzz(func(t *testing.T, data string) {
		tb, err := ReadCSV("fuzz", "fuzz", strings.NewReader(data))
		if err != nil {
			return
		}
		for _, c := range tb.Columns {
			c.SemanticType = "t"
		}
		if err := tb.Validate(); err != nil {
			t.Fatalf("accepted table fails validation: %v", err)
		}
		// serialization must always work on accepted tables
		for _, c := range tb.Columns {
			_ = SerializeColumn(c, SerializeOptions{})
		}
	})
}
