package table

import (
	"strings"
	"testing"
)

// FuzzReadCSV asserts ReadCSV never panics and that any table it accepts
// passes structural validation after labels are filled.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,x\n2,y\n")
	f.Add("h\n\n")
	f.Add("x,y,z\n1,2,3\n")
	f.Add("a\n1e9\n-3.5\n")
	f.Add("q,w\n\"a,b\",2\n")
	f.Fuzz(func(t *testing.T, data string) {
		tb, err := ReadCSV("fuzz", "fuzz", strings.NewReader(data))
		if err != nil {
			return
		}
		for _, c := range tb.Columns {
			c.SemanticType = "t"
		}
		if err := tb.Validate(); err != nil {
			t.Fatalf("accepted table fails validation: %v", err)
		}
		// serialization must always work on accepted tables
		for _, c := range tb.Columns {
			_ = SerializeColumn(c, SerializeOptions{})
		}
	})
}

// FuzzCSVTable asserts the write→read round trip is structurally stable for
// any table ReadCSV accepts: re-reading a written table preserves column
// count, column kinds and row count. Cell values are NOT asserted —
// FormatNumber renders non-integers at precision 5, so numeric values are
// deliberately lossy on the first write; what must hold is that kind
// inference reaches the same verdict on the rendered form.
func FuzzCSVTable(f *testing.F) {
	f.Add("a,b\n1,x\n2,y\n")
	f.Add("n\n1.25\n-3e4\n")
	f.Add("h\n\n")
	f.Add("p,q,r\n1,\"a,b\",3\nragged\n")
	f.Add("num\n1,234\n5,678\n")       // thousands separators
	f.Add("mixed\n 1 \nx\n")           // whitespace + text
	f.Add("\"he\"\"ad\"\nNaN\n+Inf\n") // quoted header, special floats
	f.Fuzz(func(t *testing.T, data string) {
		t1, err := ReadCSV("fuzz", "fuzz", strings.NewReader(data))
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := WriteCSV(t1, &buf); err != nil {
			t.Fatalf("write accepted table: %v", err)
		}
		t2, err := ReadCSV("fuzz", "fuzz", strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-read written table: %v\ncsv:\n%s", err, buf.String())
		}
		if len(t2.Columns) != len(t1.Columns) {
			t.Fatalf("columns: %d → %d\ncsv:\n%s", len(t1.Columns), len(t2.Columns), buf.String())
		}
		if t2.NumRows() != t1.NumRows() {
			t.Fatalf("rows: %d → %d\ncsv:\n%s", t1.NumRows(), t2.NumRows(), buf.String())
		}
		for i := range t1.Columns {
			if t2.Columns[i].Kind != t1.Columns[i].Kind {
				t.Fatalf("col %d: kind %v → %v\ncsv:\n%s",
					i, t1.Columns[i].Kind, t2.Columns[i].Kind, buf.String())
			}
		}
	})
}
