package table

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleTable() *Table {
	return &Table{
		Name: "NBA Ply Stats",
		ID:   "t1",
		Columns: []*Column{
			{
				Header: "Ply", SemanticType: "basketball.player.name", Kind: KindText,
				TextValues: []string{"Lebron James", "Myles Turner"},
			},
			{
				Header: "AssPG", SyntheticHeader: "APG",
				SemanticType: "basketball.player.assists_per_game", Kind: KindNumeric,
				NumValues: []float64{7.5, 2.1},
			},
			{
				Header: "PPG", SemanticType: "basketball.player.points_per_game", Kind: KindNumeric,
				NumValues: []float64{28, 15},
			},
		},
	}
}

func TestKindString(t *testing.T) {
	if KindText.String() != "text" || KindNumeric.String() != "numeric" {
		t.Fatal("Kind.String wrong")
	}
}

func TestColumnLenAndValueStrings(t *testing.T) {
	tb := sampleTable()
	if tb.Columns[0].Len() != 2 || tb.Columns[1].Len() != 2 {
		t.Fatal("Len wrong")
	}
	vs := tb.Columns[1].ValueStrings(0)
	if !reflect.DeepEqual(vs, []string{"7.5", "2.1"}) {
		t.Fatalf("ValueStrings = %v", vs)
	}
	if got := tb.Columns[0].ValueStrings(1); len(got) != 1 || got[0] != "Lebron James" {
		t.Fatalf("capped ValueStrings = %v", got)
	}
}

func TestFormatNumber(t *testing.T) {
	cases := map[float64]string{
		28:      "28",
		7.5:     "7.5",
		-3:      "-3",
		0:       "0",
		0.33333: "0.33333",
	}
	for in, want := range cases {
		if got := FormatNumber(in); got != want {
			t.Errorf("FormatNumber(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestNumericTextColumnIndices(t *testing.T) {
	tb := sampleTable()
	if got := tb.NumericColumns(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("NumericColumns = %v", got)
	}
	if got := tb.TextColumns(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("TextColumns = %v", got)
	}
}

func TestNumRows(t *testing.T) {
	tb := sampleTable()
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	empty := &Table{Name: "e", ID: "e"}
	if empty.NumRows() != 0 {
		t.Fatal("empty table NumRows != 0")
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleTable().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Table)
	}{
		{"empty name", func(tb *Table) { tb.Name = "" }},
		{"missing type", func(tb *Table) { tb.Columns[0].SemanticType = "" }},
		{"ragged rows", func(tb *Table) { tb.Columns[1].NumValues = tb.Columns[1].NumValues[:1] }},
		{"kind mismatch numeric", func(tb *Table) { tb.Columns[1].TextValues = []string{"x", "y"} }},
		{"kind mismatch text", func(tb *Table) { tb.Columns[0].NumValues = []float64{1, 2} }},
	}
	for _, c := range cases {
		tb := sampleTable()
		c.mutate(tb)
		if err := tb.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid table", c.name)
		}
	}
}

func TestSerializeColumnNoHeader(t *testing.T) {
	tb := sampleTable()
	got := SerializeColumn(tb.Columns[1], SerializeOptions{Header: HeaderNone})
	want := "[CLS] 7.5 2.1 [SEP]"
	if got != want {
		t.Fatalf("SerializeColumn = %q, want %q", got, want)
	}
}

func TestSerializeColumnOriginalHeader(t *testing.T) {
	tb := sampleTable()
	got := SerializeColumn(tb.Columns[1], SerializeOptions{Header: HeaderOriginal})
	if !strings.HasPrefix(got, "[CLS] AssPG ") {
		t.Fatalf("SerializeColumn = %q", got)
	}
}

func TestSerializeColumnSyntheticHeader(t *testing.T) {
	tb := sampleTable()
	got := SerializeColumn(tb.Columns[1], SerializeOptions{Header: HeaderSynthetic})
	if !strings.HasPrefix(got, "[CLS] APG ") {
		t.Fatalf("SerializeColumn = %q", got)
	}
	// Column without a synthetic header degrades to no header.
	got = SerializeColumn(tb.Columns[2], SerializeOptions{Header: HeaderSynthetic})
	if !strings.HasPrefix(got, "[CLS] 28") {
		t.Fatalf("SerializeColumn = %q", got)
	}
}

func TestSerializeColumnMaxValues(t *testing.T) {
	tb := sampleTable()
	got := SerializeColumn(tb.Columns[1], SerializeOptions{MaxValues: 1})
	if got != "[CLS] 7.5 [SEP]" {
		t.Fatalf("SerializeColumn = %q", got)
	}
}

func TestSerializeTableName(t *testing.T) {
	got := SerializeTableName(sampleTable())
	if got != "[CLS] NBA Ply Stats [SEP]" {
		t.Fatalf("SerializeTableName = %q", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := sampleTable()
	var buf bytes.Buffer
	if err := WriteCSV(tb, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(tb.Name, tb.ID, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Columns) != 3 {
		t.Fatalf("round trip cols = %d", len(got.Columns))
	}
	if got.Columns[0].Kind != KindText || got.Columns[1].Kind != KindNumeric {
		t.Fatal("kind inference failed on round trip")
	}
	if !reflect.DeepEqual(got.Columns[1].NumValues, []float64{7.5, 2.1}) {
		t.Fatalf("values = %v", got.Columns[1].NumValues)
	}
}

func TestReadCSVKindInference(t *testing.T) {
	csvData := "a,b,c\n1,x,\n2,y,3.5\n"
	tb, err := ReadCSV("t", "t", strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Columns[0].Kind != KindNumeric {
		t.Fatal("pure ints must infer numeric")
	}
	if tb.Columns[1].Kind != KindText {
		t.Fatal("letters must infer text")
	}
	if tb.Columns[2].Kind != KindNumeric {
		t.Fatal("numeric with empties must infer numeric")
	}
}

func TestReadCSVEmptyColumnIsText(t *testing.T) {
	tb, err := ReadCSV("t", "t", strings.NewReader("a\n\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Columns[0].Kind != KindText {
		t.Fatal("all-empty column should default to text")
	}
}

func TestReadCSVEmptyFile(t *testing.T) {
	if _, err := ReadCSV("t", "t", strings.NewReader("")); err == nil {
		t.Fatal("expected error on empty csv")
	}
}

func TestSaveLoadDir(t *testing.T) {
	dir := t.TempDir()
	tb := sampleTable()
	if err := SaveDir(dir, []*Table{tb}); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 {
		t.Fatalf("loaded %d tables", len(loaded))
	}
	got := loaded[0]
	if got.Name != tb.Name || got.ID != tb.ID {
		t.Fatalf("identity lost: %q %q", got.Name, got.ID)
	}
	if got.Columns[1].SemanticType != "basketball.player.assists_per_game" {
		t.Fatalf("labels lost: %q", got.Columns[1].SemanticType)
	}
	if got.Columns[1].SyntheticHeader != "APG" {
		t.Fatalf("synthetic header lost: %q", got.Columns[1].SyntheticHeader)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteCSVPreservesEmptyRecords: a single-column table whose header or
// a row is the empty string must survive a write→read round trip. A naive
// writer emits a blank line for such records, and CSV readers skip blank
// lines — the fuzzer found exactly this row-loss (see the committed
// FuzzCSVTable corpus); the writer now quotes lone empty fields.
func TestWriteCSVPreservesEmptyRecords(t *testing.T) {
	tb := &Table{Name: "t", ID: "t", Columns: []*Column{
		{Header: "", Kind: KindText, TextValues: []string{"", "x", ""}},
	}}
	var buf strings.Builder
	if err := WriteCSV(tb, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("t", "t", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("re-read: %v\ncsv:\n%s", err, buf.String())
	}
	if len(got.Columns) != 1 || got.Columns[0].Header != "" {
		t.Fatalf("header lost: %+v", got.Columns)
	}
	if got.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3\ncsv:\n%s", got.NumRows(), buf.String())
	}
	if got.Columns[0].TextValues[1] != "x" {
		t.Fatalf("values reordered: %v", got.Columns[0].TextValues)
	}
}

func TestLoadDirMissingLabelsStillLoads(t *testing.T) {
	dir := t.TempDir()
	tb := sampleTable()
	if err := SaveDir(dir, []*Table{tb}); err != nil {
		t.Fatal(err)
	}
	// remove the sidecar
	if err := removeFile(filepath.Join(dir, "t1.labels.json")); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded[0].Columns[0].SemanticType != "" {
		t.Fatal("types should be empty without sidecar")
	}
}

func removeFile(path string) error { return os.Remove(path) }
