package table

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// WriteCSV writes the table as a standard CSV with a header row.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	// A record that is a single empty field would serialize as a blank line,
	// which CSV readers skip — the row (or the whole header) would vanish on
	// re-read. Force quotes so such records survive the round trip.
	writeRec := func(rec []string) error {
		if len(rec) == 1 && rec[0] == "" {
			cw.Flush()
			if err := cw.Error(); err != nil {
				return err
			}
			_, err := io.WriteString(w, "\"\"\n")
			return err
		}
		return cw.Write(rec)
	}
	headers := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		headers[i] = c.Header
	}
	if err := writeRec(headers); err != nil {
		return err
	}
	rows := t.NumRows()
	rec := make([]string, len(t.Columns))
	for r := 0; r < rows; r++ {
		for i, c := range t.Columns {
			if c.Kind == KindNumeric {
				rec[i] = FormatNumber(c.NumValues[r])
			} else {
				rec[i] = c.TextValues[r]
			}
		}
		if err := writeRec(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV (first row = headers) into a Table, inferring the
// kind of each column: a column is numeric when every non-empty cell parses
// as a float and at least one cell is non-empty.
func ReadCSV(name, id string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: read csv %q: %w", id, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("table: csv %q is empty", id)
	}
	headers := records[0]
	t := &Table{Name: name, ID: id}
	for j, h := range headers {
		col := &Column{Header: h}
		numeric := true
		nonEmpty := 0
		var nums []float64
		var texts []string
		for _, rec := range records[1:] {
			cell := ""
			if j < len(rec) {
				cell = strings.TrimSpace(rec[j])
			}
			texts = append(texts, cell)
			if cell == "" {
				nums = append(nums, 0)
				continue
			}
			nonEmpty++
			v, perr := strconv.ParseFloat(strings.ReplaceAll(cell, ",", ""), 64)
			if perr != nil {
				numeric = false
			} else {
				nums = append(nums, v)
			}
		}
		if numeric && nonEmpty > 0 {
			col.Kind = KindNumeric
			col.NumValues = nums
		} else {
			col.Kind = KindText
			col.TextValues = texts
		}
		t.Columns = append(t.Columns, col)
	}
	return t, nil
}

// labelFile is the JSON sidecar mapping column headers to semantic types
// for a persisted corpus.
type labelFile struct {
	TableName string            `json:"table_name"`
	Types     map[string]string `json:"types"`     // header -> semantic type
	Synthetic map[string]string `json:"synthetic"` // header -> synthetic header
}

// SaveDir persists tables as <dir>/<id>.csv plus <dir>/<id>.labels.json.
func SaveDir(dir string, tables []*Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range tables {
		f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
		if err != nil {
			return err
		}
		if err := WriteCSV(t, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		lf := labelFile{TableName: t.Name, Types: map[string]string{}, Synthetic: map[string]string{}}
		for _, c := range t.Columns {
			lf.Types[c.Header] = c.SemanticType
			if c.SyntheticHeader != "" {
				lf.Synthetic[c.Header] = c.SyntheticHeader
			}
		}
		data, err := json.MarshalIndent(lf, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, t.ID+".labels.json"), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir loads every <id>.csv (+ optional labels sidecar) from dir, sorted
// by id for determinism.
func LoadDir(dir string) ([]*Table, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			ids = append(ids, strings.TrimSuffix(e.Name(), ".csv"))
		}
	}
	sort.Strings(ids)
	var tables []*Table
	for _, id := range ids {
		f, err := os.Open(filepath.Join(dir, id+".csv"))
		if err != nil {
			return nil, err
		}
		name := id
		var lf labelFile
		if data, lerr := os.ReadFile(filepath.Join(dir, id+".labels.json")); lerr == nil {
			if jerr := json.Unmarshal(data, &lf); jerr != nil {
				f.Close()
				return nil, fmt.Errorf("table: labels for %q: %w", id, jerr)
			}
			if lf.TableName != "" {
				name = lf.TableName
			}
		}
		t, err := ReadCSV(name, id, f)
		f.Close()
		if err != nil {
			return nil, err
		}
		for _, c := range t.Columns {
			if st, ok := lf.Types[c.Header]; ok {
				c.SemanticType = st
			}
			if sh, ok := lf.Synthetic[c.Header]; ok {
				c.SyntheticHeader = sh
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}
