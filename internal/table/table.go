// Package table defines the relational-table model shared by the corpus
// generators, the graph builder, and every classifier: tables with named,
// semantically-labeled columns of numeric or textual values, plus the
// column serialization formats of the paper (§3.1, §4.2).
package table

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind distinguishes numerical from non-numerical columns — the distinction
// at the heart of the paper.
type Kind int

const (
	// KindText marks non-numerical columns (V_nn nodes).
	KindText Kind = iota
	// KindNumeric marks numerical columns (V_n + V_ncf nodes).
	KindNumeric
)

func (k Kind) String() string {
	if k == KindNumeric {
		return "numeric"
	}
	return "text"
}

// Column is one table column: header, values, gold semantic type, and kind.
type Column struct {
	// Header is the original column header (e.g. "AssPG"). Excluded from
	// serializations by default because gold labels derive from headers
	// (paper §4.2).
	Header string
	// SyntheticHeader is an abbreviated stand-in header used by the
	// Table 4 (lower) serialization experiment.
	SyntheticHeader string
	// SemanticType is the gold label, e.g.
	// "basketball.player.assists_per_game".
	SemanticType string
	Kind         Kind
	// TextValues holds the cell values of text columns.
	TextValues []string
	// NumValues holds the cell values of numeric columns.
	NumValues []float64
}

// Len returns the number of values in the column.
func (c *Column) Len() int {
	if c.Kind == KindNumeric {
		return len(c.NumValues)
	}
	return len(c.TextValues)
}

// ValueStrings renders up to max values as strings (all when max <= 0).
// Numeric values use a compact decimal form so serializations stay short.
func (c *Column) ValueStrings(max int) []string {
	n := c.Len()
	if max > 0 && n > max {
		n = max
	}
	out := make([]string, n)
	if c.Kind == KindNumeric {
		for i := 0; i < n; i++ {
			out[i] = FormatNumber(c.NumValues[i])
		}
	} else {
		copy(out, c.TextValues[:n])
	}
	return out
}

// FormatNumber renders a float the way cells appear in real CSVs: integers
// without a decimal point, others with up to 4 significant decimals.
func FormatNumber(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 5, 64)
}

// Table is a named table with ordered columns.
type Table struct {
	// Name is the table name (e.g. "NBA Ply Stats") — the V_tn node.
	Name string
	// ID uniquely identifies the table within a corpus.
	ID      string
	Columns []*Column
}

// NumRows returns the row count (0 for a table with no columns).
func (t *Table) NumRows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return t.Columns[0].Len()
}

// NumericColumns returns the indices of numeric columns in order.
func (t *Table) NumericColumns() []int {
	var idx []int
	for i, c := range t.Columns {
		if c.Kind == KindNumeric {
			idx = append(idx, i)
		}
	}
	return idx
}

// TextColumns returns the indices of non-numerical columns in order.
func (t *Table) TextColumns() []int {
	var idx []int
	for i, c := range t.Columns {
		if c.Kind == KindText {
			idx = append(idx, i)
		}
	}
	return idx
}

// Validate checks structural invariants: consistent row counts, labels
// present, kind/value agreement.
func (t *Table) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("table %q: empty name", t.ID)
	}
	rows := -1
	for i, c := range t.Columns {
		if c.SemanticType == "" {
			return fmt.Errorf("table %q col %d: missing semantic type", t.ID, i)
		}
		if c.Kind == KindNumeric && len(c.TextValues) > 0 {
			return fmt.Errorf("table %q col %d: numeric column holds text values", t.ID, i)
		}
		if c.Kind == KindText && len(c.NumValues) > 0 {
			return fmt.Errorf("table %q col %d: text column holds numeric values", t.ID, i)
		}
		if rows == -1 {
			rows = c.Len()
		} else if c.Len() != rows {
			return fmt.Errorf("table %q col %d: %d rows, want %d", t.ID, i, c.Len(), rows)
		}
	}
	return nil
}

// HeaderMode selects which header (if any) a serialization includes.
type HeaderMode int

const (
	// HeaderNone omits headers — the paper's main-experiment setting
	// (gold labels were derived from headers, §4.2).
	HeaderNone HeaderMode = iota
	// HeaderOriginal includes the original header (Table 4, "w/ original c_h").
	HeaderOriginal
	// HeaderSynthetic includes the abbreviated synthetic header
	// (Table 4, "w/ synthesized c_h").
	HeaderSynthetic
)

// SerializeOptions controls column serialization.
type SerializeOptions struct {
	Header HeaderMode
	// MaxValues caps the number of cell values included (0 = all). The
	// paper serializes all values; Doduo's 512-token budget truncates
	// downstream instead.
	MaxValues int
}

// SerializeColumn renders the paper's input sequence for one column:
//
//	[CLS] c_h v1 v2 ... vm [SEP]
//
// with c_h included only per opts.Header.
func SerializeColumn(c *Column, opts SerializeOptions) string {
	var sb strings.Builder
	sb.WriteString("[CLS]")
	switch opts.Header {
	case HeaderOriginal:
		if c.Header != "" {
			sb.WriteByte(' ')
			sb.WriteString(c.Header)
		}
	case HeaderSynthetic:
		if c.SyntheticHeader != "" {
			sb.WriteByte(' ')
			sb.WriteString(c.SyntheticHeader)
		}
	}
	for _, v := range c.ValueStrings(opts.MaxValues) {
		sb.WriteByte(' ')
		sb.WriteString(v)
	}
	sb.WriteString(" [SEP]")
	return sb.String()
}

// SerializeTableName renders "[CLS] t_n [SEP]" for the table-name node.
func SerializeTableName(t *Table) string {
	return "[CLS] " + t.Name + " [SEP]"
}
