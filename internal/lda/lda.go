// Package lda implements Latent Dirichlet Allocation via collapsed Gibbs
// sampling. Sato uses LDA topic vectors of whole tables as its
// table-context feature; this package provides that substrate.
package lda

import (
	"fmt"
	"math/rand"
)

// Model is a trained LDA topic model.
type Model struct {
	K     int // topics
	Alpha float64
	Beta  float64

	vocab   map[string]int
	vocabID []string
	// topicWord[k][w] = count of word w assigned to topic k (+ derived
	// probabilities after training).
	topicWord  [][]float64
	topicTotal []float64
}

// Config controls training.
type Config struct {
	Topics     int
	Alpha      float64 // document-topic prior (default 0.1)
	Beta       float64 // topic-word prior (default 0.01)
	Iterations int     // Gibbs sweeps (default 50)
	Seed       int64
}

// Train fits an LDA model on documents (each a bag of tokens). Documents
// with no tokens are allowed and simply contribute nothing.
func Train(docs [][]string, cfg Config) (*Model, error) {
	if cfg.Topics <= 0 {
		return nil, fmt.Errorf("lda: Topics must be positive, got %d", cfg.Topics)
	}
	if cfg.Alpha == 0 {
		// Short documents (tables serialize to a few dozen tokens) need a
		// small prior or smoothing drowns the signal.
		cfg.Alpha = 0.1
	}
	if cfg.Beta == 0 {
		cfg.Beta = 0.01
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 50
	}
	m := &Model{K: cfg.Topics, Alpha: cfg.Alpha, Beta: cfg.Beta, vocab: map[string]int{}}

	// Build vocabulary and integer documents.
	intDocs := make([][]int, len(docs))
	for d, doc := range docs {
		ids := make([]int, len(doc))
		for i, w := range doc {
			id, ok := m.vocab[w]
			if !ok {
				id = len(m.vocabID)
				m.vocab[w] = id
				m.vocabID = append(m.vocabID, w)
			}
			ids[i] = id
		}
		intDocs[d] = ids
	}
	v := len(m.vocabID)
	if v == 0 {
		return nil, fmt.Errorf("lda: empty corpus")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	k := cfg.Topics
	topicWord := make([][]int, k)
	for i := range topicWord {
		topicWord[i] = make([]int, v)
	}
	topicTotal := make([]int, k)
	docTopic := make([][]int, len(intDocs))
	assign := make([][]int, len(intDocs))
	for d, doc := range intDocs {
		docTopic[d] = make([]int, k)
		assign[d] = make([]int, len(doc))
		for i, w := range doc {
			z := rng.Intn(k)
			assign[d][i] = z
			docTopic[d][z]++
			topicWord[z][w]++
			topicTotal[z]++
		}
	}

	probs := make([]float64, k)
	vBeta := float64(v) * cfg.Beta
	for it := 0; it < cfg.Iterations; it++ {
		for d, doc := range intDocs {
			for i, w := range doc {
				z := assign[d][i]
				docTopic[d][z]--
				topicWord[z][w]--
				topicTotal[z]--

				var total float64
				for t := 0; t < k; t++ {
					p := (float64(docTopic[d][t]) + cfg.Alpha) *
						(float64(topicWord[t][w]) + cfg.Beta) /
						(float64(topicTotal[t]) + vBeta)
					probs[t] = p
					total += p
				}
				r := rng.Float64() * total
				z = k - 1
				for t := 0; t < k; t++ {
					r -= probs[t]
					if r <= 0 {
						z = t
						break
					}
				}
				assign[d][i] = z
				docTopic[d][z]++
				topicWord[z][w]++
				topicTotal[z]++
			}
		}
	}

	// Freeze word-topic statistics for inference.
	m.topicWord = make([][]float64, k)
	m.topicTotal = make([]float64, k)
	for t := 0; t < k; t++ {
		m.topicWord[t] = make([]float64, v)
		for w := 0; w < v; w++ {
			m.topicWord[t][w] = float64(topicWord[t][w])
		}
		m.topicTotal[t] = float64(topicTotal[t])
	}
	return m, nil
}

// Infer estimates the topic distribution of a new document by a short Gibbs
// run against the frozen word-topic counts. Unknown words are skipped. The
// result sums to 1 (uniform for an empty/unknown-only document).
func (m *Model) Infer(doc []string, iterations int, seed int64) []float64 {
	if iterations <= 0 {
		iterations = 20
	}
	var ids []int
	for _, w := range doc {
		if id, ok := m.vocab[w]; ok {
			ids = append(ids, id)
		}
	}
	out := make([]float64, m.K)
	if len(ids) == 0 {
		for i := range out {
			out[i] = 1 / float64(m.K)
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	docTopic := make([]int, m.K)
	assign := make([]int, len(ids))
	for i := range ids {
		z := rng.Intn(m.K)
		assign[i] = z
		docTopic[z]++
	}
	v := len(m.vocabID)
	vBeta := float64(v) * m.Beta
	probs := make([]float64, m.K)
	for it := 0; it < iterations; it++ {
		for i, w := range ids {
			z := assign[i]
			docTopic[z]--
			var total float64
			for t := 0; t < m.K; t++ {
				p := (float64(docTopic[t]) + m.Alpha) *
					(m.topicWord[t][w] + m.Beta) /
					(m.topicTotal[t] + vBeta)
				probs[t] = p
				total += p
			}
			r := rng.Float64() * total
			z = m.K - 1
			for t := 0; t < m.K; t++ {
				r -= probs[t]
				if r <= 0 {
					z = t
					break
				}
			}
			assign[i] = z
			docTopic[z]++
		}
	}
	total := float64(len(ids)) + float64(m.K)*m.Alpha
	for t := 0; t < m.K; t++ {
		out[t] = (float64(docTopic[t]) + m.Alpha) / total
	}
	return out
}

// VocabSize returns the number of distinct training words.
func (m *Model) VocabSize() int { return len(m.vocabID) }
