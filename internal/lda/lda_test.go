package lda

import (
	"math"
	"testing"
)

func topicCorpus() [][]string {
	sports := []string{"player", "game", "score", "team", "season", "points", "league"}
	finance := []string{"revenue", "profit", "quarter", "euro", "stock", "market", "price"}
	var docs [][]string
	for i := 0; i < 30; i++ {
		docs = append(docs, sports)
		docs = append(docs, finance)
	}
	return docs
}

func TestTrainBasics(t *testing.T) {
	m, err := Train(topicCorpus(), Config{Topics: 2, Iterations: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 2 {
		t.Fatalf("K = %d", m.K)
	}
	if m.VocabSize() != 14 {
		t.Fatalf("vocab = %d, want 14", m.VocabSize())
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	if _, err := Train(topicCorpus(), Config{Topics: 0}); err == nil {
		t.Fatal("Topics=0 must error")
	}
	if _, err := Train(nil, Config{Topics: 2}); err == nil {
		t.Fatal("empty corpus must error")
	}
}

func TestInferSumsToOne(t *testing.T) {
	m, err := Train(topicCorpus(), Config{Topics: 3, Iterations: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	theta := m.Infer([]string{"player", "game", "score"}, 20, 1)
	var s float64
	for _, p := range theta {
		if p < 0 {
			t.Fatal("negative topic probability")
		}
		s += p
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("topic distribution sums to %v", s)
	}
}

func TestInferSeparatesTopics(t *testing.T) {
	// Documents from clearly distinct vocabularies must get clearly
	// distinct topic vectors — the property Sato relies on.
	m, err := Train(topicCorpus(), Config{Topics: 2, Iterations: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := m.Infer([]string{"player", "game", "team", "points", "league", "season"}, 40, 1)
	b := m.Infer([]string{"revenue", "profit", "stock", "market", "euro", "price"}, 40, 1)
	var dist float64
	for i := range a {
		dist += math.Abs(a[i] - b[i])
	}
	if dist < 0.5 {
		t.Fatalf("sports vs finance topic distance = %v, want separation", dist)
	}
}

func TestInferUnknownWordsUniform(t *testing.T) {
	m, err := Train(topicCorpus(), Config{Topics: 4, Iterations: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	theta := m.Infer([]string{"zzz", "qqq"}, 10, 1)
	for _, p := range theta {
		if math.Abs(p-0.25) > 1e-9 {
			t.Fatalf("unknown-word doc should be uniform, got %v", theta)
		}
	}
}

func TestInferEmptyDoc(t *testing.T) {
	m, err := Train(topicCorpus(), Config{Topics: 2, Iterations: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	theta := m.Infer(nil, 10, 1)
	if len(theta) != 2 || math.Abs(theta[0]+theta[1]-1) > 1e-9 {
		t.Fatalf("empty doc inference = %v", theta)
	}
}

func TestInferDeterministicPerSeed(t *testing.T) {
	m, err := Train(topicCorpus(), Config{Topics: 2, Iterations: 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	a := m.Infer([]string{"player", "game"}, 20, 42)
	b := m.Infer([]string{"player", "game"}, 20, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same inference")
		}
	}
}
