package features_test

import (
	"fmt"

	"github.com/sematype/pythagoras/internal/features"
)

// ExampleExtract computes the 192 statistical features of a numerical
// column — the vector carried by its V_ncf node.
func ExampleExtract() {
	assistsPerGame := []float64{7.5, 2.1, 5.3, 3.8, 6.1}
	vec := features.Extract(assistsPerGame)
	fmt.Println("features:", len(vec))
	names := features.Names()
	fmt.Printf("%s = %.1f\n", names[0], vec[0])   // count
	fmt.Printf("%s = %.2f\n", names[10], vec[10]) // mean
	// Output:
	// features: 192
	// count = 5.0
	// mean = 4.96
}
