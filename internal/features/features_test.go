package features

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactly192Features(t *testing.T) {
	if len(registry) != 192 {
		t.Fatalf("registry has %d features, paper requires 192", len(registry))
	}
	if got := len(Extract([]float64{1, 2, 3})); got != Dim {
		t.Fatalf("Extract returned %d values", got)
	}
	if got := len(Names()); got != Dim {
		t.Fatalf("Names returned %d", got)
	}
}

func TestFeatureNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range Names() {
		if n == "" {
			t.Fatal("empty feature name")
		}
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func featureByName(t *testing.T, name string) func(*Summary) float64 {
	t.Helper()
	for _, f := range registry {
		if f.Name == name {
			return f.Fn
		}
	}
	t.Fatalf("no feature %q", name)
	return nil
}

func TestSummarizeBasicStats(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary: %+v", s)
	}
	if math.Abs(s.Mean-3) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.Var-2) > 1e-12 {
		t.Fatalf("var = %v", s.Var)
	}
	if s.NUnique != 5 || s.NZero != 0 || s.NNeg != 0 || s.NPos != 5 {
		t.Fatalf("counts: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatal("empty summary N != 0")
	}
	// every feature must be finite on empty input
	for _, f := range registry {
		v := f.Fn(s)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %q = %v on empty input", f.Name, v)
		}
	}
}

func TestSummarizeSingleValue(t *testing.T) {
	s := Summarize([]float64{42})
	for _, f := range registry {
		v := f.Fn(s)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %q = %v on single value", f.Name, v)
		}
	}
	if s.Std != 0 {
		t.Fatal("single value must have zero std")
	}
}

func TestSummarizeConstantColumn(t *testing.T) {
	s := Summarize([]float64{7, 7, 7, 7})
	if s.Std != 0 || s.NUnique != 1 {
		t.Fatalf("constant column: std=%v unique=%d", s.Std, s.NUnique)
	}
	for _, f := range registry {
		v := f.Fn(s)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %q = %v on constant column", f.Name, v)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if got := s.Quantile(0.5); got != 5 {
		t.Fatalf("median of {0,10} = %v", got)
	}
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
}

func TestSkewnessSign(t *testing.T) {
	rightSkewed := []float64{1, 1, 1, 1, 2, 2, 3, 10, 50}
	s := Summarize(rightSkewed)
	if s.Skew <= 0 {
		t.Fatalf("right-skewed data has skew %v", s.Skew)
	}
}

func TestIntegralityFeatures(t *testing.T) {
	fn := featureByName(t, "frac_integer")
	if got := fn(Summarize([]float64{1, 2, 3})); got != 1 {
		t.Fatalf("frac_integer(ints) = %v", got)
	}
	if got := fn(Summarize([]float64{1.5, 2.5})); got != 0 {
		t.Fatalf("frac_integer(halves) = %v", got)
	}
	half := featureByName(t, "frac_half_integer")
	if got := half(Summarize([]float64{1.5, 2.5, 3})); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("frac_half_integer = %v", got)
	}
}

func TestYearDetector(t *testing.T) {
	fn := featureByName(t, "frac_year_like")
	if got := fn(Summarize([]float64{1995, 2001, 2023})); got != 1 {
		t.Fatalf("year detector on years = %v", got)
	}
	if got := fn(Summarize([]float64{7.5, 12.3})); got != 0 {
		t.Fatalf("year detector on floats = %v", got)
	}
}

func TestMonthDayDetectors(t *testing.T) {
	month := featureByName(t, "frac_month_like")
	if got := month(Summarize([]float64{1, 6, 12})); got != 1 {
		t.Fatalf("month detector = %v", got)
	}
	if got := month(Summarize([]float64{13, 0})); got != 0 {
		t.Fatalf("month detector out of range = %v", got)
	}
	day := featureByName(t, "frac_day_like")
	if got := day(Summarize([]float64{1, 15, 31})); got != 1 {
		t.Fatalf("day detector = %v", got)
	}
}

func TestLeadingDigit(t *testing.T) {
	cases := map[float64]int{123: 1, 0.05: 5, 9: 9, 0: 0, -42: 4, 1e9: 1}
	for in, want := range cases {
		if got := leadingDigit(in); got != want {
			t.Errorf("leadingDigit(%v) = %d, want %d", in, got, want)
		}
	}
}

func TestBenfordOnBenfordData(t *testing.T) {
	// Values sampled log-uniformly follow Benford's law → low chi2.
	rng := rand.New(rand.NewSource(1))
	benford := make([]float64, 5000)
	for i := range benford {
		benford[i] = math.Pow(10, rng.Float64()*6)
	}
	uniform := make([]float64, 5000)
	for i := range uniform {
		uniform[i] = 500 + rng.Float64()*99 // leading digit always 5
	}
	chi2 := featureByName(t, "benford_chi2")
	b := chi2(Summarize(benford))
	u := chi2(Summarize(uniform))
	if b >= u {
		t.Fatalf("benford chi2: benford=%v should be < concentrated=%v", b, u)
	}
}

func TestSortednessFeatures(t *testing.T) {
	asc := featureByName(t, "frac_ascending_pairs")
	mono := featureByName(t, "is_monotonic_inc")
	s := Summarize([]float64{1, 2, 3, 4})
	if asc(s) != 1 || mono(s) != 1 {
		t.Fatal("ascending sequence not detected")
	}
	s2 := Summarize([]float64{4, 3, 2, 1})
	if asc(s2) != 0 || mono(s2) != 0 {
		t.Fatal("descending sequence misdetected")
	}
	if featureByName(t, "is_monotonic_dec")(s2) != 1 {
		t.Fatal("monotonic decreasing not detected")
	}
}

func TestOutlierFeatures(t *testing.T) {
	base := make([]float64, 99)
	for i := range base {
		base[i] = float64(i % 10)
	}
	withOutlier := append(append([]float64{}, base...), 1e6)
	f := featureByName(t, "frac_beyond_3std")
	if f(Summarize(base)) != 0 {
		t.Fatal("clean data flagged outliers")
	}
	if f(Summarize(withOutlier)) == 0 {
		t.Fatal("outlier missed")
	}
}

func TestEntropyFeatures(t *testing.T) {
	ent := featureByName(t, "value_entropy_norm")
	uniform := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	constant := Summarize([]float64{5, 5, 5, 5})
	if ent(uniform) < 0.99 {
		t.Fatalf("uniform entropy = %v, want ≈1", ent(uniform))
	}
	if ent(constant) != 0 {
		t.Fatalf("constant entropy = %v, want 0", ent(constant))
	}
}

func TestModeFrac(t *testing.T) {
	fn := featureByName(t, "mode_frac")
	if got := fn(Summarize([]float64{1, 1, 1, 2})); got != 0.75 {
		t.Fatalf("mode_frac = %v", got)
	}
}

func TestHistogramSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 10
	}
	s := Summarize(vals)
	var total float64
	for b := 0; b < 10; b++ {
		total += featureByName(t, "hist10_"+string(rune('0'+b)))(s)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("histogram sums to %v", total)
	}
}

func TestDecimalPlaces(t *testing.T) {
	cases := map[float64]int{1: 0, 1.5: 1, 3.25: 2, 100: 0}
	for in, want := range cases {
		if got := decimalPlaces(in); got != want {
			t.Errorf("decimalPlaces(%v) = %d, want %d", in, got, want)
		}
	}
}

func TestAllFeaturesFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50)
		vals := make([]float64, n)
		for i := range vals {
			switch rng.Intn(4) {
			case 0:
				vals[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)))
			case 1:
				vals[i] = float64(rng.Intn(1000))
			case 2:
				vals[i] = 0
			default:
				vals[i] = -rng.Float64()
			}
		}
		for _, v := range Extract(vals) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractNormalizedBounded(t *testing.T) {
	vals := []float64{1e12, -1e12, 5, 0}
	for i, v := range ExtractNormalized(vals) {
		if math.Abs(v) > 20 {
			t.Fatalf("normalized feature %d (%s) = %v, too large", i, Names()[i], v)
		}
	}
}

func TestExtractDoesNotMutateInput(t *testing.T) {
	vals := []float64{3, 1, 2}
	Extract(vals)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatal("Extract mutated its input")
	}
}

func TestDistributionsDistinguishable(t *testing.T) {
	// The reason V_ncf exists: same range, different shape must produce
	// different feature vectors (paper §3.2).
	rng := rand.New(rand.NewSource(3))
	normal := make([]float64, 200)
	uniform := make([]float64, 200)
	for i := range normal {
		normal[i] = 50 + 10*rng.NormFloat64()
		uniform[i] = 20 + 60*rng.Float64()
	}
	a := Extract(normal)
	b := Extract(uniform)
	var dist float64
	for i := range a {
		d := a[i] - b[i]
		dist += d * d
	}
	if math.Sqrt(dist) < 1 {
		t.Fatalf("normal vs uniform distance = %v, expected clearly separated", math.Sqrt(dist))
	}
}

func BenchmarkExtract200Values(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(vals)
	}
}
