package features

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestFeaturesDocInSync keeps FEATURES.md (the reproduction of the paper's
// extended-technical-report feature list) in lockstep with the registry.
// Regenerate with: REGEN_FEATURES_MD=1 go test ./internal/features -run TestFeaturesDocInSync
func TestFeaturesDocInSync(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("# The 192 Statistical Features of Numerical Columns\n\n")
	sb.WriteString("This file reproduces the feature list the paper publishes in its\n")
	sb.WriteString("extended technical report (§2.1): the vector carried by each V_ncf\n")
	sb.WriteString("node. It is generated from the registry in internal/features and kept\n")
	sb.WriteString("in sync by TestFeaturesDocInSync.\n\n")
	sb.WriteString("| # | Feature |\n|---|---|\n")
	for i, name := range Names() {
		fmt.Fprintf(&sb, "| %d | `%s` |\n", i+1, name)
	}
	want := sb.String()

	const path = "../../FEATURES.md"
	if os.Getenv("REGEN_FEATURES_MD") != "" {
		if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("FEATURES.md missing (regenerate with REGEN_FEATURES_MD=1): %v", err)
	}
	if string(got) != want {
		t.Fatal("FEATURES.md out of sync with the feature registry; regenerate with REGEN_FEATURES_MD=1")
	}
}
