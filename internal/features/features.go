// Package features extracts the paper's 192 statistical features of
// numerical columns (§2.1) — the vector carried by each V_ncf node and fed
// through the numeric subnetwork.
//
// The published feature list lives in the paper's technical report; this
// implementation reconstructs it from the families the paper and its
// Sherlock ancestry describe: moments, quantiles, sign/integrality
// structure, digit and Benford statistics, sortedness, gaps, outliers,
// entropy, and range-membership detectors for common real-world numeric
// types (years, months, latitudes, percentages, …). A registry gives every
// feature a stable name and position; the package test pins the count to
// exactly 192.
package features

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Dim is the number of features extracted per numeric column.
const Dim = 192

// Feature couples a stable name with its extractor.
type Feature struct {
	Name string
	Fn   func(*Summary) float64
}

var registry []Feature

// Names returns the feature names in vector order.
func Names() []string {
	out := make([]string, len(registry))
	for i, f := range registry {
		out[i] = f.Name
	}
	return out
}

// Summary holds the precomputed statistics all features derive from. It is
// exported so callers can reuse one pass over the data for multiple
// purposes (e.g. the corpus validators).
type Summary struct {
	Values []float64 // original order
	Sorted []float64
	N      int

	Mean, Var, Std, Skew, Kurt float64
	Min, Max                   float64
	Sum                        float64

	NUnique    int
	NZero      int
	NNeg, NPos int

	// log-domain moments over log1p(|x|)
	LogMean, LogStd, LogSkew, LogKurt float64

	counts map[float64]int

	// Lazily memoized renderings shared by the string-form and
	// decimal-place features — formatting floats is expensive enough to
	// show up in inference profiles, so each value is rendered once per
	// Summary instead of once per feature. A Summary is not safe for
	// concurrent use.
	strs    []string
	strLens []int
	decs    []int
}

// Strs returns every value rendered via FormatFloat(v, 'g', -1, 64) in
// original order, computed once per Summary.
func (s *Summary) Strs() []string {
	if s.strs == nil {
		s.strs = make([]string, s.N)
		for i, v := range s.Values {
			s.strs[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
	}
	return s.strs
}

// strLengths returns len(Strs()[i]) per value, computed once per Summary.
func (s *Summary) strLengths() []int {
	if s.strLens == nil {
		strs := s.Strs()
		s.strLens = make([]int, len(strs))
		for i, str := range strs {
			s.strLens[i] = len(str)
		}
	}
	return s.strLens
}

// decimals returns decimalPlaces(v) per value, computed once per Summary.
func (s *Summary) decimals() []int {
	if s.decs == nil {
		s.decs = make([]int, s.N)
		for i, v := range s.Values {
			s.decs[i] = decimalPlaces(v)
		}
	}
	return s.decs
}

// Summarize computes a Summary for values. It never mutates the input.
func Summarize(values []float64) *Summary {
	s := &Summary{Values: values, N: len(values), counts: make(map[float64]int)}
	if s.N == 0 {
		return s
	}
	s.Sorted = append([]float64(nil), values...)
	sort.Float64s(s.Sorted)
	s.Min, s.Max = s.Sorted[0], s.Sorted[s.N-1]

	var sum, sum2 float64
	logs := make([]float64, s.N)
	for i, v := range values {
		sum += v
		sum2 += v * v
		s.counts[v]++
		switch {
		case v == 0:
			s.NZero++
		case v < 0:
			s.NNeg++
		default:
			s.NPos++
		}
		logs[i] = math.Log1p(math.Abs(v))
	}
	s.Sum = sum
	n := float64(s.N)
	s.Mean = sum / n
	s.Var = sum2/n - s.Mean*s.Mean
	if s.Var < 0 {
		s.Var = 0
	}
	s.Std = math.Sqrt(s.Var)
	s.NUnique = len(s.counts)

	if s.Std > 0 {
		var m3, m4 float64
		for _, v := range values {
			d := (v - s.Mean) / s.Std
			m3 += d * d * d
			m4 += d * d * d * d
		}
		s.Skew = m3 / n
		s.Kurt = m4/n - 3
	}
	s.LogMean, s.LogStd, s.LogSkew, s.LogKurt = moments(logs)
	return s
}

func moments(xs []float64) (mean, std, skew, kurt float64) {
	n := float64(len(xs))
	if n == 0 {
		return
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	mean = sum / n
	var v2 float64
	for _, v := range xs {
		d := v - mean
		v2 += d * d
	}
	std = math.Sqrt(v2 / n)
	if std > 0 {
		var m3, m4 float64
		for _, v := range xs {
			d := (v - mean) / std
			m3 += d * d * d
			m4 += d * d * d * d
		}
		skew = m3 / n
		kurt = m4/n - 3
	}
	return
}

// Quantile returns the q-th quantile (0..1) of the sorted data by linear
// interpolation. Returns 0 for empty summaries.
func (s *Summary) Quantile(q float64) float64 {
	if s.N == 0 {
		return 0
	}
	if s.N == 1 {
		return s.Sorted[0]
	}
	pos := q * float64(s.N-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if hi >= s.N {
		hi = s.N - 1
	}
	frac := pos - float64(lo)
	return s.Sorted[lo]*(1-frac) + s.Sorted[hi]*frac
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// clamp keeps pathological magnitudes (heavy-tailed kurtosis, huge value
// ranges) from destabilizing downstream networks.
func clamp(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return math.Max(-1e6, math.Min(1e6, v))
}

func frac(s *Summary, pred func(float64) bool) float64 {
	if s.N == 0 {
		return 0
	}
	c := 0
	for _, v := range s.Values {
		if pred(v) {
			c++
		}
	}
	return float64(c) / float64(s.N)
}

func isInt(v float64) bool { return v == math.Trunc(v) }

func add(name string, fn func(*Summary) float64) {
	registry = append(registry, Feature{Name: name, Fn: fn})
}

func init() {
	buildRegistry()
	if len(registry) != Dim {
		panic(fmt.Sprintf("features: registry has %d entries, want %d", len(registry), Dim))
	}
}

func buildRegistry() {
	// --- counts & cardinality (10) ---
	add("count", func(s *Summary) float64 { return float64(s.N) })
	add("log_count", func(s *Summary) float64 { return math.Log1p(float64(s.N)) })
	add("n_unique", func(s *Summary) float64 { return float64(s.NUnique) })
	add("log_n_unique", func(s *Summary) float64 { return math.Log1p(float64(s.NUnique)) })
	add("unique_ratio", func(s *Summary) float64 { return safeDiv(float64(s.NUnique), float64(s.N)) })
	add("n_zero", func(s *Summary) float64 { return float64(s.NZero) })
	add("frac_zero", func(s *Summary) float64 { return safeDiv(float64(s.NZero), float64(s.N)) })
	add("frac_negative", func(s *Summary) float64 { return safeDiv(float64(s.NNeg), float64(s.N)) })
	add("frac_positive", func(s *Summary) float64 { return safeDiv(float64(s.NPos), float64(s.N)) })
	add("all_unique", func(s *Summary) float64 { return boolF(s.N > 0 && s.NUnique == s.N) })

	// --- raw moments (8) ---
	add("mean", func(s *Summary) float64 { return clamp(s.Mean) })
	add("variance", func(s *Summary) float64 { return clamp(s.Var) })
	add("std", func(s *Summary) float64 { return clamp(s.Std) })
	add("skewness", func(s *Summary) float64 { return clamp(s.Skew) })
	add("kurtosis", func(s *Summary) float64 { return clamp(s.Kurt) })
	add("coef_variation", func(s *Summary) float64 { return clamp(safeDiv(s.Std, math.Abs(s.Mean))) })
	add("mean_abs", func(s *Summary) float64 {
		var t float64
		for _, v := range s.Values {
			t += math.Abs(v)
		}
		return clamp(safeDiv(t, float64(s.N)))
	})
	add("rms", func(s *Summary) float64 {
		var t float64
		for _, v := range s.Values {
			t += v * v
		}
		return clamp(math.Sqrt(safeDiv(t, float64(s.N))))
	})

	// --- robust stats (6) ---
	add("median", func(s *Summary) float64 { return clamp(s.Quantile(0.5)) })
	add("mad", func(s *Summary) float64 {
		if s.N == 0 {
			return 0
		}
		med := s.Quantile(0.5)
		devs := make([]float64, s.N)
		for i, v := range s.Values {
			devs[i] = math.Abs(v - med)
		}
		sort.Float64s(devs)
		return clamp((&Summary{Sorted: devs, N: len(devs)}).Quantile(0.5))
	})
	add("iqr", func(s *Summary) float64 { return clamp(s.Quantile(0.75) - s.Quantile(0.25)) })
	add("trimmed_mean_10", func(s *Summary) float64 {
		if s.N == 0 {
			return 0
		}
		lo, hi := int(0.1*float64(s.N)), s.N-int(0.1*float64(s.N))
		if lo >= hi {
			return clamp(s.Mean)
		}
		var t float64
		for _, v := range s.Sorted[lo:hi] {
			t += v
		}
		return clamp(t / float64(hi-lo))
	})
	add("midhinge", func(s *Summary) float64 { return clamp((s.Quantile(0.25) + s.Quantile(0.75)) / 2) })
	add("range_over_iqr", func(s *Summary) float64 {
		return clamp(safeDiv(s.Max-s.Min, s.Quantile(0.75)-s.Quantile(0.25)))
	})

	// --- extremes (6) ---
	add("min", func(s *Summary) float64 { return clamp(s.Min) })
	add("max", func(s *Summary) float64 { return clamp(s.Max) })
	add("range", func(s *Summary) float64 { return clamp(s.Max - s.Min) })
	add("abs_max", func(s *Summary) float64 { return clamp(math.Max(math.Abs(s.Min), math.Abs(s.Max))) })
	add("mid_range", func(s *Summary) float64 { return clamp((s.Min + s.Max) / 2) })
	add("log_range", func(s *Summary) float64 { return math.Log1p(math.Abs(s.Max - s.Min)) })

	// --- quantiles (17) ---
	for _, q := range []float64{0.01, 0.025, 0.05, 0.10, 0.20, 0.25, 0.30, 0.40, 0.50, 0.60, 0.70, 0.75, 0.80, 0.90, 0.95, 0.975, 0.99} {
		q := q
		add(fmt.Sprintf("p%g", q*100), func(s *Summary) float64 { return clamp(s.Quantile(q)) })
	}

	// --- z-scored quantiles (10) ---
	for _, q := range []float64{0.05, 0.10, 0.25, 0.40, 0.50, 0.60, 0.75, 0.90, 0.95, 0.99} {
		q := q
		add(fmt.Sprintf("z_p%g", q*100), func(s *Summary) float64 {
			return clamp(safeDiv(s.Quantile(q)-s.Mean, s.Std))
		})
	}

	// --- quantile shape ratios (5) ---
	add("quartile_skew", func(s *Summary) float64 {
		q1, q2, q3 := s.Quantile(0.25), s.Quantile(0.5), s.Quantile(0.75)
		return clamp(safeDiv(q3+q1-2*q2, q3-q1))
	})
	add("decile_range_ratio", func(s *Summary) float64 {
		return clamp(safeDiv(s.Quantile(0.9)-s.Quantile(0.1), s.Max-s.Min))
	})
	add("p99_over_p50", func(s *Summary) float64 { return clamp(safeDiv(s.Quantile(0.99), s.Quantile(0.5))) })
	add("p50_over_p1", func(s *Summary) float64 { return clamp(safeDiv(s.Quantile(0.5), s.Quantile(0.01))) })
	add("mean_over_median", func(s *Summary) float64 { return clamp(safeDiv(s.Mean, s.Quantile(0.5))) })

	// --- log-domain moments (6) ---
	add("log_mean", func(s *Summary) float64 { return clamp(s.LogMean) })
	add("log_std", func(s *Summary) float64 { return clamp(s.LogStd) })
	add("log_skew", func(s *Summary) float64 { return clamp(s.LogSkew) })
	add("log_kurt", func(s *Summary) float64 { return clamp(s.LogKurt) })
	add("frac_abs_gt_1", func(s *Summary) float64 { return frac(s, func(v float64) bool { return math.Abs(v) > 1 }) })
	add("geo_mean_pos", func(s *Summary) float64 {
		var t float64
		c := 0
		for _, v := range s.Values {
			if v > 0 {
				t += math.Log(v)
				c++
			}
		}
		if c == 0 {
			return 0
		}
		return clamp(math.Exp(t / float64(c)))
	})

	// --- integrality & divisibility (8) ---
	add("frac_integer", func(s *Summary) float64 { return frac(s, isInt) })
	add("frac_half_integer", func(s *Summary) float64 {
		return frac(s, func(v float64) bool { return isInt(v*2) && !isInt(v) })
	})
	add("mean_decimal_places", func(s *Summary) float64 {
		var t float64
		for _, d := range s.decimals() {
			t += float64(d)
		}
		return safeDiv(t, float64(s.N))
	})
	add("max_decimal_places", func(s *Summary) float64 {
		mx := 0
		for _, d := range s.decimals() {
			if d > mx {
				mx = d
			}
		}
		return float64(mx)
	})
	add("frac_le2_decimals", func(s *Summary) float64 {
		if s.N == 0 {
			return 0
		}
		c := 0
		for _, d := range s.decimals() {
			if d <= 2 {
				c++
			}
		}
		return float64(c) / float64(s.N)
	})
	add("frac_mult_5", func(s *Summary) float64 {
		return frac(s, func(v float64) bool { return isInt(v) && math.Mod(math.Abs(v), 5) == 0 })
	})
	add("frac_mult_10", func(s *Summary) float64 {
		return frac(s, func(v float64) bool { return isInt(v) && math.Mod(math.Abs(v), 10) == 0 })
	})
	add("frac_mult_100", func(s *Summary) float64 {
		return frac(s, func(v float64) bool { return isInt(v) && math.Mod(math.Abs(v), 100) == 0 })
	})

	// --- leading digit (Benford) distribution (11) ---
	for d := 1; d <= 9; d++ {
		d := d
		add(fmt.Sprintf("lead_digit_%d", d), func(s *Summary) float64 {
			return frac(s, func(v float64) bool { return leadingDigit(v) == d })
		})
	}
	add("benford_chi2", func(s *Summary) float64 {
		if s.N == 0 {
			return 0
		}
		var chi2 float64
		for d := 1; d <= 9; d++ {
			obs := frac(s, func(v float64) bool { return leadingDigit(v) == d })
			exp := math.Log10(1 + 1/float64(d))
			chi2 += (obs - exp) * (obs - exp) / exp
		}
		return clamp(chi2)
	})
	add("frac_no_lead_digit", func(s *Summary) float64 {
		return frac(s, func(v float64) bool { return leadingDigit(v) == 0 })
	})

	// --- digit-count histogram (10) ---
	for d := 1; d <= 9; d++ {
		d := d
		add(fmt.Sprintf("digits_%d", d), func(s *Summary) float64 {
			return frac(s, func(v float64) bool { return intDigits(v) == d })
		})
	}
	add("digits_10plus", func(s *Summary) float64 {
		return frac(s, func(v float64) bool { return intDigits(v) >= 10 })
	})

	// --- sequence / sortedness (10) ---
	add("frac_ascending_pairs", func(s *Summary) float64 { return pairFrac(s, func(a, b float64) bool { return b > a }) })
	add("frac_descending_pairs", func(s *Summary) float64 { return pairFrac(s, func(a, b float64) bool { return b < a }) })
	add("frac_equal_pairs", func(s *Summary) float64 { return pairFrac(s, func(a, b float64) bool { return b == a }) })
	add("is_monotonic_inc", func(s *Summary) float64 {
		return boolF(s.N > 1 && pairFrac(s, func(a, b float64) bool { return b >= a }) == 1)
	})
	add("is_monotonic_dec", func(s *Summary) float64 {
		return boolF(s.N > 1 && pairFrac(s, func(a, b float64) bool { return b <= a }) == 1)
	})
	add("autocorr_lag1", func(s *Summary) float64 {
		if s.N < 2 || s.Std == 0 {
			return 0
		}
		var t float64
		for i := 0; i+1 < s.N; i++ {
			t += (s.Values[i] - s.Mean) * (s.Values[i+1] - s.Mean)
		}
		return clamp(t / (float64(s.N-1) * s.Var))
	})
	add("mean_abs_diff", func(s *Summary) float64 {
		if s.N < 2 {
			return 0
		}
		var t float64
		for i := 0; i+1 < s.N; i++ {
			t += math.Abs(s.Values[i+1] - s.Values[i])
		}
		return clamp(t / float64(s.N-1))
	})
	add("std_diff", func(s *Summary) float64 {
		if s.N < 2 {
			return 0
		}
		diffs := make([]float64, s.N-1)
		for i := range diffs {
			diffs[i] = s.Values[i+1] - s.Values[i]
		}
		_, std, _, _ := moments(diffs)
		return clamp(std)
	})
	add("frac_constant_diff", func(s *Summary) float64 {
		if s.N < 3 {
			return 0
		}
		c := 0
		for i := 0; i+2 < s.N; i++ {
			if s.Values[i+1]-s.Values[i] == s.Values[i+2]-s.Values[i+1] {
				c++
			}
		}
		return float64(c) / float64(s.N-2)
	})
	add("direction_changes_ratio", func(s *Summary) float64 {
		if s.N < 3 {
			return 0
		}
		c := 0
		for i := 0; i+2 < s.N; i++ {
			d1, d2 := s.Values[i+1]-s.Values[i], s.Values[i+2]-s.Values[i+1]
			if d1*d2 < 0 {
				c++
			}
		}
		return float64(c) / float64(s.N-2)
	})

	// --- outliers (6) ---
	add("frac_beyond_1_5iqr", fracBeyondIQR(1.5))
	add("frac_beyond_3iqr", fracBeyondIQR(3))
	add("frac_beyond_2std", fracBeyondStd(2))
	add("frac_beyond_3std", fracBeyondStd(3))
	add("max_z", func(s *Summary) float64 { return clamp(safeDiv(s.Max-s.Mean, s.Std)) })
	add("min_z", func(s *Summary) float64 { return clamp(safeDiv(s.Min-s.Mean, s.Std)) })

	// --- entropy & concentration (8) ---
	add("entropy_10bins", func(s *Summary) float64 { return binEntropy(s, 10) })
	add("entropy_norm_10bins", func(s *Summary) float64 { return safeDiv(binEntropy(s, 10), math.Log(10)) })
	// sortedCounts yields the multiplicity of each distinct value in
	// ascending value order. Entropy-style features must accumulate in a
	// deterministic order: ranging over the counts map would perturb the
	// float sum at ulp level between calls, breaking the inference
	// engine's bit-identical batching contract.
	sortedCounts := func(s *Summary) []int {
		if s.N == 0 {
			return nil
		}
		var out []int
		run := 1
		for i := 1; i < len(s.Sorted); i++ {
			if s.Sorted[i] == s.Sorted[i-1] {
				run++
			} else {
				out = append(out, run)
				run = 1
			}
		}
		return append(out, run)
	}
	add("value_entropy", func(s *Summary) float64 {
		if s.N == 0 {
			return 0
		}
		var h float64
		for _, c := range sortedCounts(s) {
			p := float64(c) / float64(s.N)
			h -= p * math.Log(p)
		}
		return clamp(h)
	})
	add("value_entropy_norm", func(s *Summary) float64 {
		if s.NUnique <= 1 {
			return 0
		}
		var h float64
		for _, c := range sortedCounts(s) {
			p := float64(c) / float64(s.N)
			h -= p * math.Log(p)
		}
		return clamp(h / math.Log(float64(s.NUnique)))
	})
	add("gini", func(s *Summary) float64 {
		// Gini over shifted-positive values.
		if s.N == 0 {
			return 0
		}
		shift := 0.0
		if s.Min < 0 {
			shift = -s.Min
		}
		var num, den float64
		for i, v := range s.Sorted {
			num += float64(2*(i+1)-s.N-1) * (v + shift)
			den += v + shift
		}
		return clamp(safeDiv(num, float64(s.N)*den))
	})
	add("mode_frac", func(s *Summary) float64 {
		mx := 0
		for _, c := range s.counts {
			if c > mx {
				mx = c
			}
		}
		return safeDiv(float64(mx), float64(s.N))
	})
	add("top1_share", func(s *Summary) float64 {
		if s.N == 0 {
			return 0
		}
		var absSum float64
		for _, v := range s.Values {
			absSum += math.Abs(v)
		}
		return clamp(safeDiv(math.Max(math.Abs(s.Min), math.Abs(s.Max)), absSum))
	})
	add("uniform_ks", func(s *Summary) float64 {
		// KS distance to Uniform(min,max)
		if s.N == 0 || s.Max == s.Min {
			return 0
		}
		var d float64
		for i, v := range s.Sorted {
			emp := float64(i+1) / float64(s.N)
			th := (v - s.Min) / (s.Max - s.Min)
			if dd := math.Abs(emp - th); dd > d {
				d = dd
			}
		}
		return d
	})

	// --- gap structure over sorted values (8) ---
	add("mean_gap", gapStat(func(mean, std, mx, rng float64) float64 { return clamp(mean) }))
	add("std_gap", gapStat(func(mean, std, mx, rng float64) float64 { return clamp(std) }))
	add("cv_gap", gapStat(func(mean, std, mx, rng float64) float64 { return clamp(safeDiv(std, mean)) }))
	add("max_gap_frac", gapStat(func(mean, std, mx, rng float64) float64 { return clamp(safeDiv(mx, rng)) }))
	add("frac_duplicates", func(s *Summary) float64 {
		return safeDiv(float64(s.N-s.NUnique), float64(s.N))
	})
	add("longest_run_frac", func(s *Summary) float64 {
		if s.N == 0 {
			return 0
		}
		best, cur := 1, 1
		for i := 1; i < s.N; i++ {
			if s.Sorted[i] == s.Sorted[i-1] {
				cur++
				if cur > best {
					best = cur
				}
			} else {
				cur = 1
			}
		}
		return float64(best) / float64(s.N)
	})
	add("distinct_gaps_ratio", func(s *Summary) float64 {
		if s.N < 2 {
			return 0
		}
		gaps := make(map[float64]struct{})
		for i := 1; i < s.N; i++ {
			gaps[s.Sorted[i]-s.Sorted[i-1]] = struct{}{}
		}
		return float64(len(gaps)) / float64(s.N-1)
	})
	add("min_gap_nonzero", func(s *Summary) float64 {
		best := math.Inf(1)
		for i := 1; i < s.N; i++ {
			if g := s.Sorted[i] - s.Sorted[i-1]; g > 0 && g < best {
				best = g
			}
		}
		if math.IsInf(best, 1) {
			return 0
		}
		return clamp(best)
	})

	// --- range-membership detectors (20) ---
	addRange := func(name string, pred func(float64) bool) {
		add("frac_"+name, func(s *Summary) float64 { return frac(s, pred) })
	}
	addRange("in_01", func(v float64) bool { return v >= 0 && v <= 1 })
	addRange("in_0_100", func(v float64) bool { return v >= 0 && v <= 100 })
	addRange("in_0_1k", func(v float64) bool { return v >= 0 && v <= 1000 })
	addRange("in_0_1m", func(v float64) bool { return v >= 0 && v <= 1e6 })
	addRange("year_like", func(v float64) bool { return isInt(v) && v >= 1900 && v <= 2100 })
	addRange("month_like", func(v float64) bool { return isInt(v) && v >= 1 && v <= 12 })
	addRange("day_like", func(v float64) bool { return isInt(v) && v >= 1 && v <= 31 })
	addRange("hour_like", func(v float64) bool { return isInt(v) && v >= 0 && v <= 23 })
	addRange("lat_like", func(v float64) bool { return v >= -90 && v <= 90 && !isInt(v) })
	addRange("lon_like", func(v float64) bool { return v >= -180 && v <= 180 && !isInt(v) })
	addRange("percent_like", func(v float64) bool { return v >= 0 && v <= 100 && !isInt(v) })
	addRange("age_like", func(v float64) bool { return isInt(v) && v >= 0 && v <= 120 })
	addRange("small_int", func(v float64) bool { return isInt(v) && v >= 0 && v <= 10 })
	addRange("gt_1e6", func(v float64) bool { return math.Abs(v) > 1e6 })
	addRange("lt_1_abs", func(v float64) bool { return math.Abs(v) < 1 })
	add("all_in_01", func(s *Summary) float64 { return boolF(s.N > 0 && s.Min >= 0 && s.Max <= 1) })
	add("all_positive", func(s *Summary) float64 { return boolF(s.N > 0 && s.Min > 0) })
	add("all_nonneg", func(s *Summary) float64 { return boolF(s.N > 0 && s.Min >= 0) })
	add("all_negative", func(s *Summary) float64 { return boolF(s.N > 0 && s.Max < 0) })
	add("all_integer", func(s *Summary) float64 {
		return boolF(s.N > 0 && frac(s, isInt) == 1)
	})

	// --- string-form features of the rendered values (10) ---
	strStat := func(name string, fn func(lens []int, strs []string) float64) {
		add(name, func(s *Summary) float64 {
			return fn(s.strLengths(), s.Strs())
		})
	}
	strStat("mean_str_len", func(lens []int, _ []string) float64 {
		t := 0
		for _, l := range lens {
			t += l
		}
		return safeDiv(float64(t), float64(len(lens)))
	})
	strStat("max_str_len", func(lens []int, _ []string) float64 {
		mx := 0
		for _, l := range lens {
			if l > mx {
				mx = l
			}
		}
		return float64(mx)
	})
	strStat("min_str_len", func(lens []int, _ []string) float64 {
		if len(lens) == 0 {
			return 0
		}
		mn := lens[0]
		for _, l := range lens {
			if l < mn {
				mn = l
			}
		}
		return float64(mn)
	})
	strStat("std_str_len", func(lens []int, _ []string) float64 {
		xs := make([]float64, len(lens))
		for i, l := range lens {
			xs[i] = float64(l)
		}
		_, std, _, _ := moments(xs)
		return std
	})
	strStat("distinct_str_len_ratio", func(lens []int, _ []string) float64 {
		set := map[int]struct{}{}
		for _, l := range lens {
			set[l] = struct{}{}
		}
		return safeDiv(float64(len(set)), float64(len(lens)))
	})
	strStat("frac_contains_decimal", func(_ []int, strs []string) float64 {
		c := 0
		for _, s := range strs {
			if strings.ContainsRune(s, '.') {
				c++
			}
		}
		return safeDiv(float64(c), float64(len(strs)))
	})
	strStat("frac_scientific", func(_ []int, strs []string) float64 {
		c := 0
		for _, s := range strs {
			if strings.ContainsAny(s, "eE") {
				c++
			}
		}
		return safeDiv(float64(c), float64(len(strs)))
	})
	strStat("frac_minus_sign", func(_ []int, strs []string) float64 {
		c := 0
		for _, s := range strs {
			if strings.HasPrefix(s, "-") {
				c++
			}
		}
		return safeDiv(float64(c), float64(len(strs)))
	})
	add("frac_trailing_zero_int", func(s *Summary) float64 {
		return frac(s, func(v float64) bool {
			return isInt(v) && v != 0 && math.Mod(math.Abs(v), 10) == 0
		})
	})
	add("mean_int_digits", func(s *Summary) float64 {
		var t float64
		for _, v := range s.Values {
			t += float64(intDigits(v))
		}
		return safeDiv(t, float64(s.N))
	})

	// --- ratio / tail structure (8) ---
	add("ratio_max_mean", func(s *Summary) float64 { return clamp(safeDiv(s.Max, s.Mean)) })
	add("ratio_min_mean", func(s *Summary) float64 { return clamp(safeDiv(s.Min, s.Mean)) })
	add("ratio_std_range", func(s *Summary) float64 { return clamp(safeDiv(s.Std, s.Max-s.Min)) })
	add("frac_gt_mean", func(s *Summary) float64 {
		m := s.Mean
		return frac(s, func(v float64) bool { return v > m })
	})
	add("p95_over_p50", func(s *Summary) float64 { return clamp(safeDiv(s.Quantile(0.95), s.Quantile(0.5))) })
	add("top5pct_share", func(s *Summary) float64 {
		if s.N == 0 {
			return 0
		}
		k := s.N / 20
		if k == 0 {
			k = 1
		}
		var top, total float64
		for _, v := range s.Sorted {
			total += math.Abs(v)
		}
		for _, v := range s.Sorted[s.N-k:] {
			top += math.Abs(v)
		}
		return clamp(safeDiv(top, total))
	})
	add("bottom5pct_share", func(s *Summary) float64 {
		if s.N == 0 {
			return 0
		}
		k := s.N / 20
		if k == 0 {
			k = 1
		}
		var bot, total float64
		for _, v := range s.Sorted {
			total += math.Abs(v)
		}
		for _, v := range s.Sorted[:k] {
			bot += math.Abs(v)
		}
		return clamp(safeDiv(bot, total))
	})
	add("heavy_tail_score", func(s *Summary) float64 {
		// ratio of 99th-percentile deviation to IQR — large for heavy tails
		return clamp(safeDiv(s.Quantile(0.99)-s.Quantile(0.5), s.Quantile(0.75)-s.Quantile(0.25)))
	})

	// --- positional / trend (5) ---
	add("first_value_z", func(s *Summary) float64 {
		if s.N == 0 {
			return 0
		}
		return clamp(safeDiv(s.Values[0]-s.Mean, s.Std))
	})
	add("last_value_z", func(s *Summary) float64 {
		if s.N == 0 {
			return 0
		}
		return clamp(safeDiv(s.Values[s.N-1]-s.Mean, s.Std))
	})
	add("linear_slope", func(s *Summary) float64 {
		if s.N < 2 {
			return 0
		}
		// least-squares slope of value against row index
		nx := float64(s.N)
		meanX := (nx - 1) / 2
		var sxy, sxx float64
		for i, v := range s.Values {
			dx := float64(i) - meanX
			sxy += dx * (v - s.Mean)
			sxx += dx * dx
		}
		return clamp(safeDiv(sxy, sxx))
	})
	add("sign_changes_ratio", func(s *Summary) float64 {
		if s.N < 2 {
			return 0
		}
		c := 0
		for i := 0; i+1 < s.N; i++ {
			if s.Values[i]*s.Values[i+1] < 0 {
				c++
			}
		}
		return float64(c) / float64(s.N-1)
	})
	add("frac_abs_lt_eps", func(s *Summary) float64 {
		return frac(s, func(v float64) bool { return math.Abs(v) < 1e-9 })
	})

	// --- normalized 10-bin histogram of the value range (10) ---
	for b := 0; b < 10; b++ {
		b := b
		add(fmt.Sprintf("hist10_%d", b), func(s *Summary) float64 {
			if s.N == 0 || s.Max == s.Min {
				return 0
			}
			w := (s.Max - s.Min) / 10
			c := 0
			for _, v := range s.Values {
				bin := int((v - s.Min) / w)
				if bin >= 10 {
					bin = 9
				}
				if bin == b {
					c++
				}
			}
			return float64(c) / float64(s.N)
		})
	}

	// --- z-scored decile segment means (10) ---
	for d := 0; d < 10; d++ {
		d := d
		add(fmt.Sprintf("decile_mean_z_%d", d), func(s *Summary) float64 {
			if s.N == 0 || s.Std == 0 {
				return 0
			}
			lo := d * s.N / 10
			hi := (d + 1) * s.N / 10
			if hi <= lo {
				hi = lo + 1
			}
			if hi > s.N {
				hi = s.N
			}
			var t float64
			for _, v := range s.Sorted[lo:hi] {
				t += v
			}
			return clamp((t/float64(hi-lo) - s.Mean) / s.Std)
		})
	}
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func pairFrac(s *Summary, pred func(a, b float64) bool) float64 {
	if s.N < 2 {
		return 0
	}
	c := 0
	for i := 0; i+1 < s.N; i++ {
		if pred(s.Values[i], s.Values[i+1]) {
			c++
		}
	}
	return float64(c) / float64(s.N-1)
}

func fracBeyondIQR(k float64) func(*Summary) float64 {
	return func(s *Summary) float64 {
		q1, q3 := s.Quantile(0.25), s.Quantile(0.75)
		iqr := q3 - q1
		lo, hi := q1-k*iqr, q3+k*iqr
		return frac(s, func(v float64) bool { return v < lo || v > hi })
	}
}

func fracBeyondStd(k float64) func(*Summary) float64 {
	return func(s *Summary) float64 {
		if s.Std == 0 {
			return 0
		}
		lo, hi := s.Mean-k*s.Std, s.Mean+k*s.Std
		return frac(s, func(v float64) bool { return v < lo || v > hi })
	}
}

func gapStat(pick func(mean, std, mx, rng float64) float64) func(*Summary) float64 {
	return func(s *Summary) float64 {
		if s.N < 2 {
			return 0
		}
		gaps := make([]float64, s.N-1)
		mx := 0.0
		for i := range gaps {
			gaps[i] = s.Sorted[i+1] - s.Sorted[i]
			if gaps[i] > mx {
				mx = gaps[i]
			}
		}
		mean, std, _, _ := moments(gaps)
		return pick(mean, std, mx, s.Max-s.Min)
	}
}

func binEntropy(s *Summary, bins int) float64 {
	if s.N == 0 || s.Max == s.Min {
		return 0
	}
	counts := make([]int, bins)
	w := (s.Max - s.Min) / float64(bins)
	for _, v := range s.Values {
		b := int((v - s.Min) / w)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(s.N)
		h -= p * math.Log(p)
	}
	return h
}

func leadingDigit(v float64) int {
	v = math.Abs(v)
	if v == 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	for v >= 10 {
		v /= 10
	}
	for v < 1 {
		v *= 10
	}
	return int(v)
}

func intDigits(v float64) int {
	a := math.Abs(math.Trunc(v))
	if a < 1 {
		return 0
	}
	d := 0
	for a >= 1 {
		a /= 10
		d++
	}
	return d
}

func decimalPlaces(v float64) int {
	s := strconv.FormatFloat(v, 'f', -1, 64)
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return len(s) - i - 1
	}
	return 0
}

// Extract returns the Dim-long feature vector of values.
func Extract(values []float64) []float64 {
	s := Summarize(values)
	out := make([]float64, len(registry))
	for i, f := range registry {
		out[i] = f.Fn(s)
	}
	return out
}

// ExtractNormalized returns the feature vector with each entry squashed via
// sign(x)·log1p(|x|) — the normalization applied before the subnetwork so
// raw magnitudes (e.g. max=1e6) don't dominate training.
func ExtractNormalized(values []float64) []float64 {
	out := Extract(values)
	for i, v := range out {
		out[i] = math.Copysign(math.Log1p(math.Abs(v)), v)
	}
	return out
}
