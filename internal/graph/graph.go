// Package graph implements the paper's heterogeneous graph representation
// of tables (§2.1–2.2): node types V_tn (table name), V_nn (non-numerical
// column), V_n (numerical column) and V_ncf (numerical-column features),
// connected by three directed edge types that predefine how contextual
// information flows during GNN message passing:
//
//	green:  V_tn  → V_nn and V_tn → V_n   (table-name context)
//	yellow: V_nn  → V_n                   (non-numerical column context)
//	red:    V_ncf → V_n                   (statistical-feature injection)
//
// Graphs from multiple tables compose by disjoint union, which is how
// minibatches are formed.
package graph

import (
	"fmt"
	"sync"

	"github.com/sematype/pythagoras/internal/features"
	"github.com/sematype/pythagoras/internal/table"
)

// NodeType enumerates the four node types of the table graph.
type NodeType int

const (
	// NodeTableName is V_tn.
	NodeTableName NodeType = iota
	// NodeTextColumn is V_nn.
	NodeTextColumn
	// NodeNumericColumn is V_n.
	NodeNumericColumn
	// NodeNumericFeatures is V_ncf.
	NodeNumericFeatures
)

func (n NodeType) String() string {
	switch n {
	case NodeTableName:
		return "V_tn"
	case NodeTextColumn:
		return "V_nn"
	case NodeNumericColumn:
		return "V_n"
	case NodeNumericFeatures:
		return "V_ncf"
	}
	return fmt.Sprintf("NodeType(%d)", int(n))
}

// EdgeType enumerates the three directed edge types.
type EdgeType int

const (
	// EdgeTableName carries table-name context: V_tn → V_nn, V_tn → V_n.
	EdgeTableName EdgeType = iota
	// EdgeTextToNum carries non-numerical column context: V_nn → V_n.
	EdgeTextToNum
	// EdgeFeatToNum injects statistical features: V_ncf → V_n.
	EdgeFeatToNum
	// NumEdgeTypes is the count of edge types.
	NumEdgeTypes
)

func (e EdgeType) String() string {
	switch e {
	case EdgeTableName:
		return "tn→col"
	case EdgeTextToNum:
		return "nn→n"
	case EdgeFeatToNum:
		return "ncf→n"
	}
	return fmt.Sprintf("EdgeType(%d)", int(e))
}

// EdgeList holds the directed edges of one type in COO form.
type EdgeList struct {
	Src, Dst []int
}

// Len returns the number of edges.
func (e *EdgeList) Len() int { return len(e.Src) }

func (e *EdgeList) add(src, dst int) {
	e.Src = append(e.Src, src)
	e.Dst = append(e.Dst, dst)
}

// NodeMeta identifies what a node represents, for mapping predictions back
// to columns.
type NodeMeta struct {
	TableID string
	// ColIndex is the column's position in its table (-1 for V_tn).
	ColIndex int
	Kind     table.Kind // meaningful only for column nodes
}

// Graph is the (possibly batched) heterogeneous table graph.
type Graph struct {
	Types []NodeType
	Edges [NumEdgeTypes]*EdgeList
	// Texts holds the LM serialization per node ("" for V_ncf nodes).
	Texts []string
	// Feats holds the 192-feature vector per V_ncf node (nil otherwise).
	Feats [][]float64
	// Labels holds the semantic-type index of column nodes (-1 otherwise,
	// and -1 for column nodes whose type is absent from the vocabulary).
	Labels []int
	Meta   []NodeMeta

	// invDeg lazily caches InvDegrees per edge type: every GNN layer of
	// every step over the same graph reuses one slice instead of
	// recomputing (and re-allocating) the normalization. Guarded by
	// invOnce — safe under concurrent Apply calls sharing a graph.
	invOnce [NumEdgeTypes]sync.Once
	invDeg  [NumEdgeTypes][]float64
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Types) }

// TargetNodes returns the indices of classification targets: every V_nn and
// V_n node (the paper predicts types for both).
func (g *Graph) TargetNodes() []int {
	var idx []int
	for i, t := range g.Types {
		if t == NodeTextColumn || t == NodeNumericColumn {
			idx = append(idx, i)
		}
	}
	return idx
}

// NodesOfType returns indices of nodes with the given type.
func (g *Graph) NodesOfType(nt NodeType) []int {
	var idx []int
	for i, t := range g.Types {
		if t == nt {
			idx = append(idx, i)
		}
	}
	return idx
}

// Validate checks the structural invariants of the graph representation.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if len(g.Texts) != n || len(g.Feats) != n || len(g.Labels) != n || len(g.Meta) != n {
		return fmt.Errorf("graph: parallel arrays out of sync (nodes=%d)", n)
	}
	for et := EdgeType(0); et < NumEdgeTypes; et++ {
		el := g.Edges[et]
		if el == nil {
			return fmt.Errorf("graph: missing edge list %v", et)
		}
		if len(el.Src) != len(el.Dst) {
			return fmt.Errorf("graph: %v src/dst length mismatch", et)
		}
		for i := range el.Src {
			s, d := el.Src[i], el.Dst[i]
			if s < 0 || s >= n || d < 0 || d >= n {
				return fmt.Errorf("graph: %v edge %d out of range", et, i)
			}
			if err := checkEdgeTypes(et, g.Types[s], g.Types[d]); err != nil {
				return fmt.Errorf("graph: edge %d: %w", i, err)
			}
		}
	}
	for i, t := range g.Types {
		switch t {
		case NodeNumericFeatures:
			if g.Feats[i] == nil {
				return fmt.Errorf("graph: V_ncf node %d missing features", i)
			}
		default:
			if g.Feats[i] != nil {
				return fmt.Errorf("graph: non-V_ncf node %d carries features", i)
			}
			if g.Texts[i] == "" {
				return fmt.Errorf("graph: LM node %d missing text", i)
			}
		}
	}
	return nil
}

func checkEdgeTypes(et EdgeType, src, dst NodeType) error {
	ok := false
	switch et {
	case EdgeTableName:
		ok = src == NodeTableName && (dst == NodeTextColumn || dst == NodeNumericColumn)
	case EdgeTextToNum:
		ok = src == NodeTextColumn && dst == NodeNumericColumn
	case EdgeFeatToNum:
		ok = src == NodeNumericFeatures && dst == NodeNumericColumn
	}
	if !ok {
		return fmt.Errorf("%v cannot connect %v→%v", et, src, dst)
	}
	return nil
}

// BuildOptions configures graph construction; the switches correspond
// one-to-one to the Table 4 ablation variants.
type BuildOptions struct {
	// DropTableName removes V_tn nodes ("w/o V_tn").
	DropTableName bool
	// DropTextColumns removes the V_nn→V_n edges, cutting non-numerical
	// context off from numerical columns ("w/o V_nn"). V_nn nodes remain
	// present (they are still prediction targets).
	DropTextColumns bool
	// DropNumericFeatures removes V_ncf nodes ("w/o V_ncf").
	DropNumericFeatures bool
	// Serialization controls header inclusion (Table 4 lower part).
	Serialization table.SerializeOptions
}

// Build converts one table into its heterogeneous graph. labelIndex maps
// semantic type strings to class indices; unseen types label as -1
// (excluded from loss and scoring).
func Build(t *table.Table, labelIndex map[string]int, opts BuildOptions) *Graph {
	g := &Graph{}
	for et := EdgeType(0); et < NumEdgeTypes; et++ {
		g.Edges[et] = &EdgeList{}
	}
	addNode := func(nt NodeType, text string, feats []float64, label int, meta NodeMeta) int {
		g.Types = append(g.Types, nt)
		g.Texts = append(g.Texts, text)
		g.Feats = append(g.Feats, feats)
		g.Labels = append(g.Labels, label)
		g.Meta = append(g.Meta, meta)
		return len(g.Types) - 1
	}
	lookup := func(st string) int {
		if idx, ok := labelIndex[st]; ok {
			return idx
		}
		return -1
	}

	tnNode := -1
	if !opts.DropTableName {
		tnNode = addNode(NodeTableName, table.SerializeTableName(t), nil, -1,
			NodeMeta{TableID: t.ID, ColIndex: -1})
	}

	var textNodes, numNodes []int
	for ci, c := range t.Columns {
		text := table.SerializeColumn(c, opts.Serialization)
		label := lookup(c.SemanticType)
		meta := NodeMeta{TableID: t.ID, ColIndex: ci, Kind: c.Kind}
		if c.Kind == table.KindText {
			textNodes = append(textNodes, addNode(NodeTextColumn, text, nil, label, meta))
		} else {
			numNodes = append(numNodes, addNode(NodeNumericColumn, text, nil, label, meta))
		}
	}

	if !opts.DropNumericFeatures {
		for _, ni := range numNodes {
			ci := g.Meta[ni].ColIndex
			f := features.ExtractNormalized(t.Columns[ci].NumValues)
			ncf := addNode(NodeNumericFeatures, "", f, -1,
				NodeMeta{TableID: t.ID, ColIndex: ci, Kind: table.KindNumeric})
			g.Edges[EdgeFeatToNum].add(ncf, ni)
		}
	}

	if tnNode >= 0 {
		for _, n := range textNodes {
			g.Edges[EdgeTableName].add(tnNode, n)
		}
		for _, n := range numNodes {
			g.Edges[EdgeTableName].add(tnNode, n)
		}
	}
	if !opts.DropTextColumns {
		for _, src := range textNodes {
			for _, dst := range numNodes {
				g.Edges[EdgeTextToNum].add(src, dst)
			}
		}
	}
	return g
}

// Union returns the disjoint union of graphs — the batched graph fed to the
// GNN for a minibatch of tables.
func Union(graphs ...*Graph) *Graph {
	out := &Graph{}
	for et := EdgeType(0); et < NumEdgeTypes; et++ {
		out.Edges[et] = &EdgeList{}
	}
	offset := 0
	for _, g := range graphs {
		out.Types = append(out.Types, g.Types...)
		out.Texts = append(out.Texts, g.Texts...)
		out.Feats = append(out.Feats, g.Feats...)
		out.Labels = append(out.Labels, g.Labels...)
		out.Meta = append(out.Meta, g.Meta...)
		for et := EdgeType(0); et < NumEdgeTypes; et++ {
			el := g.Edges[et]
			for i := range el.Src {
				out.Edges[et].add(el.Src[i]+offset, el.Dst[i]+offset)
			}
		}
		offset += g.NumNodes()
	}
	return out
}

// BuildBatch builds and unions the graphs of several tables.
func BuildBatch(tables []*table.Table, labelIndex map[string]int, opts BuildOptions) *Graph {
	graphs := make([]*Graph, len(tables))
	for i, t := range tables {
		graphs[i] = Build(t, labelIndex, opts)
	}
	return Union(graphs...)
}

// InDegrees returns, per node, the number of incoming edges of the given
// type (used for mean-normalized aggregation).
func (g *Graph) InDegrees(et EdgeType) []int {
	deg := make([]int, g.NumNodes())
	for _, d := range g.Edges[et].Dst {
		deg[d]++
	}
	return deg
}

// InvDegrees returns, per node, 1/in-degree for the given edge type (0 for
// nodes with no incoming edges) — the mean-aggregation normalization the
// GNN applies every layer. The slice is computed once per graph and cached;
// callers must treat it as read-only. Safe for concurrent use.
func (g *Graph) InvDegrees(et EdgeType) []float64 {
	g.invOnce[et].Do(func() {
		inv := make([]float64, g.NumNodes())
		for _, d := range g.Edges[et].Dst {
			inv[d]++
		}
		for i, d := range inv {
			if d > 0 {
				inv[i] = 1 / d
			}
		}
		g.invDeg[et] = inv
	})
	return g.invDeg[et]
}
