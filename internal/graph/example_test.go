package graph_test

import (
	"fmt"

	"github.com/sematype/pythagoras/internal/graph"
	"github.com/sematype/pythagoras/internal/table"
)

// ExampleBuild converts the paper's Figure 1 table into its heterogeneous
// graph representation.
func ExampleBuild() {
	t := &table.Table{
		Name: "NBA Ply Stats",
		ID:   "fig1",
		Columns: []*table.Column{
			{Header: "Ply", SemanticType: "basketball.player.name", Kind: table.KindText,
				TextValues: []string{"Lebron James", "Myles Turner"}},
			{Header: "FPos", SemanticType: "basketball.player.position", Kind: table.KindText,
				TextValues: []string{"SF/PF", "PF/C"}},
			{Header: "PPG", SemanticType: "basketball.player.points_per_game", Kind: table.KindNumeric,
				NumValues: []float64{28.1, 15.2}},
			{Header: "AssPG", SemanticType: "basketball.player.assists_per_game", Kind: table.KindNumeric,
				NumValues: []float64{7.5, 2.1}},
		},
	}
	labels := map[string]int{
		"basketball.player.name":             0,
		"basketball.player.position":         1,
		"basketball.player.points_per_game":  2,
		"basketball.player.assists_per_game": 3,
	}

	g := graph.Build(t, labels, graph.BuildOptions{})
	fmt.Println("nodes:", g.NumNodes())
	fmt.Println("V_tn:", len(g.NodesOfType(graph.NodeTableName)))
	fmt.Println("V_nn:", len(g.NodesOfType(graph.NodeTextColumn)))
	fmt.Println("V_n:", len(g.NodesOfType(graph.NodeNumericColumn)))
	fmt.Println("V_ncf:", len(g.NodesOfType(graph.NodeNumericFeatures)))
	fmt.Println("green edges (tn→col):", g.Edges[graph.EdgeTableName].Len())
	fmt.Println("yellow edges (nn→n):", g.Edges[graph.EdgeTextToNum].Len())
	fmt.Println("red edges (ncf→n):", g.Edges[graph.EdgeFeatToNum].Len())
	// Output:
	// nodes: 7
	// V_tn: 1
	// V_nn: 2
	// V_n: 2
	// V_ncf: 2
	// green edges (tn→col): 4
	// yellow edges (nn→n): 4
	// red edges (ncf→n): 2
}
