package graph

import (
	"strings"
	"testing"

	"github.com/sematype/pythagoras/internal/features"
	"github.com/sematype/pythagoras/internal/table"
)

func fig1Table() *table.Table {
	// The paper's Figure 1 / Figure 2a example: table name, two
	// non-numerical columns, three numerical columns.
	return &table.Table{
		Name: "NBA Ply Stats",
		ID:   "nba1",
		Columns: []*table.Column{
			{Header: "Ply", SemanticType: "basketball.player.name", Kind: table.KindText,
				TextValues: []string{"Lebron James", "Myles Turner"}},
			{Header: "FPos", SemanticType: "basketball.player.position", Kind: table.KindText,
				TextValues: []string{"SF/PF", "PF/C"}},
			{Header: "PPG", SemanticType: "basketball.player.points_per_game", Kind: table.KindNumeric,
				NumValues: []float64{28.1, 15.2}},
			{Header: "AssPG", SemanticType: "basketball.player.assists_per_game", Kind: table.KindNumeric,
				NumValues: []float64{7.5, 2.1}},
			{Header: "RebPG", SemanticType: "basketball.player.rebounds_per_game", Kind: table.KindNumeric,
				NumValues: []float64{8.0, 6.9}},
		},
	}
}

func labelIdx() map[string]int {
	return map[string]int{
		"basketball.player.name":              0,
		"basketball.player.position":          1,
		"basketball.player.points_per_game":   2,
		"basketball.player.assists_per_game":  3,
		"basketball.player.rebounds_per_game": 4,
	}
}

func TestBuildFigure2aStructure(t *testing.T) {
	g := Build(fig1Table(), labelIdx(), BuildOptions{})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1 V_tn + 2 V_nn + 3 V_n + 3 V_ncf = 9 nodes
	if g.NumNodes() != 9 {
		t.Fatalf("nodes = %d, want 9", g.NumNodes())
	}
	if got := len(g.NodesOfType(NodeTableName)); got != 1 {
		t.Fatalf("V_tn count = %d", got)
	}
	if got := len(g.NodesOfType(NodeTextColumn)); got != 2 {
		t.Fatalf("V_nn count = %d", got)
	}
	if got := len(g.NodesOfType(NodeNumericColumn)); got != 3 {
		t.Fatalf("V_n count = %d", got)
	}
	if got := len(g.NodesOfType(NodeNumericFeatures)); got != 3 {
		t.Fatalf("V_ncf count = %d", got)
	}
	// green edges: tn → every column node (5)
	if g.Edges[EdgeTableName].Len() != 5 {
		t.Fatalf("tn edges = %d, want 5", g.Edges[EdgeTableName].Len())
	}
	// yellow edges: each V_nn → each V_n (2×3)
	if g.Edges[EdgeTextToNum].Len() != 6 {
		t.Fatalf("nn→n edges = %d, want 6", g.Edges[EdgeTextToNum].Len())
	}
	// red edges: one per numeric column
	if g.Edges[EdgeFeatToNum].Len() != 3 {
		t.Fatalf("ncf→n edges = %d, want 3", g.Edges[EdgeFeatToNum].Len())
	}
}

func TestBuildLabelsAssigned(t *testing.T) {
	g := Build(fig1Table(), labelIdx(), BuildOptions{})
	targets := g.TargetNodes()
	if len(targets) != 5 {
		t.Fatalf("targets = %d, want 5 (2 text + 3 numeric)", len(targets))
	}
	for _, n := range targets {
		if g.Labels[n] < 0 {
			t.Fatalf("target node %d unlabeled", n)
		}
	}
	// non-target nodes must be unlabeled
	for _, n := range g.NodesOfType(NodeTableName) {
		if g.Labels[n] != -1 {
			t.Fatal("V_tn must be unlabeled")
		}
	}
	for _, n := range g.NodesOfType(NodeNumericFeatures) {
		if g.Labels[n] != -1 {
			t.Fatal("V_ncf must be unlabeled")
		}
	}
}

func TestBuildUnknownTypeGetsMinusOne(t *testing.T) {
	g := Build(fig1Table(), map[string]int{}, BuildOptions{})
	for _, n := range g.TargetNodes() {
		if g.Labels[n] != -1 {
			t.Fatal("unknown semantic types must map to -1")
		}
	}
}

func TestBuildFeatureVectors(t *testing.T) {
	g := Build(fig1Table(), labelIdx(), BuildOptions{})
	for _, n := range g.NodesOfType(NodeNumericFeatures) {
		if len(g.Feats[n]) != features.Dim {
			t.Fatalf("V_ncf feature dim = %d, want %d", len(g.Feats[n]), features.Dim)
		}
		if g.Texts[n] != "" {
			t.Fatal("V_ncf nodes carry no text")
		}
	}
}

func TestBuildSerializationExcludesHeaderByDefault(t *testing.T) {
	g := Build(fig1Table(), labelIdx(), BuildOptions{})
	for _, n := range g.NodesOfType(NodeNumericColumn) {
		if strings.Contains(g.Texts[n], "PPG") || strings.Contains(g.Texts[n], "AssPG") {
			t.Fatalf("default serialization leaked header: %q", g.Texts[n])
		}
	}
}

func TestBuildWithOriginalHeaders(t *testing.T) {
	g := Build(fig1Table(), labelIdx(), BuildOptions{
		Serialization: table.SerializeOptions{Header: table.HeaderOriginal},
	})
	found := false
	for _, n := range g.NodesOfType(NodeNumericColumn) {
		if strings.Contains(g.Texts[n], "AssPG") {
			found = true
		}
	}
	if !found {
		t.Fatal("HeaderOriginal serialization missing header")
	}
}

func TestAblationDropTableName(t *testing.T) {
	g := Build(fig1Table(), labelIdx(), BuildOptions{DropTableName: true})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.NodesOfType(NodeTableName)) != 0 {
		t.Fatal("w/o V_tn still has table-name node")
	}
	if g.Edges[EdgeTableName].Len() != 0 {
		t.Fatal("w/o V_tn still has green edges")
	}
	// other context intact
	if g.Edges[EdgeTextToNum].Len() != 6 || g.Edges[EdgeFeatToNum].Len() != 3 {
		t.Fatal("other edges must remain")
	}
}

func TestAblationDropTextEdges(t *testing.T) {
	g := Build(fig1Table(), labelIdx(), BuildOptions{DropTextColumns: true})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Edges[EdgeTextToNum].Len() != 0 {
		t.Fatal("w/o V_nn still has yellow edges")
	}
	// V_nn nodes must remain: they are still prediction targets (paper
	// keeps them present, only the information flow is removed)
	if len(g.NodesOfType(NodeTextColumn)) != 2 {
		t.Fatal("V_nn nodes must remain present")
	}
}

func TestAblationDropNumericFeatures(t *testing.T) {
	g := Build(fig1Table(), labelIdx(), BuildOptions{DropNumericFeatures: true})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.NodesOfType(NodeNumericFeatures)) != 0 || g.Edges[EdgeFeatToNum].Len() != 0 {
		t.Fatal("w/o V_ncf still has feature nodes/edges")
	}
}

func TestAblationDropAllContext(t *testing.T) {
	g := Build(fig1Table(), labelIdx(), BuildOptions{
		DropTableName: true, DropTextColumns: true, DropNumericFeatures: true,
	})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for et := EdgeType(0); et < NumEdgeTypes; et++ {
		if g.Edges[et].Len() != 0 {
			t.Fatalf("edge type %v nonempty in full ablation", et)
		}
	}
	// isolated V_n/V_nn nodes remain → Dosolo-equivalent structure
	if len(g.TargetNodes()) != 5 {
		t.Fatal("targets must survive full ablation")
	}
}

func TestUnionOffsetsEdges(t *testing.T) {
	t1, t2 := fig1Table(), fig1Table()
	t2.ID = "nba2"
	g1 := Build(t1, labelIdx(), BuildOptions{})
	g2 := Build(t2, labelIdx(), BuildOptions{})
	u := Union(g1, g2)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if u.NumNodes() != g1.NumNodes()+g2.NumNodes() {
		t.Fatal("union node count wrong")
	}
	// edges of the second graph must point at second-graph nodes
	el := u.Edges[EdgeTableName]
	half := g1.Edges[EdgeTableName].Len()
	for i := half; i < el.Len(); i++ {
		if el.Src[i] < g1.NumNodes() || el.Dst[i] < g1.NumNodes() {
			t.Fatal("union edge not offset")
		}
	}
	// metadata keeps table identity
	ids := map[string]bool{}
	for _, m := range u.Meta {
		ids[m.TableID] = true
	}
	if !ids["nba1"] || !ids["nba2"] {
		t.Fatal("union lost table identity")
	}
}

func TestBuildBatchEqualsUnionOfBuilds(t *testing.T) {
	t1, t2 := fig1Table(), fig1Table()
	t2.ID = "nba2"
	batch := BuildBatch([]*table.Table{t1, t2}, labelIdx(), BuildOptions{})
	manual := Union(Build(t1, labelIdx(), BuildOptions{}), Build(t2, labelIdx(), BuildOptions{}))
	if batch.NumNodes() != manual.NumNodes() {
		t.Fatal("BuildBatch differs from manual union")
	}
	for et := EdgeType(0); et < NumEdgeTypes; et++ {
		if batch.Edges[et].Len() != manual.Edges[et].Len() {
			t.Fatalf("edge type %v differs", et)
		}
	}
}

func TestInDegrees(t *testing.T) {
	g := Build(fig1Table(), labelIdx(), BuildOptions{})
	deg := g.InDegrees(EdgeTextToNum)
	for _, n := range g.NodesOfType(NodeNumericColumn) {
		if deg[n] != 2 {
			t.Fatalf("numeric node in-degree = %d, want 2", deg[n])
		}
	}
	for _, n := range g.NodesOfType(NodeTextColumn) {
		if deg[n] != 0 {
			t.Fatal("text node should have no yellow in-edges")
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Build(fig1Table(), labelIdx(), BuildOptions{})
	g.Edges[EdgeTextToNum].Src[0] = 999
	if err := g.Validate(); err == nil {
		t.Fatal("out-of-range edge not caught")
	}

	g2 := Build(fig1Table(), labelIdx(), BuildOptions{})
	// wire a green edge backwards (column → table name)
	tn := g2.NodesOfType(NodeTableName)[0]
	nn := g2.NodesOfType(NodeTextColumn)[0]
	g2.Edges[EdgeTableName].add(nn, tn)
	if err := g2.Validate(); err == nil {
		t.Fatal("type-invalid edge not caught")
	}
}

func TestColumnOrderIndependence(t *testing.T) {
	// The paper emphasizes Pythagoras is independent of column order: a
	// permuted table must produce an isomorphic graph (same node-type
	// counts, same edge-type counts, same label multiset).
	tb := fig1Table()
	perm := &table.Table{Name: tb.Name, ID: tb.ID, Columns: []*table.Column{
		tb.Columns[3], tb.Columns[0], tb.Columns[4], tb.Columns[1], tb.Columns[2],
	}}
	g1 := Build(tb, labelIdx(), BuildOptions{})
	g2 := Build(perm, labelIdx(), BuildOptions{})
	for et := EdgeType(0); et < NumEdgeTypes; et++ {
		if g1.Edges[et].Len() != g2.Edges[et].Len() {
			t.Fatalf("edge count %v changed under permutation", et)
		}
	}
	count := func(g *Graph) map[int]int {
		m := map[int]int{}
		for _, l := range g.Labels {
			m[l]++
		}
		return m
	}
	c1, c2 := count(g1), count(g2)
	for k, v := range c1 {
		if c2[k] != v {
			t.Fatal("label multiset changed under permutation")
		}
	}
}
