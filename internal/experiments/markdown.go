package experiments

import (
	"fmt"
	"io"
)

// WriteMarkdown renders measured results as the markdown section embedded
// in EXPERIMENTS.md. Nil inputs skip their sections.
func WriteMarkdown(w io.Writer, s Scale, t2, t3 *ComparisonResult, fig *Figure4Result, t4 []AblationRow) {
	fmt.Fprintf(w, "### Run configuration\n\n")
	fmt.Fprintf(w, "Scale `%s`: SportsTables %d tables, GitTables %d tables, encoder %d-d × %d layers, seeds %v, Pythagoras %d epochs (hidden %d).\n\n",
		s.Name, s.Sports.NumTables, s.Git.NumTables, s.Encoder.Dim, s.Encoder.Layers,
		s.Seeds, s.Pythagoras.Epochs, s.Pythagoras.HiddenDim)

	writeComparisonMD := func(title string, res *ComparisonResult) {
		fmt.Fprintf(w, "### %s\n\n", title)
		fmt.Fprintln(w, "| Model | wF1 num | wF1 non-num | wF1 all | mF1 num | mF1 non-num | mF1 all |")
		fmt.Fprintln(w, "|---|---|---|---|---|---|---|")
		for _, r := range res.Rows {
			name := r.Model
			if name == "Pythagoras" {
				name = "**Pythagoras**"
			}
			fmt.Fprintf(w, "| %s | %.3f | %.3f | %.3f | %.3f | %.3f | %.3f |\n",
				name, r.WeightedNum, r.WeightedNonNum, r.WeightedAll,
				r.MacroNum, r.MacroNonNum, r.MacroAll)
		}
		fmt.Fprintln(w)
	}
	if t2 != nil {
		writeComparisonMD("Table 2 (measured) — SportsTables", t2)
	}
	if t3 != nil {
		writeComparisonMD("Table 3 (measured) — GitTables Numeric", t3)
	}
	if fig != nil {
		total := fig.PythagorasWins + fig.Ties + fig.SatoWins
		fmt.Fprintf(w, "### Figure 4 (measured) — per-type Pythagoras vs Sato, numeric SportsTables\n\n")
		fmt.Fprintf(w, "Of %d numeric types: Pythagoras better on %d, equal on %d, Sato better on %d.\n",
			total, fig.PythagorasWins, fig.Ties, fig.SatoWins)
		fmt.Fprintf(w, "F1 gap where Pythagoras wins: median %.2f (Q1 %.2f, Q3 %.2f, max %.2f); where Sato wins: median %.2f (Q1 %.2f, Q3 %.2f, max %.2f).\n\n",
			fig.PythagorasBox.Median, fig.PythagorasBox.Q1, fig.PythagorasBox.Q3, fig.PythagorasBox.Max,
			fig.SatoBox.Median, fig.SatoBox.Q1, fig.SatoBox.Q3, fig.SatoBox.Max)
	}
	if len(t4) > 0 {
		fmt.Fprintf(w, "### Table 4 (measured) — ablations, numeric SportsTables columns\n\n")
		fmt.Fprintln(w, "| Variant | wF1 | mF1 |")
		fmt.Fprintln(w, "|---|---|---|")
		for _, r := range t4 {
			fmt.Fprintf(w, "| %s | %.3f | %.3f |\n", r.Variant, r.WeightedF1, r.MacroF1)
		}
		fmt.Fprintln(w)
	}

	if claims := CheckShapes(t2, t3, fig, t4); len(claims) > 0 {
		fmt.Fprintf(w, "### Shape claims\n\n")
		for _, c := range claims {
			mark := "✅"
			if !c.Holds {
				mark = "❌"
			}
			fmt.Fprintf(w, "- %s **%s** — %s. (%s)\n", mark, c.ID, c.Text, c.Detail)
		}
		fmt.Fprintln(w)
	}
}
