// Package experiments is the reproduction harness for every table and
// figure in the paper's evaluation (§4): Table 1 (corpus statistics),
// Tables 2–3 (six models × two corpora), Figure 4 (per-type Pythagoras vs
// Sato comparison) and Table 4 (graph ablations and header serializations).
//
// Experiments run at a configurable Scale; ReducedScale preserves every
// qualitative shape of the paper on a laptop in minutes, FullScale matches
// the corpus sizes of Table 1.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"github.com/sematype/pythagoras/internal/baselines"
	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/graph"
	"github.com/sematype/pythagoras/internal/infer"
	"github.com/sematype/pythagoras/internal/lm"
	"github.com/sematype/pythagoras/internal/table"
)

// Scale bundles every knob of one experiment configuration.
type Scale struct {
	Name    string
	Sports  data.SportsConfig
	Git     data.GitConfig
	Encoder lm.Config
	Seeds   []int64

	Pythagoras core.Config // Encoder/Seed filled per run
	Baseline   baselines.TrainOpts
	Sato       baselines.SatoOpts

	Logf func(format string, args ...any)
}

// ReducedScale is the default: small corpora, small encoder, every
// qualitative claim intact.
func ReducedScale() Scale {
	encCfg := lm.Config{Dim: 64, Layers: 2, Heads: 4, FFNDim: 128, MaxLen: 512, Buckets: 1 << 14, Seed: 20240325}
	s := Scale{
		Name:    "reduced",
		Sports:  data.ReducedSportsConfig(),
		Git:     data.ReducedGitConfig(),
		Encoder: encCfg,
		Seeds:   []int64{1, 2},
	}
	s.Pythagoras = core.Config{
		GNNLayers: 2, HiddenDim: 160, LearningRate: 1e-2, Epochs: 150,
		BatchSize: 8, Patience: 150, Dropout: 0.1,
	}
	s.Baseline = baselines.TrainOpts{
		SubDim: 64, Hidden: 128, LearningRate: 1e-2, Epochs: 80,
		BatchSize: 256, Patience: 15, Dropout: 0.1,
	}
	s.Sato = baselines.SatoOpts{TrainOpts: s.Baseline, Topics: 24, CRFEpochs: 3, CRFRate: 0.05}
	return s
}

// QuickScale is the bench/test configuration: one seed, short training —
// for smoke-testing the full pipeline, not for score fidelity.
func QuickScale() Scale {
	s := ReducedScale()
	s.Name = "quick"
	s.Sports.NumTables = 110
	s.Sports.Domains = 5
	s.Git.NumTables = 120
	s.Seeds = []int64{1}
	s.Encoder = lm.Config{Dim: 48, Layers: 1, Heads: 4, FFNDim: 96, MaxLen: 512, Buckets: 1 << 13, Seed: 20240325}
	s.Pythagoras.Epochs = 60
	s.Pythagoras.Patience = 60
	s.Baseline.Epochs = 40
	s.Baseline.Patience = 40
	s.Sato.TrainOpts = s.Baseline
	return s
}

// FullScale matches the paper's corpus sizes (Table 1) and 5-seed protocol.
// Expect hours of single-core CPU time.
func FullScale() Scale {
	s := ReducedScale()
	s.Name = "full"
	s.Sports = data.DefaultSportsConfig()
	s.Git = data.DefaultGitConfig()
	s.Seeds = []int64{1, 2, 3, 4, 5}
	s.Encoder = lm.Config{Dim: 128, Layers: 2, Heads: 8, FFNDim: 256, MaxLen: 512, Buckets: 1 << 16, Seed: 20240325}
	s.Pythagoras.Epochs = 250
	s.Pythagoras.Patience = 50
	s.Pythagoras.HiddenDim = 256
	s.Baseline.Epochs = 120
	s.Baseline.Patience = 20
	s.Sato.TrainOpts = s.Baseline
	return s
}

func (s *Scale) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// ModelNames lists the six compared models in the paper's row order.
var ModelNames = []string{
	"Sherlock", "Sato", "Dosolo", "Doduo", "GPT-3 (fine-tuned)", "Pythagoras",
}

// ComparisonResult holds one corpus's Table 2/3-style outcome.
type ComparisonResult struct {
	Corpus string
	Rows   []eval.Row
	// Preds holds, per model name, the concatenated test predictions of
	// the first seed (used by Figure 4).
	Preds map[string][]eval.Prediction
}

// Table1 generates both corpora and returns their statistics.
func Table1(s Scale) (sports, git data.Stats) {
	sc := data.GenerateSportsTables(s.Sports)
	gc := data.GenerateGitTables(s.Git)
	return sc.ComputeStats(), gc.ComputeStats()
}

// WriteTable1 renders Table 1.
func WriteTable1(w io.Writer, s Scale) {
	sp, gt := Table1(s)
	fmt.Fprintf(w, "Table 1: Statistics of the datasets (%s scale)\n", s.Name)
	fmt.Fprintf(w, "%-18s %8s %14s %12s %10s\n", "Dataset", "#Tables", "NonNum./Table", "Num./Table", "#sem.Types")
	fmt.Fprintf(w, "%-18s %8d %14.2f %12.2f %10d\n", "SportsTables", sp.NumTables, sp.AvgTextCols, sp.AvgNumCols, sp.NumTypes)
	fmt.Fprintf(w, "%-18s %8d %14.2f %12.2f %10d\n", "GitTables Numeric", gt.NumTables, gt.AvgTextCols, gt.AvgNumCols, gt.NumTypes)
}

// RunComparison trains all six models on the corpus across the scale's
// seeds and aggregates the paper's metrics — the engine behind Tables 2
// and 3.
func RunComparison(c *data.Corpus, s Scale) *ComparisonResult {
	enc := lm.NewEncoder(s.Encoder)
	aggs := map[string]*eval.SeedAggregate{}
	for _, name := range ModelNames {
		aggs[name] = &eval.SeedAggregate{}
	}
	preds := map[string][]eval.Prediction{}

	for si, seed := range s.Seeds {
		rng := rand.New(rand.NewSource(seed))
		train, val, test := eval.TrainValTestSplit(len(c.Tables), rng)
		s.logf("[%s] seed %d: %d train / %d val / %d test tables",
			c.Name, seed, len(train), len(val), len(test))

		bopts := s.Baseline
		bopts.Seed = seed
		run := func(name string, trainEval func() (*eval.Split, []eval.Prediction)) {
			start := time.Now()
			split, p := trainEval()
			aggs[name].Add(split)
			if si == 0 {
				preds[name] = p
			}
			s.logf("[%s] seed %d: %-20s wF1 num=%.3f txt=%.3f all=%.3f (%.0fs)",
				c.Name, seed, name, split.Numeric.WeightedF1,
				split.NonNumeric.WeightedF1, split.Overall.WeightedF1,
				time.Since(start).Seconds())
		}

		run("Sherlock", func() (*eval.Split, []eval.Prediction) {
			m := baselines.TrainSherlock(c, train, val, enc, bopts)
			return m.Evaluate(c, test)
		})
		run("Sato", func() (*eval.Split, []eval.Prediction) {
			sopts := s.Sato
			sopts.TrainOpts = bopts
			m, err := baselines.TrainSato(c, train, val, enc, sopts)
			if err != nil {
				panic(err)
			}
			return m.Evaluate(c, test)
		})
		run("Dosolo", func() (*eval.Split, []eval.Prediction) {
			m := baselines.TrainDosolo(c, train, val, enc, bopts)
			return m.Evaluate(c, test)
		})
		run("Doduo", func() (*eval.Split, []eval.Prediction) {
			m := baselines.TrainDoduo(c, train, val, enc, bopts)
			return m.Evaluate(c, test)
		})
		run("GPT-3 (fine-tuned)", func() (*eval.Split, []eval.Prediction) {
			m := baselines.TrainLLM(c, train, val, enc, bopts)
			return m.Evaluate(c, test)
		})
		run("Pythagoras", func() (*eval.Split, []eval.Prediction) {
			pcfg := s.Pythagoras
			pcfg.Encoder = enc
			pcfg.Seed = seed
			m, err := core.Train(c, train, val, pcfg)
			if err != nil {
				panic(err)
			}
			// Score through the staged inference engine — the serving
			// path, equivalence-tested against Model.Evaluate.
			return infer.New(m).Evaluate(c, test)
		})
	}

	res := &ComparisonResult{Corpus: c.Name, Preds: preds}
	for _, name := range ModelNames {
		res.Rows = append(res.Rows, aggs[name].Row(name))
	}
	return res
}

// Table2 runs the SportsTables comparison.
func Table2(s Scale) *ComparisonResult {
	c := data.GenerateSportsTables(s.Sports)
	return RunComparison(c, s)
}

// Table3 runs the GitTables Numeric comparison.
func Table3(s Scale) *ComparisonResult {
	c := data.GenerateGitTables(s.Git)
	return RunComparison(c, s)
}

// WriteComparison renders a Table 2/3-style result.
func WriteComparison(w io.Writer, title string, res *ComparisonResult) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintln(w, eval.TableHeader())
	for _, row := range res.Rows {
		fmt.Fprintln(w, eval.FormatRow(row))
	}
}

// Figure4Result holds the per-type comparison (Pythagoras vs Sato on
// numerical SportsTables columns).
type Figure4Result struct {
	PythagorasWins, Ties, SatoWins int
	PythagorasBox, SatoBox         eval.BoxStats
}

// Figure4 computes the per-type stats from a Table 2 run's predictions.
func Figure4(res *ComparisonResult) Figure4Result {
	d := eval.CompareByType(res.Preds["Pythagoras"], res.Preds["Sato"])
	return Figure4Result{
		PythagorasWins: d.AWins,
		Ties:           d.Ties,
		SatoWins:       d.BWins,
		PythagorasBox:  eval.Box(d.DiffsAWins),
		SatoBox:        eval.Box(d.DiffsBWins),
	}
}

// WriteFigure4 renders the Figure 4 numbers.
func WriteFigure4(w io.Writer, f Figure4Result) {
	total := f.PythagorasWins + f.Ties + f.SatoWins
	fmt.Fprintf(w, "Figure 4: per-numerical-type comparison, Pythagoras vs Sato (%d types)\n", total)
	fmt.Fprintf(w, "  Pythagoras better: %d   equal: %d   Sato better: %d\n",
		f.PythagorasWins, f.Ties, f.SatoWins)
	fmt.Fprintf(w, "  F1 diff where Pythagoras wins: median=%.2f q1=%.2f q3=%.2f max=%.2f\n",
		f.PythagorasBox.Median, f.PythagorasBox.Q1, f.PythagorasBox.Q3, f.PythagorasBox.Max)
	fmt.Fprintf(w, "  F1 diff where Sato wins:       median=%.2f q1=%.2f q3=%.2f max=%.2f\n",
		f.SatoBox.Median, f.SatoBox.Q1, f.SatoBox.Q3, f.SatoBox.Max)
}

// AblationVariant is one row of Table 4.
type AblationVariant struct {
	Name  string
	Graph graph.BuildOptions
}

// Table4Variants returns the paper's eight Table 4 rows.
func Table4Variants() []AblationVariant {
	return []AblationVariant{
		{Name: "Pythagoras", Graph: graph.BuildOptions{}},
		{Name: "w/o V_tn", Graph: graph.BuildOptions{DropTableName: true}},
		{Name: "w/o V_nn", Graph: graph.BuildOptions{DropTextColumns: true}},
		{Name: "w/o V_ncf", Graph: graph.BuildOptions{DropNumericFeatures: true}},
		{Name: "w/o V_tn, V_nn", Graph: graph.BuildOptions{DropTableName: true, DropTextColumns: true}},
		{Name: "w/o V_tn, V_nn, V_ncf", Graph: graph.BuildOptions{
			DropTableName: true, DropTextColumns: true, DropNumericFeatures: true}},
		{Name: "w/ original c_h", Graph: graph.BuildOptions{
			Serialization: table.SerializeOptions{Header: table.HeaderOriginal}}},
		{Name: "w/ synthesized c_h", Graph: graph.BuildOptions{
			Serialization: table.SerializeOptions{Header: table.HeaderSynthetic}}},
	}
}

// AblationRow is one Table 4 result row (numerical columns only).
type AblationRow struct {
	Variant             string
	WeightedF1, MacroF1 float64
}

// Table4 trains the Pythagoras graph variants on SportsTables and reports
// numerical-column F1 — the ablation study of §4.5.
func Table4(s Scale) []AblationRow {
	c := data.GenerateSportsTables(s.Sports)
	enc := lm.NewEncoder(s.Encoder)
	rng := rand.New(rand.NewSource(s.Seeds[0]))
	train, val, test := eval.TrainValTestSplit(len(c.Tables), rng)

	var rows []AblationRow
	for _, v := range Table4Variants() {
		pcfg := s.Pythagoras
		// Ablations compare variants against each other at matched budget;
		// a reduced epoch count keeps the 8-variant sweep tractable without
		// affecting the ordering.
		pcfg.Epochs = pcfg.Epochs * 2 / 5
		if pcfg.Epochs < 40 {
			pcfg.Epochs = 40
		}
		pcfg.Patience = pcfg.Epochs
		pcfg.Encoder = enc
		pcfg.Seed = s.Seeds[0]
		pcfg.Graph = v.Graph
		start := time.Now()
		m, err := core.Train(c, train, val, pcfg)
		if err != nil {
			panic(err)
		}
		split, _ := infer.New(m).Evaluate(c, test)
		rows = append(rows, AblationRow{
			Variant:    v.Name,
			WeightedF1: split.Numeric.WeightedF1,
			MacroF1:    split.Numeric.MacroF1,
		})
		s.logf("[ablation] %-24s num wF1=%.3f mF1=%.3f (%.0fs)",
			v.Name, split.Numeric.WeightedF1, split.Numeric.MacroF1,
			time.Since(start).Seconds())
	}
	return rows
}

// WriteTable4 renders the ablation table.
func WriteTable4(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Table 4: ablation study, numerical columns of SportsTables")
	fmt.Fprintf(w, "%-26s %18s %12s\n", "Variant", "support wtd F1", "macro F1")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %18.3f %12.3f\n", r.Variant, r.WeightedF1, r.MacroF1)
	}
}

// BestBaselineNumeric returns the strongest baseline's numeric weighted F1
// from a comparison (used to verify shape claim 1).
func BestBaselineNumeric(res *ComparisonResult) (string, float64) {
	bestName, best := "", -1.0
	for _, row := range res.Rows {
		if row.Model == "Pythagoras" {
			continue
		}
		if row.WeightedNum > best {
			best, bestName = row.WeightedNum, row.Model
		}
	}
	return bestName, best
}

// RowByModel finds a model's row in a comparison result.
func RowByModel(res *ComparisonResult, model string) (eval.Row, bool) {
	for _, r := range res.Rows {
		if r.Model == model {
			return r, true
		}
	}
	return eval.Row{}, false
}

// SortedModelsByNumericF1 returns model names ordered best-first by numeric
// weighted F1 (reporting convenience).
func SortedModelsByNumericF1(res *ComparisonResult) []string {
	rows := append([]eval.Row(nil), res.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].WeightedNum > rows[j].WeightedNum })
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.Model
	}
	return out
}
