package experiments

import (
	"fmt"
	"strings"
)

// ShapeClaim is one of the qualitative reproduction targets of DESIGN.md §4
// evaluated against measured results.
type ShapeClaim struct {
	ID     string
	Text   string
	Holds  bool
	Detail string
}

// CheckShapes evaluates the paper's shape claims against the measured
// comparison results and (optionally) ablation rows. Nil inputs skip the
// claims that depend on them.
func CheckShapes(t2, t3 *ComparisonResult, fig4 *Figure4Result, t4 []AblationRow) []ShapeClaim {
	var claims []ShapeClaim
	add := func(id, text string, holds bool, detail string) {
		claims = append(claims, ShapeClaim{ID: id, Text: text, Holds: holds, Detail: detail})
	}

	if t2 != nil {
		pyth, _ := RowByModel(t2, "Pythagoras")
		bestName, best := BestBaselineNumeric(t2)
		add("S1-sports",
			"Pythagoras beats every baseline on numeric columns (SportsTables)",
			pyth.WeightedNum > best,
			fmt.Sprintf("Pythagoras %.3f vs best baseline %s %.3f", pyth.WeightedNum, bestName, best))

		doso, _ := RowByModel(t2, "Dosolo")
		llm, _ := RowByModel(t2, "GPT-3 (fine-tuned)")
		sato, _ := RowByModel(t2, "Sato")
		add("S2-contextfree",
			"Context-free models (Dosolo, LLM) are far worse on numeric than context-aware models",
			doso.WeightedNum < sato.WeightedNum && llm.WeightedNum < sato.WeightedNum &&
				doso.WeightedNum < pyth.WeightedNum && llm.WeightedNum < pyth.WeightedNum,
			fmt.Sprintf("Dosolo %.3f, LLM %.3f vs Sato %.3f, Pythagoras %.3f",
				doso.WeightedNum, llm.WeightedNum, sato.WeightedNum, pyth.WeightedNum))

		add("S3-nonnumeric",
			"All models do clearly better on non-numeric than numeric columns",
			allNonNumericEasier(t2),
			nonNumericDetail(t2))
	}

	if t3 != nil {
		pyth, _ := RowByModel(t3, "Pythagoras")
		add("S4-gittables-macro",
			"GitTables macro F1 ≪ weighted F1 (long-tailed types)",
			pyth.MacroNum < pyth.WeightedNum,
			fmt.Sprintf("Pythagoras numeric: macro %.3f vs weighted %.3f", pyth.MacroNum, pyth.WeightedNum))
	}

	if fig4 != nil {
		add("S5-fig4",
			"Pythagoras wins on more numeric types than Sato, with larger median gaps where it wins",
			fig4.PythagorasWins > fig4.SatoWins &&
				fig4.PythagorasBox.Median >= fig4.SatoBox.Median,
			fmt.Sprintf("wins %d/%d/%d (P/tie/S), medians %.2f vs %.2f",
				fig4.PythagorasWins, fig4.Ties, fig4.SatoWins,
				fig4.PythagorasBox.Median, fig4.SatoBox.Median))
	}

	if len(t4) == 8 {
		byName := map[string]AblationRow{}
		for _, r := range t4 {
			byName[r.Variant] = r
		}
		full := byName["Pythagoras"]
		noNN := byName["w/o V_nn"]
		noAllCtx := byName["w/o V_tn, V_nn"]
		headers := byName["w/ original c_h"]
		add("S6-ablation",
			"Removing context hurts (V_nn most), removing all textual context hurts drastically, headers ≈ ceiling",
			noNN.WeightedF1 < full.WeightedF1 &&
				noAllCtx.WeightedF1 < noNN.WeightedF1 &&
				headers.WeightedF1 > full.WeightedF1,
			fmt.Sprintf("full %.3f, w/o V_nn %.3f, w/o V_tn+V_nn %.3f, w/ headers %.3f",
				full.WeightedF1, noNN.WeightedF1, noAllCtx.WeightedF1, headers.WeightedF1))
	}
	return claims
}

func allNonNumericEasier(res *ComparisonResult) bool {
	for _, r := range res.Rows {
		if r.WeightedNonNum <= r.WeightedNum {
			return false
		}
	}
	return true
}

func nonNumericDetail(res *ComparisonResult) string {
	var parts []string
	for _, r := range res.Rows {
		parts = append(parts, fmt.Sprintf("%s %.2f/%.2f", r.Model, r.WeightedNonNum, r.WeightedNum))
	}
	return strings.Join(parts, "; ")
}

// FormatShapes renders the claim checklist.
func FormatShapes(claims []ShapeClaim) string {
	var sb strings.Builder
	sb.WriteString("Shape claims (DESIGN.md §4):\n")
	for _, c := range claims {
		mark := "HOLDS "
		if !c.Holds {
			mark = "FAILS "
		}
		fmt.Fprintf(&sb, "  [%s] %s: %s\n          %s\n", mark, c.ID, c.Text, c.Detail)
	}
	return sb.String()
}
