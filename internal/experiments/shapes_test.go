package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/sematype/pythagoras/internal/eval"
)

func syntheticComparison(pythNum, satoNum float64) *ComparisonResult {
	mk := func(model string, num float64) eval.Row {
		return eval.Row{
			Model: model, WeightedNum: num, WeightedNonNum: num + 0.2,
			MacroNum: num - 0.1, WeightedAll: num,
		}
	}
	return &ComparisonResult{Rows: []eval.Row{
		mk("Sherlock", 0.4), mk("Sato", satoNum), mk("Dosolo", 0.2),
		mk("Doduo", 0.45), mk("GPT-3 (fine-tuned)", 0.25), mk("Pythagoras", pythNum),
	}}
}

func TestCheckShapesAllHold(t *testing.T) {
	t2 := syntheticComparison(0.8, 0.6)
	t3 := syntheticComparison(0.7, 0.6)
	fig := &Figure4Result{
		PythagorasWins: 100, Ties: 30, SatoWins: 40,
		PythagorasBox: eval.BoxStats{Median: 0.2},
		SatoBox:       eval.BoxStats{Median: 0.1},
	}
	t4 := []AblationRow{
		{Variant: "Pythagoras", WeightedF1: 0.8},
		{Variant: "w/o V_tn", WeightedF1: 0.77},
		{Variant: "w/o V_nn", WeightedF1: 0.72},
		{Variant: "w/o V_ncf", WeightedF1: 0.78},
		{Variant: "w/o V_tn, V_nn", WeightedF1: 0.6},
		{Variant: "w/o V_tn, V_nn, V_ncf", WeightedF1: 0.3},
		{Variant: "w/ original c_h", WeightedF1: 0.95},
		{Variant: "w/ synthesized c_h", WeightedF1: 0.9},
	}
	claims := CheckShapes(t2, t3, fig, t4)
	if len(claims) != 6 {
		t.Fatalf("claims = %d, want 6", len(claims))
	}
	for _, c := range claims {
		if !c.Holds {
			t.Errorf("claim %s should hold: %s", c.ID, c.Detail)
		}
	}
	out := FormatShapes(claims)
	if !strings.Contains(out, "HOLDS") || strings.Contains(out, "FAILS") {
		t.Fatalf("formatting wrong:\n%s", out)
	}
}

func TestCheckShapesDetectsFailure(t *testing.T) {
	// Sato beats Pythagoras on numeric → S1 must fail.
	t2 := syntheticComparison(0.5, 0.6)
	claims := CheckShapes(t2, nil, nil, nil)
	found := false
	for _, c := range claims {
		if c.ID == "S1-sports" {
			found = true
			if c.Holds {
				t.Fatal("S1 should fail when Sato wins")
			}
		}
	}
	if !found {
		t.Fatal("S1 claim missing")
	}
	if !strings.Contains(FormatShapes(claims), "FAILS") {
		t.Fatal("failure not rendered")
	}
}

func TestCheckShapesNilInputsSkip(t *testing.T) {
	claims := CheckShapes(nil, nil, nil, nil)
	if len(claims) != 0 {
		t.Fatalf("nil inputs produced %d claims", len(claims))
	}
}

func TestWriteMarkdown(t *testing.T) {
	t2 := syntheticComparison(0.8, 0.6)
	fig := &Figure4Result{PythagorasWins: 10, Ties: 2, SatoWins: 3}
	t4 := []AblationRow{{Variant: "Pythagoras", WeightedF1: 0.8, MacroF1: 0.7}}
	var buf bytes.Buffer
	WriteMarkdown(&buf, QuickScale(), t2, nil, fig, t4)
	out := buf.String()
	for _, want := range []string{"Table 2 (measured)", "**Pythagoras**", "Figure 4 (measured)", "Table 4 (measured)", "Shape claims"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}
