package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/lm"
)

// smokeScale is deliberately minuscule: it verifies plumbing, not scores.
func smokeScale() Scale {
	s := QuickScale()
	s.Sports = data.SportsConfig{NumTables: 40, Seed: 17, MinRows: 6, MaxRows: 9, WeakNameProb: 0.1, Domains: 3}
	s.Git = data.GitConfig{NumTables: 50, Seed: 23, MinRows: 6, MaxRows: 9, NameHintProb: 0.55, MinSupport: 2}
	s.Encoder = lm.Config{Dim: 32, Layers: 1, Heads: 2, FFNDim: 64, MaxLen: 256, Buckets: 1 << 12, Seed: 1}
	s.Pythagoras.Epochs = 8
	s.Pythagoras.Patience = 8
	s.Baseline.Epochs = 8
	s.Baseline.Patience = 8
	s.Sato.TrainOpts = s.Baseline
	s.Sato.Topics = 6
	return s
}

func TestTable1Statistics(t *testing.T) {
	s := smokeScale()
	sp, gt := Table1(s)
	if sp.NumTables != 40 || gt.NumTables == 0 {
		t.Fatalf("table1 stats: %+v %+v", sp, gt)
	}
	var buf bytes.Buffer
	WriteTable1(&buf, s)
	out := buf.String()
	if !strings.Contains(out, "SportsTables") || !strings.Contains(out, "GitTables") {
		t.Fatalf("table1 rendering:\n%s", out)
	}
}

func TestTable2SmokeRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison skipped in -short")
	}
	s := smokeScale()
	res := Table2(s)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.WeightedAll < 0 || row.WeightedAll > 1 {
			t.Fatalf("row %s out of range: %+v", row.Model, row)
		}
	}
	if res.Rows[5].Model != "Pythagoras" {
		t.Fatal("row order must match the paper")
	}
	// predictions captured for Figure 4
	if len(res.Preds["Pythagoras"]) == 0 || len(res.Preds["Sato"]) == 0 {
		t.Fatal("first-seed predictions missing")
	}

	fig := Figure4(res)
	total := fig.PythagorasWins + fig.Ties + fig.SatoWins
	if total == 0 {
		t.Fatal("figure 4 compared zero types")
	}
	var buf bytes.Buffer
	WriteComparison(&buf, "Table 2", res)
	WriteFigure4(&buf, fig)
	if !strings.Contains(buf.String(), "Pythagoras better") {
		t.Fatal("figure 4 rendering wrong")
	}
}

func TestTable4VariantsComplete(t *testing.T) {
	vs := Table4Variants()
	if len(vs) != 8 {
		t.Fatalf("variants = %d, want 8 (paper rows)", len(vs))
	}
	names := map[string]bool{}
	for _, v := range vs {
		names[v.Name] = true
	}
	for _, want := range []string{
		"Pythagoras", "w/o V_tn", "w/o V_nn", "w/o V_ncf",
		"w/o V_tn, V_nn", "w/o V_tn, V_nn, V_ncf",
		"w/ original c_h", "w/ synthesized c_h",
	} {
		if !names[want] {
			t.Fatalf("missing variant %q", want)
		}
	}
}

func TestScalesConstructible(t *testing.T) {
	for _, s := range []Scale{ReducedScale(), QuickScale(), FullScale()} {
		if s.Sports.NumTables == 0 || s.Git.NumTables == 0 || len(s.Seeds) == 0 {
			t.Fatalf("scale %q incomplete", s.Name)
		}
		if s.Encoder.Dim == 0 || s.Pythagoras.Epochs == 0 {
			t.Fatalf("scale %q incomplete", s.Name)
		}
	}
	full := FullScale()
	if full.Sports.NumTables != 1187 || full.Git.NumTables != 6577 || len(full.Seeds) != 5 {
		t.Fatal("full scale must match Table 1 and the 5-seed protocol")
	}
}

func TestHelperAccessors(t *testing.T) {
	res := &ComparisonResult{Rows: []eval.Row{
		{Model: "Sato", WeightedNum: 0.7},
		{Model: "Pythagoras", WeightedNum: 0.83},
		{Model: "Dosolo", WeightedNum: 0.3},
	}}
	name, best := BestBaselineNumeric(res)
	if name != "Sato" || best != 0.7 {
		t.Fatalf("BestBaselineNumeric = %s %.2f", name, best)
	}
	row, ok := RowByModel(res, "Pythagoras")
	if !ok || row.WeightedNum != 0.83 {
		t.Fatal("RowByModel failed")
	}
	if _, ok := RowByModel(res, "nope"); ok {
		t.Fatal("RowByModel found a ghost")
	}
	order := SortedModelsByNumericF1(res)
	if order[0] != "Pythagoras" || order[2] != "Dosolo" {
		t.Fatalf("sort order = %v", order)
	}
}
