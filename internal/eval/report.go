package eval

import (
	"fmt"
	"sort"
	"strings"
)

// ReportOptions controls classification-report rendering.
type ReportOptions struct {
	// ClassNames maps class indices to names; indices without names render
	// numerically.
	ClassNames []string
	// SortBySupport orders rows by descending support instead of class id.
	SortBySupport bool
	// TopK truncates to the first K rows after sorting (0 = all).
	TopK int
}

// Report renders a per-class precision/recall/F1/support table in the style
// of sklearn's classification_report, plus the weighted/macro summary the
// paper reports.
func Report(s *Scores, opts ReportOptions) string {
	classes := make([]*ClassScore, 0, len(s.PerClass))
	for _, cs := range s.PerClass {
		if cs.Support > 0 {
			classes = append(classes, cs)
		}
	}
	if opts.SortBySupport {
		sort.Slice(classes, func(i, j int) bool {
			if classes[i].Support != classes[j].Support {
				return classes[i].Support > classes[j].Support
			}
			return classes[i].Class < classes[j].Class
		})
	} else {
		sort.Slice(classes, func(i, j int) bool { return classes[i].Class < classes[j].Class })
	}
	if opts.TopK > 0 && len(classes) > opts.TopK {
		classes = classes[:opts.TopK]
	}

	name := func(c int) string {
		if c >= 0 && c < len(opts.ClassNames) {
			return opts.ClassNames[c]
		}
		return fmt.Sprintf("class %d", c)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-45s %9s %9s %9s %9s\n", "", "precision", "recall", "f1", "support")
	for _, cs := range classes {
		fmt.Fprintf(&sb, "%-45s %9.3f %9.3f %9.3f %9d\n",
			truncate(name(cs.Class), 45), cs.Precision, cs.Recall, cs.F1, cs.Support)
	}
	fmt.Fprintf(&sb, "\n%-45s %9s %9s %9.3f %9d\n", "weighted avg", "", "", s.WeightedF1, s.N)
	fmt.Fprintf(&sb, "%-45s %9s %9s %9.3f %9d\n", "macro avg", "", "", s.MacroF1, s.N)
	fmt.Fprintf(&sb, "%-45s %9s %9s %9.3f %9d\n", "accuracy", "", "", s.Accuracy, s.N)
	return sb.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// ConfusionPairs returns the most frequent (true, predicted) error pairs —
// the quickest way to see which semantic types a model conflates.
type ConfusionPair struct {
	True, Pred int
	Count      int
}

// TopConfusions extracts the k most frequent misclassification pairs.
func TopConfusions(preds []Prediction, k int) []ConfusionPair {
	counts := map[[2]int]int{}
	for _, p := range preds {
		if p.True != p.Pred {
			counts[[2]int{p.True, p.Pred}]++
		}
	}
	out := make([]ConfusionPair, 0, len(counts))
	for pair, n := range counts {
		out = append(out, ConfusionPair{True: pair[0], Pred: pair[1], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].True != out[j].True {
			return out[i].True < out[j].True
		}
		return out[i].Pred < out[j].Pred
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
