package eval_test

import (
	"fmt"

	"github.com/sematype/pythagoras/internal/eval"
)

// ExampleComputeSplit scores predictions the way the paper's Tables 2–3
// report them: separately for numerical and non-numerical columns.
func ExampleComputeSplit() {
	preds := []eval.Prediction{
		{True: 0, Pred: 0, Numeric: true},
		{True: 0, Pred: 0, Numeric: true},
		{True: 1, Pred: 0, Numeric: true}, // numeric miss
		{True: 2, Pred: 2, Numeric: false},
		{True: 2, Pred: 2, Numeric: false},
	}
	s := eval.ComputeSplit(preds)
	fmt.Printf("numeric     weighted F1 = %.3f\n", s.Numeric.WeightedF1)
	fmt.Printf("non-numeric weighted F1 = %.3f\n", s.NonNumeric.WeightedF1)
	fmt.Printf("overall     accuracy    = %.3f\n", s.Overall.Accuracy)
	// Output:
	// numeric     weighted F1 = 0.533
	// non-numeric weighted F1 = 1.000
	// overall     accuracy    = 0.800
}

// ExampleCompareByType computes the Figure 4 statistics: per-type wins of
// one model over another on numerical columns.
func ExampleCompareByType() {
	pythagoras := []eval.Prediction{
		{True: 0, Pred: 0, Numeric: true},
		{True: 1, Pred: 1, Numeric: true},
	}
	sato := []eval.Prediction{
		{True: 0, Pred: 1, Numeric: true},
		{True: 1, Pred: 1, Numeric: true},
	}
	d := eval.CompareByType(pythagoras, sato)
	fmt.Printf("Pythagoras better: %d, equal: %d, Sato better: %d\n", d.AWins, d.Ties, d.BWins)
	// Sato's miss on type 0 also costs it precision on type 1, so
	// Pythagoras wins both types.
	// Output:
	// Pythagoras better: 2, equal: 0, Sato better: 0
}
