// Package eval provides the evaluation machinery of the paper's §4:
// support-weighted and macro-averaged F1 scores, table-level train/
// validation/test splits, multi-seed aggregation, and the per-type model
// comparison behind Figure 4.
package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Prediction pairs a gold label with a predicted label for one column.
type Prediction struct {
	// True and Pred are semantic-type class indices.
	True, Pred int
	// Numeric records whether the column was numerical — scores are
	// reported separately for numerical and non-numerical columns.
	Numeric bool
}

// ClassScore holds per-class counts and derived metrics.
type ClassScore struct {
	Class             int
	TP, FP, FN        int
	Precision, Recall float64
	F1                float64
	Support           int // number of true instances
}

// Scores aggregates the metrics the paper reports.
type Scores struct {
	WeightedF1 float64
	MacroF1    float64
	Accuracy   float64
	N          int
	PerClass   map[int]*ClassScore
}

// Compute scores a set of predictions. Classes never appearing as a true
// label contribute to precision (as FP) but are excluded from macro
// averaging, matching scikit-learn's behaviour on the label set present in
// the test data (as used by the paper's baselines).
func Compute(preds []Prediction) *Scores {
	per := make(map[int]*ClassScore)
	get := func(c int) *ClassScore {
		cs, ok := per[c]
		if !ok {
			cs = &ClassScore{Class: c}
			per[c] = cs
		}
		return cs
	}
	correct := 0
	for _, p := range preds {
		if p.True == p.Pred {
			get(p.True).TP++
			correct++
		} else {
			get(p.True).FN++
			get(p.Pred).FP++
		}
		get(p.True).Support++
	}
	s := &Scores{PerClass: per, N: len(preds)}
	if len(preds) == 0 {
		return s
	}
	s.Accuracy = float64(correct) / float64(len(preds))

	// Iterate classes in sorted order so floating-point accumulation is
	// deterministic run to run.
	classIDs := make([]int, 0, len(per))
	for c := range per {
		classIDs = append(classIDs, c)
	}
	sort.Ints(classIDs)

	var weightedSum float64
	var macroSum float64
	macroN := 0
	totalSupport := 0
	for _, cid := range classIDs {
		cs := per[cid]
		if cs.TP+cs.FP > 0 {
			cs.Precision = float64(cs.TP) / float64(cs.TP+cs.FP)
		}
		if cs.TP+cs.FN > 0 {
			cs.Recall = float64(cs.TP) / float64(cs.TP+cs.FN)
		}
		if cs.Precision+cs.Recall > 0 {
			cs.F1 = 2 * cs.Precision * cs.Recall / (cs.Precision + cs.Recall)
		}
		if cs.Support > 0 {
			weightedSum += cs.F1 * float64(cs.Support)
			totalSupport += cs.Support
			macroSum += cs.F1
			macroN++
		}
	}
	if totalSupport > 0 {
		s.WeightedF1 = weightedSum / float64(totalSupport)
	}
	if macroN > 0 {
		s.MacroF1 = macroSum / float64(macroN)
	}
	return s
}

// Split computes scores for numerical-only, non-numerical-only, and overall
// predictions — one row of Table 2/3.
type Split struct {
	Numeric, NonNumeric, Overall *Scores
}

// ComputeSplit scores predictions separated by column kind.
func ComputeSplit(preds []Prediction) *Split {
	var num, txt []Prediction
	for _, p := range preds {
		if p.Numeric {
			num = append(num, p)
		} else {
			txt = append(txt, p)
		}
	}
	return &Split{
		Numeric:    Compute(num),
		NonNumeric: Compute(txt),
		Overall:    Compute(preds),
	}
}

// TrainValTestSplit partitions n items (tables) into 60/20/20 index sets,
// shuffled by the seeded RNG — the paper's split protocol (§4.2).
func TrainValTestSplit(n int, rng *rand.Rand) (train, val, test []int) {
	idx := rng.Perm(n)
	nTrain := int(0.6 * float64(n))
	nVal := int(0.2 * float64(n))
	train = append(train, idx[:nTrain]...)
	val = append(val, idx[nTrain:nTrain+nVal]...)
	test = append(test, idx[nTrain+nVal:]...)
	return
}

// MeanStd returns the mean and population standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return
}

// SeedAggregate accumulates per-seed Split results and reports means, the
// paper's "mean across five random seeds" protocol.
type SeedAggregate struct {
	splits []*Split
}

// Add records one seed's results.
func (a *SeedAggregate) Add(s *Split) { a.splits = append(a.splits, s) }

// Len returns the number of recorded seeds.
func (a *SeedAggregate) Len() int { return len(a.splits) }

// metricOf extracts one metric from a split.
type metricOf func(*Split) float64

// Mean returns the mean of the metric across seeds.
func (a *SeedAggregate) mean(f metricOf) float64 {
	xs := make([]float64, len(a.splits))
	for i, s := range a.splits {
		xs[i] = f(s)
	}
	m, _ := MeanStd(xs)
	return m
}

// Row is one model's row in Table 2/3: the six F1 numbers.
type Row struct {
	Model                                    string
	WeightedNum, WeightedNonNum, WeightedAll float64
	MacroNum, MacroNonNum, MacroAll          float64
}

// Row reduces the aggregate to the paper's table row.
func (a *SeedAggregate) Row(model string) Row {
	return Row{
		Model:          model,
		WeightedNum:    a.mean(func(s *Split) float64 { return s.Numeric.WeightedF1 }),
		WeightedNonNum: a.mean(func(s *Split) float64 { return s.NonNumeric.WeightedF1 }),
		WeightedAll:    a.mean(func(s *Split) float64 { return s.Overall.WeightedF1 }),
		MacroNum:       a.mean(func(s *Split) float64 { return s.Numeric.MacroF1 }),
		MacroNonNum:    a.mean(func(s *Split) float64 { return s.NonNumeric.MacroF1 }),
		MacroAll:       a.mean(func(s *Split) float64 { return s.Overall.MacroF1 }),
	}
}

// FormatRow renders a row like the paper's tables.
func FormatRow(r Row) string {
	return fmt.Sprintf("%-22s %8.3f %14.3f %8.3f %10.3f %14.3f %8.3f",
		r.Model, r.WeightedNum, r.WeightedNonNum, r.WeightedAll,
		r.MacroNum, r.MacroNonNum, r.MacroAll)
}

// TableHeader renders the Table 2/3 column header.
func TableHeader() string {
	return fmt.Sprintf("%-22s %8s %14s %8s %10s %14s %8s\n%-22s %8s %14s %8s %10s %14s %8s",
		"", "---- support weighted F1 ----", "", "", "------- macro F1 -------", "", "",
		"Model", "numeric", "non-numeric", "overall", "numeric", "non-numeric", "overall")
}

// --- Figure 4: per-type comparison ---

// TypeDiff compares two models' per-type F1 on numerical columns.
type TypeDiff struct {
	// AWins / Ties / BWins count numerical semantic types by which model
	// scored the higher F1.
	AWins, Ties, BWins int
	// DiffsAWins holds F1(A)−F1(B) for types where A won; DiffsBWins holds
	// F1(B)−F1(A) where B won. These feed the boxplots of Figure 4.
	DiffsAWins, DiffsBWins []float64
}

// CompareByType computes the Figure 4 statistics between model A's and
// model B's numeric-column predictions on the same test set.
func CompareByType(a, b []Prediction) *TypeDiff {
	fa := perTypeF1(a)
	fb := perTypeF1(b)
	classes := make(map[int]struct{})
	for c := range fa {
		classes[c] = struct{}{}
	}
	for c := range fb {
		classes[c] = struct{}{}
	}
	d := &TypeDiff{}
	for c := range classes {
		va, vb := fa[c], fb[c]
		switch {
		case va > vb:
			d.AWins++
			d.DiffsAWins = append(d.DiffsAWins, va-vb)
		case vb > va:
			d.BWins++
			d.DiffsBWins = append(d.DiffsBWins, vb-va)
		default:
			d.Ties++
		}
	}
	sort.Float64s(d.DiffsAWins)
	sort.Float64s(d.DiffsBWins)
	return d
}

func perTypeF1(preds []Prediction) map[int]float64 {
	var numeric []Prediction
	for _, p := range preds {
		if p.Numeric {
			numeric = append(numeric, p)
		}
	}
	s := Compute(numeric)
	out := make(map[int]float64)
	for c, cs := range s.PerClass {
		if cs.Support > 0 {
			out[c] = cs.F1
		}
	}
	return out
}

// BoxStats summarizes a sample for a boxplot: quartiles and whisker values.
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// Box computes boxplot statistics of xs (xs may be unsorted).
func Box(xs []float64) BoxStats {
	if len(xs) == 0 {
		return BoxStats{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		pos := p * float64(len(s)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		frac := pos - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
	return BoxStats{Min: s[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75), Max: s[len(s)-1], N: len(s)}
}
