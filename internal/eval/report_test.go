package eval

import (
	"strings"
	"testing"
)

func reportPreds() []Prediction {
	return []Prediction{
		{True: 0, Pred: 0}, {True: 0, Pred: 0}, {True: 0, Pred: 1},
		{True: 1, Pred: 1},
		{True: 2, Pred: 0}, {True: 2, Pred: 0},
	}
}

func TestReportContainsAllClasses(t *testing.T) {
	s := Compute(reportPreds())
	out := Report(s, ReportOptions{ClassNames: []string{"price", "rating", "year"}})
	for _, want := range []string{"price", "rating", "year", "weighted avg", "macro avg", "accuracy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportUnknownClassNames(t *testing.T) {
	s := Compute(reportPreds())
	out := Report(s, ReportOptions{})
	if !strings.Contains(out, "class 0") {
		t.Fatalf("numeric fallback missing:\n%s", out)
	}
}

func TestReportSortAndTopK(t *testing.T) {
	s := Compute(reportPreds())
	out := Report(s, ReportOptions{
		ClassNames:    []string{"price", "rating", "year"},
		SortBySupport: true,
		TopK:          1,
	})
	// class 0 has the largest support (3); only it should appear
	if !strings.Contains(out, "price") || strings.Contains(out, "rating") {
		t.Fatalf("TopK/sort wrong:\n%s", out)
	}
}

func TestReportTruncatesLongNames(t *testing.T) {
	long := strings.Repeat("x", 100)
	s := Compute([]Prediction{{True: 0, Pred: 0}})
	out := Report(s, ReportOptions{ClassNames: []string{long}})
	if strings.Contains(out, long) {
		t.Fatal("long class name not truncated")
	}
}

func TestTopConfusions(t *testing.T) {
	preds := []Prediction{
		{True: 0, Pred: 1}, {True: 0, Pred: 1}, {True: 0, Pred: 1},
		{True: 2, Pred: 3}, {True: 2, Pred: 3},
		{True: 4, Pred: 5},
		{True: 6, Pred: 6}, // correct — excluded
	}
	top := TopConfusions(preds, 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if top[0].True != 0 || top[0].Pred != 1 || top[0].Count != 3 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	if top[1].True != 2 || top[1].Count != 2 {
		t.Fatalf("top[1] = %+v", top[1])
	}
	if all := TopConfusions(preds, 0); len(all) != 3 {
		t.Fatalf("k=0 should return all confusions, got %d", len(all))
	}
}

func TestTopConfusionsDeterministicTieBreak(t *testing.T) {
	preds := []Prediction{
		{True: 5, Pred: 6},
		{True: 1, Pred: 2},
	}
	a := TopConfusions(preds, 0)
	b := TopConfusions(preds, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tie-break not deterministic")
		}
	}
	if a[0].True != 1 {
		t.Fatalf("tie-break order = %v", a)
	}
}
