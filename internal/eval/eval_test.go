package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComputePerfectPredictions(t *testing.T) {
	preds := []Prediction{
		{True: 0, Pred: 0}, {True: 1, Pred: 1}, {True: 2, Pred: 2},
	}
	s := Compute(preds)
	if s.WeightedF1 != 1 || s.MacroF1 != 1 || s.Accuracy != 1 {
		t.Fatalf("perfect predictions: %+v", s)
	}
}

func TestComputeAllWrong(t *testing.T) {
	preds := []Prediction{{True: 0, Pred: 1}, {True: 1, Pred: 0}}
	s := Compute(preds)
	if s.WeightedF1 != 0 || s.MacroF1 != 0 || s.Accuracy != 0 {
		t.Fatalf("all-wrong predictions: %+v", s)
	}
}

func TestComputeEmpty(t *testing.T) {
	s := Compute(nil)
	if s.WeightedF1 != 0 || s.MacroF1 != 0 || s.N != 0 {
		t.Fatalf("empty predictions: %+v", s)
	}
}

func TestComputeKnownValues(t *testing.T) {
	// class 0: TP=2 FN=1 (support 3); class 1: TP=1 FP=1 (support 1)
	preds := []Prediction{
		{True: 0, Pred: 0},
		{True: 0, Pred: 0},
		{True: 0, Pred: 1},
		{True: 1, Pred: 1},
	}
	s := Compute(preds)
	// class0: P=1, R=2/3, F1=0.8 ; class1: P=0.5, R=1, F1=2/3
	c0, c1 := s.PerClass[0], s.PerClass[1]
	if math.Abs(c0.F1-0.8) > 1e-12 {
		t.Fatalf("class0 F1 = %v", c0.F1)
	}
	if math.Abs(c1.F1-2.0/3) > 1e-12 {
		t.Fatalf("class1 F1 = %v", c1.F1)
	}
	wantWeighted := (0.8*3 + 2.0/3*1) / 4
	if math.Abs(s.WeightedF1-wantWeighted) > 1e-12 {
		t.Fatalf("weighted = %v, want %v", s.WeightedF1, wantWeighted)
	}
	wantMacro := (0.8 + 2.0/3) / 2
	if math.Abs(s.MacroF1-wantMacro) > 1e-12 {
		t.Fatalf("macro = %v, want %v", s.MacroF1, wantMacro)
	}
}

func TestComputeClassNeverTrueExcludedFromMacro(t *testing.T) {
	// Predicting class 9 (never a true label) must not dilute macro F1
	// beyond its FP effect on the predicted class.
	preds := []Prediction{
		{True: 0, Pred: 0},
		{True: 0, Pred: 9},
	}
	s := Compute(preds)
	// only class 0 has support → macro over {0}
	if len(s.PerClass) != 2 {
		t.Fatalf("classes tracked = %d", len(s.PerClass))
	}
	c0 := s.PerClass[0]
	want := 2 * (1.0 * 0.5) / (1.0 + 0.5)
	if math.Abs(s.MacroF1-want) > 1e-12 {
		t.Fatalf("macro = %v, want %v (class 9 excluded)", s.MacroF1, want)
	}
	if c0.Support != 2 {
		t.Fatalf("support = %d", c0.Support)
	}
}

func TestWeightedGEMacroOnImbalancedEasyMajority(t *testing.T) {
	// When the majority class is predicted well and the rare class badly,
	// weighted F1 must exceed macro F1 — the GitTables signature.
	var preds []Prediction
	for i := 0; i < 90; i++ {
		preds = append(preds, Prediction{True: 0, Pred: 0})
	}
	for i := 0; i < 10; i++ {
		preds = append(preds, Prediction{True: 1, Pred: 0})
	}
	s := Compute(preds)
	if s.WeightedF1 <= s.MacroF1 {
		t.Fatalf("weighted (%v) should exceed macro (%v) here", s.WeightedF1, s.MacroF1)
	}
}

func TestComputeSplitSeparatesKinds(t *testing.T) {
	preds := []Prediction{
		{True: 0, Pred: 0, Numeric: true},
		{True: 1, Pred: 2, Numeric: true},
		{True: 3, Pred: 3, Numeric: false},
	}
	sp := ComputeSplit(preds)
	if sp.Numeric.N != 2 || sp.NonNumeric.N != 1 || sp.Overall.N != 3 {
		t.Fatalf("split Ns: %d %d %d", sp.Numeric.N, sp.NonNumeric.N, sp.Overall.N)
	}
	if sp.NonNumeric.WeightedF1 != 1 {
		t.Fatal("non-numeric split wrong")
	}
}

func TestTrainValTestSplitProportions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train, val, test := TrainValTestSplit(100, rng)
	if len(train) != 60 || len(val) != 20 || len(test) != 20 {
		t.Fatalf("split sizes %d/%d/%d", len(train), len(val), len(test))
	}
	seen := map[int]bool{}
	for _, set := range [][]int{train, val, test} {
		for _, i := range set {
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 100 {
		t.Fatal("split lost indices")
	}
}

func TestTrainValTestSplitDeterministicPerSeed(t *testing.T) {
	a1, _, _ := TrainValTestSplit(50, rand.New(rand.NewSource(7)))
	a2, _, _ := TrainValTestSplit(50, rand.New(rand.NewSource(7)))
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed must give same split")
		}
	}
	b, _, _ := TrainValTestSplit(50, rand.New(rand.NewSource(8)))
	same := true
	for i := range a1 {
		if a1[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestTrainValTestSplitSmallN(t *testing.T) {
	train, val, test := TrainValTestSplit(3, rand.New(rand.NewSource(1)))
	if len(train)+len(val)+len(test) != 3 {
		t.Fatal("small split lost items")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(m-5) > 1e-12 || math.Abs(s-2) > 1e-12 {
		t.Fatalf("MeanStd = %v, %v", m, s)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty MeanStd should be 0,0")
	}
}

func TestSeedAggregateRow(t *testing.T) {
	agg := &SeedAggregate{}
	mk := func(w float64) *Split {
		preds := []Prediction{{True: 0, Pred: 0, Numeric: true}}
		s := ComputeSplit(preds)
		s.Numeric.WeightedF1 = w // override for the arithmetic check
		return s
	}
	agg.Add(mk(0.8))
	agg.Add(mk(0.9))
	row := agg.Row("test-model")
	if math.Abs(row.WeightedNum-0.85) > 1e-12 {
		t.Fatalf("mean across seeds = %v", row.WeightedNum)
	}
	if agg.Len() != 2 {
		t.Fatal("Len wrong")
	}
	if row.Model != "test-model" {
		t.Fatal("model name lost")
	}
}

func TestCompareByTypeFigure4(t *testing.T) {
	// Model A perfect on types 0,1; model B perfect on type 2; tie on 3.
	a := []Prediction{
		{True: 0, Pred: 0, Numeric: true},
		{True: 1, Pred: 1, Numeric: true},
		{True: 2, Pred: 0, Numeric: true},
		{True: 3, Pred: 3, Numeric: true},
	}
	b := []Prediction{
		{True: 0, Pred: 1, Numeric: true},
		{True: 1, Pred: 0, Numeric: true},
		{True: 2, Pred: 2, Numeric: true},
		{True: 3, Pred: 3, Numeric: true},
	}
	d := CompareByType(a, b)
	if d.AWins != 2 || d.BWins != 1 || d.Ties != 1 {
		t.Fatalf("CompareByType = %+v", d)
	}
	if len(d.DiffsAWins) != 2 || d.DiffsAWins[0] <= 0 {
		t.Fatalf("DiffsAWins = %v", d.DiffsAWins)
	}
}

func TestCompareByTypeIgnoresNonNumeric(t *testing.T) {
	a := []Prediction{{True: 0, Pred: 0, Numeric: false}}
	b := []Prediction{{True: 0, Pred: 1, Numeric: false}}
	d := CompareByType(a, b)
	if d.AWins+d.BWins+d.Ties != 0 {
		t.Fatal("non-numeric predictions must be excluded from Figure 4")
	}
}

func TestBoxStats(t *testing.T) {
	b := Box([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Q1 != 2 || b.Q3 != 4 || b.N != 5 {
		t.Fatalf("Box = %+v", b)
	}
	if e := Box(nil); e.N != 0 {
		t.Fatal("empty Box")
	}
}

func TestBoxUnsortedInput(t *testing.T) {
	b := Box([]float64{5, 1, 3, 2, 4})
	if b.Median != 3 {
		t.Fatalf("Box must sort internally, median = %v", b.Median)
	}
}

func TestScoresBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		preds := make([]Prediction, n)
		for i := range preds {
			preds[i] = Prediction{
				True: rng.Intn(5), Pred: rng.Intn(5), Numeric: rng.Intn(2) == 0,
			}
		}
		s := Compute(preds)
		return s.WeightedF1 >= 0 && s.WeightedF1 <= 1 &&
			s.MacroF1 >= 0 && s.MacroF1 <= 1 &&
			s.Accuracy >= 0 && s.Accuracy <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyLEWeightedConsistency(t *testing.T) {
	// For single-label micro stats, accuracy equals micro-F1; weighted F1
	// can differ but all stay in [0,1] and perfect accuracy implies
	// perfect weighted.
	preds := []Prediction{{True: 0, Pred: 0}, {True: 1, Pred: 1}}
	s := Compute(preds)
	if s.Accuracy == 1 && s.WeightedF1 != 1 {
		t.Fatal("perfect accuracy must imply perfect weighted F1")
	}
}

func TestFormatRowAndHeaderNonEmpty(t *testing.T) {
	r := Row{Model: "Pythagoras", WeightedNum: 0.829}
	if FormatRow(r) == "" || TableHeader() == "" {
		t.Fatal("formatting must produce text")
	}
}
