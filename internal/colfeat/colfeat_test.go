package colfeat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCharProfileDim(t *testing.T) {
	if got := len(CharProfile([]string{"abc"})); got != CharProfileDim {
		t.Fatalf("profile dim = %d, want %d", got, CharProfileDim)
	}
}

func TestCharProfileFrequencies(t *testing.T) {
	out := CharProfile([]string{"abc", "ABC", "123"})
	if out[0] != 2.0/9 { // 'a' + 'A'
		t.Fatalf("freq(a) = %v", out[0])
	}
	if out[26+1] != 1.0/9 { // digit '1'
		t.Fatalf("freq(1) = %v", out[26+1])
	}
}

func TestCharProfileEmpty(t *testing.T) {
	for _, v := range CharProfile(nil) {
		if v != 0 {
			t.Fatal("empty input must be all zeros")
		}
	}
}

func TestCharProfileSeparatesContentKinds(t *testing.T) {
	// Positions ("PG/SF") vs names ("Lebron James") vs numbers must have
	// clearly different profiles — the property Sherlock relies on.
	positions := CharProfile([]string{"PG/SF", "PF/C", "SG"})
	names := CharProfile([]string{"Lebron James", "Maria Silva"})
	numbers := CharProfile([]string{"28.1", "15.2", "7.5"})
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	if dist(positions, names) < 0.1 || dist(names, numbers) < 0.1 {
		t.Fatalf("profiles not separated: pn=%v nn=%v",
			dist(positions, names), dist(names, numbers))
	}
}

func TestCharProfileFiniteProperty(t *testing.T) {
	f := func(vals []string) bool {
		for _, v := range CharProfile(vals) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCharProfileFrequenciesSumBounded(t *testing.T) {
	out := CharProfile([]string{"hello world", "foo-bar_baz", "42"})
	var s float64
	for i := 0; i < 44; i++ {
		if out[i] < 0 {
			t.Fatal("negative frequency")
		}
		s += out[i]
	}
	if s > 1+1e-9 {
		t.Fatalf("frequency mass = %v > 1", s)
	}
}
