// Package colfeat provides frozen, model-agnostic column-content features
// shared by Sherlock-family baselines and (projected) by Pythagoras's
// initial node states: the character-distribution profile of a column's
// rendered values.
//
// The paper's models all start from strong column-content representations —
// the baselines from Sherlock's hand-crafted features, Pythagoras from
// pre-trained-BERT CLS vectors. Our frozen pseudo-BERT is a weaker feature
// extractor than real BERT, so Pythagoras additionally folds this frozen
// profile into its initial column embeddings (the paper's footnote 3
// explicitly leaves the initial embedding method open).
package colfeat

import "math"

// CharProfileDim is the width of the character-distribution profile:
// frequencies of 26 letters + 10 digits + 8 punctuation buckets + 6
// aggregates.
const CharProfileDim = 50

// CharProfile computes the character-distribution profile of a column's
// rendered values.
func CharProfile(vals []string) []float64 {
	out := make([]float64, CharProfileDim)
	var total, letters, digits, upper, spaces, special float64
	var lenSum, lenSq float64
	for _, v := range vals {
		lenSum += float64(len(v))
		lenSq += float64(len(v)) * float64(len(v))
		for _, r := range v {
			total++
			switch {
			case r >= 'a' && r <= 'z':
				out[r-'a']++
				letters++
			case r >= 'A' && r <= 'Z':
				out[r-'A']++
				letters++
				upper++
			case r >= '0' && r <= '9':
				out[26+(r-'0')]++
				digits++
			case r == ' ':
				spaces++
			default:
				special++
				out[36+int(r)%8]++ // bucket punctuation into 8 classes
			}
		}
	}
	if total > 0 {
		for i := 0; i < 44; i++ {
			out[i] /= total
		}
	}
	n := float64(len(vals))
	if n > 0 {
		meanLen := lenSum / n
		out[44] = meanLen
		out[45] = math.Sqrt(math.Max(0, lenSq/n-meanLen*meanLen))
	}
	if total > 0 {
		out[46] = letters / total
		out[47] = digits / total
		out[48] = upper / total
		out[49] = (spaces + special) / total
	}
	return out
}
