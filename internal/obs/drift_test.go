package obs

import (
	"sync"
	"testing"
)

// baselineFrom builds a DriftBaseline by feeding predictions through the
// same bucketing the monitor uses.
func baselineFrom(preds []struct {
	typ  string
	conf float64
}) DriftBaseline {
	b := DriftBaseline{
		TypeCounts: map[string]uint64{},
		ConfBounds: ConfidenceBuckets,
		ConfCounts: make([]uint64, len(ConfidenceBuckets)+1),
	}
	for _, p := range preds {
		b.TypeCounts[p.typ]++
		i := 0
		for i < len(b.ConfBounds) && p.conf > b.ConfBounds[i] {
			i++
		}
		b.ConfCounts[i]++
	}
	return b
}

type pred = struct {
	typ  string
	conf float64
}

func TestDriftShiftedScoresAboveControl(t *testing.T) {
	var train []pred
	for i := 0; i < 300; i++ {
		train = append(train, pred{"player.age", 0.9})
		train = append(train, pred{"team.score", 0.85})
		train = append(train, pred{"game.attendance", 0.8})
	}
	baseline := baselineFrom(train)

	// Control: serve the same mix the model trained on.
	control := NewDriftMonitor(baseline)
	for i := 0; i < 100; i++ {
		control.Observe("player.age", 0.9)
		control.Observe("team.score", 0.85)
		control.Observe("game.attendance", 0.8)
	}
	// Shifted: one dominant unseen type at low confidence.
	shifted := NewDriftMonitor(baseline)
	for i := 0; i < 300; i++ {
		shifted.Observe("zipcode", 0.2)
	}

	if ctrl, shift := control.TypeScore(), shifted.TypeScore(); shift <= ctrl {
		t.Fatalf("type drift: shifted %v <= control %v", shift, ctrl)
	}
	if ctrl, shift := control.ConfidenceScore(), shifted.ConfidenceScore(); shift <= ctrl {
		t.Fatalf("confidence drift: shifted %v <= control %v", shift, ctrl)
	}
	if s := control.TypeScore(); s > 0.01 {
		t.Fatalf("control type score %v, want ≈0 for identical distributions", s)
	}
	if s := shifted.TypeScore(); s < 0.5 {
		t.Fatalf("shifted type score %v, want large for disjoint support", s)
	}
}

func TestDriftGaugesRegistered(t *testing.T) {
	m := NewDriftMonitor(baselineFrom([]pred{{"a", 0.9}, {"b", 0.8}}))
	r := NewRegistry()
	m.Register(r)
	m.Observe("c", 0.1)
	snap := r.Snapshot()
	if snap.Gauges["drift.observations"] != 1 {
		t.Fatalf("drift.observations = %v, want 1", snap.Gauges["drift.observations"])
	}
	if snap.Gauges["drift.type.score"] <= 0 {
		t.Fatalf("drift.type.score = %v, want > 0 after unseen type", snap.Gauges["drift.type.score"])
	}
	if snap.Gauges["drift.confidence.score"] <= 0 {
		t.Fatalf("drift.confidence.score = %v, want > 0", snap.Gauges["drift.confidence.score"])
	}
}

func TestDriftEmptyBaselineInert(t *testing.T) {
	m := NewDriftMonitor(DriftBaseline{})
	if m != nil {
		t.Fatal("empty baseline should produce a nil (inert) monitor")
	}
	m.Observe("x", 0.5) // nil-safe
	if m.TypeScore() != 0 || m.ConfidenceScore() != 0 || m.Observations() != 0 {
		t.Fatal("nil monitor not inert")
	}
	m.Register(NewRegistry())
}

func TestDriftZeroUntilObserved(t *testing.T) {
	m := NewDriftMonitor(baselineFrom([]pred{{"a", 0.9}}))
	if m.TypeScore() != 0 || m.ConfidenceScore() != 0 {
		t.Fatal("scores nonzero before any observation")
	}
}

func TestDriftConcurrentObserve(t *testing.T) {
	m := NewDriftMonitor(baselineFrom([]pred{{"a", 0.9}, {"b", 0.5}}))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Observe("a", float64(i%10)/10)
				_ = m.TypeScore()
			}
		}(w)
	}
	wg.Wait()
	if m.Observations() != 8*200 {
		t.Fatalf("observations = %d, want %d", m.Observations(), 8*200)
	}
}

func TestChiSquareDistanceBounds(t *testing.T) {
	if d := chiSquareDistance([]float64{1, 2, 3}, []float64{2, 4, 6}); d > 1e-12 {
		t.Fatalf("identical (scaled) distributions: d = %v, want 0", d)
	}
	if d := chiSquareDistance([]float64{1, 0}, []float64{0, 1}); d < 0.999 || d > 1.001 {
		t.Fatalf("disjoint distributions: d = %v, want 1", d)
	}
	if d := chiSquareDistance(nil, nil); d != 0 {
		t.Fatalf("empty vs empty: d = %v", d)
	}
	if d := chiSquareDistance([]float64{1}, []float64{0}); d != 0 {
		t.Fatalf("one empty side: d = %v, want 0 (no evidence)", d)
	}
}
