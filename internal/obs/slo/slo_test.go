package slo

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/sematype/pythagoras/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fakeClock is a hand-stepped clock: every window sum computed against it
// is an exact rational over known bucket contents.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	// A fixed, timezone-free origin keeps bucket indices reproducible.
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// testEngine builds an engine with one availability and one latency
// objective on a fake clock with 1-minute buckets.
func testEngine(target float64) (*Engine, *fakeClock) {
	clk := newFakeClock()
	e := New(DefaultObjectives(target, 100*time.Millisecond),
		WithNow(clk.Now), WithBucketWidth(time.Minute))
	return e, clk
}

func objByName(t *testing.T, st Status, name string) ObjectiveStatus {
	t.Helper()
	for _, o := range st.Objectives {
		if o.Name == name {
			return o
		}
	}
	t.Fatalf("objective %q missing from status %+v", name, st)
	return ObjectiveStatus{}
}

func burnByWindow(t *testing.T, o ObjectiveStatus, label string) WindowBurn {
	t.Helper()
	for _, b := range o.Burn {
		if b.Window == label {
			return b
		}
	}
	t.Fatalf("window %q missing from %+v", label, o)
	return WindowBurn{}
}

// TestBurnRateExact pins the core definition: with target 0.5, a stream of
// 6 bad and 2 good events is badFraction 0.75 and burn rate exactly 1.5 on
// every window that covers it.
func TestBurnRateExact(t *testing.T) {
	e, _ := testEngine(0.5)
	for i := 0; i < 6; i++ {
		e.Record(time.Millisecond, false)
	}
	for i := 0; i < 2; i++ {
		e.Record(time.Millisecond, true)
	}
	st := objByName(t, e.Status(), "availability")
	if st.Good != 2 || st.Bad != 6 {
		t.Fatalf("budget window counts = %d good %d bad, want 2/6", st.Good, st.Bad)
	}
	if !almost(st.BadFraction, 0.75) {
		t.Fatalf("bad fraction = %v, want 0.75", st.BadFraction)
	}
	for _, label := range []string{"5m", "30m", "1h", "6h"} {
		if b := burnByWindow(t, st, label); !almost(b.BurnRate, 1.5) {
			t.Fatalf("burn(%s) = %v, want 1.5", label, b.BurnRate)
		}
	}
	if !almost(st.BudgetRemaining, -0.5) {
		t.Fatalf("budget remaining = %v, want -0.5", st.BudgetRemaining)
	}
}

// TestLatencyObjectiveClassification: slow-but-successful requests burn the
// latency budget without touching availability, and failed requests burn
// both.
func TestLatencyObjectiveClassification(t *testing.T) {
	e, _ := testEngine(0.9)
	e.Record(50*time.Millisecond, true)  // fast success: good for both
	e.Record(500*time.Millisecond, true) // slow success: bad for latency only
	e.Record(10*time.Millisecond, false) // fast failure: bad for both
	st := e.Status()
	avail := objByName(t, st, "availability")
	lat := objByName(t, st, "latency")
	if avail.Good != 2 || avail.Bad != 1 {
		t.Fatalf("availability = %d/%d, want 2 good 1 bad", avail.Good, avail.Bad)
	}
	if lat.Good != 1 || lat.Bad != 2 {
		t.Fatalf("latency = %d/%d, want 1 good 2 bad", lat.Good, lat.Bad)
	}
	if lat.LatencyThresholdMs != 100 {
		t.Fatalf("latency threshold = %v ms, want 100", lat.LatencyThresholdMs)
	}
}

// TestWindowsSlide steps the fake clock and checks events age out of each
// burn window at exactly its edge: 5 bad events recorded at t=0 are visible
// at +4m, gone from the 5m window at +6m, gone from 30m at +31m, gone from
// 1h at +61m, and gone from 6h (and everything else) at +6h1m.
func TestWindowsSlide(t *testing.T) {
	e, clk := testEngine(0.5)
	for i := 0; i < 5; i++ {
		e.Record(time.Millisecond, false)
	}
	expect := func(label string, want float64) {
		t.Helper()
		b := burnByWindow(t, objByName(t, e.Status(), "availability"), label)
		if !almost(b.BurnRate, want) {
			t.Fatalf("burn(%s) = %v, want %v (clock %s)", label, b.BurnRate, want, clk.Now())
		}
	}
	expect("5m", 2)
	clk.Advance(4 * time.Minute)
	expect("5m", 2) // still inside the 5m window
	clk.Advance(2 * time.Minute)
	expect("5m", 0) // aged out of 5m...
	expect("30m", 2)
	clk.Advance(25 * time.Minute) // +31m
	expect("30m", 0)
	expect("1h", 2)
	clk.Advance(30 * time.Minute) // +61m
	expect("1h", 0)
	expect("6h", 2)
	clk.Advance(5*time.Hour + time.Minute) // +6h2m
	expect("6h", 0)
}

// TestBudgetWindowSlide: events age out of the budget window too, restoring
// the budget.
func TestBudgetWindowSlide(t *testing.T) {
	clk := newFakeClock()
	e := New([]Objective{{Name: "availability", Target: 0.5, Window: time.Hour}},
		WithNow(clk.Now), WithBucketWidth(time.Minute))
	e.Record(0, false)
	if st := objByName(t, e.Status(), "availability"); !almost(st.BudgetRemaining, -1) {
		t.Fatalf("budget remaining = %v, want -1", st.BudgetRemaining)
	}
	clk.Advance(61 * time.Minute)
	st := objByName(t, e.Status(), "availability")
	if st.Good != 0 || st.Bad != 0 || !almost(st.BudgetRemaining, 1) {
		t.Fatalf("after slide: %+v, want empty window and full budget", st)
	}
}

// TestRingReuse wraps the ring more than once and checks stale cells never
// leak into the sums: the ring covers max(Window, 6h); events older than
// that are overwritten by bucket reuse.
func TestRingReuse(t *testing.T) {
	clk := newFakeClock()
	e := New([]Objective{{Name: "availability", Target: 0.5, Window: time.Hour}},
		WithNow(clk.Now), WithBucketWidth(time.Hour)) // 7 cells: 6h/1h + 1
	for i := 0; i < 30; i++ {
		e.Record(0, false)
		clk.Advance(time.Hour)
	}
	// The last recorded event is 1h old; only the trailing 6h of events can
	// be visible, and the 1h-window sum must hold exactly the one event in
	// its bucket range.
	st := objByName(t, e.Status(), "availability")
	if b := burnByWindow(t, st, "6h"); b.Bad > 6 {
		t.Fatalf("6h window sees %d bad events, ring leaked stale cells", b.Bad)
	}
	if st.Bad > 1 {
		t.Fatalf("1h budget window sees %d bad events, want ≤1", st.Bad)
	}
}

// TestAlertPairs: both windows of a pair must exceed the threshold before
// the alert state trips.
func TestAlertPairs(t *testing.T) {
	// target 0.99: all-bad traffic burns at 1/0.01 = 100× — over both
	// thresholds on every window it is visible in.
	e, clk := testEngine(0.99)
	e.Record(0, false)
	st := objByName(t, e.Status(), "availability")
	if !st.FastBurnAlert || !st.SlowBurnAlert {
		t.Fatalf("all-bad traffic did not trip both alerts: %+v", st)
	}
	// Age it past 5m and 30m: short windows go quiet, alerts must clear even
	// though the long windows still burn.
	clk.Advance(31 * time.Minute)
	st = objByName(t, e.Status(), "availability")
	if !almost(burnByWindow(t, st, "1h").BurnRate, 100) {
		t.Fatalf("1h window lost the event: %+v", st)
	}
	if st.FastBurnAlert || st.SlowBurnAlert {
		t.Fatalf("alert pair tripped on long window alone: %+v", st)
	}
}

// TestEmptyEngineStatus: no traffic means zero burn and a full budget — not
// NaN from 0/0.
func TestEmptyEngineStatus(t *testing.T) {
	e, _ := testEngine(0.999)
	for _, o := range e.Status().Objectives {
		if !almost(o.BudgetRemaining, 1) {
			t.Fatalf("%s budget = %v, want 1", o.Name, o.BudgetRemaining)
		}
		for _, b := range o.Burn {
			if b.BurnRate != 0 {
				t.Fatalf("%s burn(%s) = %v, want 0", o.Name, b.Window, b.BurnRate)
			}
		}
	}
}

// TestNilEngine: the nil-safety contract of the obs stack extends here.
func TestNilEngine(t *testing.T) {
	var e *Engine
	e.Record(time.Second, true)
	e.Register(obs.NewRegistry())
	if st := e.Status(); len(st.Objectives) != 0 {
		t.Fatalf("nil engine status = %+v", st)
	}
	live, _ := testEngine(0.9)
	live.Register(nil) // nil registry is also a no-op
}

// TestRegisterExportsGauges: the registry snapshot carries target, lifetime
// counters, burn-rate and budget gauges with exact values.
func TestRegisterExportsGauges(t *testing.T) {
	e, _ := testEngine(0.5)
	r := obs.NewRegistry()
	e.Register(r)
	for i := 0; i < 3; i++ {
		e.Record(time.Millisecond, false)
	}
	e.Record(time.Millisecond, true)
	snap := r.Snapshot()
	if got := snap.Counters["slo.availability.events.bad"]; got != 3 {
		t.Fatalf("bad counter = %d, want 3", got)
	}
	if got := snap.Counters["slo.availability.events.good"]; got != 1 {
		t.Fatalf("good counter = %d, want 1", got)
	}
	if got := snap.Gauges["slo.availability.target"]; got != 0.5 {
		t.Fatalf("target gauge = %v", got)
	}
	// badFraction 0.75, burn = 1.5, remaining = -0.5 — on every window.
	for _, w := range []string{"5m", "30m", "1h", "6h"} {
		if got := snap.Gauges["slo.availability.burn_rate."+w]; !almost(got, 1.5) {
			t.Fatalf("burn_rate.%s gauge = %v, want 1.5", w, got)
		}
	}
	if got := snap.Gauges["slo.availability.budget.remaining"]; !almost(got, -0.5) {
		t.Fatalf("budget gauge = %v, want -0.5", got)
	}
	// The latency objective saw 1ms ≤ 100ms, so its only bad events are the
	// failures: same counts as availability here.
	if got := snap.Counters["slo.latency.events.bad"]; got != 3 {
		t.Fatalf("latency bad counter = %d, want 3", got)
	}
}

// TestAnnotateTimeline: lifecycle annotations land on Status in order,
// stamped by the engine clock, the ring stays bounded, and a nil engine
// swallows them — the server calls Annotate unconditionally on swaps.
func TestAnnotateTimeline(t *testing.T) {
	e, clk := testEngine(0.999)
	e.Annotate("load", `candidate "v2"`)
	clk.Advance(time.Minute)
	e.Annotate("promote", `"v2" over "boot"`)
	st := e.Status()
	if len(st.Events) != 2 {
		t.Fatalf("events = %d, want 2: %+v", len(st.Events), st.Events)
	}
	if st.Events[0].Event != "load" || st.Events[1].Event != "promote" {
		t.Fatalf("event order: %+v", st.Events)
	}
	if !st.Events[1].Time.After(st.Events[0].Time) {
		t.Fatalf("annotations not clock-stamped: %v then %v", st.Events[0].Time, st.Events[1].Time)
	}
	if st.Events[1].Detail != `"v2" over "boot"` {
		t.Fatalf("detail lost: %+v", st.Events[1])
	}
	// The ring keeps only the newest maxAnnotations.
	for i := 0; i < maxAnnotations+10; i++ {
		e.Annotate("spam", "")
	}
	if got := len(e.Status().Events); got != maxAnnotations {
		t.Fatalf("ring grew to %d, want cap %d", got, maxAnnotations)
	}
	var nilEng *Engine
	nilEng.Annotate("load", "dropped") // must not panic
	if st := nilEng.Status(); len(st.Events) != 0 {
		t.Fatalf("nil engine recorded events: %+v", st.Events)
	}
}

// TestStatusJSONShape pins the /v1/slo wire shape.
func TestStatusJSONShape(t *testing.T) {
	e, _ := testEngine(0.999)
	e.Record(time.Millisecond, true)
	raw, err := json.Marshal(e.Status())
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		t.Fatal(err)
	}
	var objs []map[string]json.RawMessage
	if err := json.Unmarshal(top["objectives"], &objs); err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("objectives = %d, want 2", len(objs))
	}
	for _, key := range []string{"name", "target", "window_seconds", "good", "bad",
		"bad_fraction", "budget_remaining", "burn", "fast_burn_alert", "slow_burn_alert"} {
		if _, ok := objs[0][key]; !ok {
			t.Fatalf("objective JSON lost key %q: %s", key, raw)
		}
	}
}

// TestConcurrentRecordAndStatus exercises the engine under the race
// detector: Record, Status and registry snapshots (the GaugeFunc path) all
// running concurrently.
func TestConcurrentRecordAndStatus(t *testing.T) {
	e, clk := testEngine(0.99)
	r := obs.NewRegistry()
	e.Register(r)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				e.Record(time.Duration(i)*time.Microsecond, i%7 != 0)
				if i%50 == 0 {
					clk.Advance(time.Second)
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = e.Status()
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	st := objByName(t, e.Status(), "availability")
	if st.Good+st.Bad != 2000 {
		t.Fatalf("events = %d, want 2000", st.Good+st.Bad)
	}
}

// TestWritePrometheusGoldenSLO pins the Prometheus exposition of a
// registered engine byte-for-byte: deterministic fake clock, deterministic
// event stream, byte-stable render.
func TestWritePrometheusGoldenSLO(t *testing.T) {
	e, _ := testEngine(0.9)
	r := obs.NewRegistry()
	e.Register(r)
	for i := 0; i < 8; i++ {
		e.Record(50*time.Millisecond, true)
	}
	e.Record(300*time.Millisecond, true) // slow success
	e.Record(10*time.Millisecond, false) // failure
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("SLO exposition diverged from golden.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
	// And it is byte-stable across renders of the quiescent registry.
	var again bytes.Buffer
	if err := r.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two renders of a quiescent SLO registry differ")
	}
}

// TestAlertsReadout pins the watchdog-facing burn readout: per-objective
// fast/slow flags follow the multi-window pairs exactly, and windows age the
// flags off independently (fast clears when the 5m window empties while slow
// still holds on 30m AND 6h).
func TestAlertsReadout(t *testing.T) {
	clk := newFakeClock()
	e := New(DefaultObjectives(0.99, 100*time.Millisecond),
		WithNow(clk.Now), WithBucketWidth(time.Minute))

	alerts := e.Alerts()
	if len(alerts) != 2 {
		t.Fatalf("alerts for 2 objectives = %+v", alerts)
	}
	for _, a := range alerts {
		if a.Fast || a.Slow || a.Rate5m != 0 || a.Rate6h != 0 {
			t.Fatalf("idle engine alert = %+v, want all clear", a)
		}
	}

	// All-bad traffic against a 99% target: burn 100 on every window —
	// both pairs trip.
	for i := 0; i < 10; i++ {
		e.Record(time.Millisecond, false)
	}
	byName := func(name string) BurnAlert {
		t.Helper()
		for _, a := range e.Alerts() {
			if a.Objective == name {
				return a
			}
		}
		t.Fatalf("objective %q missing", name)
		return BurnAlert{}
	}
	a := byName("availability")
	if !a.Fast || !a.Slow {
		t.Fatalf("saturated engine alert = %+v, want fast and slow", a)
	}
	if !almost(a.Rate5m, 100) || !almost(a.Rate1h, 100) || !almost(a.Rate30m, 100) || !almost(a.Rate6h, 100) {
		t.Fatalf("rates = %+v, want 100 everywhere", a)
	}

	// +10m: the bad burst has aged out of the 5m window but still dominates
	// 30m/1h/6h — fast clears, slow holds.
	clk.Advance(10 * time.Minute)
	a = byName("availability")
	if a.Fast {
		t.Fatalf("fast still set after 5m window emptied: %+v", a)
	}
	if !a.Slow {
		t.Fatalf("slow cleared early: %+v", a)
	}
	if a.Rate5m != 0 {
		t.Fatalf("rate5m = %v, want 0", a.Rate5m)
	}

	// +7h: everything has aged out.
	clk.Advance(7 * time.Hour)
	a = byName("availability")
	if a.Fast || a.Slow || a.Rate6h != 0 {
		t.Fatalf("alert did not age out: %+v", a)
	}

	var nilEngine *Engine
	if got := nilEngine.Alerts(); got != nil {
		t.Fatalf("nil engine alerts = %+v", got)
	}
}
