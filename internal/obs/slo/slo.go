// Package slo is the service-level-objective engine of the serving stack
// (DESIGN.md §13): declarative objectives over the request stream, sliding-
// window error-budget accounting, and the multi-window burn-rate signals the
// Google SRE workbook recommends for paging (fast 5m/1h, slow 30m/6h pairs).
//
// The engine consumes one event per request — Record(latency, ok) — and
// classifies it per objective:
//
//   - an availability objective counts ok as good;
//   - a latency objective counts ok-and-under-threshold as good (a failed
//     request can never be "fast enough": errors burn latency budget too).
//
// Counts land in a ring of fixed-width time buckets, so every window the
// engine reports (the burn-rate windows and the error-budget window itself)
// is a sliding sum over recent buckets — no decay approximations, no
// unbounded memory. The wall clock is injectable (WithNow), which makes the
// window math exactly testable: a fake clock pins every event to a known
// bucket and every derived gauge to an exact rational.
//
// Definitions, for window w and objective target T:
//
//	badFraction(w) = bad(w) / (good(w)+bad(w))        (0 when no events)
//	burnRate(w)    = badFraction(w) / (1-T)
//
// A burn rate of 1 spends exactly the error budget the objective allows; a
// burn rate of 14.4 exhausts a 30-day budget in 2 days. BudgetRemaining is
// 1 - burnRate(budget window): the fraction of the window's budget still
// unspent (negative once the objective is blown).
//
// Everything exports through the existing obs.Registry — gauges are
// GaugeFuncs evaluated lazily at snapshot/scrape time, so the engine shows
// up in both the /v1/metrics JSON snapshot and the Prometheus text
// exposition with no extra plumbing, and /v1/slo renders Status() directly.
package slo

import (
	"fmt"
	"sync"
	"time"

	"github.com/sematype/pythagoras/internal/obs"
)

// The burn-rate windows, in the Google SRE multiwindow shape: the short
// window of each pair proves the burn is still happening, the long window
// proves it is sustained.
const (
	FastShortWindow = 5 * time.Minute
	FastLongWindow  = time.Hour
	SlowShortWindow = 30 * time.Minute
	SlowLongWindow  = 6 * time.Hour
)

// Paging thresholds from the SRE workbook, tuned for a 30-day budget window:
// 14.4× consumes 2% of a month's budget in an hour; 6× consumes 5% in six
// hours. They remain sensible alert levels for shorter budget windows — a
// sustained 6× burn is an incident regardless of accounting period.
const (
	FastBurnThreshold = 14.4
	SlowBurnThreshold = 6.0
)

// DefaultBudgetWindow is the error-budget accounting window when an
// Objective leaves Window zero. A day keeps the ring small and makes the
// budget numbers move visibly during a load test; production deployments
// tracking monthly SLOs set Window explicitly.
const DefaultBudgetWindow = 24 * time.Hour

// defaultBucketWidth is the sliding-window resolution: events within the
// same 10-second bucket are indistinguishable to the window sums, which is
// far finer than the shortest (5m) burn window needs.
const defaultBucketWidth = 10 * time.Second

// Objective declares one SLO over the request stream.
type Objective struct {
	// Name identifies the objective in metric names ("slo.<name>.…") and in
	// the /v1/slo report. Conventionally "availability" or "latency".
	Name string
	// Target is the good-event fraction the objective promises, in (0,1) —
	// 0.999 means at most one bad request per thousand.
	Target float64
	// Latency, when non-zero, makes this a latency objective: a request is
	// good only if it succeeded and finished within this threshold.
	Latency time.Duration
	// Window is the error-budget accounting window (DefaultBudgetWindow when
	// zero). Burn-rate windows are fixed; only the budget math uses this.
	Window time.Duration
}

// cell is one time bucket of an objective's ring. idx is the absolute
// bucket index (unix time / width); a slot is valid only when its idx
// matches the index the current time maps it to.
type cell struct {
	idx  int64
	good uint64
	bad  uint64
}

// objective is the engine-internal state of one declared Objective.
type objective struct {
	Objective
	ring      []cell
	goodTotal *obs.Counter // slo.<name>.events.good — lifetime, nil until Register
	badTotal  *obs.Counter
}

// maxAnnotations bounds the lifecycle-event ring: old deploys scroll off,
// the engine never grows without bound.
const maxAnnotations = 64

// Annotation marks a deployment-lifecycle event (model load, promote,
// rollback) on the SLO timeline. Burn-rate excursions are only actionable
// when an operator can line them up with what changed; carrying the events
// in the same report as the budget numbers makes the join trivial.
type Annotation struct {
	Time   time.Time `json:"time"`
	Event  string    `json:"event"`
	Detail string    `json:"detail,omitempty"`
}

// Engine classifies request events against a set of objectives and answers
// window queries. One mutex guards the rings: Record is one lock + two adds
// per objective, far off the inference hot path's allocation-free standards
// but called once per HTTP request, where a mutex is noise.
type Engine struct {
	mu    sync.Mutex
	objs  []*objective
	notes []Annotation // lifecycle events, oldest first, capped
	now   func() time.Time
	width time.Duration
}

// Option configures an Engine.
type Option func(*Engine)

// WithNow injects the clock — the test seam that makes window math exact.
func WithNow(now func() time.Time) Option {
	return func(e *Engine) { e.now = now }
}

// WithBucketWidth overrides the sliding-window bucket width (tests use
// coarse buckets to step a fake clock across window edges precisely).
func WithBucketWidth(d time.Duration) Option {
	return func(e *Engine) {
		if d > 0 {
			e.width = d
		}
	}
}

// New builds an engine over the given objectives. Objectives with a zero
// Window get DefaultBudgetWindow; every ring is sized to cover both its
// budget window and the longest burn window.
func New(objectives []Objective, opts ...Option) *Engine {
	e := &Engine{now: time.Now, width: defaultBucketWidth}
	for _, o := range opts {
		o(e)
	}
	for _, ob := range objectives {
		if ob.Window <= 0 {
			ob.Window = DefaultBudgetWindow
		}
		span := ob.Window
		if span < SlowLongWindow {
			span = SlowLongWindow
		}
		n := int(span/e.width) + 1
		e.objs = append(e.objs, &objective{
			Objective: ob,
			ring:      make([]cell, n),
		})
	}
	return e
}

// DefaultObjectives is the serving default behind `serve -slo-target
// -slo-latency-ms`: one availability objective and one latency objective
// sharing the same target.
func DefaultObjectives(target float64, latency time.Duration) []Objective {
	return []Objective{
		{Name: "availability", Target: target},
		{Name: "latency", Target: target, Latency: latency},
	}
}

// Record classifies one request event against every objective. ok reports
// whether the request counts as served (the server's convention: anything
// but a 5xx or a shed 429; client disconnects are recorded nowhere).
// Nil-safe, like the rest of the obs stack.
func (e *Engine) Record(latency time.Duration, ok bool) {
	if e == nil {
		return
	}
	e.mu.Lock()
	idx := e.now().UnixNano() / int64(e.width)
	for _, o := range e.objs {
		good := ok && (o.Latency == 0 || latency <= o.Latency)
		c := &o.ring[int(idx%int64(len(o.ring)))]
		if c.idx != idx {
			*c = cell{idx: idx}
		}
		if good {
			c.good++
			o.goodTotal.Inc()
		} else {
			c.bad++
			o.badTotal.Inc()
		}
	}
	e.mu.Unlock()
}

// window sums good/bad over the trailing w (the current, partial bucket
// included). Caller holds e.mu.
func (o *objective) window(nowIdx int64, width, w time.Duration) (good, bad uint64) {
	n := int64(w / width)
	if n < 1 {
		n = 1
	}
	lo := nowIdx - n + 1
	for i := range o.ring {
		if c := &o.ring[i]; c.idx >= lo && c.idx <= nowIdx {
			good += c.good
			bad += c.bad
		}
	}
	return good, bad
}

// burnRate converts window counts into a burn rate against target t.
func burnRate(good, bad uint64, t float64) float64 {
	total := good + bad
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - t)
}

// WindowBurn is one burn-rate window of an objective's status.
type WindowBurn struct {
	Window   string  `json:"window"` // "5m", "30m", "1h", "6h"
	Seconds  float64 `json:"seconds"`
	Good     uint64  `json:"good"`
	Bad      uint64  `json:"bad"`
	BurnRate float64 `json:"burn_rate"`
}

// ObjectiveStatus is one objective's entry in the /v1/slo report.
type ObjectiveStatus struct {
	Name               string       `json:"name"`
	Target             float64      `json:"target"`
	LatencyThresholdMs float64      `json:"latency_threshold_ms,omitempty"`
	WindowSeconds      float64      `json:"window_seconds"`
	Good               uint64       `json:"good"` // over the budget window
	Bad                uint64       `json:"bad"`
	BadFraction        float64      `json:"bad_fraction"`
	BudgetRemaining    float64      `json:"budget_remaining"` // 1 = untouched, <0 = blown
	Burn               []WindowBurn `json:"burn"`
	FastBurnAlert      bool         `json:"fast_burn_alert"` // 5m AND 1h over FastBurnThreshold
	SlowBurnAlert      bool         `json:"slow_burn_alert"` // 30m AND 6h over SlowBurnThreshold
}

// Status is the body of GET /v1/slo.
type Status struct {
	Objectives []ObjectiveStatus `json:"objectives"`
	// Events are the lifecycle annotations recorded with Annotate, oldest
	// first — the deploy markers a burn-rate chart is read against.
	Events []Annotation `json:"events,omitempty"`
}

// Annotate records a lifecycle event (timestamped by the engine's clock) on
// the SLO timeline; the most recent maxAnnotations are reported by Status.
// Nil-safe, like Record.
func (e *Engine) Annotate(event, detail string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.notes = append(e.notes, Annotation{Time: e.now(), Event: event, Detail: detail})
	if len(e.notes) > maxAnnotations {
		e.notes = append(e.notes[:0], e.notes[len(e.notes)-maxAnnotations:]...)
	}
	e.mu.Unlock()
}

// burnWindows pairs the canonical window labels with their durations, in
// report order.
var burnWindows = []struct {
	label string
	d     time.Duration
}{
	{"5m", FastShortWindow},
	{"30m", SlowShortWindow},
	{"1h", FastLongWindow},
	{"6h", SlowLongWindow},
}

// Status reports every objective: budget-window counts, remaining budget,
// and all four burn-rate windows with the two alert pair states.
func (e *Engine) Status() Status {
	var st Status
	if e == nil {
		return st
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	nowIdx := e.now().UnixNano() / int64(e.width)
	for _, o := range e.objs {
		good, bad := o.window(nowIdx, e.width, o.Window)
		os := ObjectiveStatus{
			Name:            o.Name,
			Target:          o.Target,
			WindowSeconds:   o.Window.Seconds(),
			Good:            good,
			Bad:             bad,
			BudgetRemaining: 1 - burnRate(good, bad, o.Target),
		}
		if o.Latency > 0 {
			os.LatencyThresholdMs = float64(o.Latency) / float64(time.Millisecond)
		}
		if total := good + bad; total > 0 {
			os.BadFraction = float64(bad) / float64(total)
		}
		rates := map[string]float64{}
		for _, bw := range burnWindows {
			g, b := o.window(nowIdx, e.width, bw.d)
			r := burnRate(g, b, o.Target)
			rates[bw.label] = r
			os.Burn = append(os.Burn, WindowBurn{
				Window: bw.label, Seconds: bw.d.Seconds(), Good: g, Bad: b, BurnRate: r,
			})
		}
		os.FastBurnAlert = rates["5m"] > FastBurnThreshold && rates["1h"] > FastBurnThreshold
		os.SlowBurnAlert = rates["30m"] > SlowBurnThreshold && rates["6h"] > SlowBurnThreshold
		st.Objectives = append(st.Objectives, os)
	}
	st.Events = append(st.Events, e.notes...)
	return st
}

// BurnAlert is the burn-rate pair state of one objective — the compact
// readout the anomaly watchdog polls every tick (Status computes the same
// booleans but also materializes the full per-window report; a watchdog
// ticking every few seconds only needs the pair states and their rates).
type BurnAlert struct {
	Objective string  `json:"objective"`
	Fast      bool    `json:"fast"` // 5m AND 1h over FastBurnThreshold
	Slow      bool    `json:"slow"` // 30m AND 6h over SlowBurnThreshold
	Rate5m    float64 `json:"rate_5m"`
	Rate30m   float64 `json:"rate_30m"`
	Rate1h    float64 `json:"rate_1h"`
	Rate6h    float64 `json:"rate_6h"`
}

// Alerts reports every objective's burn-rate pair state at the engine's
// current clock. Nil-safe (no objectives, no alerts).
func (e *Engine) Alerts() []BurnAlert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	nowIdx := e.now().UnixNano() / int64(e.width)
	alerts := make([]BurnAlert, 0, len(e.objs))
	for _, o := range e.objs {
		a := BurnAlert{Objective: o.Name}
		rates := map[string]*float64{
			"5m": &a.Rate5m, "30m": &a.Rate30m, "1h": &a.Rate1h, "6h": &a.Rate6h,
		}
		for _, bw := range burnWindows {
			g, b := o.window(nowIdx, e.width, bw.d)
			*rates[bw.label] = burnRate(g, b, o.Target)
		}
		a.Fast = a.Rate5m > FastBurnThreshold && a.Rate1h > FastBurnThreshold
		a.Slow = a.Rate30m > SlowBurnThreshold && a.Rate6h > SlowBurnThreshold
		alerts = append(alerts, a)
	}
	return alerts
}

// Register exports the engine into a registry:
//
//	slo.<name>.target              gauge, the declared target
//	slo.<name>.events.good         counter, lifetime good events
//	slo.<name>.events.bad          counter, lifetime bad events
//	slo.<name>.budget.remaining    gauge, 1 − burnRate(budget window)
//	slo.<name>.burn_rate.{5m,30m,1h,6h}  gauges
//
// Windowed values are GaugeFuncs evaluated at snapshot/scrape time, so the
// same numbers appear in the JSON snapshot and the Prometheus exposition.
// Nil-safe on both sides.
func (e *Engine) Register(r *obs.Registry) {
	if e == nil || r == nil {
		return
	}
	// Registry calls (r.mu) happen outside e.mu: snapshot-time GaugeFuncs
	// lock r.mu → e.mu, so holding e.mu here would invert the lock order.
	// e.objs itself is immutable after New.
	for _, o := range e.objs {
		o := o
		prefix := "slo." + o.Name
		target := o.Target
		r.GaugeFunc(prefix+".target", func() float64 { return target })
		good, bad := r.Counter(prefix+".events.good"), r.Counter(prefix+".events.bad")
		e.mu.Lock()
		o.goodTotal, o.badTotal = good, bad
		e.mu.Unlock()
		r.GaugeFunc(prefix+".budget.remaining", func() float64 {
			g, b := e.windowCounts(o, o.Window)
			return 1 - burnRate(g, b, target)
		})
		for _, bw := range burnWindows {
			bw := bw
			r.GaugeFunc(fmt.Sprintf("%s.burn_rate.%s", prefix, bw.label), func() float64 {
				g, b := e.windowCounts(o, bw.d)
				return burnRate(g, b, target)
			})
		}
	}
}

// windowCounts is the locked window query behind the registered GaugeFuncs.
func (e *Engine) windowCounts(o *objective, w time.Duration) (good, bad uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return o.window(e.now().UnixNano()/int64(e.width), e.width, w)
}
