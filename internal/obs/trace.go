// Trace capture: the second observability layer on top of the span
// aggregates (DESIGN.md §11). While span histograms answer "how slow is
// stage X on average", captured traces answer "which request was slow and
// where inside it": every span of a sampled request is kept with its
// SplitMix64-derived IDs, parentage, attributes (request ID, route) and
// error flag, and the finished tree lands in a fixed-size ring buffer the
// server exposes at GET /v1/traces.
//
// Sampling policy: the recorder keeps a configurable fraction of traces
// (deterministically, from a SplitMix64 sequence — no global RNG, no lock),
// and ALWAYS keeps traces that errored or ran longer than the slow
// threshold. That bias is the point: at 1% sampling the ring is a cheap
// rolling census, while the tail — the requests an operator actually hunts —
// is never lost to the dice.
package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanData is one finished span of a captured trace, in wire form.
type SpanData struct {
	TraceID    string    `json:"trace_id"`
	SpanID     string    `json:"span_id"`
	ParentID   string    `json:"parent_id,omitempty"`
	Name       string    `json:"name"`
	Path       string    `json:"path"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Error      bool      `json:"error,omitempty"`
	Attrs      []Attr    `json:"attrs,omitempty"`
}

// Trace is one captured request: the root span's identity plus every span
// of its tree, in End order (children before parents, so the root is last).
type Trace struct {
	TraceID    string     `json:"trace_id"`
	Root       string     `json:"root"` // root span name (the route's stage name)
	Start      time.Time  `json:"start"`
	DurationMs float64    `json:"duration_ms"`
	Error      bool       `json:"error,omitempty"`
	Reason     string     `json:"reason"` // why it was kept: "sample", "slow" or "error"
	Spans      []SpanData `json:"spans"`
}

// Attr lookup on a captured span ("" when absent).
func (sd *SpanData) Attr(key string) string {
	for _, a := range sd.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// RootSpan returns the trace's root span record (the one without a parent).
func (t *Trace) RootSpan() *SpanData {
	for i := range t.Spans {
		if t.Spans[i].ParentID == "" {
			return &t.Spans[i]
		}
	}
	return nil
}

// traceBuilder accumulates the spans of one in-flight trace. Spans may End
// from different goroutines, so the slice is lock-protected; the builder is
// reachable only through the spans of its own trace.
type traceBuilder struct {
	rec     *TraceRecorder
	mu      sync.Mutex
	spans   []SpanData
	errored bool
}

func (tb *traceBuilder) add(sd SpanData, errored bool) {
	tb.mu.Lock()
	tb.spans = append(tb.spans, sd)
	tb.errored = tb.errored || errored
	tb.mu.Unlock()
}

// finish is called by the root span's End: it seals the trace and offers it
// to the recorder.
func (tb *traceBuilder) finish(root *Span, d time.Duration) {
	tb.mu.Lock()
	t := Trace{
		TraceID:    formatID(root.traceID),
		Root:       root.name,
		Start:      root.start,
		DurationMs: float64(d) / float64(time.Millisecond),
		Error:      tb.errored,
		Spans:      tb.spans,
	}
	tb.spans = nil
	tb.mu.Unlock()
	tb.rec.offer(t)
}

// TraceConfig configures a TraceRecorder.
type TraceConfig struct {
	// SampleRate is the fraction of traces kept regardless of outcome
	// (clamped to [0, 1]; 0 keeps only errored/slow traces).
	SampleRate float64
	// SlowThreshold force-keeps any trace at least this long (0 disables
	// the slow path — only sampling and errors capture).
	SlowThreshold time.Duration
	// Buffer is the ring capacity in traces (<= 0 selects 256). When full,
	// the oldest trace is overwritten.
	Buffer int
	// Seed perturbs the ID/sampling sequence (two recorders in one process
	// mint disjoint IDs). 0 selects a fixed default.
	Seed uint64
}

// DefaultTraceBuffer is the ring capacity when TraceConfig.Buffer is unset.
const DefaultTraceBuffer = 256

// TraceRecorder samples finished span trees into a fixed-size ring buffer.
// All methods are safe for concurrent use; a nil recorder is inert (spans
// simply do not capture).
type TraceRecorder struct {
	rate float64
	slow time.Duration

	seq  atomic.Uint64 // drives both ID minting and sampling decisions
	seed uint64

	captured atomic.Uint64 // traces kept (any reason)
	sampled  atomic.Uint64 // kept by the dice alone
	dropped  atomic.Uint64 // finished but not kept

	mu    sync.Mutex
	ring  []Trace
	next  int // ring write cursor
	total int // traces currently buffered (≤ len(ring))
}

// NewTraceRecorder builds a recorder; see TraceConfig for the policy knobs.
func NewTraceRecorder(cfg TraceConfig) *TraceRecorder {
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultTraceBuffer
	}
	if cfg.SampleRate < 0 {
		cfg.SampleRate = 0
	}
	if cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x9E3779B97F4A7C15
	}
	return &TraceRecorder{
		rate: cfg.SampleRate,
		slow: cfg.SlowThreshold,
		seed: cfg.Seed,
		ring: make([]Trace, cfg.Buffer),
	}
}

// splitmix64 is the SplitMix64 finalizer — the same mixer the trainer uses
// for sub-batch seeds. It turns the recorder's sequential counter into
// well-distributed trace/span IDs and sampling variates.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// nextID mints the next trace/span ID. IDs are never zero (zero means "no
// ID" in the span wire format).
func (r *TraceRecorder) nextID() uint64 {
	for {
		if id := splitmix64(r.seed + r.seq.Add(1)); id != 0 {
			return id
		}
	}
}

// sample draws the next deterministic Bernoulli(rate) variate.
func (r *TraceRecorder) sample() bool {
	if r.rate >= 1 {
		return true
	}
	if r.rate <= 0 {
		return false
	}
	u := float64(splitmix64(r.seed^0xD1B54A32D192ED03+r.seq.Add(1))>>11) / float64(1<<53)
	return u < r.rate
}

// offer decides a finished trace's fate: errored and slow traces are always
// kept, everything else rolls the sampling dice; kept traces overwrite the
// ring's oldest slot.
func (r *TraceRecorder) offer(t Trace) {
	if r == nil {
		return
	}
	switch {
	case t.Error:
		t.Reason = "error"
	case r.slow > 0 && t.DurationMs >= float64(r.slow)/float64(time.Millisecond):
		t.Reason = "slow"
	case r.sample():
		t.Reason = "sample"
		r.sampled.Add(1)
	default:
		r.dropped.Add(1)
		return
	}
	r.captured.Add(1)
	r.mu.Lock()
	r.ring[r.next] = t
	r.next = (r.next + 1) % len(r.ring)
	if r.total < len(r.ring) {
		r.total++
	}
	r.mu.Unlock()
}

// TraceFilter selects captured traces (zero value = everything).
type TraceFilter struct {
	// MinDuration keeps traces at least this long.
	MinDuration time.Duration
	// Route keeps traces whose root span name, root path, or "route"
	// attribute equals the given value.
	Route string
	// ErrorOnly keeps only errored traces.
	ErrorOnly bool
	// Limit caps the result length (0 = no cap). Newest traces win.
	Limit int
}

// Traces returns the buffered traces matching f, newest first.
func (r *TraceRecorder) Traces(f TraceFilter) []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	buf := make([]Trace, 0, r.total)
	for i := 0; i < r.total; i++ {
		// next-1 is the newest slot; walk backwards.
		idx := (r.next - 1 - i + 2*len(r.ring)) % len(r.ring)
		buf = append(buf, r.ring[idx])
	}
	r.mu.Unlock()

	out := buf[:0]
	for _, t := range buf {
		if f.MinDuration > 0 && t.DurationMs < float64(f.MinDuration)/float64(time.Millisecond) {
			continue
		}
		if f.ErrorOnly && !t.Error {
			continue
		}
		if f.Route != "" && !t.matchesRoute(f.Route) {
			continue
		}
		out = append(out, t)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

func (t *Trace) matchesRoute(route string) bool {
	if t.Root == route || strings.EqualFold(t.Root, route) {
		return true
	}
	if rs := t.RootSpan(); rs != nil && rs.Attr("route") == route {
		return true
	}
	return false
}

// Len reports how many traces are buffered right now.
func (r *TraceRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Captured, Sampled and Dropped report the recorder's cumulative decisions.
func (r *TraceRecorder) Captured() uint64 {
	if r == nil {
		return 0
	}
	return r.captured.Load()
}

// Sampled reports traces kept by the sampling dice alone.
func (r *TraceRecorder) Sampled() uint64 {
	if r == nil {
		return 0
	}
	return r.sampled.Load()
}

// Dropped reports finished traces that were not kept.
func (r *TraceRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Register exports the recorder's own health as gauges: trace.captured,
// trace.sampled, trace.dropped and trace.buffered. Nil-safe on both sides.
func (r *TraceRecorder) Register(reg *Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.GaugeFunc("trace.captured", func() float64 { return float64(r.Captured()) })
	reg.GaugeFunc("trace.sampled", func() float64 { return float64(r.Sampled()) })
	reg.GaugeFunc("trace.dropped", func() float64 { return float64(r.Dropped()) })
	reg.GaugeFunc("trace.buffered", func() float64 { return float64(r.Len()) })
}
