// Runtime telemetry: Go runtime health exported as gauges, evaluated lazily
// at snapshot/scrape time through GaugeFunc. runtime.ReadMemStats
// stop-the-worlds, so reads are throttled — concurrent scrapes within the
// refresh window share one cached MemStats instead of each paying the STW.
package obs

import (
	"runtime"
	"sync"
	"time"
)

// processStart anchors process.uptime_seconds. Package-init time is close
// enough to exec time for interpreting benchmark artifacts, which is what
// the gauge exists for.
var processStart = time.Now()

// memStatsReader caches runtime.ReadMemStats for a refresh interval. When a
// pause histogram is attached, each refresh also drains the GC cycles that
// completed since the previous refresh into it: PauseNs is the runtime's own
// circular buffer of the last 256 pause durations, indexed by (NumGC+255)%256,
// so the delta in NumGC names exactly the new entries.
type memStatsReader struct {
	mu        sync.Mutex
	stats     runtime.MemStats
	last      time.Time
	refresh   time.Duration
	pauses    *Histogram // runtime.gc.pause.seconds; nil skips the drain
	lastNumGC uint32
	primed    bool
}

func (m *memStatsReader) read() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.last) >= m.refresh {
		runtime.ReadMemStats(&m.stats)
		m.last = time.Now()
		m.drainPauses()
	}
	return m.stats
}

// drainPauses observes each GC pause completed since the previous refresh.
// The first refresh only primes the cursor — pauses from before the registry
// existed belong to no one's watch window. Caller holds m.mu.
func (m *memStatsReader) drainPauses() {
	if m.pauses == nil {
		return
	}
	n := m.stats.NumGC
	if !m.primed {
		m.primed = true
		m.lastNumGC = n
		return
	}
	newCycles := n - m.lastNumGC
	if newCycles > uint32(len(m.stats.PauseNs)) {
		newCycles = uint32(len(m.stats.PauseNs)) // older pauses were overwritten
	}
	for i := uint32(0); i < newCycles; i++ {
		idx := (n - i + 255) % uint32(len(m.stats.PauseNs))
		m.pauses.Observe(float64(m.stats.PauseNs[idx]) / 1e9)
	}
	m.lastNumGC = n
}

// GCPauseBuckets are the runtime.gc.pause.seconds histogram bounds: GC
// pauses live in the 10µs–10ms range on healthy processes, so the buckets
// resolve that band and let anything slower pile into the overflow.
var GCPauseBuckets = ExpBuckets(1e-5, 2, 12) // 10µs … ~20ms

// RegisterRuntimeMetrics exports Go runtime health into the registry:
//
//	runtime.goroutines              current goroutine count
//	runtime.heap.alloc.bytes        live heap bytes
//	runtime.heap.objects            live heap objects
//	runtime.gc.count                completed GC cycles
//	runtime.gc.pause.total.seconds  cumulative stop-the-world pause time
//	runtime.gc.pause.seconds        histogram of individual GC pauses,
//	                                drained from MemStats.PauseNs at each
//	                                throttled refresh — a watchdog input
//	                                signal alongside runtime.goroutines
//	runtime.sys.bytes               total bytes obtained from the OS
//	runtime.gomaxprocs              GOMAXPROCS at scrape time
//	runtime.num_cpu                 logical CPUs visible to the process
//	process.uptime_seconds          seconds since process start
//
// The last three make performance artifacts (BENCH_serve.json, a scraped
// dashboard) interpretable across machines: a throughput number without the
// CPU budget behind it is unreadable, and uptime separates a freshly warmed
// process from one hours into its cache lifetime.
//
// Values are read lazily at snapshot/scrape time; ReadMemStats is throttled
// to at most once per second so a tight scrape loop cannot turn telemetry
// into GC pressure. Nil-safe.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	ms := &memStatsReader{refresh: time.Second}
	ms.pauses = r.Histogram("runtime.gc.pause.seconds", GCPauseBuckets)
	r.GaugeFunc("runtime.goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("runtime.gomaxprocs", func() float64 {
		return float64(runtime.GOMAXPROCS(0))
	})
	r.GaugeFunc("runtime.num_cpu", func() float64 {
		return float64(runtime.NumCPU())
	})
	r.GaugeFunc("process.uptime_seconds", func() float64 {
		return time.Since(processStart).Seconds()
	})
	r.GaugeFunc("runtime.heap.alloc.bytes", func() float64 {
		return float64(ms.read().HeapAlloc)
	})
	r.GaugeFunc("runtime.heap.objects", func() float64 {
		return float64(ms.read().HeapObjects)
	})
	r.GaugeFunc("runtime.gc.count", func() float64 {
		return float64(ms.read().NumGC)
	})
	r.GaugeFunc("runtime.gc.pause.total.seconds", func() float64 {
		return float64(ms.read().PauseTotalNs) / 1e9
	})
	r.GaugeFunc("runtime.sys.bytes", func() float64 {
		return float64(ms.read().Sys)
	})
}
