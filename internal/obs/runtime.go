// Runtime telemetry: Go runtime health exported as gauges, evaluated lazily
// at snapshot/scrape time through GaugeFunc. runtime.ReadMemStats
// stop-the-worlds, so reads are throttled — concurrent scrapes within the
// refresh window share one cached MemStats instead of each paying the STW.
package obs

import (
	"runtime"
	"sync"
	"time"
)

// processStart anchors process.uptime_seconds. Package-init time is close
// enough to exec time for interpreting benchmark artifacts, which is what
// the gauge exists for.
var processStart = time.Now()

// memStatsReader caches runtime.ReadMemStats for a refresh interval.
type memStatsReader struct {
	mu      sync.Mutex
	stats   runtime.MemStats
	last    time.Time
	refresh time.Duration
}

func (m *memStatsReader) read() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.last) >= m.refresh {
		runtime.ReadMemStats(&m.stats)
		m.last = time.Now()
	}
	return m.stats
}

// RegisterRuntimeMetrics exports Go runtime health into the registry:
//
//	runtime.goroutines              current goroutine count
//	runtime.heap.alloc.bytes        live heap bytes
//	runtime.heap.objects            live heap objects
//	runtime.gc.count                completed GC cycles
//	runtime.gc.pause.total.seconds  cumulative stop-the-world pause time
//	runtime.sys.bytes               total bytes obtained from the OS
//	runtime.gomaxprocs              GOMAXPROCS at scrape time
//	runtime.num_cpu                 logical CPUs visible to the process
//	process.uptime_seconds          seconds since process start
//
// The last three make performance artifacts (BENCH_serve.json, a scraped
// dashboard) interpretable across machines: a throughput number without the
// CPU budget behind it is unreadable, and uptime separates a freshly warmed
// process from one hours into its cache lifetime.
//
// Values are read lazily at snapshot/scrape time; ReadMemStats is throttled
// to at most once per second so a tight scrape loop cannot turn telemetry
// into GC pressure. Nil-safe.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	ms := &memStatsReader{refresh: time.Second}
	r.GaugeFunc("runtime.goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("runtime.gomaxprocs", func() float64 {
		return float64(runtime.GOMAXPROCS(0))
	})
	r.GaugeFunc("runtime.num_cpu", func() float64 {
		return float64(runtime.NumCPU())
	})
	r.GaugeFunc("process.uptime_seconds", func() float64 {
		return time.Since(processStart).Seconds()
	})
	r.GaugeFunc("runtime.heap.alloc.bytes", func() float64 {
		return float64(ms.read().HeapAlloc)
	})
	r.GaugeFunc("runtime.heap.objects", func() float64 {
		return float64(ms.read().HeapObjects)
	})
	r.GaugeFunc("runtime.gc.count", func() float64 {
		return float64(ms.read().NumGC)
	})
	r.GaugeFunc("runtime.gc.pause.total.seconds", func() float64 {
		return float64(ms.read().PauseTotalNs) / 1e9
	})
	r.GaugeFunc("runtime.sys.bytes", func() float64 {
		return float64(ms.read().Sys)
	})
}
