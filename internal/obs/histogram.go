package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram with lock-free observation: one
// atomic add per bucket hit plus CAS updates of sum/min/max. Values above
// the top bucket land in an implicit +Inf overflow bucket; quantile
// estimates for that bucket report the observed maximum instead of
// extrapolating. All methods are nil-safe no-ops.
type Histogram struct {
	bounds  []float64       // ascending upper bounds; len k
	buckets []atomic.Uint64 // len k+1; last is the +Inf overflow bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
	minBits atomic.Uint64 // float64 bits; +Inf until first observation
	maxBits atomic.Uint64 // float64 bits; -Inf until first observation
}

// NewHistogram builds a histogram over the given bucket upper bounds (nil
// selects DefBuckets). Bounds are copied and sorted.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	h := &Histogram{
		bounds:  sortedCopy(bounds),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v; len(bounds) = overflow
	h.buckets[i].Add(1)
	h.count.Add(1)
	casAdd(&h.sumBits, v)
	casMin(&h.minBits, v)
	casMax(&h.maxBits, v)
}

// Since observes the elapsed seconds from t0 — the idiom for stage timing:
//
//	t0 := time.Now(); ...work...; hist.Since(t0)
func (h *Histogram) Since(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
}

func casAdd(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func casMin(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func casMax(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Bucket pairs an upper bound with the count of observations ≤ it that did
// not fit a lower bucket. The implicit +Inf bucket is reported separately
// as HistogramSnapshot.Overflow (encoding/json rejects +Inf bounds).
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramSnapshot is a point-in-time view: totals, observed extrema,
// per-bucket counts and interpolated quantile estimates.
type HistogramSnapshot struct {
	Count    uint64   `json:"count"`
	Sum      float64  `json:"sum"`
	Min      float64  `json:"min"`
	Max      float64  `json:"max"`
	Overflow uint64   `json:"overflow,omitempty"` // observations above the top bound
	Buckets  []Bucket `json:"buckets,omitempty"`
	P50      float64  `json:"p50"`
	P90      float64  `json:"p90"`
	P99      float64  `json:"p99"`
}

// Snapshot captures the histogram. Safe concurrently with Observe; an
// in-flight observation may appear in a bucket slightly before the totals.
// The reported quantiles are computed from the snapshot's own bucket counts
// and clamped to the snapshot's own Min/Max — never to fresher extrema a
// concurrent Observe may have pushed — so P50/P90/P99 always lie inside the
// reported [Min, Max].
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	count := h.count.Load()
	if count == 0 {
		return HistogramSnapshot{}
	}
	min := math.Float64frombits(h.minBits.Load())
	max := math.Float64frombits(h.maxBits.Load())
	if min > max {
		// Racing the very first Observe: count is visible but the extrema
		// still hold their ±Inf initial values. Report empty, not ±Inf.
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:    count,
		Sum:      math.Float64frombits(h.sumBits.Load()),
		Min:      min,
		Max:      max,
		Overflow: h.buckets[len(h.bounds)].Load(),
		Buckets:  make([]Bucket, 0, len(h.bounds)),
	}
	counts := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	for i, ub := range h.bounds {
		if counts[i] > 0 {
			s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Count: counts[i]})
		}
	}
	s.P50 = quantileFromCounts(h.bounds, counts, count, min, max, 0.50)
	s.P90 = quantileFromCounts(h.bounds, counts, count, min, max, 0.90)
	s.P99 = quantileFromCounts(h.bounds, counts, count, min, max, 0.99)
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket holding the target rank, clamped to the observed
// [min, max]. With zero observations it returns 0 explicitly — a percentile
// over an empty histogram is meaningless, and interpolating into zero
// observations must never leak the ±Inf min/max sentinels (or divide a rank
// into nothing). Ranks landing in the overflow bucket return the observed
// maximum.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	min := math.Float64frombits(h.minBits.Load())
	max := math.Float64frombits(h.maxBits.Load())
	if min > max {
		// count and min/max are separate atomics: a snapshot racing the very
		// first Observe can see count > 0 with the extrema still at their
		// ±Inf initial values. Treat it as the empty histogram it almost is.
		return 0
	}
	counts := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return quantileFromCounts(h.bounds, counts, total, min, max, q)
}

// quantileFromCounts interpolates the q-quantile over an already-loaded
// bucket view — the shared core of Quantile and Snapshot, which must clamp
// against the same Min/Max it reports rather than re-reading the live
// (possibly fresher) extrema.
func quantileFromCounts(bounds []float64, counts []uint64, total uint64, min, max float64, q float64) float64 {
	rank := q * float64(total)
	var cum float64
	lower := 0.0
	for i, ub := range bounds {
		c := float64(counts[i])
		if c > 0 && cum+c >= rank {
			frac := (rank - cum) / c
			return clamp(lower+frac*(ub-lower), min, max)
		}
		cum += c
		lower = ub
	}
	return max // overflow bucket: report the observed extreme, don't extrapolate
}

func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}

// dump returns the bucket upper bounds, the raw per-bucket counts (the +Inf
// overflow bucket last, so len(counts) == len(bounds)+1) and the running
// sum — the cumulative-bucket source for the Prometheus exposition, which
// needs every bucket (zero ones included), unlike the sparse JSON snapshot.
func (h *Histogram) dump() (bounds []float64, counts []uint64, sum float64) {
	if h == nil {
		return nil, nil, 0
	}
	counts = make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return h.bounds, counts, math.Float64frombits(h.sumBits.Load())
}
