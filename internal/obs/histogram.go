package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram with lock-free observation: one
// atomic add per bucket hit plus CAS updates of sum/min/max. Values above
// the top bucket land in an implicit +Inf overflow bucket; quantile
// estimates for that bucket report the observed maximum instead of
// extrapolating. All methods are nil-safe no-ops.
type Histogram struct {
	bounds  []float64       // ascending upper bounds; len k
	buckets []atomic.Uint64 // len k+1; last is the +Inf overflow bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
	minBits atomic.Uint64 // float64 bits; +Inf until first observation
	maxBits atomic.Uint64 // float64 bits; -Inf until first observation
}

// NewHistogram builds a histogram over the given bucket upper bounds (nil
// selects DefBuckets). Bounds are copied and sorted.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	h := &Histogram{
		bounds:  sortedCopy(bounds),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v; len(bounds) = overflow
	h.buckets[i].Add(1)
	h.count.Add(1)
	casAdd(&h.sumBits, v)
	casMin(&h.minBits, v)
	casMax(&h.maxBits, v)
}

// Since observes the elapsed seconds from t0 — the idiom for stage timing:
//
//	t0 := time.Now(); ...work...; hist.Since(t0)
func (h *Histogram) Since(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
}

func casAdd(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func casMin(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func casMax(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Bucket pairs an upper bound with the count of observations ≤ it that did
// not fit a lower bucket. The implicit +Inf bucket is reported separately
// as HistogramSnapshot.Overflow (encoding/json rejects +Inf bounds).
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramSnapshot is a point-in-time view: totals, observed extrema,
// per-bucket counts and interpolated quantile estimates.
type HistogramSnapshot struct {
	Count    uint64   `json:"count"`
	Sum      float64  `json:"sum"`
	Min      float64  `json:"min"`
	Max      float64  `json:"max"`
	Overflow uint64   `json:"overflow,omitempty"` // observations above the top bound
	Buckets  []Bucket `json:"buckets,omitempty"`
	P50      float64  `json:"p50"`
	P90      float64  `json:"p90"`
	P99      float64  `json:"p99"`
}

// Snapshot captures the histogram. Safe concurrently with Observe; an
// in-flight observation may appear in a bucket slightly before the totals.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:    h.count.Load(),
		Sum:      math.Float64frombits(h.sumBits.Load()),
		Overflow: h.buckets[len(h.bounds)].Load(),
		Buckets:  make([]Bucket, 0, len(h.bounds)),
	}
	if s.Count == 0 {
		return HistogramSnapshot{}
	}
	s.Min = math.Float64frombits(h.minBits.Load())
	s.Max = math.Float64frombits(h.maxBits.Load())
	for i, ub := range h.bounds {
		if c := h.buckets[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Count: c})
		}
	}
	s.P50 = h.Quantile(0.50)
	s.P90 = h.Quantile(0.90)
	s.P99 = h.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket holding the target rank, clamped to the observed
// [min, max]. With zero observations it returns 0; ranks landing in the
// overflow bucket return the observed maximum.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	min := math.Float64frombits(h.minBits.Load())
	max := math.Float64frombits(h.maxBits.Load())
	rank := q * float64(total)
	var cum float64
	lower := 0.0
	for i, ub := range h.bounds {
		c := float64(h.buckets[i].Load())
		if c > 0 && cum+c >= rank {
			frac := (rank - cum) / c
			return clamp(lower+frac*(ub-lower), min, max)
		}
		cum += c
		lower = ub
	}
	return max // overflow bucket: report the observed extreme, don't extrapolate
}

func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}
