package obs

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramZeroObservations: an untouched histogram must report a fully
// zero snapshot (no ±Inf min/max leaking out) and quantile 0.
func TestHistogramZeroObservations(t *testing.T) {
	h := NewHistogram(nil)
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 || s.Overflow != 0 {
		t.Fatalf("zero-observation snapshot not zero: %+v", s)
	}
	if len(s.Buckets) != 0 {
		t.Fatalf("zero-observation snapshot has buckets: %+v", s.Buckets)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%v) = %v on empty histogram", q, got)
		}
	}
}

// TestHistogramOverflow: values above the top bucket land in the overflow
// bucket, and quantiles falling there report the observed max rather than
// extrapolating past the bucket boundaries.
func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(1000)
	h.Observe(2000)
	h.Observe(3000)
	s := h.Snapshot()
	if s.Count != 4 || s.Overflow != 3 {
		t.Fatalf("count=%d overflow=%d, want 4/3", s.Count, s.Overflow)
	}
	if s.Max != 3000 || s.Min != 0.5 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// p50 onward land in the overflow bucket → observed max.
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got := h.Quantile(q); got != 3000 {
			t.Fatalf("Quantile(%v) = %v, want observed max 3000", q, got)
		}
	}
	if got := h.Quantile(0.1); got != 0.5 {
		t.Fatalf("Quantile(0.1) = %v, want clamped to min 0.5", got)
	}
}

// TestHistogramQuantileInterpolation checks in-bucket linear interpolation
// against a uniform fill of one bucket.
func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	for i := 0; i < 100; i++ {
		h.Observe(10 + float64(i)/10) // uniform over [10, 20)
	}
	got := h.Quantile(0.5)
	if math.Abs(got-15) > 1 {
		t.Fatalf("p50 = %v, want ≈15", got)
	}
	got = h.Quantile(0.9)
	if math.Abs(got-19) > 1 {
		t.Fatalf("p90 = %v, want ≈19", got)
	}
}

// TestHistogramConcurrentObserveSnapshot hammers Observe from many
// goroutines while snapshots run — the race detector (make race) is the
// real assertion; the final totals check catches lost updates.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	h := NewHistogram(nil)
	const workers, perWorker = 8, 500
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent snapshot reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				if s.Count > 0 && (s.P50 < s.Min || s.P50 > s.Max) {
					t.Errorf("mid-flight p50 %v outside [%v, %v]", s.P50, s.Min, s.Max)
					return
				}
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w*perWorker+i) * 1e-6)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	<-readerDone

	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	var bucketed uint64
	for _, b := range s.Buckets {
		bucketed += b.Count
	}
	if bucketed+s.Overflow != s.Count {
		t.Fatalf("bucket sum %d + overflow %d != count %d", bucketed, s.Overflow, s.Count)
	}
}

// TestHistogramQuantileTornFirstObserve is the regression test for the
// empty-histogram race: count and the extrema are separate atomics, so a
// reader racing the very first Observe can see count > 0 while min/max
// still hold their ±Inf sentinels. Quantile must return 0 explicitly and
// Snapshot must report empty — neither may leak ±Inf or interpolate into
// zero bucket mass. The torn state is constructed directly (same package).
func TestHistogramQuantileTornFirstObserve(t *testing.T) {
	h := NewHistogram(nil)
	h.count.Add(1) // count visible, extrema and buckets not yet
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got != 0 {
			t.Fatalf("torn Quantile(%v) = %v, want explicit 0", q, got)
		}
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("torn Quantile(%v) leaked sentinel %v", q, got)
		}
	}
	s := h.Snapshot()
	if s.Min != 0 || s.Max != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Fatalf("torn snapshot leaked sentinels: %+v", s)
	}
}

// TestHistogramSnapshotQuantilesInsideExtrema: the quantiles a snapshot
// reports must lie inside the [Min, Max] the same snapshot reports, even
// while observations land concurrently (the snapshot computes quantiles
// from its own loaded view, never from fresher live extrema).
func TestHistogramSnapshotQuantilesInsideExtrema(t *testing.T) {
	h := NewHistogram(nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := 1e-6
		for {
			select {
			case <-stop:
				return
			default:
				h.Observe(v)
				v *= 1.1
				if v > 100 {
					v = 1e-6
				}
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		for _, p := range []float64{s.P50, s.P90, s.P99} {
			if p < s.Min || p > s.Max {
				close(stop)
				wg.Wait()
				t.Fatalf("snapshot quantile %v outside its own [%v, %v]", p, s.Min, s.Max)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestHistogramSingleObservation: with exactly one sample, every quantile
// and both extrema must report that sample — the interpolation must not
// invent values between the bucket's lower bound and the observation.
func TestHistogramSingleObservation(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	h.Observe(7)
	s := h.Snapshot()
	if s.Count != 1 || s.Min != 7 || s.Max != 7 || s.Sum != 7 {
		t.Fatalf("snapshot = %+v, want count/min/max/sum all from the single sample", s)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Fatalf("Quantile(%v) = %v, want 7 (the only observation)", q, got)
		}
	}
	if s.P50 != 7 || s.P90 != 7 || s.P99 != 7 {
		t.Fatalf("snapshot quantiles = %v/%v/%v, want 7", s.P50, s.P90, s.P99)
	}
}

// TestHistogramAllMassOneBucket: when every observation lands in a single
// interior bucket, quantiles must stay inside the observed [min, max] of
// that bucket, never drift to the bucket's nominal bounds.
func TestHistogramAllMassOneBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for i := 0; i < 1000; i++ {
		h.Observe(5) // all mass in the (1, 10] bucket, at one point
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 0.999} {
		if got := h.Quantile(q); got != 5 {
			t.Fatalf("Quantile(%v) = %v, want clamped to 5", q, got)
		}
	}
	s := h.Snapshot()
	if s.P50 != 5 || s.P99 != 5 {
		t.Fatalf("snapshot quantiles = %v/%v, want 5", s.P50, s.P99)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].UpperBound != 10 || s.Buckets[0].Count != 1000 {
		t.Fatalf("bucket layout = %+v, want all 1000 in le=10", s.Buckets)
	}
}
