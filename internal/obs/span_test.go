package obs

import (
	"context"
	"testing"
)

func TestSpanParentChildPaths(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)

	ctx, root := StartSpan(ctx, "predict")
	cctx, child := StartSpan(ctx, "encode")
	if child.Parent() != root {
		t.Fatal("child span not linked to parent")
	}
	if child.Path() != "predict.encode" || root.Path() != "predict" {
		t.Fatalf("paths = %q / %q", root.Path(), child.Path())
	}
	_, grand := StartSpan(cctx, "tokens")
	if grand.Path() != "predict.encode.tokens" {
		t.Fatalf("grandchild path = %q", grand.Path())
	}
	if SpanFrom(cctx) != child {
		t.Fatal("SpanFrom does not return the context's span")
	}

	grand.End()
	child.End()
	if d := root.End(); d <= 0 {
		t.Fatalf("root duration = %v", d)
	}

	s := r.Snapshot()
	for _, name := range []string{"span.predict", "span.predict.encode", "span.predict.encode.tokens"} {
		if s.Histograms[name].Count != 1 {
			t.Fatalf("histogram %q count = %d, want 1 (have %v)", name, s.Histograms[name].Count, s.Histograms)
		}
	}
}

// TestSpanWithoutRegistry: spans must be usable (and silent) with no
// registry on the context — the no-sink-attached path.
func TestSpanWithoutRegistry(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "orphan")
	if sp == nil || SpanFrom(ctx) != sp {
		t.Fatal("span not created without registry")
	}
	if sp.End() < 0 {
		t.Fatal("End on registry-less span")
	}
	if RegistryFrom(ctx) != nil {
		t.Fatal("phantom registry")
	}
}

func TestWithRegistryNil(t *testing.T) {
	ctx := WithRegistry(context.Background(), nil)
	if RegistryFrom(ctx) != nil {
		t.Fatal("nil registry should not be attached")
	}
}
