package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a deterministic registry exercising every metric
// kind, labels, and names needing sanitization.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("http./v1/predict.requests").Add(7)
	r.Counter(Labels("infer.predicted", "type", "player.age")).Add(3)
	r.Counter(Labels("infer.predicted", "type", "team.name")).Add(5)
	r.Gauge("pool.utilization").Set(0.75)
	r.GaugeFunc("runtime.fake", func() float64 { return 42 })
	h := r.Histogram("infer.confidence", []float64{0.25, 0.5, 0.75, 1})
	for _, v := range []float64{0.1, 0.6, 0.6, 0.9, 1.5} {
		h.Observe(v)
	}
	// The per-model shadow-rollout series the server's lifecycle manager
	// emits: labeled counters, a labeled histogram, a derived gauge, and the
	// swap event counter — pinned here so the exposition shape scrapers
	// depend on cannot drift.
	r.Counter(Labels("shadow.tables.scored", "model", "v2")).Add(9)
	r.Counter(Labels("shadow.columns.compared", "model", "v2")).Add(18)
	r.Counter(Labels("shadow.columns.agree", "model", "v2")).Add(17)
	r.GaugeFunc(Labels("shadow.agreement.rate", "model", "v2"), func() float64 { return 17.0 / 18.0 })
	sh := r.Histogram(Labels("shadow.latency.seconds", "model", "v2"), []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.004, 0.02, 0.03} {
		sh.Observe(v)
	}
	r.Counter(Labels("models.swap", "event", "promote")).Inc()
	r.Counter(Labels("models.swap", "event", "rollback")).Inc()
	// Watchdog and runtime-signal families added with the anomaly watchdog:
	// the alert-state gauge pair and the GC pause histogram (fixed
	// observations — the golden pins exposition shape, not live values).
	r.GaugeFunc(Labels("watch.alerts", "rule", "slo-fast-burn", "state", "firing"), func() float64 { return 1 })
	r.GaugeFunc(Labels("watch.alerts", "rule", "slo-fast-burn", "state", "pending"), func() float64 { return 0 })
	gc := r.Histogram("runtime.gc.pause.seconds", GCPauseBuckets)
	for _, v := range []float64{0.00002, 0.00015, 0.0011} {
		gc.Observe(v)
	}
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition diverged from golden file.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWritePrometheusByteStable(t *testing.T) {
	r := goldenRegistry()
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two expositions of a quiescent registry differ")
	}
	// The JSON snapshot is likewise byte-stable (satellite: sorted Snapshot).
	j1, _ := json.Marshal(r.Snapshot())
	j2, _ := json.Marshal(r.Snapshot())
	if !bytes.Equal(j1, j2) {
		t.Fatal("two JSON snapshots of a quiescent registry differ")
	}
}

// TestWritePrometheusShape parses the exposition line by line and checks
// the structural invariants a scraper relies on: sorted unique families,
// cumulative non-decreasing le buckets ending at +Inf, and _count equal to
// the +Inf bucket.
func TestWritePrometheusShape(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var families []string
	type histState struct {
		lastCum  uint64
		infCum   uint64
		count    uint64
		sawInf   bool
		sawCount bool
	}
	hists := map[string]*histState{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			families = append(families, parts[2])
			if parts[3] == "histogram" {
				hists[parts[2]] = &histState{}
			}
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		for r := range name {
			c := name[r]
			ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9' && r > 0)
			if !ok {
				t.Fatalf("illegal metric name %q in line %q", name, line)
			}
		}
		valStr := line[strings.LastIndexByte(line, ' ')+1:]
		for fam, st := range hists {
			switch {
			case strings.HasPrefix(line, fam+"_bucket"):
				cum, err := strconv.ParseUint(valStr, 10, 64)
				if err != nil {
					t.Fatalf("bucket value %q: %v", valStr, err)
				}
				if cum < st.lastCum {
					t.Fatalf("non-cumulative buckets in %q: %d after %d", fam, cum, st.lastCum)
				}
				st.lastCum = cum
				if strings.Contains(line, `le="+Inf"`) {
					st.sawInf, st.infCum = true, cum
				}
			case strings.HasPrefix(line, fam+"_count"):
				c, _ := strconv.ParseUint(valStr, 10, 64)
				st.sawCount, st.count = true, c
			}
		}
	}
	if !sort.StringsAreSorted(families) {
		t.Fatalf("families not sorted: %v", families)
	}
	for i := 1; i < len(families); i++ {
		if families[i] == families[i-1] {
			t.Fatalf("duplicate family %q", families[i])
		}
	}
	if len(hists) == 0 {
		t.Fatal("no histogram family rendered")
	}
	for fam, st := range hists {
		if !st.sawInf {
			t.Fatalf("%q has no +Inf bucket", fam)
		}
		if !st.sawCount || st.count != st.infCum {
			t.Fatalf("%q _count=%d != +Inf bucket %d", fam, st.count, st.infCum)
		}
	}
}

func TestLabelsCanonical(t *testing.T) {
	a := Labels("infer.predicted", "type", "age", "source", "nfl")
	b := Labels("infer.predicted", "source", "nfl", "type", "age")
	if a != b {
		t.Fatalf("label order leaked into key: %q vs %q", a, b)
	}
	if a != `infer.predicted{source="nfl",type="age"}` {
		t.Fatalf("canonical key = %q", a)
	}
	if got := Labels("plain"); got != "plain" {
		t.Fatalf("no-pair Labels = %q", got)
	}
	if got := Labels("x", "odd"); got != "x" {
		t.Fatalf("odd-pair Labels = %q", got)
	}
	esc := Labels("m", "k", `a"b\c`)
	base, body := splitLabels(esc)
	if base != "m" || !strings.Contains(body, `\"`) {
		t.Fatalf("escaping broken: %q → base %q body %q", esc, base, body)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"http./v1/predict.requests": "http__v1_predict_requests",
		"span.predict-batch.infer":  "span_predict_batch_infer",
		"runtime.goroutines":        "runtime_goroutines",
		"9lives":                    "_9lives",
		"":                          "_",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Fatalf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", buf.String(), err)
	}
}

// TestSnapshotJSONBackwardCompat pins the JSON wire shape of /v1/metrics:
// the same top-level keys and histogram fields previous clients consumed.
func TestSnapshotJSONBackwardCompat(t *testing.T) {
	r := goldenRegistry()
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"counters", "gauges", "histograms"} {
		if _, ok := top[key]; !ok {
			t.Fatalf("snapshot JSON lost top-level key %q: %s", key, raw)
		}
	}
	var hists map[string]map[string]json.RawMessage
	if err := json.Unmarshal(top["histograms"], &hists); err != nil {
		t.Fatal(err)
	}
	h, ok := hists["infer.confidence"]
	if !ok {
		t.Fatalf("histogram missing from snapshot: %s", top["histograms"])
	}
	for _, key := range []string{"count", "sum", "min", "max", "p50", "p90", "p99"} {
		if _, ok := h[key]; !ok {
			t.Fatalf("histogram snapshot lost field %q: %v", key, h)
		}
	}
	var snapCount uint64
	if err := json.Unmarshal(h["count"], &snapCount); err != nil || snapCount != 5 {
		t.Fatalf("count = %s, want 5", h["count"])
	}
}

// TestLabelsRaceWritePrometheus drives concurrent creation of labeled
// series (the registry-mutating path behind obs.Labels call sites) against
// WritePrometheus and Snapshot readers — the scrape-during-traffic shape
// that must stay clean under -race. Every render must also remain
// structurally sane while series appear underneath it.
func TestLabelsRaceWritePrometheus(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			types := []string{"player.age", "team.name", "match.date", "price"}
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := Labels("infer.predicted", "type", types[(i+w)%len(types)], "worker", strconv.Itoa(w))
				r.Counter(key).Inc()
				r.Gauge(Labels("pool.busy", "worker", strconv.Itoa(w))).Set(float64(i))
				r.Histogram(Labels("lat", "worker", strconv.Itoa(w)), []float64{0.1, 1}).Observe(float64(i % 3))
				i++
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Errorf("WritePrometheus: %v", err)
			break
		}
		_ = r.Snapshot()
	}
	close(stop)
	wg.Wait()
	// A final quiescent render must be byte-stable.
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("quiescent render not byte-stable after concurrent label creation")
	}
}
