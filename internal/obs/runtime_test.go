package obs

import (
	"runtime"
	"testing"
	"time"
)

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	snap := r.Snapshot()
	for _, name := range []string{
		"runtime.goroutines",
		"runtime.heap.alloc.bytes",
		"runtime.heap.objects",
		"runtime.gc.count",
		"runtime.gc.pause.total.seconds",
		"runtime.sys.bytes",
		"runtime.gomaxprocs",
		"runtime.num_cpu",
		"process.uptime_seconds",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Fatalf("gauge %q not registered", name)
		}
	}
	if snap.Gauges["runtime.goroutines"] < 1 {
		t.Fatalf("goroutines = %v, want ≥ 1", snap.Gauges["runtime.goroutines"])
	}
	if snap.Gauges["runtime.heap.alloc.bytes"] <= 0 {
		t.Fatalf("heap alloc = %v, want > 0", snap.Gauges["runtime.heap.alloc.bytes"])
	}
	if snap.Gauges["runtime.gomaxprocs"] < 1 || snap.Gauges["runtime.num_cpu"] < 1 {
		t.Fatalf("cpu gauges = %v / %v, want ≥ 1",
			snap.Gauges["runtime.gomaxprocs"], snap.Gauges["runtime.num_cpu"])
	}
	if up := snap.Gauges["process.uptime_seconds"]; up <= 0 {
		t.Fatalf("uptime = %v, want > 0", up)
	}
	if _, ok := snap.Histograms["runtime.gc.pause.seconds"]; !ok {
		t.Fatal("histogram runtime.gc.pause.seconds not registered")
	}
	RegisterRuntimeMetrics(nil) // nil-safe
}

// TestGCPauseHistogramDrains forces GC cycles between refreshes and checks
// each one lands exactly once in the pause histogram: the first refresh only
// primes the cursor, later refreshes observe the NumGC delta.
func TestGCPauseHistogramDrains(t *testing.T) {
	h := NewHistogram(GCPauseBuckets)
	ms := &memStatsReader{pauses: h} // refresh 0: every read refreshes
	ms.read()                        // prime — pre-existing pauses are not ours
	if h.Count() != 0 {
		t.Fatalf("priming read observed %d pauses, want 0", h.Count())
	}
	const cycles = 3
	for i := 0; i < cycles; i++ {
		runtime.GC()
	}
	ms.read()
	got := h.Count()
	if got < cycles {
		t.Fatalf("pause histogram count = %d, want ≥ %d", got, cycles)
	}
	ms.read() // no forced cycles: nothing new should drain
	if after := h.Count(); after < got {
		t.Fatalf("pause histogram count shrank: %d then %d", got, after)
	}
}

// TestUptimeAdvances: two snapshots straddle a sleep; the uptime gauge must
// move with the wall clock, not report a frozen registration-time value.
func TestUptimeAdvances(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	before := r.Snapshot().Gauges["process.uptime_seconds"]
	time.Sleep(10 * time.Millisecond)
	after := r.Snapshot().Gauges["process.uptime_seconds"]
	if after <= before {
		t.Fatalf("uptime did not advance: %v then %v", before, after)
	}
}

// TestMemStatsReaderThrottles pins the stop-the-world budget: repeated
// reads inside the refresh window return the cached stats.
func TestMemStatsReaderThrottles(t *testing.T) {
	ms := &memStatsReader{refresh: 1e18} // effectively never refresh again
	first := ms.read()
	garbage := make([]byte, 1<<20)
	_ = garbage
	second := ms.read()
	if first.HeapAlloc != second.HeapAlloc {
		t.Fatalf("throttled reader refreshed: %d then %d", first.HeapAlloc, second.HeapAlloc)
	}
}
