package obs

import "testing"

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	snap := r.Snapshot()
	for _, name := range []string{
		"runtime.goroutines",
		"runtime.heap.alloc.bytes",
		"runtime.heap.objects",
		"runtime.gc.count",
		"runtime.gc.pause.total.seconds",
		"runtime.sys.bytes",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Fatalf("gauge %q not registered", name)
		}
	}
	if snap.Gauges["runtime.goroutines"] < 1 {
		t.Fatalf("goroutines = %v, want ≥ 1", snap.Gauges["runtime.goroutines"])
	}
	if snap.Gauges["runtime.heap.alloc.bytes"] <= 0 {
		t.Fatalf("heap alloc = %v, want > 0", snap.Gauges["runtime.heap.alloc.bytes"])
	}
	RegisterRuntimeMetrics(nil) // nil-safe
}

// TestMemStatsReaderThrottles pins the stop-the-world budget: repeated
// reads inside the refresh window return the cached stats.
func TestMemStatsReaderThrottles(t *testing.T) {
	ms := &memStatsReader{refresh: 1e18} // effectively never refresh again
	first := ms.read()
	garbage := make([]byte, 1<<20)
	_ = garbage
	second := ms.read()
	if first.HeapAlloc != second.HeapAlloc {
		t.Fatalf("throttled reader refreshed: %d then %d", first.HeapAlloc, second.HeapAlloc)
	}
}
