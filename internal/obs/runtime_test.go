package obs

import (
	"testing"
	"time"
)

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	snap := r.Snapshot()
	for _, name := range []string{
		"runtime.goroutines",
		"runtime.heap.alloc.bytes",
		"runtime.heap.objects",
		"runtime.gc.count",
		"runtime.gc.pause.total.seconds",
		"runtime.sys.bytes",
		"runtime.gomaxprocs",
		"runtime.num_cpu",
		"process.uptime_seconds",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Fatalf("gauge %q not registered", name)
		}
	}
	if snap.Gauges["runtime.goroutines"] < 1 {
		t.Fatalf("goroutines = %v, want ≥ 1", snap.Gauges["runtime.goroutines"])
	}
	if snap.Gauges["runtime.heap.alloc.bytes"] <= 0 {
		t.Fatalf("heap alloc = %v, want > 0", snap.Gauges["runtime.heap.alloc.bytes"])
	}
	if snap.Gauges["runtime.gomaxprocs"] < 1 || snap.Gauges["runtime.num_cpu"] < 1 {
		t.Fatalf("cpu gauges = %v / %v, want ≥ 1",
			snap.Gauges["runtime.gomaxprocs"], snap.Gauges["runtime.num_cpu"])
	}
	if up := snap.Gauges["process.uptime_seconds"]; up <= 0 {
		t.Fatalf("uptime = %v, want > 0", up)
	}
	RegisterRuntimeMetrics(nil) // nil-safe
}

// TestUptimeAdvances: two snapshots straddle a sleep; the uptime gauge must
// move with the wall clock, not report a frozen registration-time value.
func TestUptimeAdvances(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	before := r.Snapshot().Gauges["process.uptime_seconds"]
	time.Sleep(10 * time.Millisecond)
	after := r.Snapshot().Gauges["process.uptime_seconds"]
	if after <= before {
		t.Fatalf("uptime did not advance: %v then %v", before, after)
	}
}

// TestMemStatsReaderThrottles pins the stop-the-world budget: repeated
// reads inside the refresh window return the cached stats.
func TestMemStatsReaderThrottles(t *testing.T) {
	ms := &memStatsReader{refresh: 1e18} // effectively never refresh again
	first := ms.read()
	garbage := make([]byte, 1<<20)
	_ = garbage
	second := ms.read()
	if first.HeapAlloc != second.HeapAlloc {
		t.Fatalf("throttled reader refreshed: %d then %d", first.HeapAlloc, second.HeapAlloc)
	}
}
