// Model-quality telemetry: drift detection between the distribution a model
// was trained against and the distribution it is serving (DESIGN.md §11).
//
// At train time the trainer runs the fresh model over its own training
// split and persists the resulting predicted-type distribution and
// confidence histogram as a baseline sidecar next to the checkpoint. At
// serve time a DriftMonitor accumulates the same two distributions from
// live predictions and continuously scores their distance to the baseline
// with a chi-square-style statistic. The scores are exported as gauges —
// when the serving mix departs from the training mix (new table shapes,
// upstream schema changes, a stale model), drift.type.score and
// drift.confidence.score climb and an operator's dashboard says so before
// accuracy numbers (which need labels nobody has in production) ever could.
package obs

import (
	"sync"
	"sync/atomic"
)

// ConfidenceBuckets is the shared bucketing for prediction confidences:
// twenty 0.05-wide buckets spanning (0, 1]. The baseline and the monitor
// must agree on bounds for the histogram distance to be meaningful, so both
// sides use this slice.
var ConfidenceBuckets = LinearBuckets(0.05, 0.05, 20)

// DriftBaseline is the training-time reference distribution: how often each
// semantic type was predicted over the training split, and how confident
// those predictions were. Serialized as a JSON sidecar next to the model
// checkpoint (core.SaveDriftBaseline).
type DriftBaseline struct {
	// TypeCounts maps predicted type name → prediction count.
	TypeCounts map[string]uint64 `json:"type_counts"`
	// ConfBounds are the confidence histogram's bucket upper bounds
	// (ConfidenceBuckets at write time; carried so a reader can reject a
	// sidecar bucketed differently).
	ConfBounds []float64 `json:"conf_bounds"`
	// ConfCounts are per-bucket confidence counts; len(ConfBounds)+1 with
	// the overflow bucket last.
	ConfCounts []uint64 `json:"conf_counts"`
}

// Total returns the baseline's total prediction count.
func (b *DriftBaseline) Total() uint64 {
	var n uint64
	for _, c := range b.TypeCounts {
		n += c
	}
	return n
}

// chiSquareDistance is a symmetric chi-square-style distance between two
// count vectors aligned by index: 0.5·Σ (pᵢ−qᵢ)²/(pᵢ+qᵢ) over the
// normalized distributions. 0 for identical distributions, 1 for disjoint
// support; robust to zero bins (a bin empty on both sides contributes 0).
func chiSquareDistance(p, q []float64) float64 {
	var pt, qt float64
	for _, v := range p {
		pt += v
	}
	for _, v := range q {
		qt += v
	}
	if pt == 0 || qt == 0 {
		return 0
	}
	var d float64
	for i := range p {
		pi, qi := p[i]/pt, q[i]/qt
		if s := pi + qi; s > 0 {
			d += (pi - qi) * (pi - qi) / s
		}
	}
	return 0.5 * d
}

// DriftMonitor accumulates the served prediction distribution and scores it
// against a training-time baseline. Observe is called from the inference
// hot path, so the per-type map is guarded by a mutex sized for short
// critical sections and the confidence histogram is the lock-free bucket
// array. All methods are nil-safe.
type DriftMonitor struct {
	baseline DriftBaseline

	mu         sync.Mutex
	typeCounts map[string]uint64

	confCounts []atomic.Uint64 // len(ConfBounds)+1, overflow last
	n          atomic.Uint64
}

// NewDriftMonitor builds a monitor against the given baseline. Returns nil
// (inert) when the baseline is empty — no reference, nothing to compare.
func NewDriftMonitor(baseline DriftBaseline) *DriftMonitor {
	if baseline.Total() == 0 {
		return nil
	}
	if len(baseline.ConfBounds) == 0 {
		baseline.ConfBounds = ConfidenceBuckets
	}
	if len(baseline.ConfCounts) != len(baseline.ConfBounds)+1 {
		cc := make([]uint64, len(baseline.ConfBounds)+1)
		copy(cc, baseline.ConfCounts)
		baseline.ConfCounts = cc
	}
	return &DriftMonitor{
		baseline:   baseline,
		typeCounts: map[string]uint64{},
		confCounts: make([]atomic.Uint64, len(baseline.ConfBounds)+1),
	}
}

// Observe records one served prediction.
func (m *DriftMonitor) Observe(predictedType string, confidence float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.typeCounts[predictedType]++
	m.mu.Unlock()
	i := 0
	for i < len(m.baseline.ConfBounds) && confidence > m.baseline.ConfBounds[i] {
		i++
	}
	m.confCounts[i].Add(1)
	m.n.Add(1)
}

// Observations returns how many served predictions have been recorded.
func (m *DriftMonitor) Observations() uint64 {
	if m == nil {
		return 0
	}
	return m.n.Load()
}

// TypeScore is the chi-square distance between the served and baseline
// predicted-type distributions, in [0, 1]. 0 until anything is observed.
func (m *DriftMonitor) TypeScore() float64 {
	if m == nil || m.n.Load() == 0 {
		return 0
	}
	// Align both count maps over the union of type names.
	m.mu.Lock()
	served := make(map[string]uint64, len(m.typeCounts))
	for k, v := range m.typeCounts {
		served[k] = v
	}
	m.mu.Unlock()
	names := map[string]struct{}{}
	for k := range served {
		names[k] = struct{}{}
	}
	for k := range m.baseline.TypeCounts {
		names[k] = struct{}{}
	}
	p := make([]float64, 0, len(names))
	q := make([]float64, 0, len(names))
	for k := range names {
		p = append(p, float64(m.baseline.TypeCounts[k]))
		q = append(q, float64(served[k]))
	}
	return chiSquareDistance(p, q)
}

// ConfidenceScore is the chi-square distance between the served and
// baseline confidence histograms, in [0, 1]. 0 until anything is observed.
func (m *DriftMonitor) ConfidenceScore() float64 {
	if m == nil || m.n.Load() == 0 {
		return 0
	}
	p := make([]float64, len(m.baseline.ConfCounts))
	q := make([]float64, len(m.confCounts))
	for i, c := range m.baseline.ConfCounts {
		p[i] = float64(c)
	}
	for i := range m.confCounts {
		q[i] = float64(m.confCounts[i].Load())
	}
	return chiSquareDistance(p, q)
}

// Register exports the monitor's scores as gauges, evaluated at scrape
// time: drift.type.score, drift.confidence.score, drift.observations.
// Nil-safe on both sides.
func (m *DriftMonitor) Register(r *Registry) { m.RegisterLabeled(r) }

// RegisterLabeled exports the monitor's scores as labeled gauge series —
// drift.type.score{model="v2"} and friends — so several monitors (the
// serving model and a shadow candidate) coexist in one registry, each as
// its own series of the same family. With no label pairs it registers the
// bare names, which is what Register does. Re-registering a label set
// replaces the callbacks (GaugeFunc semantics), so reloading a model id
// repoints its series at the fresh monitor. Nil-safe on both sides.
func (m *DriftMonitor) RegisterLabeled(r *Registry, kv ...string) {
	if m == nil || r == nil {
		return
	}
	r.GaugeFunc(Labels("drift.type.score", kv...), m.TypeScore)
	r.GaugeFunc(Labels("drift.confidence.score", kv...), m.ConfidenceScore)
	r.GaugeFunc(Labels("drift.observations", kv...), func() float64 { return float64(m.Observations()) })
}
