package watch

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func saveRecord(t *testing.T, fd *FlightDir, rule string) string {
	t.Helper()
	id, err := fd.Save(&FlightRecord{Rule: rule, Time: time.Unix(1_700_000_000, 0)})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestFlightDirSaveLoadRoundTrip(t *testing.T) {
	fd, err := OpenFlightDir(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	rec := &FlightRecord{
		Rule:      "slo-fast-burn",
		Time:      time.Unix(1_700_000_123, 0).UTC(),
		Value:     15.5,
		Threshold: 14.4,
		CPU:       CPUDelta{WindowSeconds: 5, ProcessSeconds: 1.2, GCSeconds: 0.1},
	}
	rec.fillProfiles()
	id, err := fd.Save(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "flight-00000000-") {
		t.Fatalf("first record id = %q", id)
	}
	got, err := fd.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rule != rec.Rule || !got.Time.Equal(rec.Time) || got.Value != rec.Value {
		t.Fatalf("round trip lost header: %+v", got)
	}
	if got.CPU != rec.CPU {
		t.Fatalf("round trip lost CPU delta: %+v vs %+v", got.CPU, rec.CPU)
	}
	if got.Goroutines < 1 || got.GoroutineProfile == "" {
		t.Fatalf("round trip lost profiles: %+v", got.Goroutines)
	}
}

func TestFlightDirEvictsOldest(t *testing.T) {
	fd, err := OpenFlightDir(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, saveRecord(t, fd, "r"))
	}
	list := fd.List()
	if len(list) != 3 {
		t.Fatalf("ring holds %d records, want 3", len(list))
	}
	// Newest first, and exactly the last three survive.
	for i, want := range []string{ids[4], ids[3], ids[2]} {
		if list[i].ID != want {
			t.Fatalf("list[%d] = %q, want %q", i, list[i].ID, want)
		}
	}
	for _, evicted := range ids[:2] {
		if _, err := fd.Load(evicted); err == nil {
			t.Fatalf("evicted record %q still loadable", evicted)
		}
	}
}

func TestFlightDirSurvivesCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	fd, err := OpenFlightDir(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	kept := saveRecord(t, fd, "kept")
	// A crash mid-capture leaves a truncated temp file behind.
	torn := filepath.Join(dir, ".flight-12345.tmp")
	if err := os.WriteFile(torn, []byte(`{"rule":"torn","val`), 0o644); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenFlightDir(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	list := reopened.List()
	if len(list) != 1 || list[0].ID != kept {
		t.Fatalf("reopened list = %+v, want only %q", list, kept)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn temp file not cleaned up: %v", err)
	}
	// Numbering continues after the survivor — no ID reuse.
	next := saveRecord(t, reopened, "next")
	if !strings.HasPrefix(next, "flight-00000001-") {
		t.Fatalf("post-reopen id = %q, want sequence to continue", next)
	}
}

func TestFlightDirLoadRejectsPathEscapes(t *testing.T) {
	dir := t.TempDir()
	fd, err := OpenFlightDir(filepath.Join(dir, "ring"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "secret.json"), []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{
		"../secret", "flight-../secret", "/etc/passwd", "flight-00000000-a/../../secret",
		"nonsense", "flight-notanumber-x",
	} {
		if _, err := fd.Load(id); err == nil {
			t.Fatalf("Load(%q) succeeded, want rejection", id)
		}
	}
}

func TestFlightDirNilSafe(t *testing.T) {
	var fd *FlightDir
	if got := fd.List(); got != nil {
		t.Fatalf("nil List = %v", got)
	}
	if _, err := fd.Load("flight-00000000-x"); err == nil {
		t.Fatal("nil Load succeeded")
	}
}

func TestParseFlightSeq(t *testing.T) {
	cases := []struct {
		name string
		seq  uint64
		ok   bool
	}{
		{"flight-00000007-slo-fast-burn.json", 7, true},
		{"flight-00000123.json", 123, true},
		{"flight-x.json", 0, false},
		{".flight-123.tmp", 0, false},
		{"checkpoint.json", 0, false},
		{"flight-.json", 0, false},
	}
	for _, c := range cases {
		seq, ok := parseFlightSeq(c.name)
		if ok != c.ok || (ok && seq != c.seq) {
			t.Fatalf("parseFlightSeq(%q) = %d, %v; want %d, %v", c.name, seq, ok, c.seq, c.ok)
		}
	}
}

func TestSanitizeRule(t *testing.T) {
	if got := sanitizeRule("slo fast/burn!"); got != "slo_fast_burn_" {
		t.Fatalf("sanitizeRule = %q", got)
	}
	if got := sanitizeRule(""); got != "rule" {
		t.Fatalf("sanitizeRule empty = %q", got)
	}
}

func TestAdvanceCPUDelta(t *testing.T) {
	clk := newFakeClock()
	w := New(Config{Now: clk.Now})
	defer w.Stop()
	clk.Advance(5 * time.Second)
	// Burn a little CPU so the cumulative clocks move.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i % 7)
	}
	_ = x
	d := w.advanceCPU(clk.Now())
	if d.WindowSeconds != 5 {
		t.Fatalf("window = %v, want 5s", d.WindowSeconds)
	}
	if d.ProcessSeconds < 0 || d.GCSeconds < 0 {
		t.Fatalf("negative CPU delta: %+v", d)
	}
}

// TestOpenFlightDirErrors: a path occupied by a regular file cannot become
// a flight dir; the error is surfaced, not swallowed.
func TestOpenFlightDirErrors(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFlightDir(file, 4); err == nil {
		t.Fatal("OpenFlightDir on a regular file succeeded")
	}
}

// TestFlightDirLoadMissingRecord: a well-formed ID that simply is not on
// disk is an error, not a panic or an empty record.
func TestFlightDirLoadMissingRecord(t *testing.T) {
	f, err := OpenFlightDir(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Load("flight-00000007-ghost"); err == nil {
		t.Fatal("Load of a missing record succeeded")
	}
}

// TestProfileText: known profiles render non-empty, unknown names render
// empty instead of failing the capture.
func TestProfileText(t *testing.T) {
	if got := profileText("goroutine"); got == "" {
		t.Fatal("goroutine profile empty")
	}
	if got := profileText("no-such-profile"); got != "" {
		t.Fatalf("unknown profile = %q, want empty", got)
	}
}
