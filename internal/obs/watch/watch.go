// Package watch is the anomaly watchdog (DESIGN.md §16): declarative rules
// evaluated over the serving stack's existing signal surfaces — SLO burn-rate
// pairs, drift χ² gauges, shadow agreement, admission queue depth and shed
// rate, re-score cursor progress — on a fixed tick with per-rule hysteresis.
//
// The watchdog closes the loop that the rest of internal/obs leaves open:
// metrics are exported and then nobody looks at them. A Rule names a signal,
// a threshold, and two durations — For (the breach must persist this long
// before the rule fires) and CoolDown (the condition must stay clear this
// long before the alert clears) — so a flapping signal neither pages nor
// un-pages on every tick. When a rule fires the watchdog records an alert in
// a bounded in-memory ring (served at GET /v1/alerts), annotates the SLO
// timeline, optionally captures a flight record (flight.go) — the evidence
// bundle an operator opens instead of ssh'ing into a machine that has since
// recycled — and runs the rule's bound action (auto-rollback, re-score
// throttle) exactly at the ok→firing and firing→ok transitions.
//
// Everything is deterministic under test: the clock is injectable, Tick is
// exported so a fake-clock test steps evaluation explicitly, and the
// WatchTick/WatchCapture fault points let the chaos suite model slow signal
// reads and failed captures.
package watch

import (
	"context"
	"sync"
	"time"

	"github.com/sematype/pythagoras/internal/faultinject"
	"github.com/sematype/pythagoras/internal/obs"
)

// maxAlerts bounds the in-memory alert ring: old incidents scroll off, the
// watchdog never grows without bound.
const maxAlerts = 128

// DefaultInterval is the watchdog tick period when Config leaves it zero.
const DefaultInterval = 5 * time.Second

// Rule declares one watched condition. The zero duration For fires on the
// first breaching tick; the zero CoolDown clears on the first clear tick.
type Rule struct {
	// Name identifies the rule in alerts, metric labels and flight records.
	Name string
	// Signal reads the watched value. ok=false means the signal is
	// unavailable this tick (no candidate loaded, no re-score active, not
	// enough samples) — the rule resets to ok and its hysteresis restarts.
	Signal func() (value float64, ok bool)
	// Threshold is the breach boundary; Below inverts the comparison
	// (fire when value < Threshold instead of value > Threshold).
	Threshold float64
	Below     bool
	// For is how long the breach must persist before the rule fires.
	For time.Duration
	// CoolDown is how long the condition must stay clear, continuously,
	// before a firing alert clears.
	CoolDown time.Duration
	// Capture requests a flight record at fire time (needs a FlightDir).
	Capture bool
	// OnFire/OnClear run at the state transitions, outside the watchdog's
	// lock — they may take arbitrary locks of their own (the lifecycle
	// mutex, the re-score budget). Either may be nil.
	OnFire  func(a Alert)
	OnClear func(a Alert)
}

// Alert is one firing (or since-cleared) rule instance, served at
// GET /v1/alerts.
type Alert struct {
	Rule      string    `json:"rule"`
	State     string    `json:"state"` // "firing" or "cleared"
	Value     float64   `json:"value"` // signal value at fire time
	Threshold float64   `json:"threshold"`
	FiredAt   time.Time `json:"fired_at"`
	ClearedAt time.Time `json:"cleared_at"`
	// FlightID names the flight record captured when the rule fired, empty
	// when capture was disabled or failed.
	FlightID string `json:"flight_id,omitempty"`
}

// rule evaluation states.
const (
	stateOK      = "ok"
	statePending = "pending"
	stateFiring  = "firing"
)

// ruleState is one rule's hysteresis state machine.
type ruleState struct {
	rule        Rule
	state       string
	breachSince time.Time // first tick of the current contiguous breach
	clearSince  time.Time // first clear tick while firing (zero = still breaching)
	active      *Alert    // ring entry while firing
	fired       *obs.Counter
}

// Sources are the read hooks a flight record captures from. Either may be
// nil (the corresponding section is omitted).
type Sources struct {
	// Metrics returns the point-in-time metrics snapshot (obs.Snapshot).
	Metrics func() any
	// Traces returns the sampled traces to embed — typically the newest
	// slice of the trace recorder's ring.
	Traces func() []obs.Trace
}

// Config assembles a Watchdog.
type Config struct {
	// Interval is the tick period for Start's background loop
	// (DefaultInterval when zero). Tick can always be called directly.
	Interval time.Duration
	// Now injects the clock (time.Now when nil) — the fake-clock seam that
	// makes For/CoolDown math exact in tests.
	Now func() time.Time
	// Annotate, when non-nil, receives one timeline event per alert
	// transition — wired to the SLO engine's Annotate.
	Annotate func(event, detail string)
	// Flights is the on-disk flight-record ring; nil disables capture.
	Flights *FlightDir
	// Sources feed flight records.
	Sources Sources
	// Faults arms the WatchTick/WatchCapture injection points; nil is free.
	Faults *faultinject.Set
	// Metrics, when non-nil, receives watch.* telemetry.
	Metrics *obs.Registry
}

// Watchdog evaluates its rules once per Tick. One mutex guards rule state
// and the alert ring; signal reads, captures and actions all run outside it
// so a rule's action may take the locks of the subsystem it acts on.
type Watchdog struct {
	cfg      Config
	interval time.Duration
	now      func() time.Time

	mu    sync.Mutex
	rules []*ruleState
	ring  []*Alert // fired alerts, oldest first, capped at maxAlerts

	// cpu tracks process/GC CPU seconds between ticks so a flight record
	// can carry the CPU spend of the window that tripped the rule.
	cpu cpuSample

	stopOnce sync.Once
	stopCh   chan struct{}
	loopWG   sync.WaitGroup

	ticks       *obs.Counter // watch.ticks
	tickErrs    *obs.Counter // watch.tick.errors (injected/skipped ticks)
	captured    *obs.Counter // watch.flights.captured
	captureErrs *obs.Counter // watch.flights.errors
}

// New builds a watchdog. Add rules with Add before Start; rules registered
// while ticking are picked up on the next tick.
func New(cfg Config) *Watchdog {
	w := &Watchdog{
		cfg:      cfg,
		interval: cfg.Interval,
		now:      cfg.Now,
		stopCh:   make(chan struct{}),
	}
	if w.interval <= 0 {
		w.interval = DefaultInterval
	}
	if w.now == nil {
		w.now = time.Now
	}
	reg := cfg.Metrics // nil-safe handles throughout
	w.ticks = reg.Counter("watch.ticks")
	w.tickErrs = reg.Counter("watch.tick.errors")
	w.captured = reg.Counter("watch.flights.captured")
	w.captureErrs = reg.Counter("watch.flights.errors")
	w.cpu = readCPUSample(w.now())
	return w
}

// Interval returns the configured tick period.
func (w *Watchdog) Interval() time.Duration { return w.interval }

// Add registers a rule and its watch.alerts{rule=,state=} gauge pair.
func (w *Watchdog) Add(r Rule) {
	rs := &ruleState{rule: r, state: stateOK}
	if reg := w.cfg.Metrics; reg != nil {
		rs.fired = reg.Counter(obs.Labels("watch.alerts.fired", "rule", r.Name))
		for _, st := range []string{statePending, stateFiring} {
			st := st
			reg.GaugeFunc(obs.Labels("watch.alerts", "rule", r.Name, "state", st), func() float64 {
				w.mu.Lock()
				defer w.mu.Unlock()
				if rs.state == st {
					return 1
				}
				return 0
			})
		}
	}
	w.mu.Lock()
	w.rules = append(w.rules, rs)
	w.mu.Unlock()
}

// Start runs the background tick loop until ctx is cancelled or Stop is
// called. Safe to skip entirely — tests drive Tick directly.
func (w *Watchdog) Start(ctx context.Context) {
	w.loopWG.Add(1)
	go func() {
		defer w.loopWG.Done()
		t := time.NewTicker(w.interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-w.stopCh:
				return
			case <-t.C:
				w.Tick()
			}
		}
	}()
}

// Stop ends the background loop (if any) and waits for it to exit — the
// no-goroutine-leak barrier. Safe to call more than once, or without Start.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stopCh) })
	w.loopWG.Wait()
}

// transition is one rule's state change collected under the lock and acted
// on outside it.
type transition struct {
	rs    *ruleState
	alert Alert
	fired bool // true: ok/pending→firing; false: firing→ok
}

// Tick evaluates every rule once at the injected clock's current time.
// Exported so fake-clock tests (and the chaos suite) step evaluation
// deterministically; Start's loop calls it on the real clock.
func (w *Watchdog) Tick() {
	now := w.now()
	if err := w.cfg.Faults.Fire(context.Background(), faultinject.WatchTick); err != nil {
		w.tickErrs.Inc()
		return // skipped tick: rules keep their state, hysteresis stands still
	}
	w.ticks.Inc()
	cpuDelta := w.advanceCPU(now)

	// Read signals outside the lock: signal closures reach into other
	// subsystems (SLO engine, lifecycle slots, re-score driver) whose locks
	// must never nest inside w.mu.
	w.mu.Lock()
	rules := make([]*ruleState, len(w.rules))
	copy(rules, w.rules)
	w.mu.Unlock()
	type reading struct {
		v  float64
		ok bool
	}
	vals := make([]reading, len(rules))
	for i, rs := range rules {
		vals[i].v, vals[i].ok = rs.rule.Signal()
	}

	w.mu.Lock()
	var trans []transition
	for i, rs := range rules {
		if tr, changed := w.step(rs, vals[i].v, vals[i].ok, now); changed {
			trans = append(trans, tr)
		}
	}
	w.mu.Unlock()

	// Transitions act outside the lock: captures touch the disk and the
	// profile machinery, actions take their subsystems' locks.
	for _, tr := range trans {
		if tr.fired {
			tr.rs.fired.Inc()
			w.annotate("alert-firing", tr.alert)
			if id := w.capture(tr.alert, cpuDelta); id != "" {
				tr.alert.FlightID = id
				w.mu.Lock()
				if tr.rs.active != nil {
					tr.rs.active.FlightID = id
				}
				w.mu.Unlock()
			}
			if tr.rs.rule.OnFire != nil {
				tr.rs.rule.OnFire(tr.alert)
			}
		} else {
			w.annotate("alert-cleared", tr.alert)
			if tr.rs.rule.OnClear != nil {
				tr.rs.rule.OnClear(tr.alert)
			}
		}
	}
}

// step advances one rule's hysteresis state machine. Caller holds w.mu.
// An unavailable signal (ok=false) counts as clear everywhere: the
// condition's subject — the candidate, the re-score run — no longer exists,
// so a pending breach resets and a firing alert starts its cool-down.
func (w *Watchdog) step(rs *ruleState, v float64, ok bool, now time.Time) (transition, bool) {
	breach := ok && v > rs.rule.Threshold
	if rs.rule.Below {
		breach = ok && v < rs.rule.Threshold
	}
	switch rs.state {
	case stateOK:
		if breach {
			rs.state = statePending
			rs.breachSince = now
			if rs.rule.For <= 0 { // no for-duration: fire on the first breach
				return w.fire(rs, v, now), true
			}
		}
	case statePending:
		switch {
		case !breach:
			rs.state = stateOK
		case now.Sub(rs.breachSince) >= rs.rule.For:
			return w.fire(rs, v, now), true
		}
	case stateFiring:
		if breach {
			rs.clearSince = time.Time{} // still hot: cool-down restarts
			break
		}
		if rs.clearSince.IsZero() {
			rs.clearSince = now
			if rs.rule.CoolDown > 0 {
				break
			}
		}
		if now.Sub(rs.clearSince) >= rs.rule.CoolDown {
			rs.state = stateOK
			rs.clearSince = time.Time{}
			rs.active.State = "cleared"
			rs.active.ClearedAt = now
			a := *rs.active
			rs.active = nil
			return transition{rs: rs, alert: a, fired: false}, true
		}
	}
	return transition{}, false
}

// fire transitions rs to firing and appends the alert to the ring. Caller
// holds w.mu.
func (w *Watchdog) fire(rs *ruleState, v float64, now time.Time) transition {
	rs.state = stateFiring
	rs.clearSince = time.Time{}
	a := &Alert{
		Rule:      rs.rule.Name,
		State:     stateFiring,
		Value:     v,
		Threshold: rs.rule.Threshold,
		FiredAt:   now,
	}
	rs.active = a
	w.ring = append(w.ring, a)
	if len(w.ring) > maxAlerts {
		w.ring = append(w.ring[:0], w.ring[len(w.ring)-maxAlerts:]...)
	}
	return transition{rs: rs, alert: *a, fired: true}
}

func (w *Watchdog) annotate(event string, a Alert) {
	if w.cfg.Annotate == nil {
		return
	}
	w.cfg.Annotate(event, a.Rule)
}

// capture assembles and persists one flight record for a fired alert,
// returning its ID ("" when capture is off, disabled for the rule, or
// failed — a failed capture never blocks the alert or its action).
func (w *Watchdog) capture(a Alert, cpu CPUDelta) string {
	rs := w.findRule(a.Rule)
	if w.cfg.Flights == nil || rs == nil || !rs.rule.Capture {
		return ""
	}
	if err := w.cfg.Faults.Fire(context.Background(), faultinject.WatchCapture); err != nil {
		w.captureErrs.Inc()
		return ""
	}
	rec := &FlightRecord{
		Rule:      a.Rule,
		Time:      a.FiredAt,
		Value:     a.Value,
		Threshold: a.Threshold,
		CPU:       cpu,
	}
	if w.cfg.Sources.Metrics != nil {
		rec.Metrics = w.cfg.Sources.Metrics()
	}
	if w.cfg.Sources.Traces != nil {
		rec.Traces = w.cfg.Sources.Traces()
	}
	rec.fillProfiles()
	id, err := w.cfg.Flights.Save(rec)
	if err != nil {
		w.captureErrs.Inc()
		return ""
	}
	w.captured.Inc()
	return id
}

func (w *Watchdog) findRule(name string) *ruleState {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, rs := range w.rules {
		if rs.rule.Name == name {
			return rs
		}
	}
	return nil
}

// Report is the body of GET /v1/alerts: currently-firing alerts plus the
// bounded history of past transitions, both newest first.
type Report struct {
	Active []Alert `json:"active"`
	Recent []Alert `json:"recent"`
}

// Alerts returns the current report.
func (w *Watchdog) Alerts() Report {
	rep := Report{Active: []Alert{}, Recent: []Alert{}}
	if w == nil {
		return rep
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := len(w.ring) - 1; i >= 0; i-- {
		a := *w.ring[i]
		rep.Recent = append(rep.Recent, a)
		if a.State == stateFiring {
			rep.Active = append(rep.Active, a)
		}
	}
	return rep
}
