package watch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/sematype/pythagoras/internal/faultinject"
	"github.com/sematype/pythagoras/internal/obs"
)

// fakeClock drives the watchdog deterministically: tests advance it by whole
// intervals and call Tick explicitly.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// sig is a settable signal for rule tests.
type sig struct {
	mu sync.Mutex
	v  float64
	ok bool
}

func (s *sig) set(v float64, ok bool) {
	s.mu.Lock()
	s.v, s.ok = v, ok
	s.mu.Unlock()
}

func (s *sig) read() (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v, s.ok
}

func testWatchdog(t *testing.T, clk *fakeClock, cfg Config) *Watchdog {
	t.Helper()
	cfg.Now = clk.Now
	if cfg.Interval == 0 {
		cfg.Interval = time.Second
	}
	w := New(cfg)
	t.Cleanup(w.Stop)
	return w
}

func TestRuleFiresAfterForDuration(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	w := testWatchdog(t, clk, Config{Metrics: reg})
	s := &sig{}
	s.set(0, true)
	var fired, cleared []Alert
	w.Add(Rule{
		Name:      "hot",
		Signal:    s.read,
		Threshold: 10,
		For:       3 * time.Second,
		CoolDown:  2 * time.Second,
		OnFire:    func(a Alert) { fired = append(fired, a) },
		OnClear:   func(a Alert) { cleared = append(cleared, a) },
	})

	// Healthy ticks: nothing pending, nothing firing.
	w.Tick()
	if got := w.Alerts(); len(got.Recent) != 0 {
		t.Fatalf("healthy tick produced alerts: %+v", got.Recent)
	}

	// Breach for 2s < For: still pending, gauge shows pending not firing.
	s.set(42, true)
	w.Tick() // breachSince = now
	clk.Advance(2 * time.Second)
	w.Tick()
	snap := reg.Snapshot()
	if g := snap.Gauges[obs.Labels("watch.alerts", "rule", "hot", "state", "pending")]; g != 1 {
		t.Fatalf("pending gauge = %v, want 1", g)
	}
	if g := snap.Gauges[obs.Labels("watch.alerts", "rule", "hot", "state", "firing")]; g != 0 {
		t.Fatalf("firing gauge = %v, want 0", g)
	}
	if len(fired) != 0 {
		t.Fatalf("fired before For elapsed: %+v", fired)
	}

	// One more second completes the For window.
	clk.Advance(time.Second)
	w.Tick()
	if len(fired) != 1 {
		t.Fatalf("fired %d times, want 1", len(fired))
	}
	if fired[0].Rule != "hot" || fired[0].Value != 42 || fired[0].Threshold != 10 {
		t.Fatalf("fired alert = %+v", fired[0])
	}
	rep := w.Alerts()
	if len(rep.Active) != 1 || rep.Active[0].State != "firing" {
		t.Fatalf("active report = %+v", rep)
	}
	if c := reg.Snapshot().Counters[obs.Labels("watch.alerts.fired", "rule", "hot")]; c != 1 {
		t.Fatalf("fired counter = %d, want 1", c)
	}

	// A dip below threshold for less than CoolDown must not clear.
	s.set(1, true)
	clk.Advance(time.Second)
	w.Tick() // clearSince = now
	clk.Advance(time.Second)
	s.set(42, true)
	w.Tick() // hot again: cool-down resets
	if len(cleared) != 0 {
		t.Fatalf("cleared during flap: %+v", cleared)
	}

	// Now continuously clear for the full cool-down.
	s.set(1, true)
	clk.Advance(time.Second)
	w.Tick() // clearSince restarts here
	clk.Advance(2 * time.Second)
	w.Tick()
	if len(cleared) != 1 {
		t.Fatalf("cleared %d times, want 1", len(cleared))
	}
	if cleared[0].State != "cleared" || cleared[0].ClearedAt.IsZero() {
		t.Fatalf("cleared alert = %+v", cleared[0])
	}
	rep = w.Alerts()
	if len(rep.Active) != 0 || len(rep.Recent) != 1 || rep.Recent[0].State != "cleared" {
		t.Fatalf("post-clear report = %+v", rep)
	}
}

func TestZeroForFiresImmediatelyAndBelowInverts(t *testing.T) {
	clk := newFakeClock()
	w := testWatchdog(t, clk, Config{})
	s := &sig{}
	s.set(0.95, true)
	var fired int
	w.Add(Rule{
		Name:      "agreement-low",
		Signal:    s.read,
		Threshold: 0.85,
		Below:     true,
		OnFire:    func(Alert) { fired++ },
	})
	w.Tick()
	if fired != 0 {
		t.Fatal("fired while above a Below threshold")
	}
	s.set(0.5, true)
	w.Tick()
	if fired != 1 {
		t.Fatalf("zero-For rule fired %d times on first breaching tick, want 1", fired)
	}
	// Zero cool-down: first clear tick clears.
	s.set(0.95, true)
	clk.Advance(time.Second)
	w.Tick()
	if rep := w.Alerts(); len(rep.Active) != 0 {
		t.Fatalf("zero-CoolDown alert still active: %+v", rep.Active)
	}
}

func TestUnavailableSignalResetsHysteresis(t *testing.T) {
	clk := newFakeClock()
	w := testWatchdog(t, clk, Config{})
	s := &sig{}
	var fired int
	w.Add(Rule{
		Name:      "drift",
		Signal:    s.read,
		Threshold: 0.5,
		For:       2 * time.Second,
		OnFire:    func(Alert) { fired++ },
	})
	// Breach, then the signal disappears mid-window: pending resets.
	s.set(0.9, true)
	w.Tick()
	clk.Advance(time.Second)
	s.set(0, false)
	w.Tick()
	clk.Advance(time.Second)
	s.set(0.9, true)
	w.Tick() // breachSince restarts — only 0s elapsed
	if fired != 0 {
		t.Fatal("fired although the breach window was interrupted by ok=false")
	}
	clk.Advance(2 * time.Second)
	w.Tick()
	if fired != 1 {
		t.Fatalf("fired %d times after uninterrupted window, want 1", fired)
	}
	// ok=false while firing starts the cool-down and clears (CoolDown 0).
	s.set(0, false)
	clk.Advance(time.Second)
	w.Tick()
	if rep := w.Alerts(); len(rep.Active) != 0 {
		t.Fatalf("alert survived signal disappearance: %+v", rep.Active)
	}
}

func TestAlertRingBounded(t *testing.T) {
	clk := newFakeClock()
	w := testWatchdog(t, clk, Config{})
	s := &sig{}
	w.Add(Rule{Name: "flappy", Signal: s.read, Threshold: 1})
	for i := 0; i < maxAlerts+20; i++ {
		s.set(5, true)
		w.Tick() // fire
		clk.Advance(time.Second)
		s.set(0, true)
		w.Tick() // clear
		clk.Advance(time.Second)
	}
	rep := w.Alerts()
	if len(rep.Recent) != maxAlerts {
		t.Fatalf("ring holds %d alerts, want %d", len(rep.Recent), maxAlerts)
	}
}

func TestTickFaultSkipsEvaluation(t *testing.T) {
	clk := newFakeClock()
	faults := faultinject.New()
	reg := obs.NewRegistry()
	w := testWatchdog(t, clk, Config{Faults: faults, Metrics: reg})
	s := &sig{}
	s.set(9, true)
	var fired int
	w.Add(Rule{Name: "r", Signal: s.read, Threshold: 1, OnFire: func(Alert) { fired++ }})

	faults.On(faultinject.WatchTick, faultinject.Times(1, faultinject.Err(errors.New("slow signal read"))))
	w.Tick()
	if fired != 0 {
		t.Fatal("rule fired on a faulted tick")
	}
	snap := reg.Snapshot()
	if snap.Counters["watch.tick.errors"] != 1 || snap.Counters["watch.ticks"] != 0 {
		t.Fatalf("tick counters = %+v", snap.Counters)
	}
	w.Tick()
	if fired != 1 {
		t.Fatalf("rule fired %d times after fault cleared, want 1", fired)
	}
}

func TestCaptureWritesFlightRecordAndLinksAlert(t *testing.T) {
	clk := newFakeClock()
	fd, err := OpenFlightDir(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	reg.Counter("seen.requests").Add(11)
	var annotations []string
	w := testWatchdog(t, clk, Config{
		Metrics:  reg,
		Flights:  fd,
		Annotate: func(event, detail string) { annotations = append(annotations, event+":"+detail) },
		Sources: Sources{
			Metrics: func() any { return reg.Snapshot() },
			Traces: func() []obs.Trace {
				return []obs.Trace{{TraceID: "cafe", Root: "predict"}}
			},
		},
	})
	s := &sig{}
	s.set(7, true)
	w.Add(Rule{Name: "slo-fast-burn", Signal: s.read, Threshold: 2, Capture: true})
	w.Tick()

	rep := w.Alerts()
	if len(rep.Active) != 1 || rep.Active[0].FlightID == "" {
		t.Fatalf("active alert has no flight id: %+v", rep.Active)
	}
	rec, err := fd.Load(rep.Active[0].FlightID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Rule != "slo-fast-burn" || rec.Value != 7 || rec.Threshold != 2 {
		t.Fatalf("record header = %+v", rec)
	}
	if len(rec.Traces) != 1 || rec.Traces[0].TraceID != "cafe" {
		t.Fatalf("record traces = %+v", rec.Traces)
	}
	if rec.Goroutines < 1 || rec.GoroutineProfile == "" || rec.HeapProfile == "" {
		t.Fatalf("record profiles missing: goroutines=%d", rec.Goroutines)
	}
	if rec.Metrics == nil {
		t.Fatal("record metrics snapshot missing")
	}
	if len(annotations) != 1 || annotations[0] != "alert-firing:slo-fast-burn" {
		t.Fatalf("annotations = %v", annotations)
	}
	if c := reg.Snapshot().Counters["watch.flights.captured"]; c != 1 {
		t.Fatalf("captured counter = %d, want 1", c)
	}
}

func TestCaptureFaultStillFiresAlert(t *testing.T) {
	clk := newFakeClock()
	fd, err := OpenFlightDir(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	faults := faultinject.New()
	faults.On(faultinject.WatchCapture, faultinject.Err(errors.New("disk full")))
	reg := obs.NewRegistry()
	var fired int
	w := testWatchdog(t, clk, Config{Metrics: reg, Flights: fd, Faults: faults})
	s := &sig{}
	s.set(7, true)
	w.Add(Rule{Name: "r", Signal: s.read, Threshold: 2, Capture: true,
		OnFire: func(Alert) { fired++ }})
	w.Tick()
	if fired != 1 {
		t.Fatalf("fired %d times despite capture fault, want 1", fired)
	}
	rep := w.Alerts()
	if len(rep.Active) != 1 || rep.Active[0].FlightID != "" {
		t.Fatalf("active = %+v, want firing with empty flight id", rep.Active)
	}
	if got := len(fd.List()); got != 0 {
		t.Fatalf("flight dir has %d records after faulted capture, want 0", got)
	}
	if c := reg.Snapshot().Counters["watch.flights.errors"]; c != 1 {
		t.Fatalf("capture errors counter = %d, want 1", c)
	}
}

func TestStartLoopTicksAndStops(t *testing.T) {
	reg := obs.NewRegistry()
	w := New(Config{Interval: time.Millisecond, Metrics: reg})
	w.Start(context.Background())
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counters["watch.ticks"] < 3 {
		if time.Now().After(deadline) {
			t.Fatal("background loop never reached 3 ticks")
		}
		time.Sleep(time.Millisecond)
	}
	w.Stop()
	w.Stop() // idempotent
	n := reg.Snapshot().Counters["watch.ticks"]
	time.Sleep(10 * time.Millisecond)
	if after := reg.Snapshot().Counters["watch.ticks"]; after != n {
		t.Fatalf("loop still ticking after Stop: %d then %d", n, after)
	}
}

func TestNilWatchdogAlerts(t *testing.T) {
	var w *Watchdog
	rep := w.Alerts()
	if rep.Active == nil || rep.Recent == nil || len(rep.Active)+len(rep.Recent) != 0 {
		t.Fatalf("nil watchdog report = %+v", rep)
	}
}

// TestConcurrentTickAndAdd races rule registration, ticks, and report reads —
// the shape `go test -race` must hold clean.
func TestConcurrentTickAndAdd(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	w := testWatchdog(t, clk, Config{Metrics: reg})
	s := &sig{}
	s.set(9, true)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				switch i % 3 {
				case 0:
					w.Add(Rule{Name: fmt.Sprintf("r-%d-%d", i, j), Signal: s.read, Threshold: 1})
				case 1:
					clk.Advance(time.Millisecond)
					w.Tick()
				default:
					_ = w.Alerts()
					_ = reg.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
}

// TestIntervalDefaultsAndOverride: the configured tick period is reported,
// and a zero config selects DefaultInterval.
func TestIntervalDefaultsAndOverride(t *testing.T) {
	if got := New(Config{}).Interval(); got != DefaultInterval {
		t.Fatalf("default interval = %s, want %s", got, DefaultInterval)
	}
	if got := New(Config{Interval: time.Second}).Interval(); got != time.Second {
		t.Fatalf("interval = %s, want 1s", got)
	}
}
