// The flight recorder: when a rule fires, the watchdog snapshots the
// evidence an operator needs to diagnose the incident after the fact —
// metrics, the matching sampled traces, goroutine and heap profiles, and
// the CPU spend of the window that tripped the rule — and writes it as one
// JSON document into a size-bounded on-disk ring. Writes are atomic
// (temp + fsync + rename, the same discipline as the re-score checkpoint):
// a crash mid-capture leaves a stray *.tmp file that the next process
// ignores, never a torn record.
package watch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/sematype/pythagoras/internal/obs"
)

// DefaultFlightMax is the on-disk ring size when OpenFlightDir gets max < 1.
const DefaultFlightMax = 32

// maxProfileBytes truncates each embedded text profile — a flight record is
// evidence, not an archive, and a runaway goroutine dump must not balloon
// the ring.
const maxProfileBytes = 256 << 10

// flightPrefix/flightSuffix frame every record file:
// flight-<seq>-<rule>.json. Anything else in the directory (notably the
// *.tmp files an interrupted write leaves) is ignored by List and startup.
const (
	flightPrefix = "flight-"
	flightSuffix = ".json"
)

// CPUDelta is the process CPU spend between the two watchdog ticks
// bracketing the capture — the cheap, always-on stand-in for a CPU profile
// (a blocking pprof CPU capture would stall the tick loop for seconds).
type CPUDelta struct {
	// WindowSeconds is the wall-clock span of the delta (one tick interval
	// in steady state).
	WindowSeconds float64 `json:"window_seconds"`
	// ProcessSeconds is total CPU consumed by the process over the window.
	ProcessSeconds float64 `json:"process_seconds"`
	// GCSeconds is the GC's share of that spend.
	GCSeconds float64 `json:"gc_seconds"`
}

// FlightRecord is one captured evidence bundle, served at
// GET /v1/flight/{id}.
type FlightRecord struct {
	ID        string    `json:"id"`
	Rule      string    `json:"rule"`
	Time      time.Time `json:"time"`
	Value     float64   `json:"value"`
	Threshold float64   `json:"threshold"`
	// Metrics is the full registry snapshot at capture time.
	Metrics any `json:"metrics,omitempty"`
	// Traces are the recorder's sampled traces at capture time — the slow
	// or errored requests of the window that tripped the rule.
	Traces []obs.Trace `json:"traces,omitempty"`
	// Goroutines is the goroutine count; the profiles are pprof debug=1
	// text dumps, truncated at maxProfileBytes.
	Goroutines       int      `json:"goroutines"`
	GoroutineProfile string   `json:"goroutine_profile,omitempty"`
	HeapProfile      string   `json:"heap_profile,omitempty"`
	CPU              CPUDelta `json:"cpu"`
}

// fillProfiles attaches the point-in-time runtime evidence.
func (r *FlightRecord) fillProfiles() {
	r.Goroutines = runtime.NumGoroutine()
	r.GoroutineProfile = profileText("goroutine")
	r.HeapProfile = profileText("heap")
}

func profileText(name string) string {
	p := pprof.Lookup(name)
	if p == nil {
		return ""
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 1); err != nil {
		return ""
	}
	if buf.Len() > maxProfileBytes {
		return buf.String()[:maxProfileBytes] + "\n... truncated ..."
	}
	return buf.String()
}

// cpuSample is one reading of the runtime's cumulative CPU clocks.
type cpuSample struct {
	at      time.Time
	total   float64
	gc      float64
	hasProc bool
}

// cpuMetricNames are the runtime/metrics keys behind CPUDelta.
var cpuMetricNames = []string{
	"/cpu/classes/total:cpu-seconds",
	"/cpu/classes/gc/total:cpu-seconds",
}

func readCPUSample(now time.Time) cpuSample {
	samples := make([]metrics.Sample, len(cpuMetricNames))
	for i, n := range cpuMetricNames {
		samples[i].Name = n
	}
	metrics.Read(samples)
	s := cpuSample{at: now}
	if samples[0].Value.Kind() == metrics.KindFloat64 {
		s.total, s.hasProc = samples[0].Value.Float64(), true
	}
	if samples[1].Value.Kind() == metrics.KindFloat64 {
		s.gc = samples[1].Value.Float64()
	}
	return s
}

// advanceCPU replaces the previous tick's CPU sample with a fresh one and
// returns the delta between them. Called once per tick, before rules run.
func (w *Watchdog) advanceCPU(now time.Time) CPUDelta {
	cur := readCPUSample(now)
	prev := w.cpu
	w.cpu = cur
	d := CPUDelta{WindowSeconds: cur.at.Sub(prev.at).Seconds()}
	if cur.hasProc && prev.hasProc {
		d.ProcessSeconds = cur.total - prev.total
		d.GCSeconds = cur.gc - prev.gc
	}
	return d
}

// FlightDir is the size-bounded on-disk flight-record ring. Records are
// numbered monotonically; when the ring exceeds max, the oldest files are
// evicted. All methods are safe for concurrent use.
type FlightDir struct {
	mu  sync.Mutex
	dir string
	max int
	seq uint64 // next record sequence number
}

// OpenFlightDir opens (creating if needed) a flight-record directory.
// Existing records are retained and numbering continues after the highest
// present; stray temp files from an interrupted capture are ignored (and
// cleaned up, since they can never be completed).
func OpenFlightDir(dir string, max int) (*FlightDir, error) {
	if max < 1 {
		max = DefaultFlightMax
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("watch: open flight dir: %w", err)
	}
	f := &FlightDir{dir: dir, max: max}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("watch: open flight dir: %w", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			_ = os.Remove(filepath.Join(dir, e.Name())) // torn capture, unrecoverable
			continue
		}
		if seq, ok := parseFlightSeq(e.Name()); ok && seq >= f.seq {
			f.seq = seq + 1
		}
	}
	return f, nil
}

// parseFlightSeq extracts the sequence number from a record file name,
// rejecting anything that does not match flight-<seq>-<rule>.json exactly.
func parseFlightSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, flightPrefix) || !strings.HasSuffix(name, flightSuffix) {
		return 0, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, flightPrefix), flightSuffix)
	numEnd := strings.IndexByte(body, '-')
	if numEnd < 0 {
		numEnd = len(body)
	}
	seq, err := strconv.ParseUint(body[:numEnd], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// sanitizeRule maps a rule name into a filename-safe slug.
func sanitizeRule(name string) string {
	var b strings.Builder
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "rule"
	}
	return b.String()
}

// Save assigns the record its ID, writes it atomically, and evicts the
// oldest records beyond the ring bound.
func (f *FlightDir) Save(rec *FlightRecord) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	id := fmt.Sprintf("%s%08d-%s", flightPrefix, f.seq, sanitizeRule(rec.Rule))
	rec.ID = id
	data, err := json.Marshal(rec)
	if err != nil {
		return "", fmt.Errorf("watch: encode flight record: %w", err)
	}
	path := filepath.Join(f.dir, id+flightSuffix)
	tmp, err := os.CreateTemp(f.dir, ".flight-*.tmp")
	if err != nil {
		return "", fmt.Errorf("watch: write flight record: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", fmt.Errorf("watch: write flight record: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("watch: sync flight record: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("watch: close flight record: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return "", fmt.Errorf("watch: publish flight record: %w", err)
	}
	f.seq++
	f.evictLocked()
	return id, nil
}

// evictLocked removes the oldest records beyond max. Caller holds f.mu.
func (f *FlightDir) evictLocked() {
	names := f.recordNamesLocked()
	for len(names) > f.max {
		_ = os.Remove(filepath.Join(f.dir, names[0]+flightSuffix))
		names = names[1:]
	}
}

// recordNamesLocked lists record IDs oldest first. Caller holds f.mu.
func (f *FlightDir) recordNamesLocked() []string {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseFlightSeq(e.Name()); ok {
			names = append(names, strings.TrimSuffix(e.Name(), flightSuffix))
		}
	}
	sort.Strings(names) // zero-padded seq: lexicographic == chronological
	return names
}

// FlightInfo is one record's directory entry, served at GET /v1/flight.
type FlightInfo struct {
	ID    string    `json:"id"`
	Rule  string    `json:"rule"`
	Time  time.Time `json:"time"`
	Bytes int64     `json:"bytes"`
}

// List returns the ring's records, newest first.
func (f *FlightDir) List() []FlightInfo {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	names := f.recordNamesLocked()
	f.mu.Unlock()
	infos := make([]FlightInfo, 0, len(names))
	for i := len(names) - 1; i >= 0; i-- {
		id := names[i]
		info := FlightInfo{ID: id}
		if fi, err := os.Stat(filepath.Join(f.dir, id+flightSuffix)); err == nil {
			info.Bytes = fi.Size()
		}
		// Rule and fire time are cheap to recover from the name and file;
		// decode lazily only for the header fields.
		if rec, err := f.Load(id); err == nil {
			info.Rule, info.Time = rec.Rule, rec.Time
		}
		infos = append(infos, info)
	}
	return infos
}

// Load reads one record by ID. The ID must name a record file exactly —
// anything path-like is rejected, so a request can never escape the ring
// directory.
func (f *FlightDir) Load(id string) (*FlightRecord, error) {
	if f == nil {
		return nil, os.ErrNotExist
	}
	if _, ok := parseFlightSeq(id + flightSuffix); !ok || filepath.Base(id) != id {
		return nil, fmt.Errorf("watch: invalid flight record id %q: %w", id, os.ErrNotExist)
	}
	data, err := os.ReadFile(filepath.Join(f.dir, id+flightSuffix))
	if err != nil {
		return nil, err
	}
	var rec FlightRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("watch: decode flight record %q: %w", id, err)
	}
	return &rec, nil
}
