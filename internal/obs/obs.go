// Package obs is the stdlib-only observability substrate of Pythagoras:
// a metrics registry of atomic counters, gauges and fixed-bucket latency
// histograms, plus lightweight span tracing for stage-level timings
// (DESIGN.md §8).
//
// Design constraints, in order:
//
//  1. Safe under the serving path's concurrency: every metric type is
//     lock-free on the hot path (atomic adds / CAS loops), and Snapshot may
//     run concurrently with Observe. Snapshots are approximately consistent
//     — in-flight observations may be visible in a bucket before the total,
//     never the other way that would underflow.
//  2. Near-zero overhead when no sink is attached: every method is nil-safe,
//     so call sites hold possibly-nil *Counter/*Gauge/*Histogram pointers
//     and pay one branch when observability is off. No time.Now() is spent
//     by this package itself — callers time and Observe.
//  3. No dependencies beyond the standard library; the JSON snapshot is
//     expvar-compatible (PublishExpvar exposes it under /debug/vars).
//
// Metric names are dotted lowercase paths, `<subsystem>.<thing>[.<unit>]`:
// `infer.stage.forward.seconds`, `lm.cache.text.hits`, `http./v1/predict.requests`.
package obs

import (
	"expvar"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are nil-safe no-ops.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value (set or delta-adjusted). The zero
// value is ready to use; all methods are nil-safe no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by delta (CAS loop — safe from any goroutine).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry holds named metrics. Metric constructors are get-or-create and
// return stable pointers, so callers resolve them once and hit only atomics
// afterwards. A nil *Registry is valid everywhere and hands out nil metrics,
// making an unconfigured call site cost one branch per observation.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() float64{},
		hists:      map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback evaluated at snapshot time — the natural
// fit for values another subsystem already maintains (cache entry counts,
// goroutine counts). Re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFuncs[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (nil bounds selects DefBuckets). Bounds of an
// existing histogram are not changed.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time JSON-marshalable view of a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric, walking each metric family in sorted name
// order so the snapshot (and anything rendered from it — the /v1/metrics
// JSON, the Prometheus exposition) is byte-stable across runs: map-iteration
// order must never leak into output that gets diffed, scraped or
// golden-tested. It is safe to call concurrently with observations; see the
// package comment for the consistency model.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range sortedKeys(r.counters) {
		s.Counters[name] = r.counters[name].Value()
	}
	for _, name := range sortedKeys(r.gauges) {
		s.Gauges[name] = r.gauges[name].Value()
	}
	for _, name := range sortedKeys(r.gaugeFuncs) {
		s.Gauges[name] = r.gaugeFuncs[name]()
	}
	for _, name := range sortedKeys(r.hists) {
		s.Histograms[name] = r.hists[name].Snapshot()
	}
	return s
}

// sortedKeys returns m's keys in ascending order — the deterministic
// iteration order Snapshot and WritePrometheus share.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// published guards expvar.Publish, which panics on duplicate names; tests
// build many registries, so only the first publish of a name wins.
var published sync.Map

// PublishExpvar exposes the registry's snapshot under the given expvar name
// (readable at GET /debug/vars alongside the runtime's memstats). The first
// registry to claim a name keeps it; later calls are no-ops.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	if _, loaded := published.LoadOrStore(name, r); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// ExpBuckets returns n exponentially growing bucket upper bounds starting at
// start (factor > 1).
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns n evenly spaced bucket upper bounds.
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// DefBuckets is the default latency scale in seconds: 10µs to ~84s,
// doubling. Covers everything from a cache-hit token encode to a cold
// paper-scale batch.
var DefBuckets = ExpBuckets(1e-5, 2, 24)

// sortedCopy returns an ascending copy of bounds (NewHistogram must not
// alias or reorder a caller's slice).
func sortedCopy(bounds []float64) []float64 {
	out := append([]float64(nil), bounds...)
	sort.Float64s(out)
	return out
}
