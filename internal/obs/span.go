package obs

import (
	"context"
	"fmt"
	"sync"
	"time"
)

type ctxKey int

const (
	registryKey ctxKey = iota
	spanKey
	recorderKey
)

// WithRegistry attaches a registry to the context so spans started below it
// record their timings there.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey, r)
}

// RegistryFrom returns the registry attached by WithRegistry (nil if none —
// and a nil registry is safe to use directly).
func RegistryFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(registryKey).(*Registry)
	return r
}

// WithRecorder attaches a trace recorder to the context: the next root span
// started below it opens a trace whose finished span tree is offered to the
// recorder (which samples, or force-keeps errored/slow traces — see
// TraceRecorder).
func WithRecorder(ctx context.Context, rec *TraceRecorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey, rec)
}

// RecorderFrom returns the trace recorder attached by WithRecorder (nil if
// none).
func RecorderFrom(ctx context.Context) *TraceRecorder {
	rec, _ := ctx.Value(recorderKey).(*TraceRecorder)
	return rec
}

// Attr is one key/value annotation on a span (request IDs, routes, table
// counts — the correlation keys that tie a trace to logs and metrics).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed stage of a request. Spans nest through the context:
// a span started under another becomes its child, and its recorded metric
// name is the dot-joined path of stage names, prefixed "span." —
// StartSpan(ctx, "predict") then StartSpan(ctx, "encode") records
// `span.predict` and `span.predict.encode` latency histograms.
//
// Two observability layers hang off the same spans (DESIGN.md §8, §11):
//
//   - Aggregates, always: each End records one observation into the
//     registry's per-path duration histogram. No IDs are needed for this.
//   - Traces, when a TraceRecorder is on the context (WithRecorder): the
//     root span opens a trace with SplitMix64-derived trace/span IDs, every
//     span in the tree contributes a SpanData record (attributes and error
//     flag included), and the root's End offers the finished tree to the
//     recorder, which samples it into its ring buffer (errored or slow
//     traces are always kept).
type Span struct {
	name   string
	path   string
	start  time.Time
	parent *Span
	hist   *Histogram

	// Trace capture state; all zero when no recorder is attached, so the
	// aggregate-only path pays a nil check and nothing else.
	tb       *traceBuilder
	traceID  uint64
	spanID   uint64
	parentID uint64

	mu    sync.Mutex // guards attrs and err (End snapshots them)
	attrs []Attr
	err   bool
}

// StartSpan begins a stage span as a child of the context's current span,
// recording into the context's registry. The returned context carries the
// new span; pass it to nested stages. Always returns a usable span — with
// no registry attached, End simply records nothing. A root span (no parent)
// started under a context carrying a TraceRecorder opens a new trace; child
// spans join their parent's trace.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey).(*Span)
	s := &Span{name: name, path: name, start: time.Now(), parent: parent}
	if parent != nil {
		s.path = parent.path + "." + name
		if parent.tb != nil {
			s.tb = parent.tb
			s.traceID = parent.traceID
			s.parentID = parent.spanID
			s.spanID = s.tb.rec.nextID()
		}
	} else if rec := RecorderFrom(ctx); rec != nil {
		s.tb = &traceBuilder{rec: rec}
		s.traceID = rec.nextID()
		s.spanID = rec.nextID()
	}
	if r := RegistryFrom(ctx); r != nil {
		s.hist = r.Histogram("span."+s.path, nil)
	}
	return context.WithValue(ctx, spanKey, s), s
}

// SpanFrom returns the context's current span (nil if none).
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// Name returns the span's stage name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Path returns the dot-joined stage path from the root span ("" for nil).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// Parent returns the enclosing span (nil at the root).
func (s *Span) Parent() *Span {
	if s == nil {
		return nil
	}
	return s.parent
}

// TraceID returns the span's trace ID as a 16-hex-digit string, or "" when
// the span is not part of a captured trace (no recorder on the context).
func (s *Span) TraceID() string {
	if s == nil || s.tb == nil {
		return ""
	}
	return formatID(s.traceID)
}

// SpanID returns the span's own ID as a 16-hex-digit string ("" untraced).
func (s *Span) SpanID() string {
	if s == nil || s.tb == nil {
		return ""
	}
	return formatID(s.spanID)
}

// SetAttr annotates the span with a key/value pair (later sets of the same
// key append — attrs are a log, not a map). Nil-safe; attrs are dropped
// unless the span belongs to a captured trace.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.tb == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetError flags the span (and thereby its trace) as failed. An errored
// trace is always captured by the recorder, regardless of the sample rate.
// Nil-safe.
func (s *Span) SetError() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.err = true
	s.mu.Unlock()
}

// End stops the span, records its duration into the registry histogram for
// its stage path, and returns the duration. If the span belongs to a
// captured trace it contributes its SpanData record; ending the root span
// finalizes the trace and offers it to the recorder. Nil-safe.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.hist != nil {
		s.hist.Observe(d.Seconds())
	}
	if s.tb != nil {
		s.mu.Lock()
		sd := SpanData{
			TraceID:    formatID(s.traceID),
			SpanID:     formatID(s.spanID),
			Name:       s.name,
			Path:       s.path,
			Start:      s.start,
			DurationMs: float64(d) / float64(time.Millisecond),
			Error:      s.err,
			Attrs:      s.attrs,
		}
		errored := s.err
		s.mu.Unlock()
		if s.parentID != 0 {
			sd.ParentID = formatID(s.parentID)
		}
		s.tb.add(sd, errored)
		if s.parent == nil {
			s.tb.finish(s, d)
		}
	}
	return d
}

// formatID renders a trace/span ID in the fixed 16-hex-digit wire format.
func formatID(id uint64) string { return fmt.Sprintf("%016x", id) }
