package obs

import (
	"context"
	"time"
)

type ctxKey int

const (
	registryKey ctxKey = iota
	spanKey
)

// WithRegistry attaches a registry to the context so spans started below it
// record their timings there.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey, r)
}

// RegistryFrom returns the registry attached by WithRegistry (nil if none —
// and a nil registry is safe to use directly).
func RegistryFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(registryKey).(*Registry)
	return r
}

// Span is one timed stage of a request. Spans nest through the context:
// a span started under another becomes its child, and its recorded metric
// name is the dot-joined path of stage names, prefixed "span." —
// StartSpan(ctx, "predict") then StartSpan(ctx, "encode") records
// `span.predict` and `span.predict.encode` latency histograms. That keeps
// tracing weightless: no IDs, no export pipeline, just a duration histogram
// per distinct stage path, which is exactly what per-stage latency analysis
// needs (DESIGN.md §8).
type Span struct {
	name   string
	path   string
	start  time.Time
	parent *Span
	hist   *Histogram
}

// StartSpan begins a stage span as a child of the context's current span,
// recording into the context's registry. The returned context carries the
// new span; pass it to nested stages. Always returns a usable span — with
// no registry attached, End simply records nothing.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey).(*Span)
	s := &Span{name: name, path: name, start: time.Now(), parent: parent}
	if parent != nil {
		s.path = parent.path + "." + name
	}
	if r := RegistryFrom(ctx); r != nil {
		s.hist = r.Histogram("span."+s.path, nil)
	}
	return context.WithValue(ctx, spanKey, s), s
}

// SpanFrom returns the context's current span (nil if none).
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// Name returns the span's stage name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Path returns the dot-joined stage path from the root span ("" for nil).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// Parent returns the enclosing span (nil at the root).
func (s *Span) Parent() *Span {
	if s == nil {
		return nil
	}
	return s.parent
}

// End stops the span, records its duration into the registry histogram for
// its stage path, and returns the duration. Nil-safe.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.hist != nil {
		s.hist.Observe(d.Seconds())
	}
	return d
}
