package logz

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedNow pins the clock so lines are byte-comparable.
func fixedLogger(buf *bytes.Buffer, min Level) *Logger {
	l := New(buf, min)
	l.now = func() time.Time { return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC) }
	return l
}

func TestLogLineShape(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf, Info)
	l.Infof("model loaded: %d types", 78)
	line := buf.String()
	want := `{"time":"2026-08-06T12:00:00Z","level":"info","msg":"model loaded: 78 types"}` + "\n"
	if line != want {
		t.Fatalf("line = %q, want %q", line, want)
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(line), &obj); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
}

func TestWithBindsCorrelationKeys(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf, Info)
	req := l.With("request_id", "req-7", "trace_id", "00000000000000ab")
	req.Log(Info, "served", "status", 200, "types", 3)
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatal(err)
	}
	if obj["request_id"] != "req-7" || obj["trace_id"] != "00000000000000ab" {
		t.Fatalf("bound fields missing: %v", obj)
	}
	if obj["status"] != float64(200) || obj["types"] != float64(3) {
		t.Fatalf("call fields missing: %v", obj)
	}
	// Bound fields precede call fields and follow the fixed header.
	s := buf.String()
	if !(strings.Index(s, `"request_id"`) < strings.Index(s, `"status"`)) {
		t.Fatalf("field order unstable: %s", s)
	}
	// The parent logger is unchanged.
	buf.Reset()
	l.Infof("bare")
	if strings.Contains(buf.String(), "request_id") {
		t.Fatalf("With mutated its parent: %s", buf.String())
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf, Warn)
	l.Debugf("hidden")
	l.Infof("hidden")
	l.Warnf("shown")
	l.Errorf("shown too")
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Fatalf("emitted %d lines at min=warn, want 2: %s", lines, buf.String())
	}
	if l.Enabled(Debug) || !l.Enabled(Error) {
		t.Fatal("Enabled disagrees with emission")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": Debug, "INFO": Info, "Warn": Warn, "warning": Warn,
		"error": Error, "": Info, "bogus": Info,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Fatalf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestNilLoggerInert(t *testing.T) {
	var l *Logger
	l.Infof("nope")
	l.Errorf("nope")
	l.Log(Error, "nope", "k", "v")
	if l.With("k", "v") != nil {
		t.Fatal("nil.With should stay nil")
	}
	if l.Enabled(Error) {
		t.Fatal("nil logger enabled")
	}
	if l.Printf() != nil {
		t.Fatal("nil.Printf should return nil")
	}
	if New(nil, Info) != nil {
		t.Fatal("New(nil) should return a nil logger")
	}
}

func TestConcurrentChildrenDoNotInterleave(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Info)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := l.With("worker", w)
			for i := 0; i < 100; i++ {
				child.Infof("event %d", i)
			}
		}(w)
	}
	wg.Wait()
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("interleaved or malformed line %q: %v", line, err)
		}
	}
	if got := strings.Count(buf.String(), "\n"); got != 800 {
		t.Fatalf("lost lines: %d, want 800", got)
	}
}

func TestPrintfAdapter(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf, Info)
	printf := l.Printf()
	printf("epoch %d done", 3)
	if !strings.Contains(buf.String(), `"msg":"epoch 3 done"`) {
		t.Fatalf("adapter line = %s", buf.String())
	}
}

// TestLevelStringUnknown: out-of-range levels render as their integer.
func TestLevelStringUnknown(t *testing.T) {
	if got := Level(42).String(); got != "level(42)" {
		t.Fatalf("Level(42).String() = %q", got)
	}
}

// TestWriteFieldMarshalFallback: values json.Marshal rejects (NaN) fall
// back to their fmt.Sprint rendering as a JSON string.
func TestWriteFieldMarshalFallback(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf, Info)
	l.Log(Info, "odd", "v", math.NaN())
	var entry map[string]any
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("fallback line not JSON: %v (%q)", err, buf.String())
	}
	if entry["v"] != "NaN" {
		t.Fatalf("v = %v, want the Sprint fallback \"NaN\"", entry["v"])
	}
}
