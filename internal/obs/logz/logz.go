// Package logz is a minimal structured JSON logger for the serving and
// training paths — stdlib only, one line per event, fields in a stable
// order so log pipelines (and tests) can rely on byte layout.
//
// Each line is a flat JSON object: {"time":...,"level":...,"msg":...,
// then bound fields in binding order, then per-call fields in call order}.
// Loggers are immutable; With returns a child sharing the sink and carrying
// extra bound fields (request_id, trace_id — the correlation keys that join
// a log line to its captured trace and metrics).
package logz

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int

// Severity levels, in increasing order.
const (
	Debug Level = iota
	Info
	Warn
	Error
)

func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel maps a name to a Level (case-insensitive; unknown → Info).
func ParseLevel(s string) Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return Debug
	case "warn", "warning":
		return Warn
	case "error":
		return Error
	default:
		return Info
	}
}

// field is one key/value pair; values are rendered with encoding/json.
type field struct {
	key string
	val any
}

// Logger writes structured JSON lines to a sink. The zero value and nil are
// inert (every method no-ops), so call sites can hold an optional logger
// without branching. Writes are serialized by a mutex shared across all
// children of the same root, so concurrent request handlers never interleave
// bytes within a line.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	min   Level
	bound []field
	now   func() time.Time // test seam; time.Now in production
}

// New builds a root logger writing to w at the given minimum level.
func New(w io.Writer, min Level) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{mu: &sync.Mutex{}, w: w, min: min, now: time.Now}
}

// With returns a child logger carrying extra bound fields, given as
// alternating key/value pairs (a trailing odd key is ignored). The child
// shares the parent's sink and lock.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	child.bound = append(append([]field(nil), l.bound...), pairs(kv)...)
	return &child
}

// Enabled reports whether the logger emits at the given level.
func (l *Logger) Enabled(level Level) bool { return l != nil && level >= l.min }

// Debugf logs at debug level. The message is a printf format; structured
// fields come from With-bound context.
func (l *Logger) Debugf(format string, args ...any) { l.logf(Debug, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) { l.logf(Info, format, args...) }

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...any) { l.logf(Warn, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) { l.logf(Error, format, args...) }

// Log emits one event with per-call structured fields (alternating
// key/value pairs after the message).
func (l *Logger) Log(level Level, msg string, kv ...any) {
	if !l.Enabled(level) {
		return
	}
	l.emit(level, msg, pairs(kv))
}

func (l *Logger) logf(level Level, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	l.emit(level, fmt.Sprintf(format, args...), nil)
}

// emit renders one JSON line with fields in stable order: time, level, msg,
// bound fields, call fields. Keys are rendered in insertion order (not
// map-sorted) so the correlation keys a logger was built with lead every
// line it writes.
func (l *Logger) emit(level Level, msg string, call []field) {
	var b strings.Builder
	b.WriteByte('{')
	writeField(&b, "time", l.now().UTC().Format(time.RFC3339Nano))
	b.WriteByte(',')
	writeField(&b, "level", level.String())
	b.WriteByte(',')
	writeField(&b, "msg", msg)
	for _, f := range l.bound {
		b.WriteByte(',')
		writeField(&b, f.key, f.val)
	}
	for _, f := range call {
		b.WriteByte(',')
		writeField(&b, f.key, f.val)
	}
	b.WriteString("}\n")
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

func writeField(b *strings.Builder, key string, val any) {
	kb, _ := json.Marshal(key)
	b.Write(kb)
	b.WriteByte(':')
	vb, err := json.Marshal(val)
	if err != nil {
		vb, _ = json.Marshal(fmt.Sprint(val))
	}
	b.Write(vb)
}

func pairs(kv []any) []field {
	fs := make([]field, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		fs = append(fs, field{key: fmt.Sprint(kv[i]), val: kv[i+1]})
	}
	return fs
}

// Printf adapts the logger to the printf-style signature used by the
// serving and training paths' optional logger hooks — every line lands at
// info level. Returns nil for a nil logger so callers can pass it straight
// through.
func (l *Logger) Printf() func(format string, args ...any) {
	if l == nil {
		return nil
	}
	return func(format string, args ...any) { l.Infof(format, args...) }
}
