package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"testing"
	"time"
)

// TestHistogramSince: the stage-timing idiom records elapsed seconds, and a
// nil histogram stays inert.
func TestHistogramSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("since.seconds", nil)
	h.Since(time.Now().Add(-10 * time.Millisecond))
	s := h.Snapshot()
	if s.Count != 1 || s.Min < 0.01 {
		t.Fatalf("Since recorded count=%d min=%v", s.Count, s.Min)
	}
	var nilH *Histogram
	nilH.Since(time.Now()) // must not panic
}

// TestNilHandleAccessors: reads on nil handles return zero values.
func TestNilHandleAccessors(t *testing.T) {
	var c *Counter
	var g *Gauge
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil handle values not zero")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1) // all inert
}

// TestPublishExpvar: the registry snapshot is readable through expvar, and
// a second claim of the same name is a no-op rather than a panic.
func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("pub.hits").Inc()
	r.PublishExpvar("obs-test-registry")
	r.PublishExpvar("obs-test-registry") // duplicate: no-op
	(*Registry)(nil).PublishExpvar("obs-test-nil")

	v := expvar.Get("obs-test-registry")
	if v == nil {
		t.Fatal("registry not published")
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["pub.hits"] != 1 {
		t.Fatalf("published snapshot = %+v", snap)
	}
}

// TestUntracedSpanIdentity: spans outside a captured trace have no IDs, and
// nil spans answer every accessor safely.
func TestUntracedSpanIdentity(t *testing.T) {
	ctx, span := StartSpan(context.Background(), "lonely")
	if span.TraceID() != "" || span.SpanID() != "" {
		t.Fatal("untraced span minted IDs")
	}
	if span.Name() != "lonely" || span.Path() != "lonely" || span.Parent() != nil {
		t.Fatalf("span identity: name=%q path=%q", span.Name(), span.Path())
	}
	span.SetAttr("k", "v") // dropped, no trace
	if got := SpanFrom(ctx); got != span {
		t.Fatal("SpanFrom did not return the context's span")
	}
	span.End()

	var nilSpan *Span
	if nilSpan.Name() != "" || nilSpan.Path() != "" || nilSpan.Parent() != nil ||
		nilSpan.TraceID() != "" || nilSpan.SpanID() != "" {
		t.Fatal("nil span accessors not zero")
	}
	nilSpan.SetError()
	nilSpan.End()
}

// TestWithRecorderNil: attaching a nil recorder leaves the context (and
// sampling) untouched.
func TestWithRecorderNil(t *testing.T) {
	ctx := WithRecorder(context.Background(), nil)
	if RecorderFrom(ctx) != nil {
		t.Fatal("nil recorder stored on context")
	}
}

// TestTraceRecorderConfigClamps: sample rates above 1 clamp, non-positive
// buffers select the default capacity.
func TestTraceRecorderConfigClamps(t *testing.T) {
	rec := NewTraceRecorder(TraceConfig{SampleRate: 7, Buffer: -3})
	ctx := WithRecorder(context.Background(), rec)
	for i := 0; i < 5; i++ {
		_, span := StartSpan(ctx, "clamped")
		span.End()
	}
	if got := rec.Captured(); got != 5 {
		t.Fatalf("rate 7 captured %d/5 — not clamped to always-keep", got)
	}
	if rec.Sampled() != 5 || rec.Dropped() != 0 {
		t.Fatalf("sampled=%d dropped=%d", rec.Sampled(), rec.Dropped())
	}
	if rec.Len() != 5 {
		t.Fatalf("ring len %d with default buffer", rec.Len())
	}
}

// TestTraceLookupHelpers: Attr misses return "", and RootSpan finds the
// parentless record (nil when absent).
func TestTraceLookupHelpers(t *testing.T) {
	rec := NewTraceRecorder(TraceConfig{SampleRate: 1})
	ctx := WithRecorder(context.Background(), rec)
	ctx, root := StartSpan(ctx, "root")
	root.SetAttr("present", "yes")
	_, child := StartSpan(ctx, "child")
	child.End()
	root.End()

	traces := rec.Traces(TraceFilter{})
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	tr := traces[0]
	rs := tr.RootSpan()
	if rs == nil || rs.Name != "root" {
		t.Fatalf("RootSpan = %+v", rs)
	}
	if rs.Attr("present") != "yes" || rs.Attr("absent") != "" {
		t.Fatal("Attr lookup wrong")
	}
	orphan := Trace{Spans: []SpanData{{ParentID: "ff"}}}
	if orphan.RootSpan() != nil {
		t.Fatal("RootSpan on rootless trace not nil")
	}
}

// TestDriftBaselineNormalization: monitors tolerate baselines with missing
// or mis-sized confidence vectors by normalizing them at construction.
func TestDriftBaselineNormalization(t *testing.T) {
	// No bounds at all: defaults to ConfidenceBuckets.
	m := NewDriftMonitor(DriftBaseline{TypeCounts: map[string]uint64{"a": 3}})
	if m == nil {
		t.Fatal("baseline with type counts only should build")
	}
	m.Observe("a", 0.42)
	if s := m.ConfidenceScore(); s < 0 || s > 1 {
		t.Fatalf("confidence score %v out of [0,1]", s)
	}

	// Mis-sized counts vector: padded to len(bounds)+1.
	m2 := NewDriftMonitor(DriftBaseline{
		TypeCounts: map[string]uint64{"a": 1},
		ConfBounds: []float64{0.5},
		ConfCounts: []uint64{9, 9, 9, 9},
	})
	if m2 == nil {
		t.Fatal("mis-sized baseline rejected")
	}
	m2.Observe("a", 0.9) // overflow bucket; must not panic
	if s := m2.ConfidenceScore(); s < 0 || s > 1 {
		t.Fatalf("confidence score %v out of [0,1]", s)
	}
}
