package obs

import (
	"context"
	"testing"
	"time"
)

// traceCtx is the standard test harness: a context carrying a registry and
// an always-sample recorder.
func traceCtx(cfg TraceConfig) (context.Context, *TraceRecorder) {
	rec := NewTraceRecorder(cfg)
	ctx := WithRegistry(context.Background(), NewRegistry())
	return WithRecorder(ctx, rec), rec
}

func TestTraceCaptureTree(t *testing.T) {
	ctx, rec := traceCtx(TraceConfig{SampleRate: 1})

	rctx, root := StartSpan(ctx, "predict")
	root.SetAttr("request_id", "req-1")
	cctx, child := StartSpan(rctx, "infer")
	_, grand := StartSpan(cctx, "forward")
	grand.End()
	child.End()
	root.End()

	traces := rec.Traces(TraceFilter{})
	if len(traces) != 1 {
		t.Fatalf("captured %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Root != "predict" || tr.Reason != "sample" {
		t.Fatalf("root=%q reason=%q, want predict/sample", tr.Root, tr.Reason)
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(tr.Spans))
	}
	rs := tr.RootSpan()
	if rs == nil || rs.Name != "predict" {
		t.Fatalf("RootSpan = %+v, want the predict span", rs)
	}
	if rs.Attr("request_id") != "req-1" {
		t.Fatalf("root attrs = %v, want request_id=req-1", rs.Attrs)
	}
	// Every span shares the trace ID; parentage chains child → root.
	byID := map[string]SpanData{}
	for _, sd := range tr.Spans {
		if sd.TraceID != tr.TraceID {
			t.Fatalf("span %q trace ID %q != trace %q", sd.Name, sd.TraceID, tr.TraceID)
		}
		byID[sd.SpanID] = sd
	}
	var inferSpan, forwardSpan SpanData
	for _, sd := range tr.Spans {
		switch sd.Name {
		case "infer":
			inferSpan = sd
		case "forward":
			forwardSpan = sd
		}
	}
	if forwardSpan.ParentID != inferSpan.SpanID {
		t.Fatalf("forward.parent = %q, want infer %q", forwardSpan.ParentID, inferSpan.SpanID)
	}
	if byID[inferSpan.ParentID].Name != "predict" {
		t.Fatalf("infer's parent is %q, want predict", byID[inferSpan.ParentID].Name)
	}
	if forwardSpan.Path != "predict.infer.forward" {
		t.Fatalf("forward path = %q", forwardSpan.Path)
	}
}

func TestTraceErrorAlwaysKept(t *testing.T) {
	ctx, rec := traceCtx(TraceConfig{SampleRate: 0}) // dice never keep
	for i := 0; i < 5; i++ {
		_, s := StartSpan(ctx, "predict")
		s.End()
	}
	rctx, root := StartSpan(ctx, "predict")
	_, child := StartSpan(rctx, "infer")
	child.SetError()
	child.End()
	root.End()

	traces := rec.Traces(TraceFilter{})
	if len(traces) != 1 {
		t.Fatalf("captured %d traces, want only the errored one", len(traces))
	}
	if !traces[0].Error || traces[0].Reason != "error" {
		t.Fatalf("trace = error:%v reason:%q, want error/error", traces[0].Error, traces[0].Reason)
	}
	if rec.Dropped() != 5 {
		t.Fatalf("dropped = %d, want 5", rec.Dropped())
	}
	if got := rec.Traces(TraceFilter{ErrorOnly: true}); len(got) != 1 {
		t.Fatalf("ErrorOnly filter returned %d", len(got))
	}
}

func TestTraceSlowAlwaysKept(t *testing.T) {
	ctx, rec := traceCtx(TraceConfig{SampleRate: 0, SlowThreshold: time.Millisecond})
	_, fast := StartSpan(ctx, "predict")
	fast.End()
	_, slow := StartSpan(ctx, "predict")
	time.Sleep(3 * time.Millisecond)
	slow.End()

	traces := rec.Traces(TraceFilter{})
	if len(traces) != 1 || traces[0].Reason != "slow" {
		t.Fatalf("traces = %+v, want one slow capture", traces)
	}
	if got := rec.Traces(TraceFilter{MinDuration: 2 * time.Millisecond}); len(got) != 1 {
		t.Fatalf("MinDuration filter returned %d traces", len(got))
	}
	if got := rec.Traces(TraceFilter{MinDuration: time.Minute}); len(got) != 0 {
		t.Fatalf("MinDuration=1m returned %d traces, want 0", len(got))
	}
}

func TestTraceSampleRateApproximate(t *testing.T) {
	ctx, rec := traceCtx(TraceConfig{SampleRate: 0.2, Buffer: 4096})
	const n = 2000
	for i := 0; i < n; i++ {
		_, s := StartSpan(ctx, "predict")
		s.End()
	}
	kept := int(rec.Captured())
	if kept < n/10 || kept > n/2 {
		t.Fatalf("kept %d of %d at rate 0.2 — sampler badly biased", kept, n)
	}
	if int(rec.Sampled())+int(rec.Dropped()) != n {
		t.Fatalf("sampled %d + dropped %d != %d", rec.Sampled(), rec.Dropped(), n)
	}
}

func TestTraceRingOverwritesOldest(t *testing.T) {
	ctx, rec := traceCtx(TraceConfig{SampleRate: 1, Buffer: 3})
	var ids []string
	for i := 0; i < 5; i++ {
		_, s := StartSpan(ctx, "predict")
		ids = append(ids, s.TraceID())
		s.End()
	}
	traces := rec.Traces(TraceFilter{})
	if len(traces) != 3 {
		t.Fatalf("buffered %d traces, want ring size 3", len(traces))
	}
	// Newest first: traces 4, 3, 2.
	for i, want := range []string{ids[4], ids[3], ids[2]} {
		if traces[i].TraceID != want {
			t.Fatalf("traces[%d] = %s, want %s", i, traces[i].TraceID, want)
		}
	}
	if got := rec.Traces(TraceFilter{Limit: 1}); len(got) != 1 || got[0].TraceID != ids[4] {
		t.Fatalf("Limit=1 returned %+v, want newest only", got)
	}
}

func TestTraceRouteFilter(t *testing.T) {
	ctx, rec := traceCtx(TraceConfig{SampleRate: 1})
	for _, name := range []string{"predict", "predict-batch", "predict"} {
		_, s := StartSpan(ctx, name)
		s.SetAttr("route", "/v1/"+name)
		s.End()
	}
	if got := rec.Traces(TraceFilter{Route: "predict"}); len(got) != 2 {
		t.Fatalf("Route=predict matched %d, want 2", len(got))
	}
	if got := rec.Traces(TraceFilter{Route: "/v1/predict-batch"}); len(got) != 1 {
		t.Fatalf("Route=/v1/predict-batch matched %d, want 1", len(got))
	}
	if got := rec.Traces(TraceFilter{Route: "nope"}); len(got) != 0 {
		t.Fatalf("Route=nope matched %d, want 0", len(got))
	}
}

func TestSpanIDsWithoutRecorder(t *testing.T) {
	ctx := WithRegistry(context.Background(), NewRegistry())
	_, s := StartSpan(ctx, "predict")
	if s.TraceID() != "" || s.SpanID() != "" {
		t.Fatalf("untraced span has IDs %q/%q, want empty", s.TraceID(), s.SpanID())
	}
	s.SetAttr("k", "v") // must be a no-op, not a leak
	s.SetError()
	if s.End() < 0 {
		t.Fatal("End returned negative duration")
	}
}

func TestTraceRecorderRegister(t *testing.T) {
	ctx, rec := traceCtx(TraceConfig{SampleRate: 1})
	reg := NewRegistry()
	rec.Register(reg)
	_, s := StartSpan(ctx, "predict")
	s.End()
	snap := reg.Snapshot()
	if snap.Gauges["trace.captured"] != 1 || snap.Gauges["trace.buffered"] != 1 {
		t.Fatalf("gauges = %v, want captured/buffered = 1", snap.Gauges)
	}
}

func TestTraceIDsUniqueAndNonZero(t *testing.T) {
	rec := NewTraceRecorder(TraceConfig{})
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		id := rec.nextID()
		if id == 0 {
			t.Fatal("minted zero ID")
		}
		if seen[id] {
			t.Fatalf("duplicate ID %x after %d mints", id, i)
		}
		seen[id] = true
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var rec *TraceRecorder
	rec.offer(Trace{})
	if rec.Traces(TraceFilter{}) != nil || rec.Len() != 0 || rec.Captured() != 0 {
		t.Fatal("nil recorder not inert")
	}
	rec.Register(NewRegistry())
}
