package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("test.requests") != c {
		t.Fatal("Counter is not get-or-create stable")
	}

	g := r.Gauge("test.busy")
	g.Set(2.5)
	g.Add(1.5)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}

	r.GaugeFunc("test.fn", func() float64 { return 42 })
	s := r.Snapshot()
	if s.Counters["test.requests"] != 5 || s.Gauges["test.busy"] != 3 || s.Gauges["test.fn"] != 42 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
}

// TestNilSafety pins the "no sink attached" contract: a nil registry hands
// out nil metrics and every operation — including spans — is a no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.GaugeFunc("x", func() float64 { return 1 })
	r.Histogram("x", nil).Observe(1)
	if q := r.Histogram("x", nil).Quantile(0.5); q != 0 {
		t.Fatalf("nil histogram quantile = %v", q)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil histogram not inert")
	}
	var sp *Span
	if sp.End() != 0 || sp.Name() != "" || sp.Path() != "" || sp.Parent() != nil {
		t.Fatal("nil span not inert")
	}
}

func TestSnapshotMarshalsToJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Gauge("g").Set(1.5)
	h := r.Histogram("h", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(100) // overflow — must still marshal (no +Inf leaks into JSON)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if back.Histograms["h"].Count != 2 || back.Histograms["h"].Overflow != 1 {
		t.Fatalf("histogram round-trip mismatch: %+v", back.Histograms["h"])
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("shared").Inc()
				r.Gauge("busy").Add(1)
				r.Gauge("busy").Add(-1)
				r.Histogram("lat", nil).Observe(float64(i) * 1e-5)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8*200 {
		t.Fatalf("counter = %d, want %d", got, 8*200)
	}
	if got := r.Histogram("lat", nil).Count(); got != 8*200 {
		t.Fatalf("histogram count = %d, want %d", got, 8*200)
	}
}

func TestExpAndLinearBuckets(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
	lin := LinearBuckets(0, 5, 3)
	want = []float64{0, 5, 10}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
}
