// Prometheus text exposition (format version 0.0.4) for the registry.
//
// The registry's native metric names are dotted paths with free-form
// segments ("http./v1/predict.requests"); Prometheus names are
// [a-zA-Z_:][a-zA-Z0-9_:]*. WritePrometheus sanitizes names at render time
// (every invalid rune becomes '_'), so call sites keep the readable dotted
// convention and scrape targets see legal families. One logical metric fans
// out into labeled series through the Labels helper: the registry key
// `infer.predicted{type="player.age"}` renders as
// `infer_predicted{type="player.age"}` — same family, one series per label
// set, no string-concat call sites.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Labels canonicalizes a labeled metric name: Labels("infer.predicted",
// "type", "player.age") → `infer.predicted{type="player.age"}`. Pairs are
// sorted by key and values are escaped, so the same logical series always
// maps to the same registry key regardless of argument order. A trailing
// odd value is ignored; no pairs returns the bare name.
func Labels(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{sanitizeLabelKey(kv[i]), escapeLabelValue(kv[i+1])})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// splitLabels splits a registry key built by Labels back into its base name
// and the rendered label body ("" when unlabeled).
func splitLabels(key string) (base, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i+1 : len(key)-1]
	}
	return key, ""
}

// sanitizeMetricName maps a dotted registry name onto the Prometheus
// alphabet: [a-zA-Z0-9_:] pass through, everything else becomes '_', and a
// leading digit gains a '_' prefix.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// sanitizeLabelKey maps a label key onto [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelKey(key string) string {
	s := sanitizeMetricName(key)
	return strings.ReplaceAll(s, ":", "_")
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
	// double quotes are escaped by %q at render time
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promSeries is one renderable series of a family.
type promSeries struct {
	labels string // rendered label body, "" when unlabeled
	value  float64
	isInt  bool
	intVal uint64
	hist   *Histogram // non-nil for histogram series
}

type promFamily struct {
	name   string // sanitized
	kind   string // counter | gauge | histogram
	series []promSeries
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format: families sorted by name, `# TYPE` headers, cumulative `le`
// buckets ending at `+Inf`, and `_sum`/`_count` series whose count equals
// the +Inf bucket (the count is computed from the buckets themselves, so
// the rendered family is always internally consistent even while
// observations are in flight). Output is byte-stable for a quiescent
// registry. Nil-safe: a nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := map[string]*promFamily{}
	family := func(key, kind string) (*promFamily, string) {
		base, labels := splitLabels(key)
		name := sanitizeMetricName(base)
		f := fams[name]
		if f == nil {
			f = &promFamily{name: name, kind: kind}
			fams[name] = f
		}
		return f, labels
	}
	for key, c := range r.counters {
		f, labels := family(key, "counter")
		f.series = append(f.series, promSeries{labels: labels, isInt: true, intVal: c.Value()})
	}
	for key, g := range r.gauges {
		f, labels := family(key, "gauge")
		f.series = append(f.series, promSeries{labels: labels, value: g.Value()})
	}
	for key, fn := range r.gaugeFuncs {
		f, labels := family(key, "gauge")
		f.series = append(f.series, promSeries{labels: labels, value: fn()})
	}
	for key, h := range r.hists {
		f, labels := family(key, "histogram")
		f.series = append(f.series, promSeries{labels: labels, hist: h})
	}
	r.mu.RUnlock()

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch {
			case s.hist != nil:
				writeHistogramSeries(&b, f.name, s.labels, s.hist)
			case s.isInt:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(s.labels), s.intVal)
			default:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(s.labels), formatFloat(s.value))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func renderLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// writeHistogramSeries renders one histogram as cumulative buckets plus
// _sum and _count. The le label composes with any existing labels.
func writeHistogramSeries(b *strings.Builder, name, labels string, h *Histogram) {
	bounds, counts, sum := h.dump()
	withLE := func(le string) string {
		if labels == "" {
			return `{le="` + le + `"}`
		}
		return "{" + labels + `,le="` + le + `"}`
	}
	var cum uint64
	for i, ub := range bounds {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(formatFloat(ub)), cum)
	}
	cum += counts[len(counts)-1] // the +Inf overflow bucket
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, renderLabels(labels), formatFloat(sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(labels), cum)
}
