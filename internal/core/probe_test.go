package core

import (
	"math"
	"strings"
	"testing"

	"github.com/sematype/pythagoras/internal/table"
)

// TestEncoderDiscriminatesDomainSpecificColumns verifies the property the
// whole architecture rests on: serialized columns whose value vocabulary is
// domain-specific (field positions, team names) must be nearest-neighbor
// separable in the frozen encoder's space, while columns drawn from shared
// pools (player names) are expected to be ambiguous — that ambiguity is
// exactly what the graph context resolves.
func TestEncoderDiscriminatesDomainSpecificColumns(t *testing.T) {
	c := tinyCorpus(60)
	enc := tinyEncoder()
	type item struct {
		vec   []float32
		label string
	}
	var items []item
	for _, tb := range c.Tables {
		for _, col := range tb.Columns {
			if col.Kind != table.KindText {
				continue
			}
			txt := table.SerializeColumn(col, table.SerializeOptions{})
			items = append(items, item{enc.Encode(txt), col.SemanticType})
		}
	}
	cos := func(a, b []float32) float64 {
		var d, na, nb float64
		for i := range a {
			d += float64(a[i]) * float64(b[i])
			na += float64(a[i]) * float64(a[i])
			nb += float64(b[i]) * float64(b[i])
		}
		return d / math.Sqrt(na*nb)
	}
	correct := map[string]int{}
	total := map[string]int{}
	for i, it := range items {
		best, bestJ := -2.0, -1
		for j, jt := range items {
			if i == j {
				continue
			}
			if s := cos(it.vec, jt.vec); s > best {
				best, bestJ = s, j
			}
		}
		suffix := it.label[strings.LastIndex(it.label, "."):]
		total[suffix]++
		if items[bestJ].label == it.label {
			correct[suffix]++
		}
	}
	posAcc := float64(correct[".position"]) / float64(total[".position"])
	if posAcc < 0.5 {
		t.Fatalf("position columns 1-NN accuracy = %.2f, want ≥0.5 (encoder broken?)", posAcc)
	}
	nameAcc := float64(correct[".name"]) / float64(total[".name"])
	if nameAcc > posAcc {
		t.Fatalf("shared-pool name columns (%.2f) should be harder than positions (%.2f)", nameAcc, posAcc)
	}
}
