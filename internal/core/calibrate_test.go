package core

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/sematype/pythagoras/internal/eval"
)

func TestCalibrateTemperature(t *testing.T) {
	c := tinyCorpus(40)
	enc := tinyEncoder()
	rng := rand.New(rand.NewSource(1))
	train, val, test := eval.TrainValTestSplit(len(c.Tables), rng)
	cfg := tinyConfig(enc)
	cfg.Epochs = 10
	m, err := Train(c, train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Temperature() != 1 {
		t.Fatal("uncalibrated temperature must be 1")
	}

	temp, err := m.CalibrateTemperature(c, val)
	if err != nil {
		t.Fatal(err)
	}
	if temp <= 0 || temp > 8 {
		t.Fatalf("temperature = %v out of range", temp)
	}
	if m.Temperature() != temp {
		t.Fatal("temperature not stored")
	}

	// Calibration must not change argmax predictions.
	before, _ := m.Evaluate(c, test)
	preds := m.PredictTable(c.Tables[test[0]])
	m.temperature = 1
	plain := m.PredictTable(c.Tables[test[0]])
	m.temperature = temp
	for i := range preds {
		if preds[i].Type != plain[i].Type {
			t.Fatal("temperature scaling changed the argmax")
		}
	}
	after, _ := m.Evaluate(c, test)
	if before.Overall.WeightedF1 != after.Overall.WeightedF1 {
		t.Fatalf("calibration must not affect F1: before=%v after=%v",
			before.Overall.WeightedF1, after.Overall.WeightedF1)
	}
}

func TestCalibrateTemperaturePersisted(t *testing.T) {
	c := tinyCorpus(22)
	enc := tinyEncoder()
	cfg := tinyConfig(enc)
	cfg.Epochs = 2
	m, err := Train(c, []int{0, 1, 2, 3}, []int{4, 5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CalibrateTemperature(c, []int{4, 5}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf, Config{Encoder: enc})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Temperature() != m.Temperature() {
		t.Fatalf("temperature lost on reload: %v vs %v", m2.Temperature(), m.Temperature())
	}
}

func TestCalibrateTemperatureNoValData(t *testing.T) {
	c := tinyCorpus(12)
	enc := tinyEncoder()
	cfg := tinyConfig(enc)
	cfg.Epochs = 1
	m, err := Train(c, []int{0, 1}, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CalibrateTemperature(c, nil); err == nil {
		t.Fatal("calibration with no data must error")
	}
}
