// Package core implements the Pythagoras model (paper §3): a frozen
// language model producing initial node representations, a subnetwork
// embedding the 192 statistical features of numeric columns, a
// heterogeneous GNN exchanging contextual information along the table
// graph's typed edges, and a final classification layer over the corpus's
// semantic types. Training follows §4.2: Adam with a linear-decay schedule
// and no warm-up, cross-entropy loss, early stopping on validation
// weighted F1, and checkpoint restoration of the best epoch.
package core

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/sematype/pythagoras/internal/autodiff"
	"github.com/sematype/pythagoras/internal/colfeat"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/faultinject"
	"github.com/sematype/pythagoras/internal/features"
	"github.com/sematype/pythagoras/internal/gnn"
	"github.com/sematype/pythagoras/internal/graph"
	"github.com/sematype/pythagoras/internal/lm"
	"github.com/sematype/pythagoras/internal/nn"
	"github.com/sematype/pythagoras/internal/obs"
	"github.com/sematype/pythagoras/internal/par"
	"github.com/sematype/pythagoras/internal/table"
	"github.com/sematype/pythagoras/internal/tensor"
)

// Config controls model geometry and training.
type Config struct {
	// Encoder is the frozen LM shared by all graph nodes. Required.
	Encoder *lm.Encoder
	// GNNLayers stacks that many heterogeneous conv layers (default 2; one
	// layer injects all direct context, the second composes it — e.g. a
	// numeric column seeing a text column that has already absorbed the
	// table name).
	GNNLayers int
	// HiddenDim is the GNN hidden width (0 = the encoder width). Widening
	// it beyond the encoder relieves the classifier bottleneck when the
	// type vocabulary is large.
	HiddenDim int
	// LearningRate is Adam's initial rate, decayed linearly to zero over
	// Epochs with no warm-up (paper: 1e-5 at BERT scale; our default 3e-3
	// suits the smaller default width).
	LearningRate float64
	Epochs       int
	// BatchSize is the number of tables whose graphs are unioned per step.
	BatchSize int
	// Patience is the early-stopping patience in epochs (<= 0 selects the
	// default of 30; to disable early stopping set Patience >= Epochs).
	Patience int
	Dropout  float64
	Seed     int64
	// TrainWorkers bounds the trainer's parallelism: the prepare fan-out,
	// the data-parallel forward/backward passes within each optimizer step,
	// and validation scoring between epochs (0 or negative = NumCPU, 1 =
	// serial). The trained parameters are bit-identical at every worker
	// count — the trainer's decomposition and gradient-merge order do not
	// depend on it (DESIGN.md §10).
	TrainWorkers int
	// Faults, when non-nil, arms fault-injection points at the trainer's
	// stage boundaries (prepare/step/merge/val) — test support for the
	// cancellation chaos suite, never set in production.
	Faults *faultinject.Set
	// Graph carries the ablation switches (Table 4) and serialization
	// options.
	Graph graph.BuildOptions
	// PlainLMStates disables the enriched initial column embeddings
	// (frozen char-profile projection + mean token embedding added to the
	// LM CLS vector). The paper's footnote 3 leaves the initial embedding
	// method open; the enrichment compensates for the pseudo-BERT being a
	// weaker feature extractor than real BERT (DESIGN.md §2).
	PlainLMStates bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// Metrics, when set, receives per-epoch training telemetry through the
	// same registry the serving path uses (DESIGN.md §8): train.epoch,
	// train.loss and train.val.weighted_f1 gauges, the train.epoch.seconds
	// histogram and the train.steps counter.
	Metrics *obs.Registry
}

// DefaultConfig returns the training configuration used by the experiment
// harness at reduced scale.
func DefaultConfig(enc *lm.Encoder) Config {
	return Config{
		Encoder:      enc,
		GNNLayers:    2,
		LearningRate: 1e-2,
		Epochs:       150,
		BatchSize:    8,
		Patience:     30,
		Dropout:      0.1,
		Seed:         1,
	}
}

// Model is a trained Pythagoras classifier.
type Model struct {
	cfg        Config
	enc        *lm.Encoder
	params     *nn.Params
	subnet     *nn.Linear // features.Dim → hidden (the paper's subnetwork)
	stack      *gnn.Stack
	classifier *nn.Linear
	types      []string
	labelIndex map[string]int
	// featMean/featStd standardize the 192 statistical features, fitted on
	// the training split (and persisted with the model).
	featMean, featStd []float64
	// lmMean/lmStd whiten the frozen initial node states: CLS vectors share
	// a large common component (CLS token + layer-norm geometry) that
	// drowns the discriminative directions; per-dim standardization fitted
	// on the training split restores them. Persisted with the model.
	lmMean, lmStd []float64
	// temperature is the calibrated softmax temperature (0 = uncalibrated,
	// treated as 1). See CalibrateTemperature.
	temperature float64
	// tapePool recycles inference tapes (and their op/arena/Var storage)
	// across InferLogits/InferProbs calls: a gradient-free forward re-runs
	// the same shapes over and over, so the second call on a pooled tape
	// allocates nothing. Outputs are cloned out of the arena before the
	// tape is returned (see inferTape/releaseTape).
	tapePool sync.Pool
}

// inferTape takes a reusable tape from the pool (or builds a fresh one).
func (m *Model) inferTape() *autodiff.Tape {
	if t, ok := m.tapePool.Get().(*autodiff.Tape); ok {
		return t
	}
	return autodiff.NewTape()
}

// releaseTape recycles the tape's storage and pools it. Every matrix the
// forward produced becomes invalid — callers must have cloned anything they
// return.
func (m *Model) releaseTape(t *autodiff.Tape) {
	t.Reset()
	m.tapePool.Put(t)
}

// stateDim returns the width of initial node states: the LM CLS vector
// alone (PlainLMStates), or CLS ‖ char-profile ‖ mean-token-embedding —
// block concatenation keeps each frozen signal separable for the first GNN
// layer, mirroring Sherlock's grouped subnetworks (DESIGN.md §5).
func (m *Model) stateDim() int {
	if m.cfg.PlainLMStates {
		return m.enc.Dim()
	}
	return 2*m.enc.Dim() + colfeat.CharProfileDim
}

// Types returns the semantic-type vocabulary (class index order).
func (m *Model) Types() []string { return m.types }

// Params exposes the trainable parameters (persistence, inspection).
func (m *Model) Params() *nn.Params { return m.params }

// Encoder exposes the frozen LM encoder (observability: its cache gauges
// are registered alongside the inference engine's stage metrics).
func (m *Model) Encoder() *lm.Encoder { return m.enc }

// newModel builds an untrained model for the vocabulary.
func newModel(cfg Config, types []string) *Model {
	if cfg.Encoder == nil {
		panic("core: Config.Encoder is required")
	}
	if cfg.GNNLayers <= 0 {
		cfg.GNNLayers = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hidden := cfg.Encoder.Dim()
	p := nn.NewParams()
	m := &Model{
		cfg:    cfg,
		enc:    cfg.Encoder,
		params: p,
		types:  append([]string(nil), types...),
	}
	m.labelIndex = make(map[string]int, len(types))
	for i, st := range m.types {
		m.labelIndex[st] = i
	}
	encDim := hidden
	if cfg.HiddenDim > 0 {
		hidden = cfg.HiddenDim
	}
	_ = encDim
	stateDim := m.stateDim()
	m.subnet = nn.NewLinear(p, "subnet", features.Dim, stateDim, rng)
	dims := make([]int, cfg.GNNLayers+1)
	dims[0] = stateDim
	for i := 1; i < len(dims); i++ {
		dims[i] = hidden
	}
	m.stack = gnn.NewStack(p, "gnn", dims, rng)
	m.classifier = nn.NewLinear(p, "classifier", hidden, len(types), rng)
	return m
}

// Prepared caches everything per table that does not change across epochs:
// the graph, the frozen-LM states of text-bearing nodes, and the raw
// feature rows of V_ncf nodes. It is the unit of work flowing between the
// staged-inference pipeline's Encode and Forward stages (internal/infer):
// Prepared values are immutable once built and may be unioned into batches.
type Prepared struct {
	Graph *graph.Graph
	// LMStates is NumNodes×stateDim; V_ncf rows are zero (they are filled
	// by the subnetwork inside the tape).
	LMStates *tensor.Matrix
	// FeatRows is len(NCFIdx)×features.Dim.
	FeatRows *tensor.Matrix
	// NCFIdx lists the graph node indices of V_ncf nodes, aligned with
	// FeatRows rows.
	NCFIdx []int
}

// BuildGraph is stage 1 of the inference pipeline: it converts a table into
// the heterogeneous table graph under the model's vocabulary and graph
// options. It is a pure function of its inputs and safe for concurrent use.
func (m *Model) BuildGraph(t *table.Table) *graph.Graph {
	return graph.Build(t, m.labelIndex, m.cfg.Graph)
}

// Encode is stage 2 of the inference pipeline: it fills the frozen-LM node
// states (plus the enriched char-profile/token-mean blocks) and the
// standardized feature rows for a graph built from t. Safe for concurrent
// use — the encoder cache is internally synchronized and the model's fitted
// scalings are read-only after training.
func (m *Model) Encode(t *table.Table, g *graph.Graph) *Prepared {
	p := &Prepared{Graph: g, LMStates: tensor.New(g.NumNodes(), m.stateDim())}
	var featData [][]float64
	for i, nt := range g.Types {
		if nt == graph.NodeNumericFeatures {
			p.NCFIdx = append(p.NCFIdx, i)
			featData = append(featData, g.Feats[i])
			continue
		}
		row := p.LMStates.Row(i)
		// The float32→float64 tape boundary: frozen-encoder output widens
		// exactly once, here, as it enters float64 training state.
		for j, x := range m.enc.Encode(g.Texts[i]) {
			row[j] = float64(x)
		}
		if !m.cfg.PlainLMStates {
			var vals []string
			if ci := g.Meta[i].ColIndex; ci >= 0 {
				vals = t.Columns[ci].ValueStrings(0)
			} else {
				vals = []string{t.Name}
			}
			m.fillRichBlocks(row, vals)
		}
	}
	if len(featData) > 0 {
		p.FeatRows = tensor.FromRows(featData)
	} else {
		p.FeatRows = tensor.New(0, features.Dim)
	}
	m.standardize(p.FeatRows)
	m.whitenStates(p)
	return p
}

// Prepare runs stages 1–2 (BuildGraph + Encode) on one table.
func (m *Model) Prepare(t *table.Table) *Prepared {
	return m.Encode(t, m.BuildGraph(t))
}

// PrepareForPrediction prepares an unlabeled table: gold semantic types are
// not required (missing ones get placeholders before graph construction).
// The input table is not modified.
func (m *Model) PrepareForPrediction(t *table.Table) *Prepared {
	work := &table.Table{Name: t.Name, ID: t.ID}
	for _, c := range t.Columns {
		cc := *c
		if cc.SemanticType == "" {
			cc.SemanticType = "?"
		}
		work.Columns = append(work.Columns, &cc)
	}
	return m.Prepare(work)
}

// whitenStates applies the fitted node-state standardization in place
// (no-op before fitStateScaling runs). V_ncf rows stay zero — they are
// filled by the subnetwork inside the tape.
func (m *Model) whitenStates(p *Prepared) {
	if m.lmMean == nil {
		return
	}
	ncf := map[int]bool{}
	for _, i := range p.NCFIdx {
		ncf[i] = true
	}
	for i := 0; i < p.LMStates.Rows; i++ {
		if ncf[i] {
			continue
		}
		row := p.LMStates.Row(i)
		for j := range row {
			row[j] = (row[j] - m.lmMean[j]) / m.lmStd[j]
		}
	}
}

// fitStateScaling computes per-dim mean/std of the frozen node states over
// the prepared training tables and whitens them in place.
func (m *Model) fitStateScaling(ps []*Prepared) {
	dim := m.stateDim()
	mean := make([]float64, dim)
	std := make([]float64, dim)
	n := 0
	for _, p := range ps {
		ncf := map[int]bool{}
		for _, i := range p.NCFIdx {
			ncf[i] = true
		}
		for i := 0; i < p.LMStates.Rows; i++ {
			if ncf[i] {
				continue
			}
			for j, v := range p.LMStates.Row(i) {
				mean[j] += v
			}
			n++
		}
	}
	if n == 0 {
		return
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	for _, p := range ps {
		ncf := map[int]bool{}
		for _, i := range p.NCFIdx {
			ncf[i] = true
		}
		for i := 0; i < p.LMStates.Rows; i++ {
			if ncf[i] {
				continue
			}
			for j, v := range p.LMStates.Row(i) {
				d := v - mean[j]
				std[j] += d * d
			}
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(n))
		if std[j] < 1e-6 {
			std[j] = 1
		}
	}
	m.lmMean, m.lmStd = mean, std
	for _, p := range ps {
		m.whitenStates(p)
	}
}

// fillRichBlocks writes the char-profile and mean-token-embedding blocks
// of a node's initial state (the CLS block is already in place).
func (m *Model) fillRichBlocks(row []float64, vals []string) {
	encDim := m.enc.Dim()
	// block 2: character profile
	copy(row[encDim:encDim+colfeat.CharProfileDim], colfeat.CharProfile(vals))
	// block 3: mean token embedding
	meanBlock := row[encDim+colfeat.CharProfileDim:]
	count := 0
	for _, v := range vals {
		for _, tok := range m.enc.Tokenize(v) {
			emb := m.enc.TokenEmbedding(tok)
			for i, x := range emb {
				meanBlock[i] += float64(x)
			}
			count++
		}
	}
	if count > 0 {
		inv := 1 / float64(count)
		for i := range meanBlock {
			meanBlock[i] *= inv
		}
	}
}

// standardize applies the fitted feature scaling in place (no-op before
// fitFeatureScaling runs).
func (m *Model) standardize(rows *tensor.Matrix) {
	if m.featMean == nil {
		return
	}
	for i := 0; i < rows.Rows; i++ {
		row := rows.Row(i)
		for j := range row {
			row[j] = (row[j] - m.featMean[j]) / m.featStd[j]
		}
	}
}

// fitFeatureScaling computes per-feature mean/std over the prepared
// training tables and standardizes them in place.
func (m *Model) fitFeatureScaling(ps []*Prepared) {
	mean := make([]float64, features.Dim)
	std := make([]float64, features.Dim)
	n := 0
	for _, p := range ps {
		for i := 0; i < p.FeatRows.Rows; i++ {
			row := p.FeatRows.Row(i)
			for j, v := range row {
				mean[j] += v
			}
			n++
		}
	}
	if n == 0 {
		return
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	for _, p := range ps {
		for i := 0; i < p.FeatRows.Rows; i++ {
			row := p.FeatRows.Row(i)
			for j, v := range row {
				d := v - mean[j]
				std[j] += d * d
			}
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(n))
		if std[j] < 1e-6 {
			std[j] = 1
		}
	}
	m.featMean, m.featStd = mean, std
	for _, p := range ps {
		m.standardize(p.FeatRows)
	}
}

// UnionPrepared merges prepared tables into one disjoint-union batch — the
// same mechanism the training loop uses to form minibatches, reused by the
// inference engine to amortize one forward pass over many tables. Node
// indices (and NCFIdx) of table k are offset by the node counts of tables
// 0..k-1, so per-table slices of the union output can be recovered from the
// inputs' NumNodes.
func UnionPrepared(ps []*Prepared) *Prepared {
	graphs := make([]*graph.Graph, len(ps))
	lms := make([]*tensor.Matrix, len(ps))
	feats := make([]*tensor.Matrix, len(ps))
	out := &Prepared{}
	offset := 0
	for i, p := range ps {
		graphs[i] = p.Graph
		lms[i] = p.LMStates
		feats[i] = p.FeatRows
		for _, idx := range p.NCFIdx {
			out.NCFIdx = append(out.NCFIdx, idx+offset)
		}
		offset += p.Graph.NumNodes()
	}
	out.Graph = graph.Union(graphs...)
	out.LMStates = tensor.ConcatRows(lms...)
	out.FeatRows = tensor.ConcatRows(feats...)
	return out
}

// forward runs the model over a prepared batch, returning target logits and
// the target node list. A nil grads selects inference mode: parameters
// enter the tape as constants, so no gradient buffers are allocated and no
// backward closures are recorded.
func (m *Model) forward(tape *autodiff.Tape, grads *nn.GradSet, p *Prepared, rng *rand.Rand, training bool) (*autodiff.Var, []int) {
	// Initial states: frozen-LM rows plus subnetwork output scattered into
	// the V_ncf rows.
	base := tape.Constant(p.LMStates)
	h := base
	if p.FeatRows.Rows > 0 {
		sw := nn.ParamVar(tape, grads, "subnet.w", m.subnet.W)
		sb := nn.ParamVar(tape, grads, "subnet.b", m.subnet.B)
		sub := tape.AddRow(tape.MatMul(tape.Constant(p.FeatRows), sw), sb)
		h = tape.Add(base, tape.ScatterAddRows(sub, p.NCFIdx, p.Graph.NumNodes()))
	}

	h = m.stack.Apply(tape, grads, h, p.Graph, true)
	h = tape.Dropout(h, m.cfg.Dropout, rng, training)

	targets := p.Graph.TargetNodes()
	ht := tape.GatherRows(h, targets)
	cw := nn.ParamVar(tape, grads, "classifier.w", m.classifier.W)
	cb := nn.ParamVar(tape, grads, "classifier.b", m.classifier.B)
	logits := tape.AddRow(tape.MatMul(ht, cw), cb)
	return logits, targets
}

// InferLogits is stage 3 of the inference pipeline: one gradient-free
// forward pass over a prepared (possibly unioned) batch. It returns the raw
// logits (targets×classes) and the target node indices into p.Graph. Safe
// for concurrent use — each call checks a private tape out of the model's
// pool and the parameters are read-only. The returned matrix is freshly
// allocated and owned by the caller (the tape's arena-backed intermediate
// is cloned out before the tape is recycled).
func (m *Model) InferLogits(p *Prepared) (*tensor.Matrix, []int) {
	tape := m.inferTape()
	logits, targets := m.forward(tape, nil, p, nil, false)
	out := logits.Value.Clone()
	m.releaseTape(tape)
	return out, targets
}

// InferProbs runs InferLogits and converts the logits to calibrated
// probabilities (temperature-scaled softmax). The returned matrix is owned
// by the caller.
func (m *Model) InferProbs(p *Prepared) (*tensor.Matrix, []int) {
	tape := m.inferTape()
	logits, targets := m.forward(tape, nil, p, nil, false)
	if t := m.Temperature(); t != 1 {
		logits = tape.Scale(logits, 1/t)
	}
	probs := tape.Softmax(logits)
	out := probs.Value.Clone()
	m.releaseTape(tape)
	return out, targets
}

// Train fits Pythagoras on the corpus using the given table index splits.
// It is TrainCtx under a background context (not cancellable).
func Train(c *data.Corpus, trainIdx, valIdx []int, cfg Config) (*Model, error) {
	return TrainCtx(context.Background(), c, trainIdx, valIdx, cfg)
}

// defaultPatience is applied when Config.Patience is unset: without it a
// zero-value Config handed NewEarlyStopper a patience of 0, which aborts at
// the first non-improving epoch.
const defaultPatience = 30

// valChunk caps how many validation tables are unioned into one scoring
// forward — the inference engine's default maxBatch.
const valChunk = 16

// TrainCtx fits Pythagoras on the corpus using the given table index
// splits, with the deterministic data-parallel pipeline (DESIGN.md §10):
//
//   - Prepare of train/val tables fans out over cfg.TrainWorkers workers.
//   - Each optimizer step decomposes its shuffled minibatch into per-table
//     sub-batches, runs forward/backward on each with a private tape,
//     GradSet and dropout RNG (seeded from (Seed, step, sub-index) only),
//     then merges the loss-weighted gradients in fixed sub-index order and
//     applies a single Adam update.
//   - Validation scoring between epochs runs as chunked union forwards in
//     parallel.
//
// Because no part of the decomposition, RNG seeding or merge order depends
// on the worker count or on scheduling, the trained parameters are
// bit-identical at any TrainWorkers — the training-side counterpart of the
// inference engine's union-forward identity.
//
// Cancellation is observed before every stage and before each work item a
// worker claims (partial-work drain, exactly as in serving): a cancelled
// context aborts training and returns the context's error.
func TrainCtx(ctx context.Context, c *data.Corpus, trainIdx, valIdx []int, cfg Config) (*Model, error) {
	if len(trainIdx) == 0 {
		return nil, fmt.Errorf("core: empty training split")
	}
	m := newModel(cfg, c.Types)
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	workers := cfg.TrainWorkers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	patience := cfg.Patience
	if patience <= 0 {
		patience = defaultPatience
	}

	// Training telemetry flows through the same registry shape the serving
	// path uses; all handles are nil (free no-ops) when cfg.Metrics is unset.
	epochGauge := cfg.Metrics.Gauge("train.epoch")
	lossGauge := cfg.Metrics.Gauge("train.loss")
	valF1Gauge := cfg.Metrics.Gauge("train.val.weighted_f1")
	epochHist := cfg.Metrics.Histogram("train.epoch.seconds", nil)
	stepCounter := cfg.Metrics.Counter("train.steps")
	prepHist := cfg.Metrics.Histogram("train.prepare.seconds", nil)
	fbHist := cfg.Metrics.Histogram("train.fb.seconds", nil)
	mergeHist := cfg.Metrics.Histogram("train.merge.seconds", nil)
	valHist := cfg.Metrics.Histogram("train.val.seconds", nil)

	logf("pythagoras: preparing %d train / %d val tables (%d workers)",
		len(trainIdx), len(valIdx), workers)
	prepare := func(prep []*Prepared, idx []int) error {
		return par.For(ctx, workers, len(idx), func(i int) error {
			if err := cfg.Faults.Fire(ctx, faultinject.TrainPrepare); err != nil {
				return err
			}
			t0 := time.Now()
			prep[i] = m.Prepare(c.Tables[idx[i]])
			prepHist.Since(t0)
			return nil
		})
	}
	trainPrep := make([]*Prepared, len(trainIdx))
	if err := prepare(trainPrep, trainIdx); err != nil {
		return nil, err
	}
	// The scaling fits run serially after the parallel prepare: their
	// accumulation order (table index order) is part of the determinism
	// contract.
	m.fitFeatureScaling(trainPrep)
	m.fitStateScaling(trainPrep)
	valPrep := make([]*Prepared, len(valIdx))
	if err := prepare(valPrep, valIdx); err != nil {
		return nil, err
	}

	// The shuffle RNG is dedicated: dropout masks come from per-sub-batch
	// RNGs seeded by (Seed, step, sub-index), so the epoch's table order and
	// the masks are both independent of how work lands on workers.
	shuffleRng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(cfg.LearningRate)
	stopper := nn.NewEarlyStopper(patience)
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 16
	}
	totalSteps := cfg.Epochs * ((len(trainPrep) + batch - 1) / batch)
	step := 0

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochStart := time.Now()
		shuffleRng.Shuffle(len(trainPrep), func(i, j int) { trainPrep[i], trainPrep[j] = trainPrep[j], trainPrep[i] })
		var epochLoss float64
		var steps int
		for at := 0; at < len(trainPrep); at += batch {
			end := at + batch
			if end > len(trainPrep) {
				end = len(trainPrep)
			}
			if err := trainGate(ctx, cfg.Faults, faultinject.TrainStep); err != nil {
				return nil, err
			}
			stepLoss, err := m.trainStep(ctx, trainPrep[at:end], opt, cfg, workers, step, totalSteps, fbHist, mergeHist)
			if err != nil {
				return nil, err
			}
			step++
			stepCounter.Inc()
			epochLoss += stepLoss
			steps++
		}
		epochGauge.Set(float64(epoch))
		lossGauge.Set(epochLoss / float64(steps))
		epochHist.Since(epochStart)

		if len(valPrep) > 0 {
			if err := trainGate(ctx, cfg.Faults, faultinject.TrainVal); err != nil {
				return nil, err
			}
			t0 := time.Now()
			split, err := m.scorePreparedCtx(ctx, valPrep, workers)
			if err != nil {
				return nil, err
			}
			valHist.Since(t0)
			valF1 := split.Overall.WeightedF1
			valF1Gauge.Set(valF1)
			logf("pythagoras: epoch %d loss=%.4f val-wF1=%.4f", epoch, epochLoss/float64(steps), valF1)
			if stopper.Observe(epoch, valF1, m.params) {
				best, bestEpoch := stopper.Best()
				logf("pythagoras: early stop at epoch %d (best %.4f @ %d)", epoch, best, bestEpoch)
				break
			}
		} else {
			logf("pythagoras: epoch %d loss=%.4f", epoch, epochLoss/float64(steps))
		}
	}
	if len(valPrep) > 0 && !stopper.RestoreBest(m.params) {
		logf("pythagoras: warning: no early-stop snapshot was ever taken "+
			"(validation metric never finite: %d NaN epochs); keeping final-epoch parameters",
			stopper.NaNsSeen())
	}
	return m, nil
}

// trainGate is the trainer's per-stage interruption check: context first,
// then any armed fault. Both are one branch each when unset.
func trainGate(ctx context.Context, fs *faultinject.Set, p faultinject.Point) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return fs.Fire(ctx, p)
}

// trainStep runs one data-parallel optimizer step over the minibatch bp.
//
// Decomposition: each table of the minibatch is its own sub-batch — a unit
// that depends only on the (already deterministic) shuffle, never on the
// worker count. Every sub-batch gets a private tape, GradSet and dropout
// RNG; its loss is scaled on the tape by labeled_k/labeled_total so that
// the summed sub-gradients equal the gradient of the minibatch's pooled
// mean cross-entropy (what the serial union forward computed). The partial
// gradients are then merged in sub-index order (nn.MergeGradSets), clipped,
// and applied as a single Adam update.
//
// It returns the minibatch loss (the weighted sum of sub-losses, summed in
// sub-index order — reproducible to the bit).
func (m *Model) trainStep(ctx context.Context, bp []*Prepared, opt nn.Optimizer, cfg Config, workers, step, totalSteps int, fbHist, mergeHist *obs.Histogram) (float64, error) {
	// Per-sub-batch labels and labeled-row counts, computed up front: the
	// loss weights must be in hand before the parallel section starts.
	labels := make([][]int, len(bp))
	totalLabeled := 0
	for si, p := range bp {
		targets := p.Graph.TargetNodes()
		ls := make([]int, len(targets))
		for i, n := range targets {
			ls[i] = p.Graph.Labels[n]
			if ls[i] >= 0 {
				totalLabeled++
			}
		}
		labels[si] = ls
	}
	denom := float64(totalLabeled)
	if totalLabeled == 0 {
		denom = 1 // all-unlabeled minibatch: zero loss, zero gradients
	}

	grads := make([]*nn.GradSet, len(bp))
	losses := make([]float64, len(bp))
	// Each sub-batch checks a recycled tape out of the model pool; par.For
	// hands every index to exactly one goroutine, so tapes[si] has a single
	// writer. The tapes are NOT released inside the loop: the GradSets point
	// at arena-backed gradient matrices, which must survive until
	// MergeGradSets has copied them into fresh storage below.
	tapes := make([]*autodiff.Tape, len(bp))
	err := par.For(ctx, workers, len(bp), func(si int) error {
		t0 := time.Now()
		p := bp[si]
		labeled := 0
		for _, l := range labels[si] {
			if l >= 0 {
				labeled++
			}
		}
		tape := m.inferTape()
		tapes[si] = tape
		gs := nn.NewGradSet()
		rng := rand.New(rand.NewSource(subBatchSeed(cfg.Seed, step, si)))
		logits, _ := m.forward(tape, gs, p, rng, true)
		loss := tape.SoftmaxCrossEntropy(logits, labels[si], nil)
		scaled := tape.Scale(loss, float64(labeled)/denom)
		tape.Backward(scaled)
		grads[si] = gs
		losses[si] = scaled.Value.Data[0]
		fbHist.Since(t0)
		return nil
	})
	if err != nil {
		return 0, err
	}
	if err := trainGate(ctx, cfg.Faults, faultinject.TrainMerge); err != nil {
		return 0, err
	}
	t0 := time.Now()
	merged := nn.MergeGradSets(grads)
	for _, tp := range tapes {
		if tp != nil {
			m.releaseTape(tp)
		}
	}
	merged.ClipByGlobalNorm(5)
	opt.SetLR(nn.LinearDecay(cfg.LearningRate, step, totalSteps))
	opt.Step(m.params, merged)
	mergeHist.Since(t0)
	var stepLoss float64
	for _, l := range losses {
		stepLoss += l
	}
	return stepLoss, nil
}

// subBatchSeed derives the dropout RNG seed of one sub-batch from the run
// seed, the optimizer step and the sub-batch index — and nothing else, so
// masks are reproducible at any worker count. SplitMix64 finalizer for
// decorrelation between adjacent (step, sub) pairs.
func subBatchSeed(seed int64, step, sub int) int64 {
	h := uint64(seed) ^ 0x9E3779B97F4A7C15*uint64(step+1) ^ 0xBF58476D1CE4E5B9*uint64(sub+1)
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return int64(h)
}

// scorePrepared evaluates prepared tables (no dropout, no grads) serially.
func (m *Model) scorePrepared(ps []*Prepared) *eval.Split {
	split, _ := m.scorePreparedCtx(context.Background(), ps, 1)
	return split
}

// scorePreparedCtx evaluates prepared tables in parallel: the tables are
// chunked (never more than valChunk per union), each chunk scored with one
// gradient-free union forward, and the per-chunk predictions concatenated
// in chunk order. Chunk boundaries depend on the worker count but the
// predictions do not: a union forward is bit-identical to the per-table
// forwards it replaces, so the resulting metrics are worker-count
// independent — which matters, because the validation F1 feeds the early
// stopper and thereby the final parameters.
func (m *Model) scorePreparedCtx(ctx context.Context, ps []*Prepared, workers int) (*eval.Split, error) {
	bounds := par.Bounds(len(ps), workers, valChunk)
	chunkPreds := make([][]eval.Prediction, len(bounds))
	err := par.For(ctx, workers, len(bounds), func(ci int) error {
		lo, hi := bounds[ci][0], bounds[ci][1]
		p := ps[lo]
		if hi-lo > 1 {
			p = UnionPrepared(ps[lo:hi])
		}
		chunkPreds[ci] = m.LabeledPredictions(p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var preds []eval.Prediction
	for _, cp := range chunkPreds {
		preds = append(preds, cp...)
	}
	return eval.ComputeSplit(preds), nil
}

// LabeledPredictions runs an inference forward pass over a prepared batch
// and returns one eval.Prediction per labeled target node, in ascending
// node order. It is the shared scoring primitive behind Evaluate and the
// inference engine's batched evaluation.
func (m *Model) LabeledPredictions(p *Prepared) []eval.Prediction {
	logits, targets := m.InferLogits(p)
	var preds []eval.Prediction
	for i, n := range targets {
		if p.Graph.Labels[n] < 0 {
			continue
		}
		preds = append(preds, eval.Prediction{
			True:    p.Graph.Labels[n],
			Pred:    logits.ArgMaxRow(i),
			Numeric: p.Graph.Meta[n].Kind == table.KindNumeric,
		})
	}
	return preds
}

// Evaluate scores the model on the given tables of a corpus, returning the
// paper's per-kind metrics and the raw predictions.
func (m *Model) Evaluate(c *data.Corpus, idx []int) (*eval.Split, []eval.Prediction) {
	var preds []eval.Prediction
	for _, ti := range idx {
		preds = append(preds, m.LabeledPredictions(m.Prepare(c.Tables[ti]))...)
	}
	return eval.ComputeSplit(preds), preds
}

// ColumnPrediction is the user-facing prediction for one column.
type ColumnPrediction struct {
	ColIndex   int
	Header     string
	Kind       table.Kind
	Type       string
	Confidence float64
}

// PredictTable predicts the semantic type of every column of an unlabeled
// table. It runs the same staged pipeline as the batched inference engine
// (internal/infer) on a single table.
func (m *Model) PredictTable(t *table.Table) []ColumnPrediction {
	p := m.PrepareForPrediction(t)
	probs, targets := m.InferProbs(p)
	return m.DecodePredictions(p, probs, targets, 0, len(targets), t)
}

// DecodePredictions converts inference probabilities back into per-column
// predictions for one table. probs/targets are the output of InferProbs
// over a prepared batch; [lo,hi) selects the target rows belonging to t
// (0, len(targets) for a single-table batch), and nodeOffset-relative
// metadata is read from p.Graph. The inference engine uses the range form
// to split a union batch back into per-table results.
func (m *Model) DecodePredictions(p *Prepared, probs *tensor.Matrix, targets []int, lo, hi int, t *table.Table) []ColumnPrediction {
	var out []ColumnPrediction
	for i := lo; i < hi; i++ {
		n := targets[i]
		ci := p.Graph.Meta[n].ColIndex
		cls := probs.ArgMaxRow(i)
		out = append(out, ColumnPrediction{
			ColIndex:   ci,
			Header:     t.Columns[ci].Header,
			Kind:       t.Columns[ci].Kind,
			Type:       m.types[cls],
			Confidence: probs.At(i, cls),
		})
	}
	return out
}

// --- persistence ---

type savedMeta struct {
	Types             []string
	Hidden            int
	HiddenDim         int
	GNNLayers         int
	PlainLMStates     bool
	Graph             graph.BuildOptions
	FeatMean, FeatStd []float64
	LMMean, LMStd     []float64
	Temperature       float64
}

// Save writes the trained parameters and vocabulary to w, prefixed by the
// versioned checkpoint header (see CheckpointVersion). The frozen encoder
// is not serialized — it is fully determined by its Config and is
// re-supplied at Load time.
func (m *Model) Save(w io.Writer) error {
	if err := writeHeader(w, CheckpointVersion); err != nil {
		return fmt.Errorf("core: write checkpoint header: %w", err)
	}
	enc := gob.NewEncoder(w)
	meta := savedMeta{
		Types: m.types, Hidden: m.enc.Dim(), HiddenDim: m.cfg.HiddenDim,
		GNNLayers: m.cfg.GNNLayers, PlainLMStates: m.cfg.PlainLMStates,
		Graph: m.cfg.Graph, FeatMean: m.featMean, FeatStd: m.featStd,
		LMMean: m.lmMean, LMStd: m.lmStd,
		Temperature: m.temperature,
	}
	if err := enc.Encode(meta); err != nil {
		return fmt.Errorf("core: encode meta: %w", err)
	}
	return m.params.EncodeGob(enc)
}

// SaveFile saves the model to a file path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Save(f)
}

// Geometry ceilings for checkpoint metadata. A checkpoint declaring wider
// or deeper geometry than these is corrupt (or adversarial): rejecting it
// up front keeps a fuzzed byte stream from driving newModel into huge
// allocations before the parameter shape checks can catch it.
const (
	maxLoadGNNLayers = 64
	maxLoadHiddenDim = 1 << 16
	maxLoadTypes     = 1 << 20
)

// validateMeta rejects checkpoint metadata whose declared geometry or
// fitted scalings cannot belong to a model this encoder produces — the
// error-not-panic contract FuzzModelLoad enforces.
func validateMeta(meta *savedMeta, encDim int) error {
	switch {
	case len(meta.Types) == 0:
		return fmt.Errorf("core: checkpoint has no semantic types")
	case len(meta.Types) > maxLoadTypes:
		return fmt.Errorf("core: checkpoint declares %d types (max %d)", len(meta.Types), maxLoadTypes)
	case meta.GNNLayers < 0 || meta.GNNLayers > maxLoadGNNLayers:
		return fmt.Errorf("core: checkpoint declares %d GNN layers (max %d)", meta.GNNLayers, maxLoadGNNLayers)
	case meta.HiddenDim < 0 || meta.HiddenDim > maxLoadHiddenDim:
		return fmt.Errorf("core: checkpoint declares hidden dim %d (max %d)", meta.HiddenDim, maxLoadHiddenDim)
	case math.IsNaN(meta.Temperature) || math.IsInf(meta.Temperature, 0) || meta.Temperature < 0:
		return fmt.Errorf("core: checkpoint temperature %v out of range", meta.Temperature)
	}
	seen := make(map[string]bool, len(meta.Types))
	for _, st := range meta.Types {
		if seen[st] {
			return fmt.Errorf("core: checkpoint declares duplicate type %q", st)
		}
		seen[st] = true
	}
	// The fitted scalings must be absent together or sized together: a
	// half-present pair would silently skip standardization (nil mean) or
	// index out of range inside the hot loops.
	stateDim := 2*encDim + colfeat.CharProfileDim
	if meta.PlainLMStates {
		stateDim = encDim
	}
	checkPair := func(what string, mean, std []float64, want int) error {
		if len(mean) != len(std) {
			return fmt.Errorf("core: checkpoint %s mean/std lengths differ (%d vs %d)", what, len(mean), len(std))
		}
		if len(mean) != 0 && len(mean) != want {
			return fmt.Errorf("core: checkpoint %s scaling has %d dims, want %d", what, len(mean), want)
		}
		for _, v := range append(append([]float64(nil), mean...), std...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: checkpoint %s scaling holds a non-finite value", what)
			}
		}
		return nil
	}
	if err := checkPair("feature", meta.FeatMean, meta.FeatStd, features.Dim); err != nil {
		return err
	}
	return checkPair("state", meta.LMMean, meta.LMStd, stateDim)
}

// Load reads a model saved by Save. cfg supplies the encoder (whose Dim
// must match the saved hidden width) and runtime options. A truncated,
// corrupted or shape-mismatched checkpoint returns an error — never a
// panic, and never a silently half-loaded model (see FuzzModelLoad). A
// checkpoint written by a newer format version returns
// *UnsupportedVersionError.
func Load(r io.Reader, cfg Config) (*Model, error) {
	if _, err := readHeader(r, "checkpoint", CheckpointVersion); err != nil {
		return nil, err
	}
	dec := gob.NewDecoder(r)
	var meta savedMeta
	if err := dec.Decode(&meta); err != nil {
		return nil, fmt.Errorf("core: decode meta: %w", err)
	}
	if cfg.Encoder == nil {
		return nil, fmt.Errorf("core: Load requires Config.Encoder")
	}
	if cfg.Encoder.Dim() != meta.Hidden {
		return nil, fmt.Errorf("core: encoder dim %d != saved hidden %d", cfg.Encoder.Dim(), meta.Hidden)
	}
	if err := validateMeta(&meta, cfg.Encoder.Dim()); err != nil {
		return nil, err
	}
	cfg.GNNLayers = meta.GNNLayers
	cfg.HiddenDim = meta.HiddenDim
	cfg.PlainLMStates = meta.PlainLMStates
	cfg.Graph = meta.Graph
	m := newModel(cfg, meta.Types)
	m.featMean, m.featStd = meta.FeatMean, meta.FeatStd
	m.lmMean, m.lmStd = meta.LMMean, meta.LMStd
	m.temperature = meta.Temperature
	if err := m.params.DecodeGob(dec); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadFile loads a model from a file path.
func LoadFile(path string, cfg Config) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, cfg)
}
