// Package core implements the Pythagoras model (paper §3): a frozen
// language model producing initial node representations, a subnetwork
// embedding the 192 statistical features of numeric columns, a
// heterogeneous GNN exchanging contextual information along the table
// graph's typed edges, and a final classification layer over the corpus's
// semantic types. Training follows §4.2: Adam with a linear-decay schedule
// and no warm-up, cross-entropy loss, early stopping on validation
// weighted F1, and checkpoint restoration of the best epoch.
package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	"github.com/sematype/pythagoras/internal/autodiff"
	"github.com/sematype/pythagoras/internal/colfeat"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/features"
	"github.com/sematype/pythagoras/internal/gnn"
	"github.com/sematype/pythagoras/internal/graph"
	"github.com/sematype/pythagoras/internal/lm"
	"github.com/sematype/pythagoras/internal/nn"
	"github.com/sematype/pythagoras/internal/table"
	"github.com/sematype/pythagoras/internal/tensor"
)

// Config controls model geometry and training.
type Config struct {
	// Encoder is the frozen LM shared by all graph nodes. Required.
	Encoder *lm.Encoder
	// GNNLayers stacks that many heterogeneous conv layers (default 2; one
	// layer injects all direct context, the second composes it — e.g. a
	// numeric column seeing a text column that has already absorbed the
	// table name).
	GNNLayers int
	// HiddenDim is the GNN hidden width (0 = the encoder width). Widening
	// it beyond the encoder relieves the classifier bottleneck when the
	// type vocabulary is large.
	HiddenDim int
	// LearningRate is Adam's initial rate, decayed linearly to zero over
	// Epochs with no warm-up (paper: 1e-5 at BERT scale; our default 3e-3
	// suits the smaller default width).
	LearningRate float64
	Epochs       int
	// BatchSize is the number of tables whose graphs are unioned per step.
	BatchSize int
	// Patience is the early-stopping patience in epochs.
	Patience int
	Dropout  float64
	Seed     int64
	// Graph carries the ablation switches (Table 4) and serialization
	// options.
	Graph graph.BuildOptions
	// PlainLMStates disables the enriched initial column embeddings
	// (frozen char-profile projection + mean token embedding added to the
	// LM CLS vector). The paper's footnote 3 leaves the initial embedding
	// method open; the enrichment compensates for the pseudo-BERT being a
	// weaker feature extractor than real BERT (DESIGN.md §2).
	PlainLMStates bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// DefaultConfig returns the training configuration used by the experiment
// harness at reduced scale.
func DefaultConfig(enc *lm.Encoder) Config {
	return Config{
		Encoder:      enc,
		GNNLayers:    2,
		LearningRate: 1e-2,
		Epochs:       150,
		BatchSize:    8,
		Patience:     30,
		Dropout:      0.1,
		Seed:         1,
	}
}

// Model is a trained Pythagoras classifier.
type Model struct {
	cfg        Config
	enc        *lm.Encoder
	params     *nn.Params
	subnet     *nn.Linear // features.Dim → hidden (the paper's subnetwork)
	stack      *gnn.Stack
	classifier *nn.Linear
	types      []string
	labelIndex map[string]int
	// featMean/featStd standardize the 192 statistical features, fitted on
	// the training split (and persisted with the model).
	featMean, featStd []float64
	// lmMean/lmStd whiten the frozen initial node states: CLS vectors share
	// a large common component (CLS token + layer-norm geometry) that
	// drowns the discriminative directions; per-dim standardization fitted
	// on the training split restores them. Persisted with the model.
	lmMean, lmStd []float64
	// temperature is the calibrated softmax temperature (0 = uncalibrated,
	// treated as 1). See CalibrateTemperature.
	temperature float64
}

// stateDim returns the width of initial node states: the LM CLS vector
// alone (PlainLMStates), or CLS ‖ char-profile ‖ mean-token-embedding —
// block concatenation keeps each frozen signal separable for the first GNN
// layer, mirroring Sherlock's grouped subnetworks (DESIGN.md §5).
func (m *Model) stateDim() int {
	if m.cfg.PlainLMStates {
		return m.enc.Dim()
	}
	return 2*m.enc.Dim() + colfeat.CharProfileDim
}

// Types returns the semantic-type vocabulary (class index order).
func (m *Model) Types() []string { return m.types }

// Params exposes the trainable parameters (persistence, inspection).
func (m *Model) Params() *nn.Params { return m.params }

// newModel builds an untrained model for the vocabulary.
func newModel(cfg Config, types []string) *Model {
	if cfg.Encoder == nil {
		panic("core: Config.Encoder is required")
	}
	if cfg.GNNLayers <= 0 {
		cfg.GNNLayers = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hidden := cfg.Encoder.Dim()
	p := nn.NewParams()
	m := &Model{
		cfg:    cfg,
		enc:    cfg.Encoder,
		params: p,
		types:  append([]string(nil), types...),
	}
	m.labelIndex = make(map[string]int, len(types))
	for i, st := range m.types {
		m.labelIndex[st] = i
	}
	encDim := hidden
	if cfg.HiddenDim > 0 {
		hidden = cfg.HiddenDim
	}
	_ = encDim
	stateDim := m.stateDim()
	m.subnet = nn.NewLinear(p, "subnet", features.Dim, stateDim, rng)
	dims := make([]int, cfg.GNNLayers+1)
	dims[0] = stateDim
	for i := 1; i < len(dims); i++ {
		dims[i] = hidden
	}
	m.stack = gnn.NewStack(p, "gnn", dims, rng)
	m.classifier = nn.NewLinear(p, "classifier", hidden, len(types), rng)
	return m
}

// prepared caches everything per table that does not change across epochs:
// the graph, the frozen-LM states of text-bearing nodes, and the raw
// feature rows of V_ncf nodes.
type prepared struct {
	g *graph.Graph
	// lmStates is NumNodes×hidden; V_ncf rows are zero (they are filled by
	// the subnetwork inside the tape).
	lmStates *tensor.Matrix
	// featRows is len(ncfIdx)×features.Dim.
	featRows *tensor.Matrix
	ncfIdx   []int
}

func (m *Model) prepare(t *table.Table) *prepared {
	g := graph.Build(t, m.labelIndex, m.cfg.Graph)
	p := &prepared{g: g, lmStates: tensor.New(g.NumNodes(), m.stateDim())}
	var featData [][]float64
	for i, nt := range g.Types {
		if nt == graph.NodeNumericFeatures {
			p.ncfIdx = append(p.ncfIdx, i)
			featData = append(featData, g.Feats[i])
			continue
		}
		row := p.lmStates.Row(i)
		copy(row, m.enc.Encode(g.Texts[i]))
		if !m.cfg.PlainLMStates {
			var vals []string
			if ci := g.Meta[i].ColIndex; ci >= 0 {
				vals = t.Columns[ci].ValueStrings(0)
			} else {
				vals = []string{t.Name}
			}
			m.fillRichBlocks(row, vals)
		}
	}
	if len(featData) > 0 {
		p.featRows = tensor.FromRows(featData)
	} else {
		p.featRows = tensor.New(0, features.Dim)
	}
	m.standardize(p.featRows)
	m.whitenStates(p)
	return p
}

// whitenStates applies the fitted node-state standardization in place
// (no-op before fitStateScaling runs). V_ncf rows stay zero — they are
// filled by the subnetwork inside the tape.
func (m *Model) whitenStates(p *prepared) {
	if m.lmMean == nil {
		return
	}
	ncf := map[int]bool{}
	for _, i := range p.ncfIdx {
		ncf[i] = true
	}
	for i := 0; i < p.lmStates.Rows; i++ {
		if ncf[i] {
			continue
		}
		row := p.lmStates.Row(i)
		for j := range row {
			row[j] = (row[j] - m.lmMean[j]) / m.lmStd[j]
		}
	}
}

// fitStateScaling computes per-dim mean/std of the frozen node states over
// the prepared training tables and whitens them in place.
func (m *Model) fitStateScaling(ps []*prepared) {
	dim := m.stateDim()
	mean := make([]float64, dim)
	std := make([]float64, dim)
	n := 0
	for _, p := range ps {
		ncf := map[int]bool{}
		for _, i := range p.ncfIdx {
			ncf[i] = true
		}
		for i := 0; i < p.lmStates.Rows; i++ {
			if ncf[i] {
				continue
			}
			for j, v := range p.lmStates.Row(i) {
				mean[j] += v
			}
			n++
		}
	}
	if n == 0 {
		return
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	for _, p := range ps {
		ncf := map[int]bool{}
		for _, i := range p.ncfIdx {
			ncf[i] = true
		}
		for i := 0; i < p.lmStates.Rows; i++ {
			if ncf[i] {
				continue
			}
			for j, v := range p.lmStates.Row(i) {
				d := v - mean[j]
				std[j] += d * d
			}
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(n))
		if std[j] < 1e-6 {
			std[j] = 1
		}
	}
	m.lmMean, m.lmStd = mean, std
	for _, p := range ps {
		m.whitenStates(p)
	}
}

// fillRichBlocks writes the char-profile and mean-token-embedding blocks
// of a node's initial state (the CLS block is already in place).
func (m *Model) fillRichBlocks(row []float64, vals []string) {
	encDim := m.enc.Dim()
	// block 2: character profile
	copy(row[encDim:encDim+colfeat.CharProfileDim], colfeat.CharProfile(vals))
	// block 3: mean token embedding
	meanBlock := row[encDim+colfeat.CharProfileDim:]
	count := 0
	for _, v := range vals {
		for _, tok := range m.enc.Tokenize(v) {
			emb := m.enc.TokenEmbedding(tok)
			for i, x := range emb {
				meanBlock[i] += x
			}
			count++
		}
	}
	if count > 0 {
		inv := 1 / float64(count)
		for i := range meanBlock {
			meanBlock[i] *= inv
		}
	}
}

// standardize applies the fitted feature scaling in place (no-op before
// fitFeatureScaling runs).
func (m *Model) standardize(rows *tensor.Matrix) {
	if m.featMean == nil {
		return
	}
	for i := 0; i < rows.Rows; i++ {
		row := rows.Row(i)
		for j := range row {
			row[j] = (row[j] - m.featMean[j]) / m.featStd[j]
		}
	}
}

// fitFeatureScaling computes per-feature mean/std over the prepared
// training tables and standardizes them in place.
func (m *Model) fitFeatureScaling(ps []*prepared) {
	mean := make([]float64, features.Dim)
	std := make([]float64, features.Dim)
	n := 0
	for _, p := range ps {
		for i := 0; i < p.featRows.Rows; i++ {
			row := p.featRows.Row(i)
			for j, v := range row {
				mean[j] += v
			}
			n++
		}
	}
	if n == 0 {
		return
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	for _, p := range ps {
		for i := 0; i < p.featRows.Rows; i++ {
			row := p.featRows.Row(i)
			for j, v := range row {
				d := v - mean[j]
				std[j] += d * d
			}
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(n))
		if std[j] < 1e-6 {
			std[j] = 1
		}
	}
	m.featMean, m.featStd = mean, std
	for _, p := range ps {
		m.standardize(p.featRows)
	}
}

// unionPrepared merges prepared tables into one batch.
func unionPrepared(ps []*prepared) *prepared {
	graphs := make([]*graph.Graph, len(ps))
	lms := make([]*tensor.Matrix, len(ps))
	feats := make([]*tensor.Matrix, len(ps))
	out := &prepared{}
	offset := 0
	for i, p := range ps {
		graphs[i] = p.g
		lms[i] = p.lmStates
		feats[i] = p.featRows
		for _, idx := range p.ncfIdx {
			out.ncfIdx = append(out.ncfIdx, idx+offset)
		}
		offset += p.g.NumNodes()
	}
	out.g = graph.Union(graphs...)
	out.lmStates = tensor.ConcatRows(lms...)
	out.featRows = tensor.ConcatRows(feats...)
	return out
}

// forward runs the model over a prepared batch, returning target logits and
// the target node list.
func (m *Model) forward(tape *autodiff.Tape, grads *nn.GradSet, p *prepared, rng *rand.Rand, training bool) (*autodiff.Var, []int) {
	// Initial states: frozen-LM rows plus subnetwork output scattered into
	// the V_ncf rows.
	base := tape.Constant(p.lmStates)
	h := base
	if p.featRows.Rows > 0 {
		sw := grads.Track("subnet.w", tape.Param(m.subnet.W))
		sb := grads.Track("subnet.b", tape.Param(m.subnet.B))
		sub := tape.AddRow(tape.MatMul(tape.Constant(p.featRows), sw), sb)
		h = tape.Add(base, tape.ScatterAddRows(sub, p.ncfIdx, p.g.NumNodes()))
	}

	h = m.stack.Apply(tape, grads, h, p.g, true)
	h = tape.Dropout(h, m.cfg.Dropout, rng, training)

	targets := p.g.TargetNodes()
	ht := tape.GatherRows(h, targets)
	cw := grads.Track("classifier.w", tape.Param(m.classifier.W))
	cb := grads.Track("classifier.b", tape.Param(m.classifier.B))
	logits := tape.AddRow(tape.MatMul(ht, cw), cb)
	return logits, targets
}

// Train fits Pythagoras on the corpus using the given table index splits.
func Train(c *data.Corpus, trainIdx, valIdx []int, cfg Config) (*Model, error) {
	if len(trainIdx) == 0 {
		return nil, fmt.Errorf("core: empty training split")
	}
	m := newModel(cfg, c.Types)
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	logf("pythagoras: preparing %d train / %d val tables", len(trainIdx), len(valIdx))
	trainPrep := make([]*prepared, len(trainIdx))
	for i, ti := range trainIdx {
		trainPrep[i] = m.prepare(c.Tables[ti])
	}
	m.fitFeatureScaling(trainPrep)
	m.fitStateScaling(trainPrep)
	valPrep := make([]*prepared, len(valIdx))
	for i, vi := range valIdx {
		valPrep[i] = m.prepare(c.Tables[vi])
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(cfg.LearningRate)
	stopper := nn.NewEarlyStopper(cfg.Patience)
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 16
	}
	totalSteps := cfg.Epochs * ((len(trainPrep) + batch - 1) / batch)
	step := 0

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(trainPrep), func(i, j int) { trainPrep[i], trainPrep[j] = trainPrep[j], trainPrep[i] })
		var epochLoss float64
		var steps int
		for at := 0; at < len(trainPrep); at += batch {
			end := at + batch
			if end > len(trainPrep) {
				end = len(trainPrep)
			}
			p := unionPrepared(trainPrep[at:end])
			tape := autodiff.NewTape()
			grads := nn.NewGradSet()
			logits, targets := m.forward(tape, grads, p, rng, true)
			labels := make([]int, len(targets))
			for i, n := range targets {
				labels[i] = p.g.Labels[n]
			}
			loss := tape.SoftmaxCrossEntropy(logits, labels, nil)
			tape.Backward(loss)
			grads.ClipByGlobalNorm(5)
			opt.SetLR(nn.LinearDecay(cfg.LearningRate, step, totalSteps))
			opt.Step(m.params, grads)
			step++
			epochLoss += loss.Value.Data[0]
			steps++
		}

		if len(valPrep) > 0 {
			valF1 := m.scorePrepared(valPrep).Overall.WeightedF1
			logf("pythagoras: epoch %d loss=%.4f val-wF1=%.4f", epoch, epochLoss/float64(steps), valF1)
			if stopper.Observe(epoch, valF1, m.params) {
				best, bestEpoch := stopper.Best()
				logf("pythagoras: early stop at epoch %d (best %.4f @ %d)", epoch, best, bestEpoch)
				break
			}
		} else {
			logf("pythagoras: epoch %d loss=%.4f", epoch, epochLoss/float64(steps))
		}
	}
	if len(valPrep) > 0 {
		stopper.RestoreBest(m.params)
	}
	return m, nil
}

// scorePrepared evaluates prepared tables (no dropout, no grads).
func (m *Model) scorePrepared(ps []*prepared) *eval.Split {
	var preds []eval.Prediction
	for _, p := range ps {
		tape := autodiff.NewTape()
		logits, targets := m.forward(tape, nn.NewGradSet(), p, nil, false)
		for i, n := range targets {
			if p.g.Labels[n] < 0 {
				continue
			}
			preds = append(preds, eval.Prediction{
				True:    p.g.Labels[n],
				Pred:    logits.Value.ArgMaxRow(i),
				Numeric: p.g.Meta[n].Kind == table.KindNumeric,
			})
		}
	}
	return eval.ComputeSplit(preds)
}

// Evaluate scores the model on the given tables of a corpus, returning the
// paper's per-kind metrics and the raw predictions.
func (m *Model) Evaluate(c *data.Corpus, idx []int) (*eval.Split, []eval.Prediction) {
	var preds []eval.Prediction
	for _, ti := range idx {
		p := m.prepare(c.Tables[ti])
		tape := autodiff.NewTape()
		logits, targets := m.forward(tape, nn.NewGradSet(), p, nil, false)
		for i, n := range targets {
			if p.g.Labels[n] < 0 {
				continue
			}
			preds = append(preds, eval.Prediction{
				True:    p.g.Labels[n],
				Pred:    logits.Value.ArgMaxRow(i),
				Numeric: p.g.Meta[n].Kind == table.KindNumeric,
			})
		}
	}
	return eval.ComputeSplit(preds), preds
}

// ColumnPrediction is the user-facing prediction for one column.
type ColumnPrediction struct {
	ColIndex   int
	Header     string
	Kind       table.Kind
	Type       string
	Confidence float64
}

// PredictTable predicts the semantic type of every column of an unlabeled
// table.
func (m *Model) PredictTable(t *table.Table) []ColumnPrediction {
	// Build against an empty gold-label requirement: Validate of Table
	// requires types, but prediction must not; fill placeholders.
	work := &table.Table{Name: t.Name, ID: t.ID}
	for _, c := range t.Columns {
		cc := *c
		if cc.SemanticType == "" {
			cc.SemanticType = "?"
		}
		work.Columns = append(work.Columns, &cc)
	}
	p := m.prepare(work)
	tape := autodiff.NewTape()
	logits, targets := m.forward(tape, nn.NewGradSet(), p, nil, false)
	if t := m.Temperature(); t != 1 {
		logits = tape.Scale(logits, 1/t)
	}
	probs := tape.Softmax(logits)

	var out []ColumnPrediction
	for i, n := range targets {
		ci := p.g.Meta[n].ColIndex
		cls := probs.Value.ArgMaxRow(i)
		out = append(out, ColumnPrediction{
			ColIndex:   ci,
			Header:     t.Columns[ci].Header,
			Kind:       t.Columns[ci].Kind,
			Type:       m.types[cls],
			Confidence: probs.Value.At(i, cls),
		})
	}
	return out
}

// --- persistence ---

type savedMeta struct {
	Types             []string
	Hidden            int
	HiddenDim         int
	GNNLayers         int
	PlainLMStates     bool
	Graph             graph.BuildOptions
	FeatMean, FeatStd []float64
	LMMean, LMStd     []float64
	Temperature       float64
}

// Save writes the trained parameters and vocabulary to w. The frozen
// encoder is not serialized — it is fully determined by its Config and is
// re-supplied at Load time.
func (m *Model) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	meta := savedMeta{
		Types: m.types, Hidden: m.enc.Dim(), HiddenDim: m.cfg.HiddenDim,
		GNNLayers: m.cfg.GNNLayers, PlainLMStates: m.cfg.PlainLMStates,
		Graph: m.cfg.Graph, FeatMean: m.featMean, FeatStd: m.featStd,
		LMMean: m.lmMean, LMStd: m.lmStd,
		Temperature: m.temperature,
	}
	if err := enc.Encode(meta); err != nil {
		return fmt.Errorf("core: encode meta: %w", err)
	}
	return m.params.EncodeGob(enc)
}

// SaveFile saves the model to a file path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Save(f)
}

// Load reads a model saved by Save. cfg supplies the encoder (whose Dim
// must match the saved hidden width) and runtime options.
func Load(r io.Reader, cfg Config) (*Model, error) {
	dec := gob.NewDecoder(r)
	var meta savedMeta
	if err := dec.Decode(&meta); err != nil {
		return nil, fmt.Errorf("core: decode meta: %w", err)
	}
	if cfg.Encoder == nil {
		return nil, fmt.Errorf("core: Load requires Config.Encoder")
	}
	if cfg.Encoder.Dim() != meta.Hidden {
		return nil, fmt.Errorf("core: encoder dim %d != saved hidden %d", cfg.Encoder.Dim(), meta.Hidden)
	}
	cfg.GNNLayers = meta.GNNLayers
	cfg.HiddenDim = meta.HiddenDim
	cfg.PlainLMStates = meta.PlainLMStates
	cfg.Graph = meta.Graph
	m := newModel(cfg, meta.Types)
	m.featMean, m.featStd = meta.FeatMean, meta.FeatStd
	m.lmMean, m.lmStd = meta.LMMean, meta.LMStd
	m.temperature = meta.Temperature
	if err := m.params.DecodeGob(dec); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadFile loads a model from a file path.
func LoadFile(path string, cfg Config) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, cfg)
}
