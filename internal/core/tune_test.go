package core

import (
	"math/rand"
	"os"
	"testing"

	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/lm"
)

// TestTuneReducedScale is the harness-tuning sweep used while calibrating
// ReducedScale defaults. It is expensive; set PYTHAGORAS_TUNE=1 to run.
func TestTuneReducedScale(t *testing.T) {
	if os.Getenv("PYTHAGORAS_TUNE") == "" {
		t.Skip("tuning sweep: set PYTHAGORAS_TUNE=1 to run")
	}
	c := data.GenerateSportsTables(data.ReducedSportsConfig())
	rng := rand.New(rand.NewSource(1))
	train, val, test := eval.TrainValTestSplit(len(c.Tables), rng)
	enc := lm.NewEncoder(lm.Config{Dim: 96, Layers: 2, Heads: 4, FFNDim: 192, MaxLen: 512, Buckets: 1 << 14, Seed: 20240325})
	for _, tc := range []struct {
		name    string
		hidden  int
		epochs  int
		lr      float64
		dropout float64
	}{
		{"d96-h192-e200-dr02", 192, 200, 0.01, 0.2},
	} {
		cfg := DefaultConfig(enc)
		cfg.HiddenDim = tc.hidden
		cfg.Epochs = tc.epochs
		cfg.Patience = tc.epochs
		cfg.LearningRate = tc.lr
		cfg.Dropout = tc.dropout
		m, err := Train(c, train, val, cfg)
		if err != nil {
			t.Fatal(err)
		}
		split, _ := m.Evaluate(c, test)
		t.Logf("%s: num=%.3f txt=%.3f all=%.3f", tc.name,
			split.Numeric.WeightedF1, split.NonNumeric.WeightedF1, split.Overall.WeightedF1)
	}
}
