package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/faultinject"
	"github.com/sematype/pythagoras/internal/obs"
)

// trainSnapshot trains with the given worker count and returns the gob
// serialization of the resulting model — the byte-level identity everything
// below compares.
func trainSnapshot(t *testing.T, workers int) []byte {
	t.Helper()
	c := tinyCorpus(16)
	cfg := tinyConfig(tinyEncoder())
	cfg.Epochs = 3
	cfg.TrainWorkers = workers
	m, err := Train(c, []int{0, 1, 2, 3, 4, 5, 6, 7, 8}, []int{9, 10, 11}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTrainSerialSameSeedByteIdentical is the baseline determinism
// regression: two serial runs with the same seed must produce byte-identical
// checkpoints. (Among other things this pins the ClipByGlobalNorm fix —
// map-order gradient accumulation used to perturb the clip norm by ulps.)
func TestTrainSerialSameSeedByteIdentical(t *testing.T) {
	a := trainSnapshot(t, 1)
	b := trainSnapshot(t, 1)
	if !bytes.Equal(a, b) {
		t.Fatal("two serial same-seed runs produced different checkpoints")
	}
}

// TestTrainWorkerCountBitIdentity is the data-parallel trainer's core
// guarantee: for a fixed seed the trained parameters are bit-identical at 1,
// 4 and 8 workers, because the sub-batch decomposition, the per-sub-batch
// dropout seeding and the gradient-merge order never depend on the worker
// count. Run under -race via `make race`.
func TestTrainWorkerCountBitIdentity(t *testing.T) {
	base := trainSnapshot(t, 1)
	for _, workers := range []int{4, 8} {
		if got := trainSnapshot(t, workers); !bytes.Equal(base, got) {
			t.Fatalf("%d-worker training diverged from the serial run", workers)
		}
	}
}

// TestTrainDefaultsPatience pins the zero-value Config fix: Patience 0 used
// to reach NewEarlyStopper(0), which stops at the first non-improving epoch.
// With the default applied, a short run must complete every epoch (tiny-scale
// validation F1 plateaus almost immediately, so the old behavior reliably
// truncated the run).
func TestTrainDefaultsPatience(t *testing.T) {
	c := tinyCorpus(16)
	cfg := tinyConfig(tinyEncoder())
	cfg.Epochs = 6
	cfg.Patience = 0 // the zero value under test
	epochs := 0
	cfg.Logf = func(format string, args ...any) {
		if strings.HasPrefix(format, "pythagoras: epoch") {
			epochs++
		}
		if strings.HasPrefix(format, "pythagoras: early stop") {
			t.Errorf("early stop fired with unset patience: "+format, args...)
		}
	}
	if _, err := Train(c, []int{0, 1, 2, 3, 4, 5}, []int{6, 7}, cfg); err != nil {
		t.Fatal(err)
	}
	if epochs != cfg.Epochs {
		t.Fatalf("ran %d of %d epochs with unset patience", epochs, cfg.Epochs)
	}
}

// TestTrainCtxCancellation drives the trainer's fault-injection points: a
// cancellation injected at each stage boundary must abort training with the
// context's error — no partial model, no hang, workers drained. Run under
// -race via `make race`.
func TestTrainCtxCancellation(t *testing.T) {
	for _, point := range []faultinject.Point{
		faultinject.TrainPrepare,
		faultinject.TrainStep,
		faultinject.TrainMerge,
		faultinject.TrainVal,
	} {
		t.Run(string(point), func(t *testing.T) {
			c := tinyCorpus(16)
			cfg := tinyConfig(tinyEncoder())
			cfg.Epochs = 3
			cfg.TrainWorkers = 4
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			fs := faultinject.New()
			fs.On(point, faultinject.Cancel(cancel))
			cfg.Faults = fs
			m, err := TrainCtx(ctx, c, []int{0, 1, 2, 3, 4, 5}, []int{6, 7}, cfg)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if m != nil {
				t.Fatal("cancelled training returned a model")
			}
			if fs.Fired(point) == 0 {
				t.Fatalf("point %s never fired", point)
			}
		})
	}
}

// TestTrainCtxInjectedError checks that a non-context failure injected at a
// stage boundary propagates out as-is (first error wins across workers).
func TestTrainCtxInjectedError(t *testing.T) {
	boom := errors.New("disk on fire")
	c := tinyCorpus(16)
	cfg := tinyConfig(tinyEncoder())
	cfg.Epochs = 2
	cfg.TrainWorkers = 4
	fs := faultinject.New()
	fs.On(faultinject.TrainPrepare, faultinject.After(3, faultinject.Err(boom)))
	cfg.Faults = fs
	if _, err := TrainCtx(context.Background(), c, []int{0, 1, 2, 3, 4, 5}, []int{6, 7}, cfg); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestTrainMetricsHistograms checks the per-stage training telemetry: every
// stage histogram must have observations after a short run, through the same
// registry shape the serving path uses.
func TestTrainMetricsHistograms(t *testing.T) {
	c := tinyCorpus(16)
	cfg := tinyConfig(tinyEncoder())
	cfg.Epochs = 2
	cfg.TrainWorkers = 2
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	if _, err := Train(c, []int{0, 1, 2, 3, 4, 5}, []int{6, 7}, cfg); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"train.prepare.seconds", "train.fb.seconds", "train.merge.seconds", "train.val.seconds", "train.epoch.seconds"} {
		if got := reg.Histogram(name, nil).Count(); got == 0 {
			t.Errorf("histogram %s has no observations", name)
		}
	}
	snap := reg.Snapshot()
	_ = snap
	if reg.Counter("train.steps").Value() == 0 {
		t.Error("train.steps counter never incremented")
	}
}

// TestTrainParallelMatchesQuality is a sanity guard that the data-parallel
// step decomposition (per-table sub-batches with loss-weighted gradient
// merge) still learns: a short parallel run must beat chance on held-out
// tables, mirroring TestTrainImprovesOverChance.
func TestTrainParallelMatchesQuality(t *testing.T) {
	c := tinyCorpus(44)
	cfg := tinyConfig(tinyEncoder())
	cfg.TrainWorkers = 4
	train := make([]int, 0, 36)
	for i := 0; i < 36; i++ {
		train = append(train, i)
	}
	m, err := Train(c, train, []int{36, 37, 38, 39}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	split, preds := m.Evaluate(c, []int{40, 41, 42, 43})
	if len(preds) == 0 {
		t.Fatal("no predictions")
	}
	if split.Overall.WeightedF1 < 0.15 {
		t.Fatalf("parallel trainer did not learn: weighted F1 = %.3f", split.Overall.WeightedF1)
	}
}

// TestScorePreparedCtxWorkerCountInvariant pins the validation-scoring half
// of the worker-count identity: the same prepared tables scored with 1 and
// many workers must produce identical metrics (chunk boundaries shift with
// the worker count; the scores must not).
func TestScorePreparedCtxWorkerCountInvariant(t *testing.T) {
	c := tinyCorpus(20)
	cfg := tinyConfig(tinyEncoder())
	cfg.Epochs = 2
	m, err := Train(c, []int{0, 1, 2, 3, 4, 5}, []int{6, 7}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]*Prepared, 8)
	for i := range ps {
		ps[i] = m.Prepare(c.Tables[10+i])
	}
	key := func(s *eval.Split) string {
		return fmt.Sprintf("%v/%v/%v/%v/%v/%v/%d",
			s.Overall.WeightedF1, s.Overall.MacroF1, s.Overall.Accuracy,
			s.Numeric.WeightedF1, s.NonNumeric.WeightedF1, s.Overall.N, len(s.Overall.PerClass))
	}
	base, err := m.scorePreparedCtx(context.Background(), ps, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 8} {
		got, err := m.scorePreparedCtx(context.Background(), ps, workers)
		if err != nil {
			t.Fatal(err)
		}
		if key(got) != key(base) {
			t.Fatalf("validation scores differ at %d workers:\n  1: %s\n  %d: %s", workers, key(base), workers, key(got))
		}
	}
}
