package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/sematype/pythagoras/internal/obs"
	"github.com/sematype/pythagoras/internal/table"
)

func TestCheckpointHeaderRoundTrip(t *testing.T) {
	enc := tinyEncoder()
	cfg := Config{Encoder: enc, GNNLayers: 1, HiddenDim: 32, Seed: 3}
	m := newModel(cfg, []string{"player.age", "team.name"})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if !bytes.HasPrefix(raw, []byte(checkpointMagic)) {
		t.Fatalf("checkpoint does not start with magic: %x", raw[:16])
	}
	if v := binary.BigEndian.Uint32(raw[len(checkpointMagic):]); v != CheckpointVersion {
		t.Fatalf("header version = %d, want %d", v, CheckpointVersion)
	}
	got, err := Load(bytes.NewReader(raw), Config{Encoder: enc})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Types()) != 2 {
		t.Fatalf("round trip lost types: %v", got.Types())
	}
}

func TestLoadRejectsFutureVersion(t *testing.T) {
	enc := tinyEncoder()
	m := newModel(Config{Encoder: enc, GNNLayers: 1, HiddenDim: 32, Seed: 3},
		[]string{"player.age"})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	binary.BigEndian.PutUint32(raw[len(checkpointMagic):], CheckpointVersion+7)
	_, err := Load(bytes.NewReader(raw), Config{Encoder: enc})
	var uv *UnsupportedVersionError
	if !errors.As(err, &uv) {
		t.Fatalf("future-version load: err = %v, want *UnsupportedVersionError", err)
	}
	if uv.Got != CheckpointVersion+7 || uv.Max != CheckpointVersion || uv.Artifact != "checkpoint" {
		t.Fatalf("typed error fields = %+v", uv)
	}
	if !strings.Contains(uv.Error(), "newer than this binary") {
		t.Fatalf("error text = %q", uv.Error())
	}
}

func TestLoadRejectsBadMagicAndVersionZero(t *testing.T) {
	enc := tinyEncoder()
	m := newModel(Config{Encoder: enc, GNNLayers: 1, HiddenDim: 32, Seed: 3},
		[]string{"player.age"})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Pre-versioning stream: the payload without its header.
	if _, err := Load(bytes.NewReader(buf.Bytes()[len(checkpointMagic)+4:]), Config{Encoder: enc}); err == nil {
		t.Fatal("headerless checkpoint accepted")
	}
	// Version 0 is a corrupt header, not a valid older format.
	raw := append([]byte(nil), buf.Bytes()...)
	binary.BigEndian.PutUint32(raw[len(checkpointMagic):], 0)
	if _, err := Load(bytes.NewReader(raw), Config{Encoder: enc}); err == nil {
		t.Fatal("version-0 checkpoint accepted")
	}
	// Truncated inside the header.
	if _, err := Load(bytes.NewReader(buf.Bytes()[:5]), Config{Encoder: enc}); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestDriftBaselineSidecarRoundTrip(t *testing.T) {
	enc := tinyEncoder()
	m := newModel(Config{Encoder: enc, GNNLayers: 1, HiddenDim: 32, Seed: 3},
		[]string{"player.age", "team.name", "game.attendance"})
	tb := &table.Table{Name: "T", ID: "t1", Columns: []*table.Column{
		{Header: "age", Kind: table.KindNumeric, NumValues: []float64{21, 34, 28}},
		{Header: "team", Kind: table.KindText, TextValues: []string{"ATL", "BOS", "CHI"}},
	}}
	base := m.ComputeDriftBaseline([]*table.Table{tb})
	if base.Total() != 2 {
		t.Fatalf("baseline total = %d, want one count per column", base.Total())
	}
	if len(base.ConfBounds) != len(obs.ConfidenceBuckets) {
		t.Fatalf("baseline bounds = %d, want the shared ConfidenceBuckets", len(base.ConfBounds))
	}

	path := filepath.Join(t.TempDir(), "model.ckpt.drift.json")
	if err := SaveDriftBaseline(path, base); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDriftBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total() != base.Total() || len(got.ConfCounts) != len(base.ConfCounts) {
		t.Fatalf("sidecar round trip diverged: %+v vs %+v", got, base)
	}
	if mon := obs.NewDriftMonitor(got); mon == nil {
		t.Fatal("round-tripped baseline rejected by DriftMonitor")
	}
}

func TestDriftBaselineSidecarVersioned(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.drift.json")
	base := obs.DriftBaseline{TypeCounts: map[string]uint64{"a": 1}}
	if err := SaveDriftBaseline(path, base); err != nil {
		t.Fatal(err)
	}
	// Bump the sidecar's version in place: same typed rejection as the
	// checkpoint.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint32(raw[len(checkpointMagic):], DriftBaselineVersion+1)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadDriftBaseline(path)
	var uv *UnsupportedVersionError
	if !errors.As(err, &uv) {
		t.Fatalf("future-version sidecar: err = %v, want *UnsupportedVersionError", err)
	}
	if uv.Artifact != "drift baseline" {
		t.Fatalf("artifact = %q", uv.Artifact)
	}
	if _, err := LoadDriftBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing sidecar load succeeded")
	}
}

func TestDriftSidecarPath(t *testing.T) {
	if got := DriftSidecarPath("/models/m.ckpt"); got != "/models/m.ckpt.drift.json" {
		t.Fatalf("DriftSidecarPath = %q", got)
	}
}

// TestLoadServing covers the one-call serving load: checkpoint plus
// optional sidecar, with the degradation ladder the lifecycle manager
// depends on — no sidecar serves silently, a broken sidecar serves with
// DriftErr, a broken checkpoint never serves.
func TestLoadServing(t *testing.T) {
	enc := tinyEncoder()
	cfg := Config{Encoder: enc, GNNLayers: 1, HiddenDim: 32, Seed: 3}
	m := newModel(cfg, []string{"player.age", "team.name"})
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ckpt")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	// No sidecar: model loads, no monitor, no error.
	b, err := LoadServing(path, Config{Encoder: enc})
	if err != nil {
		t.Fatal(err)
	}
	if b.Drift != nil || b.DriftErr != nil || len(b.Model.Types()) != 2 {
		t.Fatalf("sidecar-less bundle: %+v", b)
	}

	// Healthy sidecar: monitor attached.
	tb := &table.Table{Name: "T", ID: "t1", Columns: []*table.Column{
		{Header: "age", Kind: table.KindNumeric, NumValues: []float64{21, 34, 28}},
	}}
	if err := SaveDriftBaseline(DriftSidecarPath(path), m.ComputeDriftBaseline([]*table.Table{tb})); err != nil {
		t.Fatal(err)
	}
	b, err = LoadServing(path, Config{Encoder: enc})
	if err != nil || b.Drift == nil || b.DriftErr != nil {
		t.Fatalf("bundle with sidecar: %+v (err %v)", b, err)
	}

	// Corrupt sidecar: the model still serves, DriftErr says why there is
	// no drift telemetry.
	if err := os.WriteFile(DriftSidecarPath(path), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err = LoadServing(path, Config{Encoder: enc})
	if err != nil {
		t.Fatalf("corrupt sidecar must not fail the load: %v", err)
	}
	if b.Drift != nil || b.DriftErr == nil {
		t.Fatalf("corrupt-sidecar bundle: %+v", b)
	}

	// Broken checkpoint: fatal, regardless of sidecar state.
	if _, err := LoadServing(filepath.Join(dir, "missing.ckpt"), Config{Encoder: enc}); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing checkpoint err = %v, want ErrNotExist", err)
	}
}

// TestDriftBaselineSaveErrors: unwritable paths surface as errors instead
// of silent telemetry loss.
func TestDriftBaselineSaveErrors(t *testing.T) {
	err := SaveDriftBaseline(filepath.Join(t.TempDir(), "no", "such", "dir", "x.json"),
		obs.DriftBaseline{TypeCounts: map[string]uint64{"a": 1}})
	if err == nil {
		t.Fatal("SaveDriftBaseline into a missing directory succeeded")
	}
}
