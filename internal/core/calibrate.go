package core

import (
	"fmt"
	"math"

	"github.com/sematype/pythagoras/internal/data"
)

// CalibrateTemperature fits a softmax temperature on held-out tables by
// minimizing the negative log-likelihood of the gold labels — standard
// temperature scaling. The temperature is stored in the model (persisted by
// Save) and applied by PredictTable, so reported confidences track actual
// accuracy instead of the over-confident raw softmax.
//
// It returns the fitted temperature (1 = unchanged).
func (m *Model) CalibrateTemperature(c *data.Corpus, valIdx []int) (float64, error) {
	type sample struct {
		logits []float64
		label  int
	}
	var samples []sample
	for _, vi := range valIdx {
		p := m.Prepare(c.Tables[vi])
		logits, targets := m.InferLogits(p)
		for i, n := range targets {
			if p.Graph.Labels[n] < 0 {
				continue
			}
			samples = append(samples, sample{
				logits: append([]float64(nil), logits.Row(i)...),
				label:  p.Graph.Labels[n],
			})
		}
	}
	if len(samples) == 0 {
		return 1, fmt.Errorf("core: no labeled validation columns to calibrate on")
	}

	nll := func(temp float64) float64 {
		var total float64
		for _, s := range samples {
			mx := math.Inf(-1)
			for _, v := range s.logits {
				if v/temp > mx {
					mx = v / temp
				}
			}
			var z float64
			for _, v := range s.logits {
				z += math.Exp(v/temp - mx)
			}
			total += -(s.logits[s.label]/temp - mx - math.Log(z))
		}
		return total / float64(len(samples))
	}

	// Golden-section search over a generous temperature range.
	lo, hi := 0.25, 8.0
	const phi = 0.6180339887498949
	a, b := hi-(hi-lo)*phi, lo+(hi-lo)*phi
	fa, fb := nll(a), nll(b)
	for i := 0; i < 60; i++ {
		if fa < fb {
			hi, b, fb = b, a, fa
			a = hi - (hi-lo)*phi
			fa = nll(a)
		} else {
			lo, a, fa = a, b, fb
			b = lo + (hi-lo)*phi
			fb = nll(b)
		}
	}
	temp := (lo + hi) / 2
	// Never make calibration worse than identity.
	if nll(temp) > nll(1) {
		temp = 1
	}
	m.temperature = temp
	return temp, nil
}

// Temperature returns the calibrated softmax temperature (1 before
// calibration).
func (m *Model) Temperature() float64 {
	if m.temperature == 0 {
		return 1
	}
	return m.temperature
}
