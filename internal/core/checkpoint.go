// Checkpoint format versioning and the drift-baseline sidecar.
//
// Every artifact this package persists — the model checkpoint and the
// drift baseline written next to it — starts with the same fixed binary
// header: an 8-byte magic ("PYTHCKPT") and a big-endian uint32 format
// version. The header is raw bytes, not gob: a gob stream cannot be probed
// and rewound, so the version must be decidable from a fixed prefix before
// any decoder touches the payload. A reader confronted with a future
// version fails with *UnsupportedVersionError — a typed, inspectable "this
// binary is too old", distinct from corruption — instead of surfacing a
// baffling gob decode error from halfway into a payload it was never meant
// to understand.
package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/sematype/pythagoras/internal/obs"
	"github.com/sematype/pythagoras/internal/table"
)

// checkpointMagic identifies a Pythagoras artifact; it doubles as a cheap
// "is this even one of ours" check before the version is trusted.
const checkpointMagic = "PYTHCKPT"

// CheckpointVersion is the current checkpoint format version. History:
//
//	1 — first versioned format: header + gob(savedMeta) + gob(params).
//	    Pre-versioning checkpoints (no header) are rejected; retrain or
//	    re-save with this binary.
const CheckpointVersion uint32 = 1

// UnsupportedVersionError reports an artifact written by a newer format
// than this binary understands. Callers can errors.As on it to tell "too
// new" apart from "corrupt".
type UnsupportedVersionError struct {
	Artifact string // "checkpoint" or "drift baseline"
	Got      uint32
	Max      uint32
}

func (e *UnsupportedVersionError) Error() string {
	return fmt.Sprintf("core: %s format version %d is newer than this binary supports (max %d)",
		e.Artifact, e.Got, e.Max)
}

// writeHeader writes the magic + version prefix.
func writeHeader(w io.Writer, version uint32) error {
	var hdr [len(checkpointMagic) + 4]byte
	copy(hdr[:], checkpointMagic)
	binary.BigEndian.PutUint32(hdr[len(checkpointMagic):], version)
	_, err := w.Write(hdr[:])
	return err
}

// readHeader consumes and validates the magic + version prefix. artifact
// names the file kind in errors.
func readHeader(r io.Reader, artifact string, maxVersion uint32) (uint32, error) {
	var hdr [len(checkpointMagic) + 4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("core: read %s header: %w", artifact, err)
	}
	if string(hdr[:len(checkpointMagic)]) != checkpointMagic {
		return 0, fmt.Errorf("core: not a pythagoras %s (bad magic %q)", artifact, hdr[:len(checkpointMagic)])
	}
	v := binary.BigEndian.Uint32(hdr[len(checkpointMagic):])
	if v == 0 {
		return 0, fmt.Errorf("core: %s declares version 0 (corrupt header)", artifact)
	}
	if v > maxVersion {
		return 0, &UnsupportedVersionError{Artifact: artifact, Got: v, Max: maxVersion}
	}
	return v, nil
}

// --- drift baseline sidecar ---

// DriftBaselineVersion is the drift sidecar's format version; it shares the
// checkpoint's header layout and typed version error.
const DriftBaselineVersion uint32 = 1

// DriftSidecarPath is the conventional location of a model's drift baseline:
// next to the checkpoint, with a fixed suffix.
func DriftSidecarPath(modelPath string) string { return modelPath + ".drift.json" }

// ComputeDriftBaseline runs the trained model over its own training tables
// and tallies the predicted-type distribution and confidence histogram —
// the reference a serving-time obs.DriftMonitor compares live traffic
// against. Using the model's *predictions* (not the labels) is deliberate:
// drift is measured between two prediction distributions, so the baseline
// must be produced by the same mechanism that produces the serving side.
func (m *Model) ComputeDriftBaseline(tables []*table.Table) obs.DriftBaseline {
	b := obs.DriftBaseline{
		TypeCounts: map[string]uint64{},
		ConfBounds: obs.ConfidenceBuckets,
		ConfCounts: make([]uint64, len(obs.ConfidenceBuckets)+1),
	}
	for _, t := range tables {
		for _, p := range m.PredictTable(t) {
			b.TypeCounts[p.Type]++
			i := 0
			for i < len(b.ConfBounds) && p.Confidence > b.ConfBounds[i] {
				i++
			}
			b.ConfCounts[i]++
		}
	}
	return b
}

// SaveDriftBaseline writes a drift baseline sidecar: the shared versioned
// header followed by the baseline as JSON.
func SaveDriftBaseline(path string, b obs.DriftBaseline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := writeHeader(f, DriftBaselineVersion); err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(b); err != nil {
		return fmt.Errorf("core: encode drift baseline: %w", err)
	}
	return f.Close()
}

// ServingBundle is everything a serving process loads for one model
// version: the checkpoint itself plus the optional drift sidecar, resolved
// together so `serve` at startup and the lifecycle manager's POST
// /v1/models load through one code path.
type ServingBundle struct {
	Model *Model
	Path  string
	// Drift is the monitor seeded from the checkpoint's sidecar; nil when
	// no sidecar exists (a model trained before baselines did still serves,
	// just without drift telemetry).
	Drift *obs.DriftMonitor
	// DriftErr is non-nil when a sidecar was present but unusable (corrupt,
	// future version). The model still serves; callers decide whether to
	// log or refuse.
	DriftErr error
}

// LoadServing loads a checkpoint and its conventional drift sidecar into a
// running process. Checkpoint problems are errors — a serving process must
// never swap in a half-loaded model — while sidecar problems degrade to a
// nil monitor with DriftErr set, because drift telemetry is advisory.
func LoadServing(path string, cfg Config) (*ServingBundle, error) {
	m, err := LoadFile(path, cfg)
	if err != nil {
		return nil, err
	}
	b := &ServingBundle{Model: m, Path: path}
	baseline, err := LoadDriftBaseline(DriftSidecarPath(path))
	switch {
	case err == nil:
		b.Drift = obs.NewDriftMonitor(baseline)
	case !os.IsNotExist(err):
		b.DriftErr = err
	}
	return b, nil
}

// LoadDriftBaseline reads a drift baseline sidecar written by
// SaveDriftBaseline. A sidecar from a future format version returns
// *UnsupportedVersionError.
func LoadDriftBaseline(path string) (obs.DriftBaseline, error) {
	var b obs.DriftBaseline
	f, err := os.Open(path)
	if err != nil {
		return b, err
	}
	defer f.Close()
	if _, err := readHeader(f, "drift baseline", DriftBaselineVersion); err != nil {
		return b, err
	}
	if err := json.NewDecoder(f).Decode(&b); err != nil {
		return b, fmt.Errorf("core: decode drift baseline: %w", err)
	}
	return b, nil
}
