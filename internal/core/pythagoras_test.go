package core

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/graph"
	"github.com/sematype/pythagoras/internal/lm"
	"github.com/sematype/pythagoras/internal/table"
)

// tinyEncoder keeps core tests fast.
func tinyEncoder() *lm.Encoder {
	return lm.NewEncoder(lm.Config{Dim: 32, Layers: 1, Heads: 2, FFNDim: 64, MaxLen: 64, Buckets: 1 << 12, Seed: 7})
}

// tinyCorpus builds a small SportsTables-style corpus.
func tinyCorpus(n int) *data.Corpus {
	return data.GenerateSportsTables(data.SportsConfig{
		NumTables: n, Seed: 11, MinRows: 6, MaxRows: 10, WeakNameProb: 0.1, Domains: 3,
	})
}

func tinyConfig(enc *lm.Encoder) Config {
	cfg := DefaultConfig(enc)
	cfg.Epochs = 30
	cfg.Patience = 30
	cfg.BatchSize = 8
	cfg.LearningRate = 1e-2
	return cfg
}

func TestTrainImprovesOverChance(t *testing.T) {
	c := tinyCorpus(44)
	enc := tinyEncoder()
	rng := rand.New(rand.NewSource(1))
	train, val, test := eval.TrainValTestSplit(len(c.Tables), rng)
	m, err := Train(c, train, val, tinyConfig(enc))
	if err != nil {
		t.Fatal(err)
	}
	split, preds := m.Evaluate(c, test)
	if len(preds) == 0 {
		t.Fatal("no predictions")
	}
	// Chance over 462 classes ≈ 0.002; anything materially learned clears
	// 0.15 even at this tiny scale.
	if split.Overall.WeightedF1 < 0.15 {
		t.Fatalf("model did not learn: weighted F1 = %.3f", split.Overall.WeightedF1)
	}
	// Non-numeric columns should be easier than numeric ones.
	if split.NonNumeric.WeightedF1 < split.Numeric.WeightedF1 {
		t.Logf("note: non-numeric (%.3f) < numeric (%.3f) at tiny scale",
			split.NonNumeric.WeightedF1, split.Numeric.WeightedF1)
	}
}

func TestTrainEmptySplitErrors(t *testing.T) {
	c := tinyCorpus(5)
	if _, err := Train(c, nil, nil, tinyConfig(tinyEncoder())); err == nil {
		t.Fatal("empty training split must error")
	}
}

func TestContextAblationDegradesNumericF1(t *testing.T) {
	// The heart of Table 4: removing V_tn + V_nn context must hurt numeric
	// predictions. We compare full vs fully-context-free on the same split
	// with the same budget.
	if testing.Short() {
		t.Skip("training comparison skipped in -short")
	}
	c := tinyCorpus(60)
	enc := tinyEncoder()
	rng := rand.New(rand.NewSource(2))
	train, val, test := eval.TrainValTestSplit(len(c.Tables), rng)

	full := tinyConfig(enc)
	mFull, err := Train(c, train, val, full)
	if err != nil {
		t.Fatal(err)
	}
	sFull, _ := mFull.Evaluate(c, test)

	ablated := tinyConfig(enc)
	ablated.Graph = graph.BuildOptions{DropTableName: true, DropTextColumns: true}
	mAbl, err := Train(c, train, val, ablated)
	if err != nil {
		t.Fatal(err)
	}
	sAbl, _ := mAbl.Evaluate(c, test)

	if sFull.Numeric.WeightedF1 <= sAbl.Numeric.WeightedF1 {
		t.Fatalf("context removal did not hurt: full=%.3f ablated=%.3f",
			sFull.Numeric.WeightedF1, sAbl.Numeric.WeightedF1)
	}
}

func TestPredictTableOutputs(t *testing.T) {
	c := tinyCorpus(33)
	enc := tinyEncoder()
	rng := rand.New(rand.NewSource(3))
	train, val, _ := eval.TrainValTestSplit(len(c.Tables), rng)
	cfg := tinyConfig(enc)
	cfg.Epochs = 4
	m, err := Train(c, train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}

	tb := c.Tables[0]
	preds := m.PredictTable(tb)
	targetCount := len(tb.Columns)
	if len(preds) != targetCount {
		t.Fatalf("predictions = %d, want %d", len(preds), targetCount)
	}
	seen := map[int]bool{}
	for _, p := range preds {
		if p.Type == "" {
			t.Fatal("empty predicted type")
		}
		if p.Confidence <= 0 || p.Confidence > 1 {
			t.Fatalf("confidence = %v", p.Confidence)
		}
		if seen[p.ColIndex] {
			t.Fatalf("column %d predicted twice", p.ColIndex)
		}
		seen[p.ColIndex] = true
		if p.Header != tb.Columns[p.ColIndex].Header {
			t.Fatal("header/colindex mismatch")
		}
	}
}

func TestPredictTableUnlabeledColumns(t *testing.T) {
	// Prediction must work on tables with no gold labels at all.
	c := tinyCorpus(22)
	enc := tinyEncoder()
	cfg := tinyConfig(enc)
	cfg.Epochs = 2
	m, err := Train(c, []int{0, 1, 2, 3}, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := &table.Table{Name: "Unknown Stats", ID: "u", Columns: []*table.Column{
		{Header: "Who", Kind: table.KindText, TextValues: []string{"Lebron James", "Myles Turner"}},
		{Header: "X", Kind: table.KindNumeric, NumValues: []float64{7.5, 2.1}},
	}}
	preds := m.PredictTable(tb)
	if len(preds) != 2 {
		t.Fatalf("predictions = %d", len(preds))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := tinyCorpus(22)
	enc := tinyEncoder()
	cfg := tinyConfig(enc)
	cfg.Epochs = 3
	rng := rand.New(rand.NewSource(4))
	train, val, test := eval.TrainValTestSplit(len(c.Tables), rng)
	m, err := Train(c, train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf, Config{Encoder: enc})
	if err != nil {
		t.Fatal(err)
	}
	s1, p1 := m.Evaluate(c, test)
	s2, p2 := m2.Evaluate(c, test)
	if len(p1) != len(p2) {
		t.Fatal("prediction counts differ after load")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("loaded model predicts differently")
		}
	}
	if s1.Overall.WeightedF1 != s2.Overall.WeightedF1 {
		t.Fatal("scores differ after load")
	}
}

func TestLoadRejectsWrongEncoder(t *testing.T) {
	c := tinyCorpus(11)
	enc := tinyEncoder()
	cfg := tinyConfig(enc)
	cfg.Epochs = 1
	m, err := Train(c, []int{0, 1}, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	wrong := lm.NewEncoder(lm.Config{Dim: 16, Layers: 1, Heads: 2, MaxLen: 32, Buckets: 256, Seed: 1})
	if _, err := Load(&buf, Config{Encoder: wrong}); err == nil {
		t.Fatal("dim mismatch not rejected")
	}
	if _, err := Load(bytes.NewReader(nil), Config{Encoder: enc}); err == nil {
		t.Fatal("empty reader not rejected")
	}
}

func TestTrainDeterministicPerSeed(t *testing.T) {
	c := tinyCorpus(16)
	enc := tinyEncoder()
	cfg := tinyConfig(enc)
	cfg.Epochs = 3
	run := func() []eval.Prediction {
		m, err := Train(c, []int{0, 1, 2, 3, 4, 5}, []int{6, 7}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, preds := m.Evaluate(c, []int{8, 9})
		return preds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce identical training")
		}
	}
}

func TestEvaluateSkipsUnknownTypes(t *testing.T) {
	c := tinyCorpus(12)
	enc := tinyEncoder()
	cfg := tinyConfig(enc)
	cfg.Epochs = 1
	m, err := Train(c, []int{0, 1, 2}, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Inject a table whose types are outside the vocabulary.
	alien := &table.Table{Name: "Alien", ID: "alien", Columns: []*table.Column{
		{Header: "h", SemanticType: "totally.unknown.type", Kind: table.KindNumeric, NumValues: []float64{1, 2}},
	}}
	c.Tables = append(c.Tables, alien)
	_, preds := m.Evaluate(c, []int{len(c.Tables) - 1})
	if len(preds) != 0 {
		t.Fatal("unknown-type columns must be excluded from scoring")
	}
}
