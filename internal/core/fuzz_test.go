package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"testing"

	"github.com/sematype/pythagoras/internal/nn"
	"github.com/sematype/pythagoras/internal/table"
	"github.com/sematype/pythagoras/internal/tensor"
)

// fuzzSaveBytes trains nothing: it builds an untrained model on the fuzz
// encoder and serializes it — a structurally valid checkpoint to mutate.
func fuzzSaveBytes(tb testing.TB, cfg Config) []byte {
	tb.Helper()
	m := newModel(cfg, []string{"player.age", "player.height", "team.name"})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzModelLoad drives core.Load (and through it nn.Params.DecodeGob) with
// arbitrary byte streams: truncations, bit flips, and checkpoints whose
// declared geometry disagrees with their parameter payload. The contract is
// error-not-panic — a corrupt checkpoint must be rejected cleanly, never
// crash the server loading it, and never come back as a silently
// half-loaded model. When a load unexpectedly succeeds, the model must be
// fully usable: we run a prediction to shake out any accepted
// shape-mismatch before it could crash a serving path.
func FuzzModelLoad(f *testing.F) {
	enc := tinyEncoder()
	cfg := Config{Encoder: enc, GNNLayers: 2, HiddenDim: 48, Seed: 5}
	valid := fuzzSaveBytes(f, cfg)

	f.Add([]byte{})
	f.Add([]byte("not a gob stream at all"))
	f.Add(valid)
	// Truncated streams: mid-meta and mid-params.
	f.Add(valid[:17])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-3])
	// Corrupted gob: bit flips in the meta header and the parameter payload.
	for _, at := range []int{5, len(valid) / 3, 2 * len(valid) / 3} {
		bad := append([]byte(nil), valid...)
		bad[at] ^= 0x5a
		f.Add(bad)
	}
	// Wrong format version: a byte-identical valid checkpoint whose header
	// declares a future version must be rejected with the typed error, not
	// decoded on faith (see TestLoadRejectsFutureVersion for the errors.As
	// assertion; here it only must not panic or half-load).
	futureVersion := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(futureVersion[len(checkpointMagic):], CheckpointVersion+1)
	f.Add(futureVersion)
	// Version 0 (corrupt header) and a pre-versioning stream (no magic).
	zeroVersion := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(zeroVersion[len(checkpointMagic):], 0)
	f.Add(zeroVersion)
	f.Add(valid[len(checkpointMagic)+4:])

	// Shape mismatch: metadata from one geometry, parameters from another
	// (behind a well-formed header, so the mismatch itself is reached).
	mismatched := fuzzSaveBytes(f, Config{Encoder: enc, GNNLayers: 2, HiddenDim: 64, Seed: 5})
	var metaBuf bytes.Buffer
	if err := writeHeader(&metaBuf, CheckpointVersion); err != nil {
		f.Fatal(err)
	}
	ge := gob.NewEncoder(&metaBuf)
	if err := ge.Encode(savedMeta{Types: []string{"player.age", "player.height", "team.name"},
		Hidden: enc.Dim(), HiddenDim: 48, GNNLayers: 2}); err != nil {
		f.Fatal(err)
	}
	wrongModel := newModel(Config{Encoder: enc, GNNLayers: 2, HiddenDim: 64, Seed: 5},
		[]string{"player.age", "player.height", "team.name"})
	if err := wrongModel.params.EncodeGob(ge); err != nil {
		f.Fatal(err)
	}
	f.Add(metaBuf.Bytes())
	f.Add(mismatched)

	probe := &table.Table{Name: "Fuzz Probe", ID: "fz", Columns: []*table.Column{
		{Header: "name", Kind: table.KindText, TextValues: []string{"a", "b"}},
		{Header: "age", Kind: table.KindNumeric, NumValues: []float64{21, 34}},
	}}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Load(bytes.NewReader(data), Config{Encoder: enc})
		if err != nil {
			return
		}
		// A successful load must yield a complete, usable model.
		if len(m.Types()) == 0 {
			t.Fatal("loaded model has no types")
		}
		if got := m.PredictTable(probe); len(got) != len(probe.Columns) {
			t.Fatalf("loaded model predicted %d of %d columns", len(got), len(probe.Columns))
		}
	})
}

// TestDecodeGobRejectsLengthMismatch pins the checkpoint-hardening fix: a
// parameter whose declared shape matches but whose data payload is short
// (a truncated-then-re-encoded or hand-corrupted stream) must be rejected,
// not silently half-copied over the random init.
func TestDecodeGobRejectsLengthMismatch(t *testing.T) {
	// Encode a parameter list by hand with a lying Data length.
	type savedParamWire struct {
		Name       string
		Rows, Cols int
		Data       []float64
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode([]savedParamWire{{Name: "w", Rows: 2, Cols: 3, Data: []float64{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	p := nn.NewParams()
	p.Add("w", tensor.New(2, 3))
	if err := p.Load(&buf); err == nil {
		t.Fatal("short parameter payload accepted")
	}
}

// TestDecodeGobRejectsMissingParams pins the other half: a checkpoint that
// simply omits a model parameter must not load (the omitted layer would
// silently keep its random initialization).
func TestDecodeGobRejectsMissingParams(t *testing.T) {
	src := nn.NewParams()
	src.Add("a", tensor.New(1, 2))
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := nn.NewParams()
	dst.Add("a", tensor.New(1, 2))
	dst.Add("b", tensor.New(1, 2))
	if err := dst.Load(&buf); err == nil {
		t.Fatal("checkpoint missing a parameter accepted")
	}
}
