package data_test

import (
	"fmt"

	"github.com/sematype/pythagoras/internal/data"
)

// ExampleGenerateSportsTables builds a small SportsTables-style corpus and
// prints its Table 1-style statistics.
func ExampleGenerateSportsTables() {
	c := data.GenerateSportsTables(data.SportsConfig{
		NumTables: 22, Seed: 17, MinRows: 8, MaxRows: 12, WeakNameProb: 0.1,
	})
	s := c.ComputeStats()
	fmt.Println("tables:", s.NumTables)
	fmt.Println("types present:", s.NumTypes > 100)
	fmt.Println("numeric-dominated:", s.AvgNumCols > 4*s.AvgTextCols)
	// Output:
	// tables: 22
	// types present: true
	// numeric-dominated: true
}

// ExampleSynthesizeHeaders reproduces the paper's abbreviation lists for
// the Table 4 header experiment.
func ExampleSynthesizeHeaders() {
	cands := data.SynthesizeHeaders("Player Age", 4)
	for _, c := range cands {
		fmt.Println(c)
	}
	// Output:
	// PA
	// PlAg
	// PlaAge
	// PlayAge
}
