package data

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/sematype/pythagoras/internal/table"
)

func TestSportsTypeCatalogSize(t *testing.T) {
	types := SportsTypeCatalog()
	if len(types) != 462 {
		t.Fatalf("SportsTables catalog has %d types, Table 1 says 462", len(types))
	}
	seen := map[string]bool{}
	for _, st := range types {
		if seen[st] {
			t.Fatalf("duplicate type %q", st)
		}
		seen[st] = true
	}
}

func TestSportsCatalogContainsPaperExamples(t *testing.T) {
	types := map[string]bool{}
	for _, st := range SportsTypeCatalog() {
		types[st] = true
	}
	// Types the paper explicitly names.
	for _, want := range []string{
		"basketball.player.assists_per_game",
		"soccer.player.assists",
		"basketball.player.points_per_game",
	} {
		if !types[want] {
			t.Fatalf("catalog missing paper example %q", want)
		}
	}
}

func TestGitTypeCatalogSize(t *testing.T) {
	types := GitTypeCatalog()
	if len(types) != 219 {
		t.Fatalf("GitTables catalog has %d types, Table 1 says 219", len(types))
	}
	seen := map[string]bool{}
	for _, st := range types {
		if seen[st] {
			t.Fatalf("duplicate type %q", st)
		}
		seen[st] = true
	}
}

func TestGenerateSportsTablesReducedScale(t *testing.T) {
	c := GenerateSportsTables(ReducedSportsConfig())
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s := c.ComputeStats()
	if s.NumTables != 220 {
		t.Fatalf("tables = %d", s.NumTables)
	}
	// Shape invariants of Table 1: few text columns, many numeric columns.
	if s.AvgTextCols < 2 || s.AvgTextCols > 3.2 {
		t.Fatalf("avg text cols = %.2f, want ≈2.83", s.AvgTextCols)
	}
	if s.AvgNumCols < 15 || s.AvgNumCols > 18.5 {
		t.Fatalf("avg numeric cols = %.2f, want ≈18", s.AvgNumCols)
	}
	if s.NumericShare < 0.8 {
		t.Fatalf("numeric share = %.2f", s.NumericShare)
	}
}

func TestGenerateSportsTablesVocabularySubsetOfCatalog(t *testing.T) {
	c := GenerateSportsTables(ReducedSportsConfig())
	catalog := map[string]bool{}
	for _, st := range SportsTypeCatalog() {
		catalog[st] = true
	}
	for _, st := range c.Types {
		if !catalog[st] {
			t.Fatalf("generated type %q not in catalog", st)
		}
	}
	// At 220 tables every type should occur.
	if len(c.Types) != 462 {
		t.Fatalf("reduced corpus covers %d/462 types", len(c.Types))
	}
}

func TestSportsDeterminism(t *testing.T) {
	a := GenerateSportsTables(ReducedSportsConfig())
	b := GenerateSportsTables(ReducedSportsConfig())
	if len(a.Tables) != len(b.Tables) {
		t.Fatal("table counts differ")
	}
	for i := range a.Tables {
		if a.Tables[i].Name != b.Tables[i].Name {
			t.Fatal("same seed must generate identical corpora")
		}
		if len(a.Tables[i].Columns) != len(b.Tables[i].Columns) {
			t.Fatal("column counts differ")
		}
	}
}

func TestSportsSharedStatsAliasAcrossDomains(t *testing.T) {
	// The core difficulty: 'age' exists as a distinct semantic type in
	// every domain×entity, with identical distribution.
	types := map[string]bool{}
	for _, st := range SportsTypeCatalog() {
		types[st] = true
	}
	count := 0
	for _, st := range SportsTypeCatalog() {
		if strings.HasSuffix(st, ".player.age") {
			count++
		}
	}
	if count != 11 {
		t.Fatalf("player.age aliased across %d domains, want 11", count)
	}
}

func TestSportsTablesHaveSyntheticHeaders(t *testing.T) {
	c := GenerateSportsTables(SportsConfig{NumTables: 11, Seed: 1, MinRows: 5, MaxRows: 8, WeakNameProb: 0})
	for _, tb := range c.Tables {
		for _, col := range tb.Columns {
			if col.SyntheticHeader == "" {
				t.Fatalf("column %q missing synthetic header", col.Header)
			}
		}
	}
}

func TestGenerateGitTablesReducedScale(t *testing.T) {
	c := GenerateGitTables(ReducedGitConfig())
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s := c.ComputeStats()
	if s.NumTables < 250 {
		t.Fatalf("tables = %d (some dropped entirely?)", s.NumTables)
	}
	if s.AvgTextCols > 3 {
		t.Fatalf("avg text cols = %.2f, want ≈2", s.AvgTextCols)
	}
	if s.AvgNumCols < 6 || s.AvgNumCols > 13 {
		t.Fatalf("avg numeric cols = %.2f, want ≈9", s.AvgNumCols)
	}
	// ≥80 % numeric — the corpus construction rule
	if s.NumericShare < 0.78 {
		t.Fatalf("numeric share = %.2f, want ≥0.8", s.NumericShare)
	}
}

func TestGitTablesZipfImbalance(t *testing.T) {
	// Type frequencies must be heavily imbalanced (macro ≪ weighted
	// signature). Compare most common vs median type frequency.
	c := GenerateGitTables(ReducedGitConfig())
	counts := map[string]int{}
	for _, tb := range c.Tables {
		for _, col := range tb.Columns {
			counts[col.SemanticType]++
		}
	}
	var freqs []int
	for _, n := range counts {
		freqs = append(freqs, n)
	}
	mx, sum := 0, 0
	for _, f := range freqs {
		if f > mx {
			mx = f
		}
		sum += f
	}
	mean := float64(sum) / float64(len(freqs))
	if float64(mx) < 4*mean {
		t.Fatalf("imbalance too weak: max=%d mean=%.1f", mx, mean)
	}
}

func TestGitTablesMinSupportRespected(t *testing.T) {
	cfg := ReducedGitConfig()
	c := GenerateGitTables(cfg)
	counts := map[string]int{}
	for _, tb := range c.Tables {
		for _, col := range tb.Columns {
			counts[col.SemanticType]++
		}
	}
	for st, n := range counts {
		if n < cfg.MinSupport {
			t.Fatalf("type %q occurs %d < MinSupport %d", st, n, cfg.MinSupport)
		}
	}
}

func TestGitTablesIDColumnsSequential(t *testing.T) {
	c := GenerateGitTables(GitConfig{NumTables: 80, Seed: 5, MinRows: 10, MaxRows: 12, NameHintProb: 0, MinSupport: 1})
	found := false
	for _, tb := range c.Tables {
		for _, col := range tb.Columns {
			if col.SemanticType == "dbpedia/id" {
				found = true
				for r := 1; r < len(col.NumValues); r++ {
					if col.NumValues[r] <= col.NumValues[r-1] {
						t.Fatal("id column not strictly increasing")
					}
				}
			}
		}
	}
	if !found {
		t.Skip("no id column sampled at this seed/scale")
	}
}

func TestCorpusFilterMinSupport(t *testing.T) {
	c := &Corpus{Name: "t"}
	mk := func(id, st string) *table.Table {
		return &table.Table{Name: "n", ID: id, Columns: []*table.Column{
			{Header: "h", SemanticType: st, Kind: table.KindNumeric, NumValues: []float64{1}},
		}}
	}
	c.Tables = []*table.Table{mk("a", "common"), mk("b", "common"), mk("c", "rare")}
	c.BuildVocabulary()
	c.FilterMinSupport(2)
	if len(c.Tables) != 2 {
		t.Fatalf("tables after filter = %d", len(c.Tables))
	}
	if len(c.Types) != 1 || c.Types[0] != "common" {
		t.Fatalf("types after filter = %v", c.Types)
	}
}

func TestCorpusSubsetSharesVocabulary(t *testing.T) {
	c := GenerateSportsTables(SportsConfig{NumTables: 22, Seed: 2, MinRows: 5, MaxRows: 8, WeakNameProb: 0})
	sub := c.Subset([]int{0, 1, 2})
	if len(sub.Tables) != 3 {
		t.Fatal("subset size wrong")
	}
	if len(sub.LabelIndex) != len(c.LabelIndex) {
		t.Fatal("subset must share the parent vocabulary")
	}
}

func TestCorpusValidateCatchesDuplicateIDs(t *testing.T) {
	c := GenerateSportsTables(SportsConfig{NumTables: 11, Seed: 3, MinRows: 5, MaxRows: 8, WeakNameProb: 0})
	c.Tables[1].ID = c.Tables[0].ID
	if err := c.Validate(); err == nil {
		t.Fatal("duplicate ids not caught")
	}
}

func TestStatsStringNonEmpty(t *testing.T) {
	c := GenerateSportsTables(SportsConfig{NumTables: 11, Seed: 4, MinRows: 5, MaxRows: 8, WeakNameProb: 0})
	if c.ComputeStats().String() == "" {
		t.Fatal("stats formatting empty")
	}
}

func TestSynthesizeHeadersPaperExample(t *testing.T) {
	// "Player Age" must synthesize plural plausible abbreviations incl. an
	// initialism, as in the paper's GPT list.
	cands := SynthesizeHeaders("Player Age", 10)
	if len(cands) < 5 {
		t.Fatalf("only %d candidates: %v", len(cands), cands)
	}
	hasInitialism := false
	for _, c := range cands {
		if c == "PA" {
			hasInitialism = true
		}
	}
	if !hasInitialism {
		t.Fatalf("initialism missing from %v", cands)
	}
	// deterministic
	again := SynthesizeHeaders("Player Age", 10)
	for i := range cands {
		if cands[i] != again[i] {
			t.Fatal("synthesis must be deterministic")
		}
	}
}

func TestSynthesizeHeadersSingleWordAndEmpty(t *testing.T) {
	if cands := SynthesizeHeaders("Goals", 10); len(cands) == 0 {
		t.Fatal("single word must synthesize")
	}
	if cands := SynthesizeHeaders("", 10); cands != nil {
		t.Fatalf("empty header synthesized %v", cands)
	}
}

func TestSynthesizeHeadersUnique(t *testing.T) {
	cands := SynthesizeHeaders("Points Per Game", 10)
	seen := map[string]bool{}
	for _, c := range cands {
		if seen[c] {
			t.Fatalf("duplicate candidate %q in %v", c, cands)
		}
		seen[c] = true
	}
}

func TestStatSpecSampling(t *testing.T) {
	rng := newTestRand()
	specs := []struct {
		spec    StatSpec
		lo, hi  float64
		intLike bool
	}{
		{cnt("x", "X", 5, 10), 5, 10, true},
		{pct("x", "X", 0, 100), 0, 100, false},
		{frac01("x", "X", 0, 1), 0, 1, false},
	}
	for _, c := range specs {
		for i := 0; i < 200; i++ {
			v := c.spec.sample(rng)
			if v < c.lo-1e-9 || v > c.hi+1e-9 {
				t.Fatalf("sample %v outside [%v,%v]", v, c.lo, c.hi)
			}
			if c.intLike && v != math.Trunc(v) {
				t.Fatalf("integer spec produced %v", v)
			}
		}
	}
}

func TestStatSpecNonNegativeByDefault(t *testing.T) {
	rng := newTestRand()
	sp := rate("x", "X", 0.5, 3)
	for i := 0; i < 500; i++ {
		if sp.sample(rng) < 0 {
			t.Fatal("non-AllowNeg normal produced a negative value")
		}
	}
	neg := rateNeg("x", "X", 0, 3)
	sawNeg := false
	for i := 0; i < 500; i++ {
		if neg.sample(rng) < 0 {
			sawNeg = true
		}
	}
	if !sawNeg {
		t.Fatal("AllowNeg spec never negative")
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(99)) }
