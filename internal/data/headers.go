package data

import (
	"math/rand"
	"strings"
	"unicode"
)

// SynthesizeHeaders generates up to n plausible abbreviations for a
// human-readable header, reproducing the paper's GPT-generated abbreviation
// lists for the Table 4 "w/ synthesized c_h" experiment (e.g. "Player Age"
// → PA, PlAge, PAG, PlrAge, …). The output is deterministic for a given
// header.
func SynthesizeHeaders(header string, n int) []string {
	words := splitHeaderWords(header)
	if len(words) == 0 {
		return nil
	}
	seen := map[string]struct{}{}
	var out []string
	push := func(s string) {
		if s == "" {
			return
		}
		if _, dup := seen[s]; dup {
			return
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}

	// 1. Initialism: "Player Age" → "PA"
	var ini strings.Builder
	for _, w := range words {
		ini.WriteByte(w[0])
	}
	push(strings.ToUpper(ini.String()))

	// 2–4. Prefix truncations of each word at lengths 2, 3, 4:
	// "PlAg", "PlaAge", ...
	for _, k := range []int{2, 3, 4} {
		var b strings.Builder
		for _, w := range words {
			b.WriteString(titleCase(prefix(w, k)))
		}
		push(b.String())
	}

	// 5. First word truncated + initial of the rest: "PlaA"
	if len(words) > 1 {
		var b strings.Builder
		b.WriteString(titleCase(prefix(words[0], 3)))
		for _, w := range words[1:] {
			b.WriteByte(byte(unicode.ToUpper(rune(w[0]))))
		}
		push(b.String())
	}

	// 6. Vowel-dropped words: "Plyr Ag" style, joined.
	{
		var b strings.Builder
		for _, w := range words {
			b.WriteString(titleCase(dropVowels(w)))
		}
		push(b.String())
	}

	// 7. Initial of first + last word full: "PAge"
	if len(words) > 1 {
		push(strings.ToUpper(words[0][:1]) + titleCase(words[len(words)-1]))
	}

	// 8. First word full + initials: "PlayerA"
	if len(words) > 1 {
		var b strings.Builder
		b.WriteString(titleCase(words[0]))
		for _, w := range words[1:] {
			b.WriteByte(byte(unicode.ToUpper(rune(w[0]))))
		}
		push(b.String())
	}

	// 9. Underscored truncation: "ply_age"
	{
		parts := make([]string, len(words))
		for i, w := range words {
			parts[i] = dropVowels(prefix(w, 4))
		}
		push(strings.ToLower(strings.Join(parts, "_")))
	}

	// 10. Compact vowel-dropped prefix of whole phrase: "PlygAge" fallback
	{
		joined := strings.Join(words, "")
		push(titleCase(prefix(dropVowels(joined), 6)))
	}

	if len(out) > n {
		out = out[:n]
	}
	return out
}

// PickSyntheticHeader selects one abbreviation for a header using rng,
// mirroring the paper's random choice among the 10 GPT candidates.
func PickSyntheticHeader(header string, rng *rand.Rand) string {
	cands := SynthesizeHeaders(header, 10)
	if len(cands) == 0 {
		return header
	}
	return cands[rng.Intn(len(cands))]
}

func splitHeaderWords(h string) []string {
	h = strings.NewReplacer("_", " ", "-", " ", ".", " ").Replace(h)
	var words []string
	for _, f := range strings.Fields(h) {
		f = strings.ToLower(strings.TrimFunc(f, func(r rune) bool {
			return !unicode.IsLetter(r) && !unicode.IsDigit(r)
		}))
		if f != "" {
			words = append(words, f)
		}
	}
	return words
}

func prefix(s string, k int) string {
	if len(s) <= k {
		return s
	}
	return s[:k]
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func dropVowels(s string) string {
	if s == "" {
		return s
	}
	var b strings.Builder
	b.WriteByte(s[0]) // keep the first letter even if a vowel
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case 'a', 'e', 'i', 'o', 'u':
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
