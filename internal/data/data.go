// Package data provides the evaluation corpora of the paper: faithful
// synthetic equivalents of SportsTables [17] and GitTables Numeric [12]
// (see DESIGN.md §2 for the substitution argument), plus corpus-level
// utilities (type vocabularies, Table 1 statistics, minimum-support
// filtering).
package data

import (
	"fmt"
	"sort"

	"github.com/sematype/pythagoras/internal/table"
)

// Corpus is a set of semantically annotated tables with a fixed type
// vocabulary.
type Corpus struct {
	Name   string
	Tables []*table.Table
	// Types is the sorted list of semantic types present.
	Types []string
	// LabelIndex maps a semantic type to its class index in Types.
	LabelIndex map[string]int
}

// BuildVocabulary (re)derives Types and LabelIndex from the tables.
func (c *Corpus) BuildVocabulary() {
	set := map[string]struct{}{}
	for _, t := range c.Tables {
		for _, col := range t.Columns {
			if col.SemanticType != "" {
				set[col.SemanticType] = struct{}{}
			}
		}
	}
	c.Types = make([]string, 0, len(set))
	for st := range set {
		c.Types = append(c.Types, st)
	}
	sort.Strings(c.Types)
	c.LabelIndex = make(map[string]int, len(c.Types))
	for i, st := range c.Types {
		c.LabelIndex[st] = i
	}
}

// Stats holds the Table 1 numbers for a corpus.
type Stats struct {
	NumTables    int
	AvgTextCols  float64
	AvgNumCols   float64
	NumTypes     int
	NumNumTypes  int // types that appear on numerical columns
	NumTextTypes int
	TotalColumns int
	NumericShare float64 // fraction of all columns that are numeric
}

// ComputeStats derives the Table 1 statistics.
func (c *Corpus) ComputeStats() Stats {
	s := Stats{NumTables: len(c.Tables), NumTypes: len(c.Types)}
	numTypes := map[string]struct{}{}
	textTypes := map[string]struct{}{}
	var textCols, numCols int
	for _, t := range c.Tables {
		for _, col := range t.Columns {
			if col.Kind == table.KindNumeric {
				numCols++
				numTypes[col.SemanticType] = struct{}{}
			} else {
				textCols++
				textTypes[col.SemanticType] = struct{}{}
			}
		}
	}
	s.TotalColumns = textCols + numCols
	s.NumNumTypes = len(numTypes)
	s.NumTextTypes = len(textTypes)
	if s.NumTables > 0 {
		s.AvgTextCols = float64(textCols) / float64(s.NumTables)
		s.AvgNumCols = float64(numCols) / float64(s.NumTables)
	}
	if s.TotalColumns > 0 {
		s.NumericShare = float64(numCols) / float64(s.TotalColumns)
	}
	return s
}

// String renders the stats as one Table 1 row.
func (s Stats) String() string {
	return fmt.Sprintf("#Tables=%d  Non-Num.Cols/Table=%.2f  Num.Cols/Table=%.2f  #sem.Types=%d",
		s.NumTables, s.AvgTextCols, s.AvgNumCols, s.NumTypes)
}

// FilterMinSupport removes columns whose semantic type occurs fewer than
// min times in the whole corpus (the GitTables Numeric construction rule),
// then rebuilds the vocabulary. Tables left without columns are dropped.
func (c *Corpus) FilterMinSupport(min int) {
	counts := map[string]int{}
	for _, t := range c.Tables {
		for _, col := range t.Columns {
			counts[col.SemanticType]++
		}
	}
	var kept []*table.Table
	for _, t := range c.Tables {
		var cols []*table.Column
		for _, col := range t.Columns {
			if counts[col.SemanticType] >= min {
				cols = append(cols, col)
			}
		}
		if len(cols) > 0 {
			t.Columns = cols
			kept = append(kept, t)
		}
	}
	c.Tables = kept
	c.BuildVocabulary()
}

// Validate checks every table and the vocabulary coverage.
func (c *Corpus) Validate() error {
	if len(c.Tables) == 0 {
		return fmt.Errorf("data: corpus %q has no tables", c.Name)
	}
	ids := map[string]struct{}{}
	for _, t := range c.Tables {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("data: corpus %q: %w", c.Name, err)
		}
		if _, dup := ids[t.ID]; dup {
			return fmt.Errorf("data: corpus %q: duplicate table id %q", c.Name, t.ID)
		}
		ids[t.ID] = struct{}{}
		for _, col := range t.Columns {
			if _, ok := c.LabelIndex[col.SemanticType]; !ok {
				return fmt.Errorf("data: corpus %q: type %q missing from vocabulary", c.Name, col.SemanticType)
			}
		}
	}
	return nil
}

// Subset returns a corpus containing the tables at the given indices; the
// vocabulary is shared with the parent (class indices stay comparable).
func (c *Corpus) Subset(idx []int) *Corpus {
	sub := &Corpus{Name: c.Name, Types: c.Types, LabelIndex: c.LabelIndex}
	for _, i := range idx {
		sub.Tables = append(sub.Tables, c.Tables[i])
	}
	return sub
}
