package data

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/sematype/pythagoras/internal/table"
)

// GitConfig controls generation of the synthetic GitTables Numeric corpus.
type GitConfig struct {
	// NumTables is the corpus size; the paper's derived corpus has 6,577.
	NumTables int
	Seed      int64
	MinRows   int
	MaxRows   int
	// NameHintProb is the probability that the table's filename-style name
	// contains tokens of its column concepts — GitTables names are only
	// sometimes informative.
	NameHintProb float64
	// MinSupport drops types occurring fewer times (paper: 10).
	MinSupport int
}

// DefaultGitConfig mirrors the paper's corpus scale (Table 1).
func DefaultGitConfig() GitConfig {
	return GitConfig{NumTables: 6577, Seed: 23, MinRows: 10, MaxRows: 40, NameHintProb: 0.55, MinSupport: 10}
}

// ReducedGitConfig is the test/bench scale.
func ReducedGitConfig() GitConfig {
	return GitConfig{NumTables: 260, Seed: 23, MinRows: 8, MaxRows: 16, NameHintProb: 0.55, MinSupport: 3}
}

// distSequential marks ID-like columns: strictly increasing integers with
// random start/stride (their sortedness is what identifies them).
const distSequential distKind = 100

// gitNumericBases defines the 60 base numeric concepts of the DBpedia-
// flavoured type space; each expands to 3 variants → 180 numeric types.
func gitNumericBases() []StatSpec {
	return []StatSpec{
		{Concept: "id", Header: "Id", Kind: distSequential},
		cnt("year", "Year", 1950, 2023),
		cnt("month", "Month", 1, 12),
		cnt("day", "Day", 1, 31),
		cnt("hour", "Hour", 0, 23),
		cnt("age", "Age", 1, 95),
		money("price", "Price", 3.5, 1.2),
		money("cost", "Cost", 4.2, 1.1),
		pct("discount_pct", "Discount Pct", 0, 60),
		money("tax", "Tax", 2.2, 1),
		frac01("rating", "Rating", 0, 5),
		rate("score", "Score", 62, 20),
		cnt("rank", "Rank", 1, 500),
		cnt("count", "Count", 0, 5000),
		cnt("quantity", "Quantity", 1, 900),
		money("total", "Total", 5.1, 1.4),
		cnt("views", "Views", 0, 2000000),
		cnt("likes", "Likes", 0, 90000),
		cnt("downloads", "Downloads", 0, 500000),
		cnt("followers", "Followers", 0, 300000),
		cnt("stars", "Stars", 0, 80000),
		cnt("forks", "Forks", 0, 20000),
		cnt("commits", "Commits", 1, 30000),
		cnt("issues", "Issues", 0, 4000),
		cnt("size_bytes", "Size Bytes", 100, 100000000),
		rate("memory_mb", "Memory Mb", 2048, 1200),
		pct("cpu_pct", "Cpu Pct", 0, 100),
		rate("duration_s", "Duration S", 240, 180),
		rate("distance_km", "Distance Km", 120, 90),
		rate("speed_kmh", "Speed Kmh", 70, 30),
		frac01("latitude", "Latitude", -90, 90),
		frac01("longitude", "Longitude", -180, 180),
		rate("elevation_m", "Elevation M", 400, 350),
		rate("area_km2", "Area Km2", 5000, 4000),
		cnt("population", "Population", 500, 30000000),
		money("income", "Income", 10.5, 0.6),
		money("salary", "Salary", 10.9, 0.5),
		money("revenue", "Revenue", 13.5, 1.3),
		money("budget", "Budget", 12.8, 1.2),
		rate("weight_kg", "Weight Kg", 45, 30),
		rate("height_cm", "Height Cm", 120, 60),
		rate("width_cm", "Width Cm", 80, 50),
		rate("length_cm", "Length Cm", 100, 70),
		rate("depth_cm", "Depth Cm", 40, 25),
		rate("volume_l", "Volume L", 20, 18),
		rateNeg("temperature_c", "Temperature C", 15, 12),
		pct("humidity_pct", "Humidity Pct", 20, 95),
		rate("pressure_hpa", "Pressure Hpa", 1013, 12),
		rate("voltage", "Voltage", 120, 60),
		rate("current_a", "Current A", 4, 3),
		rate("power_w", "Power W", 300, 200),
		rate("energy_kwh", "Energy Kwh", 35, 25),
		cnt("calories", "Calories", 20, 900),
		rate("protein_g", "Protein G", 12, 9),
		rate("fat_g", "Fat G", 9, 7),
		rate("carbs_g", "Carbs G", 25, 18),
		rate("sodium_mg", "Sodium Mg", 350, 250),
		rate("frequency_hz", "Frequency Hz", 1200, 900),
		pct("percent", "Percent", 0, 100),
		frac01("ratio", "Ratio", 0, 3),
	}
}

// variantSuffixes expands each base concept into 3 related types whose
// distributions overlap — the confusable long tail that keeps GitTables
// macro F1 low.
var variantSuffixes = []string{"", "_min", "_max"}

// gitTextType couples a text semantic type with its value pool.
type gitTextType struct {
	Concept string
	Header  string
	Pool    []string
}

func gitTextTypes() []gitTextType {
	countries := []string{"Germany", "France", "Japan", "Brazil", "Canada", "India", "Kenya", "Norway", "Chile", "Vietnam"}
	cities := sharedCities
	names := make([]string, 0, 24)
	for i := 0; i < 24; i++ {
		names = append(names, sharedFirstNames[i%len(sharedFirstNames)]+" "+sharedLastNames[(i*7)%len(sharedLastNames)])
	}
	colors := []string{"red", "blue", "green", "yellow", "black", "white", "orange", "purple", "gray", "brown"}
	status := []string{"active", "inactive", "pending", "closed", "open", "archived", "draft", "done"}
	langs := []string{"english", "german", "french", "spanish", "japanese", "portuguese", "hindi", "arabic"}
	cats := []string{"electronics", "clothing", "food", "books", "toys", "sports", "garden", "music", "tools", "health"}
	brands := []string{"Acme", "Globex", "Initech", "Umbrella", "Stark", "Wayne", "Hooli", "Wonka", "Cyberdyne", "Tyrell"}
	units := []string{"kg", "cm", "m", "km", "lb", "oz", "ml", "l", "pcs", "units"}
	currencies := []string{"USD", "EUR", "GBP", "JPY", "CHF", "CAD", "AUD", "SEK"}
	genders := []string{"male", "female", "other"}
	weekdays := []string{"Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"}
	months := []string{"January", "February", "March", "April", "May", "June", "July", "August", "September", "October", "November", "December"}
	words := []string{"alpha", "beta", "gamma", "delta", "omega", "prime", "core", "edge", "node", "link"}
	codes := []string{"A-100", "B-200", "C-300", "D-400", "E-500", "F-600", "G-700", "H-800"}

	return []gitTextType{
		{"name", "Name", names}, {"full_name", "Full Name", names}, {"author", "Author", names},
		{"owner", "Owner", names}, {"creator", "Creator", names},
		{"title", "Title", words}, {"label", "Label", words}, {"tag", "Tag", words},
		{"description", "Description", words}, {"comment", "Comment", words}, {"note", "Note", words},
		{"country", "Country", countries}, {"nationality", "Nationality", countries},
		{"city", "City", cities}, {"region", "Region", cities}, {"location", "Location", cities},
		{"address", "Address", cities},
		{"category", "Category", cats}, {"type", "Type", cats}, {"group", "Group", cats},
		{"department", "Department", cats}, {"genre", "Genre", cats},
		{"status", "Status", status}, {"state", "State", status}, {"phase", "Phase", status},
		{"color", "Color", colors}, {"colour", "Colour", colors},
		{"language", "Language", langs}, {"locale", "Locale", langs},
		{"brand", "Brand", brands}, {"manufacturer", "Manufacturer", brands}, {"vendor", "Vendor", brands},
		{"unit", "Unit", units}, {"currency", "Currency", currencies},
		{"gender", "Gender", genders}, {"weekday", "Weekday", weekdays}, {"month_name", "Month Name", months},
		{"code", "Code", codes}, {"sku", "Sku", codes},
	}
}

// gitType is one entry of the flattened 219-type catalog.
type gitType struct {
	SemanticType string
	Header       string
	IsNumeric    bool
	Spec         StatSpec // numeric only
	Pool         []string // text only
	// Weight is the Zipf popularity used during sampling.
	Weight float64
}

func gitCatalog() []gitType {
	var cat []gitType
	for bi, base := range gitNumericBases() {
		for vi, suf := range variantSuffixes {
			sp := base
			sp.Concept = base.Concept + suf
			sp.Header = base.Header + strings.ReplaceAll(titleCase(suf), "_", " ")
			// Jitter variants so _min/_max shift but overlap heavily.
			shift := 1 + 0.25*float64(vi)
			sp.P1 *= shift
			sp.P2 *= shift
			cat = append(cat, gitType{
				SemanticType: "dbpedia/" + sp.Concept,
				Header:       sp.Header,
				IsNumeric:    true,
				Spec:         sp,
				Weight:       1 / math.Pow(float64(bi*len(variantSuffixes)+vi+1), 0.85),
			})
		}
	}
	for ti, tt := range gitTextTypes() {
		cat = append(cat, gitType{
			SemanticType: "dbpedia/" + tt.Concept,
			Header:       tt.Header,
			Pool:         tt.Pool,
			Weight:       1 / math.Pow(float64(ti+2), 0.85),
		})
	}
	return cat
}

// GitTypeCatalog returns all semantic types the generator can produce (219,
// matching Table 1).
func GitTypeCatalog() []string {
	cat := gitCatalog()
	out := make([]string, len(cat))
	for i, t := range cat {
		out[i] = t.SemanticType
	}
	return out
}

// GenerateGitTables builds the synthetic GitTables Numeric corpus: tables
// with ≥80 % numerical columns, Zipf-distributed type frequencies, and
// filename-style (only sometimes informative) table names.
func GenerateGitTables(cfg GitConfig) *Corpus {
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := gitCatalog()
	var numIdx, textIdx []int
	for i, t := range cat {
		if t.IsNumeric {
			numIdx = append(numIdx, i)
		} else {
			textIdx = append(textIdx, i)
		}
	}

	c := &Corpus{Name: "GitTables Numeric"}
	for i := 0; i < cfg.NumTables; i++ {
		c.Tables = append(c.Tables, generateGitTable(rng, cat, numIdx, textIdx, i, cfg))
	}
	c.BuildVocabulary()
	if cfg.MinSupport > 1 {
		c.FilterMinSupport(cfg.MinSupport)
	}
	return c
}

// sampleWeighted draws k distinct indices from idx proportional to catalog
// weights.
func sampleWeighted(rng *rand.Rand, cat []gitType, idx []int, k int) []int {
	if k >= len(idx) {
		out := append([]int(nil), idx...)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out[:min(k, len(out))]
	}
	chosen := map[int]struct{}{}
	var out []int
	var total float64
	for _, i := range idx {
		total += cat[i].Weight
	}
	for len(out) < k {
		r := rng.Float64() * total
		for _, i := range idx {
			r -= cat[i].Weight
			if r <= 0 {
				if _, dup := chosen[i]; !dup {
					chosen[i] = struct{}{}
					out = append(out, i)
				}
				break
			}
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func generateGitTable(rng *rand.Rand, cat []gitType, numIdx, textIdx []int, idx int, cfg GitConfig) *table.Table {
	rows := cfg.MinRows + rng.Intn(cfg.MaxRows-cfg.MinRows+1)
	// Column counts respecting the ≥80 % numeric filter: text count is
	// small and numeric count at least 4× larger, centering on the paper's
	// 2.08 text / 8.95 numeric per table.
	nText := []int{0, 1, 2, 2, 2, 3, 3, 4}[rng.Intn(8)]
	nNum := 4*nText + 1 + rng.Intn(4)
	if nText == 0 {
		nNum = 6 + rng.Intn(8)
	}

	t := &table.Table{ID: fmt.Sprintf("git_%05d", idx)}
	textTypes := sampleWeighted(rng, cat, textIdx, nText)
	numTypes := sampleWeighted(rng, cat, numIdx, nNum)

	// Filename-style table name; sometimes hints at the content.
	generic := []string{"data", "export", "final", "log", "results", "table", "list", "report", "dump", "records"}
	var tokens []string
	if rng.Float64() < cfg.NameHintProb {
		// leak 1–2 concept tokens into the name
		hints := append(append([]int{}, numTypes...), textTypes...)
		rng.Shuffle(len(hints), func(i, j int) { hints[i], hints[j] = hints[j], hints[i] })
		for _, h := range hints[:min(1+rng.Intn(2), len(hints))] {
			concept := strings.TrimPrefix(cat[h].SemanticType, "dbpedia/")
			tokens = append(tokens, concept)
		}
	}
	tokens = append(tokens, generic[rng.Intn(len(generic))])
	if rng.Float64() < 0.4 {
		tokens = append(tokens, fmt.Sprintf("%d", 2010+rng.Intn(14)))
	}
	t.Name = strings.Join(tokens, "_")

	for _, ti := range textTypes {
		tt := cat[ti]
		vals := make([]string, rows)
		for r := range vals {
			vals[r] = tt.Pool[rng.Intn(len(tt.Pool))]
		}
		t.Columns = append(t.Columns, &table.Column{
			Header:          tt.Header,
			SyntheticHeader: PickSyntheticHeader(tt.Header, rng),
			SemanticType:    tt.SemanticType,
			Kind:            table.KindText,
			TextValues:      vals,
		})
	}
	for _, ni := range numTypes {
		nt := cat[ni]
		vals := make([]float64, rows)
		if nt.Spec.Kind == distSequential {
			start := rng.Intn(10000)
			stride := 1 + rng.Intn(3)
			for r := range vals {
				vals[r] = float64(start + r*stride)
			}
		} else {
			for r := range vals {
				vals[r] = nt.Spec.sample(rng)
			}
		}
		t.Columns = append(t.Columns, &table.Column{
			Header:          nt.Header,
			SyntheticHeader: PickSyntheticHeader(nt.Header, rng),
			SemanticType:    nt.SemanticType,
			Kind:            table.KindNumeric,
			NumValues:       vals,
		})
	}
	// GitTables column order is arbitrary; shuffle so models cannot rely on
	// position.
	rng.Shuffle(len(t.Columns), func(i, j int) { t.Columns[i], t.Columns[j] = t.Columns[j], t.Columns[i] })
	return t
}
