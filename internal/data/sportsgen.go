package data

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/sematype/pythagoras/internal/table"
)

// SportsConfig controls generation of the synthetic SportsTables corpus.
type SportsConfig struct {
	// NumTables is the corpus size; the paper's corpus has 1,187 tables.
	NumTables int
	Seed      int64
	// MinRows/MaxRows bound table length.
	MinRows, MaxRows int
	// WeakNameProb is the probability a table gets an uninformative name
	// ("Stats 2021"), limiting how far table-name context can carry.
	WeakNameProb float64
	// Domains limits generation to the first N sports domains (0 = all 11).
	// Fewer domains shrink the type space proportionally — used by tests
	// that need a learnable corpus at very small table counts.
	Domains int
}

// DefaultSportsConfig mirrors the paper's corpus scale (Table 1).
func DefaultSportsConfig() SportsConfig {
	return SportsConfig{NumTables: 1187, Seed: 17, MinRows: 15, MaxRows: 45, WeakNameProb: 0.12}
}

// ReducedSportsConfig is the test/bench scale: every semantic type still
// occurs, the context mechanism is identical, only the table count shrinks.
func ReducedSportsConfig() SportsConfig {
	return SportsConfig{NumTables: 220, Seed: 17, MinRows: 8, MaxRows: 16, WeakNameProb: 0.12}
}

// distKind enumerates value distributions for numeric stats.
type distKind int

const (
	distNormal     distKind = iota // P1 mean, P2 std, clipped at 0 unless AllowNeg
	distUniformInt                 // P1..P2 integer
	distUniform                    // P1..P2 float
	distLogNormal                  // ln-space mean P1, std P2
	distPct                        // uniform P1..P2 expressed as 0–100 or 0–1
)

// StatSpec describes one numeric statistic: its concept name, display
// header, and value distribution.
type StatSpec struct {
	Concept  string
	Header   string
	Kind     distKind
	P1, P2   float64
	Decimals int
	AllowNeg bool
}

func (sp StatSpec) sample(rng *rand.Rand) float64 {
	var v float64
	switch sp.Kind {
	case distNormal:
		v = sp.P1 + rng.NormFloat64()*sp.P2
		if !sp.AllowNeg && v < 0 {
			v = 0
		}
	case distUniformInt:
		v = float64(int(sp.P1) + rng.Intn(int(sp.P2-sp.P1)+1))
	case distUniform:
		v = sp.P1 + rng.Float64()*(sp.P2-sp.P1)
	case distLogNormal:
		v = math.Exp(sp.P1 + rng.NormFloat64()*sp.P2)
	case distPct:
		v = sp.P1 + rng.Float64()*(sp.P2-sp.P1)
	}
	scale := math.Pow(10, float64(sp.Decimals))
	return math.Round(v*scale) / scale
}

// helper constructors keep the domain catalogs compact.
func rate(concept, header string, mean, std float64) StatSpec {
	return StatSpec{Concept: concept, Header: header, Kind: distNormal, P1: mean, P2: std, Decimals: 1}
}

func rateNeg(concept, header string, mean, std float64) StatSpec {
	return StatSpec{Concept: concept, Header: header, Kind: distNormal, P1: mean, P2: std, Decimals: 1, AllowNeg: true}
}

func cnt(concept, header string, lo, hi float64) StatSpec {
	return StatSpec{Concept: concept, Header: header, Kind: distUniformInt, P1: lo, P2: hi}
}

func pct(concept, header string, lo, hi float64) StatSpec {
	return StatSpec{Concept: concept, Header: header, Kind: distPct, P1: lo, P2: hi, Decimals: 1}
}

func frac01(concept, header string, lo, hi float64) StatSpec {
	return StatSpec{Concept: concept, Header: header, Kind: distUniform, P1: lo, P2: hi, Decimals: 3}
}

func money(concept, header string, lnMean, lnStd float64) StatSpec {
	return StatSpec{Concept: concept, Header: header, Kind: distLogNormal, P1: lnMean, P2: lnStd}
}

// sportsDomain is one sport with its leagues, positions, teams and stats.
type sportsDomain struct {
	Name        string
	Leagues     []string
	Positions   []string
	TeamNames   []string
	PlayerStats []StatSpec // 9 domain-specific player stats
	TeamStats   []StatSpec // 9 domain-specific team stats
}

// sharedPlayerStats are identically distributed in every domain: value-only
// models cannot tell basketball.player.age from soccer.player.age — the
// paper's core difficulty, reproduced deliberately.
func sharedPlayerStats() []StatSpec {
	return []StatSpec{
		cnt("games_played", "Games Played", 1, 82),
		cnt("games_started", "Games Started", 0, 82),
		rate("minutes_per_game", "Minutes Per Game", 24, 8),
		cnt("age", "Age", 18, 40),
		rate("height_cm", "Height Cm", 185, 9),
		rate("weight_kg", "Weight Kg", 86, 11),
		money("salary_usd", "Salary Usd", 14.3, 0.9),
		cnt("jersey_number", "Jersey Number", 0, 99),
		cnt("years_pro", "Years Pro", 0, 20),
	}
}

func sharedTeamStats() []StatSpec {
	return []StatSpec{
		cnt("games_played", "Games Played", 30, 82),
		cnt("wins", "Wins", 0, 62),
		cnt("losses", "Losses", 0, 62),
		frac01("win_pct", "Win Pct", 0.2, 0.8),
		cnt("season_year", "Season Year", 1990, 2023),
		cnt("avg_attendance", "Avg Attendance", 5000, 80000),
		money("payroll_usd", "Payroll Usd", 18.2, 0.6),
		cnt("founded_year", "Founded Year", 1880, 2000),
		cnt("championships", "Championships", 0, 17),
	}
}

var sharedFirstNames = []string{
	"James", "Maria", "Liam", "Sofia", "Noah", "Emma", "Lucas", "Mia", "Ethan",
	"Ava", "Mateo", "Lena", "Kai", "Nora", "Omar", "Ines", "Hugo", "Yuki",
	"Andre", "Clara", "Diego", "Anya", "Felix", "Zara", "Marco", "Elif",
	"Jonas", "Priya", "Leo", "Hana", "Nico", "Aisha", "Tom", "Vera",
}

var sharedLastNames = []string{
	"Smith", "Garcia", "Mueller", "Tanaka", "Okafor", "Johnson", "Silva",
	"Kowalski", "Novak", "Brown", "Martin", "Rossi", "Kim", "Petrov",
	"Andersen", "Dubois", "Costa", "Yamamoto", "Olsen", "Fischer", "Moreau",
	"Santos", "Weber", "Ivanov", "Nakamura", "Jensen", "Lopez", "Wagner",
	"Sato", "Eriksen", "Keita", "Haaland", "Mbeki", "OConnor",
}

var sharedCities = []string{
	"Springfield", "Riverton", "Lakewood", "Fairview", "Greenville",
	"Madison", "Clinton", "Georgetown", "Salem", "Bristol", "Ashland",
	"Burlington", "Manchester", "Oxford", "Dover", "Hudson", "Milton",
	"Newport", "Auburn", "Clayton",
}

// sportsDomains defines the 11 sports. Several stat concepts repeat across
// domains (goals, assists, points …) with similar distributions — exactly
// the cross-domain ambiguity of Figure 1 ('basketball.player.assists_per_game'
// vs 'soccer.player.assists_per_game').
func sportsDomains() []sportsDomain {
	return []sportsDomain{
		{
			Name:      "basketball",
			Leagues:   []string{"NBA", "WNBA", "EuroLeague", "NCAA"},
			Positions: []string{"PG", "SG", "SF", "PF", "C", "SF/PF", "PF/C", "PG/SG"},
			TeamNames: []string{"Lakers", "Celtics", "Bulls", "Warriors", "Spurs", "Heat", "Knicks", "Raptors", "Suns", "Nuggets"},
			PlayerStats: []StatSpec{
				rate("points_per_game", "Points Per Game", 11, 6),
				rate("assists_per_game", "Assists Per Game", 3, 2.2),
				rate("rebounds_per_game", "Rebounds Per Game", 5, 2.8),
				rate("steals_per_game", "Steals Per Game", 1, 0.5),
				rate("blocks_per_game", "Blocks Per Game", 0.7, 0.6),
				frac01("field_goal_pct", "Field Goal Pct", 0.38, 0.58),
				frac01("three_point_pct", "Three Point Pct", 0.25, 0.45),
				frac01("free_throw_pct", "Free Throw Pct", 0.6, 0.92),
				rate("turnovers_per_game", "Turnovers Per Game", 1.8, 1),
			},
			TeamStats: []StatSpec{
				rate("points_scored_per_game", "Points Scored Per Game", 108, 6),
				rate("points_allowed_per_game", "Points Allowed Per Game", 108, 6),
				rate("offensive_rating", "Offensive Rating", 110, 5),
				rate("defensive_rating", "Defensive Rating", 110, 5),
				rate("pace", "Pace", 98, 3),
				cnt("three_pointers_made", "Three Pointers Made", 500, 1300),
				cnt("rebounds_total", "Rebounds Total", 3000, 4200),
				cnt("assists_total", "Assists Total", 1600, 2600),
				cnt("home_wins", "Home Wins", 5, 38),
			},
		},
		{
			Name:      "football",
			Leagues:   []string{"NFL", "NCAAF", "CFL", "XFL"},
			Positions: []string{"QB", "RB", "WR", "TE", "OL", "DL", "LB", "CB", "S", "K"},
			TeamNames: []string{"Patriots", "Cowboys", "Packers", "Steelers", "Raiders", "Giants", "Bears", "Eagles", "Chiefs", "Broncos"},
			PlayerStats: []StatSpec{
				cnt("passing_yards", "Passing Yards", 0, 5200),
				cnt("rushing_yards", "Rushing Yards", 0, 2000),
				cnt("receiving_yards", "Receiving Yards", 0, 1800),
				cnt("touchdowns", "Touchdowns", 0, 50),
				cnt("interceptions", "Interceptions", 0, 25),
				rate("sacks", "Sacks", 3, 3),
				cnt("tackles", "Tackles", 0, 150),
				cnt("receptions", "Receptions", 0, 120),
				cnt("fumbles", "Fumbles", 0, 10),
			},
			TeamStats: []StatSpec{
				cnt("points_for", "Points For", 200, 550),
				cnt("points_against", "Points Against", 200, 550),
				cnt("total_yards", "Total Yards", 4000, 7000),
				cnt("yards_allowed", "Yards Allowed", 4000, 7000),
				cnt("turnovers_forced", "Turnovers Forced", 5, 40),
				cnt("penalties", "Penalties", 60, 140),
				cnt("first_downs", "First Downs", 250, 420),
				cnt("field_goals_made", "Field Goals Made", 10, 40),
				cnt("punts", "Punts", 30, 90),
			},
		},
		{
			Name:      "soccer",
			Leagues:   []string{"EPL", "LaLiga", "Bundesliga", "SerieA", "Ligue1", "MLS"},
			Positions: []string{"GK", "CB", "LB", "RB", "CDM", "CM", "CAM", "LW", "RW", "ST"},
			TeamNames: []string{"United", "City", "Rovers", "Albion", "Athletic", "Wanderers", "Rangers", "Dynamo", "Real", "Sporting"},
			PlayerStats: []StatSpec{
				cnt("goals", "Goals", 0, 30),
				cnt("assists", "Assists", 0, 20),
				cnt("appearances", "Appearances", 1, 38),
				cnt("shots", "Shots", 0, 120),
				cnt("shots_on_target", "Shots On Target", 0, 60),
				pct("pass_accuracy_pct", "Pass Accuracy Pct", 60, 95),
				cnt("tackles_won", "Tackles Won", 0, 90),
				cnt("yellow_cards", "Yellow Cards", 0, 12),
				cnt("red_cards", "Red Cards", 0, 3),
			},
			TeamStats: []StatSpec{
				cnt("goals_for", "Goals For", 20, 100),
				cnt("goals_against", "Goals Against", 20, 100),
				{Concept: "goal_difference", Header: "Goal Difference", Kind: distNormal, P1: 0, P2: 25, AllowNeg: true},
				cnt("clean_sheets", "Clean Sheets", 0, 25),
				pct("possession_pct", "Possession Pct", 35, 68),
				rate("shots_per_game", "Shots Per Game", 12, 3),
				cnt("corners", "Corners", 100, 280),
				cnt("fouls", "Fouls", 250, 520),
				cnt("league_points", "League Points", 15, 100),
			},
		},
		{
			Name:      "baseball",
			Leagues:   []string{"MLB", "NPB", "KBO", "AAA"},
			Positions: []string{"P", "C", "1B", "2B", "3B", "SS", "LF", "CF", "RF", "DH"},
			TeamNames: []string{"Yankees", "Dodgers", "Cubs", "RedSox", "Mets", "Braves", "Astros", "Padres", "Mariners", "Royals"},
			PlayerStats: []StatSpec{
				frac01("batting_avg", "Batting Avg", 0.2, 0.35),
				cnt("home_runs", "Home Runs", 0, 50),
				cnt("rbi", "Rbi", 0, 130),
				cnt("hits", "Hits", 0, 210),
				cnt("stolen_bases", "Stolen Bases", 0, 45),
				rate("era", "Era", 3.9, 1),
				cnt("strikeouts", "Strikeouts", 0, 300),
				cnt("walks", "Walks", 0, 110),
				frac01("on_base_pct", "On Base Pct", 0.28, 0.43),
			},
			TeamStats: []StatSpec{
				cnt("runs_scored", "Runs Scored", 550, 950),
				cnt("runs_allowed", "Runs Allowed", 550, 950),
				cnt("home_runs_total", "Home Runs Total", 100, 280),
				rate("team_era", "Team Era", 4, 0.6),
				frac01("team_batting_avg", "Team Batting Avg", 0.23, 0.28),
				cnt("errors", "Errors", 50, 130),
				cnt("saves", "Saves", 20, 60),
				cnt("double_plays", "Double Plays", 90, 180),
				cnt("shutouts", "Shutouts", 2, 20),
			},
		},
		{
			Name:      "hockey",
			Leagues:   []string{"NHL", "KHL", "SHL", "AHL"},
			Positions: []string{"G", "D", "LW", "RW", "C", "D/LW"},
			TeamNames: []string{"Bruins", "Rangers", "Penguins", "Oilers", "Flames", "Sharks", "Wild", "Avalanche", "Jets", "Kraken"},
			PlayerStats: []StatSpec{
				cnt("goals", "Goals", 0, 60),
				cnt("assists", "Assists", 0, 70),
				rateNeg("plus_minus", "Plus Minus", 0, 12),
				cnt("penalty_minutes", "Penalty Minutes", 0, 120),
				cnt("shots_on_goal", "Shots On Goal", 0, 320),
				pct("faceoff_win_pct", "Faceoff Win Pct", 38, 62),
				rate("time_on_ice_per_game", "Time On Ice Per Game", 16, 4),
				cnt("power_play_goals", "Power Play Goals", 0, 20),
				cnt("game_winning_goals", "Game Winning Goals", 0, 12),
			},
			TeamStats: []StatSpec{
				cnt("goals_for", "Goals For", 180, 320),
				cnt("goals_against", "Goals Against", 180, 320),
				pct("power_play_pct", "Power Play Pct", 14, 28),
				pct("penalty_kill_pct", "Penalty Kill Pct", 72, 88),
				rate("shots_per_game", "Shots Per Game", 30, 3),
				pct("faceoff_pct", "Faceoff Pct", 45, 55),
				cnt("overtime_wins", "Overtime Wins", 2, 16),
				cnt("shutouts", "Shutouts", 2, 14),
				cnt("penalty_minutes_total", "Penalty Minutes Total", 500, 1200),
			},
		},
		{
			Name:      "tennis",
			Leagues:   []string{"ATP", "WTA", "ITF", "Challenger"},
			Positions: []string{"RightHanded", "LeftHanded", "Baseline", "ServeVolley", "AllCourt"},
			TeamNames: []string{"AcesClub", "TopSpin", "NetForce", "BaselinePro", "CourtKings", "RallyStars", "SmashPoint", "VolleyUnion"},
			PlayerStats: []StatSpec{
				cnt("aces", "Aces", 50, 1200),
				cnt("double_faults", "Double Faults", 20, 400),
				pct("first_serve_pct", "First Serve Pct", 52, 75),
				pct("break_points_saved_pct", "Break Points Saved Pct", 50, 72),
				cnt("matches_won", "Matches Won", 5, 75),
				cnt("matches_lost", "Matches Lost", 5, 35),
				cnt("titles", "Titles", 0, 10),
				cnt("ranking_points", "Ranking Points", 500, 11000),
				cnt("sets_won", "Sets Won", 10, 160),
			},
			TeamStats: []StatSpec{
				cnt("ties_won", "Ties Won", 0, 12),
				cnt("ties_lost", "Ties Lost", 0, 12),
				cnt("matches_played", "Matches Played", 10, 60),
				cnt("players_count", "Players Count", 4, 12),
				rate("avg_ranking", "Avg Ranking", 80, 50),
				cnt("total_aces", "Total Aces", 200, 4000),
				cnt("total_titles", "Total Titles", 0, 25),
				money("prize_money", "Prize Money", 13.5, 1),
				rate("sets_ratio", "Sets Ratio", 1.1, 0.4),
			},
		},
		{
			Name:      "golf",
			Leagues:   []string{"PGA", "LPGA", "DPWorld", "KornFerry"},
			Positions: []string{"Pro", "Amateur", "Senior", "Rookie"},
			TeamNames: []string{"EagleSquad", "BirdieCrew", "FairwayFour", "GreenTeam", "ParSeekers", "DriveUnit", "PuttMasters", "LinksClub"},
			PlayerStats: []StatSpec{
				rate("scoring_avg", "Scoring Avg", 70.5, 1.2),
				rate("driving_distance", "Driving Distance", 295, 10),
				pct("driving_accuracy_pct", "Driving Accuracy Pct", 52, 75),
				pct("greens_in_regulation_pct", "Greens In Regulation Pct", 58, 72),
				rate("putts_per_round", "Putts Per Round", 29, 1),
				rate("birdies_per_round", "Birdies Per Round", 3.5, 0.8),
				cnt("eagles", "Eagles", 0, 18),
				cnt("wins", "Wins", 0, 8),
				cnt("top10_finishes", "Top10 Finishes", 0, 18),
			},
			TeamStats: []StatSpec{
				cnt("total_strokes", "Total Strokes", 8000, 16000),
				cnt("rounds_played", "Rounds Played", 40, 120),
				rate("avg_score", "Avg Score", 71, 1.5),
				cnt("best_round", "Best Round", 59, 68),
				cnt("worst_round", "Worst Round", 74, 85),
				cnt("pars_total", "Pars Total", 500, 1400),
				cnt("birdies_total", "Birdies Total", 150, 500),
				cnt("bogeys_total", "Bogeys Total", 150, 500),
				cnt("cuts_made", "Cuts Made", 5, 28),
			},
		},
		{
			Name:      "cricket",
			Leagues:   []string{"IPL", "BBL", "CountyChampionship", "PSL"},
			Positions: []string{"Batsman", "Bowler", "AllRounder", "WicketKeeper", "Opener"},
			TeamNames: []string{"Strikers", "Scorchers", "Hurricanes", "Renegades", "Sixers", "Thunder", "Stars", "Heat"},
			PlayerStats: []StatSpec{
				cnt("runs", "Runs", 0, 1200),
				rate("batting_average", "Batting Average", 32, 12),
				rate("strike_rate", "Strike Rate", 85, 25),
				cnt("centuries", "Centuries", 0, 8),
				cnt("fifties", "Fifties", 0, 15),
				cnt("wickets", "Wickets", 0, 35),
				rate("bowling_average", "Bowling Average", 28, 8),
				rate("economy_rate", "Economy Rate", 7.5, 1.2),
				cnt("catches", "Catches", 0, 20),
			},
			TeamStats: []StatSpec{
				cnt("total_runs", "Total Runs", 1500, 3500),
				cnt("wickets_taken", "Wickets Taken", 50, 160),
				rate("run_rate", "Run Rate", 8, 0.8),
				cnt("extras", "Extras", 40, 160),
				cnt("boundaries", "Boundaries", 120, 380),
				cnt("sixes", "Sixes", 40, 180),
				cnt("overs_bowled", "Overs Bowled", 200, 560),
				cnt("matches_won", "Matches Won", 2, 14),
				rateNeg("net_run_rate", "Net Run Rate", 0, 0.8),
			},
		},
		{
			Name:      "rugby",
			Leagues:   []string{"SixNations", "SuperRugby", "Premiership", "Top14"},
			Positions: []string{"Prop", "Hooker", "Lock", "Flanker", "Number8", "ScrumHalf", "FlyHalf", "Centre", "Wing", "Fullback"},
			TeamNames: []string{"Saracens", "Crusaders", "Brumbies", "Leinster", "Toulouse", "Sharks", "Chiefs", "Blues"},
			PlayerStats: []StatSpec{
				cnt("tries", "Tries", 0, 25),
				cnt("conversions", "Conversions", 0, 60),
				cnt("penalty_goals", "Penalty Goals", 0, 50),
				cnt("points", "Points", 0, 300),
				cnt("tackles_made", "Tackles Made", 20, 250),
				cnt("carries", "Carries", 20, 220),
				cnt("metres_gained", "Metres Gained", 50, 1500),
				cnt("lineouts_won", "Lineouts Won", 0, 80),
				cnt("turnovers_conceded", "Turnovers Conceded", 0, 30),
			},
			TeamStats: []StatSpec{
				cnt("tries_for", "Tries For", 20, 90),
				cnt("tries_against", "Tries Against", 20, 90),
				cnt("points_for", "Points For", 200, 700),
				cnt("points_against", "Points Against", 200, 700),
				cnt("scrums_won", "Scrums Won", 40, 140),
				pct("lineout_success_pct", "Lineout Success Pct", 78, 95),
				pct("possession_pct", "Possession Pct", 42, 58),
				pct("territory_pct", "Territory Pct", 42, 58),
				cnt("bonus_points", "Bonus Points", 0, 12),
			},
		},
		{
			Name:      "volleyball",
			Leagues:   []string{"FIVB", "CEV", "SuperLega", "PlusLiga"},
			Positions: []string{"Setter", "OutsideHitter", "OppositeHitter", "MiddleBlocker", "Libero"},
			TeamNames: []string{"SpikeUnit", "BlockParty", "NetRiders", "AceSquad", "DigCrew", "ServeStars", "RallyKings", "CourtCrush"},
			PlayerStats: []StatSpec{
				cnt("kills", "Kills", 0, 600),
				cnt("blocks", "Blocks", 0, 150),
				cnt("digs", "Digs", 0, 400),
				cnt("service_aces", "Service Aces", 0, 80),
				pct("attack_pct", "Attack Pct", 35, 60),
				pct("reception_pct", "Reception Pct", 40, 70),
				cnt("sets_played", "Sets Played", 10, 130),
				cnt("points_scored", "Points Scored", 50, 700),
				cnt("errors", "Errors", 10, 120),
			},
			TeamStats: []StatSpec{
				cnt("sets_won", "Sets Won", 10, 90),
				cnt("sets_lost", "Sets Lost", 10, 90),
				cnt("kills_total", "Kills Total", 500, 2200),
				cnt("blocks_total", "Blocks Total", 100, 450),
				cnt("aces_total", "Aces Total", 50, 250),
				cnt("opponent_errors", "Opponent Errors", 150, 600),
				pct("attack_efficiency", "Attack Efficiency", 38, 56),
				rate("win_ratio", "Win Ratio", 1.2, 0.6),
				rate("points_ratio", "Points Ratio", 1.05, 0.15),
			},
		},
		{
			Name:      "handball",
			Leagues:   []string{"EHF", "HBL", "LidlStarligue", "LigaAsobal"},
			Positions: []string{"Goalkeeper", "LeftWing", "RightWing", "LeftBack", "RightBack", "CentreBack", "Pivot"},
			TeamNames: []string{"Flensburg", "Kiel", "Veszprem", "Barca", "Montpellier", "Aalborg", "Szeged", "Kielce"},
			PlayerStats: []StatSpec{
				cnt("goals", "Goals", 0, 250),
				cnt("assists", "Assists", 0, 150),
				cnt("steals", "Steals", 0, 60),
				cnt("blocks", "Blocks", 0, 50),
				pct("shooting_pct", "Shooting Pct", 45, 75),
				cnt("seven_meter_goals", "Seven Meter Goals", 0, 60),
				cnt("playing_time_minutes", "Playing Time Minutes", 100, 1800),
				cnt("turnovers", "Turnovers", 5, 90),
				cnt("two_minute_suspensions", "Two Minute Suspensions", 0, 20),
			},
			TeamStats: []StatSpec{
				cnt("goals_for", "Goals For", 700, 1100),
				cnt("goals_against", "Goals Against", 700, 1100),
				cnt("fast_break_goals", "Fast Break Goals", 60, 220),
				pct("save_pct", "Save Pct", 25, 38),
				cnt("suspensions_total", "Suspensions Total", 40, 140),
				pct("seven_meter_pct", "Seven Meter Pct", 60, 85),
				cnt("wins_home", "Wins Home", 3, 17),
				cnt("wins_away", "Wins Away", 1, 15),
				rateNeg("goal_difference", "Goal Difference", 0, 60),
			},
		},
	}
}

// domainAdjust applies a small deterministic per-(domain, stat) shift to a
// shared stat's distribution. Real corpora are not perfectly aliased —
// basketball players are taller than soccer players, golfers older than
// gymnasts — so column-wise models retain *partial* value-only signal, as
// the paper's Sherlock numbers show. A few stats that are genuinely
// identical across sports (jersey numbers, years) stay untouched.
func domainAdjust(sp StatSpec, domain string) StatSpec {
	switch sp.Concept {
	case "jersey_number", "season_year", "founded_year":
		return sp
	}
	h := uint64(1469598103934665603)
	for i := 0; i < len(domain); i++ {
		h = (h ^ uint64(domain[i])) * 1099511628211
	}
	for i := 0; i < len(sp.Concept); i++ {
		h = (h ^ uint64(sp.Concept[i])) * 1099511628211
	}
	// multiplier in [0.82, 1.18]
	m := 0.82 + 0.36*float64(h%1000)/999
	switch sp.Kind {
	case distNormal:
		sp.P1 *= m
		sp.P2 *= 0.9 + 0.2*float64((h>>10)%1000)/999
	case distUniformInt, distUniform, distPct:
		span := sp.P2 - sp.P1
		sp.P2 = sp.P1 + span*m
	case distLogNormal:
		sp.P1 += math.Log(m)
	}
	return sp
}

// playerTextTypes / teamTextTypes are the per-entity textual column specs.
const (
	textName     = "name"
	textPosition = "position"
	textTeamName = "team_name"
	textLocation = "location"
	textCoach    = "coach"
)

// SportsTypeCatalog returns all semantic types the generator can produce —
// 462 at full scale, matching Table 1.
func SportsTypeCatalog() []string {
	var types []string
	for _, d := range sportsDomains() {
		for _, tt := range []string{textName, textPosition, textTeamName} {
			types = append(types, fmt.Sprintf("%s.player.%s", d.Name, tt))
		}
		for _, sp := range sharedPlayerStats() {
			types = append(types, fmt.Sprintf("%s.player.%s", d.Name, sp.Concept))
		}
		for _, sp := range d.PlayerStats {
			types = append(types, fmt.Sprintf("%s.player.%s", d.Name, sp.Concept))
		}
		for _, tt := range []string{textName, textLocation, textCoach} {
			types = append(types, fmt.Sprintf("%s.team.%s", d.Name, tt))
		}
		for _, sp := range sharedTeamStats() {
			types = append(types, fmt.Sprintf("%s.team.%s", d.Name, sp.Concept))
		}
		for _, sp := range d.TeamStats {
			types = append(types, fmt.Sprintf("%s.team.%s", d.Name, sp.Concept))
		}
	}
	return types
}

// GenerateSportsTables builds the synthetic SportsTables corpus.
func GenerateSportsTables(cfg SportsConfig) *Corpus {
	rng := rand.New(rand.NewSource(cfg.Seed))
	domains := sportsDomains()
	if cfg.Domains > 0 && cfg.Domains < len(domains) {
		domains = domains[:cfg.Domains]
	}
	c := &Corpus{Name: "SportsTables"}

	for i := 0; i < cfg.NumTables; i++ {
		d := domains[i%len(domains)] // round-robin keeps domains balanced
		isPlayer := rng.Float64() < 0.7
		t := generateSportsTable(rng, d, isPlayer, i, cfg)
		c.Tables = append(c.Tables, t)
	}
	c.BuildVocabulary()
	return c
}

func generateSportsTable(rng *rand.Rand, d sportsDomain, isPlayer bool, idx int, cfg SportsConfig) *table.Table {
	rows := cfg.MinRows + rng.Intn(cfg.MaxRows-cfg.MinRows+1)
	entity := "team"
	if isPlayer {
		entity = "player"
	}
	t := &table.Table{ID: fmt.Sprintf("sports_%05d", idx)}

	// Table name: league + entity words, occasionally uninformative.
	if rng.Float64() < cfg.WeakNameProb {
		t.Name = []string{"Stats", "Season Data", "Records 2023", "Overview"}[rng.Intn(4)]
	} else {
		league := d.Leagues[rng.Intn(len(d.Leagues))]
		year := 2005 + rng.Intn(19)
		switch rng.Intn(3) {
		case 0:
			t.Name = fmt.Sprintf("%s %s Stats %d", league, titleCase(entity), year)
		case 1:
			t.Name = fmt.Sprintf("%s %s %s Statistics", league, titleCase(d.Name), titleCase(entity))
		default:
			t.Name = fmt.Sprintf("%s %ss Season %d", league, titleCase(entity), year)
		}
	}

	addText := func(suffix, header string, values []string) {
		t.Columns = append(t.Columns, &table.Column{
			Header:          header,
			SyntheticHeader: PickSyntheticHeader(header, rng),
			SemanticType:    fmt.Sprintf("%s.%s.%s", d.Name, entity, suffix),
			Kind:            table.KindText,
			TextValues:      values,
		})
	}

	// Text columns. The name column is always present; the two
	// entity-specific context columns appear with high probability, giving
	// the paper's ≈2.83 text columns per table.
	names := make([]string, rows)
	for r := range names {
		if isPlayer {
			names[r] = sharedFirstNames[rng.Intn(len(sharedFirstNames))] + " " +
				sharedLastNames[rng.Intn(len(sharedLastNames))]
		} else {
			names[r] = sharedCities[rng.Intn(len(sharedCities))] + " " +
				d.TeamNames[rng.Intn(len(d.TeamNames))]
		}
	}
	addText(textName, titleCase(entity)+" Name", names)

	if isPlayer {
		if rng.Float64() < 0.915 {
			vals := make([]string, rows)
			for r := range vals {
				vals[r] = d.Positions[rng.Intn(len(d.Positions))]
			}
			addText(textPosition, "Field Position", vals)
		}
		if rng.Float64() < 0.915 {
			vals := make([]string, rows)
			for r := range vals {
				vals[r] = d.TeamNames[rng.Intn(len(d.TeamNames))]
			}
			addText(textTeamName, "Team Name", vals)
		}
	} else {
		if rng.Float64() < 0.915 {
			vals := make([]string, rows)
			for r := range vals {
				vals[r] = sharedCities[rng.Intn(len(sharedCities))]
			}
			addText(textLocation, "Home City", vals)
		}
		if rng.Float64() < 0.915 {
			vals := make([]string, rows)
			for r := range vals {
				vals[r] = sharedFirstNames[rng.Intn(len(sharedFirstNames))] + " " +
					sharedLastNames[rng.Intn(len(sharedLastNames))]
			}
			addText(textCoach, "Head Coach", vals)
		}
	}

	// Numeric columns: all 18 stats (9 shared + 9 specific), shuffled, with
	// a couple occasionally dropped — ≈17.5–18 numeric columns per table as
	// in the paper's corpus.
	var stats []StatSpec
	if isPlayer {
		for _, sp := range sharedPlayerStats() {
			stats = append(stats, domainAdjust(sp, d.Name))
		}
		stats = append(stats, d.PlayerStats...)
	} else {
		for _, sp := range sharedTeamStats() {
			stats = append(stats, domainAdjust(sp, d.Name))
		}
		stats = append(stats, d.TeamStats...)
	}
	rng.Shuffle(len(stats), func(i, j int) { stats[i], stats[j] = stats[j], stats[i] })
	drop := 0
	if rng.Float64() < 0.3 {
		drop = 1 + rng.Intn(2)
	}
	stats = stats[:len(stats)-drop]

	for _, sp := range stats {
		vals := make([]float64, rows)
		for r := range vals {
			vals[r] = sp.sample(rng)
		}
		t.Columns = append(t.Columns, &table.Column{
			Header:          sp.Header,
			SyntheticHeader: PickSyntheticHeader(sp.Header, rng),
			SemanticType:    fmt.Sprintf("%s.%s.%s", d.Name, entity, sp.Concept),
			Kind:            table.KindNumeric,
			NumValues:       vals,
		})
	}
	return t
}
