package discovery

import (
	"fmt"
	"sync"
	"testing"
)

// TestColumnsDeterministicOrder is the regression for the unstable-sort
// tie-break bug: two same-type columns in one table, and equal-confidence
// columns across tables, must come back in one fixed order regardless of
// insertion history — (Confidence desc, TableID, ColIndex). Before the
// ColIndex tie-break, sort.Slice (unstable) ordered equal (Confidence,
// TableID) keys by pivot luck and join output flapped between runs.
func TestColumnsDeterministicOrder(t *testing.T) {
	build := func(perm []string) []ColumnRef {
		ix := NewTypeIndex(0)
		tables := map[string]func(){
			// tbl-a carries "price" in three columns at one confidence.
			"a": func() { ix.AddLabeled(labeledTable("a", "price", "price", "price")) },
			// b and c tie with a on confidence (AddLabeled confidence is 1).
			"b": func() { ix.AddLabeled(labeledTable("b", "price")) },
			"c": func() { ix.AddLabeled(labeledTable("c", "price", "price")) },
		}
		for _, id := range perm {
			tables[id]()
		}
		return ix.Columns("price")
	}
	want := build([]string{"a", "b", "c"})
	if len(want) != 6 {
		t.Fatalf("indexed %d price columns, want 6", len(want))
	}
	for _, perm := range [][]string{{"c", "b", "a"}, {"b", "a", "c"}, {"c", "a", "b"}} {
		got := build(perm)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("insertion order %v changed Columns()[%d]: got %+v want %+v", perm, i, got[i], want[i])
			}
		}
	}
	for i := 1; i < len(want); i++ {
		p, q := want[i-1], want[i]
		inOrder := p.Confidence > q.Confidence ||
			(p.Confidence == q.Confidence && (p.TableID < q.TableID ||
				(p.TableID == q.TableID && p.ColIndex < q.ColIndex)))
		if !inOrder {
			t.Fatalf("Columns not totally ordered at %d: %+v before %+v", i, p, q)
		}
	}
}

// TestJoinCandidatesColumnIndexes verifies join candidates identify columns
// by position, not just header — duplicate headers within a table used to
// make candidates ambiguous.
func TestJoinCandidatesColumnIndexes(t *testing.T) {
	ix := NewTypeIndex(0)
	// Both columns of "dup" share one header and one type — only ColIndex
	// distinguishes them.
	ix.AddLabeled(labeledTable("dup", "team.id", "team.id"))
	ix.AddLabeled(labeledTable("other", "team.id"))
	cands := ix.JoinCandidates("team.id", 0)
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2 (one per dup column)", len(cands))
	}
	seen := map[[2]int]bool{}
	for _, c := range cands {
		if c.LeftID != "dup" || c.RightID != "other" {
			t.Fatalf("unexpected pair %q/%q", c.LeftID, c.RightID)
		}
		seen[[2]int{c.LeftColIndex, c.RightColIndex}] = true
	}
	if !seen[[2]int{0, 0}] || !seen[[2]int{1, 0}] {
		t.Fatalf("candidates do not distinguish dup's two columns: %+v", cands)
	}
}

// TestReaddReplacesAtomically pins the replacement semantics a re-add must
// have: the old entries vanish entirely, byType carries no stale refs.
func TestReaddReplacesAtomically(t *testing.T) {
	ix := NewTypeIndex(0)
	ix.AddLabeled(labeledTable("t", "price", "rating"))
	ix.AddLabeled(labeledTable("t", "price"))
	if got := ix.Stats(); got.Tables != 1 || got.Columns != 1 || got.Types != 1 {
		t.Fatalf("after re-add: %+v", got)
	}
	if cols := ix.Columns("rating"); len(cols) != 0 {
		t.Fatalf("stale rating refs survived re-add: %+v", cols)
	}
}

// TestUnionCandidatesHammer targets the torn-read bug directly: the old
// implementation dropped the read lock between reading the query table's
// refs and scanning byType, so a re-add landing in the gap yielded an
// Overlap whose denominator came from one index version and numerator from
// another. Under one RLock every candidate in a single result shares the
// same denominator len(baseTypes): Overlap*k == Shared for one integral k
// per call. Writers flip the base table between 2 and 4 types while readers
// assert that invariant.
func TestUnionCandidatesHammer(t *testing.T) {
	ix := NewTypeIndex(0)
	ix.AddLabeled(labeledTable("base", "price", "rating"))
	// Peers cover both base variants so Shared can reach the denominator.
	ix.AddLabeled(labeledTable("p1", "price", "rating", "year", "area"))
	ix.AddLabeled(labeledTable("p2", "price", "year"))

	stop := make(chan struct{})
	var writer, readers sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				ix.AddLabeled(labeledTable("base", "price", "rating", "year", "area"))
			} else {
				ix.AddLabeled(labeledTable("base", "price", "rating"))
			}
		}
	}()
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 500; i++ {
				cands, err := ix.UnionCandidates("base", 0)
				if err != nil {
					t.Errorf("base vanished: %v", err)
					return
				}
				var denom float64
				for _, c := range cands {
					if c.Overlap <= 0 || c.Overlap > 1 || c.Shared < 1 {
						t.Errorf("impossible candidate %+v", c)
					}
					d := float64(c.Shared) / c.Overlap
					if denom == 0 {
						denom = d
					} else if d != denom {
						t.Errorf("torn read: denominators %v and %v in one result (%+v)", denom, d, cands)
					}
				}
				if denom != 0 && denom != 2 && denom != 4 {
					t.Errorf("denominator %v is neither base variant", denom)
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

// TestTypeIndexConcurrency hammers every read path against concurrent
// re-adds and removes under -race: AddPredictions-style replacement
// (AddLabeled shares setRefs), Remove, Columns, UnionCandidates,
// TablesWithAll, JoinCandidates, Stats, CanonicalDump. Assertions are the
// structural invariants any serializable interleaving preserves.
func TestTypeIndexConcurrency(t *testing.T) {
	ix := NewTypeIndex(0)
	// A stable backbone the queries can always see.
	ix.AddLabeled(labeledTable("base", "price", "rating", "year"))
	ix.AddLabeled(labeledTable("peer", "price", "rating"))

	const writers, iters = 4, 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("churn-%d", w)
			for i := 0; i < iters; i++ {
				switch i % 3 {
				case 0:
					ix.AddLabeled(labeledTable(id, "price", "rating"))
				case 1:
					ix.AddLabeled(labeledTable(id, "year"))
				default:
					ix.Remove(id)
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				cols := ix.Columns("price")
				perTable := map[string]int{}
				for _, c := range cols {
					if c.Type != "price" {
						t.Errorf("Columns(price) returned type %q", c.Type)
					}
					perTable[c.TableID]++
				}
				for id, n := range perTable {
					if n > 1 {
						t.Errorf("table %s appears %d times for one type", id, n)
					}
				}
				cands, err := ix.UnionCandidates("base", 0)
				if err != nil {
					t.Errorf("base vanished: %v", err)
				}
				for _, c := range cands {
					if c.TableID == "base" {
						t.Error("union candidates include the query table")
					}
					if c.Shared < 1 || c.Shared > 3 || c.Overlap <= 0 || c.Overlap > 1 {
						t.Errorf("impossible candidate %+v", c)
					}
				}
				for _, id := range ix.TablesWithAll("price", "rating") {
					if id == "" {
						t.Error("empty table id from TablesWithAll")
					}
				}
				ix.JoinCandidates("rating", 10)
				ix.Stats()
				ix.CanonicalDump()
			}
		}()
	}
	wg.Wait()
}
