// Package discovery implements the downstream task that motivates semantic
// type detection in the paper's introduction: dataset discovery in data
// lakes. A TypeIndex maps semantic types to the tables/columns that carry
// them (as predicted by a Pythagoras model), and answers the standard
// discovery queries — find tables by type, by conjunction of types, and
// joinable/unionable candidates that share typed columns.
package discovery

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/table"
)

// ColumnRef identifies one typed column in the lake.
type ColumnRef struct {
	TableID    string
	TableName  string
	ColIndex   int
	Header     string
	Kind       table.Kind
	Type       string
	Confidence float64
}

// TypeIndex is an inverted index from semantic type to column occurrences.
// It is safe for concurrent use.
type TypeIndex struct {
	mu sync.RWMutex
	// byType maps semantic type → columns carrying it.
	byType map[string][]ColumnRef
	// byTable maps table id → that table's typed columns.
	byTable map[string][]ColumnRef
	// minConfidence filters low-confidence predictions at insert time.
	minConfidence float64
}

// NewTypeIndex returns an empty index that drops predictions below
// minConfidence (0 keeps everything).
func NewTypeIndex(minConfidence float64) *TypeIndex {
	return &TypeIndex{
		byType:        map[string][]ColumnRef{},
		byTable:       map[string][]ColumnRef{},
		minConfidence: minConfidence,
	}
}

// AddTable types every column of t with the model and indexes the results.
// It returns the number of columns indexed.
func (ix *TypeIndex) AddTable(m *core.Model, t *table.Table) int {
	return ix.AddPredictions(t, m.PredictTable(t))
}

// predRefs converts predictions for t into column refs, dropping those
// below minConfidence. The returned slice is never nil — an empty result is
// "indexed with zero qualifying columns", not "skipped".
func predRefs(t *table.Table, preds []core.ColumnPrediction, minConfidence float64) []ColumnRef {
	refs := make([]ColumnRef, 0, len(preds))
	for _, p := range preds {
		if p.Confidence < minConfidence {
			continue
		}
		refs = append(refs, ColumnRef{
			TableID: t.ID, TableName: t.Name, ColIndex: p.ColIndex,
			Header: p.Header, Kind: p.Kind, Type: p.Type, Confidence: p.Confidence,
		})
	}
	return refs
}

// MinConfidence reports the index's insert-time confidence threshold.
func (ix *TypeIndex) MinConfidence() float64 { return ix.minConfidence }

// AddPredictions indexes already-computed predictions for t — the path the
// serving layer uses so one staged-inference pass covers both the response
// and the index update (AddTable would re-predict from scratch).
func (ix *TypeIndex) AddPredictions(t *table.Table, preds []core.ColumnPrediction) int {
	return ix.setRefs(t.ID, predRefs(t, preds, ix.minConfidence))
}

// setRefs installs refs as tableID's entries, replacing any previous ones.
func (ix *TypeIndex) setRefs(tableID string, refs []ColumnRef) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, dup := ix.byTable[tableID]; dup {
		// Re-adding a table replaces its previous entries.
		ix.removeLocked(tableID)
	}
	ix.byTable[tableID] = refs
	for _, r := range refs {
		ix.byType[r.Type] = append(ix.byType[r.Type], r)
	}
	return len(refs)
}

// AddLabeled indexes a table using its gold labels instead of a model —
// useful for mixed lakes where some tables are already curated.
func (ix *TypeIndex) AddLabeled(t *table.Table) int {
	refs := make([]ColumnRef, 0, len(t.Columns))
	for ci, c := range t.Columns {
		if c.SemanticType == "" {
			continue
		}
		refs = append(refs, ColumnRef{
			TableID: t.ID, TableName: t.Name, ColIndex: ci,
			Header: c.Header, Kind: c.Kind, Type: c.SemanticType, Confidence: 1,
		})
	}
	return ix.setRefs(t.ID, refs)
}

// Remove drops a table from the index.
func (ix *TypeIndex) Remove(tableID string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(tableID)
}

func (ix *TypeIndex) removeLocked(tableID string) {
	refs := ix.byTable[tableID]
	delete(ix.byTable, tableID)
	for _, r := range refs {
		cols := ix.byType[r.Type]
		kept := cols[:0]
		for _, c := range cols {
			if c.TableID != tableID {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			delete(ix.byType, r.Type)
		} else {
			ix.byType[r.Type] = kept
		}
	}
}

// Stats summarizes the index.
type Stats struct {
	Tables  int
	Columns int
	Types   int
}

// Stats returns index summary counts.
func (ix *TypeIndex) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	cols := 0
	for _, refs := range ix.byTable {
		cols += len(refs)
	}
	return Stats{Tables: len(ix.byTable), Columns: cols, Types: len(ix.byType)}
}

// Columns returns all indexed occurrences of a semantic type, sorted by
// confidence descending. The tie-break is the full (TableID, ColIndex)
// identity of a column: (Confidence, TableID) alone is not a total order —
// a table can carry one type in several columns, and equal confidences
// across tables are common with curated (AddLabeled) entries — and an
// incomplete key under the unstable sort.Slice made join/union output flap
// between runs.
func (ix *TypeIndex) Columns(semanticType string) []ColumnRef {
	ix.mu.RLock()
	out := append([]ColumnRef(nil), ix.byType[semanticType]...)
	ix.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].TableID != out[j].TableID {
			return out[i].TableID < out[j].TableID
		}
		return out[i].ColIndex < out[j].ColIndex
	})
	return out
}

// TablesWithAll returns ids of tables containing a column of every queried
// type, sorted.
func (ix *TypeIndex) TablesWithAll(types ...string) []string {
	if len(types) == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	count := map[string]int{}
	for _, st := range types {
		seen := map[string]bool{}
		for _, r := range ix.byType[st] {
			if !seen[r.TableID] {
				seen[r.TableID] = true
				count[r.TableID]++
			}
		}
	}
	var out []string
	for id, c := range count {
		if c == len(types) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// JoinCandidate pairs two tables through a shared semantic type — the
// join-discovery primitive. Columns are identified by position as well as
// header: headers alone are ambiguous (tables with duplicate or empty
// headers are routine in scraped lakes), so LeftColIndex/RightColIndex are
// the authoritative column identities and the headers are display labels.
type JoinCandidate struct {
	Type                        string
	LeftID, RightID             string
	LeftCol, RightCol           string
	LeftColIndex, RightColIndex int
}

// JoinCandidates returns pairs of distinct tables sharing the given
// semantic type (potential join keys), capped at limit pairs (0 = all).
func (ix *TypeIndex) JoinCandidates(semanticType string, limit int) []JoinCandidate {
	cols := ix.Columns(semanticType)
	var out []JoinCandidate
	for i := 0; i < len(cols); i++ {
		for j := i + 1; j < len(cols); j++ {
			if cols[i].TableID == cols[j].TableID {
				continue
			}
			out = append(out, JoinCandidate{
				Type:          semanticType,
				LeftID:        cols[i].TableID,
				RightID:       cols[j].TableID,
				LeftCol:       cols[i].Header,
				RightCol:      cols[j].Header,
				LeftColIndex:  cols[i].ColIndex,
				RightColIndex: cols[j].ColIndex,
			})
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	return out
}

// UnionCandidate scores how unionable another table is with the query
// table: the fraction of the query's typed columns that the candidate also
// carries (SANTOS-style type-overlap unionability).
type UnionCandidate struct {
	TableID string
	Overlap float64
	Shared  int
}

// UnionCandidates ranks tables by semantic-type overlap with tableID.
//
// One RLock covers both the query table's refs and the byType scan: with
// two separate critical sections, a concurrent re-add or remove landing
// between them computed overlap against a torn mix of old and new state —
// a denominator from one index version and a numerator from another.
func (ix *TypeIndex) UnionCandidates(tableID string, topK int) ([]UnionCandidate, error) {
	ix.mu.RLock()
	base, ok := ix.byTable[tableID]
	if !ok {
		ix.mu.RUnlock()
		return nil, fmt.Errorf("discovery: table %q not indexed", tableID)
	}
	baseTypes := map[string]bool{}
	for _, r := range base {
		baseTypes[r.Type] = true
	}
	if len(baseTypes) == 0 {
		ix.mu.RUnlock()
		return nil, nil
	}

	shared := map[string]map[string]bool{}
	for st := range baseTypes {
		for _, r := range ix.byType[st] {
			if r.TableID == tableID {
				continue
			}
			if shared[r.TableID] == nil {
				shared[r.TableID] = map[string]bool{}
			}
			shared[r.TableID][st] = true
		}
	}
	ix.mu.RUnlock()

	out := make([]UnionCandidate, 0, len(shared))
	for id, types := range shared {
		out = append(out, UnionCandidate{
			TableID: id,
			Shared:  len(types),
			Overlap: float64(len(types)) / float64(len(baseTypes)),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Overlap != out[j].Overlap {
			return out[i].Overlap > out[j].Overlap
		}
		return out[i].TableID < out[j].TableID
	})
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out, nil
}

// CanonicalDump renders the whole index in a deterministic byte form: one
// tab-separated line per indexed column, tables in sorted-ID order, each
// table's columns in position order, confidences in hex float (lossless
// round-trip). Two indexes over the same lake are semantically equal iff
// their dumps are byte-equal — the oracle the rescore crash-resume
// bit-identity tests compare.
func (ix *TypeIndex) CanonicalDump() []byte {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ids := make([]string, 0, len(ix.byTable))
	for id := range ix.byTable {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b bytes.Buffer
	for _, id := range ids {
		refs := append([]ColumnRef(nil), ix.byTable[id]...)
		sort.Slice(refs, func(i, j int) bool { return refs[i].ColIndex < refs[j].ColIndex })
		for _, r := range refs {
			fmt.Fprintf(&b, "%s\t%d\t%s\t%s\t%s\t%s\n",
				r.TableID, r.ColIndex, r.Header, r.Kind, r.Type,
				strconv.FormatFloat(r.Confidence, 'x', -1, 64))
		}
	}
	return b.Bytes()
}

// Types returns all indexed semantic types, sorted.
func (ix *TypeIndex) Types() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, len(ix.byType))
	for st := range ix.byType {
		out = append(out, st)
	}
	sort.Strings(out)
	return out
}
