package discovery

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/table"
)

func labeledPreds(t *table.Table, conf float64) []core.ColumnPrediction {
	preds := make([]core.ColumnPrediction, 0, len(t.Columns))
	for ci, c := range t.Columns {
		preds = append(preds, core.ColumnPrediction{
			ColIndex: ci, Header: c.Header, Kind: c.Kind,
			Type: c.SemanticType, Confidence: conf,
		})
	}
	return preds
}

func TestSwapIndexDualWrite(t *testing.T) {
	s := NewSwapIndex(0)
	s.AddLabeled(labeledTable("pre", "price"))

	if err := s.BeginShadow(); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginShadow(); err == nil {
		t.Fatal("second BeginShadow must fail while one is active")
	}
	if !s.ShadowActive() {
		t.Fatal("ShadowActive = false during build")
	}

	// Live add mid-build reaches the current index immediately…
	s.AddLabeled(labeledTable("live", "rating"))
	if got := s.Current().Stats().Tables; got != 2 {
		t.Fatalf("current tables mid-build = %d, want 2", got)
	}
	// …and survives the flip, even though re-score never saw it.
	if !s.CommitShadow() {
		t.Fatal("CommitShadow = false with active build")
	}
	st := s.Current().Stats()
	if st.Tables != 1 {
		t.Fatalf("post-flip tables = %d, want 1 (only the dual-written live add)", st.Tables)
	}
	if cols := s.Current().Columns("rating"); len(cols) != 1 || cols[0].TableID != "live" {
		t.Fatalf("live add lost in flip: %+v", cols)
	}
	// "pre" was never re-scored into the shadow → correctly absent.
	if cols := s.Current().Columns("price"); len(cols) != 0 {
		t.Fatalf("stale table leaked into shadow: %+v", cols)
	}
	if s.CommitShadow() {
		t.Fatal("CommitShadow must report false with no build")
	}
}

func TestSwapIndexTombstones(t *testing.T) {
	s := NewSwapIndex(0)
	doomed := labeledTable("doomed", "price")
	s.AddLabeled(doomed)

	if err := s.BeginShadow(); err != nil {
		t.Fatal(err)
	}
	// Operator removes the table while re-score holds a copy of it.
	s.Remove("doomed")
	// The in-flight batch lands after the remove: must be skipped.
	refs, err := s.ShadowAdd(doomed, labeledPreds(doomed, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if refs != nil {
		t.Fatalf("tombstoned ShadowAdd returned refs: %+v", refs)
	}
	// Checkpoint replay must honor the tombstone too.
	if err := s.ShadowAddRefs("doomed", []ColumnRef{{TableID: "doomed", Type: "price", Confidence: 1}}); err != nil {
		t.Fatal(err)
	}
	s.CommitShadow()
	if got := s.Current().Stats().Tables; got != 0 {
		t.Fatalf("removed table resurrected: %d tables post-flip", got)
	}

	// A live re-add supersedes the scan's copy: the table is legitimately
	// back, carried by the dual-write — the driver's later ShadowAdd of the
	// version it fetched before the re-add is dropped, not applied.
	if err := s.BeginShadow(); err != nil {
		t.Fatal(err)
	}
	s.Remove("doomed")
	s.AddLabeled(doomed)
	refs, err = s.ShadowAdd(doomed, labeledPreds(doomed, 0.9))
	if err != nil || refs != nil {
		t.Fatalf("stale ShadowAdd after a live re-add must skip: refs=%v err=%v", refs, err)
	}
	s.CommitShadow()
	if got := s.Current().Stats().Tables; got != 1 {
		t.Fatalf("re-added table missing post-flip: %d tables", got)
	}
}

// TestSwapIndexLiveRewriteNotLost is the lost-update regression: the
// re-score scan fetches a table, a live re-add then dual-writes newer refs
// into the shadow, and the driver's ShadowAdd (and, on the resume path,
// ShadowAddRefs) of the stale fetch lands last. The acknowledged live
// update must survive the flip.
func TestSwapIndexLiveRewriteNotLost(t *testing.T) {
	s := NewSwapIndex(0)
	tb := labeledTable("hot", "price")
	s.AddPredictions(tb, labeledPreds(tb, 0.3))

	if err := s.BeginShadow(); err != nil {
		t.Fatal(err)
	}
	// Scan "fetched" tb with confidence 0.3 here. The live re-add lands
	// first with the newer 0.9 view…
	s.AddPredictions(tb, labeledPreds(tb, 0.9))
	// …then the driver's stale writes arrive. Both forms must skip.
	refs, err := s.ShadowAdd(tb, labeledPreds(tb, 0.3))
	if err != nil || refs != nil {
		t.Fatalf("stale ShadowAdd overwrote a live update: refs=%v err=%v", refs, err)
	}
	if err := s.ShadowAddRefs("hot", []ColumnRef{{TableID: "hot", Type: "price", Confidence: 0.3}}); err != nil {
		t.Fatal(err)
	}
	if !s.CommitShadow() {
		t.Fatal("CommitShadow = false")
	}
	cols := s.Current().Columns("price")
	if len(cols) != 1 || cols[0].Confidence != 0.9 {
		t.Fatalf("live update lost at the flip: %+v", cols)
	}
}

func TestSwapIndexAbort(t *testing.T) {
	s := NewSwapIndex(0)
	s.AddLabeled(labeledTable("keep", "price"))
	before := s.Current()

	if err := s.BeginShadow(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ShadowAdd(labeledTable("new", "year"), labeledPreds(labeledTable("new", "year"), 1)); err != nil {
		t.Fatal(err)
	}
	s.AbortShadow()
	if s.Current() != before {
		t.Fatal("abort replaced the current index")
	}
	if s.ShadowActive() {
		t.Fatal("shadow still active after abort")
	}
	// Shadow ops after abort fail cleanly.
	if _, err := s.ShadowAdd(labeledTable("x", "a"), nil); err == nil {
		t.Fatal("ShadowAdd without active build must error")
	}
	if err := s.ShadowAddRefs("x", nil); err == nil {
		t.Fatal("ShadowAddRefs without active build must error")
	}
	// A new build can start after abort.
	if err := s.BeginShadow(); err != nil {
		t.Fatal(err)
	}
	s.AbortShadow()
}

// TestSwapIsolationHammer is the ISSUE's swap-isolation acceptance test:
// concurrent discovery queries pin Current() and must observe only the full
// old or the full new index, never a mix, while re-scores flip the pointer
// under them. Each generation g indexes the same table set with confidence
// tagged by g; a torn view would surface as one query result mixing
// confidences from two generations.
func TestSwapIsolationHammer(t *testing.T) {
	const tables = 8
	mkTable := func(i int) *table.Table {
		return labeledTable(fmt.Sprintf("t%02d", i), "price", "rating")
	}
	conf := func(g int) float64 { return 1 / float64(g) } // exact in float64 for g = 1,2,4…

	s := NewSwapIndex(0)
	for i := 0; i < tables; i++ {
		tb := mkTable(i)
		s.AddPredictions(tb, labeledPreds(tb, conf(1)))
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	// Flipper: build generation after generation and commit each.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for g := 2; g <= 32; g *= 2 {
			if err := s.BeginShadow(); err != nil {
				t.Errorf("BeginShadow(gen %d): %v", g, err)
				return
			}
			for i := 0; i < tables; i++ {
				tb := mkTable(i)
				if _, err := s.ShadowAdd(tb, labeledPreds(tb, conf(g))); err != nil {
					t.Errorf("ShadowAdd(gen %d): %v", g, err)
					return
				}
			}
			if !s.CommitShadow() {
				t.Errorf("CommitShadow(gen %d) = false", g)
				return
			}
		}
		stop.Store(true)
	}()
	// Readers: pin one snapshot, run several queries against it, and verify
	// every ref carries one single generation's confidence.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				ix := s.Current() // the pin — all queries below share it
				cols := ix.Columns("price")
				if len(cols) != tables {
					t.Errorf("snapshot saw %d price columns, want %d", len(cols), tables)
					return
				}
				want := cols[0].Confidence
				for _, c := range append(cols, ix.Columns("rating")...) {
					if c.Confidence != want {
						t.Errorf("torn snapshot: confidences %v and %v in one pinned view", want, c.Confidence)
						return
					}
				}
				if got := ix.Stats(); got.Tables != tables || got.Columns != 2*tables {
					t.Errorf("partial index visible: %+v", got)
					return
				}
				if dump := ix.CanonicalDump(); !bytes.Contains(dump, []byte("t00")) {
					t.Error("dump missing first table")
					return
				}
			}
		}()
	}
	wg.Wait()

	// After the last flip everything is at the final generation.
	for _, c := range s.Current().Columns("price") {
		if c.Confidence != conf(32) {
			t.Fatalf("final index at confidence %v, want %v", c.Confidence, conf(32))
		}
	}
}
