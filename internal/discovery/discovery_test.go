package discovery

import (
	"sync"
	"testing"

	"github.com/sematype/pythagoras/internal/table"
)

func labeledTable(id string, types ...string) *table.Table {
	t := &table.Table{Name: "tbl " + id, ID: id}
	for _, st := range types {
		t.Columns = append(t.Columns, &table.Column{
			Header: "h_" + st, SemanticType: st, Kind: table.KindNumeric,
			NumValues: []float64{1, 2},
		})
	}
	return t
}

func TestAddLabeledAndStats(t *testing.T) {
	ix := NewTypeIndex(0)
	n := ix.AddLabeled(labeledTable("a", "price", "rating"))
	if n != 2 {
		t.Fatalf("indexed %d columns", n)
	}
	ix.AddLabeled(labeledTable("b", "price", "year"))
	s := ix.Stats()
	if s.Tables != 2 || s.Columns != 4 || s.Types != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestColumnsSortedByConfidence(t *testing.T) {
	ix := NewTypeIndex(0)
	ix.AddLabeled(labeledTable("a", "price"))
	ix.AddLabeled(labeledTable("b", "price"))
	cols := ix.Columns("price")
	if len(cols) != 2 {
		t.Fatalf("columns = %d", len(cols))
	}
	if cols[0].TableID != "a" { // equal confidence → id order
		t.Fatalf("tie-break order wrong: %v", cols)
	}
	if ix.Columns("ghost") != nil && len(ix.Columns("ghost")) != 0 {
		t.Fatal("unknown type must return empty")
	}
}

func TestTablesWithAllConjunction(t *testing.T) {
	ix := NewTypeIndex(0)
	ix.AddLabeled(labeledTable("a", "price", "rating"))
	ix.AddLabeled(labeledTable("b", "price"))
	ix.AddLabeled(labeledTable("c", "price", "rating", "year"))

	got := ix.TablesWithAll("price", "rating")
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("TablesWithAll = %v", got)
	}
	if got := ix.TablesWithAll(); got != nil {
		t.Fatal("empty query must return nil")
	}
	if got := ix.TablesWithAll("ghost"); len(got) != 0 {
		t.Fatal("unknown type must match nothing")
	}
}

func TestTablesWithAllNoDoubleCountDuplicateColumns(t *testing.T) {
	// A table with two 'price' columns must still count once.
	ix := NewTypeIndex(0)
	ix.AddLabeled(labeledTable("a", "price", "price"))
	got := ix.TablesWithAll("price", "rating")
	if len(got) != 0 {
		t.Fatalf("duplicate columns double-counted: %v", got)
	}
}

func TestRemoveAndReadd(t *testing.T) {
	ix := NewTypeIndex(0)
	ix.AddLabeled(labeledTable("a", "price"))
	ix.Remove("a")
	if s := ix.Stats(); s.Tables != 0 || s.Types != 0 {
		t.Fatalf("stats after remove = %+v", s)
	}
	// re-adding a table replaces, not duplicates
	ix.AddLabeled(labeledTable("b", "price", "year"))
	ix.AddLabeled(labeledTable("b", "price"))
	if s := ix.Stats(); s.Tables != 1 || s.Columns != 1 {
		t.Fatalf("re-add duplicated: %+v", s)
	}
}

func TestJoinCandidates(t *testing.T) {
	ix := NewTypeIndex(0)
	ix.AddLabeled(labeledTable("a", "customer_id"))
	ix.AddLabeled(labeledTable("b", "customer_id"))
	ix.AddLabeled(labeledTable("c", "customer_id"))
	pairs := ix.JoinCandidates("customer_id", 0)
	if len(pairs) != 3 { // C(3,2)
		t.Fatalf("join pairs = %d, want 3", len(pairs))
	}
	capped := ix.JoinCandidates("customer_id", 2)
	if len(capped) != 2 {
		t.Fatalf("limit ignored: %d", len(capped))
	}
	for _, p := range pairs {
		if p.LeftID == p.RightID {
			t.Fatal("self-join candidate")
		}
	}
}

func TestUnionCandidatesRanking(t *testing.T) {
	ix := NewTypeIndex(0)
	ix.AddLabeled(labeledTable("q", "price", "rating", "year"))
	ix.AddLabeled(labeledTable("full", "price", "rating", "year"))
	ix.AddLabeled(labeledTable("half", "price", "other"))
	ix.AddLabeled(labeledTable("none", "other"))

	cands, err := ix.UnionCandidates("q", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("candidates = %v", cands)
	}
	if cands[0].TableID != "full" || cands[0].Overlap != 1 {
		t.Fatalf("best candidate = %+v", cands[0])
	}
	if cands[1].TableID != "half" || cands[1].Shared != 1 {
		t.Fatalf("second candidate = %+v", cands[1])
	}

	top1, err := ix.UnionCandidates("q", 1)
	if err != nil || len(top1) != 1 {
		t.Fatal("topK ignored")
	}
	if _, err := ix.UnionCandidates("ghost", 0); err == nil {
		t.Fatal("unknown table must error")
	}
}

func TestMinConfidenceFilter(t *testing.T) {
	ix := NewTypeIndex(0.5)
	// AddLabeled uses confidence 1 → kept
	ix.AddLabeled(labeledTable("a", "price"))
	if ix.Stats().Columns != 1 {
		t.Fatal("labeled column should pass the confidence filter")
	}
}

func TestTypesSorted(t *testing.T) {
	ix := NewTypeIndex(0)
	ix.AddLabeled(labeledTable("a", "zebra", "apple", "mango"))
	got := ix.Types()
	if len(got) != 3 || got[0] != "apple" || got[2] != "zebra" {
		t.Fatalf("Types = %v", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	ix := NewTypeIndex(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := string(rune('a' + i))
			ix.AddLabeled(labeledTable(id, "price", "rating"))
			ix.Columns("price")
			ix.TablesWithAll("price", "rating")
			ix.Stats()
		}(i)
	}
	wg.Wait()
	if s := ix.Stats(); s.Tables != 8 {
		t.Fatalf("tables after concurrent adds = %d", s.Tables)
	}
}
