// Snapshot-isolated index swapping (DESIGN.md §15).
//
// A lake re-score after a model upgrade must not be observable in halves:
// a discovery query that sees table A typed by the new model and table B
// still typed by the old one can return join/union candidates that neither
// model's view of the lake supports. SwapIndex gives the serving layer the
// same isolation discipline PR 8's model lifecycle uses for engines — the
// queryable index lives behind an atomic pointer, a re-score builds a
// private shadow TypeIndex off to the side, and completion flips the
// pointer in one atomic store. Queries pin whichever index the pointer
// held when they started; they never see the shadow mid-build.
//
// Live mutations during a shadow build dual-write: an add or remove lands
// in the current index (queries must see it now) and in the shadow (the
// flip must not lose it). Every dual-write also marks its table ID as
// superseded for the rest of the build: the live mutation happened after
// the re-score's scan fetched the table, so whatever the scan eventually
// writes for that ID is stale. A superseded ID makes ShadowAdd and
// ShadowAddRefs no-ops — a remove cannot be resurrected by an in-flight
// batch, and an acknowledged live re-add cannot be overwritten by the
// older version the scan fetched before it landed.
package discovery

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/table"
)

// SwapIndex is a TypeIndex holder with snapshot-isolated replacement.
// Queries read the current index via Current (lock-free pointer load);
// mutations go through the SwapIndex so they reach both the current index
// and, while a shadow build is active, the shadow. It is safe for
// concurrent use.
type SwapIndex struct {
	cur           atomic.Pointer[TypeIndex]
	minConfidence float64

	// mu serializes mutations (so current and shadow always apply them in
	// the same order) and guards the shadow build state. Queries never take
	// it — Current is a plain atomic load.
	mu     sync.Mutex
	shadow *TypeIndex
	// superseded holds the IDs every live dual-write (add or remove) touched
	// during the active build. The shadow already carries their newest state,
	// so the re-score driver's writes for them — computed from a fetch that
	// predates the live mutation — are dropped, not applied.
	superseded map[string]struct{}
}

// NewSwapIndex returns a SwapIndex serving a fresh empty TypeIndex with the
// given insert-time confidence threshold.
func NewSwapIndex(minConfidence float64) *SwapIndex {
	s := &SwapIndex{minConfidence: minConfidence}
	s.cur.Store(NewTypeIndex(minConfidence))
	return s
}

// Current returns the index queries should read. Callers that issue several
// related queries (a join listing plus a union ranking, say) should pin one
// Current() result and run them all against it — that is the snapshot.
func (s *SwapIndex) Current() *TypeIndex { return s.cur.Load() }

// MinConfidence reports the threshold every index this holder creates uses.
func (s *SwapIndex) MinConfidence() float64 { return s.minConfidence }

// AddPredictions indexes predictions for t in the current index and, when a
// shadow build is active, in the shadow — a table indexed mid-rescore
// survives the flip. The ID is marked superseded: these refs are newer than
// anything the re-score's scan can produce for it.
func (s *SwapIndex) AddPredictions(t *table.Table, preds []core.ColumnPrediction) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.cur.Load().AddPredictions(t, preds)
	if s.shadow != nil {
		s.shadow.AddPredictions(t, preds)
		s.superseded[t.ID] = struct{}{}
	}
	return n
}

// AddLabeled indexes t's gold labels, dual-writing like AddPredictions.
func (s *SwapIndex) AddLabeled(t *table.Table) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.cur.Load().AddLabeled(t)
	if s.shadow != nil {
		s.shadow.AddLabeled(t)
		s.superseded[t.ID] = struct{}{}
	}
	return n
}

// Remove drops a table from the current index and, when a shadow build is
// active, from the shadow — marking the ID superseded so an in-flight
// re-score batch cannot re-insert what an operator just deleted.
func (s *SwapIndex) Remove(tableID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cur.Load().Remove(tableID)
	if s.shadow != nil {
		s.shadow.Remove(tableID)
		s.superseded[tableID] = struct{}{}
	}
}

// BeginShadow starts a shadow build: a fresh empty TypeIndex that re-score
// writes (ShadowAdd/ShadowAddRefs) and live dual-writes fill until
// CommitShadow flips it in or AbortShadow discards it. Only one build may
// be active at a time.
func (s *SwapIndex) BeginShadow() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shadow != nil {
		return fmt.Errorf("discovery: a shadow build is already active")
	}
	s.shadow = NewTypeIndex(s.minConfidence)
	s.superseded = map[string]struct{}{}
	return nil
}

// ShadowActive reports whether a shadow build is in progress.
func (s *SwapIndex) ShadowActive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shadow != nil
}

// ShadowAdd indexes re-scored predictions for t into the shadow only and
// returns the refs it installed — the caller persists them in the scan
// checkpoint so a resumed re-score replays them instead of re-scoring. A
// nil result with a nil error means a live dual-write superseded the scan's
// copy of the table (removed, or re-added with newer data, after the scan
// fetched it) and the write was deliberately skipped — the shadow already
// holds the authoritative state.
func (s *SwapIndex) ShadowAdd(t *table.Table, preds []core.ColumnPrediction) ([]ColumnRef, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shadow == nil {
		return nil, fmt.Errorf("discovery: no shadow build active")
	}
	if _, newer := s.superseded[t.ID]; newer {
		return nil, nil
	}
	refs := predRefs(t, preds, s.minConfidence)
	s.shadow.setRefs(t.ID, refs)
	return refs, nil
}

// ShadowAddRefs replays checkpointed refs for tableID into the shadow — the
// resume path, which must reproduce the interrupted run's index without
// re-scoring the already-durable prefix. Superseded tables are skipped like
// in ShadowAdd.
func (s *SwapIndex) ShadowAddRefs(tableID string, refs []ColumnRef) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shadow == nil {
		return fmt.Errorf("discovery: no shadow build active")
	}
	if _, newer := s.superseded[tableID]; newer {
		return nil
	}
	s.shadow.setRefs(tableID, append([]ColumnRef(nil), refs...))
	return nil
}

// CommitShadow atomically publishes the shadow as the current index — the
// one-instruction flip that makes snapshot isolation: every query started
// before the flip finishes on the old index, every query started after sees
// only the new one, and no query ever sees a mix. Returns false when no
// build is active.
func (s *SwapIndex) CommitShadow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shadow == nil {
		return false
	}
	s.cur.Store(s.shadow)
	s.shadow = nil
	s.superseded = nil
	return true
}

// AbortShadow discards an active shadow build, leaving the current index
// untouched. No-op when none is active.
func (s *SwapIndex) AbortShadow() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shadow = nil
	s.superseded = nil
}
