package loadgen

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/faultinject"
	"github.com/sematype/pythagoras/internal/lm"
	"github.com/sematype/pythagoras/internal/obs/slo"
	"github.com/sematype/pythagoras/internal/server"
)

// TestProfileRate pins the load-shaping math: soak is flat, ramp is linear
// across the window, burst lifts the rate only inside its windows.
func TestProfileRate(t *testing.T) {
	soak := Soak(100, 10*time.Second, time.Second)
	for _, el := range []time.Duration{0, 5 * time.Second, 10 * time.Second} {
		if got := soak.rate(el); got != 100 {
			t.Fatalf("soak rate(%s) = %v, want 100", el, got)
		}
	}
	ramp := Ramp(100, 300, 10*time.Second, 0)
	if got := ramp.rate(0); got != 100 {
		t.Fatalf("ramp rate(0) = %v, want 100", got)
	}
	if got := ramp.rate(5 * time.Second); math.Abs(got-200) > 1e-9 {
		t.Fatalf("ramp rate(mid) = %v, want 200", got)
	}
	if got := ramp.rate(10 * time.Second); got != 300 {
		t.Fatalf("ramp rate(end) = %v, want 300", got)
	}
	if got := ramp.rate(20 * time.Second); got != 300 {
		t.Fatalf("ramp rate past end = %v, want clamp at 300", got)
	}
	// Warmup runs at the start-of-window rate.
	if got := ramp.rate(-time.Second); got != 100 {
		t.Fatalf("ramp rate(warmup) = %v, want 100", got)
	}
	burst := Burst(50, 500, time.Second, 200*time.Millisecond, 10*time.Second, 0)
	if got := burst.rate(100 * time.Millisecond); got != 500 {
		t.Fatalf("rate inside burst = %v, want 500", got)
	}
	if got := burst.rate(500 * time.Millisecond); got != 50 {
		t.Fatalf("rate between bursts = %v, want 50", got)
	}
	if got := burst.rate(1100 * time.Millisecond); got != 500 {
		t.Fatalf("rate in second burst = %v, want 500", got)
	}
}

// TestWorkloadDeterministic: one seed, one corpus — byte-identical bodies
// across builds, and batches actually batch.
func TestWorkloadDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, CorpusTables: 12, BatchSize: 4}
	a, err := buildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.singles) != 12 || len(a.batches) != 3 {
		t.Fatalf("corpus = %d singles %d batches, want 12/3", len(a.singles), len(a.batches))
	}
	for i := range a.singles {
		if string(a.singles[i]) != string(b.singles[i]) {
			t.Fatalf("single %d differs across builds with one seed", i)
		}
	}
	var batch server.BatchRequest
	if err := json.Unmarshal(a.batches[0], &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Tables) != 4 {
		t.Fatalf("batch holds %d tables, want 4", len(batch.Tables))
	}
	// A corpus smaller than one batch still yields a usable batch body.
	small, err := buildWorkload(Config{Seed: 42, CorpusTables: 3, BatchSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(small.batches) != 1 {
		t.Fatalf("small corpus batches = %d, want 1 (whole corpus)", len(small.batches))
	}
}

// TestRunValidation: bad configs fail fast instead of producing an empty
// report.
func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{Profile: Profile{Duration: time.Second}}); err == nil {
		t.Fatal("zero QPS accepted")
	}
	if _, err := Run(ctx, Config{Profile: Profile{QPS: 10}}); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := Run(ctx, Config{Profile: Profile{QPS: 10, Duration: time.Second, Arrival: "bogus"}}); err == nil {
		t.Fatal("unknown arrival process accepted")
	}
}

// TestAwaitReady: a target that never turns ready is an error, and the poll
// loop survives responses that are not yet 200.
func TestAwaitReadyTimeout(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	err := AwaitReady(context.Background(), ts.Client(), ts.URL, 150*time.Millisecond)
	if err == nil {
		t.Fatal("AwaitReady returned nil against a permanently draining target")
	}
}

// Shared trained model: training dominates test runtime, so every
// integration test below reuses one model (the same economy the server
// package's chaos tests use).
var (
	trainOnce sync.Once
	trained   *core.Model
	trainErr  error
)

func trainedModel(t *testing.T) *core.Model {
	t.Helper()
	trainOnce.Do(func() {
		c := data.GenerateSportsTables(data.SportsConfig{
			NumTables: 22, Seed: 11, MinRows: 5, MaxRows: 8, WeakNameProb: 0.1, Domains: 2,
		})
		enc := lm.NewEncoder(lm.Config{Dim: 32, Layers: 1, Heads: 2, FFNDim: 64, MaxLen: 128, Buckets: 1 << 12, Seed: 7})
		cfg := core.DefaultConfig(enc)
		cfg.Epochs = 3
		cfg.Patience = 3
		trained, trainErr = core.Train(c, []int{0, 1, 2, 3, 4, 5}, []int{6, 7}, cfg)
	})
	if trainErr != nil {
		t.Fatal(trainErr)
	}
	return trained
}

// TestRunClosedLoop is the in-process acceptance loop from ISSUE 7: loadgen
// in library mode drives an httptest server past -max-inflight; the run
// must surface both 200s and shed 429s, http.shed must rise, and the SLO
// burn-rate gauges must move with the induced budget spend.
func TestRunClosedLoop(t *testing.T) {
	eng := slo.New(slo.DefaultObjectives(0.999, 250*time.Millisecond))
	// 20ms of injected service time with max-inflight 1 caps throughput
	// around 50 QPS; offering 400 QPS guarantees sustained shedding.
	faults := faultinject.New().On(faultinject.ServerHandle, faultinject.Sleep(20*time.Millisecond))
	s := server.New(trainedModel(t), 0,
		server.WithMaxInflight(1), server.WithSLO(eng), server.WithFaults(faults))
	ts := httptest.NewServer(s)
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		Target:        ts.URL,
		Client:        ts.Client(),
		Profile:       Soak(400, 700*time.Millisecond, 100*time.Millisecond),
		BatchFraction: 0.2,
		BatchSize:     4,
		Seed:          1,
		CorpusTables:  8,
		ReadyTimeout:  5 * time.Second,
		FetchSLO:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scheduled == 0 || rep.Sent == 0 {
		t.Fatalf("no load offered: %+v", rep)
	}
	if rep.Status["200"] == 0 {
		t.Fatalf("no successes under load: %v", rep.Status)
	}
	if rep.Status["429"] == 0 {
		t.Fatalf("offered 400 QPS at capacity ~50 and nothing shed: %v", rep.Status)
	}
	if rep.ShedRate <= 0 {
		t.Fatalf("shed rate = %v with %d 429s", rep.ShedRate, rep.Status["429"])
	}
	if rep.AchievedQPS > rep.OfferedQPS {
		t.Fatalf("achieved %v > offered %v", rep.AchievedQPS, rep.OfferedQPS)
	}
	if rep.Latency.Count == 0 || rep.Latency.P50Ms <= 0 {
		t.Fatalf("latency summary empty: %+v", rep.Latency)
	}
	if rep.Latency.P99Ms < rep.Latency.P50Ms {
		t.Fatalf("p99 %v < p50 %v", rep.Latency.P99Ms, rep.Latency.P50Ms)
	}
	// Server-side: the shed counter rose and the SLO engine burned budget.
	snap := s.Metrics().Snapshot()
	if snap.Counters["http.shed"] == 0 {
		t.Fatal("http.shed stayed zero through a shedding run")
	}
	if burn := snap.Gauges["slo.availability.burn_rate.5m"]; burn <= 0 {
		t.Fatalf("availability burn(5m) = %v after sustained shedding", burn)
	}
	if rem := snap.Gauges["slo.availability.budget.remaining"]; rem >= 1 {
		t.Fatalf("budget remaining = %v, want < 1 after bad events", rem)
	}
	// The report carried the target's SLO status home.
	if rep.SLO == nil || len(rep.SLO.Objectives) != 2 {
		t.Fatalf("report SLO status = %+v", rep.SLO)
	}
	var badSeen uint64
	for _, o := range rep.SLO.Objectives {
		badSeen += o.Bad
	}
	if badSeen == 0 {
		t.Fatal("target /v1/slo reports zero bad events after shedding")
	}
	// And the report is valid JSON end to end (the BENCH_serve.json path).
	if _, err := json.MarshalIndent(rep, "", "  "); err != nil {
		t.Fatal(err)
	}
}

// TestRunHonorsRetryAfter: with backoff honoring on, a shedding server's
// Retry-After suppresses scheduled arrivals instead of sending them.
func TestRunHonorsRetryAfter(t *testing.T) {
	faults := faultinject.New().On(faultinject.ServerHandle, faultinject.Sleep(50*time.Millisecond))
	s := server.New(trainedModel(t), 0,
		server.WithMaxInflight(1), server.WithFaults(faults))
	ts := httptest.NewServer(s)
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		Target:          ts.URL,
		Client:          ts.Client(),
		Profile:         Profile{Name: "backoff", Arrival: ArrivalFixed, QPS: 200, Duration: 600 * time.Millisecond},
		Seed:            2,
		CorpusTables:    6,
		HonorRetryAfter: true,
		ReadyTimeout:    5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status["429"] == 0 {
		t.Fatalf("expected sheds before the first backoff: %v", rep.Status)
	}
	if rep.Suppressed == 0 {
		t.Fatalf("Retry-After honored but nothing suppressed: %+v", rep)
	}
	if rep.Scheduled != rep.Sent+rep.Suppressed+rep.Dropped {
		t.Fatalf("arrival accounting leak: scheduled %d != sent %d + suppressed %d + dropped %d",
			rep.Scheduled, rep.Sent, rep.Suppressed, rep.Dropped)
	}
}
