// Package loadgen is the open-loop traffic harness that measures the
// serving path under sustained load (DESIGN.md §13) — the tool behind
// `make loadtest` and BENCH_serve.json.
//
// Open-loop means arrivals follow a schedule that does not depend on how
// fast the server answers: a real population of clients does not politely
// wait for each other's responses before sending. The alternative —
// closed-loop workers that issue request N+1 only after N returns — is the
// classic coordinated-omission trap: the moment the server stalls, the
// generator stops offering load, and the stall mostly disappears from the
// recorded latencies. This harness avoids both halves of the trap:
//
//   - Arrivals are generated from the schedule alone (fixed-rate or Poisson
//     at a configurable QPS, with ramp and burst shaping), so offered load
//     keeps arriving while the server struggles — exactly when measurement
//     matters most.
//   - Every latency is measured from the request's *scheduled* send time,
//     not the moment the dispatcher actually got around to writing bytes.
//     If the harness itself falls behind, the backlog shows up as latency
//     instead of silently stretching the test.
//
// Latencies land in an internal/obs histogram; per-status counts, shed
// rate, achieved-vs-offered QPS and the p50/p90/p99/p999 summary render
// into a JSON Report. The measured window opens only after the target's
// /v1/readyz goes green and the configured warmup has been discarded.
//
// The package is the library half of cmd/loadgen; tests drive Run directly
// against an httptest server, which is the in-process integration loop the
// chaos suite uses (drive load past -max-inflight, watch http.shed rise,
// see the SLO burn-rate gauges move).
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/obs"
	"github.com/sematype/pythagoras/internal/obs/slo"
	"github.com/sematype/pythagoras/internal/server"
	"github.com/sematype/pythagoras/internal/table"
)

// Arrival processes.
const (
	ArrivalFixed   = "fixed"   // deterministic 1/rate inter-arrival gaps
	ArrivalPoisson = "poisson" // exponential gaps, the memoryless default
)

// Profile shapes the offered load over time.
type Profile struct {
	// Name labels the profile in reports ("soak", "ramp", "burst", ...).
	Name string
	// Arrival selects the arrival process (ArrivalPoisson when empty).
	Arrival string
	// QPS is the base offered rate, > 0.
	QPS float64
	// RampTo, when > 0, ramps the rate linearly from QPS to RampTo across
	// the measured window.
	RampTo float64
	// BurstQPS, when > 0, raises the rate to BurstQPS for BurstLen at the
	// start of every BurstEvery period — offered load spikes on top of the
	// base rate.
	BurstQPS   float64
	BurstEvery time.Duration
	BurstLen   time.Duration
	// Duration is the measured window; Warmup is offered (and sent) before
	// it but discarded from every reported number.
	Duration time.Duration
	Warmup   time.Duration
}

// rate is the instantaneous offered rate at elapsed time into the measured
// window (warmup uses the rate at 0).
func (p Profile) rate(el time.Duration) float64 {
	r := p.QPS
	if p.RampTo > 0 && p.Duration > 0 {
		frac := float64(el) / float64(p.Duration)
		frac = math.Max(0, math.Min(1, frac))
		r = p.QPS + (p.RampTo-p.QPS)*frac
	}
	if p.BurstQPS > 0 && p.BurstEvery > 0 && el >= 0 {
		if el%p.BurstEvery < p.BurstLen {
			r = math.Max(r, p.BurstQPS)
		}
	}
	if r <= 0 {
		r = 1
	}
	return r
}

// Soak is a constant-rate profile.
func Soak(qps float64, dur, warmup time.Duration) Profile {
	return Profile{Name: "soak", QPS: qps, Duration: dur, Warmup: warmup}
}

// Burst is a base rate with periodic spikes to burstQPS.
func Burst(baseQPS, burstQPS float64, every, length, dur, warmup time.Duration) Profile {
	return Profile{
		Name: "burst", QPS: baseQPS, BurstQPS: burstQPS,
		BurstEvery: every, BurstLen: length, Duration: dur, Warmup: warmup,
	}
}

// Ramp rises linearly from fromQPS to toQPS over the window.
func Ramp(fromQPS, toQPS float64, dur, warmup time.Duration) Profile {
	return Profile{Name: "ramp", QPS: fromQPS, RampTo: toQPS, Duration: dur, Warmup: warmup}
}

// Config is one load run.
type Config struct {
	// Target is the base URL of the server ("http://127.0.0.1:8080").
	Target string
	// Client overrides the HTTP client (default: transport tuned for many
	// concurrent connections, no client-side timeout — the server's
	// deadline is part of what is being measured).
	Client *http.Client
	// Profile shapes the offered load.
	Profile Profile
	// BatchFraction of arrivals are POST /v1/predict-batch (BatchSize
	// tables each); the rest are single-table /v1/predict.
	BatchFraction float64
	BatchSize     int
	// Seed drives the workload corpus and every random draw (arrival gaps,
	// workload mix) — two runs with one seed offer identical schedules.
	Seed int64
	// CorpusTables is the number of distinct tables in the seeded workload
	// corpus (default 24).
	CorpusTables int
	// HonorRetryAfter: when a 429/503 carries Retry-After, arrivals
	// scheduled before the advised time are suppressed (counted, not sent).
	// Off by default: a pure open-loop client keeps offering load, which is
	// the right way to measure shedding itself.
	HonorRetryAfter bool
	// MaxOutstanding caps in-flight requests as a client-side safety valve
	// (default 4096). Arrivals past the cap are counted as dropped, never
	// silently skipped.
	MaxOutstanding int
	// ReadyTimeout bounds the pre-run /v1/readyz poll (default 30s).
	ReadyTimeout time.Duration
	// FetchSLO appends the target's /v1/slo status to the report.
	FetchSLO bool
}

// LatencySummary condenses the schedule-based latency histogram.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Report is the JSON result of one Run — the per-profile unit of
// BENCH_serve.json.
type Report struct {
	Profile         string  `json:"profile"`
	Arrival         string  `json:"arrival"`
	TargetQPS       float64 `json:"target_qps"`
	RampToQPS       float64 `json:"ramp_to_qps,omitempty"`
	BurstQPS        float64 `json:"burst_qps,omitempty"`
	DurationSeconds float64 `json:"duration_seconds"`
	WarmupSeconds   float64 `json:"warmup_seconds"`

	// Offered side: arrivals the schedule produced inside the measured
	// window, and what became of each before a response was in play.
	Scheduled  uint64 `json:"scheduled"`
	Sent       uint64 `json:"sent"`
	Suppressed uint64 `json:"suppressed,omitempty"` // Retry-After honoring
	Dropped    uint64 `json:"dropped,omitempty"`    // MaxOutstanding safety valve

	// Answered side.
	Completed       uint64            `json:"completed"`
	TransportErrors uint64            `json:"transport_errors,omitempty"`
	Status          map[string]uint64 `json:"status"` // per-status counts: "200", "429", ...

	OfferedQPS  float64 `json:"offered_qps"`  // scheduled / duration
	AchievedQPS float64 `json:"achieved_qps"` // completed / duration, any status
	SuccessQPS  float64 `json:"success_qps"`  // 2xx / duration
	ShedRate    float64 `json:"shed_rate"`    // 429s / sent

	// Latency summarizes 2xx responses only, measured from each request's
	// scheduled send time (coordinated-omission-safe).
	Latency LatencySummary `json:"latency"`

	// SLO is the target's /v1/slo status after the run (FetchSLO).
	SLO *slo.Status `json:"slo,omitempty"`
}

// latencyBuckets is the histogram scale for request latencies: 100µs to
// ~45s, ×1.3 — fine enough near the millisecond range that p999 stays
// meaningful, wide enough to catch a queue-collapsed tail.
var latencyBuckets = obs.ExpBuckets(1e-4, 1.3, 50)

// workload is the seeded request corpus: pre-marshaled bodies so the
// dispatch path does no JSON work.
type workload struct {
	singles [][]byte
	batches [][]byte
}

// buildWorkload generates the corpus and marshals the wire bodies.
func buildWorkload(cfg Config) (*workload, error) {
	n := cfg.CorpusTables
	if n <= 0 {
		n = 24
	}
	batchSize := cfg.BatchSize
	if batchSize <= 0 {
		batchSize = 8
	}
	c := data.GenerateSportsTables(data.SportsConfig{
		NumTables: n, Seed: cfg.Seed, MinRows: 6, MaxRows: 12, WeakNameProb: 0.1, Domains: 3,
	})
	w := &workload{}
	reqs := make([]server.TableRequest, 0, len(c.Tables))
	for _, t := range c.Tables {
		tr := server.TableRequest{Name: t.Name}
		for _, col := range t.Columns {
			cr := server.ColumnRequest{Header: col.Header}
			if col.Kind == table.KindNumeric {
				for _, v := range col.NumValues {
					cr.Values = append(cr.Values, strconv.FormatFloat(v, 'g', -1, 64))
				}
			} else {
				cr.Values = col.TextValues
			}
			tr.Columns = append(tr.Columns, cr)
		}
		reqs = append(reqs, tr)
		raw, err := json.Marshal(tr)
		if err != nil {
			return nil, fmt.Errorf("loadgen: marshal table %s: %w", t.ID, err)
		}
		w.singles = append(w.singles, raw)
	}
	for i := 0; i+batchSize <= len(reqs); i += batchSize {
		raw, err := json.Marshal(server.BatchRequest{Tables: reqs[i : i+batchSize]})
		if err != nil {
			return nil, err
		}
		w.batches = append(w.batches, raw)
	}
	if len(w.batches) == 0 { // corpus smaller than one batch: reuse it whole
		raw, err := json.Marshal(server.BatchRequest{Tables: reqs})
		if err != nil {
			return nil, err
		}
		w.batches = append(w.batches, raw)
	}
	return w, nil
}

// tally accumulates one window's worth of results (warmup and measured keep
// separate tallies; only measured renders into the report).
type tally struct {
	mu        sync.Mutex
	status    map[int]uint64
	completed uint64
	errors    uint64
	hist      *obs.Histogram
}

func newTally() *tally {
	return &tally{status: map[int]uint64{}, hist: obs.NewHistogram(latencyBuckets)}
}

func (t *tally) record(status int, latency time.Duration, transportErr bool) {
	t.mu.Lock()
	if transportErr {
		t.errors++
	} else {
		t.completed++
		t.status[status]++
	}
	t.mu.Unlock()
	if !transportErr && status >= 200 && status < 300 {
		t.hist.Observe(latency.Seconds())
	}
}

// AwaitReady polls target's /v1/readyz until it answers 200 — the gate that
// keeps a half-started server (model loading, listener up but draining
// predecessor still bound) out of the measured window.
func AwaitReady(ctx context.Context, client *http.Client, target string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	url := strings.TrimSuffix(target, "/") + "/v1/readyz"
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: target %s not ready within %s", target, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Run executes one profile against the target and renders the report. It
// polls /v1/readyz first, offers Warmup+Duration of load, then waits for
// stragglers before summarizing.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	p := cfg.Profile
	if p.QPS <= 0 {
		return nil, fmt.Errorf("loadgen: profile %q needs QPS > 0", p.Name)
	}
	if p.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: profile %q needs Duration > 0", p.Name)
	}
	arrival := p.Arrival
	if arrival == "" {
		arrival = ArrivalPoisson
	}
	if arrival != ArrivalFixed && arrival != ArrivalPoisson {
		return nil, fmt.Errorf("loadgen: unknown arrival process %q", arrival)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns: 512, MaxIdleConnsPerHost: 512, MaxConnsPerHost: 0,
		}}
	}
	maxOut := cfg.MaxOutstanding
	if maxOut <= 0 {
		maxOut = 4096
	}
	w, err := buildWorkload(cfg)
	if err != nil {
		return nil, err
	}
	if err := AwaitReady(ctx, client, cfg.Target, cfg.ReadyTimeout); err != nil {
		return nil, err
	}

	base := strings.TrimSuffix(cfg.Target, "/")
	rng := rand.New(rand.NewSource(cfg.Seed))
	warm, measured := newTally(), newTally()
	var scheduled, sent, suppressed, dropped uint64 // measured window only
	var outstanding atomic.Int64
	var backoffUntil atomic.Int64 // nanoseconds on the schedule clock
	var wg sync.WaitGroup

	span := p.Warmup + p.Duration
	start := time.Now()
	for sched := time.Duration(0); sched < span; {
		inMeasured := sched >= p.Warmup
		if inMeasured {
			scheduled++
		}
		// Pick the workload item with the schedule's rng (never in the
		// request goroutine — draws must not depend on completion order).
		isBatch := cfg.BatchFraction > 0 && rng.Float64() < cfg.BatchFraction
		var url string
		var body []byte
		if isBatch {
			url = base + "/v1/predict-batch"
			body = w.batches[rng.Intn(len(w.batches))]
		} else {
			url = base + "/v1/predict"
			body = w.singles[rng.Intn(len(w.singles))]
		}

		// Open-loop pacing: sleep until this arrival's scheduled instant.
		if d := time.Until(start.Add(sched)); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		switch {
		case cfg.HonorRetryAfter && int64(sched) < backoffUntil.Load():
			if inMeasured {
				suppressed++
			}
		case outstanding.Load() >= int64(maxOut):
			if inMeasured {
				dropped++
			}
		default:
			if inMeasured {
				sent++
			}
			t := warm
			if inMeasured {
				t = measured
			}
			outstanding.Add(1)
			wg.Add(1)
			go func(sched time.Duration, url string, body []byte, t *tally) {
				defer wg.Done()
				defer outstanding.Add(-1)
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
				if err != nil {
					t.record(0, 0, true)
					return
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				// Schedule-based latency: however long the dispatcher or the
				// connection pool delayed the send, the clock started when the
				// request was *due*.
				lat := time.Since(start.Add(sched))
				if err != nil {
					t.record(0, 0, true)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if ra := resp.Header.Get("Retry-After"); ra != "" &&
					(resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable) {
					if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
						until := int64(sched + lat + time.Duration(secs)*time.Second)
						for {
							cur := backoffUntil.Load()
							if until <= cur || backoffUntil.CompareAndSwap(cur, until) {
								break
							}
						}
					}
				}
				t.record(resp.StatusCode, lat, false)
			}(sched, url, body, t)
		}

		// Advance the schedule by the arrival process.
		r := p.rate(sched - p.Warmup)
		switch arrival {
		case ArrivalFixed:
			sched += time.Duration(float64(time.Second) / r)
		case ArrivalPoisson:
			sched += time.Duration(rng.ExpFloat64() * float64(time.Second) / r)
		}
	}

	// Drain stragglers: open-loop offering has ended; give in-flight
	// requests a bounded grace period.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(30 * time.Second):
		return nil, fmt.Errorf("loadgen: %d requests still outstanding 30s after the window closed",
			outstanding.Load())
	}

	rep := renderReport(p, arrival, scheduled, sent, suppressed, dropped, measured)
	if cfg.FetchSLO {
		var st slo.Status
		if err := fetchJSON(ctx, client, base+"/v1/slo", &st); err == nil {
			rep.SLO = &st
		}
	}
	return rep, nil
}

func fetchJSON(ctx context.Context, client *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// renderReport folds the measured tally into the wire report.
func renderReport(p Profile, arrival string, scheduled, sent, suppressed, dropped uint64, t *tally) *Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	rep := &Report{
		Profile:         p.Name,
		Arrival:         arrival,
		TargetQPS:       p.QPS,
		RampToQPS:       p.RampTo,
		BurstQPS:        p.BurstQPS,
		DurationSeconds: p.Duration.Seconds(),
		WarmupSeconds:   p.Warmup.Seconds(),
		Scheduled:       scheduled,
		Sent:            sent,
		Suppressed:      suppressed,
		Dropped:         dropped,
		Completed:       t.completed,
		TransportErrors: t.errors,
		Status:          map[string]uint64{},
	}
	var success uint64
	for code, n := range t.status {
		rep.Status[strconv.Itoa(code)] = n
		if code >= 200 && code < 300 {
			success += n
		}
	}
	secs := p.Duration.Seconds()
	rep.OfferedQPS = float64(scheduled) / secs
	rep.AchievedQPS = float64(t.completed) / secs
	rep.SuccessQPS = float64(success) / secs
	if sent > 0 {
		rep.ShedRate = float64(t.status[http.StatusTooManyRequests]) / float64(sent)
	}
	if hs := t.hist.Snapshot(); hs.Count > 0 {
		rep.Latency = LatencySummary{
			Count:  hs.Count,
			MeanMs: hs.Sum / float64(hs.Count) * 1000,
			P50Ms:  hs.P50 * 1000,
			P90Ms:  hs.P90 * 1000,
			P99Ms:  hs.P99 * 1000,
			P999Ms: t.hist.Quantile(0.999) * 1000,
			MaxMs:  hs.Max * 1000,
		}
	}
	return rep
}
