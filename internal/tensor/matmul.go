package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// Matrix-product kernels. Every product comes in three forms:
//
//   - an allocating convenience (MatMul, MatMulTransposeA, MatMulTransposeB)
//     for cold paths and tests;
//   - an Into form writing a fresh result into caller-owned storage
//     (MatMulInto, MatMulTransposeAInto, MatMulTransposeBInto);
//   - an AddInto form accumulating out += product without any temporary
//     (MatMulAddInto, MatMulTransposeAAddInto, MatMulTransposeBAddInto) —
//     the backward-pass workhorses: gradient accumulation used to allocate a
//     product and AddInPlace it; the fused form does neither.
//
// All kernels are cache-blocked (see blockK/blockJ) but keep a fixed
// per-element accumulation order — ascending k (or r) regardless of block
// boundaries or worker count — so results are bit-identical to the naive
// triple loop and independent of parallel dispatch. Hot paths must use the
// Into/AddInto forms; cmd/lintalloc enforces this for internal/autodiff,
// internal/gnn and internal/infer.

// ParallelThreshold is the flop count (rows·inner·cols) above which the
// product kernels fan out across CPU cores. It is a variable so benchmarks
// can probe the cutoff; the default is sized for the blocked kernels, whose
// per-flop cost is low enough that fine-grained products lose more to
// goroutine handoff than they gain (the old naive-loop cutoff of 1<<20 was
// too eager). Parallelism never changes results: workers split output rows
// (or column blocks), and each output element keeps its fixed accumulation
// order.
var ParallelThreshold = 1 << 22

// Blocking geometry. blockK bounds how many B rows (the k extent) one tile
// touches; blockJ bounds the j extent so an output-row tile plus a B-row
// tile stay L1-resident (256 float64 = 2KB each). Tiles are walked in
// ascending (j-block, k-block) order with k ascending inside, so the
// per-element accumulation order equals the naive loop's.
const (
	blockK = 128
	blockJ = 256
)

// MatMul returns a×b. Panics if inner dimensions disagree.
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols) // fresh allocations are already zero
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a×b. out must be a.Rows×b.Cols and must not
// alias a or b. Large products are computed in parallel across row blocks.
func MatMulInto(out, a, b *Matrix) {
	checkMatMulShape(out, a, b)
	out.Zero()
	matMulDispatch(out, a, b)
}

// MatMulAddInto accumulates out += a×b with no temporary storage.
func MatMulAddInto(out, a, b *Matrix) {
	checkMatMulShape(out, a, b)
	matMulDispatch(out, a, b)
}

func checkMatMulShape(out, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto out %dx%d want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
}

// matMulDispatch accumulates a×b into out, serially or across row ranges
// when the product is large. Row-splitting keeps every output element owned
// by exactly one worker, so the result is independent of the worker count.
func matMulDispatch(out, a, b *Matrix) {
	parallelRows(a.Rows, a.Rows*a.Cols*b.Cols, out, a, b, matMulRange)
}

// parallelRows splits [0, rows) across CPU cores when flops exceeds
// ParallelThreshold, else runs kernel(out, a, b, 0, rows) on the calling
// goroutine. kernel is a top-level function (not a capturing closure) so the
// serial path — the steady state for model-sized products — performs zero
// heap allocations.
func parallelRows(rows, flops int, out, a, b *Matrix, kernel func(out, a, b *Matrix, lo, hi int)) {
	workers := 1
	if flops > ParallelThreshold {
		workers = runtime.NumCPU()
		if workers > rows {
			workers = rows
		}
	}
	if workers <= 1 {
		kernel(out, a, b, 0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			kernel(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRange accumulates rows [lo, hi) of a×b into out with j/k cache
// blocking and an ikj-ordered, 4-wide-unrolled inner loop. Per output
// element the additions happen in ascending k order — bit-identical to the
// naive loop whatever the block geometry.
func matMulRange(out, a, b *Matrix, lo, hi int) {
	ac, bc := a.Cols, b.Cols
	for jb := 0; jb < bc; jb += blockJ {
		je := jb + blockJ
		if je > bc {
			je = bc
		}
		for kb := 0; kb < ac; kb += blockK {
			ke := kb + blockK
			if ke > ac {
				ke = ac
			}
			for i := lo; i < hi; i++ {
				arow := a.Data[i*ac+kb : i*ac+ke]
				orow := out.Data[i*bc+jb : i*bc+je]
				for kk, av := range arow {
					if av == 0 {
						continue
					}
					brow := b.Data[(kb+kk)*bc+jb : (kb+kk)*bc+je]
					brow = brow[:len(orow)] // bounds-check elimination hint
					j := 0
					for ; j+4 <= len(orow); j += 4 {
						orow[j] += av * brow[j]
						orow[j+1] += av * brow[j+1]
						orow[j+2] += av * brow[j+2]
						orow[j+3] += av * brow[j+3]
					}
					for ; j < len(orow); j++ {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// MatMulTransposeB returns a×bᵀ.
func MatMulTransposeB(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTransposeBInto(out, a, b)
	return out
}

// MatMulTransposeBInto computes out = a×bᵀ. out must be a.Rows×b.Rows and
// must not alias a or b.
func MatMulTransposeBInto(out, a, b *Matrix) {
	checkMatMulTBShape(out, a, b)
	out.Zero()
	matMulTBDispatch(out, a, b)
}

// MatMulTransposeBAddInto accumulates out += a×bᵀ with no temporary.
func MatMulTransposeBAddInto(out, a, b *Matrix) {
	checkMatMulTBShape(out, a, b)
	matMulTBDispatch(out, a, b)
}

func checkMatMulTBShape(out, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransposeB %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransposeBInto out %dx%d want %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
}

func matMulTBDispatch(out, a, b *Matrix) {
	parallelRows(a.Rows, a.Rows*a.Cols*b.Rows, out, a, b, matMulTBRange)
}

// matMulTBRange accumulates rows [lo, hi) of a×bᵀ into out. Each output
// element is an independent dot product over contiguous rows of a and b.
// Blocking happens over b's rows (a tile of b stays cache-resident across
// the i sweep) — never over k: the dot product seeds its accumulator from
// out and adds terms in ascending k order, so both the Into and AddInto
// forms are bit-identical to the naive loop. (Splitting k into block
// partials would re-associate the sum and move ulps.)
func matMulTBRange(out, a, b *Matrix, lo, hi int) {
	ac, oc := a.Cols, out.Cols
	const rowTile = 48 // b rows per tile: 48 rows × 128 cols ≈ 48KB, L2-resident
	for jb := 0; jb < b.Rows; jb += rowTile {
		je := jb + rowTile
		if je > b.Rows {
			je = b.Rows
		}
		for i := lo; i < hi; i++ {
			arow := a.Data[i*ac : (i+1)*ac]
			orow := out.Data[i*oc : (i+1)*oc]
			for j := jb; j < je; j++ {
				brow := b.Data[j*ac : (j+1)*ac]
				brow = brow[:len(arow)]
				s := orow[j]
				for k, av := range arow {
					s += av * brow[k]
				}
				orow[j] = s
			}
		}
	}
}

// MatMulTransposeA returns aᵀ×b.
func MatMulTransposeA(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	MatMulTransposeAInto(out, a, b)
	return out
}

// MatMulTransposeAInto computes out = aᵀ×b. out must be a.Cols×b.Cols and
// must not alias a or b.
func MatMulTransposeAInto(out, a, b *Matrix) {
	checkMatMulTAShape(out, a, b)
	out.Zero()
	matMulTADispatch(out, a, b)
}

// MatMulTransposeAAddInto accumulates out += aᵀ×b with no temporary.
func MatMulTransposeAAddInto(out, a, b *Matrix) {
	checkMatMulTAShape(out, a, b)
	matMulTADispatch(out, a, b)
}

func checkMatMulTAShape(out, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransposeA (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransposeAInto out %dx%d want %dx%d", out.Rows, out.Cols, a.Cols, b.Cols))
	}
}

// matMulTADispatch parallelizes aᵀ×b over output rows (columns of a). Every
// worker scans all r, reading a strided column slice but writing a disjoint
// row range of out, so accumulation per element stays ascending-r.
func matMulTADispatch(out, a, b *Matrix) {
	parallelRows(a.Cols, a.Rows*a.Cols*b.Cols, out, a, b, matMulTARange)
}

// matMulTARange accumulates output rows [lo, hi) of aᵀ×b: for each input
// row r, out[i] += a[r][i]·b[r] for i in [lo, hi). The r loop is outermost
// so b.Row(r) is loaded once per sweep; per output element the additions
// happen in ascending r order.
func matMulTARange(out, a, b *Matrix, lo, hi int) {
	ac, bc := a.Cols, b.Cols
	for r := 0; r < a.Rows; r++ {
		arow := a.Data[r*ac+lo : r*ac+hi]
		brow := b.Data[r*bc : (r+1)*bc]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[(lo+i)*bc : (lo+i+1)*bc]
			orow = orow[:len(brow)]
			j := 0
			for ; j+4 <= len(brow); j += 4 {
				orow[j] += av * brow[j]
				orow[j+1] += av * brow[j+1]
				orow[j+2] += av * brow[j+2]
				orow[j+3] += av * brow[j+3]
			}
			for ; j < len(brow); j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// --- naive references (tests only) ---
//
// The straight triple loops the blocked kernels must match bit-for-bit.
// They stay package-level so the kernel edge-case tests always have an
// independent oracle; production code never calls them.

func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			for k := 0; k < a.Cols; k++ {
				out.Data[i*b.Cols+j] += a.Data[i*a.Cols+k] * b.Data[k*b.Cols+j]
			}
		}
	}
	return out
}

func naiveMatMulTransposeA(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			for r := 0; r < a.Rows; r++ {
				out.Data[i*b.Cols+j] += a.Data[r*a.Cols+i] * b.Data[r*b.Cols+j]
			}
		}
	}
	return out
}

func naiveMatMulTransposeB(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			for k := 0; k < a.Cols; k++ {
				out.Data[i*b.Rows+j] += a.Data[i*a.Cols+k] * b.Data[j*b.Cols+k]
			}
		}
	}
	return out
}
