package tensor

import (
	"math/rand"
	"testing"
)

// randMat fills an r×c matrix from rng — the shared input generator for the
// kernel edge-case tests.
func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func bitEqual(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (bit-identity violated)",
				name, i, got.Data[i], want.Data[i])
		}
	}
}

// kernelShapes covers the geometry corners of the blocked kernels: 1×1,
// prime dimensions (never a multiple of blockJ/blockK), tall/skinny and
// short/wide extremes, exact block multiples, and off-by-one straddles of
// the blockK=128 and blockJ=256 boundaries.
var kernelShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{2, 3, 4},
	{7, 13, 17},
	{31, 37, 41},
	{300, 3, 2},  // tall and skinny
	{3, 2, 300},  // short and wide
	{1, 128, 1},  // k exactly one block
	{1, 129, 1},  // k one past a block boundary
	{2, 127, 2},  // k one short of a block
	{5, 257, 5},  // k straddling two blocks
	{4, 16, 255}, // j one short of a block
	{4, 16, 256}, // j exactly one block
	{4, 16, 257}, // j straddling a block boundary
}

// TestBlockedKernelsMatchNaive pins the load-bearing substrate invariant:
// the cache-blocked kernels are bit-identical to the naive triple loops for
// every product variant, whatever the shape. (The blocked kernels keep a
// fixed ascending-k/-r accumulation order per output element precisely so
// this holds.)
func TestBlockedKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, s := range kernelShapes {
		a := randMat(rng, s.m, s.k)
		b := randMat(rng, s.k, s.n)
		bitEqual(t, "MatMul", MatMul(a, b), naiveMatMul(a, b))

		at := randMat(rng, s.k, s.m) // aᵀ×b: a is k×m, b is k×n, out m×n
		bt := randMat(rng, s.k, s.n)
		bitEqual(t, "MatMulTransposeA", MatMulTransposeA(at, bt), naiveMatMulTransposeA(at, bt))

		ab := randMat(rng, s.m, s.k) // a×bᵀ: a is m×k, b is n×k, out m×n
		bb := randMat(rng, s.n, s.k)
		bitEqual(t, "MatMulTransposeB", MatMulTransposeB(ab, bb), naiveMatMulTransposeB(ab, bb))
	}
}

// TestKernelsZeroExtents: empty row/inner/column extents must produce
// well-shaped, all-zero (or empty) results, not panics.
func TestKernelsZeroExtents(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cases := []struct{ m, k, n int }{
		{0, 5, 4}, // zero output rows
		{3, 0, 4}, // empty inner dimension: out must be all zeros
		{3, 5, 0}, // zero output cols
		{0, 0, 0},
	}
	for _, s := range cases {
		a := randMat(rng, s.m, s.k)
		b := randMat(rng, s.k, s.n)
		bitEqual(t, "MatMul", MatMul(a, b), naiveMatMul(a, b))

		at := randMat(rng, s.k, s.m)
		bt := randMat(rng, s.k, s.n)
		bitEqual(t, "MatMulTransposeA", MatMulTransposeA(at, bt), naiveMatMulTransposeA(at, bt))

		ab := randMat(rng, s.m, s.k)
		bb := randMat(rng, s.n, s.k)
		bitEqual(t, "MatMulTransposeB", MatMulTransposeB(ab, bb), naiveMatMulTransposeB(ab, bb))
	}
}

// TestParallelDispatchBitIdentical forces the parallel row-split path (by
// dropping ParallelThreshold to 0) and checks results stay bit-identical to
// the serial naive loop: workers own disjoint output rows and never change
// any element's accumulation order.
func TestParallelDispatchBitIdentical(t *testing.T) {
	saved := ParallelThreshold
	ParallelThreshold = 0
	defer func() { ParallelThreshold = saved }()

	rng := rand.New(rand.NewSource(9))
	a := randMat(rng, 67, 33)
	b := randMat(rng, 33, 45)
	bitEqual(t, "MatMul(parallel)", MatMul(a, b), naiveMatMul(a, b))

	at := randMat(rng, 33, 67)
	bitEqual(t, "MatMulTransposeA(parallel)", MatMulTransposeA(at, b), naiveMatMulTransposeA(at, b))

	bb := randMat(rng, 45, 33)
	bitEqual(t, "MatMulTransposeB(parallel)", MatMulTransposeB(a, bb), naiveMatMulTransposeB(a, bb))
}

// TestAddIntoSeededNaive checks all three AddInto forms against naive loops
// run on top of the same seed matrix (term-by-term accumulation order is
// identical, so equality is bitwise).
func TestAddIntoSeededNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, k, n := 9, 131, 17

	// out += a×b
	a, b := randMat(rng, m, k), randMat(rng, k, n)
	seed := randMat(rng, m, n)
	got := seed.Clone()
	MatMulAddInto(got, a, b)
	want := seed.Clone()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			for kk := 0; kk < k; kk++ {
				want.Data[i*n+j] += a.Data[i*k+kk] * b.Data[kk*n+j]
			}
		}
	}
	bitEqual(t, "MatMulAddInto", got, want)

	// out += aᵀ×b
	at, bt := randMat(rng, k, m), randMat(rng, k, n)
	seed = randMat(rng, m, n)
	got = seed.Clone()
	MatMulTransposeAAddInto(got, at, bt)
	want = seed.Clone()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			for r := 0; r < k; r++ {
				want.Data[i*n+j] += at.Data[r*m+i] * bt.Data[r*n+j]
			}
		}
	}
	bitEqual(t, "MatMulTransposeAAddInto", got, want)

	// out += a×bᵀ
	ab, bb := randMat(rng, m, k), randMat(rng, n, k)
	seed = randMat(rng, m, n)
	got = seed.Clone()
	MatMulTransposeBAddInto(got, ab, bb)
	want = seed.Clone()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			for kk := 0; kk < k; kk++ {
				want.Data[i*n+j] += ab.Data[i*k+kk] * bb.Data[j*k+kk]
			}
		}
	}
	bitEqual(t, "MatMulTransposeBAddInto", got, want)
}

func TestIntoShapePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"MatMulInto", func() { MatMulInto(New(2, 2), New(2, 3), New(3, 3)) }},
		{"MatMulInto inner", func() { MatMulInto(New(2, 3), New(2, 4), New(3, 3)) }},
		{"MatMulTransposeAInto", func() { MatMulTransposeAInto(New(2, 2), New(4, 3), New(4, 3)) }},
		{"MatMulTransposeBInto", func() { MatMulTransposeBInto(New(2, 2), New(2, 3), New(4, 3)) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected shape panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

// TestIntoKernelsAllocFree pins the whole point of the Into forms: the
// steady-state hot path performs zero heap allocations. A regression here
// means a kernel regained a hidden temporary.
func TestIntoKernelsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randMat(rng, 32, 48)
	b := randMat(rng, 48, 24)
	at := randMat(rng, 48, 32)
	bb := randMat(rng, 24, 48)
	out := New(32, 24)
	outTA := New(32, 24) // aᵀ(48×32) × b(48×24) → 32×24

	kernels := map[string]func(){
		"MatMulInto":              func() { MatMulInto(out, a, b) },
		"MatMulAddInto":           func() { MatMulAddInto(out, a, b) },
		"MatMulTransposeAInto":    func() { MatMulTransposeAInto(outTA, at, b) },
		"MatMulTransposeBInto":    func() { MatMulTransposeBInto(out, a, bb) },
		"MatMulTransposeBAddInto": func() { MatMulTransposeBAddInto(out, a, bb) },
	}
	for name, fn := range kernels {
		if n := testing.AllocsPerRun(20, fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, n)
		}
	}
}

// TestF32KernelMatchesFloat64 checks the float32 kernel against the widened
// float64 naive loop within float32 tolerance, plus Widen/Narrow round-trip
// exactness.
func TestF32KernelMatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, k, n := 11, 259, 19
	a64, b64 := randMat(rng, m, k), randMat(rng, k, n)
	a32, b32 := NewF32(m, k), NewF32(k, n)
	NarrowInto(a32, a64)
	NarrowInto(b32, b64)
	// Re-widen so the float64 oracle sees exactly the float32 inputs.
	aw, bw := a32.Widen(), b32.Widen()
	want := naiveMatMul(aw, bw)

	out := NewF32(m, n)
	MatMulF32Into(out, a32, b32)
	for i := range out.Data {
		diff := float64(out.Data[i]) - want.Data[i]
		if diff < 0 {
			diff = -diff
		}
		// float32 accumulation over k=259 terms: generous but finite bound.
		if diff > 1e-3 {
			t.Fatalf("MatMulF32Into element %d = %v, want ≈%v", i, out.Data[i], want.Data[i])
		}
	}

	// Widen∘Narrow on float32-representable data is the identity.
	back := NewF32(m, k)
	NarrowInto(back, aw)
	for i := range back.Data {
		if back.Data[i] != a32.Data[i] {
			t.Fatalf("Narrow(Widen(x)) != x at %d", i)
		}
	}
}

// TestF32KernelAllocFree: the float32 kernel is serial and must not
// allocate either.
func TestF32KernelAllocFree(t *testing.T) {
	a, b := NewF32(16, 32), NewF32(32, 8)
	for i := range a.Data {
		a.Data[i] = float32(i%7) - 3
	}
	for i := range b.Data {
		b.Data[i] = float32(i%5) - 2
	}
	out := NewF32(16, 8)
	if n := testing.AllocsPerRun(20, func() { MatMulF32Into(out, a, b) }); n != 0 {
		t.Errorf("MatMulF32Into: %v allocs/op, want 0", n)
	}
}

// BenchmarkParallelThreshold probes the flop cutoff at which row-parallel
// dispatch starts paying for the blocked kernels: the same 256×256×256
// product (~16.8M flops) is timed with ParallelThreshold set far above the
// product (serial) and at zero (parallel). Comparing the two cases on a
// target machine is how the default in matmul.go was (and should be)
// tuned — the variable exists exactly so benchmarks can override it.
func BenchmarkParallelThreshold(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	const n = 256
	a, m := randMat(rng, n, n), randMat(rng, n, n)
	out := New(n, n)
	saved := ParallelThreshold
	defer func() { ParallelThreshold = saved }()
	for _, bc := range []struct {
		name      string
		threshold int
	}{
		{"serial", 1 << 62},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			ParallelThreshold = bc.threshold
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(out, a, m)
			}
		})
	}
}

// BenchmarkMatMulBlockedVsNaive tracks what the cache blocking buys over
// the straight triple loop at a model-typical size.
func BenchmarkMatMulBlockedVsNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	x, y := randMat(rng, 192, 192), randMat(rng, 192, 192)
	out := New(192, 192)
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MatMulInto(out, x, y)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			naiveMatMul(x, y)
		}
	})
}
