// Package tensor provides a dense, row-major float64 matrix type and the
// linear-algebra kernels the rest of the system is built on.
//
// The package is deliberately small: everything Pythagoras needs — matrix
// products, broadcasts, reductions, row gather/scatter — and nothing else.
// All operations are deterministic and allocation behaviour is explicit:
// functions ending in InPlace mutate their receiver, functions ending in
// Into write into caller-owned storage (the hot-path forms — see matmul.go
// and the autodiff arena that feeds them), and everything else allocates a
// fresh result. A float32 mirror of the storage type lives in f32.go for
// the frozen encoder.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-initialized rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice returns a rows×cols matrix backed by a copy of data.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	m := New(rows, cols)
	copy(m.Data, data)
	return m
}

// FromRows returns a matrix whose i-th row is rows[i]. All rows must have
// equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: ragged FromRows: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// RowVector returns a 1×len(v) matrix with a copy of v.
func RowVector(v []float64) *Matrix { return FromSlice(1, len(v), v) }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a slice aliasing row i. Mutating it mutates the matrix.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to 0 and returns m.
func (m *Matrix) Zero() *Matrix {
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// Fill sets every element to v and returns m.
func (m *Matrix) Fill(v float64) *Matrix {
	for i := range m.Data {
		m.Data[i] = v
	}
	return m
}

// SameShape reports whether m and other have identical dimensions.
func (m *Matrix) SameShape(other *Matrix) bool {
	return m.Rows == other.Rows && m.Cols == other.Cols
}

func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Add returns a+b (same shape).
func Add(a, b *Matrix) *Matrix {
	c := a.Clone()
	c.AddInPlace(b)
	return c
}

// AddInPlace computes m += other and returns m.
func (m *Matrix) AddInPlace(other *Matrix) *Matrix {
	if !m.SameShape(other) {
		panic(fmt.Sprintf("tensor: AddInPlace %v += %v", m, other))
	}
	for i, v := range other.Data {
		m.Data[i] += v
	}
	return m
}

// Sub returns a-b (same shape).
func Sub(a, b *Matrix) *Matrix {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: Sub %v - %v", a, b))
	}
	c := a.Clone()
	for i, v := range b.Data {
		c.Data[i] -= v
	}
	return c
}

// AddScaledInPlace computes m += s·other and returns m.
func (m *Matrix) AddScaledInPlace(other *Matrix, s float64) *Matrix {
	if !m.SameShape(other) {
		panic(fmt.Sprintf("tensor: AddScaledInPlace %v += s*%v", m, other))
	}
	for i, v := range other.Data {
		m.Data[i] += s * v
	}
	return m
}

// AddRowBroadcast returns a matrix where row vector v (1×Cols) is added to
// every row of m.
func AddRowBroadcast(m, v *Matrix) *Matrix {
	if v.Rows != 1 || v.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowBroadcast %v + %v", m, v))
	}
	out := m.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j, bv := range v.Data {
			row[j] += bv
		}
	}
	return out
}

// Scale returns s·m.
func (m *Matrix) Scale(s float64) *Matrix {
	c := m.Clone()
	for i := range c.Data {
		c.Data[i] *= s
	}
	return c
}

// ScaleInPlace computes m *= s and returns m.
func (m *Matrix) ScaleInPlace(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Mul returns the elementwise (Hadamard) product a⊙b.
func Mul(a, b *Matrix) *Matrix {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: Mul %v ⊙ %v", a, b))
	}
	c := a.Clone()
	for i, v := range b.Data {
		c.Data[i] *= v
	}
	return c
}

// Apply returns a new matrix with f applied elementwise.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	c := m.Clone()
	for i, v := range c.Data {
		c.Data[i] = f(v)
	}
	return c
}

// GatherRows returns a matrix whose i-th row is m.Row(idx[i]).
func GatherRows(m *Matrix, idx []int) *Matrix {
	out := New(len(idx), m.Cols)
	GatherRowsInto(out, m, idx)
	return out
}

// GatherRowsInto copies m.Row(idx[i]) into row i of out. out must be
// len(idx)×m.Cols.
func GatherRowsInto(out, m *Matrix, idx []int) {
	if out.Rows != len(idx) || out.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: GatherRowsInto out %v want %dx%d", out, len(idx), m.Cols))
	}
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
}

// ScatterAddRows adds each row i of src into dst row idx[i].
func ScatterAddRows(dst, src *Matrix, idx []int) {
	if src.Rows != len(idx) || dst.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: ScatterAddRows dst=%v src=%v idx=%d", dst, src, len(idx)))
	}
	for i, r := range idx {
		drow := dst.Row(r)
		srow := src.Row(i)
		for j, v := range srow {
			drow[j] += v
		}
	}
}

// ScaleRows multiplies row i of m by s[i], returning a new matrix.
func ScaleRows(m *Matrix, s []float64) *Matrix {
	if len(s) != m.Rows {
		panic(fmt.Sprintf("tensor: ScaleRows %v with %d scales", m, len(s)))
	}
	out := m.Clone()
	for i, sv := range s {
		row := out.Row(i)
		for j := range row {
			row[j] *= sv
		}
	}
	return out
}

// SumRows returns a 1×Cols row vector holding the column sums of m.
func SumRows(m *Matrix) *Matrix {
	out := New(1, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// MeanRows returns a 1×Cols row vector holding the column means of m.
func MeanRows(m *Matrix) *Matrix {
	out := SumRows(m)
	if m.Rows > 0 {
		out.ScaleInPlace(1 / float64(m.Rows))
	}
	return out
}

// ConcatRows stacks matrices vertically. All inputs must share Cols.
func ConcatRows(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic(fmt.Sprintf("tensor: ConcatRows col mismatch %d vs %d", m.Cols, cols))
		}
		rows += m.Rows
	}
	out := New(rows, cols)
	at := 0
	for _, m := range ms {
		copy(out.Data[at:at+len(m.Data)], m.Data)
		at += len(m.Data)
	}
	return out
}

// ConcatCols concatenates matrices horizontally. All inputs must share Rows.
func ConcatCols(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		at := 0
		orow := out.Row(i)
		for _, m := range ms {
			copy(orow[at:at+m.Cols], m.Row(i))
			at += m.Cols
		}
	}
	return out
}

// Norm returns the Frobenius norm of m.
func (m *Matrix) Norm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value, or 0 for empty m.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// ArgMaxRow returns the index of the maximum element in row i.
func (m *Matrix) ArgMaxRow(i int) int {
	row := m.Row(i)
	best, bv := 0, math.Inf(-1)
	for j, v := range row {
		if v > bv {
			best, bv = j, v
		}
	}
	return best
}

// Equal reports whether a and b have the same shape and all elements are
// within tol of each other.
func Equal(a, b *Matrix, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or ±Inf.
func (m *Matrix) HasNaN() bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// --- Into-variants of the elementwise ops ---
//
// The allocating forms above stay for cold paths and tests; the forms below
// write into caller-owned (typically arena-recycled) storage and are what
// the autodiff tape and inference engine use steady-state.

func checkSameShape3(op string, out, a, b *Matrix) {
	if !out.SameShape(a) || !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s out=%v a=%v b=%v", op, out, a, b))
	}
}

// CopyInto copies m into out (same shape).
func CopyInto(out, m *Matrix) {
	if !out.SameShape(m) {
		panic(fmt.Sprintf("tensor: CopyInto %v <- %v", out, m))
	}
	copy(out.Data, m.Data)
}

// AddInto computes out = a+b elementwise. out may alias a or b.
func AddInto(out, a, b *Matrix) {
	checkSameShape3("AddInto", out, a, b)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
}

// SubInto computes out = a-b elementwise. out may alias a or b.
func SubInto(out, a, b *Matrix) {
	checkSameShape3("SubInto", out, a, b)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
}

// MulInto computes out = a⊙b elementwise. out may alias a or b.
func MulInto(out, a, b *Matrix) {
	checkSameShape3("MulInto", out, a, b)
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
}

// ScaleInto computes out = s·m. out may alias m.
func ScaleInto(out, m *Matrix, s float64) {
	if !out.SameShape(m) {
		panic(fmt.Sprintf("tensor: ScaleInto %v <- %v", out, m))
	}
	for i, v := range m.Data {
		out.Data[i] = s * v
	}
}

// AddRowBroadcastInto computes out = m with row vector v (1×Cols) added to
// every row. out may alias m.
func AddRowBroadcastInto(out, m, v *Matrix) {
	if v.Rows != 1 || v.Cols != m.Cols || !out.SameShape(m) {
		panic(fmt.Sprintf("tensor: AddRowBroadcastInto out=%v m=%v v=%v", out, m, v))
	}
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for j, bv := range v.Data {
			orow[j] = mrow[j] + bv
		}
	}
}

// ScaleRowsInto multiplies row i of m by s[i], writing into out. out may
// alias m.
func ScaleRowsInto(out, m *Matrix, s []float64) {
	if len(s) != m.Rows || !out.SameShape(m) {
		panic(fmt.Sprintf("tensor: ScaleRowsInto out=%v m=%v scales=%d", out, m, len(s)))
	}
	for i, sv := range s {
		mrow := m.Row(i)
		orow := out.Row(i)
		for j, v := range mrow {
			orow[j] = sv * v
		}
	}
}

// SumRowsInto writes the column sums of m into the 1×Cols vector out.
func SumRowsInto(out, m *Matrix) {
	if out.Rows != 1 || out.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: SumRowsInto out=%v m=%v", out, m))
	}
	out.Zero()
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j] += v
		}
	}
}

// MeanRowsInto writes the column means of m into the 1×Cols vector out.
func MeanRowsInto(out, m *Matrix) {
	SumRowsInto(out, m)
	if m.Rows > 0 {
		out.ScaleInPlace(1 / float64(m.Rows))
	}
}

// ConcatRowsInto stacks matrices vertically into out, which must have the
// summed row count and the shared column count.
func ConcatRowsInto(out *Matrix, ms ...*Matrix) {
	rows := 0
	for _, m := range ms {
		if m.Cols != out.Cols {
			panic(fmt.Sprintf("tensor: ConcatRowsInto col mismatch %d vs %d", m.Cols, out.Cols))
		}
		rows += m.Rows
	}
	if rows != out.Rows {
		panic(fmt.Sprintf("tensor: ConcatRowsInto out has %d rows, want %d", out.Rows, rows))
	}
	at := 0
	for _, m := range ms {
		copy(out.Data[at:at+len(m.Data)], m.Data)
		at += len(m.Data)
	}
}

// ConcatColsInto concatenates matrices horizontally into out, which must
// have the shared row count and the summed column count.
func ConcatColsInto(out *Matrix, ms ...*Matrix) {
	cols := 0
	for _, m := range ms {
		if m.Rows != out.Rows {
			panic(fmt.Sprintf("tensor: ConcatColsInto row mismatch %d vs %d", m.Rows, out.Rows))
		}
		cols += m.Cols
	}
	if cols != out.Cols {
		panic(fmt.Sprintf("tensor: ConcatColsInto out has %d cols, want %d", out.Cols, cols))
	}
	for i := 0; i < out.Rows; i++ {
		at := 0
		orow := out.Row(i)
		for _, m := range ms {
			copy(orow[at:at+m.Cols], m.Row(i))
			at += m.Cols
		}
	}
}
