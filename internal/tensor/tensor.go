// Package tensor provides a dense, row-major float64 matrix type and the
// linear-algebra kernels the rest of the system is built on.
//
// The package is deliberately small: everything Pythagoras needs — matrix
// products, broadcasts, reductions, row gather/scatter — and nothing else.
// All operations are deterministic and allocation behaviour is explicit:
// functions ending in InPlace mutate their receiver, everything else
// allocates a fresh result.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-initialized rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice returns a rows×cols matrix backed by a copy of data.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	m := New(rows, cols)
	copy(m.Data, data)
	return m
}

// FromRows returns a matrix whose i-th row is rows[i]. All rows must have
// equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: ragged FromRows: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// RowVector returns a 1×len(v) matrix with a copy of v.
func RowVector(v []float64) *Matrix { return FromSlice(1, len(v), v) }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a slice aliasing row i. Mutating it mutates the matrix.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to 0 and returns m.
func (m *Matrix) Zero() *Matrix {
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// Fill sets every element to v and returns m.
func (m *Matrix) Fill(v float64) *Matrix {
	for i := range m.Data {
		m.Data[i] = v
	}
	return m
}

// SameShape reports whether m and other have identical dimensions.
func (m *Matrix) SameShape(other *Matrix) bool {
	return m.Rows == other.Rows && m.Cols == other.Cols
}

func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// MatMul returns a×b. Panics if inner dimensions disagree.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols) // fresh allocations are already zero
	matMulDispatch(out, a, b)
	return out
}

// parallelThreshold is the flop count above which MatMulInto fans out
// across CPU cores.
const parallelThreshold = 1 << 20

// MatMulInto computes out = a×b. out must be a.Rows×b.Cols and must not
// alias a or b. Large products are computed in parallel across row blocks.
func MatMulInto(out, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto out %dx%d want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	out.Zero()
	matMulDispatch(out, a, b)
}

// matMulDispatch accumulates a×b into out (which must be zero) either
// serially or across row blocks when the product is large.
func matMulDispatch(out, a, b *Matrix) {
	flops := a.Rows * a.Cols * b.Cols
	workers := 1
	if flops > parallelThreshold {
		workers = runtime.NumCPU()
		if workers > a.Rows {
			workers = a.Rows
		}
	}
	if workers <= 1 {
		matMulRows(out, a, b, 0, a.Rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRows(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRows computes out rows [lo, hi) with the cache-friendly ikj order.
// The inner loop is unrolled 4-wide; element updates are independent, so the
// result is bit-identical to the straight loop.
func matMulRows(out, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			brow = brow[:len(orow)] // bounds-check elimination hint
			j := 0
			for ; j+4 <= len(orow); j += 4 {
				orow[j] += av * brow[j]
				orow[j+1] += av * brow[j+1]
				orow[j+2] += av * brow[j+2]
				orow[j+3] += av * brow[j+3]
			}
			for ; j < len(orow); j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTransposeB returns a×bᵀ.
func MatMulTransposeB(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransposeB %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// MatMulTransposeA returns aᵀ×b.
func MatMulTransposeA(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransposeA (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	for r := 0; r < a.Rows; r++ {
		arow := a.Data[r*a.Cols : (r+1)*a.Cols]
		brow := b.Data[r*b.Cols : (r+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Add returns a+b (same shape).
func Add(a, b *Matrix) *Matrix {
	c := a.Clone()
	c.AddInPlace(b)
	return c
}

// AddInPlace computes m += other and returns m.
func (m *Matrix) AddInPlace(other *Matrix) *Matrix {
	if !m.SameShape(other) {
		panic(fmt.Sprintf("tensor: AddInPlace %v += %v", m, other))
	}
	for i, v := range other.Data {
		m.Data[i] += v
	}
	return m
}

// Sub returns a-b (same shape).
func Sub(a, b *Matrix) *Matrix {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: Sub %v - %v", a, b))
	}
	c := a.Clone()
	for i, v := range b.Data {
		c.Data[i] -= v
	}
	return c
}

// AddScaledInPlace computes m += s·other and returns m.
func (m *Matrix) AddScaledInPlace(other *Matrix, s float64) *Matrix {
	if !m.SameShape(other) {
		panic(fmt.Sprintf("tensor: AddScaledInPlace %v += s*%v", m, other))
	}
	for i, v := range other.Data {
		m.Data[i] += s * v
	}
	return m
}

// AddRowBroadcast returns a matrix where row vector v (1×Cols) is added to
// every row of m.
func AddRowBroadcast(m, v *Matrix) *Matrix {
	if v.Rows != 1 || v.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowBroadcast %v + %v", m, v))
	}
	out := m.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j, bv := range v.Data {
			row[j] += bv
		}
	}
	return out
}

// Scale returns s·m.
func (m *Matrix) Scale(s float64) *Matrix {
	c := m.Clone()
	for i := range c.Data {
		c.Data[i] *= s
	}
	return c
}

// ScaleInPlace computes m *= s and returns m.
func (m *Matrix) ScaleInPlace(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Mul returns the elementwise (Hadamard) product a⊙b.
func Mul(a, b *Matrix) *Matrix {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: Mul %v ⊙ %v", a, b))
	}
	c := a.Clone()
	for i, v := range b.Data {
		c.Data[i] *= v
	}
	return c
}

// Apply returns a new matrix with f applied elementwise.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	c := m.Clone()
	for i, v := range c.Data {
		c.Data[i] = f(v)
	}
	return c
}

// GatherRows returns a matrix whose i-th row is m.Row(idx[i]).
func GatherRows(m *Matrix, idx []int) *Matrix {
	out := New(len(idx), m.Cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// ScatterAddRows adds each row i of src into dst row idx[i].
func ScatterAddRows(dst, src *Matrix, idx []int) {
	if src.Rows != len(idx) || dst.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: ScatterAddRows dst=%v src=%v idx=%d", dst, src, len(idx)))
	}
	for i, r := range idx {
		drow := dst.Row(r)
		srow := src.Row(i)
		for j, v := range srow {
			drow[j] += v
		}
	}
}

// ScaleRows multiplies row i of m by s[i], returning a new matrix.
func ScaleRows(m *Matrix, s []float64) *Matrix {
	if len(s) != m.Rows {
		panic(fmt.Sprintf("tensor: ScaleRows %v with %d scales", m, len(s)))
	}
	out := m.Clone()
	for i, sv := range s {
		row := out.Row(i)
		for j := range row {
			row[j] *= sv
		}
	}
	return out
}

// SumRows returns a 1×Cols row vector holding the column sums of m.
func SumRows(m *Matrix) *Matrix {
	out := New(1, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// MeanRows returns a 1×Cols row vector holding the column means of m.
func MeanRows(m *Matrix) *Matrix {
	out := SumRows(m)
	if m.Rows > 0 {
		out.ScaleInPlace(1 / float64(m.Rows))
	}
	return out
}

// ConcatRows stacks matrices vertically. All inputs must share Cols.
func ConcatRows(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic(fmt.Sprintf("tensor: ConcatRows col mismatch %d vs %d", m.Cols, cols))
		}
		rows += m.Rows
	}
	out := New(rows, cols)
	at := 0
	for _, m := range ms {
		copy(out.Data[at:at+len(m.Data)], m.Data)
		at += len(m.Data)
	}
	return out
}

// ConcatCols concatenates matrices horizontally. All inputs must share Rows.
func ConcatCols(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		at := 0
		orow := out.Row(i)
		for _, m := range ms {
			copy(orow[at:at+m.Cols], m.Row(i))
			at += m.Cols
		}
	}
	return out
}

// Norm returns the Frobenius norm of m.
func (m *Matrix) Norm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value, or 0 for empty m.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// ArgMaxRow returns the index of the maximum element in row i.
func (m *Matrix) ArgMaxRow(i int) int {
	row := m.Row(i)
	best, bv := 0, math.Inf(-1)
	for j, v := range row {
		if v > bv {
			best, bv = j, v
		}
	}
	return best
}

// Equal reports whether a and b have the same shape and all elements are
// within tol of each other.
func Equal(a, b *Matrix, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or ±Inf.
func (m *Matrix) HasNaN() bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
