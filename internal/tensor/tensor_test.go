package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %v with %d data", m, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New must zero-initialize")
		}
	}
}

func TestFromSliceAndAt(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("At wrong: %v", m.Data)
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("Set/At roundtrip failed")
	}
}

func TestFromSlicePanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("FromRows wrong: %v %v", m, m.Data)
	}
	if got := FromRows(nil); got.Rows != 0 {
		t.Fatal("FromRows(nil) should be empty")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowAliases(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 99 {
		t.Fatal("Row must alias underlying data")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 42
	if m.Data[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !Equal(c, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", c.Data, want.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	if !Equal(MatMul(a, id), a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !Equal(MatMul(id, a), a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulTransposeBMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := New(3, 5), New(4, 5)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	got := MatMulTransposeB(a, b)
	want := MatMul(a, b.Transpose())
	if !Equal(got, want, 1e-10) {
		t.Fatal("MatMulTransposeB mismatch vs explicit transpose")
	}
}

func TestMatMulTransposeAMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := New(5, 3), New(5, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	got := MatMulTransposeA(a, b)
	want := MatMul(a.Transpose(), b)
	if !Equal(got, want, 1e-10) {
		t.Fatal("MatMulTransposeA mismatch vs explicit transpose")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(6), 1+rng.Intn(6)
		m := New(rows, cols)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		return Equal(m.Transpose().Transpose(), m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := New(3, 3), New(3, 3)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
			b.Data[i] = rng.NormFloat64()
		}
		return Equal(Sub(Add(a, b), b), a, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddRowBroadcast(t *testing.T) {
	m := FromSlice(2, 3, []float64{0, 0, 0, 1, 1, 1})
	v := RowVector([]float64{10, 20, 30})
	got := AddRowBroadcast(m, v)
	want := FromSlice(2, 3, []float64{10, 20, 30, 11, 21, 31})
	if !Equal(got, want, 0) {
		t.Fatalf("AddRowBroadcast = %v", got.Data)
	}
}

func TestScaleAndMul(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, -2, 3})
	if got := m.Scale(2); !Equal(got, FromSlice(1, 3, []float64{2, -4, 6}), 0) {
		t.Fatalf("Scale = %v", got.Data)
	}
	b := FromSlice(1, 3, []float64{2, 3, -1})
	if got := Mul(m, b); !Equal(got, FromSlice(1, 3, []float64{2, -6, -3}), 0) {
		t.Fatalf("Mul = %v", got.Data)
	}
}

func TestAddScaledInPlace(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	m.AddScaledInPlace(FromSlice(1, 2, []float64{10, 10}), 0.5)
	if !Equal(m, FromSlice(1, 2, []float64{6, 7}), 0) {
		t.Fatalf("AddScaledInPlace = %v", m.Data)
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	m := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	idx := []int{2, 0, 2}
	g := GatherRows(m, idx)
	want := FromSlice(3, 2, []float64{5, 6, 1, 2, 5, 6})
	if !Equal(g, want, 0) {
		t.Fatalf("GatherRows = %v", g.Data)
	}
	dst := New(3, 2)
	ScatterAddRows(dst, g, idx)
	// Row 2 receives itself twice, row 0 once.
	wantDst := FromSlice(3, 2, []float64{1, 2, 0, 0, 10, 12})
	if !Equal(dst, wantDst, 0) {
		t.Fatalf("ScatterAddRows = %v", dst.Data)
	}
}

func TestScaleRows(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 1, 2, 2})
	got := ScaleRows(m, []float64{2, 0.5})
	if !Equal(got, FromSlice(2, 2, []float64{2, 2, 1, 1}), 0) {
		t.Fatalf("ScaleRows = %v", got.Data)
	}
}

func TestSumMeanRows(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 3, 4, 5})
	if got := SumRows(m); !Equal(got, RowVector([]float64{4, 6, 8}), 0) {
		t.Fatalf("SumRows = %v", got.Data)
	}
	if got := MeanRows(m); !Equal(got, RowVector([]float64{2, 3, 4}), 0) {
		t.Fatalf("MeanRows = %v", got.Data)
	}
}

func TestConcatRowsCols(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := FromSlice(2, 2, []float64{3, 4, 5, 6})
	v := ConcatRows(a, b)
	if v.Rows != 3 || v.At(2, 1) != 6 {
		t.Fatalf("ConcatRows = %v %v", v, v.Data)
	}
	c := FromSlice(1, 1, []float64{9})
	h := ConcatCols(a, c)
	if h.Cols != 3 || h.At(0, 2) != 9 {
		t.Fatalf("ConcatCols = %v %v", h, h.Data)
	}
}

func TestNormAndMaxAbs(t *testing.T) {
	m := FromSlice(1, 2, []float64{3, -4})
	if n := m.Norm(); math.Abs(n-5) > 1e-12 {
		t.Fatalf("Norm = %v", n)
	}
	if a := m.MaxAbs(); a != 4 {
		t.Fatalf("MaxAbs = %v", a)
	}
}

func TestArgMaxRow(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 5, 2, -1, -3, -2})
	if got := m.ArgMaxRow(0); got != 1 {
		t.Fatalf("ArgMaxRow(0) = %d", got)
	}
	if got := m.ArgMaxRow(1); got != 0 {
		t.Fatalf("ArgMaxRow(1) = %d", got)
	}
}

func TestHasNaN(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	if m.HasNaN() {
		t.Fatal("clean matrix reported NaN")
	}
	m.Data[1] = math.NaN()
	if !m.HasNaN() {
		t.Fatal("NaN not detected")
	}
	m.Data[1] = math.Inf(1)
	if !m.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := New(2, 3), New(3, 4), New(4, 2)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		for i := range c.Data {
			c.Data[i] = rng.NormFloat64()
		}
		return Equal(MatMul(MatMul(a, b), c), MatMul(a, MatMul(b, c)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestApply(t *testing.T) {
	m := FromSlice(1, 3, []float64{-1, 0, 2})
	got := m.Apply(func(v float64) float64 {
		if v < 0 {
			return 0
		}
		return v
	})
	if !Equal(got, FromSlice(1, 3, []float64{0, 0, 2}), 0) {
		t.Fatalf("Apply = %v", got.Data)
	}
	if m.Data[0] != -1 {
		t.Fatal("Apply must not mutate receiver")
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := New(128, 128)
	y := New(128, 128)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
		y.Data[i] = rng.NormFloat64()
	}
	out := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, y)
	}
}
