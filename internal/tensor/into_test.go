package tensor

import (
	"math/rand"
	"testing"
)

// The Into forms must agree with their allocating counterparts exactly —
// same loops, different storage — including when out aliases an input.
func TestElementwiseIntoMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a, b := randMat(rng, 5, 7), randMat(rng, 5, 7)
	out := New(5, 7)

	CopyInto(out, a)
	bitEqual(t, "CopyInto", out, a.Clone())

	AddInto(out, a, b)
	bitEqual(t, "AddInto", out, Add(a, b))

	SubInto(out, a, b)
	bitEqual(t, "SubInto", out, Sub(a, b))

	MulInto(out, a, b)
	bitEqual(t, "MulInto", out, Mul(a, b))

	ScaleInto(out, a, -2.5)
	bitEqual(t, "ScaleInto", out, a.Scale(-2.5))

	v := randMat(rng, 1, 7)
	AddRowBroadcastInto(out, a, v)
	bitEqual(t, "AddRowBroadcastInto", out, AddRowBroadcast(a, v))

	s := []float64{2, -1, 0.5, 0, 3}
	ScaleRowsInto(out, a, s)
	bitEqual(t, "ScaleRowsInto", out, ScaleRows(a, s))

	// Aliased: out == a must still be correct for the may-alias forms.
	aliased := a.Clone()
	AddInto(aliased, aliased, b)
	bitEqual(t, "AddInto aliased", aliased, Add(a, b))
	aliased = a.Clone()
	ScaleInto(aliased, aliased, 4)
	bitEqual(t, "ScaleInto aliased", aliased, a.Scale(4))
}

func TestReductionAndConcatInto(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	m := randMat(rng, 6, 4)
	row := New(1, 4)

	SumRowsInto(row, m)
	bitEqual(t, "SumRowsInto", row, SumRows(m))
	// SumRowsInto zeroes out first — a dirty out must not leak in.
	row.Fill(99)
	SumRowsInto(row, m)
	bitEqual(t, "SumRowsInto dirty", row, SumRows(m))

	MeanRowsInto(row, m)
	bitEqual(t, "MeanRowsInto", row, MeanRows(m))

	a, b := randMat(rng, 2, 4), randMat(rng, 3, 4)
	vcat := New(5, 4)
	ConcatRowsInto(vcat, a, b)
	bitEqual(t, "ConcatRowsInto", vcat, ConcatRows(a, b))

	c, d := randMat(rng, 3, 2), randMat(rng, 3, 5)
	hcat := New(3, 7)
	ConcatColsInto(hcat, c, d)
	bitEqual(t, "ConcatColsInto", hcat, ConcatCols(c, d))

	idx := []int{4, 0, 2}
	gathered := New(3, 4)
	GatherRowsInto(gathered, m, idx)
	bitEqual(t, "GatherRowsInto", gathered, GatherRows(m, idx))
}

func TestIntoShapeMismatchPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"CopyInto", func() { CopyInto(New(2, 2), New(2, 3)) }},
		{"AddInto", func() { AddInto(New(2, 2), New(2, 2), New(2, 3)) }},
		{"SubInto", func() { SubInto(New(2, 3), New(2, 2), New(2, 2)) }},
		{"MulInto", func() { MulInto(New(2, 2), New(3, 2), New(2, 2)) }},
		{"ScaleInto", func() { ScaleInto(New(2, 2), New(2, 3), 2) }},
		{"AddRowBroadcastInto", func() { AddRowBroadcastInto(New(2, 3), New(2, 3), New(1, 2)) }},
		{"ScaleRowsInto", func() { ScaleRowsInto(New(2, 3), New(2, 3), []float64{1}) }},
		{"SumRowsInto", func() { SumRowsInto(New(1, 2), New(4, 3)) }},
		{"ConcatRowsInto rows", func() { ConcatRowsInto(New(3, 2), New(2, 2), New(2, 2)) }},
		{"ConcatRowsInto cols", func() { ConcatRowsInto(New(4, 2), New(2, 2), New(2, 3)) }},
		{"ConcatColsInto cols", func() { ConcatColsInto(New(2, 3), New(2, 2), New(2, 2)) }},
		{"ConcatColsInto rows", func() { ConcatColsInto(New(2, 4), New(2, 2), New(3, 2)) }},
		{"GatherRowsInto", func() { GatherRowsInto(New(2, 3), New(4, 3), []int{0}) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected shape panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestF32Accessors(t *testing.T) {
	m := NewF32(2, 3)
	m.Set(1, 2, 4.5)
	if m.At(1, 2) != 4.5 {
		t.Fatalf("At(1,2) = %v", m.At(1, 2))
	}
	row := m.Row(1)
	row[0] = -1 // Row aliases storage
	if m.At(1, 0) != -1 {
		t.Fatal("Row must alias the matrix")
	}
	if got := m.String(); got != "F32(2x3)" {
		t.Fatalf("String = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative shape must panic")
		}
	}()
	NewF32(-1, 2)
}

func TestWidenNarrowShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"WidenInto":  func() { WidenInto(New(2, 2), NewF32(2, 3)) },
		"NarrowInto": func() { NarrowInto(NewF32(3, 2), New(2, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected shape panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMatrixStringAndFill(t *testing.T) {
	m := New(3, 4)
	m.Fill(2.5)
	for _, v := range m.Data {
		if v != 2.5 {
			t.Fatal("Fill missed an element")
		}
	}
	if got := m.String(); got == "" {
		t.Fatal("String must describe the matrix")
	}
}
