package tensor

import "fmt"

// F32 is a dense row-major matrix of float32 values — the storage type of
// the frozen LM encoder, whose weights are never trained and therefore
// never need float64 gradient precision. Halving the element size halves
// the encoder's cache footprint, which is where the frozen-encode stage
// spends its cycles. float32 arithmetic is just as deterministic as
// float64: the same inputs produce the same bits on every run and every
// worker count. Values are widened to float64 only at the tape boundary
// (see core.Model.Encode).
type F32 struct {
	Rows, Cols int
	Data       []float32
}

// NewF32 returns a zero-initialized rows×cols float32 matrix.
func NewF32(rows, cols int) *F32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &F32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns a slice aliasing row i. Mutating it mutates the matrix.
func (m *F32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// At returns the element at (i, j).
func (m *F32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set stores v at (i, j).
func (m *F32) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

func (m *F32) String() string {
	return fmt.Sprintf("F32(%dx%d)", m.Rows, m.Cols)
}

// MatMulF32Into computes out = a×b over float32 storage with the same j/k
// blocking and fixed ascending-k accumulation order as the float64 kernel.
// Serial on purpose: the encoder parallelizes across texts (one goroutine
// per column), not inside one product.
func MatMulF32Into(out, a, b *F32) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulF32 %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulF32Into out %dx%d want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	for i := range out.Data {
		out.Data[i] = 0
	}
	ac, bc := a.Cols, b.Cols
	for jb := 0; jb < bc; jb += blockJ {
		je := jb + blockJ
		if je > bc {
			je = bc
		}
		for kb := 0; kb < ac; kb += blockK {
			ke := kb + blockK
			if ke > ac {
				ke = ac
			}
			for i := 0; i < a.Rows; i++ {
				arow := a.Data[i*ac+kb : i*ac+ke]
				orow := out.Data[i*bc+jb : i*bc+je]
				for kk, av := range arow {
					if av == 0 {
						continue
					}
					brow := b.Data[(kb+kk)*bc+jb : (kb+kk)*bc+je]
					brow = brow[:len(orow)]
					j := 0
					for ; j+4 <= len(orow); j += 4 {
						orow[j] += av * brow[j]
						orow[j+1] += av * brow[j+1]
						orow[j+2] += av * brow[j+2]
						orow[j+3] += av * brow[j+3]
					}
					for ; j < len(orow); j++ {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// WidenInto copies the float32 matrix src into the float64 matrix dst —
// the one sanctioned float32→float64 crossing, used where frozen-encoder
// output enters the training tape.
func WidenInto(dst *Matrix, src *F32) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: WidenInto %v <- %v", dst, src))
	}
	for i, v := range src.Data {
		dst.Data[i] = float64(v)
	}
}

// Widen returns a freshly allocated float64 copy of m.
func (m *F32) Widen() *Matrix {
	out := New(m.Rows, m.Cols)
	WidenInto(out, m)
	return out
}

// NarrowInto copies the float64 matrix src into the float32 matrix dst,
// rounding each element to nearest-even — used when deterministic float64
// initialization routines feed float32 storage.
func NarrowInto(dst *F32, src *Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: NarrowInto %v <- %v", dst, src))
	}
	for i, v := range src.Data {
		dst.Data[i] = float32(v)
	}
}
