package faultinject

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilSetIsNoOp(t *testing.T) {
	var s *Set
	if err := s.Fire(context.Background(), InferForward); err != nil {
		t.Fatalf("nil set fired: %v", err)
	}
	if s.Fired(InferForward) != 0 {
		t.Fatal("nil set counted a fire")
	}
	if s.On(InferForward, Err(errors.New("x"))) != nil {
		t.Fatal("On on nil set must stay nil")
	}
}

func TestFireRunsActionsInOrderAndStopsAtError(t *testing.T) {
	boom := errors.New("boom")
	var order []string
	s := New().
		On(InferUnion, func(context.Context) error { order = append(order, "a"); return nil }).
		On(InferUnion, func(context.Context) error { order = append(order, "b"); return boom }).
		On(InferUnion, func(context.Context) error { order = append(order, "c"); return nil })
	if err := s.Fire(context.Background(), InferUnion); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
	if s.Fired(InferUnion) != 1 {
		t.Fatalf("fired = %d", s.Fired(InferUnion))
	}
	// Unarmed points do not count.
	if err := s.Fire(context.Background(), InferPrepare); err != nil {
		t.Fatal(err)
	}
	if s.Fired(InferPrepare) != 0 {
		t.Fatal("unarmed point counted a fire")
	}
}

func TestSleepRespectsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	err := Sleep(5 * time.Second)(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(t0) > time.Second {
		t.Fatal("cancelled sleep did not return promptly")
	}
}

func TestSleepElapsesWithoutError(t *testing.T) {
	if err := Sleep(time.Millisecond)(context.Background()); err != nil {
		t.Fatalf("completed sleep errored: %v", err)
	}
}

func TestAfterAndTimes(t *testing.T) {
	boom := errors.New("boom")
	a := After(2, Err(boom))
	for i := 0; i < 2; i++ {
		if err := a(context.Background()); err != nil {
			t.Fatalf("call %d fired early: %v", i, err)
		}
	}
	if err := a(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("third call = %v", err)
	}

	b := Times(1, Err(boom))
	if err := b(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("first call = %v", err)
	}
	if err := b(context.Background()); err != nil {
		t.Fatalf("second call = %v", err)
	}
}

func TestCancelActionCancelsAndErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	a := Cancel(cancel)
	if err := a(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ctx.Err() == nil {
		t.Fatal("context not cancelled")
	}
	// A cancel targeting a different context still reports Canceled.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	other, cancelOther := context.WithCancel(context.Background())
	defer cancelOther()
	if err := Cancel(cancelOther)(ctx2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cross-context cancel = %v", err)
	}
	if other.Err() == nil {
		t.Fatal("target context not cancelled")
	}
}

func TestConcurrentRegisterAndFire(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if w%2 == 0 {
					s.On(InferForward, func(context.Context) error { return nil })
				} else {
					_ = s.Fire(context.Background(), InferForward)
					_ = s.Fired(InferForward)
				}
			}
		}(w)
	}
	wg.Wait()
}
