// Package faultinject is the deterministic fault-injection substrate behind
// the chaos test suite (DESIGN.md §9): named injection points inside the
// serving path (the inference engine's stages, the server's admission path)
// fire registered actions — artificial latency, forced errors, mid-flight
// context cancellation — so tests can reproduce, on demand and without
// sleeps-and-hope timing, the production failure modes the stack must
// survive: slow chunks under a deadline, clients vanishing mid-batch,
// bursts over capacity, shutdown while busy.
//
// The package is wired into production code but costs nothing there: every
// method is nil-safe, and a nil *Set (the default — nothing ever registers
// one outside tests) makes Fire a single branch. Actions are plain
// functions, composed with the After/Times helpers for "fail only the Nth
// call" determinism, and latency injection (Sleep) is context-aware so
// cancellation cuts an injected delay short exactly like it would a real
// slow stage.
package faultinject

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Point names an injection site. Sites are compiled into the serving path;
// the constants below are the ones the engine and server fire today.
type Point string

// Injection points wired into internal/infer and internal/server.
const (
	// InferPrepare fires once per table at the start of the prepare stage.
	InferPrepare Point = "infer.prepare"
	// InferUnion fires once per chunk, before the graph union.
	InferUnion Point = "infer.union"
	// InferForward fires once per chunk, before the gradient-free forward.
	InferForward Point = "infer.forward"
	// InferDecode fires once per chunk, before predictions are decoded.
	InferDecode Point = "infer.decode"
	// ServerHandle fires once per admitted HTTP request, before the mux.
	ServerHandle Point = "server.handle"
	// ServerModelLoad fires inside POST /v1/models, after the request is
	// validated and before the checkpoint is read — an injected error is a
	// deterministic stand-in for a corrupt or vanished checkpoint file.
	ServerModelLoad Point = "server.model.load"
	// ServerSwap fires inside promote and rollback, after the serving
	// pointer has moved and before the outgoing engine is retired — the
	// window the swap-under-fire chaos suite stretches with injected
	// latency while traffic is in flight.
	ServerSwap Point = "server.swap"
	// ServerShadow fires at the start of every shadow-scoring task, on the
	// shadow goroutine — injected latency or errors there must never be
	// observable on the primary serving path.
	ServerShadow Point = "server.shadow"
	// RescoreBatch fires once per lake re-score batch, before it is scored
	// on the engine — injected latency stretches the window rollback-
	// cancellation tests race against; an injected error models a scoring
	// failure aborting the run.
	RescoreBatch Point = "rescore.batch"
	// RescoreCheckpoint fires before each durable cursor write. An injected
	// error is the deterministic stand-in for a crash between batches: the
	// run dies with the previous checkpoint as the last durable position,
	// which is exactly what a resume must recover from.
	RescoreCheckpoint Point = "rescore.checkpoint"
	// RescoreSwap fires after the scan completes, before the snapshot index
	// flip — the last instant at which a crash leaves the old index
	// serving.
	RescoreSwap Point = "rescore.swap"
	// WatchTick fires at the start of every watchdog evaluation tick, before
	// any rule is read — injected latency models a slow signal read, an
	// injected error skips the tick entirely (rules keep their state).
	WatchTick Point = "watch.tick"
	// WatchCapture fires before a flight record is assembled and written —
	// an injected error is the deterministic stand-in for a full disk or a
	// crash mid-capture; the alert itself must still fire and act.
	WatchCapture Point = "watch.capture"
	// TrainPrepare fires once per table in the trainer's prepare stage.
	TrainPrepare Point = "train.prepare"
	// TrainStep fires once per optimizer step, before the data-parallel
	// forward/backward passes.
	TrainStep Point = "train.step"
	// TrainMerge fires once per optimizer step, after the sub-batch
	// gradients are in and before the fixed-order merge + Adam update.
	TrainMerge Point = "train.merge"
	// TrainVal fires once per epoch, before validation scoring.
	TrainVal Point = "train.val"
)

// Action is one injected behavior. A non-nil error aborts the stage that
// fired it, exactly as a real failure at that point would.
type Action func(ctx context.Context) error

// Set holds the registered actions of one test scenario. The zero value and
// nil are both valid empty sets; Fire on them is a no-op. Registration (On)
// and firing may run concurrently — chaos tests arm new faults while traffic
// is in flight.
type Set struct {
	mu      sync.RWMutex
	actions map[Point][]Action
	counts  sync.Map // Point → *atomic.Uint64, fires per point
}

// New returns an empty fault set.
func New() *Set { return &Set{} }

// On registers an action at a point (several stack in registration order).
// Returns the set for chaining.
func (s *Set) On(p Point, a Action) *Set {
	if s == nil || a == nil {
		return s
	}
	s.mu.Lock()
	if s.actions == nil {
		s.actions = map[Point][]Action{}
	}
	s.actions[p] = append(s.actions[p], a)
	s.mu.Unlock()
	return s
}

// Fire runs the actions registered at p, stopping at the first error. It is
// the call compiled into the serving path: nil-safe, and a single branch
// when no set is attached or nothing is registered at p.
func (s *Set) Fire(ctx context.Context, p Point) error {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	acts := s.actions[p]
	s.mu.RUnlock()
	if len(acts) == 0 {
		return nil
	}
	s.count(p).Add(1)
	for _, a := range acts {
		if err := a(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Fired reports how many times point p fired an armed action.
func (s *Set) Fired(p Point) uint64 {
	if s == nil {
		return 0
	}
	return s.count(p).Load()
}

func (s *Set) count(p Point) *atomic.Uint64 {
	if c, ok := s.counts.Load(p); ok {
		return c.(*atomic.Uint64)
	}
	c, _ := s.counts.LoadOrStore(p, &atomic.Uint64{})
	return c.(*atomic.Uint64)
}

// Sleep injects d of latency, cut short (returning ctx.Err()) if the
// context is cancelled first — an injected delay must behave like a real
// slow stage, which the cancellation plumbing is allowed to abandon.
func Sleep(d time.Duration) Action {
	return func(ctx context.Context) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Err injects a constant failure.
func Err(err error) Action {
	return func(context.Context) error { return err }
}

// Cancel invokes cancel and returns the context's (now set) error — the
// deterministic stand-in for "the client vanished exactly here".
func Cancel(cancel context.CancelFunc) Action {
	return func(ctx context.Context) error {
		cancel()
		if err := ctx.Err(); err != nil {
			return err
		}
		// The cancelled context is not the one threaded here (test wired a
		// different one); the stage still observes a cancellation error.
		return context.Canceled
	}
}

// After gates a — the first n calls are no-ops, every later call fires it.
// Deterministically targets "the Nth chunk" style scenarios.
func After(n uint64, a Action) Action {
	var calls atomic.Uint64
	return func(ctx context.Context) error {
		if calls.Add(1) <= n {
			return nil
		}
		return a(ctx)
	}
}

// Times limits a to its first n calls; later calls are no-ops.
func Times(n uint64, a Action) Action {
	var calls atomic.Uint64
	return func(ctx context.Context) error {
		if calls.Add(1) > n {
			return nil
		}
		return a(ctx)
	}
}
