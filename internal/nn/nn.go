// Package nn builds neural-network training machinery on top of the
// autodiff tape: named parameter collections, initializers, dense layers,
// optimizers (Adam, SGD), learning-rate schedules, gradient clipping, early
// stopping, and gob-based persistence.
package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"

	"github.com/sematype/pythagoras/internal/autodiff"
	"github.com/sematype/pythagoras/internal/tensor"
)

// Params is a named collection of trainable matrices. Names are stable keys
// used by optimizers (per-parameter state) and persistence.
type Params struct {
	names []string
	byKey map[string]*tensor.Matrix
}

// NewParams returns an empty parameter collection.
func NewParams() *Params {
	return &Params{byKey: make(map[string]*tensor.Matrix)}
}

// Add registers matrix m under name. Panics on duplicates — a duplicate
// almost always means two layers were wired to the same key by mistake.
func (p *Params) Add(name string, m *tensor.Matrix) *tensor.Matrix {
	if _, ok := p.byKey[name]; ok {
		panic(fmt.Sprintf("nn: duplicate parameter %q", name))
	}
	p.byKey[name] = m
	p.names = append(p.names, name)
	return m
}

// Get returns the parameter registered under name, or panics.
func (p *Params) Get(name string) *tensor.Matrix {
	m, ok := p.byKey[name]
	if !ok {
		panic(fmt.Sprintf("nn: unknown parameter %q", name))
	}
	return m
}

// Has reports whether name is registered.
func (p *Params) Has(name string) bool { _, ok := p.byKey[name]; return ok }

// Names returns parameter names in registration order.
func (p *Params) Names() []string { return append([]string(nil), p.names...) }

// Count returns the total number of scalar parameters.
func (p *Params) Count() int {
	n := 0
	for _, m := range p.byKey {
		n += len(m.Data)
	}
	return n
}

// CopyFrom copies values from src for every shared name with matching shape.
// It returns the number of matrices copied.
func (p *Params) CopyFrom(src *Params) int {
	n := 0
	for name, dst := range p.byKey {
		if s, ok := src.byKey[name]; ok && s.SameShape(dst) {
			copy(dst.Data, s.Data)
			n++
		}
	}
	return n
}

// Snapshot returns a deep copy of all parameter values keyed by name.
func (p *Params) Snapshot() map[string][]float64 {
	out := make(map[string][]float64, len(p.byKey))
	for name, m := range p.byKey {
		out[name] = append([]float64(nil), m.Data...)
	}
	return out
}

// Restore copies a snapshot produced by Snapshot back into the parameters.
func (p *Params) Restore(snap map[string][]float64) {
	for name, data := range snap {
		if m, ok := p.byKey[name]; ok && len(m.Data) == len(data) {
			copy(m.Data, data)
		}
	}
}

// savedParam is the gob wire format for one parameter.
type savedParam struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// Save writes all parameters to w in a stable (sorted-name) order.
func (p *Params) Save(w io.Writer) error {
	return p.EncodeGob(gob.NewEncoder(w))
}

// EncodeGob writes the parameters through an existing gob encoder, letting
// callers interleave them with their own metadata on one stream.
func (p *Params) EncodeGob(enc *gob.Encoder) error {
	names := p.Names()
	sort.Strings(names)
	out := make([]savedParam, 0, len(names))
	for _, n := range names {
		m := p.byKey[n]
		out = append(out, savedParam{Name: n, Rows: m.Rows, Cols: m.Cols, Data: m.Data})
	}
	return enc.Encode(out)
}

// Load reads parameters written by Save into this collection. Every saved
// parameter must exist here with an identical shape.
func (p *Params) Load(r io.Reader) error {
	return p.DecodeGob(gob.NewDecoder(r))
}

// DecodeGob is the streaming counterpart of EncodeGob. A saved parameter
// whose declared shape or data length disagrees with the model is an error,
// never a silent partial copy — a corrupted or truncated checkpoint must be
// rejected, not half-loaded (see core.FuzzModelLoad).
func (p *Params) DecodeGob(dec *gob.Decoder) error {
	var in []savedParam
	if err := dec.Decode(&in); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	loaded := make(map[string]bool, len(in))
	for _, sp := range in {
		m, ok := p.byKey[sp.Name]
		if !ok {
			return fmt.Errorf("nn: saved parameter %q not present in model", sp.Name)
		}
		if loaded[sp.Name] {
			return fmt.Errorf("nn: saved parameter %q appears twice", sp.Name)
		}
		loaded[sp.Name] = true
		if m.Rows != sp.Rows || m.Cols != sp.Cols {
			return fmt.Errorf("nn: parameter %q shape %dx%d, saved %dx%d",
				sp.Name, m.Rows, m.Cols, sp.Rows, sp.Cols)
		}
		if len(sp.Data) != len(m.Data) {
			return fmt.Errorf("nn: parameter %q has %d values, want %d",
				sp.Name, len(sp.Data), len(m.Data))
		}
		copy(m.Data, sp.Data)
	}
	if len(loaded) != len(p.byKey) {
		return fmt.Errorf("nn: checkpoint holds %d of %d model parameters", len(loaded), len(p.byKey))
	}
	return nil
}

// SaveFile / LoadFile are Save/Load against a path.
func (p *Params) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return p.Save(f)
}

func (p *Params) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return p.Load(f)
}

// --- initializers ---

// XavierInit fills m with Glorot-uniform values for a fanIn×fanOut layer.
func XavierInit(m *tensor.Matrix, rng *rand.Rand) {
	limit := math.Sqrt(6 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// HeInit fills m with Kaiming-normal values (for ReLU networks).
func HeInit(m *tensor.Matrix, rng *rand.Rand) {
	std := math.Sqrt(2 / float64(m.Rows))
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
}

// --- layers ---

// Linear is a dense affine layer y = x·W + b.
type Linear struct {
	W, B *tensor.Matrix
}

// NewLinear creates a Xavier-initialized in×out layer and registers its
// parameters under prefix+".w" / prefix+".b".
func NewLinear(p *Params, prefix string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{W: tensor.New(in, out), B: tensor.New(1, out)}
	XavierInit(l.W, rng)
	p.Add(prefix+".w", l.W)
	p.Add(prefix+".b", l.B)
	return l
}

// Apply runs the layer on the tape.
func (l *Linear) Apply(t *autodiff.Tape, x *autodiff.Var) *autodiff.Var {
	return t.AddRow(t.MatMul(x, t.Param(l.W)), t.Param(l.B))
}

// MLP is a stack of Linear layers with ReLU between them (none after the
// final layer) and optional dropout on hidden activations.
type MLP struct {
	Layers  []*Linear
	Dropout float64
}

// NewMLP builds an MLP with the given layer widths, e.g. dims = [192, 300,
// 96] gives 192→300→96 with one hidden ReLU.
func NewMLP(p *Params, prefix string, dims []int, dropout float64, rng *rand.Rand) *MLP {
	if len(dims) < 2 {
		panic("nn: MLP needs at least input and output dims")
	}
	m := &MLP{Dropout: dropout}
	for i := 0; i+1 < len(dims); i++ {
		m.Layers = append(m.Layers, NewLinear(p, fmt.Sprintf("%s.l%d", prefix, i), dims[i], dims[i+1], rng))
	}
	return m
}

// Apply runs the MLP on the tape. rng is used for dropout when training.
func (m *MLP) Apply(t *autodiff.Tape, x *autodiff.Var, rng *rand.Rand, training bool) *autodiff.Var {
	h := x
	for i, l := range m.Layers {
		h = l.Apply(t, h)
		if i+1 < len(m.Layers) {
			h = t.ReLU(h)
			h = t.Dropout(h, m.Dropout, rng, training)
		}
	}
	return h
}

// --- gradient bookkeeping ---

// GradSet collects the gradients produced by one backward pass, keyed by
// parameter name. Because autodiff Vars wrap the parameter matrices without
// copying, the model must register each Param Var per step; helpers below
// handle the common pattern.
type GradSet struct {
	vars map[string]*autodiff.Var
}

// NewGradSet returns an empty gradient collection.
func NewGradSet() *GradSet { return &GradSet{vars: make(map[string]*autodiff.Var)} }

// Track records the autodiff Var bound to the named parameter this step.
// A nil GradSet (inference mode) is a no-op passthrough.
func (g *GradSet) Track(name string, v *autodiff.Var) *autodiff.Var {
	if g == nil {
		return v
	}
	g.vars[name] = v
	return v
}

// ParamVar binds a parameter matrix into the tape for one step. With a nil
// GradSet (inference mode) the matrix enters the tape as a constant: no
// gradient buffer is allocated and the backward bookkeeping for every op
// touching it is skipped entirely — the eval-mode contract of the staged
// inference engine (internal/infer).
func ParamVar(t *autodiff.Tape, g *GradSet, name string, m *tensor.Matrix) *autodiff.Var {
	if g == nil {
		return t.Constant(m)
	}
	return g.Track(name, t.Param(m))
}

// Grad returns the gradient for name, or nil if the parameter did not
// participate in this step's graph.
func (g *GradSet) Grad(name string) *tensor.Matrix {
	v, ok := g.vars[name]
	if !ok || v.Grad == nil {
		return nil
	}
	return v.Grad
}

// Names returns the tracked parameter names in sorted order — the fixed
// iteration order every gradient reduction in this package uses, so that
// floating-point accumulation is reproducible run to run.
func (g *GradSet) Names() []string {
	names := make([]string, 0, len(g.vars))
	for n := range g.vars {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ClipByGlobalNorm rescales all tracked gradients so their joint L2 norm is
// at most maxNorm. It returns the pre-clip norm. The sum of squares is
// accumulated in sorted-name order: map-iteration order would make the norm
// (and therefore the clipped parameters) differ by ulps between same-seed
// runs whenever clipping engages.
func (g *GradSet) ClipByGlobalNorm(maxNorm float64) float64 {
	names := g.Names()
	var total float64
	for _, n := range names {
		if v := g.vars[n]; v.Grad != nil {
			for _, x := range v.Grad.Data {
				total += x * x
			}
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		s := maxNorm / norm
		for _, n := range names {
			if v := g.vars[n]; v.Grad != nil {
				v.Grad.ScaleInPlace(s)
			}
		}
	}
	return norm
}

// MergeGradSets sums the gradients of parts into a fresh GradSet holding
// newly allocated matrices; the inputs are left untouched. For every
// parameter name the partial gradients are added in part-index order, so
// the merged result is a pure function of the parts slice — the
// bit-identity cornerstone of the data-parallel trainer: however many
// workers produced the parts, the merge accumulates them in the same fixed
// order. Nil parts (skipped sub-batches) are ignored.
func MergeGradSets(parts []*GradSet) *GradSet {
	out := NewGradSet()
	for _, part := range parts {
		if part == nil {
			continue
		}
		for name, v := range part.vars {
			if v.Grad == nil {
				continue
			}
			acc, ok := out.vars[name]
			if !ok {
				acc = &autodiff.Var{Grad: tensor.New(v.Grad.Rows, v.Grad.Cols)}
				out.vars[name] = acc
			}
			acc.Grad.AddInPlace(v.Grad)
		}
	}
	return out
}

// --- optimizers ---

// Optimizer applies one update step given a parameter collection and the
// step's gradients.
type Optimizer interface {
	Step(p *Params, grads *GradSet)
	// SetLR overrides the base learning rate (used by schedulers).
	SetLR(lr float64)
	LR() float64
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	lr       float64
	Momentum float64
	velocity map[string][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{lr: lr, Momentum: momentum, velocity: make(map[string][]float64)}
}

func (s *SGD) SetLR(lr float64) { s.lr = lr }
func (s *SGD) LR() float64      { return s.lr }

// Step applies v = m·v - lr·g; p += v (or plain p -= lr·g when momentum=0).
func (s *SGD) Step(p *Params, grads *GradSet) {
	for _, name := range p.Names() {
		g := grads.Grad(name)
		if g == nil {
			continue
		}
		w := p.Get(name)
		if s.Momentum == 0 {
			w.AddScaledInPlace(g, -s.lr)
			continue
		}
		v := s.velocity[name]
		if v == nil {
			v = make([]float64, len(w.Data))
			s.velocity[name] = v
		}
		for i := range v {
			v[i] = s.Momentum*v[i] - s.lr*g.Data[i]
			w.Data[i] += v[i]
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba) with bias correction,
// matching the paper's training configuration.
type Adam struct {
	lr, Beta1, Beta2, Eps float64
	WeightDecay           float64 // decoupled (AdamW-style); 0 disables
	t                     int
	m, v                  map[string][]float64
}

// NewAdam returns an Adam optimizer with standard betas (0.9, 0.999).
func NewAdam(lr float64) *Adam {
	return &Adam{
		lr: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[string][]float64), v: make(map[string][]float64),
	}
}

func (a *Adam) SetLR(lr float64) { a.lr = lr }
func (a *Adam) LR() float64      { return a.lr }

// Step applies one Adam update to every parameter that has a gradient.
func (a *Adam) Step(p *Params, grads *GradSet) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, name := range p.Names() {
		g := grads.Grad(name)
		if g == nil {
			continue
		}
		w := p.Get(name)
		m := a.m[name]
		v := a.v[name]
		if m == nil {
			m = make([]float64, len(w.Data))
			v = make([]float64, len(w.Data))
			a.m[name] = m
			a.v[name] = v
		}
		for i, gi := range g.Data {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
			mhat := m[i] / c1
			vhat := v[i] / c2
			w.Data[i] -= a.lr * (mhat/(math.Sqrt(vhat)+a.Eps) + a.WeightDecay*w.Data[i])
		}
	}
}

// --- schedules ---

// LinearDecay returns the learning rate for the given step out of total,
// decaying linearly from base to 0 with no warm-up (paper §4.2).
func LinearDecay(base float64, step, total int) float64 {
	if total <= 0 {
		return base
	}
	f := 1 - float64(step)/float64(total)
	if f < 0 {
		f = 0
	}
	return base * f
}

// --- early stopping ---

// EarlyStopper tracks a validation metric (higher is better) and signals
// when patience epochs pass without improvement. It keeps the snapshot of
// the best parameters seen, mirroring the paper's "load the checkpoint with
// the highest validation F1" protocol.
type EarlyStopper struct {
	Patience  int
	best      float64
	bestEpoch int
	snapshot  map[string][]float64
	seen      int
	nans      int
}

// NewEarlyStopper returns a stopper with the given patience (epochs).
func NewEarlyStopper(patience int) *EarlyStopper {
	return &EarlyStopper{Patience: patience, best: math.Inf(-1), bestEpoch: -1}
}

// Observe records the metric for an epoch. It returns true when training
// should stop.
//
// A NaN metric — a poisoned validation pass — is handled explicitly: it is
// never an improvement (the implicit `NaN > best` comparison is always
// false, which used to make this an accident rather than a decision), it
// never snapshots, and it counts against patience like any non-improving
// epoch. Callers should check RestoreBest/HasSnapshot afterwards: a run
// whose metric was never finite has no snapshot to restore.
func (e *EarlyStopper) Observe(epoch int, metric float64, p *Params) bool {
	e.seen++
	if math.IsNaN(metric) {
		e.nans++
		return epoch-e.bestEpoch >= e.Patience
	}
	if metric > e.best {
		e.best = metric
		e.bestEpoch = epoch
		e.snapshot = p.Snapshot()
		return false
	}
	return epoch-e.bestEpoch >= e.Patience
}

// Best returns the best metric value and the epoch it occurred at
// (-Inf, -1 when no finite metric was ever observed).
func (e *EarlyStopper) Best() (float64, int) { return e.best, e.bestEpoch }

// HasSnapshot reports whether any epoch produced a best-parameter snapshot.
func (e *EarlyStopper) HasSnapshot() bool { return e.snapshot != nil }

// NaNsSeen returns how many observed epochs carried a NaN metric.
func (e *EarlyStopper) NaNsSeen() int { return e.nans }

// RestoreBest loads the best snapshot back into p. It reports whether a
// snapshot existed; callers that log should warn on false — silently
// keeping the final-epoch parameters defeats the checkpoint protocol.
func (e *EarlyStopper) RestoreBest(p *Params) bool {
	if e.snapshot == nil {
		return false
	}
	p.Restore(e.snapshot)
	return true
}
