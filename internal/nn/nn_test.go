package nn

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/sematype/pythagoras/internal/autodiff"
	"github.com/sematype/pythagoras/internal/tensor"
)

func TestParamsAddGet(t *testing.T) {
	p := NewParams()
	m := tensor.New(2, 3)
	p.Add("a", m)
	if p.Get("a") != m {
		t.Fatal("Get must return the registered matrix")
	}
	if !p.Has("a") || p.Has("b") {
		t.Fatal("Has wrong")
	}
	if p.Count() != 6 {
		t.Fatalf("Count = %d", p.Count())
	}
}

func TestParamsDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := NewParams()
	p.Add("a", tensor.New(1, 1))
	p.Add("a", tensor.New(1, 1))
}

func TestParamsSnapshotRestore(t *testing.T) {
	p := NewParams()
	m := p.Add("w", tensor.FromSlice(1, 2, []float64{1, 2}))
	snap := p.Snapshot()
	m.Data[0] = 99
	p.Restore(snap)
	if m.Data[0] != 1 {
		t.Fatal("Restore failed")
	}
}

func TestParamsSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p1 := NewParams()
	w := p1.Add("layer.w", tensor.New(3, 4))
	XavierInit(w, rng)
	b := p1.Add("layer.b", tensor.FromSlice(1, 4, []float64{1, 2, 3, 4}))

	var buf bytes.Buffer
	if err := p1.Save(&buf); err != nil {
		t.Fatal(err)
	}

	p2 := NewParams()
	p2.Add("layer.w", tensor.New(3, 4))
	p2.Add("layer.b", tensor.New(1, 4))
	if err := p2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(p2.Get("layer.w"), w, 0) || !tensor.Equal(p2.Get("layer.b"), b, 0) {
		t.Fatal("round trip mismatch")
	}
}

func TestParamsLoadShapeMismatch(t *testing.T) {
	p1 := NewParams()
	p1.Add("w", tensor.New(2, 2))
	var buf bytes.Buffer
	if err := p1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p2 := NewParams()
	p2.Add("w", tensor.New(3, 3))
	if err := p2.Load(&buf); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestParamsLoadUnknownName(t *testing.T) {
	p1 := NewParams()
	p1.Add("w", tensor.New(1, 1))
	var buf bytes.Buffer
	if err := p1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p2 := NewParams()
	if err := p2.Load(&buf); err == nil {
		t.Fatal("expected unknown-name error")
	}
}

func TestXavierHeInitRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := tensor.New(100, 100)
	XavierInit(m, rng)
	limit := math.Sqrt(6.0 / 200.0)
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("xavier value %v beyond limit %v", v, limit)
		}
	}
	HeInit(m, rng)
	var s, s2 float64
	for _, v := range m.Data {
		s += v
		s2 += v * v
	}
	n := float64(len(m.Data))
	std := math.Sqrt(s2/n - (s/n)*(s/n))
	want := math.Sqrt(2.0 / 100.0)
	if math.Abs(std-want) > want*0.1 {
		t.Fatalf("He std = %v, want ≈%v", std, want)
	}
}

func TestLinearApplyShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewParams()
	l := NewLinear(p, "fc", 5, 3, rng)
	tape := autodiff.NewTape()
	x := tape.Constant(tensor.New(4, 5))
	y := l.Apply(tape, x)
	if r, c := y.Shape(); r != 4 || c != 3 {
		t.Fatalf("Linear out %dx%d", r, c)
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	// The classic sanity check for the whole stack: a 2-8-2 MLP trained
	// with Adam must solve XOR.
	rng := rand.New(rand.NewSource(4))
	p := NewParams()
	mlp := NewMLP(p, "mlp", []int{2, 8, 2}, 0, rng)
	opt := NewAdam(0.05)
	x := tensor.FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	labels := []int{0, 1, 1, 0}

	var loss float64
	for epoch := 0; epoch < 400; epoch++ {
		tape := autodiff.NewTape()
		grads := NewGradSet()
		// Bind parameters to this step's tape.
		bound := bindMLP(tape, grads, mlp)
		out := applyBound(tape, bound, tape.Constant(x), rng, true)
		l := tape.SoftmaxCrossEntropy(out, labels, nil)
		tape.Backward(l)
		opt.Step(p, grads)
		loss = l.Value.Data[0]
	}
	if loss > 0.05 {
		t.Fatalf("XOR loss after training = %v", loss)
	}
	// verify predictions
	tape := autodiff.NewTape()
	out := mlp.Apply(tape, tape.Constant(x), rng, false)
	for i, want := range labels {
		if got := out.Value.ArgMaxRow(i); got != want {
			t.Fatalf("XOR row %d predicted %d want %d", i, got, want)
		}
	}
}

// bindMLP registers each layer's parameters on the tape and tracks grads.
func bindMLP(tape *autodiff.Tape, grads *GradSet, m *MLP) [][2]*autodiff.Var {
	var bound [][2]*autodiff.Var
	for i, l := range m.Layers {
		w := grads.Track(layerName(i, "w"), tape.Param(l.W))
		b := grads.Track(layerName(i, "b"), tape.Param(l.B))
		bound = append(bound, [2]*autodiff.Var{w, b})
	}
	return bound
}

func layerName(i int, suffix string) string {
	return "mlp.l" + string(rune('0'+i)) + "." + suffix
}

func applyBound(tape *autodiff.Tape, bound [][2]*autodiff.Var, x *autodiff.Var, rng *rand.Rand, training bool) *autodiff.Var {
	h := x
	for i, wb := range bound {
		h = tape.AddRow(tape.MatMul(h, wb[0]), wb[1])
		if i+1 < len(bound) {
			h = tape.ReLU(h)
		}
	}
	return h
}

func TestSGDMatchesManualUpdate(t *testing.T) {
	p := NewParams()
	w := p.Add("w", tensor.FromSlice(1, 2, []float64{1, 2}))
	tape := autodiff.NewTape()
	grads := NewGradSet()
	v := grads.Track("w", tape.Param(w))
	loss := tape.L2Penalty(v, 1) // grad = w
	tape.Backward(loss)
	NewSGD(0.1, 0).Step(p, grads)
	want := tensor.FromSlice(1, 2, []float64{0.9, 1.8})
	if !tensor.Equal(w, want, 1e-12) {
		t.Fatalf("SGD update = %v", w.Data)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := NewParams()
	w := p.Add("w", tensor.FromSlice(1, 1, []float64{0}))
	opt := NewSGD(1, 0.9)
	for i := 0; i < 2; i++ {
		tape := autodiff.NewTape()
		grads := NewGradSet()
		v := grads.Track("w", tape.Param(w))
		// constant gradient of 1 via loss = w
		one := tape.Constant(tensor.FromSlice(1, 1, []float64{1}))
		loss := tape.Mul(v, one)
		tape.Backward(loss)
		opt.Step(p, grads)
	}
	// step1: v=-1, w=-1; step2: v=-1.9, w=-2.9
	if math.Abs(w.Data[0]-(-2.9)) > 1e-12 {
		t.Fatalf("momentum w = %v, want -2.9", w.Data[0])
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// With bias correction, the first Adam step moves each weight by
	// ≈lr·sign(grad) regardless of gradient scale.
	p := NewParams()
	w := p.Add("w", tensor.FromSlice(1, 2, []float64{0, 0}))
	opt := NewAdam(0.01)
	tape := autodiff.NewTape()
	grads := NewGradSet()
	v := grads.Track("w", tape.Param(w))
	c := tape.Constant(tensor.FromSlice(1, 2, []float64{3, -7}))
	loss := tape.SumRows(tape.Mul(v, c)) // 1x2 -> need scalar
	scalar := tape.MatMul(loss, tape.Constant(tensor.FromSlice(2, 1, []float64{1, 1})))
	tape.Backward(scalar)
	opt.Step(p, grads)
	if math.Abs(w.Data[0]+0.01) > 1e-6 || math.Abs(w.Data[1]-0.01) > 1e-6 {
		t.Fatalf("adam first step = %v, want ±0.01", w.Data)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// minimize ||w - target||^2
	target := []float64{3, -2, 0.5}
	p := NewParams()
	w := p.Add("w", tensor.New(1, 3))
	opt := NewAdam(0.05)
	for i := 0; i < 500; i++ {
		tape := autodiff.NewTape()
		grads := NewGradSet()
		v := grads.Track("w", tape.Param(w))
		diff := tape.Add(v, tape.Constant(tensor.FromSlice(1, 3, []float64{-target[0], -target[1], -target[2]})))
		loss := tape.L2Penalty(diff, 2)
		tape.Backward(loss)
		opt.Step(p, grads)
	}
	for i, want := range target {
		if math.Abs(w.Data[i]-want) > 1e-2 {
			t.Fatalf("adam quadratic w[%d] = %v want %v", i, w.Data[i], want)
		}
	}
}

func TestGradSetClipByGlobalNorm(t *testing.T) {
	tape := autodiff.NewTape()
	grads := NewGradSet()
	w := tensor.FromSlice(1, 2, []float64{0, 0})
	v := grads.Track("w", tape.Param(w))
	c := tape.Constant(tensor.FromSlice(1, 2, []float64{3, 4}))
	loss := tape.MatMul(tape.Mul(v, c), tape.Constant(tensor.FromSlice(2, 1, []float64{1, 1})))
	tape.Backward(loss)
	pre := grads.ClipByGlobalNorm(1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v, want 5", pre)
	}
	g := grads.Grad("w")
	if math.Abs(math.Hypot(g.Data[0], g.Data[1])-1) > 1e-9 {
		t.Fatalf("post-clip norm = %v, want 1", math.Hypot(g.Data[0], g.Data[1]))
	}
}

func TestLinearDecaySchedule(t *testing.T) {
	if got := LinearDecay(1, 0, 10); got != 1 {
		t.Fatalf("step0 = %v", got)
	}
	if got := LinearDecay(1, 5, 10); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("step5 = %v", got)
	}
	if got := LinearDecay(1, 20, 10); got != 0 {
		t.Fatalf("beyond total = %v", got)
	}
	if got := LinearDecay(0.3, 0, 0); got != 0.3 {
		t.Fatalf("total=0 should return base, got %v", got)
	}
}

func TestLinearDecayMonotoneProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		s1, s2 := int(a%100), int(b%100)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		return LinearDecay(1, s1, 100) >= LinearDecay(1, s2, 100)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEarlyStopperStopsAndRestores(t *testing.T) {
	p := NewParams()
	w := p.Add("w", tensor.FromSlice(1, 1, []float64{0}))
	es := NewEarlyStopper(2)

	w.Data[0] = 1
	if es.Observe(0, 0.5, p) {
		t.Fatal("should not stop on first epoch")
	}
	w.Data[0] = 2
	if es.Observe(1, 0.8, p) { // improvement
		t.Fatal("should not stop on improvement")
	}
	w.Data[0] = 3
	if es.Observe(2, 0.7, p) {
		t.Fatal("patience 2: first bad epoch should not stop")
	}
	w.Data[0] = 4
	if !es.Observe(3, 0.6, p) {
		t.Fatal("second bad epoch should stop")
	}
	best, epoch := es.Best()
	if best != 0.8 || epoch != 1 {
		t.Fatalf("Best = %v @ %d", best, epoch)
	}
	if !es.RestoreBest(p) || w.Data[0] != 2 {
		t.Fatalf("RestoreBest → w=%v, want 2", w.Data[0])
	}
}

func TestEarlyStopperNoSnapshotRestore(t *testing.T) {
	es := NewEarlyStopper(1)
	if es.RestoreBest(NewParams()) {
		t.Fatal("RestoreBest with no observations must return false")
	}
}

func TestEarlyStopperNaNMetric(t *testing.T) {
	p := NewParams()
	w := p.Add("w", tensor.FromSlice(1, 1, []float64{0}))
	es := NewEarlyStopper(3)

	// A NaN epoch must not snapshot, must not become "best", and must count
	// against patience like any non-improving epoch.
	w.Data[0] = 1
	if es.Observe(0, math.NaN(), p) {
		t.Fatal("patience 3: first NaN epoch must not stop")
	}
	if es.HasSnapshot() {
		t.Fatal("NaN epoch took a snapshot")
	}
	if best, epoch := es.Best(); !math.IsInf(best, -1) || epoch != -1 {
		t.Fatalf("Best after NaN = %v @ %d, want -Inf @ -1", best, epoch)
	}
	if es.NaNsSeen() != 1 {
		t.Fatalf("NaNsSeen = %d", es.NaNsSeen())
	}

	// Recovery: a later finite metric snapshots normally.
	w.Data[0] = 2
	if es.Observe(1, 0.4, p) {
		t.Fatal("finite improvement must not stop")
	}
	if !es.HasSnapshot() {
		t.Fatal("finite epoch did not snapshot")
	}
	w.Data[0] = 3
	es.Observe(2, math.NaN(), p)
	if !es.RestoreBest(p) || w.Data[0] != 2 {
		t.Fatalf("RestoreBest after NaN → w=%v, want the finite-epoch snapshot 2", w.Data[0])
	}
}

func TestEarlyStopperAllNaNStopsOnPatience(t *testing.T) {
	p := NewParams()
	p.Add("w", tensor.FromSlice(1, 1, []float64{0}))
	es := NewEarlyStopper(2)
	stoppedAt := -1
	for epoch := 0; epoch < 10; epoch++ {
		if es.Observe(epoch, math.NaN(), p) {
			stoppedAt = epoch
			break
		}
	}
	// bestEpoch is -1, so patience 2 runs out at epoch 1 (1 - (-1) >= 2).
	if stoppedAt != 1 {
		t.Fatalf("all-NaN run stopped at epoch %d, want 1", stoppedAt)
	}
	if es.RestoreBest(p) {
		t.Fatal("all-NaN run must have no snapshot to restore")
	}
}

func TestMergeGradSetsFixedOrder(t *testing.T) {
	// Build three partial GradSets over the same parameter and check the
	// merge equals the part-order sum with freshly allocated storage.
	mk := func(vals ...float64) *GradSet {
		tape := autodiff.NewTape()
		g := NewGradSet()
		w := tensor.New(1, len(vals))
		v := g.Track("w", tape.Param(w))
		c := tape.Constant(tensor.FromSlice(1, len(vals), vals))
		loss := tape.MatMul(tape.Mul(v, c), tape.Constant(tensor.FromSlice(len(vals), 1, []float64{1, 1})))
		tape.Backward(loss)
		return g
	}
	a, b, c := mk(1, 2), mk(10, 20), mk(100, 200)
	merged := MergeGradSets([]*GradSet{a, nil, b, c})
	g := merged.Grad("w")
	if g == nil || g.Data[0] != 111 || g.Data[1] != 222 {
		t.Fatalf("merged grad = %v, want [111 222]", g)
	}
	// Inputs untouched.
	if ga := a.Grad("w"); ga.Data[0] != 1 || ga.Data[1] != 2 {
		t.Fatalf("merge mutated its input: %v", ga.Data)
	}
	// Merged storage is private: clipping it must not touch the parts.
	merged.ClipByGlobalNorm(0.001)
	if gb := b.Grad("w"); gb.Data[0] != 10 {
		t.Fatal("clipping the merge scaled a part's gradient")
	}
}

func TestGradSetNamesSorted(t *testing.T) {
	tape := autodiff.NewTape()
	g := NewGradSet()
	for _, n := range []string{"z", "a", "m"} {
		g.Track(n, tape.Param(tensor.New(1, 1)))
	}
	names := g.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "m" || names[2] != "z" {
		t.Fatalf("Names() = %v, want sorted", names)
	}
}

func TestParamsCopyFrom(t *testing.T) {
	a := NewParams()
	a.Add("x", tensor.FromSlice(1, 2, []float64{1, 2}))
	a.Add("y", tensor.FromSlice(1, 1, []float64{3}))
	b := NewParams()
	bx := b.Add("x", tensor.New(1, 2))
	b.Add("z", tensor.New(1, 1))
	if n := b.CopyFrom(a); n != 1 {
		t.Fatalf("CopyFrom copied %d, want 1", n)
	}
	if bx.Data[1] != 2 {
		t.Fatal("CopyFrom did not copy values")
	}
}

func TestParamsSaveLoadFileRoundTrip(t *testing.T) {
	// Regression: gob decoders over non-ByteReader streams (files) buffer
	// past message boundaries; Save/Load must survive a real file.
	rng := rand.New(rand.NewSource(5))
	p1 := NewParams()
	w := p1.Add("w", tensor.New(4, 4))
	XavierInit(w, rng)
	path := filepath.Join(t.TempDir(), "params.bin")
	if err := p1.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	p2 := NewParams()
	p2.Add("w", tensor.New(4, 4))
	if err := p2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(p2.Get("w"), w, 0) {
		t.Fatal("file round trip mismatch")
	}
}

func TestParamsEncodeDecodeGobSharedStream(t *testing.T) {
	// Metadata and parameters interleaved on ONE gob stream — the model
	// persistence pattern.
	rng := rand.New(rand.NewSource(6))
	p1 := NewParams()
	w := p1.Add("w", tensor.New(2, 3))
	XavierInit(w, rng)

	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode("metadata-before-params"); err != nil {
		t.Fatal(err)
	}
	if err := p1.EncodeGob(enc); err != nil {
		t.Fatal(err)
	}

	dec := gob.NewDecoder(&buf)
	var meta string
	if err := dec.Decode(&meta); err != nil {
		t.Fatal(err)
	}
	p2 := NewParams()
	p2.Add("w", tensor.New(2, 3))
	if err := p2.DecodeGob(dec); err != nil {
		t.Fatal(err)
	}
	if meta != "metadata-before-params" || !tensor.Equal(p2.Get("w"), w, 0) {
		t.Fatal("shared-stream round trip mismatch")
	}
}
