package baselines

import (
	"testing"

	"github.com/sematype/pythagoras/internal/eval"
)

// Per-baseline determinism smoke tests: every baseline trained twice with
// the same seed on the same fixed mini-corpus must produce identical
// prediction lists. This is the reproducibility contract the paper's
// comparison table rests on — a baseline whose numbers move between runs
// cannot be compared against.

// smokeOpts keeps training tiny: the assertions are about determinism, not
// accuracy.
func smokeOpts() TrainOpts {
	o := DefaultTrainOpts()
	o.Epochs = 2
	o.Patience = 2
	o.Seed = 42
	return o
}

// assertSamePredictions fails if two prediction lists differ anywhere.
func assertSamePredictions(t *testing.T, name string, a, b []eval.Prediction) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: prediction counts differ across runs: %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: prediction %d differs across identically seeded runs: %+v vs %+v",
				name, i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatalf("%s: smoke corpus produced no predictions", name)
	}
}

// trainEval trains one baseline and evaluates it on the held-out tables.
type trainEval func() []eval.Prediction

func runTwice(t *testing.T, name string, run trainEval) {
	t.Helper()
	assertSamePredictions(t, name, run(), run())
}

func TestSherlockSmokeDeterministic(t *testing.T) {
	c := testCorpus(10)
	enc := testEncoder()
	runTwice(t, "sherlock", func() []eval.Prediction {
		m := TrainSherlock(c, []int{0, 1, 2, 3, 4, 5}, []int{6, 7}, enc, smokeOpts())
		_, preds := m.Evaluate(c, []int{8, 9})
		return preds
	})
}

func TestSatoSmokeDeterministic(t *testing.T) {
	c := testCorpus(10)
	enc := testEncoder()
	runTwice(t, "sato", func() []eval.Prediction {
		m, err := TrainSato(c, []int{0, 1, 2, 3, 4, 5}, []int{6, 7}, enc,
			SatoOpts{TrainOpts: smokeOpts(), Topics: 2, CRFEpochs: 1, CRFRate: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		_, preds := m.Evaluate(c, []int{8, 9})
		return preds
	})
}

func TestDosoloSmokeDeterministic(t *testing.T) {
	c := testCorpus(10)
	enc := testEncoder()
	runTwice(t, "dosolo", func() []eval.Prediction {
		m := TrainDosolo(c, []int{0, 1, 2, 3, 4, 5}, []int{6, 7}, enc, smokeOpts())
		_, preds := m.Evaluate(c, []int{8, 9})
		return preds
	})
}

func TestDoduoSmokeDeterministic(t *testing.T) {
	c := testCorpus(10)
	enc := testEncoder()
	runTwice(t, "doduo", func() []eval.Prediction {
		m := TrainDoduo(c, []int{0, 1, 2, 3, 4, 5}, []int{6, 7}, enc, smokeOpts())
		_, preds := m.Evaluate(c, []int{8, 9})
		return preds
	})
}

func TestLLMSmokeDeterministic(t *testing.T) {
	c := testCorpus(10)
	enc := testEncoder()
	runTwice(t, "llmft", func() []eval.Prediction {
		m := TrainLLM(c, []int{0, 1, 2, 3, 4, 5}, []int{6, 7}, enc, smokeOpts())
		_, preds := m.Evaluate(c, []int{8, 9})
		return preds
	})
}
