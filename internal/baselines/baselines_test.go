package baselines

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/sematype/pythagoras/internal/colfeat"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/lm"
	"github.com/sematype/pythagoras/internal/table"
	"github.com/sematype/pythagoras/internal/tensor"
)

func testEncoder() *lm.Encoder {
	return lm.NewEncoder(lm.Config{Dim: 32, Layers: 1, Heads: 2, FFNDim: 64, MaxLen: 256, Buckets: 1 << 12, Seed: 7})
}

func testCorpus(n int) *data.Corpus {
	return data.GenerateSportsTables(data.SportsConfig{
		NumTables: n, Seed: 11, MinRows: 6, MaxRows: 10, WeakNameProb: 0.1, Domains: 3,
	})
}

func quickOpts() TrainOpts {
	o := DefaultTrainOpts()
	o.Epochs = 15
	o.Patience = 15
	return o
}

func TestSherlockFeaturizerShapes(t *testing.T) {
	enc := testEncoder()
	f := NewSherlockFeaturizer(enc)
	c := testCorpus(3)
	for _, tb := range c.Tables {
		vecs := f.FeaturizeTable(tb)
		if len(vecs) != len(tb.Columns) {
			t.Fatalf("vectors = %d, columns = %d", len(vecs), len(tb.Columns))
		}
		for _, v := range vecs {
			if len(v) != f.Dim() {
				t.Fatalf("vector dim = %d, want %d", len(v), f.Dim())
			}
		}
	}
	groups := f.Groups()
	if len(groups) != 4 {
		t.Fatalf("sherlock groups = %d, want 4", len(groups))
	}
	if groups[3].Hi != f.Dim() {
		t.Fatal("groups must tile the feature vector")
	}
	for i := 1; i < len(groups); i++ {
		if groups[i].Lo != groups[i-1].Hi {
			t.Fatal("groups must be contiguous")
		}
	}
}

func TestCharFeaturesBasics(t *testing.T) {
	out := colfeat.CharProfile([]string{"abc", "ABC", "123"})
	if len(out) != charFeatureDim {
		t.Fatalf("char features dim = %d", len(out))
	}
	// 'a' appears twice (a and A) of 9 chars total
	if out[0] != 2.0/9 {
		t.Fatalf("freq(a) = %v", out[0])
	}
	if out[26+1] != 1.0/9 { // digit '1'
		t.Fatalf("freq(1) = %v", out[27])
	}
	empty := colfeat.CharProfile(nil)
	for _, v := range empty {
		if v != 0 {
			t.Fatal("empty input must produce zeros")
		}
	}
}

func TestGlobalStatsNumericVsText(t *testing.T) {
	num := &table.Column{Kind: table.KindNumeric, NumValues: []float64{1, 2, 3}}
	txt := &table.Column{Kind: table.KindText, TextValues: []string{"a", "b", "b"}}
	gn := globalStats(num, num.ValueStrings(0))
	gt := globalStats(txt, txt.ValueStrings(0))
	if len(gn) != globalStatsDim || len(gt) != globalStatsDim {
		t.Fatal("global stats dim wrong")
	}
	// numeric flag
	if gn[192+3] != 1 || gt[192+3] != 0 {
		t.Fatal("numeric flag wrong")
	}
	// text column's numeric-feature block must be zero
	for i := 0; i < 192; i++ {
		if gt[i] != 0 {
			t.Fatal("text column has nonzero numeric features")
		}
	}
}

func TestBuildDatasetStructure(t *testing.T) {
	enc := testEncoder()
	c := testCorpus(4)
	f := NewDosoloFeaturizer(enc)
	d := BuildDataset(f, c, []int{0, 1, 2, 3})
	totalCols := 0
	for _, tb := range c.Tables[:4] {
		totalCols += len(tb.Columns)
	}
	if d.X.Rows != totalCols || len(d.Y) != totalCols {
		t.Fatalf("dataset rows = %d, want %d", d.X.Rows, totalCols)
	}
	// TableOf must be nondecreasing and contiguous
	for i := 1; i < len(d.TableOf); i++ {
		if d.TableOf[i] < d.TableOf[i-1] {
			t.Fatal("TableOf not grouped")
		}
	}
	for _, y := range d.Y {
		if y < 0 {
			t.Fatal("all corpus labels must resolve")
		}
	}
}

func TestAllBaselinesLearnAboveChance(t *testing.T) {
	c := testCorpus(60)
	enc := testEncoder()
	rng := rand.New(rand.NewSource(1))
	train, val, test := eval.TrainValTestSplit(len(c.Tables), rng)
	opts := quickOpts()

	type result struct {
		name string
		f1   float64
	}
	var results []result

	sher := TrainSherlock(c, train, val, enc, opts)
	s, _ := sher.Evaluate(c, test)
	results = append(results, result{"Sherlock", s.Overall.WeightedF1})

	sato, err := TrainSato(c, train, val, enc, SatoOpts{TrainOpts: opts, Topics: 8, CRFEpochs: 2, CRFRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	s, _ = sato.Evaluate(c, test)
	results = append(results, result{"Sato", s.Overall.WeightedF1})

	doso := TrainDosolo(c, train, val, enc, opts)
	s, _ = doso.Evaluate(c, test)
	results = append(results, result{"Dosolo", s.Overall.WeightedF1})

	dodu := TrainDoduo(c, train, val, enc, opts)
	s, _ = dodu.Evaluate(c, test)
	results = append(results, result{"Doduo", s.Overall.WeightedF1})

	llm := TrainLLM(c, train, val, enc, opts)
	s, _ = llm.Evaluate(c, test)
	results = append(results, result{"GPT-3 (fine-tuned)", s.Overall.WeightedF1})

	for _, r := range results {
		t.Logf("%-20s weighted F1 = %.3f", r.name, r.f1)
		// chance over ~126 classes ≈ 0.008
		if r.f1 < 0.05 {
			t.Errorf("%s did not learn (F1 %.3f)", r.name, r.f1)
		}
	}
}

func TestDoduoBudgetSharedAcrossColumns(t *testing.T) {
	enc := testEncoder()
	f := NewDoduoFeaturizer(enc)
	f.MaxTokens = 32
	// wide table: 15 columns, budget leaves ~1 token per column
	cols := make([]*table.Column, 15)
	for i := range cols {
		cols[i] = &table.Column{
			Header: "c", SemanticType: "t", Kind: table.KindNumeric,
			NumValues: []float64{1, 2, 3, 4, 5, 6, 7, 8},
		}
	}
	tb := &table.Table{Name: "T", ID: "t", Columns: cols}
	vecs := f.FeaturizeTable(tb)
	if len(vecs) != 15 {
		t.Fatal("vector count")
	}
	for _, v := range vecs {
		var norm float64
		for _, x := range v {
			norm += x * x
		}
		if norm == 0 {
			t.Fatal("column got no representation under tight budget")
		}
	}
}

func TestDoduoEmptyTable(t *testing.T) {
	enc := testEncoder()
	f := NewDoduoFeaturizer(enc)
	vecs := f.FeaturizeTable(&table.Table{Name: "T", ID: "t"})
	if len(vecs) != 0 {
		t.Fatal("empty table must produce no vectors")
	}
}

func TestLLMPromptIncludesTableNameAndValues(t *testing.T) {
	enc := testEncoder()
	f := NewLLMFeaturizer(enc)
	tb := &table.Table{Name: "NBA Player Stats", ID: "t", Columns: []*table.Column{
		{Header: "h", SemanticType: "x", Kind: table.KindNumeric, NumValues: []float64{7.5}},
	}}
	prompt := f.buildPrompt(tb, tb.Columns[0])
	if !contains(prompt, "NBA Player Stats") || !contains(prompt, "7.5") {
		t.Fatalf("prompt = %q", prompt)
	}
}

func TestLLMPromptRespectsBudget(t *testing.T) {
	enc := testEncoder()
	f := NewLLMFeaturizer(enc)
	f.PromptTokens = 5
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	tb := &table.Table{Name: "T", ID: "t", Columns: []*table.Column{
		{Header: "h", SemanticType: "x", Kind: table.KindNumeric, NumValues: vals},
	}}
	prompt := f.buildPrompt(tb, tb.Columns[0])
	if len(enc.Tokenize(prompt)) > 30 {
		t.Fatalf("prompt not truncated: %d tokens", len(enc.Tokenize(prompt)))
	}
}

func TestSatoTopicGroupAppended(t *testing.T) {
	enc := testEncoder()
	c := testCorpus(8)
	sato, err := TrainSato(c, []int{0, 1, 2, 3}, []int{4, 5}, enc,
		SatoOpts{TrainOpts: quickOpts(), Topics: 4, CRFEpochs: 1, CRFRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sato.f.Groups()); got != 5 {
		t.Fatalf("sato groups = %d, want 5", got)
	}
	vecs := sato.f.FeaturizeTable(c.Tables[6])
	if len(vecs[0]) != sato.f.Dim() {
		t.Fatal("topic group not appended")
	}
}

func TestClassifierPredictSkipsUnknownLabels(t *testing.T) {
	enc := testEncoder()
	c := testCorpus(6)
	f := NewDosoloFeaturizer(enc)
	d := BuildDataset(f, c, []int{0, 1})
	d.Y[0] = -1
	cls := TrainClassifier(f.Groups(), len(c.Types), d, nil, quickOpts())
	preds := cls.Predict(d)
	if len(preds) != d.X.Rows-1 {
		t.Fatalf("preds = %d, want %d", len(preds), d.X.Rows-1)
	}
}

func TestSliceCols(t *testing.T) {
	m := tensor.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := sliceCols(m, 1, 3)
	if got.Cols != 2 || got.At(0, 0) != 2 || got.At(1, 1) != 6 {
		t.Fatalf("sliceCols = %v", got.Data)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
