package baselines

import (
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/lm"
	"github.com/sematype/pythagoras/internal/table"
)

// DosoloFeaturizer reproduces Dosolo [26]: each column is serialized to
// "[CLS] v1 v2 … [SEP]", encoded by the frozen LM, and the CLS vector alone
// feeds the classification head. No table context of any kind — the
// columnwise lower bound the paper's ablation "w/o V_tn, V_nn, V_ncf"
// collapses to.
type DosoloFeaturizer struct {
	enc *lm.Encoder
}

// NewDosoloFeaturizer returns the featurizer.
func NewDosoloFeaturizer(enc *lm.Encoder) *DosoloFeaturizer {
	return &DosoloFeaturizer{enc: enc}
}

// Name implements Featurizer.
func (d *DosoloFeaturizer) Name() string { return "Dosolo" }

// Dim implements Featurizer.
func (d *DosoloFeaturizer) Dim() int { return d.enc.Dim() }

// Groups implements Featurizer.
func (d *DosoloFeaturizer) Groups() []Group { return wholeGroup(d.Dim()) }

// FeaturizeTable implements Featurizer.
func (d *DosoloFeaturizer) FeaturizeTable(t *table.Table) [][]float64 {
	out := make([][]float64, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = widenF32(d.enc.Encode(table.SerializeColumn(c, table.SerializeOptions{})))
	}
	return out
}

// Dosolo is the trained columnwise LM model.
type Dosolo struct {
	f   *DosoloFeaturizer
	cls *Classifier
}

// TrainDosolo trains Dosolo on the corpus splits.
func TrainDosolo(c *data.Corpus, trainIdx, valIdx []int, enc *lm.Encoder, opts TrainOpts) *Dosolo {
	f := NewDosoloFeaturizer(enc)
	train := BuildDataset(f, c, trainIdx)
	val := BuildDataset(f, c, valIdx)
	cls := TrainClassifier(f.Groups(), len(c.Types), train, val, opts)
	return &Dosolo{f: f, cls: cls}
}

// Evaluate scores the model on the given tables.
func (m *Dosolo) Evaluate(c *data.Corpus, idx []int) (*eval.Split, []eval.Prediction) {
	d := BuildDataset(m.f, c, idx)
	preds := m.cls.Predict(d)
	return eval.ComputeSplit(preds), preds
}
