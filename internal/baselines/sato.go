package baselines

import (
	"github.com/sematype/pythagoras/internal/crf"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/lda"
	"github.com/sematype/pythagoras/internal/lm"
	"github.com/sematype/pythagoras/internal/table"
	"github.com/sematype/pythagoras/internal/tensor"
)

// SatoFeaturizer extends Sherlock with an LDA table-topic vector: every
// column of a table receives the topic distribution of the table's full
// token bag as an additional feature group — Sato's table context
// mechanism. With numeric-heavy tables this topic vector carries little
// signal (the paper's explanation for Sato's weakness on SportsTables),
// which emerges naturally here because numeric tokens dominate the bag.
type SatoFeaturizer struct {
	sherlock *SherlockFeaturizer
	topics   *TopicModel
}

// TopicModel wraps the trained LDA model with the table→bag conversion.
type TopicModel struct {
	lda *lda.Model
	enc *lm.Encoder
	k   int
}

// Name implements Featurizer.
func (s *SatoFeaturizer) Name() string { return "Sato" }

// Dim implements Featurizer.
func (s *SatoFeaturizer) Dim() int { return s.sherlock.Dim() + s.topics.k }

// Groups implements Featurizer: Sherlock's four groups plus the topic group.
func (s *SatoFeaturizer) Groups() []Group {
	groups := s.sherlock.Groups()
	base := s.sherlock.Dim()
	return append(groups, Group{Name: "topic", Lo: base, Hi: base + s.topics.k})
}

// FeaturizeTable implements Featurizer.
func (s *SatoFeaturizer) FeaturizeTable(t *table.Table) [][]float64 {
	cols := s.sherlock.FeaturizeTable(t)
	topic := s.topics.Infer(t)
	for i := range cols {
		cols[i] = append(cols[i], topic...)
	}
	return cols
}

// tableBag converts a table into the token bag LDA consumes: table name,
// headers excluded (consistent with §4.2), all values.
func tableBag(enc *lm.Encoder, t *table.Table) []string {
	var bag []string
	bag = append(bag, enc.Tokenize(t.Name)...)
	for _, c := range t.Columns {
		for _, v := range c.ValueStrings(20) {
			bag = append(bag, enc.Tokenize(v)...)
		}
	}
	return bag
}

// Infer returns the table's topic distribution.
func (tm *TopicModel) Infer(t *table.Table) []float64 {
	return tm.lda.Infer(tableBag(tm.enc, t), 20, 1)
}

// Sato is the trained tablewise model: topic-aware per-column classifier
// plus a linear-chain CRF over each table's column sequence.
type Sato struct {
	f   *SatoFeaturizer
	cls *Classifier
	crf *crf.Model
}

// SatoOpts extends the shared training options with Sato-specific knobs.
type SatoOpts struct {
	TrainOpts
	Topics    int
	CRFEpochs int
	CRFRate   float64
}

// DefaultSatoOpts returns the harness defaults.
func DefaultSatoOpts() SatoOpts {
	return SatoOpts{TrainOpts: DefaultTrainOpts(), Topics: 24, CRFEpochs: 3, CRFRate: 0.05}
}

// TrainSato trains the full Sato pipeline: LDA on the training tables, the
// per-column network, then the CRF transitions on training chains.
func TrainSato(c *data.Corpus, trainIdx, valIdx []int, enc *lm.Encoder, opts SatoOpts) (*Sato, error) {
	// 1. LDA on training tables only (no test leakage).
	docs := make([][]string, len(trainIdx))
	for i, ti := range trainIdx {
		docs[i] = tableBag(enc, c.Tables[ti])
	}
	ldaM, err := lda.Train(docs, lda.Config{Topics: opts.Topics, Iterations: 30, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	f := &SatoFeaturizer{
		sherlock: NewSherlockFeaturizer(enc),
		topics:   &TopicModel{lda: ldaM, enc: enc, k: opts.Topics},
	}

	// 2. Per-column classifier.
	train := BuildDataset(f, c, trainIdx)
	val := BuildDataset(f, c, valIdx)
	cls := TrainClassifier(f.Groups(), len(c.Types), train, val, opts.TrainOpts)

	// 3. CRF over column chains, using the trained unaries.
	model := crf.New(len(c.Types))
	logits := cls.Logits(train)
	for epoch := 0; epoch < opts.CRFEpochs; epoch++ {
		at := 0
		for at < len(train.TableOf) {
			end := at
			for end < len(train.TableOf) && train.TableOf[end] == train.TableOf[at] {
				end++
			}
			unary, labels := chainOf(logits, train.Y, at, end)
			if len(unary) > 0 {
				model.TrainStep(unary, labels, opts.CRFRate)
			}
			at = end
		}
	}
	return &Sato{f: f, cls: cls, crf: model}, nil
}

// chainOf extracts the (unary, label) chain for columns [at, end), skipping
// unlabeled columns (they cannot participate in CRF training).
func chainOf(logits *tensor.Matrix, y []int, at, end int) ([][]float64, []int) {
	var unary [][]float64
	var labels []int
	for i := at; i < end; i++ {
		if y[i] < 0 {
			continue
		}
		unary = append(unary, logits.Row(i))
		labels = append(labels, y[i])
	}
	return unary, labels
}

// Evaluate scores Sato with Viterbi decoding per table.
func (m *Sato) Evaluate(c *data.Corpus, idx []int) (*eval.Split, []eval.Prediction) {
	d := BuildDataset(m.f, c, idx)
	logits := m.cls.Logits(d)
	var preds []eval.Prediction
	at := 0
	for at < len(d.TableOf) {
		end := at
		for end < len(d.TableOf) && d.TableOf[end] == d.TableOf[at] {
			end++
		}
		var unary [][]float64
		var rows []int
		for i := at; i < end; i++ {
			if d.Y[i] < 0 {
				continue
			}
			unary = append(unary, logits.Row(i))
			rows = append(rows, i)
		}
		if len(unary) > 0 {
			decoded := m.crf.Decode(unary)
			for k, i := range rows {
				preds = append(preds, eval.Prediction{
					True: d.Y[i], Pred: decoded[k], Numeric: d.Numeric[i],
				})
			}
		}
		at = end
	}
	return eval.ComputeSplit(preds), preds
}
