package baselines

import (
	"math"

	"github.com/sematype/pythagoras/internal/colfeat"

	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/features"
	"github.com/sematype/pythagoras/internal/lm"
	"github.com/sematype/pythagoras/internal/table"
)

// SherlockFeaturizer reproduces Sherlock's columnwise multi-group features:
// character distributions, aggregated word embeddings, a whole-column text
// embedding (the paragraph-vector stand-in), and global statistics
// (including the 192 numeric statistics for numerical columns). No
// information from outside the column is used.
type SherlockFeaturizer struct {
	enc *lm.Encoder
}

// NewSherlockFeaturizer builds the featurizer around the shared frozen
// encoder (used for its token/word embeddings).
func NewSherlockFeaturizer(enc *lm.Encoder) *SherlockFeaturizer {
	return &SherlockFeaturizer{enc: enc}
}

// charFeatureDim is the width of the character-distribution group (see
// colfeat.CharProfile).
const charFeatureDim = colfeat.CharProfileDim

// globalStatsDim is the width of the global-statistics group: the 192
// numeric statistics plus 8 column-level aggregates shared by both kinds.
const globalStatsDim = features.Dim + 8

// Name implements Featurizer.
func (s *SherlockFeaturizer) Name() string { return "Sherlock" }

// Dim implements Featurizer.
func (s *SherlockFeaturizer) Dim() int {
	return charFeatureDim + s.enc.Dim() + s.enc.Dim() + globalStatsDim
}

// Groups implements Featurizer: the four Sherlock subnetwork groups.
func (s *SherlockFeaturizer) Groups() []Group {
	d := s.enc.Dim()
	return []Group{
		{Name: "char", Lo: 0, Hi: charFeatureDim},
		{Name: "word", Lo: charFeatureDim, Hi: charFeatureDim + d},
		{Name: "par", Lo: charFeatureDim + d, Hi: charFeatureDim + 2*d},
		{Name: "stats", Lo: charFeatureDim + 2*d, Hi: charFeatureDim + 2*d + globalStatsDim},
	}
}

// FeaturizeTable implements Featurizer; each column is featurized in
// isolation.
func (s *SherlockFeaturizer) FeaturizeTable(t *table.Table) [][]float64 {
	out := make([][]float64, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = s.featurizeColumn(c)
	}
	return out
}

func (s *SherlockFeaturizer) featurizeColumn(c *table.Column) []float64 {
	vals := c.ValueStrings(0)
	vec := make([]float64, 0, s.Dim())
	vec = append(vec, colfeat.CharProfile(vals)...)
	vec = append(vec, s.wordEmbedding(vals)...)
	vec = append(vec, widenF32(s.enc.Encode(table.SerializeColumn(c, table.SerializeOptions{})))...)
	vec = append(vec, globalStats(c, vals)...)
	return vec
}

// wordEmbedding mean-pools the frozen token embeddings of all values.
func (s *SherlockFeaturizer) wordEmbedding(vals []string) []float64 {
	dim := s.enc.Dim()
	out := make([]float64, dim)
	count := 0
	for _, v := range vals {
		for _, tok := range s.enc.Tokenize(v) {
			emb := s.enc.TokenEmbedding(tok)
			for i, x := range emb {
				out[i] += float64(x)
			}
			count++
		}
	}
	if count > 0 {
		inv := 1 / float64(count)
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}

// globalStats computes the statistics group: the 192 numeric features (zero
// for text columns) plus kind-agnostic aggregates.
func globalStats(c *table.Column, vals []string) []float64 {
	out := make([]float64, globalStatsDim)
	if c.Kind == table.KindNumeric {
		copy(out, features.ExtractNormalized(c.NumValues))
	}
	base := features.Dim
	n := float64(len(vals))
	out[base] = math.Log1p(n)
	distinct := map[string]struct{}{}
	var empty float64
	for _, v := range vals {
		distinct[v] = struct{}{}
		if v == "" {
			empty++
		}
	}
	if n > 0 {
		out[base+1] = float64(len(distinct)) / n
		out[base+2] = empty / n
	}
	if c.Kind == table.KindNumeric {
		out[base+3] = 1
	}
	var lenSum float64
	for _, v := range vals {
		lenSum += float64(len(v))
	}
	if n > 0 {
		out[base+4] = lenSum / n
	}
	out[base+5] = boolTo(len(distinct) == len(vals) && len(vals) > 0)
	out[base+6] = boolTo(len(distinct) == 1 && len(vals) > 0)
	out[base+7] = math.Log1p(float64(len(distinct)))
	return out
}

func boolTo(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Sherlock is the trained columnwise model.
type Sherlock struct {
	f   *SherlockFeaturizer
	cls *Classifier
}

// TrainSherlock trains Sherlock on the corpus splits.
func TrainSherlock(c *data.Corpus, trainIdx, valIdx []int, enc *lm.Encoder, opts TrainOpts) *Sherlock {
	f := NewSherlockFeaturizer(enc)
	train := BuildDataset(f, c, trainIdx)
	val := BuildDataset(f, c, valIdx)
	cls := TrainClassifier(f.Groups(), len(c.Types), train, val, opts)
	return &Sherlock{f: f, cls: cls}
}

// Evaluate scores the model on the given tables.
func (m *Sherlock) Evaluate(c *data.Corpus, idx []int) (*eval.Split, []eval.Prediction) {
	d := BuildDataset(m.f, c, idx)
	preds := m.cls.Predict(d)
	return eval.ComputeSplit(preds), preds
}
