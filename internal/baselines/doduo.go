package baselines

import (
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/lm"
	"github.com/sematype/pythagoras/internal/table"
)

// DoduoFeaturizer reproduces Doduo [26]: the entire table is serialized
// into ONE token sequence — "[CLS] col1-values [SEP] col2-values [SEP] …"
// — encoded jointly by the frozen LM, and each column is represented by the
// mean of its own token span's contextualized states. Context arrives
// through the joint encoding, but the LM's hard 512-token budget must be
// shared across all columns: wide tables (SportsTables averages ~21
// columns) leave only a handful of values per column — the truncation
// weakness the paper analyzes.
type DoduoFeaturizer struct {
	enc *lm.Encoder
	// MaxTokens is the sequence budget (the paper's 512).
	MaxTokens int
}

// NewDoduoFeaturizer returns the featurizer with the paper's 512 budget.
func NewDoduoFeaturizer(enc *lm.Encoder) *DoduoFeaturizer {
	return &DoduoFeaturizer{enc: enc, MaxTokens: 512}
}

// Name implements Featurizer.
func (d *DoduoFeaturizer) Name() string { return "Doduo" }

// Dim implements Featurizer.
func (d *DoduoFeaturizer) Dim() int { return d.enc.Dim() }

// Groups implements Featurizer.
func (d *DoduoFeaturizer) Groups() []Group { return wholeGroup(d.Dim()) }

// FeaturizeTable implements Featurizer: joint encoding with span pooling.
func (d *DoduoFeaturizer) FeaturizeTable(t *table.Table) [][]float64 {
	nCols := len(t.Columns)
	out := make([][]float64, nCols)
	for i := range out {
		out[i] = make([]float64, d.enc.Dim())
	}
	if nCols == 0 {
		return out
	}
	// Per-column token allowance under the shared budget: reserve [CLS] and
	// one [SEP] per column.
	budget := d.MaxTokens - 1 - nCols
	if budget < nCols {
		budget = nCols
	}
	perCol := budget / nCols
	if perCol < 1 {
		perCol = 1
	}

	tokens := []string{lm.TokenCLS}
	spans := make([][2]int, nCols)
	for i, c := range t.Columns {
		start := len(tokens)
		count := 0
		for _, v := range c.ValueStrings(0) {
			for _, tok := range d.enc.Tokenize(v) {
				if count >= perCol {
					break
				}
				tokens = append(tokens, tok)
				count++
			}
			if count >= perCol {
				break
			}
		}
		if count == 0 { // guarantee a span
			tokens = append(tokens, lm.TokenPAD)
			count = 1
		}
		spans[i] = [2]int{start, start + count}
		tokens = append(tokens, lm.TokenSEP)
	}

	states := d.enc.EncodeTokens(tokens)
	for i, sp := range spans {
		lo, hi := sp[0], sp[1]
		if hi > states.Rows {
			hi = states.Rows
		}
		if lo >= hi {
			continue
		}
		vec := out[i]
		for r := lo; r < hi; r++ {
			row := states.Row(r)
			for j := range vec {
				vec[j] += float64(row[j])
			}
		}
		inv := 1 / float64(hi-lo)
		for j := range vec {
			vec[j] *= inv
		}
	}
	return out
}

// Doduo is the trained tablewise LM model.
type Doduo struct {
	f   *DoduoFeaturizer
	cls *Classifier
}

// TrainDoduo trains Doduo on the corpus splits.
func TrainDoduo(c *data.Corpus, trainIdx, valIdx []int, enc *lm.Encoder, opts TrainOpts) *Doduo {
	f := NewDoduoFeaturizer(enc)
	train := BuildDataset(f, c, trainIdx)
	val := BuildDataset(f, c, valIdx)
	cls := TrainClassifier(f.Groups(), len(c.Types), train, val, opts)
	return &Doduo{f: f, cls: cls}
}

// Evaluate scores the model on the given tables.
func (m *Doduo) Evaluate(c *data.Corpus, idx []int) (*eval.Split, []eval.Prediction) {
	d := BuildDataset(m.f, c, idx)
	preds := m.cls.Predict(d)
	return eval.ComputeSplit(preds), preds
}
