package baselines

import (
	"strings"

	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/lm"
	"github.com/sematype/pythagoras/internal/table"
)

// LLMFeaturizer simulates the paper's fine-tuned GPT-3.5 baseline (see
// DESIGN.md §2 for the substitution). The original baseline serializes each
// column into a natural-language prompt (table name + column values,
// truncated to the prompt budget) and fine-tunes a generic LLM to emit the
// type string. Our simulator reproduces its decisive properties:
//
//   - prompt-style input: one flat text per column, no architectural path
//     for typed context (the table name is just more prompt text);
//   - a shallow adapter head over the frozen encoder (fine-tuning a
//     generic model adapts a thin slice of capacity to the task);
//   - a flat label space in which rare fine-grained types get almost no
//     gradient signal — the source of the paper's very low macro F1 for
//     this baseline.
type LLMFeaturizer struct {
	enc *lm.Encoder
	// PromptTokens caps the serialized prompt length.
	PromptTokens int
}

// NewLLMFeaturizer returns the simulator's featurizer.
func NewLLMFeaturizer(enc *lm.Encoder) *LLMFeaturizer {
	return &LLMFeaturizer{enc: enc, PromptTokens: 128}
}

// Name implements Featurizer.
func (f *LLMFeaturizer) Name() string { return "GPT-3 (fine-tuned)" }

// Dim implements Featurizer.
func (f *LLMFeaturizer) Dim() int { return f.enc.Dim() }

// Groups implements Featurizer.
func (f *LLMFeaturizer) Groups() []Group { return wholeGroup(f.Dim()) }

// FeaturizeTable implements Featurizer: one prompt per column.
func (f *LLMFeaturizer) FeaturizeTable(t *table.Table) [][]float64 {
	out := make([][]float64, len(t.Columns))
	for i, c := range t.Columns {
		prompt := f.buildPrompt(t, c)
		out[i] = widenF32(f.enc.Encode(prompt))
	}
	return out
}

// buildPrompt mirrors the instruction-style serialization used for LLM
// fine-tuning: task phrasing, table name, then the column's values.
func (f *LLMFeaturizer) buildPrompt(t *table.Table, c *table.Column) string {
	var sb strings.Builder
	sb.WriteString("classify the semantic type of this column . table ")
	sb.WriteString(t.Name)
	sb.WriteString(" . values ")
	count := 0
	for _, v := range c.ValueStrings(0) {
		toks := f.enc.Tokenize(v)
		if count+len(toks) > f.PromptTokens {
			break
		}
		sb.WriteByte(' ')
		sb.WriteString(v)
		count += len(toks)
	}
	return sb.String()
}

// LLM is the trained fine-tuned-LLM simulator.
type LLM struct {
	f   *LLMFeaturizer
	cls *Classifier
}

// TrainLLM trains the simulator. The adapter is a single linear layer
// (Hidden=0) regardless of opts.Hidden — fine-tuning adapts a thin head,
// not the backbone.
func TrainLLM(c *data.Corpus, trainIdx, valIdx []int, enc *lm.Encoder, opts TrainOpts) *LLM {
	opts.Hidden = 0
	f := NewLLMFeaturizer(enc)
	train := BuildDataset(f, c, trainIdx)
	val := BuildDataset(f, c, valIdx)
	cls := TrainClassifier(f.Groups(), len(c.Types), train, val, opts)
	return &LLM{f: f, cls: cls}
}

// Evaluate scores the model on the given tables.
func (m *LLM) Evaluate(c *data.Corpus, idx []int) (*eval.Split, []eval.Prediction) {
	d := BuildDataset(m.f, c, idx)
	preds := m.cls.Predict(d)
	return eval.ComputeSplit(preds), preds
}
