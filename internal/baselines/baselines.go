// Package baselines implements the five state-of-the-art semantic type
// detection models Pythagoras is compared against in the paper's §4:
// Sherlock [13], Sato [30], Dosolo [26], Doduo [26] and a fine-tuned-LLM
// simulator standing in for GPT-3.5 [3] (see DESIGN.md §2).
//
// Every baseline reduces to the same skeleton: a featurizer turns each
// column into a fixed vector (columnwise models see only the column,
// tablewise models see the whole table), and a classifier maps vectors to
// semantic types. Sherlock/Sato add per-group subnetworks; Sato adds an LDA
// table-topic group and a linear-chain CRF over the column sequence.
package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/sematype/pythagoras/internal/autodiff"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/nn"
	"github.com/sematype/pythagoras/internal/table"
	"github.com/sematype/pythagoras/internal/tensor"
)

// Group names a contiguous slice [Lo, Hi) of the feature vector that gets
// its own subnetwork (Sherlock's multi-input architecture).
type Group struct {
	Name   string
	Lo, Hi int
}

// Featurizer converts a table into one feature vector per column.
type Featurizer interface {
	Name() string
	Dim() int
	// Groups returns the subnetwork structure ({one group covering all
	// dims} for single-input models).
	Groups() []Group
	// FeaturizeTable returns one Dim()-long vector per column, in column
	// order.
	FeaturizeTable(t *table.Table) [][]float64
}

// Dataset is a featurized set of columns.
type Dataset struct {
	X       *tensor.Matrix
	Y       []int
	Numeric []bool
	// TableOf[i] is the index (within the dataset's table list) of the
	// table column i belongs to; columns of one table are contiguous and in
	// table order — the chain structure Sato's CRF needs.
	TableOf []int
	Tables  int
}

// BuildDataset featurizes the given tables of a corpus.
func BuildDataset(f Featurizer, c *data.Corpus, idx []int) *Dataset {
	d := &Dataset{}
	var rows [][]float64
	for ti, i := range idx {
		t := c.Tables[i]
		vecs := f.FeaturizeTable(t)
		if len(vecs) != len(t.Columns) {
			panic(fmt.Sprintf("baselines: %s returned %d vectors for %d columns",
				f.Name(), len(vecs), len(t.Columns)))
		}
		for ci, v := range vecs {
			rows = append(rows, v)
			label := -1
			if li, ok := c.LabelIndex[t.Columns[ci].SemanticType]; ok {
				label = li
			}
			d.Y = append(d.Y, label)
			d.Numeric = append(d.Numeric, t.Columns[ci].Kind == table.KindNumeric)
			d.TableOf = append(d.TableOf, ti)
		}
	}
	if len(rows) == 0 {
		d.X = tensor.New(0, f.Dim())
	} else {
		d.X = tensor.FromRows(rows)
	}
	d.Tables = len(idx)
	return d
}

// TrainOpts controls classifier training.
type TrainOpts struct {
	// SubDim is the output width of each group subnetwork (ignored with a
	// single group covering everything when Hidden is set).
	SubDim int
	// Hidden is the main network's hidden layer width (0 = linear head).
	Hidden       int
	LearningRate float64
	Epochs       int
	BatchSize    int
	Patience     int
	Dropout      float64
	Seed         int64
	Logf         func(format string, args ...any)
}

// DefaultTrainOpts mirrors the shared training protocol of §4.2.
func DefaultTrainOpts() TrainOpts {
	return TrainOpts{
		SubDim: 64, Hidden: 128, LearningRate: 1e-2, Epochs: 60,
		BatchSize: 256, Patience: 12, Seed: 1, Dropout: 0.1,
	}
}

// Classifier is a trained columnar model: per-group subnetworks feeding a
// shared MLP head, with train-set feature standardization.
type Classifier struct {
	groups  []Group
	params  *nn.Params
	subnets []*nn.Linear
	head    []*nn.Linear // 1 or 2 layers
	dropout float64
	mean    []float64
	std     []float64
	classes int
}

func newClassifier(groups []Group, classes int, opts TrainOpts, rng *rand.Rand) *Classifier {
	c := &Classifier{groups: groups, params: nn.NewParams(), dropout: opts.Dropout, classes: classes}
	concat := 0
	for gi, g := range groups {
		width := g.Hi - g.Lo
		sub := opts.SubDim
		if sub <= 0 || sub > width {
			sub = width
		}
		c.subnets = append(c.subnets, nn.NewLinear(c.params, fmt.Sprintf("sub%d", gi), width, sub, rng))
		concat += sub
	}
	if opts.Hidden > 0 {
		c.head = append(c.head, nn.NewLinear(c.params, "head0", concat, opts.Hidden, rng))
		c.head = append(c.head, nn.NewLinear(c.params, "head1", opts.Hidden, classes, rng))
	} else {
		c.head = append(c.head, nn.NewLinear(c.params, "head0", concat, classes, rng))
	}
	return c
}

func (c *Classifier) fitScaling(x *tensor.Matrix) {
	dim := x.Cols
	c.mean = make([]float64, dim)
	c.std = make([]float64, dim)
	if x.Rows == 0 {
		for j := range c.std {
			c.std[j] = 1
		}
		return
	}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			c.mean[j] += v
		}
	}
	for j := range c.mean {
		c.mean[j] /= float64(x.Rows)
	}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			d := v - c.mean[j]
			c.std[j] += d * d
		}
	}
	for j := range c.std {
		c.std[j] = math.Sqrt(c.std[j] / float64(x.Rows))
		if c.std[j] < 1e-6 {
			c.std[j] = 1
		}
	}
}

func (c *Classifier) scale(x *tensor.Matrix) *tensor.Matrix {
	if c.mean == nil {
		return x
	}
	out := x.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = (row[j] - c.mean[j]) / c.std[j]
		}
	}
	return out
}

// forward computes logits for (already scaled) inputs.
func (c *Classifier) forward(tape *autodiff.Tape, grads *nn.GradSet, x *autodiff.Var, rng *rand.Rand, training bool) *autodiff.Var {
	var parts []*autodiff.Var
	for gi, g := range c.groups {
		// slice columns [Lo,Hi): implemented via a gather on the transpose
		// is wasteful; instead the dataset builder keeps groups contiguous,
		// so we materialize the block directly.
		block := sliceCols(x.Value, g.Lo, g.Hi)
		in := tape.Constant(block)
		w := grads.Track(fmt.Sprintf("sub%d.w", gi), tape.Param(c.subnets[gi].W))
		b := grads.Track(fmt.Sprintf("sub%d.b", gi), tape.Param(c.subnets[gi].B))
		parts = append(parts, tape.ReLU(tape.AddRow(tape.MatMul(in, w), b)))
	}
	h := parts[0]
	if len(parts) > 1 {
		h = tape.ConcatCols(parts...)
	}
	h = tape.Dropout(h, c.dropout, rng, training)
	for li, l := range c.head {
		w := grads.Track(fmt.Sprintf("head%d.w", li), tape.Param(l.W))
		b := grads.Track(fmt.Sprintf("head%d.b", li), tape.Param(l.B))
		h = tape.AddRow(tape.MatMul(h, w), b)
		if li+1 < len(c.head) {
			h = tape.ReLU(h)
			h = tape.Dropout(h, c.dropout, rng, training)
		}
	}
	return h
}

// Logits returns raw class scores for a dataset (standardized internally).
func (c *Classifier) Logits(d *Dataset) *tensor.Matrix {
	if d.X.Rows == 0 {
		return tensor.New(0, c.classes)
	}
	x := c.scale(d.X)
	tape := autodiff.NewTape()
	out := c.forward(tape, nn.NewGradSet(), tape.Constant(x), nil, false)
	return out.Value
}

// Predict returns eval predictions for a dataset (unknown labels skipped).
func (c *Classifier) Predict(d *Dataset) []eval.Prediction {
	logits := c.Logits(d)
	var preds []eval.Prediction
	for i := 0; i < logits.Rows; i++ {
		if d.Y[i] < 0 {
			continue
		}
		preds = append(preds, eval.Prediction{
			True: d.Y[i], Pred: logits.ArgMaxRow(i), Numeric: d.Numeric[i],
		})
	}
	return preds
}

// TrainClassifier fits the grouped classifier with Adam + linear decay +
// early stopping on validation weighted F1.
func TrainClassifier(groups []Group, classes int, train, val *Dataset, opts TrainOpts) *Classifier {
	rng := rand.New(rand.NewSource(opts.Seed))
	c := newClassifier(groups, classes, opts, rng)
	c.fitScaling(train.X)
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	xTrain := c.scale(train.X)
	n := xTrain.Rows
	batch := opts.BatchSize
	if batch <= 0 {
		batch = 256
	}
	opt := nn.NewAdam(opts.LearningRate)
	stopper := nn.NewEarlyStopper(opts.Patience)
	stepsPerEpoch := (n + batch - 1) / batch
	totalSteps := opts.Epochs * stepsPerEpoch
	step := 0
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}

	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var epochLoss float64
		for at := 0; at < n; at += batch {
			end := at + batch
			if end > n {
				end = n
			}
			idx := perm[at:end]
			xb := tensor.GatherRows(xTrain, idx)
			yb := make([]int, len(idx))
			for i, r := range idx {
				yb[i] = train.Y[r]
			}
			tape := autodiff.NewTape()
			grads := nn.NewGradSet()
			logits := c.forward(tape, grads, tape.Constant(xb), rng, true)
			loss := tape.SoftmaxCrossEntropy(logits, yb, nil)
			tape.Backward(loss)
			grads.ClipByGlobalNorm(5)
			opt.SetLR(nn.LinearDecay(opts.LearningRate, step, totalSteps))
			opt.Step(c.params, grads)
			step++
			epochLoss += loss.Value.Data[0]
		}
		if val != nil && val.X.Rows > 0 {
			f1 := eval.ComputeSplit(c.Predict(val)).Overall.WeightedF1
			logf("baseline: epoch %d loss=%.4f val-wF1=%.4f", epoch, epochLoss/float64(stepsPerEpoch), f1)
			if stopper.Observe(epoch, f1, c.params) {
				break
			}
		}
	}
	if val != nil && val.X.Rows > 0 {
		stopper.RestoreBest(c.params)
	}
	return c
}

// sliceCols copies columns [lo, hi) of m into a new matrix.
func sliceCols(m *tensor.Matrix, lo, hi int) *tensor.Matrix {
	out := tensor.New(m.Rows, hi-lo)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[lo:hi])
	}
	return out
}

// wholeGroup is the single-group structure for single-input models.
func wholeGroup(dim int) []Group { return []Group{{Name: "all", Lo: 0, Hi: dim}} }

// widenF32 copies a float32 encoder vector into fresh float64 storage —
// the baselines' tape boundary (cf. core.Model.Encode).
func widenF32(v []float32) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}
