// Package autodiff implements tape-based reverse-mode automatic
// differentiation over tensor.Matrix values.
//
// A Tape records every primitive operation applied to Var values; calling
// Backward on a scalar loss Var replays the tape in reverse, accumulating
// gradients into every Var created with Param (trainable parameters) or
// reached through recorded ops. The op set is exactly what Pythagoras and
// its baselines need: dense affine layers, pointwise nonlinearities,
// dropout, row gather/scatter (the message-passing primitives of the
// heterogeneous GNN, plus the fused EdgeMix form), pooling reductions,
// concatenation, and a fused softmax-cross-entropy loss.
//
// Steady-state a tape allocates nothing: ops are opcode records in a
// reusable slice (no closures), Vars come from a block slab, and every
// intermediate value, gradient, and scratch matrix comes from a per-tape
// arena that Reset recycles. The first step through a fresh tape pays the
// allocations; every following step of the same shapes reuses them. A Tape
// is not safe for concurrent use; build one per goroutine and Reset it
// between steps.
//
// Typical usage:
//
//	tape := autodiff.NewTape()
//	x := tape.Constant(input)
//	w := tape.Param(weights)       // gradient will be accumulated
//	h := tape.ReLU(tape.MatMul(x, w))
//	loss := tape.SoftmaxCrossEntropy(h, labels, nil)
//	tape.Backward(loss)
//	// w.Grad now holds ∂loss/∂w — read it before the next Reset,
//	// or copy it out: the buffer returns to the arena.
package autodiff

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/sematype/pythagoras/internal/tensor"
)

// Var is a node in the computation graph: a value plus (after Backward) its
// gradient with respect to the loss.
//
// Vars returned by tape methods live in the tape's slab and their matrices
// in its arena: both are recycled by Reset, so neither the Var nor its
// Value/Grad may be retained across a Reset — Clone what must outlive the
// step. Matrices passed into Constant and Param stay caller-owned and are
// never recycled.
type Var struct {
	Value *tensor.Matrix
	Grad  *tensor.Matrix // nil until Backward reaches this Var
	tape  *Tape
	id    int
	// needsGrad marks Vars that are parameters or depend on parameters;
	// backward skips subtrees that cannot influence any parameter.
	needsGrad bool
}

// Shape returns the (rows, cols) of the variable's value.
func (v *Var) Shape() (int, int) { return v.Value.Rows, v.Value.Cols }

// opKind enumerates the primitive operations a tape can record. Backward
// dispatches on the kind with a switch — an indirect call through a closure
// would cost an allocation per record and defeat the arena.
type opKind uint8

const (
	opMatMul opKind = iota
	opAdd
	opAddRow
	opScale
	opMul
	opReLU
	opLeakyReLU
	opTanh
	opSigmoid
	opDropout
	opGatherRows
	opScatterAddRows
	opScaleRows
	opMeanRows
	opSumRows
	opConcatCols
	opConcatRows
	opSoftmaxXEnt
	opL2Penalty
	opSoftmax
	opEdgeMix
)

// opRecord is one recorded primitive. Fields are a union over the op set;
// each kind documents its own usage in the Backward switch. The struct
// holds only references — indices and weight slices stay caller-owned.
type opRecord struct {
	kind opKind
	out  *Var
	a, b *Var
	s    float64        // Scale factor, LeakyReLU slope, L2 λ, SoftmaxXEnt total weight
	idx  []int          // gather/scatter indices, EdgeMix src, SoftmaxXEnt labels
	idx2 []int          // EdgeMix dst
	sc   []float64      // ScaleRows scales, SoftmaxXEnt weights, EdgeMix inv-degree
	aux  *tensor.Matrix // Dropout mask, SoftmaxXEnt probs, EdgeMix h×W
	vars []*Var         // Concat inputs
}

// Tape records operations for reverse-mode differentiation. A Tape is not
// safe for concurrent use; build one per goroutine/training step.
type Tape struct {
	ops    []opRecord
	nextID int

	// arena: value/grad/scratch matrices handed out by alloc, keyed by
	// element count. used tracks every live arena matrix; Reset moves them
	// back to free. Caller-owned matrices (Constant/Param) never enter.
	free map[int][]*tensor.Matrix
	used []*tensor.Matrix

	// Var slab: fixed-capacity blocks so Var pointers stay stable while the
	// slab grows. Reset truncates each block for reuse.
	blocks [][]Var
	cur    int
}

// NewTape returns an empty tape.
func NewTape() *Tape {
	return &Tape{free: make(map[int][]*tensor.Matrix)}
}

// Reset discards all recorded operations and recycles every arena matrix
// and slab Var so the tape can be reused without re-allocating. All Vars
// and arena-backed matrices from the previous step become invalid.
func (t *Tape) Reset() {
	t.ops = t.ops[:0]
	t.nextID = 0
	for i, m := range t.used {
		t.free[len(m.Data)] = append(t.free[len(m.Data)], m)
		t.used[i] = nil
	}
	t.used = t.used[:0]
	for i := range t.blocks {
		t.blocks[i] = t.blocks[i][:0]
	}
	t.cur = 0
}

// alloc hands out a rows×cols matrix from the arena, recycling a same-size
// buffer when one is free. Contents are UNDEFINED — every element must be
// written (the Into kernels and full-overwrite loops do). Use allocZero
// when the op accumulates.
func (t *Tape) alloc(rows, cols int) *tensor.Matrix {
	n := rows * cols
	if t.free == nil {
		t.free = make(map[int][]*tensor.Matrix)
	}
	if list := t.free[n]; len(list) > 0 {
		m := list[len(list)-1]
		list[len(list)-1] = nil
		t.free[n] = list[:len(list)-1]
		m.Rows, m.Cols = rows, cols
		t.used = append(t.used, m)
		return m
	}
	m := &tensor.Matrix{Rows: rows, Cols: cols, Data: make([]float64, n)}
	t.used = append(t.used, m)
	return m
}

// allocZero is alloc with the buffer zeroed.
func (t *Tape) allocZero(rows, cols int) *tensor.Matrix {
	m := t.alloc(rows, cols)
	m.Zero()
	return m
}

// varBlockSize is the Var slab block capacity. Blocks never grow in place,
// so &block[i] stays valid as the slab extends.
const varBlockSize = 256

func (t *Tape) newVar(val *tensor.Matrix, needsGrad bool) *Var {
	for {
		if t.cur == len(t.blocks) {
			t.blocks = append(t.blocks, make([]Var, 0, varBlockSize))
		}
		blk := t.blocks[t.cur]
		if len(blk) < cap(blk) {
			blk = append(blk, Var{Value: val, tape: t, id: t.nextID, needsGrad: needsGrad})
			t.blocks[t.cur] = blk
			t.nextID++
			return &blk[len(blk)-1]
		}
		t.cur++
	}
}

// Constant wraps a matrix that requires no gradient (inputs, labels,
// precomputed frozen-LM embeddings).
func (t *Tape) Constant(m *tensor.Matrix) *Var { return t.newVar(m, false) }

// Param wraps a trainable parameter matrix; Backward accumulates into its
// Grad field. The matrix is NOT copied: the caller owns the storage (this is
// what lets an optimizer update parameters in place between steps).
func (t *Tape) Param(m *tensor.Matrix) *Var {
	return t.newVar(m, true)
}

func (t *Tape) record(r opRecord) {
	t.ops = append(t.ops, r)
}

// grad returns v.Grad, allocating a zeroed arena buffer on first touch.
func (t *Tape) grad(v *Var) *tensor.Matrix {
	if v.Grad == nil {
		v.Grad = t.allocZero(v.Value.Rows, v.Value.Cols)
	}
	return v.Grad
}

// Backward runs reverse-mode accumulation from loss, which must be a 1×1
// Var produced by this tape. Gradients accumulate (+=) into every
// needsGrad Var; call ZeroGrad / optimizer-side zeroing between steps.
func (t *Tape) Backward(loss *Var) {
	if loss.tape != t {
		panic("autodiff: Backward on foreign tape")
	}
	if loss.Value.Rows != 1 || loss.Value.Cols != 1 {
		panic(fmt.Sprintf("autodiff: Backward needs scalar loss, got %v", loss.Value))
	}
	t.grad(loss).Data[0] = 1
	for i := len(t.ops) - 1; i >= 0; i-- {
		r := &t.ops[i]
		if r.out.Grad == nil || !r.out.needsGrad {
			continue
		}
		t.backwardOp(r)
	}
}

// backwardOp applies one record's vector-Jacobian product. Accumulation
// targets come from t.grad (arena-zeroed on first touch); products fuse the
// accumulate via the AddInto kernels so no temporaries are allocated.
func (t *Tape) backwardOp(r *opRecord) {
	g := r.out.Grad
	switch r.kind {
	case opMatMul:
		if r.a.needsGrad {
			tensor.MatMulTransposeBAddInto(t.grad(r.a), g, r.b.Value)
		}
		if r.b.needsGrad {
			tensor.MatMulTransposeAAddInto(t.grad(r.b), r.a.Value, g)
		}

	case opAdd:
		if r.a.needsGrad {
			t.grad(r.a).AddInPlace(g)
		}
		if r.b.needsGrad {
			t.grad(r.b).AddInPlace(g)
		}

	case opAddRow:
		if r.a.needsGrad {
			t.grad(r.a).AddInPlace(g)
		}
		if r.b.needsGrad {
			gb := t.grad(r.b)
			for i := 0; i < g.Rows; i++ {
				row := g.Row(i)
				for j, v := range row {
					gb.Data[j] += v
				}
			}
		}

	case opScale:
		t.grad(r.a).AddScaledInPlace(g, r.s)

	case opMul:
		if r.a.needsGrad {
			ga := t.grad(r.a)
			for i, v := range r.b.Value.Data {
				ga.Data[i] += g.Data[i] * v
			}
		}
		if r.b.needsGrad {
			gb := t.grad(r.b)
			for i, v := range r.a.Value.Data {
				gb.Data[i] += g.Data[i] * v
			}
		}

	case opReLU:
		ga := t.grad(r.a)
		for i, v := range r.a.Value.Data {
			if v > 0 {
				ga.Data[i] += g.Data[i]
			}
		}

	case opLeakyReLU:
		ga := t.grad(r.a)
		for i, v := range r.a.Value.Data {
			if v > 0 {
				ga.Data[i] += g.Data[i]
			} else {
				ga.Data[i] += r.s * g.Data[i]
			}
		}

	case opTanh:
		ga := t.grad(r.a)
		for i, y := range r.out.Value.Data {
			ga.Data[i] += g.Data[i] * (1 - y*y)
		}

	case opSigmoid:
		ga := t.grad(r.a)
		for i, y := range r.out.Value.Data {
			ga.Data[i] += g.Data[i] * y * (1 - y)
		}

	case opDropout:
		ga := t.grad(r.a)
		for i, m := range r.aux.Data {
			ga.Data[i] += g.Data[i] * m
		}

	case opGatherRows:
		tensor.ScatterAddRows(t.grad(r.a), g, r.idx)

	case opScatterAddRows:
		ga := t.grad(r.a)
		for i, src := range r.idx {
			drow := ga.Row(i)
			srow := g.Row(src)
			for j, v := range srow {
				drow[j] += v
			}
		}

	case opScaleRows:
		ga := t.grad(r.a)
		for i, sv := range r.sc {
			drow := ga.Row(i)
			srow := g.Row(i)
			for j, v := range srow {
				drow[j] += sv * v
			}
		}

	case opMeanRows:
		inv := 1 / float64(r.a.Value.Rows)
		ga := t.grad(r.a)
		for i := 0; i < r.a.Value.Rows; i++ {
			row := ga.Row(i)
			for j, gv := range g.Data {
				row[j] += gv * inv
			}
		}

	case opSumRows:
		ga := t.grad(r.a)
		for i := 0; i < r.a.Value.Rows; i++ {
			row := ga.Row(i)
			for j, gv := range g.Data {
				row[j] += gv
			}
		}

	case opConcatCols:
		at := 0
		for _, v := range r.vars {
			w := v.Value.Cols
			if v.needsGrad {
				gv := t.grad(v)
				for i := 0; i < v.Value.Rows; i++ {
					src := g.Row(i)[at : at+w]
					dst := gv.Row(i)
					for j, gg := range src {
						dst[j] += gg
					}
				}
			}
			at += w
		}

	case opConcatRows:
		at := 0
		for _, v := range r.vars {
			n := v.Value.Rows
			if v.needsGrad {
				gv := t.grad(v)
				for i := 0; i < n; i++ {
					src := g.Row(at + i)
					dst := gv.Row(i)
					for j, gg := range src {
						dst[j] += gg
					}
				}
			}
			at += n
		}

	case opSoftmaxXEnt:
		gs := g.Data[0]
		gl := t.grad(r.a)
		probs, labels, weights, totalW := r.aux, r.idx, r.sc, r.s
		for i, lab := range labels {
			if lab < 0 {
				continue
			}
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			prow := probs.Row(i)
			grow := gl.Row(i)
			scale := gs * w / totalW
			for j, p := range prow {
				grow[j] += scale * p
			}
			grow[lab] -= scale
		}

	case opL2Penalty:
		t.grad(r.a).AddScaledInPlace(r.a.Value, r.s*g.Data[0])

	case opSoftmax:
		ga := t.grad(r.a)
		for i := 0; i < r.out.Value.Rows; i++ {
			y := r.out.Value.Row(i)
			gy := g.Row(i)
			var dot float64
			for j := range y {
				dot += y[j] * gy[j]
			}
			grow := ga.Row(i)
			for j := range y {
				grow[j] += y[j] * (gy[j] - dot)
			}
		}

	case opEdgeMix:
		// out = scaleRows(scatterAdd((h×w)[src] → dst), inv). Push the
		// inv-scaled output gradient back through the scatter into ghw
		// (per-node grouping — a deliberate re-association of the old
		// per-edge op chain, see DESIGN.md §12), then one fused product
		// per input: ∂h += ghw·wᵀ, ∂w += hᵀ·ghw.
		h, w := r.a, r.b
		ghw := t.allocZero(r.aux.Rows, r.aux.Cols)
		if r.sc != nil {
			for e, src := range r.idx {
				dst := r.idx2[e]
				sv := r.sc[dst]
				grow := g.Row(dst)
				hrow := ghw.Row(src)
				for j, gv := range grow {
					hrow[j] += sv * gv
				}
			}
		} else {
			for e, src := range r.idx {
				grow := g.Row(r.idx2[e])
				hrow := ghw.Row(src)
				for j, gv := range grow {
					hrow[j] += gv
				}
			}
		}
		if h.needsGrad {
			tensor.MatMulTransposeBAddInto(t.grad(h), ghw, w.Value)
		}
		if w.needsGrad {
			tensor.MatMulTransposeAAddInto(t.grad(w), h.Value, ghw)
		}

	default:
		panic(fmt.Sprintf("autodiff: unknown op kind %d", r.kind))
	}
}

// --- primitive operations ---

// MatMul returns a·b.
func (t *Tape) MatMul(a, b *Var) *Var {
	outVal := t.alloc(a.Value.Rows, b.Value.Cols)
	tensor.MatMulInto(outVal, a.Value, b.Value)
	out := t.newVar(outVal, a.needsGrad || b.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opMatMul, out: out, a: a, b: b})
	}
	return out
}

// Add returns a+b (same shape).
func (t *Tape) Add(a, b *Var) *Var {
	outVal := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.AddInto(outVal, a.Value, b.Value)
	out := t.newVar(outVal, a.needsGrad || b.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opAdd, out: out, a: a, b: b})
	}
	return out
}

// AddRow broadcasts the 1×C row vector bias over every row of a.
func (t *Tape) AddRow(a, bias *Var) *Var {
	outVal := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.AddRowBroadcastInto(outVal, a.Value, bias.Value)
	out := t.newVar(outVal, a.needsGrad || bias.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opAddRow, out: out, a: a, b: bias})
	}
	return out
}

// Scale returns s·a for scalar constant s.
func (t *Tape) Scale(a *Var, s float64) *Var {
	outVal := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.ScaleInto(outVal, a.Value, s)
	out := t.newVar(outVal, a.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opScale, out: out, a: a, s: s})
	}
	return out
}

// Mul returns the elementwise product a⊙b.
func (t *Tape) Mul(a, b *Var) *Var {
	outVal := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.MulInto(outVal, a.Value, b.Value)
	out := t.newVar(outVal, a.needsGrad || b.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opMul, out: out, a: a, b: b})
	}
	return out
}

// ReLU applies max(0, x) elementwise.
func (t *Tape) ReLU(a *Var) *Var {
	outVal := t.alloc(a.Value.Rows, a.Value.Cols)
	for i, v := range a.Value.Data {
		if v > 0 {
			outVal.Data[i] = v
		} else {
			outVal.Data[i] = 0
		}
	}
	out := t.newVar(outVal, a.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opReLU, out: out, a: a})
	}
	return out
}

// LeakyReLU applies x>0 ? x : slope·x elementwise.
func (t *Tape) LeakyReLU(a *Var, slope float64) *Var {
	outVal := t.alloc(a.Value.Rows, a.Value.Cols)
	for i, v := range a.Value.Data {
		if v > 0 {
			outVal.Data[i] = v
		} else {
			outVal.Data[i] = slope * v
		}
	}
	out := t.newVar(outVal, a.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opLeakyReLU, out: out, a: a, s: slope})
	}
	return out
}

// Tanh applies tanh elementwise.
func (t *Tape) Tanh(a *Var) *Var {
	outVal := t.alloc(a.Value.Rows, a.Value.Cols)
	for i, v := range a.Value.Data {
		outVal.Data[i] = math.Tanh(v)
	}
	out := t.newVar(outVal, a.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opTanh, out: out, a: a})
	}
	return out
}

// Sigmoid applies 1/(1+e^-x) elementwise.
func (t *Tape) Sigmoid(a *Var) *Var {
	outVal := t.alloc(a.Value.Rows, a.Value.Cols)
	for i, v := range a.Value.Data {
		outVal.Data[i] = 1 / (1 + math.Exp(-v))
	}
	out := t.newVar(outVal, a.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opSigmoid, out: out, a: a})
	}
	return out
}

// Dropout zeroes each element with probability p and scales survivors by
// 1/(1-p) (inverted dropout). When training is false it is the identity.
func (t *Tape) Dropout(a *Var, p float64, rng *rand.Rand, training bool) *Var {
	if !training || p <= 0 {
		return a
	}
	if p >= 1 {
		panic("autodiff: dropout probability must be < 1")
	}
	mask := t.alloc(a.Value.Rows, a.Value.Cols)
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	keep := 1 / (1 - p)
	for i, v := range a.Value.Data {
		if rng.Float64() < p {
			mask.Data[i] = 0
			val.Data[i] = 0
		} else {
			mask.Data[i] = keep
			val.Data[i] = v * keep
		}
	}
	out := t.newVar(val, a.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opDropout, out: out, a: a, aux: mask})
	}
	return out
}

// GatherRows selects rows of a by index: out.Row(i) = a.Row(idx[i]). idx is
// retained by reference until the next Reset; callers must not mutate it.
func (t *Tape) GatherRows(a *Var, idx []int) *Var {
	outVal := t.alloc(len(idx), a.Value.Cols)
	tensor.GatherRowsInto(outVal, a.Value, idx)
	out := t.newVar(outVal, a.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opGatherRows, out: out, a: a, idx: idx})
	}
	return out
}

// ScatterAddRows produces an outRows×Cols matrix where row idx[i] receives
// the sum of all a rows mapped to it. This is the message-aggregation
// primitive of the GNN.
func (t *Tape) ScatterAddRows(a *Var, idx []int, outRows int) *Var {
	val := t.allocZero(outRows, a.Value.Cols)
	tensor.ScatterAddRows(val, a.Value, idx)
	out := t.newVar(val, a.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opScatterAddRows, out: out, a: a, idx: idx})
	}
	return out
}

// ScaleRows multiplies row i of a by s[i] (used for degree normalization).
func (t *Tape) ScaleRows(a *Var, s []float64) *Var {
	outVal := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.ScaleRowsInto(outVal, a.Value, s)
	out := t.newVar(outVal, a.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opScaleRows, out: out, a: a, sc: s})
	}
	return out
}

// EdgeMix is the fused message-passing primitive of the heterogeneous GNN:
// for one edge type it computes scaleRows(scatterAdd((h×w)[src[e]] into
// dst[e]), inv) in a single pass — the h×w product runs once over nodes
// instead of once per edge (gather commutes with the right-multiplication),
// and no gathered-copy, message, or aggregate temporaries are materialized.
// outRows is the node count of the output; inv may be nil for no
// normalization. src, dst, and inv are retained by reference until Reset.
// Forward values are bit-identical to the unfused
// ScaleRows(ScatterAddRows(MatMul(GatherRows(h), w))) chain; gradient
// accumulation is re-associated per node (see DESIGN.md §12).
func (t *Tape) EdgeMix(h, w *Var, src, dst []int, outRows int, inv []float64) *Var {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("autodiff: EdgeMix %d src vs %d dst", len(src), len(dst)))
	}
	if inv != nil && len(inv) != outRows {
		panic(fmt.Sprintf("autodiff: EdgeMix %d inv-degrees for %d rows", len(inv), outRows))
	}
	hw := t.alloc(h.Value.Rows, w.Value.Cols)
	tensor.MatMulInto(hw, h.Value, w.Value)
	val := t.allocZero(outRows, w.Value.Cols)
	for e, s := range src {
		drow := val.Row(dst[e])
		srow := hw.Row(s)
		for j, v := range srow {
			drow[j] += v
		}
	}
	if inv != nil {
		tensor.ScaleRowsInto(val, val, inv)
	}
	out := t.newVar(val, h.needsGrad || w.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opEdgeMix, out: out, a: h, b: w, idx: src, idx2: dst, sc: inv, aux: hw})
	}
	return out
}

// MeanRows reduces a to its 1×C column-mean vector.
func (t *Tape) MeanRows(a *Var) *Var {
	outVal := t.alloc(1, a.Value.Cols)
	tensor.MeanRowsInto(outVal, a.Value)
	out := t.newVar(outVal, a.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opMeanRows, out: out, a: a})
	}
	return out
}

// SumRows reduces a to its 1×C column-sum vector.
func (t *Tape) SumRows(a *Var) *Var {
	outVal := t.alloc(1, a.Value.Cols)
	tensor.SumRowsInto(outVal, a.Value)
	out := t.newVar(outVal, a.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opSumRows, out: out, a: a})
	}
	return out
}

// ConcatCols concatenates variables horizontally (shared row count). The
// vars slice is retained by reference until Reset.
func (t *Tape) ConcatCols(vars ...*Var) *Var {
	if len(vars) == 0 {
		return t.newVar(t.alloc(0, 0), false)
	}
	rows, cols, needs := vars[0].Value.Rows, 0, false
	for _, v := range vars {
		if v.Value.Rows != rows {
			panic(fmt.Sprintf("autodiff: ConcatCols row mismatch %d vs %d", v.Value.Rows, rows))
		}
		cols += v.Value.Cols
		needs = needs || v.needsGrad
	}
	outVal := t.alloc(rows, cols)
	for i := 0; i < rows; i++ {
		at := 0
		orow := outVal.Row(i)
		for _, v := range vars {
			w := v.Value.Cols
			copy(orow[at:at+w], v.Value.Row(i))
			at += w
		}
	}
	out := t.newVar(outVal, needs)
	if out.needsGrad {
		t.record(opRecord{kind: opConcatCols, out: out, vars: vars})
	}
	return out
}

// ConcatRows stacks variables vertically (shared column count). The vars
// slice is retained by reference until Reset.
func (t *Tape) ConcatRows(vars ...*Var) *Var {
	if len(vars) == 0 {
		return t.newVar(t.alloc(0, 0), false)
	}
	cols, rows, needs := vars[0].Value.Cols, 0, false
	for _, v := range vars {
		if v.Value.Cols != cols {
			panic(fmt.Sprintf("autodiff: ConcatRows col mismatch %d vs %d", v.Value.Cols, cols))
		}
		rows += v.Value.Rows
		needs = needs || v.needsGrad
	}
	outVal := t.alloc(rows, cols)
	at := 0
	for _, v := range vars {
		copy(outVal.Data[at:at+len(v.Value.Data)], v.Value.Data)
		at += len(v.Value.Data)
	}
	out := t.newVar(outVal, needs)
	if out.needsGrad {
		t.record(opRecord{kind: opConcatRows, out: out, vars: vars})
	}
	return out
}

// SoftmaxCrossEntropy computes mean cross-entropy between row-wise softmax
// of logits and integer labels. Rows with label < 0 are ignored (masked).
// weights, if non-nil, rescales each row's contribution (e.g. class
// re-weighting); it must have len == logits.Rows. labels and weights are
// retained by reference until Reset.
// Returns a 1×1 loss Var.
func (t *Tape) SoftmaxCrossEntropy(logits *Var, labels []int, weights []float64) *Var {
	n, c := logits.Value.Rows, logits.Value.Cols
	if len(labels) != n {
		panic(fmt.Sprintf("autodiff: %d labels for %d rows", len(labels), n))
	}
	probs := t.allocZero(n, c)
	var loss float64
	var totalW float64
	for i := 0; i < n; i++ {
		if labels[i] < 0 {
			continue
		}
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		row := logits.Value.Row(i)
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var z float64
		prow := probs.Row(i)
		for j, v := range row {
			e := math.Exp(v - mx)
			prow[j] = e
			z += e
		}
		for j := range prow {
			prow[j] /= z
		}
		loss += -w * math.Log(math.Max(prow[labels[i]], 1e-12))
		totalW += w
	}
	if totalW == 0 {
		totalW = 1
	}
	loss /= totalW
	outVal := t.alloc(1, 1)
	outVal.Data[0] = loss
	out := t.newVar(outVal, logits.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opSoftmaxXEnt, out: out, a: logits, idx: labels, sc: weights, aux: probs, s: totalW})
	}
	return out
}

// L2Penalty returns 0.5·λ·‖a‖² as a 1×1 Var (weight decay as an explicit
// loss term).
func (t *Tape) L2Penalty(a *Var, lambda float64) *Var {
	var s float64
	for _, v := range a.Value.Data {
		s += v * v
	}
	outVal := t.alloc(1, 1)
	outVal.Data[0] = 0.5 * lambda * s
	out := t.newVar(outVal, a.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opL2Penalty, out: out, a: a, s: lambda})
	}
	return out
}

// Softmax returns the row-wise softmax of a (forward convenience for
// inference paths; gradients flow through it correctly as well).
func (t *Tape) Softmax(a *Var) *Var {
	n, c := a.Value.Rows, a.Value.Cols
	val := t.alloc(n, c)
	for i := 0; i < n; i++ {
		row := a.Value.Row(i)
		orow := val.Row(i)
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var z float64
		for j, v := range row {
			e := math.Exp(v - mx)
			orow[j] = e
			z += e
		}
		for j := range orow {
			orow[j] /= z
		}
	}
	out := t.newVar(val, a.needsGrad)
	if out.needsGrad {
		t.record(opRecord{kind: opSoftmax, out: out, a: a})
	}
	return out
}
