// Package autodiff implements tape-based reverse-mode automatic
// differentiation over tensor.Matrix values.
//
// A Tape records every primitive operation applied to Var values; calling
// Backward on a scalar loss Var replays the tape in reverse, accumulating
// gradients into every Var created with Param (trainable parameters) or
// reached through recorded ops. The op set is exactly what Pythagoras and
// its baselines need: dense affine layers, pointwise nonlinearities,
// dropout, row gather/scatter (the message-passing primitives of the
// heterogeneous GNN), pooling reductions, concatenation, and a fused
// softmax-cross-entropy loss.
//
// Typical usage:
//
//	tape := autodiff.NewTape()
//	x := tape.Constant(input)
//	w := tape.Param(weights)       // gradient will be accumulated
//	h := tape.ReLU(tape.MatMul(x, w))
//	loss := tape.SoftmaxCrossEntropy(h, labels, nil)
//	tape.Backward(loss)
//	// w.Grad now holds ∂loss/∂w
package autodiff

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/sematype/pythagoras/internal/tensor"
)

// Var is a node in the computation graph: a value plus (after Backward) its
// gradient with respect to the loss.
type Var struct {
	Value *tensor.Matrix
	Grad  *tensor.Matrix // nil until Backward reaches this Var
	tape  *Tape
	id    int
	// needsGrad marks Vars that are parameters or depend on parameters;
	// backward skips subtrees that cannot influence any parameter.
	needsGrad bool
}

// Shape returns the (rows, cols) of the variable's value.
func (v *Var) Shape() (int, int) { return v.Value.Rows, v.Value.Cols }

type opRecord struct {
	output   *Var
	backward func()
}

// Tape records operations for reverse-mode differentiation. A Tape is not
// safe for concurrent use; build one per goroutine/training step.
type Tape struct {
	ops    []opRecord
	nextID int
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset discards all recorded operations so the tape can be reused,
// avoiding re-allocation in tight training loops.
func (t *Tape) Reset() {
	t.ops = t.ops[:0]
	t.nextID = 0
}

func (t *Tape) newVar(val *tensor.Matrix, needsGrad bool) *Var {
	v := &Var{Value: val, tape: t, id: t.nextID, needsGrad: needsGrad}
	t.nextID++
	return v
}

// Constant wraps a matrix that requires no gradient (inputs, labels,
// precomputed frozen-LM embeddings).
func (t *Tape) Constant(m *tensor.Matrix) *Var { return t.newVar(m, false) }

// Param wraps a trainable parameter matrix; Backward accumulates into its
// Grad field. The matrix is NOT copied: the caller owns the storage (this is
// what lets an optimizer update parameters in place between steps).
func (t *Tape) Param(m *tensor.Matrix) *Var {
	v := t.newVar(m, true)
	return v
}

func (t *Tape) record(out *Var, backward func()) {
	t.ops = append(t.ops, opRecord{output: out, backward: backward})
}

// ensureGrad allocates v.Grad on demand.
func ensureGrad(v *Var) *tensor.Matrix {
	if v.Grad == nil {
		v.Grad = tensor.New(v.Value.Rows, v.Value.Cols)
	}
	return v.Grad
}

// Backward runs reverse-mode accumulation from loss, which must be a 1×1
// Var produced by this tape. Gradients accumulate (+=) into every
// needsGrad Var; call ZeroGrad / optimizer-side zeroing between steps.
func (t *Tape) Backward(loss *Var) {
	if loss.tape != t {
		panic("autodiff: Backward on foreign tape")
	}
	if loss.Value.Rows != 1 || loss.Value.Cols != 1 {
		panic(fmt.Sprintf("autodiff: Backward needs scalar loss, got %v", loss.Value))
	}
	ensureGrad(loss).Data[0] = 1
	for i := len(t.ops) - 1; i >= 0; i-- {
		op := t.ops[i]
		if op.output.Grad == nil || !op.output.needsGrad {
			continue
		}
		op.backward()
	}
}

// --- primitive operations ---

// MatMul returns a·b.
func (t *Tape) MatMul(a, b *Var) *Var {
	outVal := tensor.MatMul(a.Value, b.Value)
	out := t.newVar(outVal, a.needsGrad || b.needsGrad)
	if out.needsGrad {
		t.record(out, func() {
			g := out.Grad
			if a.needsGrad {
				ensureGrad(a).AddInPlace(tensor.MatMulTransposeB(g, b.Value))
			}
			if b.needsGrad {
				ensureGrad(b).AddInPlace(tensor.MatMulTransposeA(a.Value, g))
			}
		})
	}
	return out
}

// Add returns a+b (same shape).
func (t *Tape) Add(a, b *Var) *Var {
	out := t.newVar(tensor.Add(a.Value, b.Value), a.needsGrad || b.needsGrad)
	if out.needsGrad {
		t.record(out, func() {
			if a.needsGrad {
				ensureGrad(a).AddInPlace(out.Grad)
			}
			if b.needsGrad {
				ensureGrad(b).AddInPlace(out.Grad)
			}
		})
	}
	return out
}

// AddRow broadcasts the 1×C row vector bias over every row of a.
func (t *Tape) AddRow(a, bias *Var) *Var {
	out := t.newVar(tensor.AddRowBroadcast(a.Value, bias.Value), a.needsGrad || bias.needsGrad)
	if out.needsGrad {
		t.record(out, func() {
			if a.needsGrad {
				ensureGrad(a).AddInPlace(out.Grad)
			}
			if bias.needsGrad {
				ensureGrad(bias).AddInPlace(tensor.SumRows(out.Grad))
			}
		})
	}
	return out
}

// Scale returns s·a for scalar constant s.
func (t *Tape) Scale(a *Var, s float64) *Var {
	out := t.newVar(a.Value.Scale(s), a.needsGrad)
	if out.needsGrad {
		t.record(out, func() {
			ensureGrad(a).AddScaledInPlace(out.Grad, s)
		})
	}
	return out
}

// Mul returns the elementwise product a⊙b.
func (t *Tape) Mul(a, b *Var) *Var {
	out := t.newVar(tensor.Mul(a.Value, b.Value), a.needsGrad || b.needsGrad)
	if out.needsGrad {
		t.record(out, func() {
			if a.needsGrad {
				ensureGrad(a).AddInPlace(tensor.Mul(out.Grad, b.Value))
			}
			if b.needsGrad {
				ensureGrad(b).AddInPlace(tensor.Mul(out.Grad, a.Value))
			}
		})
	}
	return out
}

// ReLU applies max(0, x) elementwise.
func (t *Tape) ReLU(a *Var) *Var {
	out := t.newVar(a.Value.Apply(func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	}), a.needsGrad)
	if out.needsGrad {
		t.record(out, func() {
			ga := ensureGrad(a)
			for i, v := range a.Value.Data {
				if v > 0 {
					ga.Data[i] += out.Grad.Data[i]
				}
			}
		})
	}
	return out
}

// LeakyReLU applies x>0 ? x : slope·x elementwise.
func (t *Tape) LeakyReLU(a *Var, slope float64) *Var {
	out := t.newVar(a.Value.Apply(func(v float64) float64 {
		if v > 0 {
			return v
		}
		return slope * v
	}), a.needsGrad)
	if out.needsGrad {
		t.record(out, func() {
			ga := ensureGrad(a)
			for i, v := range a.Value.Data {
				if v > 0 {
					ga.Data[i] += out.Grad.Data[i]
				} else {
					ga.Data[i] += slope * out.Grad.Data[i]
				}
			}
		})
	}
	return out
}

// Tanh applies tanh elementwise.
func (t *Tape) Tanh(a *Var) *Var {
	out := t.newVar(a.Value.Apply(math.Tanh), a.needsGrad)
	if out.needsGrad {
		t.record(out, func() {
			ga := ensureGrad(a)
			for i, y := range out.Value.Data {
				ga.Data[i] += out.Grad.Data[i] * (1 - y*y)
			}
		})
	}
	return out
}

// Sigmoid applies 1/(1+e^-x) elementwise.
func (t *Tape) Sigmoid(a *Var) *Var {
	out := t.newVar(a.Value.Apply(func(v float64) float64 {
		return 1 / (1 + math.Exp(-v))
	}), a.needsGrad)
	if out.needsGrad {
		t.record(out, func() {
			ga := ensureGrad(a)
			for i, y := range out.Value.Data {
				ga.Data[i] += out.Grad.Data[i] * y * (1 - y)
			}
		})
	}
	return out
}

// Dropout zeroes each element with probability p and scales survivors by
// 1/(1-p) (inverted dropout). When training is false it is the identity.
func (t *Tape) Dropout(a *Var, p float64, rng *rand.Rand, training bool) *Var {
	if !training || p <= 0 {
		return a
	}
	if p >= 1 {
		panic("autodiff: dropout probability must be < 1")
	}
	mask := make([]float64, len(a.Value.Data))
	keep := 1 / (1 - p)
	val := a.Value.Clone()
	for i := range mask {
		if rng.Float64() < p {
			mask[i] = 0
			val.Data[i] = 0
		} else {
			mask[i] = keep
			val.Data[i] *= keep
		}
	}
	out := t.newVar(val, a.needsGrad)
	if out.needsGrad {
		t.record(out, func() {
			ga := ensureGrad(a)
			for i, m := range mask {
				ga.Data[i] += out.Grad.Data[i] * m
			}
		})
	}
	return out
}

// GatherRows selects rows of a by index: out.Row(i) = a.Row(idx[i]).
func (t *Tape) GatherRows(a *Var, idx []int) *Var {
	out := t.newVar(tensor.GatherRows(a.Value, idx), a.needsGrad)
	if out.needsGrad {
		t.record(out, func() {
			tensor.ScatterAddRows(ensureGrad(a), out.Grad, idx)
		})
	}
	return out
}

// ScatterAddRows produces an outRows×Cols matrix where row idx[i] receives
// the sum of all a rows mapped to it. This is the message-aggregation
// primitive of the GNN.
func (t *Tape) ScatterAddRows(a *Var, idx []int, outRows int) *Var {
	val := tensor.New(outRows, a.Value.Cols)
	tensor.ScatterAddRows(val, a.Value, idx)
	out := t.newVar(val, a.needsGrad)
	if out.needsGrad {
		t.record(out, func() {
			ensureGrad(a).AddInPlace(tensor.GatherRows(out.Grad, idx))
		})
	}
	return out
}

// ScaleRows multiplies row i of a by s[i] (used for degree normalization).
func (t *Tape) ScaleRows(a *Var, s []float64) *Var {
	out := t.newVar(tensor.ScaleRows(a.Value, s), a.needsGrad)
	if out.needsGrad {
		t.record(out, func() {
			ensureGrad(a).AddInPlace(tensor.ScaleRows(out.Grad, s))
		})
	}
	return out
}

// MeanRows reduces a to its 1×C column-mean vector.
func (t *Tape) MeanRows(a *Var) *Var {
	out := t.newVar(tensor.MeanRows(a.Value), a.needsGrad)
	if out.needsGrad {
		t.record(out, func() {
			inv := 1 / float64(a.Value.Rows)
			ga := ensureGrad(a)
			for i := 0; i < a.Value.Rows; i++ {
				row := ga.Row(i)
				for j, g := range out.Grad.Data {
					row[j] += g * inv
				}
			}
		})
	}
	return out
}

// SumRows reduces a to its 1×C column-sum vector.
func (t *Tape) SumRows(a *Var) *Var {
	out := t.newVar(tensor.SumRows(a.Value), a.needsGrad)
	if out.needsGrad {
		t.record(out, func() {
			ga := ensureGrad(a)
			for i := 0; i < a.Value.Rows; i++ {
				row := ga.Row(i)
				for j, g := range out.Grad.Data {
					row[j] += g
				}
			}
		})
	}
	return out
}

// ConcatCols concatenates variables horizontally (shared row count).
func (t *Tape) ConcatCols(vars ...*Var) *Var {
	vals := make([]*tensor.Matrix, len(vars))
	needs := false
	for i, v := range vars {
		vals[i] = v.Value
		needs = needs || v.needsGrad
	}
	out := t.newVar(tensor.ConcatCols(vals...), needs)
	if out.needsGrad {
		t.record(out, func() {
			at := 0
			for _, v := range vars {
				w := v.Value.Cols
				if v.needsGrad {
					gv := ensureGrad(v)
					for i := 0; i < v.Value.Rows; i++ {
						src := out.Grad.Row(i)[at : at+w]
						dst := gv.Row(i)
						for j, g := range src {
							dst[j] += g
						}
					}
				}
				at += w
			}
		})
	}
	return out
}

// ConcatRows stacks variables vertically (shared column count).
func (t *Tape) ConcatRows(vars ...*Var) *Var {
	vals := make([]*tensor.Matrix, len(vars))
	needs := false
	for i, v := range vars {
		vals[i] = v.Value
		needs = needs || v.needsGrad
	}
	out := t.newVar(tensor.ConcatRows(vals...), needs)
	if out.needsGrad {
		t.record(out, func() {
			at := 0
			for _, v := range vars {
				n := v.Value.Rows
				if v.needsGrad {
					gv := ensureGrad(v)
					for i := 0; i < n; i++ {
						src := out.Grad.Row(at + i)
						dst := gv.Row(i)
						for j, g := range src {
							dst[j] += g
						}
					}
				}
				at += n
			}
		})
	}
	return out
}

// SoftmaxCrossEntropy computes mean cross-entropy between row-wise softmax
// of logits and integer labels. Rows with label < 0 are ignored (masked).
// weights, if non-nil, rescales each row's contribution (e.g. class
// re-weighting); it must have len == logits.Rows.
// Returns a 1×1 loss Var.
func (t *Tape) SoftmaxCrossEntropy(logits *Var, labels []int, weights []float64) *Var {
	n, c := logits.Value.Rows, logits.Value.Cols
	if len(labels) != n {
		panic(fmt.Sprintf("autodiff: %d labels for %d rows", len(labels), n))
	}
	probs := tensor.New(n, c)
	var loss float64
	var totalW float64
	for i := 0; i < n; i++ {
		if labels[i] < 0 {
			continue
		}
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		row := logits.Value.Row(i)
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var z float64
		prow := probs.Row(i)
		for j, v := range row {
			e := math.Exp(v - mx)
			prow[j] = e
			z += e
		}
		for j := range prow {
			prow[j] /= z
		}
		loss += -w * math.Log(math.Max(prow[labels[i]], 1e-12))
		totalW += w
	}
	if totalW == 0 {
		totalW = 1
	}
	loss /= totalW
	out := t.newVar(tensor.FromSlice(1, 1, []float64{loss}), logits.needsGrad)
	if out.needsGrad {
		t.record(out, func() {
			g := out.Grad.Data[0]
			gl := ensureGrad(logits)
			for i := 0; i < n; i++ {
				if labels[i] < 0 {
					continue
				}
				w := 1.0
				if weights != nil {
					w = weights[i]
				}
				prow := probs.Row(i)
				grow := gl.Row(i)
				scale := g * w / totalW
				for j, p := range prow {
					grow[j] += scale * p
				}
				grow[labels[i]] -= scale
			}
		})
	}
	return out
}

// L2Penalty returns 0.5·λ·‖a‖² as a 1×1 Var (weight decay as an explicit
// loss term).
func (t *Tape) L2Penalty(a *Var, lambda float64) *Var {
	var s float64
	for _, v := range a.Value.Data {
		s += v * v
	}
	out := t.newVar(tensor.FromSlice(1, 1, []float64{0.5 * lambda * s}), a.needsGrad)
	if out.needsGrad {
		t.record(out, func() {
			ensureGrad(a).AddScaledInPlace(a.Value, lambda*out.Grad.Data[0])
		})
	}
	return out
}

// Softmax returns the row-wise softmax of a (forward convenience for
// inference paths; gradients flow through it correctly as well).
func (t *Tape) Softmax(a *Var) *Var {
	n, c := a.Value.Rows, a.Value.Cols
	val := tensor.New(n, c)
	for i := 0; i < n; i++ {
		row := a.Value.Row(i)
		orow := val.Row(i)
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var z float64
		for j, v := range row {
			e := math.Exp(v - mx)
			orow[j] = e
			z += e
		}
		for j := range orow {
			orow[j] /= z
		}
	}
	out := t.newVar(val, a.needsGrad)
	if out.needsGrad {
		t.record(out, func() {
			ga := ensureGrad(a)
			for i := 0; i < n; i++ {
				y := out.Value.Row(i)
				gy := out.Grad.Row(i)
				var dot float64
				for j := range y {
					dot += y[j] * gy[j]
				}
				grow := ga.Row(i)
				for j := range y {
					grow[j] += y[j] * (gy[j] - dot)
				}
			}
		})
	}
	return out
}
