package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sematype/pythagoras/internal/tensor"
)

// numericalGrad estimates ∂f/∂p elementwise by central differences, where f
// rebuilds the computation from scratch each call.
func numericalGrad(p *tensor.Matrix, f func() float64) *tensor.Matrix {
	const h = 1e-6
	g := tensor.New(p.Rows, p.Cols)
	for i := range p.Data {
		orig := p.Data[i]
		p.Data[i] = orig + h
		fp := f()
		p.Data[i] = orig - h
		fm := f()
		p.Data[i] = orig
		g.Data[i] = (fp - fm) / (2 * h)
	}
	return g
}

func randMat(rng *rand.Rand, r, c int) *tensor.Matrix {
	m := tensor.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func checkGrad(t *testing.T, name string, p *tensor.Matrix, analytic *tensor.Matrix, f func() float64) {
	t.Helper()
	num := numericalGrad(p, f)
	for i := range num.Data {
		diff := math.Abs(num.Data[i] - analytic.Data[i])
		scale := math.Max(1, math.Max(math.Abs(num.Data[i]), math.Abs(analytic.Data[i])))
		if diff/scale > 1e-4 {
			t.Fatalf("%s: grad[%d] analytic=%g numerical=%g", name, i, analytic.Data[i], num.Data[i])
		}
	}
}

func TestMatMulGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 3, 4)
	b := randMat(rng, 4, 2)
	labels := []int{0, 1, 1}

	run := func() (*Var, *Var, *Var) {
		tape := NewTape()
		va, vb := tape.Param(a), tape.Param(b)
		out := tape.MatMul(va, vb)
		loss := tape.SoftmaxCrossEntropy(out, labels, nil)
		tape.Backward(loss)
		return va, vb, loss
	}
	va, vb, _ := run()
	lossOf := func() float64 {
		tape := NewTape()
		out := tape.MatMul(tape.Constant(a), tape.Constant(b))
		return tape.SoftmaxCrossEntropy(out, labels, nil).Value.Data[0]
	}
	checkGrad(t, "matmul/a", a, va.Grad, lossOf)
	checkGrad(t, "matmul/b", b, vb.Grad, lossOf)
}

func TestAddRowGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randMat(rng, 4, 3)
	bias := randMat(rng, 1, 3)
	labels := []int{0, 2, 1, 0}

	tape := NewTape()
	vb := tape.Param(bias)
	out := tape.AddRow(tape.Constant(x), vb)
	loss := tape.SoftmaxCrossEntropy(out, labels, nil)
	tape.Backward(loss)

	lossOf := func() float64 {
		tp := NewTape()
		o := tp.AddRow(tp.Constant(x), tp.Constant(bias))
		return tp.SoftmaxCrossEntropy(o, labels, nil).Value.Data[0]
	}
	checkGrad(t, "addrow/bias", bias, vb.Grad, lossOf)
}

func TestReLUGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randMat(rng, 5, 3)
	labels := []int{0, 1, 2, 0, 1}
	tape := NewTape()
	vx := tape.Param(x)
	loss := tape.SoftmaxCrossEntropy(tape.ReLU(vx), labels, nil)
	tape.Backward(loss)
	lossOf := func() float64 {
		tp := NewTape()
		return tp.SoftmaxCrossEntropy(tp.ReLU(tp.Constant(x)), labels, nil).Value.Data[0]
	}
	checkGrad(t, "relu/x", x, vx.Grad, lossOf)
}

func TestTanhSigmoidLeakyGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randMat(rng, 3, 4)
	labels := []int{0, 3, 2}
	type act struct {
		name string
		fwd  func(tp *Tape, v *Var) *Var
	}
	for _, a := range []act{
		{"tanh", func(tp *Tape, v *Var) *Var { return tp.Tanh(v) }},
		{"sigmoid", func(tp *Tape, v *Var) *Var { return tp.Sigmoid(v) }},
		{"leaky", func(tp *Tape, v *Var) *Var { return tp.LeakyReLU(v, 0.1) }},
	} {
		tape := NewTape()
		vx := tape.Param(x)
		loss := tape.SoftmaxCrossEntropy(a.fwd(tape, vx), labels, nil)
		tape.Backward(loss)
		lossOf := func() float64 {
			tp := NewTape()
			return tp.SoftmaxCrossEntropy(a.fwd(tp, tp.Constant(x)), labels, nil).Value.Data[0]
		}
		checkGrad(t, a.name, x, vx.Grad, lossOf)
	}
}

func TestGatherScatterGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randMat(rng, 4, 3)
	idx := []int{2, 0, 2, 1, 3}
	labels := []int{0, 1, 2, 0, 1}
	tape := NewTape()
	vx := tape.Param(x)
	loss := tape.SoftmaxCrossEntropy(tape.GatherRows(vx, idx), labels, nil)
	tape.Backward(loss)
	lossOf := func() float64 {
		tp := NewTape()
		return tp.SoftmaxCrossEntropy(tp.GatherRows(tp.Constant(x), idx), labels, nil).Value.Data[0]
	}
	checkGrad(t, "gather/x", x, vx.Grad, lossOf)

	// scatter: 5 source rows into 3 dest rows
	src := randMat(rng, 5, 3)
	sidx := []int{0, 2, 1, 0, 2}
	slabels := []int{1, 0, 2}
	tape2 := NewTape()
	vs := tape2.Param(src)
	loss2 := tape2.SoftmaxCrossEntropy(tape2.ScatterAddRows(vs, sidx, 3), slabels, nil)
	tape2.Backward(loss2)
	lossOf2 := func() float64 {
		tp := NewTape()
		return tp.SoftmaxCrossEntropy(tp.ScatterAddRows(tp.Constant(src), sidx, 3), slabels, nil).Value.Data[0]
	}
	checkGrad(t, "scatter/src", src, vs.Grad, lossOf2)
}

func TestScaleRowsGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randMat(rng, 3, 3)
	s := []float64{0.5, 2, 1.5}
	labels := []int{0, 1, 2}
	tape := NewTape()
	vx := tape.Param(x)
	loss := tape.SoftmaxCrossEntropy(tape.ScaleRows(vx, s), labels, nil)
	tape.Backward(loss)
	lossOf := func() float64 {
		tp := NewTape()
		return tp.SoftmaxCrossEntropy(tp.ScaleRows(tp.Constant(x), s), labels, nil).Value.Data[0]
	}
	checkGrad(t, "scalerows/x", x, vx.Grad, lossOf)
}

func TestMeanSumRowsGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randMat(rng, 4, 3)
	labels := []int{1}
	for _, mode := range []string{"mean", "sum"} {
		fwd := func(tp *Tape, v *Var) *Var {
			if mode == "mean" {
				return tp.MeanRows(v)
			}
			return tp.SumRows(v)
		}
		tape := NewTape()
		vx := tape.Param(x)
		loss := tape.SoftmaxCrossEntropy(fwd(tape, vx), labels, nil)
		tape.Backward(loss)
		lossOf := func() float64 {
			tp := NewTape()
			return tp.SoftmaxCrossEntropy(fwd(tp, tp.Constant(x)), labels, nil).Value.Data[0]
		}
		checkGrad(t, mode, x, vx.Grad, lossOf)
	}
}

func TestConcatColsGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMat(rng, 2, 2)
	b := randMat(rng, 2, 3)
	labels := []int{0, 4}
	tape := NewTape()
	va, vb := tape.Param(a), tape.Param(b)
	loss := tape.SoftmaxCrossEntropy(tape.ConcatCols(va, vb), labels, nil)
	tape.Backward(loss)
	lossOf := func() float64 {
		tp := NewTape()
		return tp.SoftmaxCrossEntropy(tp.ConcatCols(tp.Constant(a), tp.Constant(b)), labels, nil).Value.Data[0]
	}
	checkGrad(t, "concatcols/a", a, va.Grad, lossOf)
	checkGrad(t, "concatcols/b", b, vb.Grad, lossOf)
}

func TestConcatRowsGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randMat(rng, 2, 3)
	b := randMat(rng, 3, 3)
	labels := []int{0, 1, 2, 0, 1}
	tape := NewTape()
	va, vb := tape.Param(a), tape.Param(b)
	loss := tape.SoftmaxCrossEntropy(tape.ConcatRows(va, vb), labels, nil)
	tape.Backward(loss)
	lossOf := func() float64 {
		tp := NewTape()
		return tp.SoftmaxCrossEntropy(tp.ConcatRows(tp.Constant(a), tp.Constant(b)), labels, nil).Value.Data[0]
	}
	checkGrad(t, "concatrows/a", a, va.Grad, lossOf)
	checkGrad(t, "concatrows/b", b, vb.Grad, lossOf)
}

func TestSoftmaxCrossEntropyMaskedAndWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randMat(rng, 4, 3)
	labels := []int{0, -1, 2, 1} // row 1 masked
	weights := []float64{1, 1, 2, 0.5}
	tape := NewTape()
	vx := tape.Param(x)
	loss := tape.SoftmaxCrossEntropy(vx, labels, weights)
	tape.Backward(loss)
	lossOf := func() float64 {
		tp := NewTape()
		return tp.SoftmaxCrossEntropy(tp.Constant(x), labels, weights).Value.Data[0]
	}
	checkGrad(t, "xent/weighted", x, vx.Grad, lossOf)
	// masked row must get zero gradient
	for j := 0; j < 3; j++ {
		if vx.Grad.At(1, j) != 0 {
			t.Fatal("masked row received gradient")
		}
	}
}

func TestSoftmaxCrossEntropyValue(t *testing.T) {
	// Uniform logits over C classes → loss = ln C.
	tape := NewTape()
	x := tensor.New(2, 4)
	loss := tape.SoftmaxCrossEntropy(tape.Constant(x), []int{0, 3}, nil)
	if math.Abs(loss.Value.Data[0]-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform-logit loss = %v want ln4", loss.Value.Data[0])
	}
}

func TestSoftmaxGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randMat(rng, 3, 4)
	labels := []int{1, 2, 0}
	tape := NewTape()
	vx := tape.Param(x)
	// Softmax then a dummy linear readout through cross entropy keeps the
	// chain nontrivial.
	loss := tape.SoftmaxCrossEntropy(tape.Softmax(vx), labels, nil)
	tape.Backward(loss)
	lossOf := func() float64 {
		tp := NewTape()
		return tp.SoftmaxCrossEntropy(tp.Softmax(tp.Constant(x)), labels, nil).Value.Data[0]
	}
	checkGrad(t, "softmax/x", x, vx.Grad, lossOf)
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := randMat(rng, 5, 7)
	tape := NewTape()
	y := tape.Softmax(tape.Constant(x))
	for i := 0; i < 5; i++ {
		var s float64
		for _, v := range y.Value.Row(i) {
			if v < 0 {
				t.Fatal("negative probability")
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestL2PenaltyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randMat(rng, 2, 3)
	tape := NewTape()
	vx := tape.Param(x)
	loss := tape.L2Penalty(vx, 0.3)
	tape.Backward(loss)
	lossOf := func() float64 {
		tp := NewTape()
		return tp.L2Penalty(tp.Constant(x), 0.3).Value.Data[0]
	}
	checkGrad(t, "l2/x", x, vx.Grad, lossOf)
}

func TestMulScaleGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randMat(rng, 2, 3)
	b := randMat(rng, 2, 3)
	labels := []int{0, 2}
	tape := NewTape()
	va, vb := tape.Param(a), tape.Param(b)
	loss := tape.SoftmaxCrossEntropy(tape.Scale(tape.Mul(va, vb), 1.7), labels, nil)
	tape.Backward(loss)
	lossOf := func() float64 {
		tp := NewTape()
		return tp.SoftmaxCrossEntropy(tp.Scale(tp.Mul(tp.Constant(a), tp.Constant(b)), 1.7), labels, nil).Value.Data[0]
	}
	checkGrad(t, "mul/a", a, va.Grad, lossOf)
	checkGrad(t, "mul/b", b, vb.Grad, lossOf)
}

func TestDropoutTrainingFalseIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := randMat(rng, 3, 3)
	tape := NewTape()
	v := tape.Constant(x)
	if got := tape.Dropout(v, 0.5, rand.New(rand.NewSource(0)), false); got != v {
		t.Fatal("dropout(eval) must be identity")
	}
}

func TestDropoutPreservesExpectation(t *testing.T) {
	x := tensor.New(1, 10000).Fill(1)
	tape := NewTape()
	out := tape.Dropout(tape.Constant(x), 0.3, rand.New(rand.NewSource(42)), true)
	var s float64
	for _, v := range out.Value.Data {
		s += v
	}
	mean := s / float64(len(out.Value.Data))
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("inverted dropout mean = %v, want ≈1", mean)
	}
}

func TestDropoutGradientMatchesMask(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x := randMat(rng, 3, 4)
	labels := []int{0, 1, 2}
	tape := NewTape()
	vx := tape.Param(x)
	out := tape.Dropout(vx, 0.4, rand.New(rand.NewSource(7)), true)
	loss := tape.SoftmaxCrossEntropy(out, labels, nil)
	tape.Backward(loss)
	// Gradient must be zero exactly where output was zeroed (unless the
	// input itself was nonzero but masked).
	for i := range out.Value.Data {
		if out.Value.Data[i] == 0 && x.Data[i] != 0 && vx.Grad.Data[i] != 0 {
			t.Fatal("gradient leaked through dropped element")
		}
	}
}

func TestBackwardAccumulatesAcrossUses(t *testing.T) {
	// y = x + x → dy/dx = 2
	x := tensor.FromSlice(1, 1, []float64{3})
	tape := NewTape()
	vx := tape.Param(x)
	y := tape.Add(vx, vx)
	loss := tape.Scale(y, 1) // still scalar 1x1
	tape.Backward(loss)
	if vx.Grad.Data[0] != 2 {
		t.Fatalf("shared-use grad = %v, want 2", vx.Grad.Data[0])
	}
}

func TestBackwardPanicsOnNonScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tape := NewTape()
	v := tape.Param(tensor.New(2, 2))
	tape.Backward(v)
}

func TestTapeReset(t *testing.T) {
	tape := NewTape()
	x := tape.Param(tensor.FromSlice(1, 1, []float64{2}))
	loss := tape.Scale(x, 3)
	tape.Backward(loss)
	if x.Grad.Data[0] != 3 {
		t.Fatalf("grad = %v", x.Grad.Data[0])
	}
	tape.Reset()
	if len(tape.ops) != 0 {
		t.Fatal("Reset must clear ops")
	}
}

func TestConstantSubtreeSkipped(t *testing.T) {
	// A pure-constant subtree must not allocate gradients.
	tape := NewTape()
	a := tape.Constant(tensor.FromSlice(1, 2, []float64{1, 2}))
	b := tape.Constant(tensor.FromSlice(1, 2, []float64{3, 4}))
	c := tape.Add(a, b)
	p := tape.Param(tensor.FromSlice(1, 2, []float64{0, 0}))
	out := tape.Add(c, p)
	loss := tape.SoftmaxCrossEntropy(out, []int{1}, nil)
	tape.Backward(loss)
	if a.Grad != nil || b.Grad != nil || c.Grad != nil {
		t.Fatal("constant subtree received gradients")
	}
	if p.Grad == nil {
		t.Fatal("param missed gradient")
	}
}

func TestTwoLayerMLPGradient(t *testing.T) {
	// End-to-end composite check: x·W1+b1 → ReLU → ·W2+b2 → CE.
	rng := rand.New(rand.NewSource(20))
	x := randMat(rng, 6, 5)
	w1, b1 := randMat(rng, 5, 4), randMat(rng, 1, 4)
	w2, b2 := randMat(rng, 4, 3), randMat(rng, 1, 3)
	labels := []int{0, 1, 2, 0, 1, 2}

	forward := func(tp *Tape, pw1, pb1, pw2, pb2 *Var) *Var {
		h := tp.ReLU(tp.AddRow(tp.MatMul(tp.Constant(x), pw1), pb1))
		return tp.AddRow(tp.MatMul(h, pw2), pb2)
	}
	tape := NewTape()
	vw1, vb1, vw2, vb2 := tape.Param(w1), tape.Param(b1), tape.Param(w2), tape.Param(b2)
	loss := tape.SoftmaxCrossEntropy(forward(tape, vw1, vb1, vw2, vb2), labels, nil)
	tape.Backward(loss)
	lossOf := func() float64 {
		tp := NewTape()
		return tp.SoftmaxCrossEntropy(
			forward(tp, tp.Constant(w1), tp.Constant(b1), tp.Constant(w2), tp.Constant(b2)),
			labels, nil).Value.Data[0]
	}
	checkGrad(t, "mlp/w1", w1, vw1.Grad, lossOf)
	checkGrad(t, "mlp/b1", b1, vb1.Grad, lossOf)
	checkGrad(t, "mlp/w2", w2, vw2.Grad, lossOf)
	checkGrad(t, "mlp/b2", b2, vb2.Grad, lossOf)
}
