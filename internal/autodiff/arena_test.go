package autodiff

import (
	"math/rand"
	"testing"

	"github.com/sematype/pythagoras/internal/tensor"
)

// TestTapeReuseProducesIdenticalResults: a recycled tape must compute the
// same values and gradients as a fresh one — the arena hands back dirty
// buffers, so any op relying on zeroed storage it didn't zero would surface
// here.
func TestTapeReuseProducesIdenticalResults(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := randMat(rng, 5, 8)
	w1 := randMat(rng, 8, 6)
	w2 := randMat(rng, 6, 3)
	labels := []int{0, 2, 1, 1, 0}

	run := func(tape *Tape) (float64, *tensor.Matrix, *tensor.Matrix) {
		vx := tape.Constant(x)
		vw1, vw2 := tape.Param(w1), tape.Param(w2)
		h := tape.ReLU(tape.MatMul(vx, vw1))
		logits := tape.MatMul(h, vw2)
		loss := tape.SoftmaxCrossEntropy(logits, labels, nil)
		tape.Backward(loss)
		// Clone: grads live in the arena and die at the next Reset.
		return loss.Value.Data[0], vw1.Grad.Clone(), vw2.Grad.Clone()
	}

	fresh := NewTape()
	wantLoss, wantG1, wantG2 := run(fresh)

	reused := NewTape()
	for i := 0; i < 3; i++ {
		reused.Reset()
		loss, g1, g2 := run(reused)
		if loss != wantLoss {
			t.Fatalf("iteration %d: loss %v, want %v (recycled tape diverged)", i, loss, wantLoss)
		}
		if !tensor.Equal(g1, wantG1, 0) || !tensor.Equal(g2, wantG2, 0) {
			t.Fatalf("iteration %d: gradients differ on recycled tape", i)
		}
	}
}

// TestTapeSteadyStateAllocFree pins the arena's purpose: once a tape has
// grown its op slice, Var slab and matrix free lists to the shape of the
// computation, running the same forward+backward again allocates nothing.
func TestTapeSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := randMat(rng, 16, 32)
	w1 := randMat(rng, 32, 24)
	b1 := randMat(rng, 1, 24)
	w2 := randMat(rng, 24, 7)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 7
	}

	tape := NewTape()
	step := func() {
		tape.Reset()
		vx := tape.Constant(x)
		h := tape.ReLU(tape.AddRow(tape.MatMul(vx, tape.Param(w1)), tape.Param(b1)))
		logits := tape.MatMul(h, tape.Param(w2))
		loss := tape.SoftmaxCrossEntropy(logits, labels, nil)
		tape.Backward(loss)
	}
	// Warm the arena: first run grows every pool to steady-state shape.
	step()
	step()
	if n := testing.AllocsPerRun(20, step); n != 0 {
		t.Errorf("steady-state forward+backward: %v allocs/op, want 0", n)
	}
}

// TestEdgeMixSteadyStateAllocFree covers the fused GNN op's hot path the
// same way — gather→matmul→scatter→normalize forward plus its backward.
func TestEdgeMixSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	h := randMat(rng, 12, 16)
	w := randMat(rng, 16, 16)
	src := []int{0, 1, 2, 3, 4, 0, 5}
	dst := []int{6, 6, 7, 8, 9, 9, 11}
	inv := make([]float64, 12)
	for _, d := range dst {
		inv[d]++
	}
	for i, c := range inv {
		if c > 0 {
			inv[i] = 1 / c
		}
	}
	labels := make([]int, 12)

	tape := NewTape()
	step := func() {
		tape.Reset()
		vh, vw := tape.Param(h), tape.Param(w)
		out := tape.EdgeMix(vh, vw, src, dst, 12, inv)
		loss := tape.SoftmaxCrossEntropy(out, labels, nil)
		tape.Backward(loss)
	}
	step()
	step()
	if n := testing.AllocsPerRun(20, step); n != 0 {
		t.Errorf("steady-state EdgeMix forward+backward: %v allocs/op, want 0", n)
	}
}
