package infer

import (
	"github.com/sematype/pythagoras/internal/obs"
)

// chunkBuckets sizes the chunk/batch histograms: power-of-two table counts
// up to 4096 (the engine never unions more than maxBatch, but batch-size
// distribution above it is still informative).
var chunkBuckets = obs.ExpBuckets(1, 2, 13)

// engineMetrics holds the engine's pre-resolved metric handles (DESIGN.md
// §8). Handles are looked up once at wiring time so the serving path pays
// only atomic updates; a nil *engineMetrics (observability off) costs one
// branch per stage.
//
//	infer.stage.prepare.seconds   histogram, one observation per table
//	infer.stage.union.seconds     histogram, one observation per chunk
//	infer.stage.forward.seconds   histogram, one observation per chunk
//	infer.stage.decode.seconds    histogram, one observation per chunk
//	infer.chunk.tables            histogram of union-chunk sizes
//	infer.batch.tables            histogram of PredictBatch input sizes
//	infer.workers.busy            gauge, currently running pool workers
//	infer.batches / infer.tables  cumulative request counters
type engineMetrics struct {
	reg     *obs.Registry
	prepare *obs.Histogram
	union   *obs.Histogram
	forward *obs.Histogram
	decode  *obs.Histogram
	chunks  *obs.Histogram
	batch   *obs.Histogram
	busy    *obs.Gauge
	batches *obs.Counter
	tables  *obs.Counter
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	return &engineMetrics{
		reg:     reg,
		prepare: reg.Histogram("infer.stage.prepare.seconds", nil),
		union:   reg.Histogram("infer.stage.union.seconds", nil),
		forward: reg.Histogram("infer.stage.forward.seconds", nil),
		decode:  reg.Histogram("infer.stage.decode.seconds", nil),
		chunks:  reg.Histogram("infer.chunk.tables", chunkBuckets),
		batch:   reg.Histogram("infer.batch.tables", chunkBuckets),
		busy:    reg.Gauge("infer.workers.busy"),
		batches: reg.Counter("infer.batches"),
		tables:  reg.Counter("infer.tables"),
	}
}

// WithMetrics wires the engine's per-stage instrumentation into reg (nil
// disables instrumentation, the default).
func WithMetrics(reg *obs.Registry) Option {
	return func(e *Engine) { e.EnableMetrics(reg) }
}

// EnableMetrics attaches a metrics registry to the engine: per-stage
// latency histograms, worker-pool utilization and chunk-size distributions,
// plus the underlying encoder's cache gauges. It must be called before the
// engine serves traffic (it is not synchronized against concurrent
// Predict/PredictBatch calls); once a registry is attached, later calls are
// no-ops.
func (e *Engine) EnableMetrics(reg *obs.Registry) {
	if reg == nil || e.metrics != nil {
		return
	}
	e.metrics = newEngineMetrics(reg)
	if enc := e.model.Encoder(); enc != nil {
		enc.RegisterMetrics(reg)
	}
}

// Metrics returns the registry the engine records into (nil when
// uninstrumented).
func (e *Engine) Metrics() *obs.Registry {
	if e.metrics == nil {
		return nil
	}
	return e.metrics.reg
}
