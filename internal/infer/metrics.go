package infer

import (
	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/obs"
)

// chunkBuckets sizes the chunk/batch histograms: power-of-two table counts
// up to 4096 (the engine never unions more than maxBatch, but batch-size
// distribution above it is still informative).
var chunkBuckets = obs.ExpBuckets(1, 2, 13)

// engineMetrics holds the engine's pre-resolved metric handles (DESIGN.md
// §8). Handles are looked up once at wiring time so the serving path pays
// only atomic updates; a nil *engineMetrics (observability off) costs one
// branch per stage.
//
//	infer.stage.prepare.seconds   histogram, one observation per table
//	infer.stage.union.seconds     histogram, one observation per chunk
//	infer.stage.forward.seconds   histogram, one observation per chunk
//	infer.stage.decode.seconds    histogram, one observation per chunk
//	infer.chunk.tables            histogram of union-chunk sizes
//	infer.batch.tables            histogram of PredictBatch input sizes
//	infer.workers.busy            gauge, currently running pool workers
//	infer.batches / infer.tables  cumulative request counters
//
// Model-quality telemetry, one observation per served column prediction
// (recordPredictions):
//
//	infer.confidence                    histogram over ConfidenceBuckets
//	infer.predictions                   counter, total predictions served
//	infer.predictions.low_confidence    counter, confidence < 0.3 — the
//	                                    abstain-or-review band
//	infer.predicted{type="..."}         labeled counter per predicted type
type engineMetrics struct {
	reg     *obs.Registry
	prepare *obs.Histogram
	union   *obs.Histogram
	forward *obs.Histogram
	decode  *obs.Histogram
	chunks  *obs.Histogram
	batch   *obs.Histogram
	busy    *obs.Gauge
	batches *obs.Counter
	tables  *obs.Counter

	confidence  *obs.Histogram
	predictions *obs.Counter
	lowConf     *obs.Counter
	// byType maps every model vocabulary type to its pre-resolved labeled
	// counter — the hot path pays one map read, never a registry lock.
	byType map[string]*obs.Counter
}

// lowConfidenceThreshold marks a served prediction as needing review; it
// mirrors the abstain band the paper's precision/coverage trade-off targets.
const lowConfidenceThreshold = 0.3

func newEngineMetrics(reg *obs.Registry, types []string) *engineMetrics {
	m := &engineMetrics{
		reg:     reg,
		prepare: reg.Histogram("infer.stage.prepare.seconds", nil),
		union:   reg.Histogram("infer.stage.union.seconds", nil),
		forward: reg.Histogram("infer.stage.forward.seconds", nil),
		decode:  reg.Histogram("infer.stage.decode.seconds", nil),
		chunks:  reg.Histogram("infer.chunk.tables", chunkBuckets),
		batch:   reg.Histogram("infer.batch.tables", chunkBuckets),
		busy:    reg.Gauge("infer.workers.busy"),
		batches: reg.Counter("infer.batches"),
		tables:  reg.Counter("infer.tables"),

		confidence:  reg.Histogram("infer.confidence", obs.ConfidenceBuckets),
		predictions: reg.Counter("infer.predictions"),
		lowConf:     reg.Counter("infer.predictions.low_confidence"),
		byType:      make(map[string]*obs.Counter, len(types)),
	}
	for _, t := range types {
		m.byType[t] = reg.Counter(obs.Labels("infer.predicted", "type", t))
	}
	return m
}

// WithMetrics wires the engine's per-stage instrumentation into reg (nil
// disables instrumentation, the default).
func WithMetrics(reg *obs.Registry) Option {
	return func(e *Engine) { e.EnableMetrics(reg) }
}

// EnableMetrics attaches a metrics registry to the engine: per-stage
// latency histograms, worker-pool utilization and chunk-size distributions,
// plus the underlying encoder's cache gauges. It must be called before the
// engine serves traffic (it is not synchronized against concurrent
// Predict/PredictBatch calls); once a registry is attached, later calls are
// no-ops.
func (e *Engine) EnableMetrics(reg *obs.Registry) {
	if reg == nil || e.metrics != nil {
		return
	}
	e.metrics = newEngineMetrics(reg, e.model.Types())
	if enc := e.model.Encoder(); enc != nil {
		enc.RegisterMetrics(reg)
	}
}

// WithDrift attaches a drift monitor built from a training-time baseline:
// every served prediction feeds the monitor, whose distribution-distance
// scores surface as drift.* gauges on the engine's registry once
// EnableDrift (or this option plus WithMetrics) has run. A nil monitor
// disables drift telemetry, the default.
func WithDrift(m *obs.DriftMonitor) Option {
	return func(e *Engine) { e.drift = m }
}

// EnableDrift attaches a drift monitor after construction and, when a
// metrics registry is already attached, registers its gauges there.
func (e *Engine) EnableDrift(m *obs.DriftMonitor) {
	if m == nil {
		return
	}
	e.drift = m
	if e.metrics != nil {
		m.Register(e.metrics.reg)
	}
}

// Drift returns the engine's drift monitor (nil when drift telemetry is
// off).
func (e *Engine) Drift() *obs.DriftMonitor { return e.drift }

// recordPredictions feeds one table's served predictions into the
// model-quality telemetry: the confidence histogram, per-type labeled
// counters, the low-confidence counter, and the drift monitor. Called once
// per decoded table on the serving paths (never by Evaluate — offline
// scoring must not pollute serving telemetry).
func (e *Engine) recordPredictions(preds []core.ColumnPrediction) {
	m := e.metrics
	if m == nil && e.drift == nil {
		return
	}
	for i := range preds {
		p := &preds[i]
		if m != nil {
			m.predictions.Inc()
			m.confidence.Observe(p.Confidence)
			if p.Confidence < lowConfidenceThreshold {
				m.lowConf.Inc()
			}
			if c, ok := m.byType[p.Type]; ok {
				c.Inc()
			}
		}
		e.drift.Observe(p.Type, p.Confidence)
	}
}

// Metrics returns the registry the engine records into (nil when
// uninstrumented).
func (e *Engine) Metrics() *obs.Registry {
	if e.metrics == nil {
		return nil
	}
	return e.metrics.reg
}
