// Package infer is the staged inference engine of Pythagoras: the
// production serving path that turns the monolithic per-table predict loop
// into an explicit Encode → BuildGraph → Forward pipeline with batching and
// parallelism.
//
// Stages (see DESIGN.md §7):
//
//  1. BuildGraph — table → heterogeneous graph (pure, per table).
//  2. Encode     — frozen-LM node states + standardized feature rows
//     (per table; dominated by the transformer, so the engine fans it out
//     over a worker pool; the lm.Encoder cache is sharded to keep workers
//     from serializing).
//  3. Forward    — graph union + gradient-free GNN passes, exactly the
//     minibatch mechanism the training loop uses. The batch is split into
//     per-worker chunks (each at most maxBatch tables) whose union forwards
//     run concurrently.
//
// Stages 1–2 are embarrassingly parallel across tables; stage 3 amortizes
// tape construction, parameter binding and matrix dispatch over each chunk
// and runs chunks in parallel. Because a union forward is bit-identical to
// the per-table forwards it replaces (row-wise ops, per-destination scatter
// accumulation), the chunking is unobservable in the output.
//
// The context-threaded entry points (PredictCtx, PredictBatchCtx) make the
// whole pipeline interruptible (DESIGN.md §9): cancellation is checked
// before every stage, between chunks, and before each work item the pool
// claims, so a vanished client or an expired deadline aborts the batch at
// the next stage boundary with a partial-work drain — workers finish the
// item they are on, nothing new is started, and the first error comes back.
// The context-free Predict/PredictBatch remain as thin non-cancellable
// wrappers. Cancellation never changes bits: a batch that completes under a
// cancellable context is byte-identical to the same batch without one.
//
// The engine holds no mutable state: a single Engine is safe for concurrent
// use from any number of goroutines, and its batch output is bit-identical
// to looping core.Model.PredictTable over the same tables.
package infer

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/faultinject"
	"github.com/sematype/pythagoras/internal/obs"
	"github.com/sematype/pythagoras/internal/par"
	"github.com/sematype/pythagoras/internal/table"
	"github.com/sematype/pythagoras/internal/tensor"
)

// Engine schedules staged inference over a trained, read-only model.
type Engine struct {
	model *core.Model
	// workers bounds the fan-out of both the prepare stage and the chunked
	// forward stage (default runtime.NumCPU()).
	workers int
	// maxBatch bounds how many tables are unioned into one forward pass
	// (default 16 — the training loop's default batch size). Larger batches
	// are split into chunks run concurrently across the worker pool.
	maxBatch int
	// metrics, when non-nil, receives per-stage latency histograms,
	// chunk-size distributions and pool utilization (see metrics.go). Nil
	// costs one branch per stage — the no-sink-attached fast path.
	metrics *engineMetrics
	// drift, when non-nil, accumulates the served prediction distribution
	// against a training-time baseline (see WithDrift). Nil-safe throughout.
	drift *obs.DriftMonitor
	// faults, when non-nil, fires the chaos suite's injection points at
	// each stage boundary (DESIGN.md §9). Nil — always, outside tests —
	// costs one branch per stage.
	faults *faultinject.Set

	// Lease refcount for zero-downtime swaps (lifecycle.go): refs starts at
	// 1 (the owner's reference), Acquire/Release bracket each request, and
	// Retire drops the owner's reference so the engine drains and dies.
	refs      atomic.Int64
	retired   atomic.Bool
	onDrained atomic.Pointer[func()]
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers sets the prepare-stage worker count (values < 1 reset to the
// default).
func WithWorkers(n int) Option { return func(e *Engine) { e.workers = n } }

// WithMaxBatch sets how many tables Evaluate unions per forward pass.
func WithMaxBatch(n int) Option { return func(e *Engine) { e.maxBatch = n } }

// WithFaults arms fault-injection points at the engine's stage boundaries —
// test support for the chaos suite, never set in production (nil disables,
// the default).
func WithFaults(fs *faultinject.Set) Option { return func(e *Engine) { e.faults = fs } }

// New builds an inference engine around a trained model.
func New(m *core.Model, opts ...Option) *Engine {
	e := &Engine{model: m, workers: runtime.NumCPU(), maxBatch: 16}
	for _, o := range opts {
		o(e)
	}
	if e.workers < 1 {
		e.workers = runtime.NumCPU()
	}
	if e.maxBatch < 1 {
		e.maxBatch = 16
	}
	e.refs.Store(1) // the owner's reference; Retire gives it up
	return e
}

// Model returns the engine's underlying model.
func (e *Engine) Model() *core.Model { return e.model }

// Predict runs the staged pipeline on a single table. It is equivalent to
// (and, uninstrumented, implemented as) core.Model.PredictTable; with
// metrics attached it runs the same three stage calls PredictTable is made
// of, timing each — the output is bit-identical either way. It cannot be
// cancelled; serving paths use PredictCtx.
func (e *Engine) Predict(t *table.Table) []core.ColumnPrediction {
	if e.metrics == nil && e.faults == nil && e.drift == nil {
		return e.model.PredictTable(t)
	}
	out, _ := e.PredictCtx(context.Background(), t)
	return out
}

// PredictCtx runs the staged pipeline on a single table under a context:
// cancellation (or an injected fault) is observed between the prepare,
// forward and decode stages, returning the context's error with no partial
// result. A completed call is bit-identical to Predict.
func (e *Engine) PredictCtx(ctx context.Context, t *table.Table) ([]core.ColumnPrediction, error) {
	m := e.metrics
	if err := stageGate(ctx, e.faults, faultinject.InferPrepare); err != nil {
		return nil, err
	}
	t0 := time.Now()
	p := e.model.PrepareForPrediction(t)
	if m != nil {
		m.prepare.Since(t0)
	}
	if err := stageGate(ctx, e.faults, faultinject.InferForward); err != nil {
		return nil, err
	}
	t0 = time.Now()
	probs, targets := e.model.InferProbs(p)
	if m != nil {
		m.forward.Since(t0)
	}
	if err := stageGate(ctx, e.faults, faultinject.InferDecode); err != nil {
		return nil, err
	}
	t0 = time.Now()
	out := e.model.DecodePredictions(p, probs, targets, 0, len(targets), t)
	if m != nil {
		m.decode.Since(t0)
		m.tables.Inc()
	}
	e.recordPredictions(out)
	return out, nil
}

// stageGate is the per-stage interruption check: context first, then any
// armed fault. Both are one branch each when unset.
func stageGate(ctx context.Context, fs *faultinject.Set, p faultinject.Point) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return fs.Fire(ctx, p)
}

// parallelFor runs fn(0..n-1) over the engine's worker pool via par.For
// (drain-on-cancel semantics, first error wins). Used for both the prepare
// stage and the chunked forward stage: both only read the frozen model and
// the internally synchronized encoder cache.
//
// When instrumented, the infer.workers.busy gauge tracks how many pool
// workers are inside fn — sampled by registry snapshots, it is the
// pool-utilization signal.
func (e *Engine) parallelFor(ctx context.Context, n int, fn func(i int) error) error {
	if m := e.metrics; m != nil {
		inner := fn
		fn = func(i int) error {
			m.busy.Add(1)
			defer m.busy.Add(-1)
			return inner(i)
		}
	}
	return par.For(ctx, e.workers, n, fn)
}

// chunkBounds splits n prepared tables into contiguous [lo, hi) chunks — as
// even as possible across the worker pool, never larger than maxBatch. Chunk
// boundaries are unobservable in the output: a union forward is bit-identical
// to the per-table forwards it replaces.
func (e *Engine) chunkBounds(n int) [][2]int {
	return par.Bounds(n, e.workers, e.maxBatch)
}

// forwardChunk runs one gradient-free forward over ps[lo:hi] (unioned when
// the chunk holds more than one table) and returns the chunk's prepared
// input, class probabilities and target-node list. The context and fault
// gates run before the union and before the forward — the two places a
// chunk spends real time. Instrumented, it times the graph-union and
// forward stages separately (a single-table chunk still observes its ~zero
// union cost, so the union histogram's count always matches the chunk
// count).
func (e *Engine) forwardChunk(ctx context.Context, ps []*core.Prepared, lo, hi int) (*core.Prepared, *tensor.Matrix, []int, error) {
	if err := stageGate(ctx, e.faults, faultinject.InferUnion); err != nil {
		return nil, nil, nil, err
	}
	m := e.metrics
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	p := ps[lo]
	if hi-lo > 1 {
		p = core.UnionPrepared(ps[lo:hi])
	}
	if m != nil {
		m.union.Since(t0)
		m.chunks.Observe(float64(hi - lo))
	}
	if err := stageGate(ctx, e.faults, faultinject.InferForward); err != nil {
		return nil, nil, nil, err
	}
	if m != nil {
		t0 = time.Now()
	}
	probs, targets := e.model.InferProbs(p)
	if m != nil {
		m.forward.Since(t0)
	}
	return p, probs, targets, nil
}

// PredictBatch predicts the semantic types of every column of every input
// table through the staged pipeline: tables are prepared in parallel, their
// graphs unioned (the training loop's minibatch mechanism) into per-worker
// chunks of at most maxBatch tables, and the GNN + softmax run once per
// chunk, chunks in parallel. Output i corresponds to input i and is
// bit-identical to Predict(ts[i]). It cannot be cancelled; serving paths
// use PredictBatchCtx.
func (e *Engine) PredictBatch(ts []*table.Table) [][]core.ColumnPrediction {
	out, _ := e.PredictBatchCtx(context.Background(), ts)
	return out
}

// PredictBatchCtx is PredictBatch under a context: cancellation (or an
// injected fault) is observed before each table the prepare pool claims,
// between chunks, and inside each chunk before its union and forward. On
// abort it returns nil results and the first error after draining — every
// in-flight stage call runs to completion, nothing new starts. A completed
// call is bit-identical to PredictBatch.
func (e *Engine) PredictBatchCtx(ctx context.Context, ts []*table.Table) ([][]core.ColumnPrediction, error) {
	m := e.metrics
	switch len(ts) {
	case 0:
		return nil, ctx.Err()
	case 1:
		if m != nil {
			m.batches.Inc()
			m.batch.Observe(1)
		}
		out, err := e.PredictCtx(ctx, ts[0]) // PredictCtx counts the table
		if err != nil {
			return nil, err
		}
		return [][]core.ColumnPrediction{out}, nil
	}
	if m != nil {
		m.batches.Inc()
		m.tables.Add(uint64(len(ts)))
		m.batch.Observe(float64(len(ts)))
	}

	ps := make([]*core.Prepared, len(ts))
	err := e.parallelFor(ctx, len(ts), func(i int) error {
		if err := e.faults.Fire(ctx, faultinject.InferPrepare); err != nil {
			return err
		}
		var t0 time.Time
		if m != nil {
			t0 = time.Now()
		}
		ps[i] = e.model.PrepareForPrediction(ts[i])
		if m != nil {
			m.prepare.Since(t0)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make([][]core.ColumnPrediction, len(ts))
	bounds := e.chunkBounds(len(ts))
	err = e.parallelFor(ctx, len(bounds), func(c int) error {
		clo, chi := bounds[c][0], bounds[c][1]
		p, probs, targets, err := e.forwardChunk(ctx, ps, clo, chi)
		if err != nil {
			return err
		}
		if err := e.faults.Fire(ctx, faultinject.InferDecode); err != nil {
			return err
		}
		var t0 time.Time
		if m != nil {
			t0 = time.Now()
		}
		lo := 0
		for i := clo; i < chi; i++ {
			hi := lo + len(ps[i].Graph.TargetNodes())
			out[i] = e.model.DecodePredictions(p, probs, targets, lo, hi, ts[i])
			e.recordPredictions(out[i])
			lo = hi
		}
		if m != nil {
			m.decode.Since(t0)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Evaluate scores the model over labeled corpus tables through the staged
// pipeline: parallel prepare, then parallel union forward passes of up to
// maxBatch tables each. The returned metrics and prediction list are
// identical to core.Model.Evaluate on the same indices.
func (e *Engine) Evaluate(c *data.Corpus, idx []int) (*eval.Split, []eval.Prediction) {
	m := e.metrics
	ctx := context.Background()
	ps := make([]*core.Prepared, len(idx))
	_ = e.parallelFor(ctx, len(idx), func(i int) error {
		var t0 time.Time
		if m != nil {
			t0 = time.Now()
		}
		ps[i] = e.model.Prepare(c.Tables[idx[i]])
		if m != nil {
			m.prepare.Since(t0)
		}
		return nil
	})

	bounds := e.chunkBounds(len(ps))
	chunkPreds := make([][]eval.Prediction, len(bounds))
	_ = e.parallelFor(ctx, len(bounds), func(ci int) error {
		lo, hi := bounds[ci][0], bounds[ci][1]
		var t0 time.Time
		if m != nil {
			t0 = time.Now()
		}
		p := ps[lo]
		if hi-lo > 1 {
			p = core.UnionPrepared(ps[lo:hi])
		}
		if m != nil {
			m.union.Since(t0)
			m.chunks.Observe(float64(hi - lo))
			t0 = time.Now()
		}
		chunkPreds[ci] = e.model.LabeledPredictions(p)
		if m != nil {
			m.forward.Since(t0)
		}
		return nil
	})
	var preds []eval.Prediction
	for _, cp := range chunkPreds {
		preds = append(preds, cp...)
	}
	return eval.ComputeSplit(preds), preds
}
