// Engine lifecycle: lease refcounting for zero-downtime model swaps
// (DESIGN.md §14).
//
// A serving process that hot-swaps models holds engines behind atomic
// pointers. Swapping the pointer is instant, but requests admitted just
// before the swap are still inside the old engine — it must not be torn
// down under them. The refcount below is that drain barrier: every request
// takes a lease (Acquire) before using an engine and returns it (Release)
// after, and the engine's owner marks the engine retired (Retire) when the
// pointer has moved on. The retired engine keeps serving its in-flight
// leases; when the last one is released, the owner's drained callback runs
// exactly once and the engine is dead — Acquire refuses from then on, so a
// stale pointer read can never resurrect it.
//
// The lease is two atomic operations per request — a CAS loop that, on the
// serving path, almost always succeeds on the first try (contention means
// the pointer is mid-swap, a once-per-deployment event) and one atomic
// decrement. No mutex, no channel: the hot path stays allocation-free and
// wait-free in the common case.
package infer

// Acquire takes a lease on the engine: the engine is guaranteed to stay
// fully usable until the matching Release. It returns false when the engine
// has been retired — the caller must re-read whatever pointer produced the
// engine, which by then points at the replacement.
func (e *Engine) Acquire() bool {
	if e.retired.Load() {
		return false
	}
	for {
		r := e.refs.Load()
		if r <= 0 {
			return false // drained: the owner's reference is gone
		}
		if e.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Release returns a lease taken by Acquire. When the last lease of a
// retired engine is released, the drained callback passed to Retire runs —
// once, on the releasing goroutine.
func (e *Engine) Release() {
	if e.refs.Add(-1) == 0 {
		if f := e.onDrained.Load(); f != nil {
			(*f)()
		}
	}
}

// Retire gives up the owner's reference (the one New created the engine
// with): no new leases can be acquired, in-flight leases drain, and
// onDrained (may be nil) runs exactly once when the last lease — possibly
// this very call, if none are outstanding — is released. Call it once, from
// the goroutine that owns the engine's slot; the engine must already be
// unreachable through serving pointers, or a racing Acquire may legally
// extend the drain by one request.
func (e *Engine) Retire(onDrained func()) {
	if onDrained != nil {
		e.onDrained.Store(&onDrained)
	}
	e.retired.Store(true)
	e.Release()
}

// Refs reports the current lease count, the owner's reference included
// until Retire. Test and status-reporting support; racing with traffic it
// is naturally a point-in-time value.
func (e *Engine) Refs() int64 { return e.refs.Load() }

// Retired reports whether Retire has been called.
func (e *Engine) Retired() bool { return e.retired.Load() }

// Workers reports the engine's configured worker fan-out — lifecycle
// managers clone it onto replacement engines so a swap never changes
// serving parallelism.
func (e *Engine) Workers() int { return e.workers }

// MaxBatch reports the engine's union-chunk bound, cloned like Workers.
func (e *Engine) MaxBatch() int { return e.maxBatch }
