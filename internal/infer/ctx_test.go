package infer

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/sematype/pythagoras/internal/faultinject"
)

// waitGoroutines polls until the goroutine count settles back to at most
// base+slack, failing the test if it never does — the leak detector for
// cancellation paths: a drained parallelFor must park every pool worker.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d, started with %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNewClampsOptions: nonsensical worker/batch settings fall back to the
// defaults instead of wedging the pools.
func TestNewClampsOptions(t *testing.T) {
	e := New(nil, WithWorkers(-1), WithMaxBatch(0))
	if e.workers < 1 {
		t.Fatalf("workers = %d", e.workers)
	}
	if e.maxBatch < 1 {
		t.Fatalf("maxBatch = %d", e.maxBatch)
	}
}

// TestPredictBatchCtxCompletedIsBitIdentical: a cancellable context that is
// never cancelled must not change a single bit of the output — the
// cancellation checks are pure gates.
func TestPredictBatchCtxCompletedIsBitIdentical(t *testing.T) {
	m, c := trainedModel(t)
	tables := c.Tables[:9]
	if New(m).Model() != m {
		t.Fatal("Model must expose the engine's model")
	}
	want := New(m, WithWorkers(4)).PredictBatch(tables)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := New(m, WithWorkers(4)).PredictBatchCtx(ctx, tables)
	if err != nil {
		t.Fatal(err)
	}
	for ti := range want {
		for i := range want[ti] {
			if got[ti][i] != want[ti][i] {
				t.Fatalf("table %d col %d diverged under cancellable context", ti, i)
			}
		}
	}
}

// TestPredictBatchCtxPreCancelled: an already-cancelled context aborts
// before any stage runs.
func TestPredictBatchCtxPreCancelled(t *testing.T) {
	m, c := trainedModel(t)
	fs := faultinject.New()
	eng := New(m, WithWorkers(2), WithFaults(fs))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := eng.PredictBatchCtx(ctx, c.Tables[:6])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if out != nil {
		t.Fatal("aborted batch must return nil results")
	}
	if fs.Fired(faultinject.InferPrepare) != 0 {
		t.Fatal("prepare ran under a pre-cancelled context")
	}

	if _, err := eng.PredictCtx(ctx, c.Tables[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("PredictCtx err = %v", err)
	}
}

// TestCancelMidChunkDrainsAndReturnsFast is the core cancellation scenario:
// the second chunk's union gate cancels the context while the batch is in
// flight. The engine must return context.Canceled promptly (< 100ms — the
// acceptance bound: an injected 10s stage delay is cut short, nothing waits
// it out) and leave no pool workers behind.
func TestCancelMidChunkDrainsAndReturnsFast(t *testing.T) {
	m, c := trainedModel(t)
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fs := faultinject.New().
		// First chunk passes; the second one cancels mid-batch...
		On(faultinject.InferUnion, faultinject.After(1, faultinject.Cancel(cancel))).
		// ...and any chunk that still reaches its forward would stall 10s,
		// so only the context-aware drain can return quickly.
		On(faultinject.InferForward, faultinject.After(1, faultinject.Sleep(10*time.Second)))
	eng := New(m, WithWorkers(1), WithMaxBatch(2), WithFaults(fs))

	t0 := time.Now()
	out, err := eng.PredictBatchCtx(ctx, c.Tables[:8])
	elapsed := time.Since(t0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if out != nil {
		t.Fatal("cancelled batch must return nil results")
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("cancelled batch took %s, want < 100ms", elapsed)
	}
	waitGoroutines(t, base)
}

// TestDeadlineExpiryDuringUnion: a slow graph-union stage under a short
// deadline surfaces context.DeadlineExceeded, not a hang.
func TestDeadlineExpiryDuringUnion(t *testing.T) {
	m, c := trainedModel(t)
	fs := faultinject.New().
		On(faultinject.InferUnion, faultinject.Sleep(10*time.Second))
	eng := New(m, WithWorkers(2), WithMaxBatch(4), WithFaults(fs))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := eng.PredictBatchCtx(ctx, c.Tables[:8])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(t0); elapsed > time.Second {
		t.Fatalf("deadline abort took %s", elapsed)
	}
}

// TestInjectedPrepareErrorAborts: a hard failure in one prepare worker
// aborts the whole batch with that error after a drain.
func TestInjectedPrepareErrorAborts(t *testing.T) {
	m, c := trainedModel(t)
	boom := errors.New("prepare exploded")
	fs := faultinject.New().
		On(faultinject.InferPrepare, faultinject.After(2, faultinject.Err(boom)))
	eng := New(m, WithWorkers(2), WithFaults(fs))
	out, err := eng.PredictBatchCtx(context.Background(), c.Tables[:8])
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if out != nil {
		t.Fatal("failed batch must return nil results")
	}
}

// TestPredictCtxStageGates: the single-table path observes cancellation at
// each of its three stage gates.
func TestPredictCtxStageGates(t *testing.T) {
	m, c := trainedModel(t)
	for _, point := range []faultinject.Point{
		faultinject.InferPrepare, faultinject.InferForward, faultinject.InferDecode,
	} {
		ctx, cancel := context.WithCancel(context.Background())
		fs := faultinject.New().On(point, faultinject.Cancel(cancel))
		eng := New(m, WithFaults(fs))
		if _, err := eng.PredictCtx(ctx, c.Tables[0]); !errors.Is(err, context.Canceled) {
			t.Fatalf("point %s: err = %v", point, err)
		}
		cancel()
	}
}

// TestConcurrentCancelledBatches hammers the drain path under -race: many
// goroutines run batches whose contexts are cancelled at random points.
func TestConcurrentCancelledBatches(t *testing.T) {
	m, c := trainedModel(t)
	base := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				ctx, cancel := context.WithCancel(context.Background())
				fs := faultinject.New().
					On(faultinject.InferUnion, faultinject.After(uint64(w%3), faultinject.Cancel(cancel)))
				eng := New(m, WithWorkers(2), WithMaxBatch(2), WithFaults(fs))
				out, err := eng.PredictBatchCtx(ctx, c.Tables[:6])
				if err == nil && out == nil {
					t.Error("nil result without error")
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()
	waitGoroutines(t, base)
}

// TestGoldenDeterminismAcrossWorkers guards the PR 1 bit-identity invariant
// under the cancellation-aware scheduler: the marshalled predictions of the
// same corpus must be byte-identical at 1, 4 and 8 workers.
func TestGoldenDeterminismAcrossWorkers(t *testing.T) {
	m, c := trainedModel(t)
	tables := c.Tables[:12]
	var golden []byte
	for _, workers := range []int{1, 4, 8} {
		eng := New(m, WithWorkers(workers), WithMaxBatch(4))
		out, err := eng.PredictBatchCtx(context.Background(), tables)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		raw, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = raw
			continue
		}
		if string(raw) != string(golden) {
			t.Fatalf("workers=%d: marshalled predictions differ from 1-worker golden", workers)
		}
	}
}
