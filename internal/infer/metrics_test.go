package infer

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/sematype/pythagoras/internal/obs"
	"github.com/sematype/pythagoras/internal/table"
)

// TestMetricsPopulatedByPredictBatch: after one batched call, every stage
// histogram has observations with the expected cardinality — one per table
// for prepare, one per chunk for union/forward/decode.
func TestMetricsPopulatedByPredictBatch(t *testing.T) {
	m, c := trainedModel(t)
	reg := obs.NewRegistry()
	eng := New(m, WithWorkers(4), WithMaxBatch(4), WithMetrics(reg))
	if eng.Metrics() != reg {
		t.Fatal("Metrics() should return the wired registry")
	}

	tables := c.Tables[:8]
	eng.PredictBatch(tables)

	s := reg.Snapshot()
	wantChunks := uint64(len(eng.chunkBounds(len(tables))))
	for name, want := range map[string]uint64{
		"infer.stage.prepare.seconds": uint64(len(tables)),
		"infer.stage.union.seconds":   wantChunks,
		"infer.stage.forward.seconds": wantChunks,
		"infer.stage.decode.seconds":  wantChunks,
		"infer.chunk.tables":          wantChunks,
		"infer.batch.tables":          1,
	} {
		if got := s.Histograms[name].Count; got != want {
			t.Errorf("%s count = %d, want %d", name, got, want)
		}
	}
	if got := s.Counters["infer.batches"]; got != 1 {
		t.Errorf("infer.batches = %d, want 1", got)
	}
	if got := s.Counters["infer.tables"]; got != uint64(len(tables)) {
		t.Errorf("infer.tables = %d, want %d", got, len(tables))
	}
	// Pool fully drained: the busy gauge must be back to zero.
	if got := s.Gauges["infer.workers.busy"]; got != 0 {
		t.Errorf("infer.workers.busy = %v after batch, want 0", got)
	}
	// EnableMetrics also registers the encoder cache gauges.
	if _, ok := s.Gauges["lm.cache.text.entries"]; !ok {
		t.Error("encoder cache gauges not registered")
	}
}

// TestMetricsSingleTablePaths: Predict and the 1-table PredictBatch
// shortcut must count tables exactly once.
func TestMetricsSingleTablePaths(t *testing.T) {
	m, c := trainedModel(t)
	reg := obs.NewRegistry()
	eng := New(m, WithMetrics(reg))

	eng.Predict(c.Tables[0])
	eng.PredictBatch(c.Tables[:1])

	s := reg.Snapshot()
	if got := s.Counters["infer.tables"]; got != 2 {
		t.Fatalf("infer.tables = %d, want 2", got)
	}
	if got := s.Counters["infer.batches"]; got != 1 {
		t.Fatalf("infer.batches = %d, want 1", got)
	}
	if got := s.Histograms["infer.stage.prepare.seconds"].Count; got != 2 {
		t.Fatalf("prepare count = %d, want 2", got)
	}
	if got := s.Histograms["infer.stage.decode.seconds"].Count; got != 2 {
		t.Fatalf("decode count = %d, want 2", got)
	}
}

// TestInstrumentationPreservesOutput: metrics must be observational only —
// instrumented and uninstrumented engines produce identical predictions.
func TestInstrumentationPreservesOutput(t *testing.T) {
	m, c := trainedModel(t)
	plain := New(m, WithWorkers(3), WithMaxBatch(3))
	inst := New(m, WithWorkers(3), WithMaxBatch(3), WithMetrics(obs.NewRegistry()))

	tables := c.Tables[:7]
	want := plain.PredictBatch(tables)
	got := inst.PredictBatch(tables)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("instrumented PredictBatch diverged from uninstrumented")
	}
	if !reflect.DeepEqual(plain.Predict(tables[0]), inst.Predict(tables[0])) {
		t.Fatal("instrumented Predict diverged from uninstrumented")
	}
}

// TestMetricsDefaultOff: without WithMetrics the engine records nothing.
func TestMetricsDefaultOff(t *testing.T) {
	m, c := trainedModel(t)
	eng := New(m)
	if eng.Metrics() != nil {
		t.Fatal("default engine should be uninstrumented")
	}
	eng.PredictBatch(c.Tables[:3]) // must not panic on nil metric handles
}

// TestMetricsConcurrentPredictBatch hammers a shared instrumented engine
// from many goroutines while snapshots run — the acceptance race test for
// registry snapshots under concurrent PredictBatch load.
func TestMetricsConcurrentPredictBatch(t *testing.T) {
	m, c := trainedModel(t)
	reg := obs.NewRegistry()
	eng := New(m, WithWorkers(2), WithMaxBatch(3), WithMetrics(reg))

	const callers = 4
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tables := []*table.Table{
				c.Tables[g%len(c.Tables)],
				c.Tables[(g+1)%len(c.Tables)],
				c.Tables[(g+2)%len(c.Tables)],
				c.Tables[(g+3)%len(c.Tables)],
			}
			for rep := 0; rep < 3; rep++ {
				eng.PredictBatch(tables)
				_ = reg.Snapshot()
			}
		}(g)
	}
	wg.Wait()

	s := reg.Snapshot()
	if got := s.Counters["infer.tables"]; got != callers*3*4 {
		t.Fatalf("infer.tables = %d, want %d", got, callers*3*4)
	}
}

// TestPredictionTelemetry: serving records the confidence histogram, total
// and per-type labeled counters, and the low-confidence band.
func TestPredictionTelemetry(t *testing.T) {
	m, c := trainedModel(t)
	reg := obs.NewRegistry()
	eng := New(m, WithMetrics(reg))

	preds := eng.PredictBatch(c.Tables[:4])
	var want uint64
	for _, ps := range preds {
		want += uint64(len(ps))
	}
	if want == 0 {
		t.Fatal("no predictions served")
	}
	s := reg.Snapshot()
	if got := s.Counters["infer.predictions"]; got != want {
		t.Fatalf("infer.predictions = %d, want %d", got, want)
	}
	if got := s.Histograms["infer.confidence"].Count; got != want {
		t.Fatalf("infer.confidence count = %d, want %d", got, want)
	}
	var byType uint64
	for name, v := range s.Counters {
		if strings.HasPrefix(name, "infer.predicted{") {
			byType += v
		}
	}
	if byType != want {
		t.Fatalf("per-type counters sum to %d, want %d", byType, want)
	}
	if low := s.Counters["infer.predictions.low_confidence"]; low > want {
		t.Fatalf("low-confidence %d exceeds total %d", low, want)
	}
}

// TestDriftGaugesMove is the acceptance check for drift telemetry: serving
// traffic that matches the baseline keeps the scores near zero; serving a
// shifted distribution drives them above the control.
func TestDriftGaugesMove(t *testing.T) {
	m, c := trainedModel(t)
	baseline := m.ComputeDriftBaseline(c.Tables)
	if baseline.Total() == 0 {
		t.Fatal("empty baseline from training tables")
	}

	// Control: serve the very tables the baseline was computed from.
	ctrlReg := obs.NewRegistry()
	ctrl := New(m, WithMetrics(ctrlReg), WithDrift(obs.NewDriftMonitor(baseline)))
	ctrl.Drift().Register(ctrlReg)
	ctrl.PredictBatch(c.Tables)

	// Shifted: tables whose columns are all the same synthetic shape, far
	// from the corpus mix.
	shiftReg := obs.NewRegistry()
	shift := New(m, WithMetrics(shiftReg), WithDrift(obs.NewDriftMonitor(baseline)))
	shift.Drift().Register(shiftReg)
	odd := &table.Table{Name: "Odd", ID: "odd", Columns: []*table.Column{
		{Header: "zz9", Kind: table.KindNumeric, NumValues: []float64{1e9, 2e9, 3e9}},
		{Header: "qqq", Kind: table.KindNumeric, NumValues: []float64{-7e8, -8e8, -9e8}},
	}}
	for i := 0; i < 20; i++ {
		shift.Predict(odd)
	}

	ctrlScore := ctrlReg.Snapshot().Gauges["drift.type.score"]
	shiftScore := shiftReg.Snapshot().Gauges["drift.type.score"]
	if shiftScore <= ctrlScore {
		t.Fatalf("shifted type drift %v <= control %v", shiftScore, ctrlScore)
	}
	if obsv := shiftReg.Snapshot().Gauges["drift.observations"]; obsv != 40 {
		t.Fatalf("drift.observations = %v, want 40", obsv)
	}
}

// TestEnableDriftRegistersOnExistingRegistry: the post-construction path.
func TestEnableDriftRegistersOnExistingRegistry(t *testing.T) {
	m, c := trainedModel(t)
	reg := obs.NewRegistry()
	eng := New(m, WithMetrics(reg))
	eng.EnableDrift(obs.NewDriftMonitor(m.ComputeDriftBaseline(c.Tables[:2])))
	eng.Predict(c.Tables[0])
	if _, ok := reg.Snapshot().Gauges["drift.type.score"]; !ok {
		t.Fatal("EnableDrift did not register gauges")
	}
	eng.EnableDrift(nil) // must not clear an attached monitor
	if eng.Drift() == nil {
		t.Fatal("EnableDrift(nil) cleared the monitor")
	}
}
