package infer

import (
	"reflect"
	"sync"
	"testing"

	"github.com/sematype/pythagoras/internal/obs"
	"github.com/sematype/pythagoras/internal/table"
)

// TestMetricsPopulatedByPredictBatch: after one batched call, every stage
// histogram has observations with the expected cardinality — one per table
// for prepare, one per chunk for union/forward/decode.
func TestMetricsPopulatedByPredictBatch(t *testing.T) {
	m, c := trainedModel(t)
	reg := obs.NewRegistry()
	eng := New(m, WithWorkers(4), WithMaxBatch(4), WithMetrics(reg))
	if eng.Metrics() != reg {
		t.Fatal("Metrics() should return the wired registry")
	}

	tables := c.Tables[:8]
	eng.PredictBatch(tables)

	s := reg.Snapshot()
	wantChunks := uint64(len(eng.chunkBounds(len(tables))))
	for name, want := range map[string]uint64{
		"infer.stage.prepare.seconds": uint64(len(tables)),
		"infer.stage.union.seconds":   wantChunks,
		"infer.stage.forward.seconds": wantChunks,
		"infer.stage.decode.seconds":  wantChunks,
		"infer.chunk.tables":          wantChunks,
		"infer.batch.tables":          1,
	} {
		if got := s.Histograms[name].Count; got != want {
			t.Errorf("%s count = %d, want %d", name, got, want)
		}
	}
	if got := s.Counters["infer.batches"]; got != 1 {
		t.Errorf("infer.batches = %d, want 1", got)
	}
	if got := s.Counters["infer.tables"]; got != uint64(len(tables)) {
		t.Errorf("infer.tables = %d, want %d", got, len(tables))
	}
	// Pool fully drained: the busy gauge must be back to zero.
	if got := s.Gauges["infer.workers.busy"]; got != 0 {
		t.Errorf("infer.workers.busy = %v after batch, want 0", got)
	}
	// EnableMetrics also registers the encoder cache gauges.
	if _, ok := s.Gauges["lm.cache.text.entries"]; !ok {
		t.Error("encoder cache gauges not registered")
	}
}

// TestMetricsSingleTablePaths: Predict and the 1-table PredictBatch
// shortcut must count tables exactly once.
func TestMetricsSingleTablePaths(t *testing.T) {
	m, c := trainedModel(t)
	reg := obs.NewRegistry()
	eng := New(m, WithMetrics(reg))

	eng.Predict(c.Tables[0])
	eng.PredictBatch(c.Tables[:1])

	s := reg.Snapshot()
	if got := s.Counters["infer.tables"]; got != 2 {
		t.Fatalf("infer.tables = %d, want 2", got)
	}
	if got := s.Counters["infer.batches"]; got != 1 {
		t.Fatalf("infer.batches = %d, want 1", got)
	}
	if got := s.Histograms["infer.stage.prepare.seconds"].Count; got != 2 {
		t.Fatalf("prepare count = %d, want 2", got)
	}
	if got := s.Histograms["infer.stage.decode.seconds"].Count; got != 2 {
		t.Fatalf("decode count = %d, want 2", got)
	}
}

// TestInstrumentationPreservesOutput: metrics must be observational only —
// instrumented and uninstrumented engines produce identical predictions.
func TestInstrumentationPreservesOutput(t *testing.T) {
	m, c := trainedModel(t)
	plain := New(m, WithWorkers(3), WithMaxBatch(3))
	inst := New(m, WithWorkers(3), WithMaxBatch(3), WithMetrics(obs.NewRegistry()))

	tables := c.Tables[:7]
	want := plain.PredictBatch(tables)
	got := inst.PredictBatch(tables)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("instrumented PredictBatch diverged from uninstrumented")
	}
	if !reflect.DeepEqual(plain.Predict(tables[0]), inst.Predict(tables[0])) {
		t.Fatal("instrumented Predict diverged from uninstrumented")
	}
}

// TestMetricsDefaultOff: without WithMetrics the engine records nothing.
func TestMetricsDefaultOff(t *testing.T) {
	m, c := trainedModel(t)
	eng := New(m)
	if eng.Metrics() != nil {
		t.Fatal("default engine should be uninstrumented")
	}
	eng.PredictBatch(c.Tables[:3]) // must not panic on nil metric handles
}

// TestMetricsConcurrentPredictBatch hammers a shared instrumented engine
// from many goroutines while snapshots run — the acceptance race test for
// registry snapshots under concurrent PredictBatch load.
func TestMetricsConcurrentPredictBatch(t *testing.T) {
	m, c := trainedModel(t)
	reg := obs.NewRegistry()
	eng := New(m, WithWorkers(2), WithMaxBatch(3), WithMetrics(reg))

	const callers = 4
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tables := []*table.Table{
				c.Tables[g%len(c.Tables)],
				c.Tables[(g+1)%len(c.Tables)],
				c.Tables[(g+2)%len(c.Tables)],
				c.Tables[(g+3)%len(c.Tables)],
			}
			for rep := 0; rep < 3; rep++ {
				eng.PredictBatch(tables)
				_ = reg.Snapshot()
			}
		}(g)
	}
	wg.Wait()

	s := reg.Snapshot()
	if got := s.Counters["infer.tables"]; got != callers*3*4 {
		t.Fatalf("infer.tables = %d, want %d", got, callers*3*4)
	}
}
