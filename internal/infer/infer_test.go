package infer

import (
	"sync"
	"testing"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/lm"
)

// trainedModel trains a small model once for the whole test package.
var (
	modelOnce sync.Once
	testModel *core.Model
	testCorp  *data.Corpus
)

func trainedModel(t *testing.T) (*core.Model, *data.Corpus) {
	t.Helper()
	modelOnce.Do(func() {
		c := data.GenerateSportsTables(data.SportsConfig{
			NumTables: 24, Seed: 11, MinRows: 6, MaxRows: 10, WeakNameProb: 0.1, Domains: 3,
		})
		enc := lm.NewEncoder(lm.Config{Dim: 32, Layers: 1, Heads: 2, FFNDim: 64, MaxLen: 256, Buckets: 1 << 12, Seed: 7})
		cfg := core.DefaultConfig(enc)
		cfg.Epochs = 4
		cfg.Patience = 4
		m, err := core.Train(c, []int{0, 1, 2, 3, 4, 5, 6, 7}, []int{8, 9}, cfg)
		if err != nil {
			panic(err)
		}
		testModel, testCorp = m, c
	})
	if testModel == nil {
		t.Fatal("model training failed")
	}
	return testModel, testCorp
}

// TestPredictBatchMatchesPredictTable is the engine's core contract: the
// batched union forward pass must be bit-identical to the legacy per-table
// path — same types, same confidences, down to the last float.
func TestPredictBatchMatchesPredictTable(t *testing.T) {
	m, c := trainedModel(t)
	tables := c.Tables[10:22]

	eng := New(m, WithWorkers(4))
	batch := eng.PredictBatch(tables)
	if len(batch) != len(tables) {
		t.Fatalf("PredictBatch returned %d results for %d tables", len(batch), len(tables))
	}
	for ti, tab := range tables {
		want := m.PredictTable(tab)
		got := batch[ti]
		if len(got) != len(want) {
			t.Fatalf("table %d: %d predictions, want %d", ti, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("table %d col %d: batch %+v != single %+v", ti, i, got[i], want[i])
			}
		}
	}
}

func TestPredictBatchEmptyAndSingle(t *testing.T) {
	m, c := trainedModel(t)
	eng := New(m)
	if got := eng.PredictBatch(nil); got != nil {
		t.Fatalf("empty batch should return nil, got %v", got)
	}
	single := eng.PredictBatch(c.Tables[:1])
	want := m.PredictTable(c.Tables[0])
	if len(single) != 1 || len(single[0]) != len(want) {
		t.Fatalf("single-table batch shape mismatch")
	}
	for i := range want {
		if single[0][i] != want[i] {
			t.Fatalf("single-table batch diverged at col %d", i)
		}
	}
}

// TestEvaluateMatchesModelEvaluate asserts the engine's batched evaluation
// reproduces core.Model.Evaluate exactly (same prediction list, same
// metrics), across batch sizes that do and don't divide the table count.
func TestEvaluateMatchesModelEvaluate(t *testing.T) {
	m, c := trainedModel(t)
	idx := []int{10, 11, 12, 13, 14, 15, 16}
	wantSplit, wantPreds := m.Evaluate(c, idx)
	for _, mb := range []int{1, 3, 16} {
		eng := New(m, WithWorkers(4), WithMaxBatch(mb))
		gotSplit, gotPreds := eng.Evaluate(c, idx)
		if len(gotPreds) != len(wantPreds) {
			t.Fatalf("maxBatch=%d: %d preds, want %d", mb, len(gotPreds), len(wantPreds))
		}
		for i := range wantPreds {
			if gotPreds[i] != wantPreds[i] {
				t.Fatalf("maxBatch=%d: pred %d = %+v, want %+v", mb, i, gotPreds[i], wantPreds[i])
			}
		}
		if gotSplit.Overall.WeightedF1 != wantSplit.Overall.WeightedF1 {
			t.Fatalf("maxBatch=%d: weighted F1 %v != %v", mb, gotSplit.Overall.WeightedF1, wantSplit.Overall.WeightedF1)
		}
	}
}

// TestChunkingInvariance asserts PredictBatch output does not depend on how
// the batch is split into union forward passes: any worker count and
// maxBatch must produce the same bits.
func TestChunkingInvariance(t *testing.T) {
	m, c := trainedModel(t)
	tables := c.Tables[:11]
	want := New(m, WithWorkers(1), WithMaxBatch(11)).PredictBatch(tables)
	for _, w := range []int{1, 2, 3, 5} {
		for _, mb := range []int{2, 5, 16} {
			got := New(m, WithWorkers(w), WithMaxBatch(mb)).PredictBatch(tables)
			for ti := range want {
				for i := range want[ti] {
					if got[ti][i] != want[ti][i] {
						t.Fatalf("workers=%d maxBatch=%d: table %d col %d diverged", w, mb, ti, i)
					}
				}
			}
		}
	}
}

// TestChunkBounds checks the chunk partition: contiguous, complete, and
// bounded by maxBatch.
func TestChunkBounds(t *testing.T) {
	for _, tc := range []struct{ n, workers, maxBatch, chunks int }{
		{16, 1, 16, 1}, // one worker: a single whole-input union
		{16, 4, 16, 4}, // spread across the pool
		{16, 4, 3, 6},  // maxBatch caps the chunk size
		{5, 8, 16, 5},  // more workers than tables: one table per chunk
		{0, 4, 16, 0},  // empty input
		{1, 4, 16, 1},
	} {
		e := &Engine{workers: tc.workers, maxBatch: tc.maxBatch}
		bounds := e.chunkBounds(tc.n)
		if len(bounds) != tc.chunks {
			t.Fatalf("n=%d w=%d mb=%d: %d chunks, want %d", tc.n, tc.workers, tc.maxBatch, len(bounds), tc.chunks)
		}
		at := 0
		for _, b := range bounds {
			if b[0] != at || b[1] <= b[0] || b[1]-b[0] > tc.maxBatch {
				t.Fatalf("n=%d w=%d mb=%d: bad chunk %v at %d", tc.n, tc.workers, tc.maxBatch, b, at)
			}
			at = b[1]
		}
		if at != tc.n {
			t.Fatalf("n=%d w=%d mb=%d: chunks cover %d of %d", tc.n, tc.workers, tc.maxBatch, at, tc.n)
		}
	}
}

// TestPredictTableDeterministic guards the bit-identity contract's
// foundation: repeated single-table predictions must produce identical
// floats (this once failed at ulp level due to map-iteration order in the
// entropy features).
func TestPredictTableDeterministic(t *testing.T) {
	m, c := trainedModel(t)
	for i, tab := range c.Tables[:8] {
		a := m.PredictTable(tab)
		b := m.PredictTable(tab)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("table %d col %d: %+v != %+v", i, j, a[j], b[j])
			}
		}
	}
}

// TestConcurrentPredictions exercises one shared Engine from many
// goroutines (meaningful under -race): the model, encoder cache, and
// engine must all be read-only or internally synchronized.
func TestConcurrentPredictions(t *testing.T) {
	m, c := trainedModel(t)
	eng := New(m, WithWorkers(2))
	want := make([][]core.ColumnPrediction, len(c.Tables))
	for i, tab := range c.Tables {
		want[i] = m.PredictTable(tab)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				if w%2 == 0 {
					// batched path
					got := eng.PredictBatch(c.Tables)
					for i := range want {
						if len(got[i]) != len(want[i]) || got[i][0] != want[i][0] {
							t.Errorf("worker %d: batch result diverged on table %d", w, i)
							return
						}
					}
				} else {
					// single-table path
					i := (w + rep) % len(c.Tables)
					got := eng.Predict(c.Tables[i])
					for j := range want[i] {
						if got[j] != want[i][j] {
							t.Errorf("worker %d: predict diverged on table %d col %d", w, i, j)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
