package infer

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// leaseEngine builds a bare engine for lifecycle tests — the refcount does
// not care whether a model is attached.
func leaseEngine() *Engine { return New(nil, WithWorkers(2)) }

func TestAcquireReleaseLifecycle(t *testing.T) {
	e := leaseEngine()
	if got := e.Refs(); got != 1 {
		t.Fatalf("fresh engine refs = %d, want 1 (owner)", got)
	}
	if !e.Acquire() {
		t.Fatal("Acquire on a live engine failed")
	}
	if got := e.Refs(); got != 2 {
		t.Fatalf("refs after Acquire = %d, want 2", got)
	}
	e.Release()
	if got := e.Refs(); got != 1 {
		t.Fatalf("refs after Release = %d, want 1", got)
	}
}

func TestRetireDrainsAndRefusesNewLeases(t *testing.T) {
	e := leaseEngine()
	if !e.Acquire() {
		t.Fatal("Acquire failed")
	}
	var drained atomic.Int32
	e.Retire(func() { drained.Add(1) })
	if e.Acquire() {
		t.Fatal("Acquire succeeded after Retire")
	}
	if drained.Load() != 0 {
		t.Fatal("drained callback ran with a lease outstanding")
	}
	if !e.Retired() {
		t.Fatal("Retired() = false after Retire")
	}
	e.Release() // last lease out
	if drained.Load() != 1 {
		t.Fatalf("drained callback ran %d times, want 1", drained.Load())
	}
	if e.Acquire() {
		t.Fatal("Acquire resurrected a drained engine")
	}
}

func TestRetireWithNoLeasesDrainsImmediately(t *testing.T) {
	e := leaseEngine()
	var drained atomic.Int32
	e.Retire(func() { drained.Add(1) })
	if drained.Load() != 1 {
		t.Fatalf("drained callback ran %d times, want 1 (no leases outstanding)", drained.Load())
	}
}

func TestRetireNilCallback(t *testing.T) {
	e := leaseEngine()
	e.Retire(nil) // must not panic
	if e.Refs() != 0 {
		t.Fatalf("refs = %d, want 0", e.Refs())
	}
}

// TestLeaseRace hammers Acquire/Release from many goroutines while Retire
// fires mid-storm: the drained callback must run exactly once, refs must
// settle at zero, and no Acquire may succeed after the drain completes.
// Run under -race by `make race`.
func TestLeaseRace(t *testing.T) {
	const goroutines = 16
	const iters = 400
	e := leaseEngine()
	var drained atomic.Int32
	var acquired, postDrainAcquire atomic.Int64

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				if e.Acquire() {
					acquired.Add(1)
					if drained.Load() > 0 {
						// A lease granted strictly after the drain callback
						// ran means the refcount resurrected.
						postDrainAcquire.Add(1)
					}
					e.Release()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		// Let the storm land some leases first — retiring before anyone
		// acquired would prove nothing about draining under contention.
		// Before Retire every Acquire succeeds, so this loop terminates.
		for acquired.Load() < goroutines {
			runtime.Gosched()
		}
		e.Retire(func() { drained.Add(1) })
	}()
	close(start)
	wg.Wait()

	if got := drained.Load(); got != 1 {
		t.Fatalf("drained callback ran %d times, want exactly 1", got)
	}
	if got := e.Refs(); got != 0 {
		t.Fatalf("refs settled at %d, want 0", got)
	}
	if got := postDrainAcquire.Load(); got != 0 {
		t.Fatalf("%d leases were granted after the drain completed", got)
	}
	if acquired.Load() == 0 {
		t.Fatal("no goroutine ever held a lease — test proved nothing")
	}
}

func TestConfigAccessors(t *testing.T) {
	e := New(nil, WithWorkers(3), WithMaxBatch(7))
	if e.Workers() != 3 || e.MaxBatch() != 7 {
		t.Fatalf("accessors = (%d, %d), want (3, 7)", e.Workers(), e.MaxBatch())
	}
}
