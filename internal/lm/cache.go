package lm

import (
	"sync"
	"sync/atomic"
)

// numShards spreads the embedding caches over independently locked shards
// so the parallel prepare workers of the inference engine don't serialize
// on one mutex. Power of two for cheap masking.
const numShards = 16

// cacheShard is one independently RW-locked slice of the key space.
type cacheShard struct {
	mu sync.RWMutex
	m  map[string][]float32
}

// vecCache is a sharded, size-bounded string→vector cache with hit/miss
// accounting. Reads take only a shard RLock; fills use double-checked
// locking so concurrent misses on the same key converge on one canonical
// vector. When a shard reaches its entry bound it is reset wholesale —
// the vectors are deterministic recomputations, so dropping them affects
// latency, never correctness (same policy the old single-map cache used,
// now per shard and applying to both token and text caches).
type vecCache struct {
	shards   [numShards]cacheShard
	shardCap int // max entries per shard before reset
	// hits/misses/evicted are cumulative since the last stats reset;
	// evicted counts entries dropped by wholesale shard resets, the signal
	// for cache thrash in long-running serve processes.
	hits, misses, evicted atomic.Uint64
}

func newVecCache(totalCap int) *vecCache {
	c := &vecCache{shardCap: totalCap / numShards}
	if c.shardCap < 1 {
		c.shardCap = 1
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string][]float32)
	}
	return c
}

// shardFor hashes the key to a shard (FNV-1a, masked).
func shardFor(key string) uint {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return uint(h) & (numShards - 1)
}

// get returns the cached vector for key, counting the hit or miss.
func (c *vecCache) get(key string) ([]float32, bool) {
	s := &c.shards[shardFor(key)]
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// put stores v under key and returns the canonical vector: if another
// goroutine filled the key between get and put, the already-stored vector
// wins, so all callers share one backing slice.
func (c *vecCache) put(key string, v []float32) []float32 {
	s := &c.shards[shardFor(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.m[key]; ok {
		return prev
	}
	if len(s.m) >= c.shardCap {
		c.evicted.Add(uint64(len(s.m)))
		s.m = make(map[string][]float32)
	}
	s.m[key] = v
	return v
}

// len returns the total entry count across shards.
func (c *vecCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// resetStats zeroes the hit/miss/eviction counters (entries stay cached).
func (c *vecCache) resetStats() {
	c.hits.Store(0)
	c.misses.Store(0)
	c.evicted.Store(0)
}

// CacheStats reports the encoder's embedding-cache effectiveness: entry
// counts and cumulative hit/miss/eviction counters for the token-embedding
// and full-text CLS caches. Counters are monotone between ResetCacheStats
// calls. EntriesEvicted counts entries dropped by capacity resets — a
// steadily climbing value on a long-running serve process means the working
// set exceeds the cache bound (cache thrash) and recomputation is eating
// latency.
type CacheStats struct {
	TokenEntries, TextEntries               int
	TokenHits, TokenMisses                  uint64
	TextHits, TextMisses                    uint64
	TokenEntriesEvicted, TextEntriesEvicted uint64
}

// EntriesEvicted returns the total entries dropped across both caches.
func (s CacheStats) EntriesEvicted() uint64 {
	return s.TokenEntriesEvicted + s.TextEntriesEvicted
}

// CacheStats returns a snapshot of the embedding caches.
func (e *Encoder) CacheStats() CacheStats {
	return CacheStats{
		TokenEntries:        e.tokenVecs.len(),
		TextEntries:         e.textVecs.len(),
		TokenHits:           e.tokenVecs.hits.Load(),
		TokenMisses:         e.tokenVecs.misses.Load(),
		TextHits:            e.textVecs.hits.Load(),
		TextMisses:          e.textVecs.misses.Load(),
		TokenEntriesEvicted: e.tokenVecs.evicted.Load(),
		TextEntriesEvicted:  e.textVecs.evicted.Load(),
	}
}

// ResetCacheStats zeroes the hit/miss/eviction counters of both caches
// without dropping any cached vectors. Long-running serve processes reset
// between measurement windows so rates (hit ratio, evictions/interval) are
// computable from two snapshots of a fresh window.
func (e *Encoder) ResetCacheStats() {
	e.tokenVecs.resetStats()
	e.textVecs.resetStats()
}
