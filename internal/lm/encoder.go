package lm

import (
	"math"
	"math/rand"

	"github.com/sematype/pythagoras/internal/tensor"
)

// Config describes the frozen encoder. Dim plays the role of BERT's hidden
// size (768 in the paper; we default to a smaller width — the architecture
// is width-agnostic and the paper's 768 is a flag away).
type Config struct {
	Dim     int // hidden width of token states and output embeddings
	Layers  int // transformer encoder layers
	Heads   int // attention heads; must divide Dim
	FFNDim  int // feed-forward inner width (default 2*Dim)
	MaxLen  int // maximum sequence length incl. [CLS]/[SEP] (BERT: 512)
	Buckets int // hashed subword embedding buckets
	Seed    int64
}

// DefaultConfig returns the configuration used across tests and the
// reduced-scale experiment harness.
func DefaultConfig() Config {
	return Config{Dim: 64, Layers: 2, Heads: 4, FFNDim: 128, MaxLen: 512, Buckets: 1 << 16, Seed: 20240325}
}

// PaperScaleConfig mirrors bert-base-uncased's geometry.
func PaperScaleConfig() Config {
	return Config{Dim: 768, Layers: 12, Heads: 12, FFNDim: 3072, MaxLen: 512, Buckets: 1 << 18, Seed: 20240325}
}

type layerWeights struct {
	wq, wk, wv, wo *tensor.F32 // Dim×Dim
	ffn1           *tensor.F32 // Dim×FFNDim
	ffn1b          *tensor.F32 // 1×FFNDim
	ffn2           *tensor.F32 // FFNDim×Dim
	ffn2b          *tensor.F32 // 1×Dim
}

// Encoder is the frozen pseudo-BERT. Because its weights are frozen —
// never trained, never needing float64 gradient precision — all storage
// and arithmetic are float32: half the cache footprint for the weights,
// caches, and per-token states the encode stage streams through. float32
// arithmetic is exactly as deterministic as float64 (same inputs → same
// bits, on every run and every worker count); values widen to float64 only
// when encoder output crosses into the float64 training tape (see
// tensor.WidenInto and DESIGN.md §12).
//
// It is safe for concurrent use; the embedding caches are sharded and
// RW-locked so parallel encoders (the inference engine's prepare workers)
// don't serialize on a single mutex.
type Encoder struct {
	cfg    Config
	tok    *Tokenizer
	layers []layerWeights
	pos    *tensor.F32 // MaxLen×Dim sinusoidal positions
	cls    []float32   // dedicated [CLS] embedding
	sep    []float32   // dedicated [SEP] embedding

	tokenVecs *vecCache // hashed token embedding cache
	textVecs  *vecCache // full-text CLS cache
}

// Cache bounds: both caches drop a full shard when it exceeds its share of
// the bound — entries are deterministic recomputations, so eviction costs
// latency, never correctness. Token vocabulary is small and hot; text keys
// are unbounded under lake-scale traffic, so the text bound matches the
// pre-shard cache's 1<<17 cap.
const (
	tokenCacheCap = 1 << 16
	textCacheCap  = 1 << 17
)

// NewEncoder builds the frozen encoder. All weights derive deterministically
// from cfg.Seed, so two encoders with equal configs are functionally
// identical ("the same pre-trained checkpoint"). Weights are drawn in
// float64 (the rng stream is unchanged from the float64 encoder) and
// rounded once to float32 storage.
func NewEncoder(cfg Config) *Encoder {
	if cfg.FFNDim == 0 {
		cfg.FFNDim = 2 * cfg.Dim
	}
	if cfg.Heads == 0 || cfg.Dim%cfg.Heads != 0 {
		panic("lm: Heads must divide Dim")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	e := &Encoder{
		cfg:       cfg,
		tok:       NewTokenizer(),
		tokenVecs: newVecCache(tokenCacheCap),
		textVecs:  newVecCache(textCacheCap),
	}
	scaled := func(rows, cols int) *tensor.F32 {
		m := tensor.NewF32(rows, cols)
		std := 1 / math.Sqrt(float64(rows))
		for i := range m.Data {
			m.Data[i] = float32(rng.NormFloat64() * std)
		}
		return m
	}
	for l := 0; l < cfg.Layers; l++ {
		e.layers = append(e.layers, layerWeights{
			wq: scaled(cfg.Dim, cfg.Dim), wk: scaled(cfg.Dim, cfg.Dim),
			wv: scaled(cfg.Dim, cfg.Dim), wo: scaled(cfg.Dim, cfg.Dim),
			ffn1: scaled(cfg.Dim, cfg.FFNDim), ffn1b: tensor.NewF32(1, cfg.FFNDim),
			ffn2: scaled(cfg.FFNDim, cfg.Dim), ffn2b: tensor.NewF32(1, cfg.Dim),
		})
	}
	e.pos = sinusoidalPositions(cfg.MaxLen, cfg.Dim)
	e.cls = randomUnit(rng, cfg.Dim)
	e.sep = randomUnit(rng, cfg.Dim)
	return e
}

// Config returns the encoder's configuration.
func (e *Encoder) Config() Config { return e.cfg }

// Dim returns the output embedding width.
func (e *Encoder) Dim() int { return e.cfg.Dim }

func randomUnit(rng *rand.Rand, dim int) []float32 {
	v := make([]float64, dim)
	var n float64
	for i := range v {
		v[i] = rng.NormFloat64()
		n += v[i] * v[i]
	}
	n = math.Sqrt(n)
	out := make([]float32, dim)
	for i := range v {
		out[i] = float32(v[i] / n)
	}
	return out
}

func sinusoidalPositions(maxLen, dim int) *tensor.F32 {
	p := tensor.NewF32(maxLen, dim)
	for pos := 0; pos < maxLen; pos++ {
		row := p.Row(pos)
		for i := 0; i < dim; i += 2 {
			freq := math.Pow(10000, -float64(i)/float64(dim))
			row[i] = float32(math.Sin(float64(pos) * freq))
			if i+1 < dim {
				row[i+1] = float32(math.Cos(float64(pos) * freq))
			}
		}
	}
	return p
}

// splitmix64 is the deterministic hash driving all "pre-trained" token
// embeddings.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashString(s string, salt uint64) uint64 {
	h := uint64(14695981039346656037) ^ splitmix64(salt)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// bucketVec deterministically generates the embedding for one hash bucket.
// Accumulation happens in float64 — the n-gram sum in TokenEmbedding is the
// one place catastrophic cancellation could bite float32, and it is cold
// (cached); results are narrowed once at the cache boundary.
func (e *Encoder) bucketVec(bucket uint64, out []float64, scale float64) {
	state := splitmix64(bucket)
	for i := range out {
		state = splitmix64(state)
		// map to approximately N(0,1) via sum of two uniforms (fast,
		// deterministic, good enough for random features)
		u1 := float64(state>>11) / (1 << 53)
		state = splitmix64(state)
		u2 := float64(state>>11) / (1 << 53)
		out[i] += scale * (u1 + u2 - 1) * 3.46 // var(U+U-1)=1/6 → ·√12
	}
}

// TokenEmbedding returns the frozen embedding of one token: the sum of its
// whole-token hash vector and its character 3–5-gram hash vectors
// (fastText-style), L2-normalized. Results are cached.
func (e *Encoder) TokenEmbedding(token string) []float32 {
	switch token {
	case TokenCLS:
		return e.cls
	case TokenSEP:
		return e.sep
	}
	if v, ok := e.tokenVecs.get(token); ok {
		return v
	}

	dim := e.cfg.Dim
	v := make([]float64, dim)
	mask := uint64(e.cfg.Buckets - 1)
	e.bucketVec(hashString(token, 1)&mask, v, 1)
	padded := "<" + token + ">"
	ngrams := 0
	for n := 3; n <= 5; n++ {
		for i := 0; i+n <= len(padded); i++ {
			ngrams++
		}
	}
	if ngrams > 0 {
		scale := 1 / math.Sqrt(float64(ngrams))
		for n := 3; n <= 5; n++ {
			for i := 0; i+n <= len(padded); i++ {
				e.bucketVec(hashString(padded[i:i+n], 2)&mask, v, scale)
			}
		}
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
	} else {
		norm = 1
	}
	vf := make([]float32, dim)
	for i, x := range v {
		vf[i] = float32(x / norm)
	}
	return e.tokenVecs.put(token, vf)
}

// EncodeTokens runs the frozen transformer over a token sequence (already
// including [CLS]/[SEP] as desired) and returns the final hidden state of
// every token as a len(tokens)×Dim float32 matrix. Sequences longer than
// MaxLen are truncated — the same hard limit the paper discusses for Doduo.
func (e *Encoder) EncodeTokens(tokens []string) *tensor.F32 {
	if len(tokens) > e.cfg.MaxLen {
		tokens = tokens[:e.cfg.MaxLen]
	}
	n := len(tokens)
	if n == 0 {
		return tensor.NewF32(0, e.cfg.Dim)
	}
	h := tensor.NewF32(n, e.cfg.Dim)
	for i, tok := range tokens {
		emb := e.TokenEmbedding(tok)
		row := h.Row(i)
		copy(row, emb)
		prow := e.pos.Row(i)
		for j := range row {
			row[j] += 0.1 * prow[j]
		}
	}
	for _, lw := range e.layers {
		h = e.encoderLayer(h, lw)
	}
	return h
}

func matMulF32(a, b *tensor.F32) *tensor.F32 {
	out := tensor.NewF32(a.Rows, b.Cols)
	tensor.MatMulF32Into(out, a, b)
	return out
}

// encoderLayer applies one frozen transformer block: multi-head
// self-attention with residual + layernorm, then a GELU FFN with residual +
// layernorm. All storage is float32; softmax and layernorm use float64
// scalar math (exp/sqrt) on float32 inputs — still fully deterministic.
func (e *Encoder) encoderLayer(h *tensor.F32, lw layerWeights) *tensor.F32 {
	n, dim := h.Rows, e.cfg.Dim
	heads := e.cfg.Heads
	hd := dim / heads

	q := matMulF32(h, lw.wq)
	k := matMulF32(h, lw.wk)
	v := matMulF32(h, lw.wv)

	ctx := tensor.NewF32(n, dim)
	scale := 1 / math.Sqrt(float64(hd))
	scores := make([]float64, n)
	for hd0 := 0; hd0 < heads; hd0++ {
		off := hd0 * hd
		for i := 0; i < n; i++ {
			qi := q.Row(i)[off : off+hd]
			mx := math.Inf(-1)
			for j := 0; j < n; j++ {
				kj := k.Row(j)[off : off+hd]
				var s float32
				for d := 0; d < hd; d++ {
					s += qi[d] * kj[d]
				}
				sf := float64(s) * scale
				scores[j] = sf
				if sf > mx {
					mx = sf
				}
			}
			var z float64
			for j := 0; j < n; j++ {
				scores[j] = math.Exp(scores[j] - mx)
				z += scores[j]
			}
			crow := ctx.Row(i)[off : off+hd]
			for j := 0; j < n; j++ {
				w := float32(scores[j] / z)
				vj := v.Row(j)[off : off+hd]
				for d := 0; d < hd; d++ {
					crow[d] += w * vj[d]
				}
			}
		}
	}
	attnOut := matMulF32(ctx, lw.wo)
	h1 := tensor.NewF32(n, dim)
	for i, hv := range h.Data {
		h1.Data[i] = hv + attnOut.Data[i]
	}
	layerNormInPlaceF32(h1)

	ffn := matMulF32(h1, lw.ffn1)
	for i := 0; i < n; i++ {
		row := ffn.Row(i)
		for j, bv := range lw.ffn1b.Data {
			row[j] = geluF32(row[j] + bv)
		}
	}
	ffnOut := matMulF32(ffn, lw.ffn2)
	h2 := tensor.NewF32(n, dim)
	for i := 0; i < n; i++ {
		row := ffnOut.Row(i)
		h1row := h1.Row(i)
		orow := h2.Row(i)
		for j, bv := range lw.ffn2b.Data {
			orow[j] = h1row[j] + row[j] + bv
		}
	}
	layerNormInPlaceF32(h2)
	return h2
}

func gelu(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(0.7978845608*(x+0.044715*x*x*x)))
}

func geluF32(x float32) float32 {
	return float32(gelu(float64(x)))
}

func layerNormInPlaceF32(m *tensor.F32) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(len(row))
		var varr float64
		for _, v := range row {
			d := float64(v) - mean
			varr += d * d
		}
		varr /= float64(len(row))
		inv := 1 / math.Sqrt(varr+1e-6)
		for j := range row {
			row[j] = float32((float64(row[j]) - mean) * inv)
		}
	}
}

// Encode returns the CLS vector of "[CLS] text [SEP]" — the paper's initial
// node representation, in the encoder's native float32. Results are cached
// per distinct text; the returned slice is shared and must not be mutated.
// Callers feeding a float64 tape widen at the copy (the tape boundary).
func (e *Encoder) Encode(text string) []float32 {
	if v, ok := e.textVecs.get(text); ok {
		return v
	}

	tokens := append([]string{TokenCLS}, e.tok.Tokenize(text)...)
	tokens = append(tokens, TokenSEP)
	states := e.EncodeTokens(tokens)
	v := append([]float32(nil), states.Row(0)...)

	return e.textVecs.put(text, v)
}

// Tokenize exposes the encoder's tokenizer (Doduo's table serializer needs
// token counts to respect the 512 budget).
func (e *Encoder) Tokenize(text string) []string { return e.tok.Tokenize(text) }
