package lm

import (
	"math"
	"math/rand"

	"github.com/sematype/pythagoras/internal/tensor"
)

// Config describes the frozen encoder. Dim plays the role of BERT's hidden
// size (768 in the paper; we default to a smaller width — the architecture
// is width-agnostic and the paper's 768 is a flag away).
type Config struct {
	Dim     int // hidden width of token states and output embeddings
	Layers  int // transformer encoder layers
	Heads   int // attention heads; must divide Dim
	FFNDim  int // feed-forward inner width (default 2*Dim)
	MaxLen  int // maximum sequence length incl. [CLS]/[SEP] (BERT: 512)
	Buckets int // hashed subword embedding buckets
	Seed    int64
}

// DefaultConfig returns the configuration used across tests and the
// reduced-scale experiment harness.
func DefaultConfig() Config {
	return Config{Dim: 64, Layers: 2, Heads: 4, FFNDim: 128, MaxLen: 512, Buckets: 1 << 16, Seed: 20240325}
}

// PaperScaleConfig mirrors bert-base-uncased's geometry.
func PaperScaleConfig() Config {
	return Config{Dim: 768, Layers: 12, Heads: 12, FFNDim: 3072, MaxLen: 512, Buckets: 1 << 18, Seed: 20240325}
}

type layerWeights struct {
	wq, wk, wv, wo *tensor.Matrix // Dim×Dim
	ffn1           *tensor.Matrix // Dim×FFNDim
	ffn1b          *tensor.Matrix // 1×FFNDim
	ffn2           *tensor.Matrix // FFNDim×Dim
	ffn2b          *tensor.Matrix // 1×Dim
}

// Encoder is the frozen pseudo-BERT. It is safe for concurrent use; the
// embedding caches are sharded and RW-locked so parallel encoders (the
// inference engine's prepare workers) don't serialize on a single mutex.
type Encoder struct {
	cfg    Config
	tok    *Tokenizer
	layers []layerWeights
	pos    *tensor.Matrix // MaxLen×Dim sinusoidal positions
	cls    []float64      // dedicated [CLS] embedding
	sep    []float64      // dedicated [SEP] embedding

	tokenVecs *vecCache // hashed token embedding cache
	textVecs  *vecCache // full-text CLS cache
}

// Cache bounds: both caches drop a full shard when it exceeds its share of
// the bound — entries are deterministic recomputations, so eviction costs
// latency, never correctness. Token vocabulary is small and hot; text keys
// are unbounded under lake-scale traffic, so the text bound matches the
// pre-shard cache's 1<<17 cap.
const (
	tokenCacheCap = 1 << 16
	textCacheCap  = 1 << 17
)

// NewEncoder builds the frozen encoder. All weights derive deterministically
// from cfg.Seed, so two encoders with equal configs are functionally
// identical ("the same pre-trained checkpoint").
func NewEncoder(cfg Config) *Encoder {
	if cfg.FFNDim == 0 {
		cfg.FFNDim = 2 * cfg.Dim
	}
	if cfg.Heads == 0 || cfg.Dim%cfg.Heads != 0 {
		panic("lm: Heads must divide Dim")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	e := &Encoder{
		cfg:       cfg,
		tok:       NewTokenizer(),
		tokenVecs: newVecCache(tokenCacheCap),
		textVecs:  newVecCache(textCacheCap),
	}
	scaled := func(rows, cols int) *tensor.Matrix {
		m := tensor.New(rows, cols)
		std := 1 / math.Sqrt(float64(rows))
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64() * std
		}
		return m
	}
	for l := 0; l < cfg.Layers; l++ {
		e.layers = append(e.layers, layerWeights{
			wq: scaled(cfg.Dim, cfg.Dim), wk: scaled(cfg.Dim, cfg.Dim),
			wv: scaled(cfg.Dim, cfg.Dim), wo: scaled(cfg.Dim, cfg.Dim),
			ffn1: scaled(cfg.Dim, cfg.FFNDim), ffn1b: tensor.New(1, cfg.FFNDim),
			ffn2: scaled(cfg.FFNDim, cfg.Dim), ffn2b: tensor.New(1, cfg.Dim),
		})
	}
	e.pos = sinusoidalPositions(cfg.MaxLen, cfg.Dim)
	e.cls = randomUnit(rng, cfg.Dim)
	e.sep = randomUnit(rng, cfg.Dim)
	return e
}

// Config returns the encoder's configuration.
func (e *Encoder) Config() Config { return e.cfg }

// Dim returns the output embedding width.
func (e *Encoder) Dim() int { return e.cfg.Dim }

func randomUnit(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	var n float64
	for i := range v {
		v[i] = rng.NormFloat64()
		n += v[i] * v[i]
	}
	n = math.Sqrt(n)
	for i := range v {
		v[i] /= n
	}
	return v
}

func sinusoidalPositions(maxLen, dim int) *tensor.Matrix {
	p := tensor.New(maxLen, dim)
	for pos := 0; pos < maxLen; pos++ {
		row := p.Row(pos)
		for i := 0; i < dim; i += 2 {
			freq := math.Pow(10000, -float64(i)/float64(dim))
			row[i] = math.Sin(float64(pos) * freq)
			if i+1 < dim {
				row[i+1] = math.Cos(float64(pos) * freq)
			}
		}
	}
	return p
}

// splitmix64 is the deterministic hash driving all "pre-trained" token
// embeddings.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashString(s string, salt uint64) uint64 {
	h := uint64(14695981039346656037) ^ splitmix64(salt)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// bucketVec deterministically generates the embedding for one hash bucket.
func (e *Encoder) bucketVec(bucket uint64, out []float64, scale float64) {
	state := splitmix64(bucket)
	for i := range out {
		state = splitmix64(state)
		// map to approximately N(0,1) via sum of two uniforms (fast,
		// deterministic, good enough for random features)
		u1 := float64(state>>11) / (1 << 53)
		state = splitmix64(state)
		u2 := float64(state>>11) / (1 << 53)
		out[i] += scale * (u1 + u2 - 1) * 3.46 // var(U+U-1)=1/6 → ·√12
	}
}

// TokenEmbedding returns the frozen embedding of one token: the sum of its
// whole-token hash vector and its character 3–5-gram hash vectors
// (fastText-style), L2-normalized. Results are cached.
func (e *Encoder) TokenEmbedding(token string) []float64 {
	switch token {
	case TokenCLS:
		return e.cls
	case TokenSEP:
		return e.sep
	}
	if v, ok := e.tokenVecs.get(token); ok {
		return v
	}

	dim := e.cfg.Dim
	v := make([]float64, dim)
	mask := uint64(e.cfg.Buckets - 1)
	e.bucketVec(hashString(token, 1)&mask, v, 1)
	padded := "<" + token + ">"
	ngrams := 0
	for n := 3; n <= 5; n++ {
		for i := 0; i+n <= len(padded); i++ {
			ngrams++
		}
	}
	if ngrams > 0 {
		scale := 1 / math.Sqrt(float64(ngrams))
		for n := 3; n <= 5; n++ {
			for i := 0; i+n <= len(padded); i++ {
				e.bucketVec(hashString(padded[i:i+n], 2)&mask, v, scale)
			}
		}
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range v {
			v[i] /= norm
		}
	}
	return e.tokenVecs.put(token, v)
}

// EncodeTokens runs the frozen transformer over a token sequence (already
// including [CLS]/[SEP] as desired) and returns the final hidden state of
// every token as a len(tokens)×Dim matrix. Sequences longer than MaxLen are
// truncated — the same hard limit the paper discusses for Doduo.
func (e *Encoder) EncodeTokens(tokens []string) *tensor.Matrix {
	if len(tokens) > e.cfg.MaxLen {
		tokens = tokens[:e.cfg.MaxLen]
	}
	n := len(tokens)
	if n == 0 {
		return tensor.New(0, e.cfg.Dim)
	}
	h := tensor.New(n, e.cfg.Dim)
	for i, tok := range tokens {
		emb := e.TokenEmbedding(tok)
		row := h.Row(i)
		copy(row, emb)
		prow := e.pos.Row(i)
		for j := range row {
			row[j] += 0.1 * prow[j]
		}
	}
	for _, lw := range e.layers {
		h = e.encoderLayer(h, lw)
	}
	return h
}

// encoderLayer applies one frozen transformer block: multi-head
// self-attention with residual + layernorm, then a GELU FFN with residual +
// layernorm.
func (e *Encoder) encoderLayer(h *tensor.Matrix, lw layerWeights) *tensor.Matrix {
	n, dim := h.Rows, e.cfg.Dim
	heads := e.cfg.Heads
	hd := dim / heads

	q := tensor.MatMul(h, lw.wq)
	k := tensor.MatMul(h, lw.wk)
	v := tensor.MatMul(h, lw.wv)

	ctx := tensor.New(n, dim)
	scale := 1 / math.Sqrt(float64(hd))
	scores := make([]float64, n)
	for hd0 := 0; hd0 < heads; hd0++ {
		off := hd0 * hd
		for i := 0; i < n; i++ {
			qi := q.Row(i)[off : off+hd]
			mx := math.Inf(-1)
			for j := 0; j < n; j++ {
				kj := k.Row(j)[off : off+hd]
				var s float64
				for d := 0; d < hd; d++ {
					s += qi[d] * kj[d]
				}
				s *= scale
				scores[j] = s
				if s > mx {
					mx = s
				}
			}
			var z float64
			for j := 0; j < n; j++ {
				scores[j] = math.Exp(scores[j] - mx)
				z += scores[j]
			}
			crow := ctx.Row(i)[off : off+hd]
			for j := 0; j < n; j++ {
				w := scores[j] / z
				vj := v.Row(j)[off : off+hd]
				for d := 0; d < hd; d++ {
					crow[d] += w * vj[d]
				}
			}
		}
	}
	attnOut := tensor.MatMul(ctx, lw.wo)
	h1 := tensor.Add(h, attnOut)
	layerNormInPlace(h1)

	ffn := tensor.AddRowBroadcast(tensor.MatMul(h1, lw.ffn1), lw.ffn1b)
	for i := range ffn.Data {
		ffn.Data[i] = gelu(ffn.Data[i])
	}
	ffnOut := tensor.AddRowBroadcast(tensor.MatMul(ffn, lw.ffn2), lw.ffn2b)
	h2 := tensor.Add(h1, ffnOut)
	layerNormInPlace(h2)
	return h2
}

func gelu(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(0.7978845608*(x+0.044715*x*x*x)))
}

func layerNormInPlace(m *tensor.Matrix) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		var varr float64
		for _, v := range row {
			d := v - mean
			varr += d * d
		}
		varr /= float64(len(row))
		inv := 1 / math.Sqrt(varr+1e-6)
		for j := range row {
			row[j] = (row[j] - mean) * inv
		}
	}
}

// Encode returns the CLS vector of "[CLS] text [SEP]" — the paper's initial
// node representation. Results are cached per distinct text.
func (e *Encoder) Encode(text string) []float64 {
	if v, ok := e.textVecs.get(text); ok {
		return v
	}

	tokens := append([]string{TokenCLS}, e.tok.Tokenize(text)...)
	tokens = append(tokens, TokenSEP)
	states := e.EncodeTokens(tokens)
	v := append([]float64(nil), states.Row(0)...)

	return e.textVecs.put(text, v)
}

// Tokenize exposes the encoder's tokenizer (Doduo's table serializer needs
// token counts to respect the 512 budget).
func (e *Encoder) Tokenize(text string) []string { return e.tok.Tokenize(text) }
