package lm

import "github.com/sematype/pythagoras/internal/obs"

// RegisterMetrics exports the encoder's embedding-cache statistics as
// gauges on the registry, evaluated lazily at snapshot time (DESIGN.md §8):
//
//	lm.cache.{token,text}.entries   current entry count
//	lm.cache.{token,text}.hits      cumulative hits since last reset
//	lm.cache.{token,text}.misses    cumulative misses since last reset
//	lm.cache.{token,text}.evicted   entries dropped by capacity resets
//
// Nil-safe: a nil registry registers nothing.
func (e *Encoder) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	caches := map[string]*vecCache{"token": e.tokenVecs, "text": e.textVecs}
	for name, c := range caches {
		c := c
		reg.GaugeFunc("lm.cache."+name+".entries", func() float64 { return float64(c.len()) })
		reg.GaugeFunc("lm.cache."+name+".hits", func() float64 { return float64(c.hits.Load()) })
		reg.GaugeFunc("lm.cache."+name+".misses", func() float64 { return float64(c.misses.Load()) })
		reg.GaugeFunc("lm.cache."+name+".evicted", func() float64 { return float64(c.evicted.Load()) })
	}
}
