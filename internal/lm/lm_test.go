package lm

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Tokenize("Hello, World!")
	want := []string{"hello", "world"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeSpecialTokensPreserved(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Tokenize("[CLS] abc [SEP]")
	if got[0] != TokenCLS || got[len(got)-1] != TokenSEP {
		t.Fatalf("special tokens lost: %v", got)
	}
}

func TestTokenizeCamelAndSnake(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Tokenize("pointsPerGame player_age")
	want := []string{"points", "per", "game", "player", "age"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeNumbersNormalized(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Tokenize("7.5 1234 0.02")
	want := []string{"<num7e0>", "<num1e3>", "<num0e0>"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeMixedAlphanumeric(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Tokenize("top10 NBA2023")
	want := []string{"top", "<num1e1>", "nba", "<num2e3>"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeEmptyAndWhitespace(t *testing.T) {
	tok := NewTokenizer()
	if got := tok.Tokenize(""); len(got) != 0 {
		t.Fatalf("empty input produced %v", got)
	}
	if got := tok.Tokenize("   \t\n "); len(got) != 0 {
		t.Fatalf("whitespace produced %v", got)
	}
}

func TestTokenizeLongTokenTruncated(t *testing.T) {
	tok := NewTokenizer()
	long := strings.Repeat("a", 100)
	got := tok.Tokenize(long)
	if len(got) != 1 || len(got[0]) != tok.MaxTokenLen {
		t.Fatalf("long token = %v", got)
	}
}

func TestNormalizeNumberMagnitudes(t *testing.T) {
	cases := map[string]string{
		"0":       "<num0e0>",
		"0.0":     "<num0e0>",
		"5":       "<num5e0>",
		"42":      "<num4e1>",
		"999":     "<num9e2>",
		"12345":   "<num1e4>",
		"3.14159": "<num3e0>",
	}
	for in, want := range cases {
		if got := normalizeNumber(in); got != want {
			t.Errorf("normalizeNumber(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEncoderDeterministic(t *testing.T) {
	e1 := NewEncoder(DefaultConfig())
	e2 := NewEncoder(DefaultConfig())
	a := e1.Encode("basketball player stats")
	b := e2.Encode("basketball player stats")
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two encoders with the same seed must produce identical embeddings")
	}
}

func TestEncoderSeedChangesEmbedding(t *testing.T) {
	cfg := DefaultConfig()
	e1 := NewEncoder(cfg)
	cfg.Seed++
	e2 := NewEncoder(cfg)
	a := e1.Encode("hello")
	b := e2.Encode("hello")
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds must give different embeddings")
	}
}

func cosine(a, b []float32) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	return dot / math.Sqrt(na*nb+1e-12)
}

func TestSimilarTextsCloserThanDissimilar(t *testing.T) {
	// The load-bearing property of the frozen encoder: vocabulary overlap
	// implies embedding similarity.
	e := NewEncoder(DefaultConfig())
	a := e.Encode("basketball player points per game")
	b := e.Encode("basketball player assists per game")
	c := e.Encode("quarterly revenue euros finance")
	simAB := cosine(a, b)
	simAC := cosine(a, c)
	if simAB <= simAC {
		t.Fatalf("overlapping texts (%.3f) must be closer than disjoint texts (%.3f)", simAB, simAC)
	}
}

func TestSharedSubwordsIncreaseSimilarity(t *testing.T) {
	e := NewEncoder(DefaultConfig())
	a := e.TokenEmbedding("basketball")
	b := e.TokenEmbedding("basketballs") // shares most char n-grams
	c := e.TokenEmbedding("xylophone")
	if cosine(a, b) <= cosine(a, c) {
		t.Fatalf("subword overlap should imply similarity: ab=%.3f ac=%.3f",
			cosine(a, b), cosine(a, c))
	}
}

func TestTokenEmbeddingUnitNorm(t *testing.T) {
	e := NewEncoder(DefaultConfig())
	v := e.TokenEmbedding("revenue")
	var n float64
	for _, x := range v {
		n += float64(x) * float64(x)
	}
	if math.Abs(math.Sqrt(n)-1) > 1e-6 {
		t.Fatalf("token embedding norm = %v", math.Sqrt(n))
	}
}

func TestEncodeDim(t *testing.T) {
	cfg := DefaultConfig()
	e := NewEncoder(cfg)
	v := e.Encode("anything at all")
	if len(v) != cfg.Dim {
		t.Fatalf("Encode dim = %d, want %d", len(v), cfg.Dim)
	}
}

func TestEncodeEmptyText(t *testing.T) {
	e := NewEncoder(DefaultConfig())
	v := e.Encode("")
	if len(v) != e.Dim() {
		t.Fatal("empty text must still return a CLS vector")
	}
	for _, x := range v {
		if math.IsNaN(float64(x)) {
			t.Fatal("NaN in empty-text embedding")
		}
	}
}

func TestEncodeTokensTruncatesAtMaxLen(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxLen = 8
	e := NewEncoder(cfg)
	tokens := make([]string, 20)
	for i := range tokens {
		tokens[i] = "tok"
	}
	out := e.EncodeTokens(tokens)
	if out.Rows != 8 {
		t.Fatalf("EncodeTokens rows = %d, want 8 (MaxLen)", out.Rows)
	}
}

func TestEncodeTokensEmpty(t *testing.T) {
	e := NewEncoder(DefaultConfig())
	out := e.EncodeTokens(nil)
	if out.Rows != 0 || out.Cols != e.Dim() {
		t.Fatalf("empty EncodeTokens = %v", out)
	}
}

func TestEncoderCacheConsistent(t *testing.T) {
	e := NewEncoder(DefaultConfig())
	a := e.Encode("cached text")
	b := e.Encode("cached text") // second call hits cache
	if !reflect.DeepEqual(a, b) {
		t.Fatal("cache must return identical vector")
	}
}

func TestEncoderNoNaNs(t *testing.T) {
	e := NewEncoder(DefaultConfig())
	f := func(s string) bool {
		if len(s) > 200 {
			s = s[:200]
		}
		v := e.Encode(s)
		for _, x := range v {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEncoderConcurrentUse(t *testing.T) {
	e := NewEncoder(DefaultConfig())
	done := make(chan []float32, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- e.Encode("concurrent access test") }()
	}
	first := <-done
	for i := 1; i < 8; i++ {
		if got := <-done; !reflect.DeepEqual(got, first) {
			t.Fatal("concurrent Encode results differ")
		}
	}
}

func TestHeadsMustDivideDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEncoder(Config{Dim: 10, Layers: 1, Heads: 3, MaxLen: 16, Buckets: 64, Seed: 1})
}

func TestPaperScaleConfigGeometry(t *testing.T) {
	cfg := PaperScaleConfig()
	if cfg.Dim != 768 || cfg.Layers != 12 || cfg.MaxLen != 512 {
		t.Fatalf("paper-scale config = %+v", cfg)
	}
}

func BenchmarkEncodeShortText(b *testing.B) {
	e := NewEncoder(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// fresh cache each iteration to defeat it: measures real encode cost
		e.textVecs = newVecCache(textCacheCap)
		e.Encode("NBA player statistics 2023 season")
	}
}
