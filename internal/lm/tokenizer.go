// Package lm provides the frozen text encoder that stands in for the
// pre-trained BERT model of the paper.
//
// The paper freezes BERT and uses it purely as a feature extractor: the CLS
// vector of a serialized column (or table name) becomes the initial node
// representation of the GNN. This package reproduces that contract with a
// deterministic "pseudo-BERT": a hashed-subword token embedder followed by a
// small transformer encoder whose weights are drawn once from a fixed-seed
// PRNG and never updated. Two texts that share vocabulary or character
// structure map to nearby vectors — the only property of BERT the
// Pythagoras architecture actually relies on (see DESIGN.md §2).
package lm

import (
	"strings"
	"unicode"
)

// Special token strings. They receive dedicated embeddings rather than
// hashed-subword ones.
const (
	TokenCLS = "[CLS]"
	TokenSEP = "[SEP]"
	TokenPAD = "[PAD]"
)

// Tokenizer splits text into lowercase word and number tokens. It mirrors
// the preprocessing of WordPiece-style tokenizers closely enough for the
// hashed embedder: punctuation separates tokens, camelCase and snake_case
// identifiers split into their parts, and numbers are normalized to a
// coarse magnitude form so that value literals don't explode the token
// space.
type Tokenizer struct {
	// MaxTokenLen truncates pathological tokens (e.g. base64 blobs).
	MaxTokenLen int
}

// NewTokenizer returns a tokenizer with default settings.
func NewTokenizer() *Tokenizer { return &Tokenizer{MaxTokenLen: 24} }

// Tokenize splits text into tokens. Special tokens ([CLS], [SEP], [PAD])
// embedded in the input are preserved as-is.
func (t *Tokenizer) Tokenize(text string) []string {
	var out []string
	for _, field := range strings.Fields(text) {
		if field == TokenCLS || field == TokenSEP || field == TokenPAD {
			out = append(out, field)
			continue
		}
		out = append(out, t.splitWord(field)...)
	}
	return out
}

// splitWord breaks one whitespace-delimited field into word/number tokens.
func (t *Tokenizer) splitWord(s string) []string {
	var out []string
	var cur strings.Builder
	var curKind rune // 'a' letters, 'd' digits, 0 none
	flush := func() {
		if cur.Len() == 0 {
			return
		}
		tok := cur.String()
		if len(tok) > t.MaxTokenLen {
			tok = tok[:t.MaxTokenLen]
		}
		if curKind == 'd' {
			tok = normalizeNumber(tok)
		}
		out = append(out, tok)
		cur.Reset()
		curKind = 0
	}
	prevLower := false
	for _, r := range s {
		switch {
		case unicode.IsLetter(r):
			// camelCase boundary: previous rune lowercase, this uppercase.
			if curKind == 'd' || (prevLower && unicode.IsUpper(r)) {
				flush()
			}
			curKind = 'a'
			prevLower = unicode.IsLower(r)
			cur.WriteRune(unicode.ToLower(r))
		case unicode.IsDigit(r):
			if curKind == 'a' {
				flush()
			}
			curKind = 'd'
			prevLower = false
			cur.WriteRune(r)
		case r == '.' && curKind == 'd':
			// keep decimal points inside numbers
			cur.WriteRune(r)
		default:
			flush()
			prevLower = false
		}
	}
	flush()
	return out
}

// normalizeNumber maps a digit literal to a coarse token that keeps the
// leading digit and order of magnitude but discards the exact value:
// "1234"→"<num1e3>", "7.5"→"<num7e0>", "0.02"→"<num0e0>". This bounds the
// numeric token vocabulary while preserving the weak magnitude signal BERT
// would see from digit strings.
func normalizeNumber(s string) string {
	intPart := s
	if i := strings.IndexByte(s, '.'); i >= 0 {
		intPart = s[:i]
	}
	intPart = strings.TrimLeft(intPart, "0")
	if intPart == "" {
		return "<num0e0>"
	}
	lead := intPart[0]
	mag := len(intPart) - 1
	if mag > 9 {
		mag = 9
	}
	return "<num" + string(lead) + "e" + string(rune('0'+mag)) + ">"
}
