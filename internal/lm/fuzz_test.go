package lm

import (
	"math"
	"testing"
)

// FuzzTokenizeAndEmbed asserts the tokenizer and embedder accept arbitrary
// input without panicking, producing finite vectors.
func FuzzTokenizeAndEmbed(f *testing.F) {
	f.Add("NBA Player Stats 2023")
	f.Add("7.5 2.1 -3e9")
	f.Add("[CLS] weird [SEP]")
	f.Add("äöü 中文 🎉 mixed")
	f.Add("")
	enc := NewEncoder(Config{Dim: 16, Layers: 1, Heads: 2, FFNDim: 32, MaxLen: 64, Buckets: 256, Seed: 1})
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 500 {
			text = text[:500]
		}
		toks := enc.Tokenize(text)
		for _, tok := range toks {
			if tok == "" {
				t.Fatal("empty token produced")
			}
			for _, v := range enc.TokenEmbedding(tok) {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					t.Fatalf("non-finite embedding for token %q", tok)
				}
			}
		}
		for _, v := range enc.Encode(text) {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatal("non-finite CLS vector")
			}
		}
	})
}
