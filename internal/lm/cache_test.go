package lm

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheHitMissCounters(t *testing.T) {
	e := NewEncoder(Config{Dim: 16, Layers: 1, Heads: 2, FFNDim: 32, MaxLen: 64, Buckets: 1 << 10, Seed: 1})
	e.Encode("player points per game")
	e.Encode("player points per game")
	st := e.CacheStats()
	if st.TextMisses != 1 {
		t.Fatalf("text misses = %d, want 1", st.TextMisses)
	}
	if st.TextHits != 1 {
		t.Fatalf("text hits = %d, want 1", st.TextHits)
	}
	if st.TextEntries != 1 {
		t.Fatalf("text entries = %d, want 1", st.TextEntries)
	}
	if st.TokenMisses == 0 {
		t.Fatal("expected token misses from encoding")
	}
}

func TestCacheBoundResetsShards(t *testing.T) {
	c := newVecCache(numShards) // one entry per shard
	for i := 0; i < 10*numShards; i++ {
		c.put(fmt.Sprintf("key-%d", i), []float32{float32(i)})
	}
	if n := c.len(); n > 2*numShards {
		t.Fatalf("cache grew to %d entries despite bound of %d per shard", n, 1)
	}
	if c.evicted.Load() == 0 {
		t.Fatal("shard resets should count evicted entries")
	}
}

// TestCacheStatsResetAndEvictions: eviction counters surface cache thrash,
// and ResetCacheStats opens a fresh measurement window without dropping
// cached vectors.
func TestCacheStatsResetAndEvictions(t *testing.T) {
	e := NewEncoder(Config{Dim: 16, Layers: 1, Heads: 2, FFNDim: 32, MaxLen: 64, Buckets: 1 << 10, Seed: 1})
	// Shrink the text cache to one entry per shard so distinct texts thrash.
	e.textVecs = newVecCache(numShards)
	for i := 0; i < 5*numShards; i++ {
		e.Encode(fmt.Sprintf("column header %d", i))
	}
	st := e.CacheStats()
	if st.TextEntriesEvicted == 0 {
		t.Fatal("expected text-cache evictions under thrash")
	}
	if st.EntriesEvicted() < st.TextEntriesEvicted {
		t.Fatal("EntriesEvicted must include both caches")
	}
	entries := st.TextEntries

	e.ResetCacheStats()
	st = e.CacheStats()
	if st.TextHits != 0 || st.TextMisses != 0 || st.TokenHits != 0 ||
		st.TokenMisses != 0 || st.EntriesEvicted() != 0 {
		t.Fatalf("counters survived reset: %+v", st)
	}
	if st.TextEntries != entries {
		t.Fatalf("reset dropped cached entries: %d -> %d", entries, st.TextEntries)
	}
}

func TestCachePutReturnsCanonicalVector(t *testing.T) {
	c := newVecCache(1 << 10)
	first := c.put("k", []float32{1})
	second := c.put("k", []float32{2})
	if &first[0] != &second[0] {
		t.Fatal("second put should return the already-stored vector")
	}
	if second[0] != 1 {
		t.Fatalf("canonical vector overwritten: %v", second)
	}
}

// TestEncoderConcurrentEncode exercises the sharded cache from many
// goroutines (meaningful under -race): identical inputs must yield
// identical vectors regardless of interleaving.
func TestEncoderConcurrentEncode(t *testing.T) {
	e := NewEncoder(Config{Dim: 16, Layers: 1, Heads: 2, FFNDim: 32, MaxLen: 64, Buckets: 1 << 10, Seed: 1})
	texts := []string{"goals", "assists per game", "team name", "salary usd", "height cm"}
	want := make([][]float32, len(texts))
	for i, s := range texts {
		want[i] = append([]float32(nil), e.Encode(s)...)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for i, s := range texts {
					got := e.Encode(s)
					for j := range got {
						if got[j] != want[i][j] {
							t.Errorf("concurrent Encode(%q) diverged", s)
							return
						}
					}
					e.TokenEmbedding(s)
				}
			}
		}()
	}
	wg.Wait()
}
