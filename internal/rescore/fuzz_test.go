package rescore

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzCheckpointDecode drives adversarial bytes through the cursor decoder.
// The contract under fuzz: never panic, never accept a cursor that fails
// Validate, and accepted cursors round-trip losslessly (decode → encode →
// decode yields the same canonical form) — a checkpoint the driver would
// resume from must mean the same thing after another save/load cycle.
func FuzzCheckpointDecode(f *testing.F) {
	valid, err := json.Marshal(sampleCheckpoint())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                                       // truncated mid-object
	f.Add([]byte(`{"version":99,"model_id":"m","ids":[],"pos":0}`))                   // wrong version
	f.Add([]byte(`{"version":1,"model_id":"m","ids":["a","a"],"pos":0}`))             // duplicate IDs
	f.Add([]byte(`{"version":1,"model_id":"m","ids":["a"],"pos":7}`))                 // cursor out of range
	f.Add([]byte(`{"version":1,"ids":["a"],"pos":1,"refs":{"a":[{"TableID":"b"}]}}`)) // ref/key mismatch
	f.Add([]byte(`{"version":1,"model_id":"","ids":[""],"pos":0}`))                   // empty table ID
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(data)
		if err != nil {
			if cp != nil {
				t.Fatal("error with non-nil checkpoint")
			}
			return
		}
		// Accepted input must satisfy every structural invariant…
		if err := cp.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid cursor: %v", err)
		}
		// …and survive a save/load cycle with identical meaning.
		re, err := json.Marshal(cp)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		cp2, err := DecodeCheckpoint(re)
		if err != nil {
			t.Fatalf("re-decode rejected our own encoding: %v", err)
		}
		re2, err := json.Marshal(cp2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("checkpoint not canonical under round-trip:\n%s\n%s", re, re2)
		}
	})
}
