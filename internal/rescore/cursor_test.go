package rescore

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/sematype/pythagoras/internal/discovery"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Version: CheckpointVersion,
		ModelID: "m-1",
		IDs:     []string{"a", "b", "c"},
		Pos:     2,
		Refs: map[string][]discovery.ColumnRef{
			"a": {{TableID: "a", ColIndex: 0, Header: "h", Type: "price", Confidence: 0.75}},
			"b": {},
		},
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cursor.json")
	cp := sampleCheckpoint()
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, cp)
	}
}

func TestLoadCheckpointMissingFile(t *testing.T) {
	_, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.json"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file error = %v, want os.ErrNotExist", err)
	}
}

func TestCheckpointValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(c *Checkpoint)
		want string // substring of the error
	}{
		{"wrong version", func(c *Checkpoint) { c.Version = 99 }, "version"},
		{"negative pos", func(c *Checkpoint) { c.Pos = -1 }, "position"},
		{"pos beyond snapshot", func(c *Checkpoint) { c.Pos = 4 }, "position"},
		{"empty id", func(c *Checkpoint) { c.IDs[1] = "" }, "empty table ID"},
		{"duplicate id", func(c *Checkpoint) { c.IDs[2] = "a" }, "duplicate"},
		{"refs beyond cursor", func(c *Checkpoint) {
			c.Refs["c"] = []discovery.ColumnRef{{TableID: "c"}}
		}, "beyond the cursor"},
		{"ref table mismatch", func(c *Checkpoint) {
			c.Refs["a"] = []discovery.ColumnRef{{TableID: "zzz"}}
		}, "claims table"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp := sampleCheckpoint()
			tc.mut(cp)
			err := cp.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
			// Save must refuse to persist an invalid cursor.
			if err := cp.Save(filepath.Join(t.TempDir(), "c.json")); err == nil {
				t.Fatal("Save accepted an invalid checkpoint")
			}
		})
	}
	if err := sampleCheckpoint().Validate(); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
}

func TestDecodeCheckpointCorrupt(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte(""),
		[]byte("{"),
		[]byte(`{"version":1,"ids":`), // truncated mid-stream
		[]byte(`[1,2,3]`),
		[]byte(`{"version":2,"model_id":"m","ids":[],"pos":0}`),
	} {
		if _, err := DecodeCheckpoint(data); err == nil {
			t.Fatalf("DecodeCheckpoint(%q) accepted corrupt input", data)
		}
	}
}

// TestSaveAtomicOnFailure: a Save that cannot complete (unwritable
// directory) leaves the previous checkpoint byte-identical, and no temp
// litter accumulates after successful saves.
func TestSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cursor.json")
	cp := sampleCheckpoint()
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// An invalid successor must not clobber the durable cursor.
	bad := sampleCheckpoint()
	bad.Pos = 99
	if err := bad.Save(path); err == nil {
		t.Fatal("invalid Save succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed Save altered the durable checkpoint")
	}

	// Successive saves leave no temp files behind.
	cp.Pos = 3
	cp.Refs["c"] = nil
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "cursor.json" {
			t.Fatalf("temp litter after Save: %s", e.Name())
		}
	}
}
