package rescore

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/discovery"
	"github.com/sematype/pythagoras/internal/faultinject"
	"github.com/sematype/pythagoras/internal/table"
)

func mkTable(id string, types ...string) *table.Table {
	t := &table.Table{ID: id, Name: "tbl " + id}
	for _, st := range types {
		t.Columns = append(t.Columns, &table.Column{
			Header: "h_" + st, SemanticType: st, Kind: table.KindNumeric,
			NumValues: []float64{1, 2, 3},
		})
	}
	return t
}

// predsFor is the fake model: deterministic per table and column, and
// independent of batch composition — the property the real engine has and
// the crash-resume bit-identity proof relies on.
func predsFor(t *table.Table) []core.ColumnPrediction {
	preds := make([]core.ColumnPrediction, 0, len(t.Columns))
	for ci, c := range t.Columns {
		preds = append(preds, core.ColumnPrediction{
			ColIndex: ci, Header: c.Header, Kind: c.Kind,
			Type:       c.SemanticType,
			Confidence: 0.5 + float64(ci%4)/8,
		})
	}
	return preds
}

// fakeScorer scores with predsFor, records which tables it was asked to
// score, and optionally runs a hook before answering (to model concurrent
// lake mutations landing mid-batch).
type fakeScorer struct {
	mu     sync.Mutex
	scored []string
	hook   func(ts []*table.Table)
}

func (f *fakeScorer) PredictBatchCtx(ctx context.Context, ts []*table.Table) ([][]core.ColumnPrediction, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if f.hook != nil {
		f.hook(ts)
	}
	out := make([][]core.ColumnPrediction, len(ts))
	f.mu.Lock()
	for i, t := range ts {
		f.scored = append(f.scored, t.ID)
		out[i] = predsFor(t)
	}
	f.mu.Unlock()
	return out, nil
}

func (f *fakeScorer) scoredIDs() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := map[string]int{}
	for _, id := range f.scored {
		m[id]++
	}
	return m
}

// seedLake fills a lake with n tables (t00…) and indexes them in idx with
// stale "old model" confidences so the pre-rescore index is non-empty.
func seedLake(n int) (*Lake, *discovery.SwapIndex) {
	lake := NewLake()
	idx := discovery.NewSwapIndex(0)
	for i := 0; i < n; i++ {
		t := mkTable(tableID(i), "price", "rating")
		lake.Put(t)
		stale := predsFor(t)
		for j := range stale {
			stale[j].Confidence = 0.25 // the old model's view
		}
		idx.AddPredictions(t, stale)
	}
	return lake, idx
}

func tableID(i int) string { return "t" + string(rune('0'+i/10)) + string(rune('0'+i%10)) }

// wantDump is the oracle: the canonical dump of a fresh index holding
// predsFor of every lake table — what any complete re-score must produce.
func wantDump(lake *Lake) []byte {
	ix := discovery.NewTypeIndex(0)
	for _, id := range lake.SnapshotIDs() {
		t := lake.Get(id)
		ix.AddPredictions(t, predsFor(t))
	}
	return ix.CanonicalDump()
}

func TestRunHappyPath(t *testing.T) {
	lake, idx := seedLake(10)
	old := idx.Current()
	ckpt := filepath.Join(t.TempDir(), "cursor.json")
	sc := &fakeScorer{}
	d := New(lake, sc, idx, Config{ModelID: "m-new", BatchSize: 3, Concurrency: 2, CheckpointPath: ckpt})

	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	p := d.Progress()
	if p.State != "done" || p.Total != 10 || p.Done != 10 || p.Skipped != 0 || p.Resumed {
		t.Fatalf("progress = %+v", p)
	}
	if idx.Current() == old {
		t.Fatal("index never flipped")
	}
	if got := idx.Current().CanonicalDump(); !bytes.Equal(got, wantDump(lake)) {
		t.Fatalf("rescored index diverges from oracle:\n%s", got)
	}
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("checkpoint not cleared after completion: %v", err)
	}
	// One-shot: a second Run must refuse.
	if err := d.Run(context.Background()); err == nil {
		t.Fatal("second Run succeeded")
	}
}

// TestCrashResumeBitIdentity is the ISSUE's acceptance criterion: kill the
// re-score at an injected fault point, resume from the persisted cursor
// with a fresh driver, and the finished index is byte-identical to an
// uninterrupted run's.
func TestCrashResumeBitIdentity(t *testing.T) {
	const n, batch = 11, 3 // deliberately not batch-aligned
	oracle := func() []byte {
		lake, _ := seedLake(n)
		return wantDump(lake)
	}()

	lake, idx := seedLake(n)
	old := idx.Current()
	ckpt := filepath.Join(t.TempDir(), "cursor.json")
	boom := errors.New("simulated crash")

	// Crash at the 3rd checkpoint write — two batches are durable.
	faults := faultinject.New().On(faultinject.RescoreCheckpoint,
		faultinject.After(2, faultinject.Err(boom)))
	sc1 := &fakeScorer{}
	d1 := New(lake, sc1, idx, Config{
		ModelID: "m-new", BatchSize: batch, Concurrency: 2,
		CheckpointPath: ckpt, Faults: faults,
	})
	if err := d1.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want the injected crash", err)
	}
	if p := d1.Progress(); p.State != "failed" || p.Done != 2*batch {
		t.Fatalf("crashed progress = %+v", p)
	}
	if idx.Current() != old {
		t.Fatal("crashed run flipped the index")
	}
	cp, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("no durable cursor after crash: %v", err)
	}
	if cp.Pos != 2*batch || len(cp.Refs) != 2*batch {
		t.Fatalf("cursor = pos %d, %d refs; want the 2-batch prefix", cp.Pos, len(cp.Refs))
	}

	// Resume: a fresh driver over the same cursor. The durable prefix is
	// replayed, not re-scored.
	sc2 := &fakeScorer{}
	d2 := New(lake, sc2, idx, Config{
		ModelID: "m-new", BatchSize: batch, Concurrency: 2, CheckpointPath: ckpt,
	})
	if err := d2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	p := d2.Progress()
	if p.State != "done" || !p.Resumed || p.Total != n || p.Done != n {
		t.Fatalf("resumed progress = %+v", p)
	}
	for id := range sc2.scoredIDs() {
		for _, pre := range cp.IDs[:cp.Pos] {
			if id == pre {
				t.Fatalf("resume re-scored durable-prefix table %s", id)
			}
		}
	}
	if got := idx.Current().CanonicalDump(); !bytes.Equal(got, oracle) {
		t.Fatalf("resumed index is not bit-identical to an uninterrupted run:\n got:\n%s\nwant:\n%s", got, oracle)
	}
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("checkpoint survived a completed resume")
	}
}

// TestSwapCrashResume crashes after the scan finished but before the flip:
// the cursor is complete on disk, so the resume replays everything, scores
// nothing, and retries just the flip.
func TestSwapCrashResume(t *testing.T) {
	lake, idx := seedLake(6)
	ckpt := filepath.Join(t.TempDir(), "cursor.json")
	boom := errors.New("crash before flip")

	faults := faultinject.New().On(faultinject.RescoreSwap, faultinject.Times(1, faultinject.Err(boom)))
	d1 := New(lake, &fakeScorer{}, idx, Config{
		ModelID: "m-new", BatchSize: 2, CheckpointPath: ckpt, Faults: faults,
	})
	if err := d1.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Run = %v", err)
	}
	cp, err := LoadCheckpoint(ckpt)
	if err != nil || cp.Pos != 6 {
		t.Fatalf("cursor after swap-crash: %+v, %v", cp, err)
	}

	sc2 := &fakeScorer{}
	d2 := New(lake, sc2, idx, Config{ModelID: "m-new", BatchSize: 2, CheckpointPath: ckpt})
	if err := d2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(sc2.scoredIDs()) != 0 {
		t.Fatalf("flip-retry re-scored tables: %v", sc2.scoredIDs())
	}
	if got := idx.Current().CanonicalDump(); !bytes.Equal(got, wantDump(lake)) {
		t.Fatal("flip-retry index diverges from oracle")
	}
}

func TestCancelMidRunLeavesOldIndex(t *testing.T) {
	lake, idx := seedLake(9)
	old := idx.Current()
	oldDump := old.CanonicalDump()
	ckpt := filepath.Join(t.TempDir(), "cursor.json")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The operator cancels (rollback) while the second batch is on the engine.
	faults := faultinject.New().On(faultinject.RescoreBatch,
		faultinject.After(1, faultinject.Cancel(cancel)))
	d := New(lake, &fakeScorer{}, idx, Config{
		ModelID: "m-new", BatchSize: 3, Concurrency: 1,
		CheckpointPath: ckpt, Faults: faults,
	})
	err := d.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if p := d.Progress(); p.State != "cancelled" {
		t.Fatalf("state = %q, want cancelled", p.State)
	}
	if idx.Current() != old || !bytes.Equal(idx.Current().CanonicalDump(), oldDump) {
		t.Fatal("cancelled run disturbed the serving index")
	}
	if idx.ShadowActive() {
		t.Fatal("shadow leaked after cancellation")
	}
	// The old index still answers queries.
	if cols := idx.Current().Columns("price"); len(cols) != 9 {
		t.Fatalf("old index damaged: %d price columns", len(cols))
	}
}

func TestModelMismatchStartsFresh(t *testing.T) {
	lake, idx := seedLake(4)
	ckpt := filepath.Join(t.TempDir(), "cursor.json")
	stale := &Checkpoint{
		Version: CheckpointVersion, ModelID: "m-old",
		IDs: lake.SnapshotIDs(), Pos: 2,
		Refs: map[string][]discovery.ColumnRef{
			lake.SnapshotIDs()[0]: nil, lake.SnapshotIDs()[1]: nil,
		},
	}
	if err := stale.Save(ckpt); err != nil {
		t.Fatal(err)
	}

	sc := &fakeScorer{}
	d := New(lake, sc, idx, Config{ModelID: "m-new", BatchSize: 2, CheckpointPath: ckpt})
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	p := d.Progress()
	if p.Resumed {
		t.Fatal("resumed another model's cursor")
	}
	if got := len(sc.scoredIDs()); got != 4 {
		t.Fatalf("fresh run scored %d tables, want all 4", got)
	}
	if got := idx.Current().CanonicalDump(); !bytes.Equal(got, wantDump(lake)) {
		t.Fatal("index diverges from oracle")
	}
}

// TestResumeSkipsVanishedTables: tables in the durable prefix that left the
// lake before the resume are dropped, not replayed — the new index reflects
// the lake as it is.
func TestResumeSkipsVanishedTables(t *testing.T) {
	lake, idx := seedLake(6)
	ckpt := filepath.Join(t.TempDir(), "cursor.json")
	boom := errors.New("crash")
	faults := faultinject.New().On(faultinject.RescoreCheckpoint,
		faultinject.After(1, faultinject.Err(boom)))
	d1 := New(lake, &fakeScorer{}, idx, Config{
		ModelID: "m-new", BatchSize: 2, CheckpointPath: ckpt, Faults: faults,
	})
	if err := d1.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Run = %v", err)
	}
	cp, err := LoadCheckpoint(ckpt)
	if err != nil || cp.Pos != 2 {
		t.Fatalf("cursor = %+v, %v", cp, err)
	}
	gone := cp.IDs[0] // in the durable prefix
	lake.Remove(gone)
	idx.Remove(gone)

	d2 := New(lake, &fakeScorer{}, idx, Config{ModelID: "m-new", BatchSize: 2, CheckpointPath: ckpt})
	if err := d2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	p := d2.Progress()
	if p.Skipped != 1 {
		t.Fatalf("Skipped = %d, want 1", p.Skipped)
	}
	if got := idx.Current().CanonicalDump(); !bytes.Equal(got, wantDump(lake)) {
		t.Fatal("index diverges from post-removal oracle")
	}
}

// TestConcurrentRemoveTombstones models an operator deleting a table while
// its batch is on the engine: the scorer's hook removes it through the
// SwapIndex mid-batch, so ShadowAdd must tombstone-skip it and the flipped
// index must not resurrect it.
func TestConcurrentRemoveTombstones(t *testing.T) {
	lake, idx := seedLake(6)
	victim := lake.SnapshotIDs()[3]
	sc := &fakeScorer{}
	sc.hook = func(ts []*table.Table) {
		for _, tb := range ts {
			if tb.ID == victim {
				lake.Remove(victim)
				idx.Remove(victim)
			}
		}
	}
	d := New(lake, sc, idx, Config{ModelID: "m-new", BatchSize: 2})
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	p := d.Progress()
	if p.State != "done" || p.Skipped != 1 {
		t.Fatalf("progress = %+v, want done with 1 skipped", p)
	}
	dump := idx.Current().CanonicalDump()
	if bytes.Contains(dump, []byte(victim)) {
		t.Fatalf("removed table %s resurrected by in-flight batch:\n%s", victim, dump)
	}
	if got := idx.Current().CanonicalDump(); !bytes.Equal(got, wantDump(lake)) {
		t.Fatal("index diverges from post-removal oracle")
	}
}

// TestResumePicksUpLakeAdds: tables indexed after the interrupted run froze
// its snapshot (live adds while it ran, or adds between the crash and the
// resume) are unknown to the cursor — the resume must fold them into the
// pending suffix and score them, or they silently vanish from the discovery
// index when the shadow flips in.
func TestResumePicksUpLakeAdds(t *testing.T) {
	lake, idx := seedLake(6)
	ckpt := filepath.Join(t.TempDir(), "cursor.json")
	boom := errors.New("crash")
	faults := faultinject.New().On(faultinject.RescoreCheckpoint,
		faultinject.After(1, faultinject.Err(boom)))
	d1 := New(lake, &fakeScorer{}, idx, Config{
		ModelID: "m-new", BatchSize: 2, CheckpointPath: ckpt, Faults: faults,
	})
	if err := d1.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Run = %v", err)
	}

	// A table lands in the lake (and, as the serving layer would do, in the
	// live index) after the crash, before the resume.
	late := mkTable("t99", "price")
	lake.Put(late)
	idx.AddPredictions(late, predsFor(late))

	sc2 := &fakeScorer{}
	d2 := New(lake, sc2, idx, Config{ModelID: "m-new", BatchSize: 2, CheckpointPath: ckpt})
	if err := d2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	p := d2.Progress()
	if !p.Resumed || p.Total != 7 || p.Done != 7 {
		t.Fatalf("resumed progress = %+v, want total 7", p)
	}
	if _, ok := sc2.scoredIDs()["t99"]; !ok {
		t.Fatal("resume never scored the post-snapshot table")
	}
	if got := idx.Current().CanonicalDump(); !bytes.Equal(got, wantDump(lake)) {
		t.Fatalf("post-snapshot table missing from flipped index:\n%s", got)
	}
}

// TestResumeRequeuesSupersededTables: a table whose ShadowAdd was superseded
// by a live dual-write during the interrupted run has no checkpointed refs —
// the shadow state that covered it died with the crash, so the resume must
// score it again rather than drop it.
func TestResumeRequeuesSupersededTables(t *testing.T) {
	lake, idx := seedLake(6)
	victim := lake.SnapshotIDs()[0]
	ckpt := filepath.Join(t.TempDir(), "cursor.json")
	boom := errors.New("crash")
	faults := faultinject.New().On(faultinject.RescoreCheckpoint,
		faultinject.After(2, faultinject.Err(boom)))
	sc1 := &fakeScorer{}
	sc1.hook = func(ts []*table.Table) {
		for _, tb := range ts {
			if tb.ID == victim {
				// A live re-add lands after the scan fetched the table: the
				// dual-write supersedes the driver's pending ShadowAdd.
				idx.AddPredictions(tb, predsFor(tb))
			}
		}
	}
	d1 := New(lake, sc1, idx, Config{
		ModelID: "m-new", BatchSize: 2, Concurrency: 1,
		CheckpointPath: ckpt, Faults: faults,
	})
	if err := d1.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Run = %v", err)
	}
	cp, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Pos != 4 {
		t.Fatalf("cursor pos = %d, want 4", cp.Pos)
	}
	if _, ok := cp.Refs[victim]; ok {
		t.Fatalf("superseded table %s has checkpointed refs", victim)
	}

	sc2 := &fakeScorer{}
	d2 := New(lake, sc2, idx, Config{ModelID: "m-new", BatchSize: 2, CheckpointPath: ckpt})
	if err := d2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := sc2.scoredIDs()[victim]; !ok {
		t.Fatalf("resume dropped superseded table %s instead of re-scoring it", victim)
	}
	if got := idx.Current().CanonicalDump(); !bytes.Equal(got, wantDump(lake)) {
		t.Fatal("index diverges from oracle after requeued resume")
	}
}

// TestLiveRewriteDuringScanWins is the lost-update regression at driver
// level: a live re-add dual-writes newer refs for a table after the scan
// fetched it, so the driver's stale ShadowAdd must be skipped and the live
// view must survive the flip.
func TestLiveRewriteDuringScanWins(t *testing.T) {
	lake, idx := seedLake(6)
	victim := lake.SnapshotIDs()[3]
	sc := &fakeScorer{}
	sc.hook = func(ts []*table.Table) {
		for _, tb := range ts {
			if tb.ID == victim {
				boosted := predsFor(tb)
				for i := range boosted {
					boosted[i].Confidence = 0.95
				}
				idx.AddPredictions(tb, boosted)
			}
		}
	}
	d := New(lake, sc, idx, Config{ModelID: "m-new", BatchSize: 2, Concurrency: 1})
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p := d.Progress(); p.State != "done" || p.Skipped != 1 {
		t.Fatalf("progress = %+v, want done with 1 skipped (superseded)", p)
	}
	for _, ref := range idx.Current().Columns("price") {
		if ref.TableID == victim && ref.Confidence != 0.95 {
			t.Fatalf("live update lost: %s indexed at %v, want the live 0.95", victim, ref.Confidence)
		}
	}
}

// TestResumeRefusedOnLostLake: after a real process restart the in-memory
// lake is empty until the serving layer repopulates it. Resuming a cursor
// against it must refuse (ErrLakeMismatch) instead of flipping in a
// near-empty index; the old index keeps serving and the cursor survives.
func TestResumeRefusedOnLostLake(t *testing.T) {
	lake, idx := seedLake(6)
	old := idx.Current()
	ckpt := filepath.Join(t.TempDir(), "cursor.json")
	boom := errors.New("crash")
	faults := faultinject.New().On(faultinject.RescoreCheckpoint,
		faultinject.After(1, faultinject.Err(boom)))
	d1 := New(lake, &fakeScorer{}, idx, Config{
		ModelID: "m-new", BatchSize: 2, CheckpointPath: ckpt, Faults: faults,
	})
	if err := d1.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Run = %v", err)
	}

	// Simulated restart: fresh empty lake, same cursor.
	d2 := New(NewLake(), &fakeScorer{}, idx, Config{ModelID: "m-new", BatchSize: 2, CheckpointPath: ckpt})
	err := d2.Run(context.Background())
	if !errors.Is(err, ErrLakeMismatch) {
		t.Fatalf("Run over an empty lake = %v, want ErrLakeMismatch", err)
	}
	if p := d2.Progress(); p.State != "failed" {
		t.Fatalf("state = %q, want failed", p.State)
	}
	if idx.Current() != old {
		t.Fatal("refused resume disturbed the serving index")
	}
	if idx.ShadowActive() {
		t.Fatal("shadow leaked after refused resume")
	}
	if _, err := LoadCheckpoint(ckpt); err != nil {
		t.Fatalf("cursor lost after refused resume: %v", err)
	}
}

// TestInMemoryRun: an empty CheckpointPath disables durability but the run
// still completes and flips.
func TestInMemoryRun(t *testing.T) {
	lake, idx := seedLake(5)
	d := New(lake, &fakeScorer{}, idx, Config{ModelID: "m-new", BatchSize: 2})
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := idx.Current().CanonicalDump(); !bytes.Equal(got, wantDump(lake)) {
		t.Fatal("in-memory run diverges from oracle")
	}
}
