package rescore

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBudgetBasicAcquireRelease(t *testing.T) {
	b := NewBudget(2)
	ctx := context.Background()
	if err := b.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if got := b.InUse(); got != 2 {
		t.Fatalf("in use = %d, want 2", got)
	}
	// Third acquire must block until a release.
	acquired := make(chan struct{})
	go func() {
		if err := b.Acquire(ctx); err == nil {
			close(acquired)
		}
	}()
	select {
	case <-acquired:
		t.Fatal("third acquire succeeded over the limit")
	case <-time.After(20 * time.Millisecond):
	}
	b.Release()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("release did not wake the waiter")
	}
}

func TestBudgetClampsAndBase(t *testing.T) {
	b := NewBudget(0)
	if b.Limit() != 1 || b.Base() != 1 {
		t.Fatalf("limit/base = %d/%d, want 1/1", b.Limit(), b.Base())
	}
	b = NewBudget(4)
	b.SetLimit(0)
	if b.Limit() != 1 {
		t.Fatalf("SetLimit(0) gave %d, want clamp to 1", b.Limit())
	}
	if b.Base() != 4 {
		t.Fatalf("base drifted to %d after SetLimit", b.Base())
	}
	b.SetLimit(b.Base())
	if b.Limit() != 4 {
		t.Fatalf("restore gave %d, want 4", b.Limit())
	}
}

// TestBudgetLowerNeverInterruptsInFlight: with 4 slots held, dropping the
// limit to 2 must not revoke anything; new acquisitions wait until usage
// falls under the new limit.
func TestBudgetLowerNeverInterruptsInFlight(t *testing.T) {
	b := NewBudget(4)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := b.Acquire(ctx); err != nil {
			t.Fatal(err)
		}
	}
	b.SetLimit(2)
	if got := b.InUse(); got != 4 {
		t.Fatalf("in use after lowering = %d, want 4 (no revocation)", got)
	}
	acquired := make(chan struct{})
	go func() {
		if err := b.Acquire(ctx); err == nil {
			close(acquired)
		}
	}()
	// Two releases bring usage to 2 == limit: the waiter must stay queued.
	b.Release()
	b.Release()
	select {
	case <-acquired:
		t.Fatal("acquired while usage was still at the lowered limit")
	case <-time.After(20 * time.Millisecond):
	}
	// A third release opens a slot under the lowered limit.
	b.Release()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never admitted under the lowered limit")
	}
}

func TestBudgetRaiseWakesQueuedWaiters(t *testing.T) {
	b := NewBudget(1)
	ctx := context.Background()
	if err := b.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	var admitted atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.Acquire(ctx); err == nil {
				admitted.Add(1)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if admitted.Load() != 0 {
		t.Fatalf("%d admitted before raise", admitted.Load())
	}
	b.SetLimit(4)
	wg.Wait()
	if admitted.Load() != 3 {
		t.Fatalf("%d admitted after raise, want 3", admitted.Load())
	}
	if b.InUse() != 4 {
		t.Fatalf("in use = %d, want 4", b.InUse())
	}
}

func TestBudgetAcquireCancellation(t *testing.T) {
	b := NewBudget(1)
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- b.Acquire(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	// The cancelled waiter must not have leaked a slot: one release frees
	// the only slot and a fresh acquire succeeds immediately.
	b.Release()
	done := make(chan struct{})
	go func() {
		if err := b.Acquire(context.Background()); err == nil {
			close(done)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("slot leaked by cancelled waiter")
	}
}

// TestBudgetStress hammers acquire/release/SetLimit concurrently and then
// checks conservation: all slots return, and the in-flight count never
// exceeded the highest limit ever set.
func TestBudgetStress(t *testing.T) {
	b := NewBudget(3)
	const maxLimit = 5
	var peak atomic.Int32
	var cur atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for j := 0; j < 200; j++ {
				if err := b.Acquire(ctx); err != nil {
					t.Error(err)
					return
				}
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				cur.Add(-1)
				b.Release()
			}
		}()
	}
	limits := []int{1, 2, maxLimit, 3, 1, 4}
	for i := 0; i < 60; i++ {
		b.SetLimit(limits[i%len(limits)])
		time.Sleep(100 * time.Microsecond)
	}
	b.SetLimit(maxLimit)
	wg.Wait()
	if b.InUse() != 0 {
		t.Fatalf("in use = %d after all released, want 0", b.InUse())
	}
	if p := peak.Load(); p > maxLimit {
		t.Fatalf("peak concurrency %d exceeded max limit %d", p, maxLimit)
	}
}
