package rescore

import (
	"testing"

	"github.com/sematype/pythagoras/internal/table"
)

func TestLakeBasics(t *testing.T) {
	l := NewLake()
	l.Put(nil)                      // ignored
	l.Put(&table.Table{})           // no ID → ignored
	l.Put(&table.Table{ID: "zeta"}) // unsorted insertion order on purpose
	l.Put(&table.Table{ID: "alpha"})
	l.Put(&table.Table{ID: "mid"})
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if l.Get("mid") == nil || l.Get("ghost") != nil {
		t.Fatal("Get misbehaves")
	}

	ids := l.SnapshotIDs()
	if len(ids) != 3 || ids[0] != "alpha" || ids[1] != "mid" || ids[2] != "zeta" {
		t.Fatalf("SnapshotIDs = %v, want sorted [alpha mid zeta]", ids)
	}

	// Put replaces under the same ID.
	l.Put(&table.Table{ID: "mid", Name: "v2"})
	if l.Len() != 3 || l.Get("mid").Name != "v2" {
		t.Fatal("Put did not replace")
	}

	l.Remove("mid")
	l.Remove("ghost") // no-op
	if l.Len() != 2 || l.Get("mid") != nil {
		t.Fatal("Remove misbehaves")
	}
}
