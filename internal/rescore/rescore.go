// The re-score driver: walk the frozen scan snapshot in batches, score
// each batch on the inference engine with bounded concurrency, commit
// results in scan order (so the durable cursor is always a contiguous
// completed prefix), checkpoint after every commit, and flip the shadow
// index in when the scan completes. Cancellation (operator rollback, or
// shutdown) aborts the shadow and leaves the old index serving; the cursor
// survives on disk for a later resume.
package rescore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/discovery"
	"github.com/sematype/pythagoras/internal/faultinject"
	"github.com/sematype/pythagoras/internal/obs"
	"github.com/sematype/pythagoras/internal/table"
)

// ErrLakeMismatch is returned by Run when a resumed checkpoint references
// mostly tables the lake no longer holds. The lake is in-memory: after a
// process restart it is empty until the serving layer repopulates it, and
// replaying a cursor against it would flip in a near-empty index — strictly
// worse than refusing. Repopulate the lake (re-index the tables) before
// resuming, or delete the checkpoint to start fresh.
var ErrLakeMismatch = errors.New("rescore: checkpoint references tables missing from the lake")

// Scorer is the slice of infer.Engine the driver needs — batch inference
// with context cancellation. Narrowing to an interface keeps the package
// testable with deterministic fakes and free of an engine dependency.
type Scorer interface {
	PredictBatchCtx(ctx context.Context, ts []*table.Table) ([][]core.ColumnPrediction, error)
}

// Config parameterizes one re-score run.
type Config struct {
	// ModelID labels telemetry and guards the checkpoint: a cursor written
	// by a different model is discarded, not resumed.
	ModelID string
	// BatchSize is how many tables are scored per engine batch (default 16,
	// the engine's union-chunk bound).
	BatchSize int
	// Concurrency bounds how many batches are in flight on the engine at
	// once (default 2). The engine parallelizes within a batch too; this
	// knob keeps the pipeline fed without monopolizing the worker pool
	// serving live traffic.
	Concurrency int
	// Budget, when non-nil, replaces the fixed Concurrency bound with a
	// dynamic one the watchdog can lower mid-run (SLO fast burn → halve) and
	// restore. When nil the driver builds a private NewBudget(Concurrency).
	Budget *Budget
	// CheckpointPath is where the durable cursor lives. Empty disables
	// durability: the run still works, it just cannot resume after a crash.
	CheckpointPath string
	// Faults arms the chaos suite's injection points; nil (production) is
	// free.
	Faults *faultinject.Set
	// Metrics, when non-nil, receives rescore counters and gauges.
	Metrics *obs.Registry
}

// Progress is a point-in-time view of a run, served at GET /v1/index/rescore.
type Progress struct {
	// State is "pending" before Run, then "running", and finally one of
	// "done", "failed", "cancelled".
	State   string `json:"state"`
	ModelID string `json:"model_id"`
	// Total is the scan snapshot size; Done the committed cursor position.
	Total int `json:"total"`
	Done  int `json:"done"`
	// Skipped counts snapshot tables that vanished from the lake, or whose
	// scan write was superseded by a concurrent live add/remove, before they
	// could be committed.
	Skipped int `json:"skipped"`
	// Resumed reports whether this run continued a persisted cursor.
	Resumed    bool      `json:"resumed"`
	Error      string    `json:"error,omitempty"`
	StartedAt  time.Time `json:"started_at"`
	FinishedAt time.Time `json:"finished_at"`
}

// Driver executes one re-score run. Create with New, execute with Run
// (once), observe with Progress at any time from any goroutine.
type Driver struct {
	lake   *Lake
	scorer Scorer
	idx    *discovery.SwapIndex
	cfg    Config

	mu      sync.Mutex
	prog    Progress
	started bool

	scored *obs.Counter // rescore.tables.scored{model=}
	errs   *obs.Counter // rescore.errors{model=}
	posG   *obs.Gauge   // rescore.cursor.position
	totalG *obs.Gauge   // rescore.tables.total
	active *obs.Gauge   // rescore.active
}

// New builds a driver over the lake, scorer and swap index. Defaults:
// batch 16, concurrency 2.
func New(lake *Lake, scorer Scorer, idx *discovery.SwapIndex, cfg Config) *Driver {
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 16
	}
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 2
	}
	if cfg.Budget == nil {
		cfg.Budget = NewBudget(cfg.Concurrency)
	}
	d := &Driver{
		lake: lake, scorer: scorer, idx: idx, cfg: cfg,
		prog: Progress{State: "pending", ModelID: cfg.ModelID},
	}
	reg := cfg.Metrics // nil-safe: every obs handle tolerates a nil registry
	d.scored = reg.Counter(obs.Labels("rescore.tables.scored", "model", cfg.ModelID))
	d.errs = reg.Counter(obs.Labels("rescore.errors", "model", cfg.ModelID))
	d.posG = reg.Gauge("rescore.cursor.position")
	d.totalG = reg.Gauge("rescore.tables.total")
	d.active = reg.Gauge("rescore.active")
	if reg != nil {
		budget := cfg.Budget
		reg.GaugeFunc("rescore.concurrency.limit", func() float64 {
			return float64(budget.Limit())
		})
	}
	return d
}

// Progress returns a copy of the run's current progress.
func (d *Driver) Progress() Progress {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.prog
}

func (d *Driver) update(fn func(p *Progress)) {
	d.mu.Lock()
	fn(&d.prog)
	pos, total := d.prog.Done, d.prog.Total
	d.mu.Unlock()
	d.posG.Set(float64(pos))
	d.totalG.Set(float64(total))
}

// batchResult carries one scored batch from a worker to the committer.
type batchResult struct {
	tables  []*table.Table
	preds   [][]core.ColumnPrediction
	missing int
	err     error
}

// Run executes the re-score to completion (or failure/cancellation). It is
// one-shot: a Driver runs once, a resume is a fresh Driver over the same
// checkpoint path. On success the shadow index has been committed and the
// checkpoint file removed; on any other exit the old index is untouched
// and the checkpoint (if durable) names the last completed prefix.
func (d *Driver) Run(ctx context.Context) error {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return errors.New("rescore: driver already ran")
	}
	d.started = true
	d.prog.State = "running"
	d.prog.StartedAt = time.Now()
	d.mu.Unlock()
	d.active.Set(1)
	defer d.active.Set(0)

	err := d.run(ctx)
	d.mu.Lock()
	switch {
	case err == nil:
		d.prog.State = "done"
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		d.prog.State = "cancelled"
		d.prog.Error = err.Error()
	default:
		d.prog.State = "failed"
		d.prog.Error = err.Error()
	}
	d.prog.FinishedAt = time.Now()
	d.mu.Unlock()
	if err != nil {
		d.errs.Inc()
	}
	return err
}

// loadOrInit resumes the persisted cursor when one exists, was written by
// the same model, and validates; otherwise it freezes a fresh scan snapshot
// from the lake. Only a same-model cursor resumes — another model's prefix
// refs are that model's view of the lake and replaying them would commit a
// mixed index, the exact state this subsystem exists to prevent.
func (d *Driver) loadOrInit() (*Checkpoint, bool) {
	if d.cfg.CheckpointPath != "" {
		cp, err := LoadCheckpoint(d.cfg.CheckpointPath)
		if err == nil && cp.ModelID == d.cfg.ModelID {
			return cp, true
		}
	}
	return &Checkpoint{
		Version: CheckpointVersion,
		ModelID: d.cfg.ModelID,
		IDs:     d.lake.SnapshotIDs(),
		Refs:    map[string][]discovery.ColumnRef{},
	}, false
}

// checkResumable refuses to resume a cursor whose tables are mostly gone
// from the lake — the signature of a process restart without the lake being
// repopulated (see ErrLakeMismatch). A minority of absent tables is normal
// churn (operators remove tables mid-scan) and resumes fine.
func (d *Driver) checkResumable(cp *Checkpoint) error {
	if len(cp.IDs) == 0 {
		return nil
	}
	present := 0
	for _, id := range cp.IDs {
		if d.lake.Get(id) != nil {
			present++
		}
	}
	if present*2 < len(cp.IDs) {
		return fmt.Errorf("%w: %d of %d checkpointed tables present — repopulate the lake before resuming, or delete %s to start fresh",
			ErrLakeMismatch, present, len(cp.IDs), d.cfg.CheckpointPath)
	}
	return nil
}

// reconcile folds lake changes the frozen cursor cannot know about into a
// resumed scan. Two kinds exist: tables added to the lake after the
// interrupted run froze its snapshot (they are in no scan and were
// dual-written only into a shadow that died with the crash — without this
// they silently vanish from the discovery index at the flip), and
// completed-prefix tables with no checkpointed refs (their ShadowAdd was
// superseded by a live dual-write during the interrupted run). Both sets
// join the pending suffix — sorted, duplicate-free — and are scored like
// any other unscanned table.
func (d *Driver) reconcile(cp *Checkpoint) {
	inSnap := make(map[string]struct{}, len(cp.IDs))
	for _, id := range cp.IDs {
		inSnap[id] = struct{}{}
	}
	var requeue []string
	for _, id := range d.lake.SnapshotIDs() {
		if _, ok := inSnap[id]; !ok {
			requeue = append(requeue, id)
		}
	}
	done := make([]string, 0, cp.Pos)
	for _, id := range cp.IDs[:cp.Pos] {
		if _, ok := cp.Refs[id]; ok {
			done = append(done, id)
		} else {
			requeue = append(requeue, id)
		}
	}
	if len(requeue) == 0 {
		return
	}
	pending := append(requeue, cp.IDs[cp.Pos:]...)
	sort.Strings(pending)
	cp.IDs = append(done, pending...)
	cp.Pos = len(done)
}

func (d *Driver) run(ctx context.Context) error {
	cp, resumed := d.loadOrInit()
	if resumed {
		if err := d.checkResumable(cp); err != nil {
			return err
		}
		d.reconcile(cp)
	}
	if err := d.idx.BeginShadow(); err != nil {
		return err
	}
	committed := false
	defer func() {
		if !committed {
			d.idx.AbortShadow()
		}
	}()

	// Replay the durable prefix into the fresh shadow. Tables that vanished
	// from the lake since the cursor was written are dropped — the new index
	// must reflect the lake as it is, not as it was mid-crash.
	skipped := 0
	for _, id := range cp.IDs[:cp.Pos] {
		refs, ok := cp.Refs[id]
		if !ok || d.lake.Get(id) == nil {
			delete(cp.Refs, id)
			skipped++
			continue
		}
		if err := d.idx.ShadowAddRefs(id, refs); err != nil {
			return err
		}
	}
	d.update(func(p *Progress) {
		p.Total = len(cp.IDs)
		p.Done = cp.Pos
		p.Skipped = skipped
		p.Resumed = resumed
	})

	// Score the remaining suffix: one goroutine per batch gated by the
	// concurrency budget, results committed strictly in scan order so the
	// checkpoint is always a contiguous prefix.
	pending := cp.IDs[cp.Pos:]
	var batches [][]string
	for len(pending) > 0 {
		n := d.cfg.BatchSize
		if n > len(pending) {
			n = len(pending)
		}
		batches = append(batches, pending[:n])
		pending = pending[n:]
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]chan batchResult, len(batches))
	budget := d.cfg.Budget
	var wg sync.WaitGroup
	for i := range batches {
		results[i] = make(chan batchResult, 1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := budget.Acquire(runCtx); err != nil {
				results[i] <- batchResult{err: err}
				return
			}
			defer budget.Release()
			results[i] <- d.scoreBatch(runCtx, batches[i])
		}(i)
	}
	defer wg.Wait() // no worker outlives Run, even on early error

	var runErr error
	for i := range batches {
		r := <-results[i]
		if runErr != nil {
			continue // already failing: drain workers, commit nothing more
		}
		if r.err != nil {
			runErr = r.err
			cancel()
			continue
		}
		batchSkipped := r.missing
		for j, t := range r.tables {
			refs, err := d.idx.ShadowAdd(t, r.preds[j])
			if err != nil {
				runErr = err
				break
			}
			if refs == nil {
				batchSkipped++ // superseded by a concurrent live remove or re-add
				continue
			}
			cp.Refs[t.ID] = refs
			d.scored.Inc()
		}
		if runErr != nil {
			cancel()
			continue
		}
		cp.Pos += len(batches[i])
		if err := d.cfg.Faults.Fire(runCtx, faultinject.RescoreCheckpoint); err != nil {
			runErr = fmt.Errorf("rescore: checkpoint: %w", err)
			cancel()
			continue
		}
		if d.cfg.CheckpointPath != "" {
			if err := cp.Save(d.cfg.CheckpointPath); err != nil {
				runErr = err
				cancel()
				continue
			}
		}
		d.update(func(p *Progress) {
			p.Done = cp.Pos
			p.Skipped += batchSkipped
		})
	}
	if runErr != nil {
		return runErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// Scan complete: flip the shadow in. A crash before the flip (modeled by
	// the RescoreSwap fault) leaves the old index serving and a complete
	// cursor on disk — a resume replays it and retries just the flip.
	if err := d.cfg.Faults.Fire(ctx, faultinject.RescoreSwap); err != nil {
		return fmt.Errorf("rescore: swap: %w", err)
	}
	if !d.idx.CommitShadow() {
		return errors.New("rescore: shadow build vanished before commit")
	}
	committed = true
	if d.cfg.CheckpointPath != "" {
		// The run is complete; a stale cursor must not resume into it.
		if err := os.Remove(d.cfg.CheckpointPath); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("rescore: clear checkpoint: %w", err)
		}
	}
	return nil
}

// scoreBatch fetches the batch's surviving tables from the lake and scores
// them in one engine batch. Tables removed since the snapshot are skipped.
func (d *Driver) scoreBatch(ctx context.Context, ids []string) batchResult {
	tables := make([]*table.Table, 0, len(ids))
	for _, id := range ids {
		if t := d.lake.Get(id); t != nil {
			tables = append(tables, t)
		}
	}
	missing := len(ids) - len(tables)
	if err := d.cfg.Faults.Fire(ctx, faultinject.RescoreBatch); err != nil {
		return batchResult{err: fmt.Errorf("rescore: batch: %w", err)}
	}
	if len(tables) == 0 {
		return batchResult{missing: missing}
	}
	preds, err := d.scorer.PredictBatchCtx(ctx, tables)
	if err != nil {
		return batchResult{err: err}
	}
	return batchResult{tables: tables, preds: preds, missing: missing}
}
