// Budget is the re-score driver's dynamic concurrency gate. PR 9's fixed
// semaphore became a watchdog actuator: when the serving SLO's fast burn
// fires, the watchdog halves the in-flight batch budget so background
// re-scoring stops competing with live traffic for the worker pool, and
// restores it when the alert clears. In-flight batches are never interrupted
// — a lowered limit only delays the next acquisition.
package rescore

import (
	"context"
	"sync"
)

// Budget is a counting semaphore whose limit can be changed while waiters
// are queued. Waiters are served FIFO; raising the limit wakes queued
// waiters immediately, lowering it simply stops new acquisitions until
// enough releases bring usage under the new limit.
type Budget struct {
	mu      sync.Mutex
	limit   int
	base    int
	inUse   int
	waiters []chan struct{} // each is closed exactly once, by wakeLocked
}

// NewBudget builds a budget with the given base limit (clamped to ≥ 1).
func NewBudget(limit int) *Budget {
	if limit < 1 {
		limit = 1
	}
	return &Budget{limit: limit, base: limit}
}

// Acquire blocks until a slot is free or ctx is cancelled.
func (b *Budget) Acquire(ctx context.Context) error {
	b.mu.Lock()
	if len(b.waiters) == 0 && b.inUse < b.limit {
		b.inUse++
		b.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	b.waiters = append(b.waiters, ch)
	b.mu.Unlock()

	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		b.mu.Lock()
		for i, w := range b.waiters {
			if w == ch {
				b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
				b.mu.Unlock()
				return ctx.Err()
			}
		}
		// Not queued anymore: wakeLocked granted us a slot concurrently with
		// the cancellation. Hand the slot on before reporting the cancel.
		b.releaseLocked()
		b.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns a slot and wakes the next waiter if the limit allows.
func (b *Budget) Release() {
	b.mu.Lock()
	b.releaseLocked()
	b.mu.Unlock()
}

func (b *Budget) releaseLocked() {
	if b.inUse > 0 {
		b.inUse--
	}
	b.wakeLocked()
}

// wakeLocked grants slots to queued waiters while capacity exists. Caller
// holds b.mu.
func (b *Budget) wakeLocked() {
	for len(b.waiters) > 0 && b.inUse < b.limit {
		close(b.waiters[0])
		b.waiters = b.waiters[1:]
		b.inUse++
	}
}

// SetLimit changes the current limit (clamped to ≥ 1). Raising it wakes
// queued waiters; lowering it never interrupts in-flight work.
func (b *Budget) SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	b.mu.Lock()
	b.limit = n
	b.wakeLocked()
	b.mu.Unlock()
}

// Limit returns the current limit.
func (b *Budget) Limit() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.limit
}

// Base returns the limit the budget was created with — what SetLimit
// restores to when a throttle clears.
func (b *Budget) Base() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.base
}

// InUse returns the number of currently held slots.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}
