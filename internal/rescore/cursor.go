// The durable scan cursor. A re-score over a big lake can outlive its
// process — deploys roll, machines die — so progress is checkpointed after
// every committed batch: the frozen scan snapshot (sorted table IDs), the
// completed-prefix position, and the refs the completed prefix produced.
// Restart loads the checkpoint, replays the prefix refs into a fresh shadow
// index, and resumes scoring at the cursor — no table is scored twice, and
// the finished index is bit-identical to an uninterrupted run's (per-table
// predictions are deterministic, so only *whether* work repeats could
// differ, never its result).
//
// The format is versioned JSON written atomically (temp file + rename in
// the destination directory, fsynced before the rename): a torn write
// leaves the previous checkpoint intact, and a bumped CheckpointVersion
// makes an old binary reject a new cursor loudly instead of misreading it.
package rescore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/sematype/pythagoras/internal/discovery"
)

// CheckpointVersion is the cursor wire-format version this build reads and
// writes. Decoding any other version fails with a clear error.
const CheckpointVersion = 1

// Checkpoint is the durable state of one re-score run.
type Checkpoint struct {
	// Version pins the format; see CheckpointVersion.
	Version int `json:"version"`
	// ModelID names the model doing the re-score. A checkpoint written by a
	// different model never resumes — its prefix refs are that model's view.
	ModelID string `json:"model_id"`
	// IDs is the frozen scan snapshot: the lake's sorted table IDs at the
	// instant the run started. Tables added later are dual-written by the
	// SwapIndex, not scanned.
	IDs []string `json:"ids"`
	// Pos is the durable cursor: IDs[:Pos] have been scored and their refs
	// recorded below.
	Pos int `json:"pos"`
	// Refs holds, for each completed table that was still present when
	// scored, the column refs the re-score installed. Replayed on resume.
	Refs map[string][]discovery.ColumnRef `json:"refs"`
}

// Validate checks structural invariants after a decode. It never panics on
// adversarial input — the fuzz target's contract.
func (c *Checkpoint) Validate() error {
	if c.Version != CheckpointVersion {
		return fmt.Errorf("rescore: checkpoint version %d, want %d", c.Version, CheckpointVersion)
	}
	if c.Pos < 0 || c.Pos > len(c.IDs) {
		return fmt.Errorf("rescore: cursor position %d outside scan snapshot of %d tables", c.Pos, len(c.IDs))
	}
	seen := make(map[string]struct{}, len(c.IDs))
	for i, id := range c.IDs {
		if id == "" {
			return fmt.Errorf("rescore: empty table ID at snapshot position %d", i)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("rescore: duplicate table ID %q in scan snapshot", id)
		}
		seen[id] = struct{}{}
	}
	done := make(map[string]struct{}, c.Pos)
	for _, id := range c.IDs[:c.Pos] {
		done[id] = struct{}{}
	}
	for id, refs := range c.Refs {
		if _, ok := done[id]; !ok {
			return fmt.Errorf("rescore: checkpoint carries refs for %q beyond the cursor", id)
		}
		for _, r := range refs {
			if r.TableID != id {
				return fmt.Errorf("rescore: ref for table %q claims table %q", id, r.TableID)
			}
		}
	}
	return nil
}

// DecodeCheckpoint parses and validates a serialized cursor. Corrupt,
// truncated, or wrong-version input returns an error, never a panic or a
// silently half-read cursor.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("rescore: decode checkpoint: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// LoadCheckpoint reads and decodes a cursor file. A missing file returns
// os.ErrNotExist (wrapped) — the caller's signal to start fresh.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("rescore: read checkpoint: %w", err)
	}
	return DecodeCheckpoint(data)
}

// Save writes the cursor durably: marshal, write to a temp file next to the
// destination, fsync, rename. A crash at any instant leaves either the old
// checkpoint or the new one — never a torn file.
func (c *Checkpoint) Save(path string) error {
	if err := c.Validate(); err != nil {
		return err
	}
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("rescore: encode checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".rescore-ckpt-*")
	if err != nil {
		return fmt.Errorf("rescore: write checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("rescore: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("rescore: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("rescore: close checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("rescore: publish checkpoint: %w", err)
	}
	return nil
}
