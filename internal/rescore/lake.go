// Package rescore re-types an already-indexed lake after a model upgrade
// (DESIGN.md §15): a checkpointed scan cursor over a frozen snapshot of the
// lake's table IDs, a bounded-concurrency driver that feeds table batches
// through the staged inference engine, and a snapshot-isolated index swap
// (discovery.SwapIndex) so discovery queries never observe a half-rescored
// lake. The cursor is durable — a crash mid-scan resumes from the last
// checkpoint and provably reproduces the uninterrupted run's index bit for
// bit, because per-table predictions are deterministic and the checkpoint
// carries the refs of the completed prefix.
package rescore

import (
	"sort"
	"sync"

	"github.com/sematype/pythagoras/internal/table"
)

// Lake is the serving layer's retained copy of every indexed table — the
// corpus a re-score walks. The discovery index alone cannot drive a
// re-score: it holds predictions, not the column data a model needs to
// predict again. Safe for concurrent use.
type Lake struct {
	mu     sync.RWMutex
	tables map[string]*table.Table
}

// NewLake returns an empty lake store.
func NewLake() *Lake {
	return &Lake{tables: map[string]*table.Table{}}
}

// Put stores (or replaces) a table under its ID. Tables are treated as
// immutable once stored — the serving layer builds a fresh table.Table per
// index request, so no aliasing mutation exists.
func (l *Lake) Put(t *table.Table) {
	if t == nil || t.ID == "" {
		return
	}
	l.mu.Lock()
	l.tables[t.ID] = t
	l.mu.Unlock()
}

// Get returns the stored table, or nil if absent.
func (l *Lake) Get(id string) *table.Table {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.tables[id]
}

// Remove drops a table from the store.
func (l *Lake) Remove(id string) {
	l.mu.Lock()
	delete(l.tables, id)
	l.mu.Unlock()
}

// Len reports how many tables the lake holds.
func (l *Lake) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.tables)
}

// SnapshotIDs returns the sorted IDs of every stored table — the frozen
// scan order a re-score walks. Sorting makes the scan (and therefore the
// cursor semantics and the chaos tests' resume determinism) independent of
// map iteration order and insertion history.
func (l *Lake) SnapshotIDs() []string {
	l.mu.RLock()
	ids := make([]string, 0, len(l.tables))
	for id := range l.tables {
		ids = append(ids, id)
	}
	l.mu.RUnlock()
	sort.Strings(ids)
	return ids
}
