package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/faultinject"
	"github.com/sematype/pythagoras/internal/table"
)

// savedCheckpoint writes the shared chaos model to dir as name; withDrift
// adds a sidecar baseline computed over the sample corpus, so a candidate
// loaded from it shadows with per-model drift telemetry.
func savedCheckpoint(t *testing.T, dir, name string, withDrift bool) string {
	t.Helper()
	m := chaosModel(t)
	path := filepath.Join(dir, name)
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if withDrift {
		tr := sampleRequest("baseline")
		tbl, err := tr.toTable()
		if err != nil {
			t.Fatal(err)
		}
		b := m.ComputeDriftBaseline([]*table.Table{tbl})
		if err := core.SaveDriftBaseline(core.DriftSidecarPath(path), b); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

// readyzCode returns the current /v1/readyz status code.
func readyzCode(t *testing.T, s *Server) int {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/readyz", nil))
	return rec.Code
}

// modelsPost drives one lifecycle POST and decodes its response.
func modelsPost(t *testing.T, s *Server, path string, body any, wantCode int) ModelsResponse {
	t.Helper()
	var rec *httptest.ResponseRecorder
	if body == nil {
		req := httptest.NewRequest(http.MethodPost, path, nil)
		rec = httptest.NewRecorder()
		s.ServeHTTP(rec, req)
	} else {
		rec = postJSON(t, s, path, body)
	}
	if rec.Code != wantCode {
		t.Fatalf("POST %s = %d, want %d: %s", path, rec.Code, wantCode, rec.Body)
	}
	var mr ModelsResponse
	if wantCode == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &mr); err != nil {
			t.Fatalf("POST %s response: %v: %s", path, err, rec.Body)
		}
	}
	return mr
}

// drain shuts the server down so shadow goroutines finish and retired
// engines release before assertions read counters.
func drain(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestModelLifecycleLoadPromoteRollback walks the whole state machine —
// serving → shadowing → promoted → rolled-back — checking the reported
// slots, the swap counters and the SLO annotations at each step, with
// traffic succeeding throughout.
func TestModelLifecycleLoadPromoteRollback(t *testing.T) {
	s := chaosServer(t, nil, nil)
	path := savedCheckpoint(t, t.TempDir(), "v2.bin", true)

	if rec := postJSON(t, s, "/v1/predict", sampleRequest("")); rec.Code != http.StatusOK {
		t.Fatalf("predict before lifecycle: %d", rec.Code)
	}
	st := modelsPost(t, s, "/v1/models", ModelsRequest{ID: "v2", Path: path}, http.StatusOK)
	if st.State != "shadowing" || st.Candidate == nil || st.Candidate.ID != "v2" {
		t.Fatalf("after load: %+v", st)
	}
	if !st.Candidate.Drift {
		t.Fatal("candidate sidecar not loaded")
	}
	if st.Primary == nil || st.Primary.ID != "boot" {
		t.Fatalf("primary after load: %+v", st.Primary)
	}

	// Shadowed traffic: primary answers, candidate double-scores async.
	for i := 0; i < 4; i++ {
		if rec := postJSON(t, s, "/v1/predict", sampleRequest("")); rec.Code != http.StatusOK {
			t.Fatalf("predict while shadowing: %d", rec.Code)
		}
	}

	rec := getPath(t, s, "/v1/models")
	var got ModelsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil || got.State != "shadowing" {
		t.Fatalf("GET /v1/models = %s (err %v)", rec.Body, err)
	}

	st = modelsPost(t, s, "/v1/models/promote", nil, http.StatusOK)
	if st.State != "promoted" || st.Primary.ID != "v2" || st.Candidate != nil {
		t.Fatalf("after promote: %+v", st)
	}
	if st.Previous == nil || st.Previous.ID != "boot" || !st.Previous.Retired {
		t.Fatalf("previous after promote: %+v", st.Previous)
	}
	if rec := postJSON(t, s, "/v1/predict", sampleRequest("")); rec.Code != http.StatusOK {
		t.Fatalf("predict after promote: %d", rec.Code)
	}

	st = modelsPost(t, s, "/v1/models/rollback", nil, http.StatusOK)
	if st.State != "rolled-back" || st.Primary.ID != "boot" || st.Previous != nil {
		t.Fatalf("after rollback: %+v", st)
	}
	if rec := postJSON(t, s, "/v1/predict", sampleRequest("")); rec.Code != http.StatusOK {
		t.Fatalf("predict after rollback: %d", rec.Code)
	}
	// The rollback target is one-shot.
	modelsPost(t, s, "/v1/models/rollback", nil, http.StatusConflict)

	drain(t, s)
	snap := s.Metrics().Snapshot()
	for _, event := range []string{"load", "promote", "rollback"} {
		key := fmt.Sprintf("models.swap{event=%q}", event)
		if snap.Counters[key] != 1 {
			t.Fatalf("%s = %d, want 1", key, snap.Counters[key])
		}
	}
	// Retired engines all drained: the v2 shadow engine and old primary at
	// promote, the v2 primary at rollback.
	if got := snap.Counters["models.engines.drained"]; got != 3 {
		t.Fatalf("models.engines.drained = %d, want 3", got)
	}
	// Lifecycle events annotate the SLO timeline.
	events := map[string]bool{}
	for _, a := range s.SLO().Status().Events {
		events[a.Event] = true
	}
	for _, event := range []string{"load", "promote", "rollback"} {
		if !events[event] {
			t.Fatalf("SLO timeline missing %q annotation: %+v", event, s.SLO().Status().Events)
		}
	}
}

// TestShadowScoringRecordsTelemetry: with a candidate shadowing at 100%
// sampling, every predict/predict-batch request lands in the candidate's
// labeled shadow series — scored tables, latency, confidence, agreement
// (exactly 1: the candidate is the same checkpoint) and sidecar drift.
func TestShadowScoringRecordsTelemetry(t *testing.T) {
	s := chaosServer(t, nil, nil)
	path := savedCheckpoint(t, t.TempDir(), "cand.bin", true)
	modelsPost(t, s, "/v1/models", ModelsRequest{ID: "cand", Path: path}, http.StatusOK)

	const singles = 3
	for i := 0; i < singles; i++ {
		if rec := postJSON(t, s, "/v1/predict", sampleRequest("")); rec.Code != http.StatusOK {
			t.Fatalf("predict: %d", rec.Code)
		}
	}
	if rec := postJSON(t, s, "/v1/predict-batch", batchBody(2)); rec.Code != http.StatusOK {
		t.Fatalf("predict-batch: %d", rec.Code)
	}

	drain(t, s)
	snap := s.Metrics().Snapshot()
	scored := snap.Counters[`shadow.tables.scored{model="cand"}`]
	if want := uint64(singles + 2); scored != want {
		t.Fatalf("shadow.tables.scored = %d, want %d", scored, want)
	}
	compared := snap.Counters[`shadow.columns.compared{model="cand"}`]
	agree := snap.Counters[`shadow.columns.agree{model="cand"}`]
	if compared == 0 || agree != compared {
		t.Fatalf("agreement: %d/%d — same checkpoint must agree on every column", agree, compared)
	}
	if got := snap.Gauges[`shadow.agreement.rate{model="cand"}`]; got != 1 {
		t.Fatalf("shadow.agreement.rate = %v, want 1", got)
	}
	if h := snap.Histograms[`shadow.latency.seconds{model="cand"}`]; h.Count != uint64(singles+1) {
		t.Fatalf("shadow.latency.seconds count = %d, want %d", h.Count, singles+1)
	}
	if h := snap.Histograms[`shadow.confidence{model="cand"}`]; h.Count != compared {
		t.Fatalf("shadow.confidence count = %d, want %d", h.Count, compared)
	}
	if got := snap.Gauges[`drift.observations{model="cand"}`]; got == 0 {
		t.Fatal("candidate sidecar drift monitor observed nothing")
	}
	if snap.Counters[`shadow.errors{model="cand"}`] != 0 {
		t.Fatalf("shadow.errors = %d, want 0", snap.Counters[`shadow.errors{model="cand"}`])
	}
	// The same series are scrapable as labeled Prometheus families.
	prom := getPath(t, s, "/v1/metrics?format=prom").Body.String()
	for _, want := range []string{
		`shadow_tables_scored{model="cand"}`,
		`shadow_agreement_rate{model="cand"}`,
		`shadow_latency_seconds_bucket{model="cand",`,
		`drift_observations{model="cand"}`,
		`models_swap{event="load"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prom exposition missing %s:\n%s", want, prom)
		}
	}
}

// TestShadowSamplerDeterministic pins the seeded sampler's contract: two
// samplers with one seed agree decision-for-decision, the edge fractions
// short-circuit, and the sampled rate lands near the configured fraction.
func TestShadowSamplerDeterministic(t *testing.T) {
	a := &Server{shadowSample: 0.5, shadowSeed: 42}
	b := &Server{shadowSample: 0.5, shadowSeed: 42}
	hits := 0
	const n = 2000
	for i := 0; i < n; i++ {
		da, db := a.shadowSampled(), b.shadowSampled()
		if da != db {
			t.Fatalf("decision %d diverged between same-seed samplers", i)
		}
		if da {
			hits++
		}
	}
	if hits < n/3 || hits > 2*n/3 {
		t.Fatalf("sample=0.5 hit %d/%d — sampler badly biased", hits, n)
	}
	off := &Server{shadowSample: 0}
	on := &Server{shadowSample: 1}
	for i := 0; i < 10; i++ {
		if off.shadowSampled() {
			t.Fatal("sample=0 sampled a request")
		}
		if !on.shadowSampled() {
			t.Fatal("sample=1 skipped a request")
		}
	}
	if off.shadowSeq.Load() != 0 || on.shadowSeq.Load() != 0 {
		t.Fatal("edge fractions must not consume sequence numbers")
	}
}

// TestReadyzStaysReadyThroughPromote is the readiness regression test for
// the lifecycle: /v1/readyz must answer 200 before, during (with the swap
// epilogue artificially stretched) and after promote and rollback — a model
// swap is not a readiness event.
func TestReadyzStaysReadyThroughPromote(t *testing.T) {
	srvFaults := faultinject.New().
		On(faultinject.ServerSwap, faultinject.Sleep(100*time.Millisecond))
	s := chaosServer(t, nil, srvFaults)
	path := savedCheckpoint(t, t.TempDir(), "v2.bin", false)

	if got := readyzCode(t, s); got != http.StatusOK {
		t.Fatalf("readyz at boot: %d", got)
	}
	modelsPost(t, s, "/v1/models", ModelsRequest{ID: "v2", Path: path}, http.StatusOK)
	if got := readyzCode(t, s); got != http.StatusOK {
		t.Fatalf("readyz while shadowing: %d", got)
	}

	// Poll readiness continuously while the promote sits in its stretched
	// swap window.
	done := make(chan struct{})
	go func() {
		defer close(done)
		modelsPost(t, s, "/v1/models/promote", nil, http.StatusOK)
	}()
	for {
		select {
		case <-done:
			goto promoted
		default:
		}
		if got := readyzCode(t, s); got != http.StatusOK {
			t.Errorf("readyz during promote: %d", got)
			<-done
			return
		}
	}
promoted:
	if got := readyzCode(t, s); got != http.StatusOK {
		t.Fatalf("readyz after promote: %d", got)
	}
	modelsPost(t, s, "/v1/models/rollback", nil, http.StatusOK)
	if got := readyzCode(t, s); got != http.StatusOK {
		t.Fatalf("readyz after rollback: %d", got)
	}
	drain(t, s)
}

// TestFailedCandidateLoadDoesNotFlipReadiness is the second readiness
// regression test: a load that fails — missing file, corrupt checkpoint, or
// an injected ServerModelLoad fault — returns its error and changes nothing:
// readyz stays 200, traffic keeps flowing, no candidate appears.
func TestFailedCandidateLoadDoesNotFlipReadiness(t *testing.T) {
	srvFaults := faultinject.New().
		On(faultinject.ServerModelLoad, faultinject.Times(1, faultinject.Err(errInjected)))
	s := chaosServer(t, nil, srvFaults)
	dir := t.TempDir()
	corrupt := filepath.Join(dir, "corrupt.bin")
	if err := os.WriteFile(corrupt, []byte("PYTHCKPTgarbage-not-a-checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		req  ModelsRequest
		want int
	}{
		{"injected fault", ModelsRequest{ID: "f", Path: filepath.Join(dir, "whatever.bin")}, http.StatusUnprocessableEntity},
		{"missing file", ModelsRequest{ID: "m", Path: filepath.Join(dir, "missing.bin")}, http.StatusNotFound},
		{"corrupt checkpoint", ModelsRequest{ID: "c", Path: corrupt}, http.StatusUnprocessableEntity},
		{"empty path", ModelsRequest{ID: "e"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		modelsPost(t, s, "/v1/models", tc.req, tc.want)
		if got := readyzCode(t, s); got != http.StatusOK {
			t.Fatalf("%s: readyz flipped to %d", tc.name, got)
		}
		if rec := postJSON(t, s, "/v1/predict", sampleRequest("")); rec.Code != http.StatusOK {
			t.Fatalf("%s: predict after failed load: %d", tc.name, rec.Code)
		}
	}
	rec := getPath(t, s, "/v1/models")
	var st ModelsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "serving" || st.Candidate != nil {
		t.Fatalf("failed loads left lifecycle state: %+v", st)
	}
}

// TestModelsDirConfinement: with -models-dir set, only local relative paths
// inside the directory resolve; absolute paths and escapes are rejected
// before any file is touched.
func TestModelsDirConfinement(t *testing.T) {
	dir := t.TempDir()
	savedCheckpoint(t, dir, "ok.bin", false)
	outside := savedCheckpoint(t, t.TempDir(), "outside.bin", false)
	s := chaosServer(t, nil, nil, WithModelsDir(dir))

	modelsPost(t, s, "/v1/models", ModelsRequest{ID: "esc1", Path: outside}, http.StatusBadRequest)
	modelsPost(t, s, "/v1/models", ModelsRequest{ID: "esc2", Path: "../outside.bin"}, http.StatusBadRequest)
	st := modelsPost(t, s, "/v1/models", ModelsRequest{Path: "ok.bin"}, http.StatusOK)
	if st.Candidate == nil || st.Candidate.ID != "ok" {
		t.Fatalf("confined load: %+v", st.Candidate) // default id = base name sans extension
	}
	drain(t, s)
}

// TestPromoteWithoutCandidate: the state machine rejects transitions that
// make no sense instead of guessing.
func TestPromoteWithoutCandidate(t *testing.T) {
	s := chaosServer(t, nil, nil)
	modelsPost(t, s, "/v1/models/promote", nil, http.StatusConflict)
	modelsPost(t, s, "/v1/models/rollback", nil, http.StatusConflict)
}

// TestRollbackDiscardsCandidate: rollback while shadowing throws the
// candidate away and leaves the primary untouched.
func TestRollbackDiscardsCandidate(t *testing.T) {
	s := chaosServer(t, nil, nil)
	path := savedCheckpoint(t, t.TempDir(), "v2.bin", false)
	modelsPost(t, s, "/v1/models", ModelsRequest{ID: "v2", Path: path}, http.StatusOK)
	st := modelsPost(t, s, "/v1/models/rollback", nil, http.StatusOK)
	if st.State != "rolled-back" || st.Candidate != nil || st.Primary.ID != "boot" {
		t.Fatalf("discard: %+v", st)
	}
	drain(t, s)
	if got := s.Metrics().Snapshot().Counters["models.engines.drained"]; got != 1 {
		t.Fatalf("discarded candidate engine not drained: %d", got)
	}
}

// TestShadowIsolationBitIdentity is the isolation acceptance test: a server
// shadow-scoring 100% of traffic on a candidate — with injected shadow
// latency and errors on top — must produce byte-identical primary response
// bodies to a server with no candidate at all, request for request.
func TestShadowIsolationBitIdentity(t *testing.T) {
	// Shadow chaos: every shadow task is delayed, and some fail outright.
	shadowFaults := faultinject.New().
		On(faultinject.ServerShadow, faultinject.Sleep(time.Millisecond)).
		On(faultinject.ServerShadow, faultinject.After(3, faultinject.Err(errInjected)))
	shadowed := chaosServer(t, nil, shadowFaults)
	plain := chaosServer(t, nil, nil)
	path := savedCheckpoint(t, t.TempDir(), "cand.bin", true)
	modelsPost(t, shadowed, "/v1/models", ModelsRequest{ID: "cand", Path: path}, http.StatusOK)

	// A deterministic mixed corpus: single predicts, batches, an indexed
	// table, malformed bodies.
	type call struct {
		path string
		body any
	}
	corpus := []call{
		{"/v1/predict", sampleRequest("")},
		{"/v1/predict", TableRequest{Name: "salaries", Columns: []ColumnRequest{
			{Header: "Team", Values: []string{"IND", "LAL", "BOS"}},
			{Header: "Salary", Values: []string{"1200000", "44000000", "950000"}},
		}}},
		{"/v1/predict-batch", batchBody(3)},
		{"/v1/index", sampleRequest("iso-1")},
		{"/v1/predict", TableRequest{Name: "bad"}}, // 400 on both
		{"/v1/predict-batch", batchBody(1)},
	}
	// Error bodies carry a per-request random trace ID; identity is over
	// everything but that field.
	stripTraceID := regexp.MustCompile(`,?"trace_id":"[0-9a-f]+"`)
	for i, c := range corpus {
		a := postJSON(t, shadowed, c.path, c.body)
		b := postJSON(t, plain, c.path, c.body)
		if a.Code != b.Code {
			t.Fatalf("call %d %s: status %d (shadowed) vs %d (plain)", i, c.path, a.Code, b.Code)
		}
		ab := stripTraceID.ReplaceAll(a.Body.Bytes(), nil)
		bb := stripTraceID.ReplaceAll(b.Body.Bytes(), nil)
		if !bytes.Equal(ab, bb) {
			t.Fatalf("call %d %s: shadowing perturbed the primary response:\n shadowed: %s\n plain:    %s",
				i, c.path, a.Body, b.Body)
		}
	}

	drain(t, shadowed)
	// The shadow path really ran — scored some, errored some (After(3)).
	snap := shadowed.Metrics().Snapshot()
	if snap.Counters[`shadow.tables.scored{model="cand"}`] == 0 {
		t.Fatal("shadow scored nothing — isolation proved vacuously")
	}
	if snap.Counters[`shadow.errors{model="cand"}`] == 0 {
		t.Fatal("injected shadow faults never fired")
	}
}
