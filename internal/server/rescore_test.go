package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/sematype/pythagoras/internal/faultinject"
)

// rescoreStatus decodes one GET /v1/index/rescore.
func rescoreStatus(t *testing.T, s *Server) RescoreResponse {
	t.Helper()
	rec := getPath(t, s, "/v1/index/rescore")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/index/rescore = %d: %s", rec.Code, rec.Body)
	}
	var resp RescoreResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode rescore status: %v: %s", err, rec.Body)
	}
	return resp
}

// waitRescore polls the status endpoint until the run reaches one of the
// wanted states; any other terminal state fails the test.
func waitRescore(t *testing.T, s *Server, want ...string) RescoreResponse {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp := rescoreStatus(t, s)
		for _, w := range want {
			if resp.State == w {
				return resp
			}
		}
		switch resp.State {
		case "idle", "pending", "running":
		default:
			t.Fatalf("rescore reached %q (error %q), want one of %v", resp.State, resp.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("rescore never reached %v", want)
	return RescoreResponse{}
}

// TestRescoreEndToEnd: index tables, kick a re-score, poll to completion —
// the serving index pointer flips to a fresh index with identical content
// (same model re-scored the same lake) and the durable cursor is cleared.
func TestRescoreEndToEnd(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "cursor.json")
	s := trainedServer(t, WithRescoreCheckpoint(ckpt), WithRescoreBatch(2))
	defer drain(t, s)

	if got := rescoreStatus(t, s); got.State != "idle" {
		t.Fatalf("pre-run state = %q, want idle", got.State)
	}

	ids := []string{"t1", "t2", "t3", "t4", "t5"}
	for _, id := range ids {
		if rec := postJSON(t, s, "/v1/index", sampleRequest(id)); rec.Code != http.StatusOK {
			t.Fatalf("index %s = %d: %s", id, rec.Code, rec.Body)
		}
	}
	old := s.Index()
	oldDump := old.CanonicalDump()

	rec := postJSON(t, s, "/v1/index/rescore", nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /v1/index/rescore = %d: %s", rec.Code, rec.Body)
	}
	var started RescoreResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &started); err != nil {
		t.Fatal(err)
	}
	if started.Checkpoint != ckpt {
		t.Fatalf("reported checkpoint %q, want %q", started.Checkpoint, ckpt)
	}

	done := waitRescore(t, s, "done")
	if done.Total != len(ids) || done.Done != len(ids) || done.Skipped != 0 {
		t.Fatalf("final progress = %+v", done)
	}
	cur := s.Index()
	if cur == old {
		t.Fatal("index pointer never flipped")
	}
	// Same model, same lake, deterministic engine: content is unchanged even
	// though the index object is new.
	if got := cur.CanonicalDump(); !bytes.Equal(got, oldDump) {
		t.Fatalf("re-score with the same model changed the index:\n got:\n%s\nwant:\n%s", got, oldDump)
	}
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("cursor not cleared after completion: %v", err)
	}
}

// TestRollbackCancelsRescore is the ISSUE's lifecycle chaos case: promote a
// new primary, start a re-score stretched by an injected per-batch stall,
// roll back mid-scan — the run cancels cleanly and queries keep seeing the
// pre-rescore index.
func TestRollbackCancelsRescore(t *testing.T) {
	srvFaults := faultinject.New().On(faultinject.RescoreBatch, faultinject.Sleep(200*time.Millisecond))
	ckpt := filepath.Join(t.TempDir(), "cursor.json")
	s := chaosServer(t, nil, srvFaults, WithRescoreCheckpoint(ckpt), WithRescoreBatch(1))
	defer drain(t, s)

	for _, id := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		if rec := postJSON(t, s, "/v1/index", sampleRequest(id)); rec.Code != http.StatusOK {
			t.Fatalf("index %s = %d", id, rec.Code)
		}
	}
	old := s.Index()
	oldDump := old.CanonicalDump()

	path := savedCheckpoint(t, t.TempDir(), "v2.bin", false)
	modelsPost(t, s, "/v1/models", ModelsRequest{ID: "v2", Path: path}, http.StatusOK)
	modelsPost(t, s, "/v1/models/promote", nil, http.StatusOK)

	if rec := postJSON(t, s, "/v1/index/rescore", nil); rec.Code != http.StatusAccepted {
		t.Fatalf("start rescore = %d: %s", rec.Code, rec.Body)
	}
	// One re-score at a time.
	if rec := postJSON(t, s, "/v1/index/rescore", nil); rec.Code != http.StatusConflict {
		t.Fatalf("second rescore = %d, want 409", rec.Code)
	}
	if got := rescoreStatus(t, s); got.ModelID != "v2" {
		t.Fatalf("rescore running on model %q, want v2", got.ModelID)
	}

	// Operator pulls the new primary while the scan crawls.
	st := modelsPost(t, s, "/v1/models/rollback", nil, http.StatusOK)
	if st.Primary == nil || st.Primary.ID != "boot" {
		t.Fatalf("rollback restored %+v", st.Primary)
	}
	fin := waitRescore(t, s, "cancelled")
	if fin.Done == fin.Total {
		t.Fatalf("run completed (%d/%d) before the rollback landed — stall too short", fin.Done, fin.Total)
	}

	// The old index serves untouched, no shadow left behind.
	if s.Index() != old || !bytes.Equal(s.Index().CanonicalDump(), oldDump) {
		t.Fatal("cancelled re-score disturbed the serving index")
	}
	if rec := getPath(t, s, "/v1/types"); rec.Code != http.StatusOK {
		t.Fatalf("discovery queries broken after cancel: %d", rec.Code)
	}
	// A fresh run may start now that the previous one is terminal.
	if rec := postJSON(t, s, "/v1/index/rescore", nil); rec.Code != http.StatusAccepted {
		t.Fatalf("restart after cancel = %d: %s", rec.Code, rec.Body)
	}
	waitRescore(t, s, "done", "cancelled")
}

// TestRescoreStartSerializesWithPromote: starting a re-score races a
// promote. The start takes lcMu, so it either completes before the promote
// (whose cancelRescore then kills the registered run) or waits the promote
// out and leases the new primary — it can never slip into the window between
// the promote's cancel and its pointer swap and run on the demoted model.
// The injected ServerSwap stall holds the promote (and lcMu) open so the
// start provably arrives mid-promote, and also proves the lcMu → rescore.mu
// lock order is deadlock-free.
func TestRescoreStartSerializesWithPromote(t *testing.T) {
	srvFaults := faultinject.New().On(faultinject.ServerSwap, faultinject.Sleep(150*time.Millisecond))
	s := chaosServer(t, nil, srvFaults, WithRescoreBatch(2))
	defer drain(t, s)

	for _, id := range []string{"a", "b", "c", "d"} {
		if rec := postJSON(t, s, "/v1/index", sampleRequest(id)); rec.Code != http.StatusOK {
			t.Fatalf("index %s = %d", id, rec.Code)
		}
	}
	path := savedCheckpoint(t, t.TempDir(), "v2.bin", false)
	modelsPost(t, s, "/v1/models", ModelsRequest{ID: "v2", Path: path}, http.StatusOK)

	promoteCode := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/models/promote", nil))
		promoteCode <- rec.Code
	}()
	// Let the promote reach its stalled swap epilogue (holding lcMu), then
	// race the start against it.
	time.Sleep(30 * time.Millisecond)
	if rec := postJSON(t, s, "/v1/index/rescore", nil); rec.Code != http.StatusAccepted {
		t.Fatalf("start rescore = %d: %s", rec.Code, rec.Body)
	}
	if code := <-promoteCode; code != http.StatusOK {
		t.Fatalf("promote = %d", code)
	}
	fin := waitRescore(t, s, "done")
	if fin.ModelID != "v2" {
		t.Fatalf("re-score ran on %q, want the promoted primary v2", fin.ModelID)
	}
}

// TestPromoteCancelsRescore: promoting a new primary invalidates a re-score
// running on the old one — the driver is scoring with a model that is no
// longer primary, so promote cancels it the same way rollback does.
func TestPromoteCancelsRescore(t *testing.T) {
	srvFaults := faultinject.New().On(faultinject.RescoreBatch, faultinject.Sleep(200*time.Millisecond))
	s := chaosServer(t, nil, srvFaults, WithRescoreBatch(1))

	for _, id := range []string{"a", "b", "c", "d", "e", "f"} {
		if rec := postJSON(t, s, "/v1/index", sampleRequest(id)); rec.Code != http.StatusOK {
			t.Fatalf("index %s = %d", id, rec.Code)
		}
	}
	if rec := postJSON(t, s, "/v1/index/rescore", nil); rec.Code != http.StatusAccepted {
		t.Fatalf("start rescore = %d", rec.Code)
	}

	path := savedCheckpoint(t, t.TempDir(), "v2.bin", false)
	modelsPost(t, s, "/v1/models", ModelsRequest{ID: "v2", Path: path}, http.StatusOK)
	modelsPost(t, s, "/v1/models/promote", nil, http.StatusOK)

	fin := waitRescore(t, s, "cancelled")
	if fin.ModelID != "boot" {
		t.Fatalf("cancelled run's model = %q, want boot", fin.ModelID)
	}
	// The lifecycle left a consistent story in the metrics.
	drain(t, s)
	snap := s.Metrics().Snapshot()
	for _, key := range []string{
		`rescore.events{event="rescore-start"}`,
		`rescore.events{event="rescore-cancel"}`,
	} {
		if snap.Counters[key] < 1 {
			t.Fatalf("metric %s = %d, want >= 1", key, snap.Counters[key])
		}
	}
}
