package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/sematype/pythagoras/internal/faultinject"
	"github.com/sematype/pythagoras/internal/obs/slo"
)

func getJSON(t *testing.T, h http.Handler, path string, v any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if v != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
			t.Fatalf("GET %s: decode %q: %v", path, rec.Body, err)
		}
	}
	return rec
}

// TestReadyzReflectsLifecycle: ready while serving, 503 once draining — the
// signal loadgen and load balancers gate on, distinct from liveness.
func TestReadyzReflectsLifecycle(t *testing.T) {
	s := trainedServer(t)
	var body map[string]any
	if rec := getJSON(t, s, "/v1/readyz", &body); rec.Code != http.StatusOK {
		t.Fatalf("readyz while serving = %d: %s", rec.Code, rec.Body)
	}
	if body["ready"] != true || body["status"] != "ready" {
		t.Fatalf("readyz body = %v", body)
	}
	// healthz is also still OK pre-drain; the two probes agree here.
	if rec := getJSON(t, s, "/v1/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rec := getJSON(t, s, "/v1/readyz", &body); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d", rec.Code)
	}
	if body["ready"] != false {
		t.Fatalf("draining readyz body = %v", body)
	}
}

// TestSLOEndpointReportsTraffic: served requests show up as good events in
// the /v1/slo report, while probe endpoints stay out of the accounting.
func TestSLOEndpointReportsTraffic(t *testing.T) {
	s := trainedServer(t)
	// Probes first: none of these may count as SLO events.
	for i := 0; i < 5; i++ {
		getJSON(t, s, "/v1/healthz", nil)
		getJSON(t, s, "/v1/readyz", nil)
		getJSON(t, s, "/v1/metrics", nil)
		getJSON(t, s, "/v1/slo", nil)
	}
	var st slo.Status
	getJSON(t, s, "/v1/slo", &st)
	if len(st.Objectives) != 2 {
		t.Fatalf("objectives = %d, want the availability+latency defaults", len(st.Objectives))
	}
	for _, o := range st.Objectives {
		if o.Good != 0 || o.Bad != 0 {
			t.Fatalf("probe traffic leaked into SLO accounting: %+v", o)
		}
	}
	// One good predict and one bad body (400 — still a *served* request).
	if rec := postJSON(t, s, "/v1/predict", sampleRequest("")); rec.Code != http.StatusOK {
		t.Fatalf("predict = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader([]byte("{")))
	s.ServeHTTP(httptest.NewRecorder(), req)

	getJSON(t, s, "/v1/slo", &st)
	for _, o := range st.Objectives {
		if o.Name == "availability" && (o.Good != 2 || o.Bad != 0) {
			t.Fatalf("availability after 200+400 = %d good %d bad, want 2/0", o.Good, o.Bad)
		}
	}
	// The same accounting is visible as registry counters.
	snap := s.Metrics().Snapshot()
	if got := snap.Counters["slo.availability.events.good"]; got != 2 {
		t.Fatalf("slo.availability.events.good = %d, want 2", got)
	}
}

// TestSheddingMovesBurnRate is the closed-loop acceptance test (ISSUE 7):
// drive load past -max-inflight, watch http.shed rise, and assert the SLO
// burn-rate gauges reflect the induced budget spend — deterministically,
// via a fake clock that pins every event into one bucket so the expected
// burn rates are exact rationals over known good/bad counts.
func TestSheddingMovesBurnRate(t *testing.T) {
	clk := time.Unix(1_700_000_000, 0)
	eng := slo.New(slo.DefaultObjectives(0.5, 50*time.Millisecond),
		slo.WithNow(func() time.Time { return clk }))
	srvFaults := faultinject.New().
		On(faultinject.ServerHandle, faultinject.Sleep(150*time.Millisecond))
	s := chaosServer(t, nil, srvFaults, WithMaxInflight(1), WithSLO(eng))

	raw, _ := json.Marshal(sampleRequest(""))
	send := func(codes chan<- int) {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		codes <- rec.Code
	}
	slow := make(chan int, 2)
	var wg sync.WaitGroup
	// One admitted (sleeping in the injected fault), one queued: capacity is
	// now exactly full, and both will eventually succeed with 200.
	wg.Add(1)
	go func() { defer wg.Done(); send(slow) }()
	for deadline := time.Now().Add(2 * time.Second); s.inflight.Load() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	wg.Add(1)
	go func() { defer wg.Done(); send(slow) }()
	for deadline := time.Now().Add(2 * time.Second); s.queued.Load() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Four more, synchronously: with the semaphore held and the queue full,
	// every one must be shed with 429 — no timing in play.
	const shedWant = 4
	for i := 0; i < shedWant; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(raw))
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("overload request %d = %d, want 429", i, rec.Code)
		}
	}
	wg.Wait()
	close(slow)
	for code := range slow {
		if code != http.StatusOK {
			t.Fatalf("held request finished %d, want 200", code)
		}
	}

	snap := s.Metrics().Snapshot()
	if got := snap.Counters["http.shed"]; got != shedWant {
		t.Fatalf("http.shed = %d, want %d", got, shedWant)
	}
	// Availability: 2 good (the slow 200s), 4 bad (the sheds) → bad fraction
	// 4/6, burn rate (4/6)/(1−0.5) = 4/3 on every window (the fake clock
	// never moved, so all events share one bucket).
	wantAvail := (4.0 / 6.0) / 0.5
	for _, w := range []string{"5m", "30m", "1h", "6h"} {
		got := snap.Gauges["slo.availability.burn_rate."+w]
		if math.Abs(got-wantAvail) > 1e-12 {
			t.Fatalf("availability burn(%s) = %v, want %v", w, got, wantAvail)
		}
	}
	// Latency: the two 200s each spent ≥150ms in the injected sleep — over
	// the 50ms threshold — so all 6 events are latency-bad: burn 1/(1−0.5)=2.
	if got := snap.Gauges["slo.latency.burn_rate.5m"]; math.Abs(got-2) > 1e-12 {
		t.Fatalf("latency burn(5m) = %v, want 2", got)
	}
	// Budget: availability remaining = 1 − 4/3 = −1/3; and the /v1/slo
	// report carries the same counts.
	if got := snap.Gauges["slo.availability.budget.remaining"]; math.Abs(got-(1-wantAvail)) > 1e-12 {
		t.Fatalf("availability budget remaining = %v, want %v", got, 1-wantAvail)
	}
	var st slo.Status
	getJSON(t, s, "/v1/slo", &st)
	for _, o := range st.Objectives {
		if o.Name == "availability" && (o.Good != 2 || o.Bad != 4) {
			t.Fatalf("/v1/slo availability = %d good %d bad, want 2/4", o.Good, o.Bad)
		}
		if o.Name == "latency" && (o.Good != 0 || o.Bad != 6) {
			t.Fatalf("/v1/slo latency = %d good %d bad, want 0/6", o.Good, o.Bad)
		}
	}
}

// TestClientDisconnectNotDebited: a 499 (client vanished) must not count as
// an SLO event in either direction.
func TestClientDisconnectNotDebited(t *testing.T) {
	eng := slo.New(slo.DefaultObjectives(0.9, time.Second))
	srvFaults := faultinject.New()
	s := chaosServer(t, nil, srvFaults, WithSLO(eng))
	ctx, cancel := context.WithCancel(context.Background())
	srvFaults.On(faultinject.ServerHandle, faultinject.Cancel(cancel))
	raw, _ := json.Marshal(sampleRequest(""))
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(raw)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("cancelled request = %d, want 499", rec.Code)
	}
	for _, o := range eng.Status().Objectives {
		if o.Good != 0 || o.Bad != 0 {
			t.Fatalf("499 leaked into SLO accounting: %+v", o)
		}
	}
}
