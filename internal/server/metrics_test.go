package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"github.com/sematype/pythagoras/internal/obs"
)

// metricsSnapshot fetches and decodes GET /v1/metrics.
func metricsSnapshot(t *testing.T, s *Server) obs.Snapshot {
	t.Helper()
	rec := getPath(t, s, "/v1/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d", rec.Code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics body does not decode: %v", err)
	}
	return snap
}

// TestMetricsEndpointAfterPredictBatch is the acceptance path: on a warm
// server, one POST /v1/predict-batch must leave nonzero counts in all four
// per-stage latency histograms, the per-route series, the span histograms
// and the encoder cache gauges.
func TestMetricsEndpointAfterPredictBatch(t *testing.T) {
	s := trainedServer(t)
	body := map[string]any{"tables": []TableRequest{
		sampleRequest("m1"), sampleRequest("m2"), sampleRequest("m3"), sampleRequest("m4"),
	}}
	if rec := postJSON(t, s, "/v1/predict-batch", body); rec.Code != http.StatusOK {
		t.Fatalf("predict-batch = %d: %s", rec.Code, rec.Body.String())
	}

	snap := metricsSnapshot(t, s)
	for _, name := range []string{
		"infer.stage.prepare.seconds",
		"infer.stage.union.seconds",
		"infer.stage.forward.seconds",
		"infer.stage.decode.seconds",
		"http./v1/predict-batch.latency.seconds",
		"span.predict-batch",
		"span.predict-batch.parse",
		"span.predict-batch.infer",
	} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			t.Errorf("histogram %q missing or empty after predict-batch", name)
		}
	}
	if got := snap.Counters["http./v1/predict-batch.requests"]; got != 1 {
		t.Errorf("predict-batch requests = %d, want 1", got)
	}
	if got := snap.Counters["infer.batches"]; got != 1 {
		t.Errorf("infer.batches = %d, want 1", got)
	}
	if got := snap.Counters["infer.tables"]; got != 4 {
		t.Errorf("infer.tables = %d, want 4", got)
	}
	if _, ok := snap.Gauges["lm.cache.text.entries"]; !ok {
		t.Error("encoder cache gauges missing from /v1/metrics")
	}
}

// TestRouteErrorCounter: a 4xx response increments the route's error series.
func TestRouteErrorCounter(t *testing.T) {
	s := trainedServer(t)
	if rec := getPath(t, s, "/v1/search"); rec.Code != http.StatusBadRequest {
		t.Fatalf("search without type = %d", rec.Code)
	}
	snap := metricsSnapshot(t, s)
	if got := snap.Counters["http./v1/search.errors"]; got != 1 {
		t.Fatalf("http./v1/search.errors = %d, want 1", got)
	}
	if got := snap.Counters["http./v1/search.requests"]; got != 1 {
		t.Fatalf("http./v1/search.requests = %d, want 1", got)
	}
}

// TestServerAdoptsEngineRegistry: an engine wired WithMetrics shares its
// registry with the server instead of getting a second one.
func TestServerAdoptsEngineRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	s := trainedServer(t, WithMetrics(reg))
	if s.Metrics() != reg {
		t.Fatal("server ignored WithMetrics registry")
	}
	if s.primaryEngine().Metrics() != reg {
		t.Fatal("engine not wired to the server registry")
	}
}

// TestDebugEndpointsGated: pprof is absent by default and mounted (and
// JSON-404-free) under WithDebug.
func TestDebugEndpointsGated(t *testing.T) {
	plain := trainedServer(t)
	if rec := getPath(t, plain, "/debug/pprof/"); rec.Code != http.StatusNotFound {
		t.Fatalf("pprof without -debug = %d, want 404", rec.Code)
	}
	dbg := trainedServer(t, WithDebug(true))
	if rec := getPath(t, dbg, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Fatalf("pprof with -debug = %d, want 200", rec.Code)
	}
	if rec := getPath(t, dbg, "/debug/vars"); rec.Code != http.StatusOK {
		t.Fatalf("expvar with -debug = %d, want 200", rec.Code)
	}
}

// TestMetricsUnderConcurrentLoad: concurrent predict-batch traffic against
// snapshot reads — the server-level half of the registry race acceptance.
func TestMetricsUnderConcurrentLoad(t *testing.T) {
	s := trainedServer(t)
	body := map[string]any{"tables": []TableRequest{sampleRequest("c1"), sampleRequest("c2")}}
	const callers = 4
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				if rec := postJSON(t, s, "/v1/predict-batch", body); rec.Code != http.StatusOK {
					t.Errorf("predict-batch = %d", rec.Code)
					return
				}
				metricsSnapshot(t, s)
			}
		}()
	}
	wg.Wait()
	snap := metricsSnapshot(t, s)
	if got := snap.Counters["infer.batches"]; got != callers*3 {
		t.Fatalf("infer.batches = %d, want %d", got, callers*3)
	}
}
