// Lake re-score control plane (DESIGN.md §15): after a model promote, the
// discovery index still carries the previous model's predictions for every
// table indexed before the swap. POST /v1/index/rescore walks the retained
// lake through the new primary in the background — checkpointed cursor,
// bounded concurrency, shadow index — and atomically flips the discovery
// index when the scan completes, so queries go from "all old model" to
// "all new model" in one step and never see a mix. GET /v1/index/rescore
// reports progress; promote, rollback and shutdown cancel an active run
// (the old index keeps serving, the durable cursor survives for a resume).
package server

import (
	"context"
	"net/http"
	"sync"

	"github.com/sematype/pythagoras/internal/obs"
	"github.com/sematype/pythagoras/internal/obs/logz"
	"github.com/sematype/pythagoras/internal/rescore"
)

// rescoreState tracks the at-most-one background re-score run. The latest
// run (running or finished) stays referenced so GET /v1/index/rescore can
// report terminal states, not just live ones.
type rescoreState struct {
	mu  sync.Mutex
	run *rescoreRun
}

// rescoreRun binds one driver to its cancellation and completion signal.
type rescoreRun struct {
	drv     *rescore.Driver
	cancel  context.CancelFunc
	done    chan struct{}
	modelID string
}

// activeRescore returns the current run if it has not finished yet.
func (s *Server) activeRescore() *rescoreRun {
	s.rescore.mu.Lock()
	defer s.rescore.mu.Unlock()
	if r := s.rescore.run; r != nil {
		select {
		case <-r.done:
		default:
			return r
		}
	}
	return nil
}

// cancelRescore cancels an active re-score, if any, and returns whether one
// was cancelled. It does not wait for the run to unwind — the driver aborts
// its shadow build on its own goroutine; the old index is never in danger
// because only a completed scan commits. Called by promote and rollback
// (the model the scan is scoring on is leaving) and by Shutdown.
func (s *Server) cancelRescore(reason string) bool {
	r := s.activeRescore()
	if r == nil {
		return false
	}
	r.cancel()
	s.recordRescore("rescore-cancel", reason)
	return true
}

// awaitRescore blocks until the current run (if any) has fully unwound or
// ctx expires — Shutdown's barrier, so no re-score goroutine (holding an
// engine lease) outlives the server.
func (s *Server) awaitRescore(ctx context.Context) error {
	s.rescore.mu.Lock()
	r := s.rescore.run
	s.rescore.mu.Unlock()
	if r == nil {
		return nil
	}
	select {
	case <-r.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// recordRescore counts a re-score lifecycle event under
// rescore.events{event=}, annotates the SLO timeline and logs it — the same
// forensic trail model swaps leave, so an operator reading the timeline
// sees promote → rescore-start → rescore-done as one story.
func (s *Server) recordRescore(event, detail string) {
	s.metrics.Counter(obs.Labels("rescore.events", "event", event)).Inc()
	s.sloEng.Annotate(event, detail)
	if s.logger != nil {
		s.logger.Printf("rescore: %s %s", event, detail)
	}
	s.slog.Log(logz.Info, "lake "+event, "detail", detail)
}

// RescoreResponse is the body of both re-score endpoints: the driver's
// progress plus the server's cursor configuration. State "idle" (zero
// Progress otherwise) means no re-score has run since boot.
type RescoreResponse struct {
	rescore.Progress
	// Checkpoint is the configured durable cursor path, empty when the
	// cursor is in-memory only.
	Checkpoint string `json:"checkpoint,omitempty"`
}

// handleRescoreStart is POST /v1/index/rescore: start a background
// re-score of every retained lake table on the current primary model.
// 409 when one is already running — re-scores are one-at-a-time; cancel by
// rolling back, or wait. The request body is ignored: which model to use is
// never a choice (always the primary), so there is nothing to parameterize
// per-request; batch size and cursor path are server configuration.
func (s *Server) handleRescoreStart(w http.ResponseWriter, r *http.Request) {
	// lcMu serializes the start against promote/rollback, which hold it
	// while they cancel any active re-score and swap the primary pointer.
	// Leasing the primary without it races that sequence: the lease can land
	// on the outgoing primary after the swap's cancelRescore already ran but
	// before the pointer moved, and the unregistered run would proceed on a
	// demoted model and eventually flip in an index typed by it. Under lcMu
	// the start either completes first (and the promote's cancel then kills
	// the registered run) or observes the new primary. Lock order is
	// lcMu → rescore.mu, matching cancelRescore's lifecycle callers.
	s.lcMu.Lock()
	defer s.lcMu.Unlock()
	s.rescore.mu.Lock()
	defer s.rescore.mu.Unlock()
	if run := s.rescore.run; run != nil {
		select {
		case <-run.done:
		default:
			writeErr(w, http.StatusConflict, "a re-score is already running (model %q)", run.modelID)
			return
		}
	}
	slot, ok := s.leasePrimary()
	if !ok {
		writeErr(w, http.StatusServiceUnavailable, "%v", errNoModel)
		return
	}
	drv := rescore.New(s.lake, slot.engine, s.index, rescore.Config{
		ModelID:        slot.id,
		BatchSize:      s.rescoreBatch,
		CheckpointPath: s.rescoreCkpt,
		// The server-lifetime budget, not a per-run semaphore: the watchdog
		// holds a reference and throttles it while the SLO fast burn fires.
		Budget:  s.rescoreBudget,
		Faults:  s.faults,
		Metrics: s.metrics,
	})
	// The run's context is the server's, not the request's: the client that
	// kicked the re-score off disconnects long before a lake-sized scan
	// finishes. Cancellation comes from rollback/promote/shutdown instead.
	ctx, cancel := context.WithCancel(context.Background())
	run := &rescoreRun{drv: drv, cancel: cancel, done: make(chan struct{}), modelID: slot.id}
	s.rescore.run = run
	s.recordRescore("rescore-start", "model "+slot.id)
	go func() {
		defer close(run.done)
		defer cancel()
		defer slot.engine.Release() // lease held for the whole scan
		err := drv.Run(ctx)
		switch p := drv.Progress(); {
		case err == nil:
			s.recordRescore("rescore-done", "model "+run.modelID)
		case p.State == "cancelled":
			// rescore-cancel was recorded when the cancellation was requested.
		default:
			s.recordRescore("rescore-fail", err.Error())
		}
	}()
	writeJSON(w, http.StatusAccepted, RescoreResponse{Progress: drv.Progress(), Checkpoint: s.rescoreCkpt})
}

// handleRescoreStatus is GET /v1/index/rescore: progress of the current
// (or most recent) re-score run.
func (s *Server) handleRescoreStatus(w http.ResponseWriter, r *http.Request) {
	s.rescore.mu.Lock()
	run := s.rescore.run
	s.rescore.mu.Unlock()
	resp := RescoreResponse{Checkpoint: s.rescoreCkpt}
	if run == nil {
		resp.State = "idle"
	} else {
		resp.Progress = run.drv.Progress()
	}
	writeJSON(w, http.StatusOK, resp)
}
