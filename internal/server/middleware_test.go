package server

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
)

func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func decodeError(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error response Content-Type = %q, want application/json (body %q)", ct, rec.Body.String())
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatalf("error body is not JSON: %v (%q)", err, rec.Body.String())
	}
	if er.Error == "" {
		t.Fatalf("error body missing error field: %q", rec.Body.String())
	}
	return er.Error
}

// TestRequestIDGenerated: the middleware mints an ID and echoes it on the
// response; distinct requests get distinct IDs.
func TestRequestIDGenerated(t *testing.T) {
	s := trainedServer(t)
	first := getPath(t, s, "/v1/healthz").Header().Get("X-Request-ID")
	second := getPath(t, s, "/v1/healthz").Header().Get("X-Request-ID")
	if first == "" || second == "" {
		t.Fatal("X-Request-ID not set on responses")
	}
	if first == second {
		t.Fatalf("request IDs not unique: %q", first)
	}
	if !regexp.MustCompile(`^[0-9a-f]{8}-[0-9]{6}$`).MatchString(first) {
		t.Fatalf("generated ID %q does not match <prefix>-<seq> format", first)
	}
}

// TestRequestIDPropagated: a client-supplied X-Request-ID is preserved
// through to the response header (call-chain correlation).
func TestRequestIDPropagated(t *testing.T) {
	s := trainedServer(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	req.Header.Set("X-Request-ID", "upstream-trace-42")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != "upstream-trace-42" {
		t.Fatalf("X-Request-ID = %q, want upstream-trace-42", got)
	}
}

// TestPanicRecoveryReturnsJSON500: a panicking handler becomes a JSON 500,
// the panic counter increments, and the server stays serviceable.
func TestPanicRecoveryReturnsJSON500(t *testing.T) {
	var buf bytes.Buffer
	s := trainedServer(t, WithLogger(log.New(&buf, "", 0)))
	s.route("GET /test/panic", func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})

	rec := getPath(t, s, "/test/panic")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if msg := decodeError(t, rec); msg != "internal server error" {
		t.Fatalf("error = %q", msg)
	}
	if got := s.Metrics().Counter("http.panics").Value(); got != 1 {
		t.Fatalf("http.panics = %d, want 1", got)
	}
	if !bytes.Contains(buf.Bytes(), []byte("boom")) {
		t.Fatal("panic value not logged")
	}
	// Still alive afterwards.
	if rec := getPath(t, s, "/v1/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz after panic = %d", rec.Code)
	}
}

// TestAccessLogFormat pins the stable key=value line format.
func TestAccessLogFormat(t *testing.T) {
	var buf bytes.Buffer
	s := trainedServer(t, WithLogger(log.New(&buf, "", 0)))
	getPath(t, s, "/v1/healthz")

	line := buf.String()
	want := regexp.MustCompile(
		`^method=GET path=/v1/healthz status=200 bytes=[1-9][0-9]* dur=\S+ req_id=[0-9a-f]{8}-[0-9]{6}\n$`)
	if !want.MatchString(line) {
		t.Fatalf("access log line %q does not match %q", line, want)
	}
}

// TestAccessLogDisabledByDefault: no logger, no output — and requests still
// flow.
func TestAccessLogDisabledByDefault(t *testing.T) {
	s := trainedServer(t)
	if s.logger != nil {
		t.Fatal("logger should default to nil")
	}
	if rec := getPath(t, s, "/v1/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
}

// TestUnknownRouteJSON404 and TestMethodNotAllowedJSON405: the mux's
// plain-text error pages are rewritten into the unified JSON error shape
// (same contract as writeErr), status preserved.
func TestUnknownRouteJSON404(t *testing.T) {
	s := trainedServer(t)
	rec := getPath(t, s, "/v1/nope")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	decodeError(t, rec)
}

func TestMethodNotAllowedJSON405(t *testing.T) {
	s := trainedServer(t)
	rec := getPath(t, s, "/v1/predict") // GET on a POST-only route
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", rec.Code)
	}
	decodeError(t, rec)
}
